// Quickstart: a minimal SPMD application running under SPBC, with a fault
// injected mid-run.
//
// Build & run:   ./build/examples/quickstart
//
// What it shows:
//   * writing a workload against the simmpi Rank API (blocking/nonblocking
//     point-to-point, collectives, compute model),
//   * registering checkpoint state and calling maybe_checkpoint() at
//     iteration boundaries,
//   * configuring SPBC with a cluster map,
//   * injecting a failure and watching one cluster (and only that cluster)
//     roll back, replay, and catch up.

#include <cstdio>

#include "core/spbc.hpp"
#include "mpi/collectives.hpp"
#include "mpi/machine.hpp"
#include "util/serialize.hpp"

using namespace spbc;

namespace {

// A toy 1D heat-diffusion loop: exchange boundary values with ring
// neighbours, relax, checkpoint.
void heat_app(mpi::Rank& rank, int iters) {
  struct State {
    int iter = 0;
    double left_edge = 0, right_edge = 0, center = 0;
  } st;
  st.center = 1.0 + rank.rank();

  rank.set_state_handlers(
      [&st](util::ByteWriter& w) { w.put(st); },
      [&st](util::ByteReader& r) { st = r.get<State>(); });
  if (rank.restarted()) {
    rank.restore_app_state();
    std::printf("[t=%8.4fs] rank %d restarted from checkpoint at iter %d\n",
                rank.now(), rank.rank(), st.iter);
  }

  const mpi::Comm& world = rank.world();
  int n = rank.nranks();
  int left = (rank.rank() - 1 + n) % n;
  int right = (rank.rank() + 1) % n;

  for (; st.iter < iters;) {
    // Halo exchange with both neighbours.
    mpi::Request rl = rank.irecv(left, 0, world);
    mpi::Request rr = rank.irecv(right, 1, world);
    rank.isend(left, 1, mpi::Payload::from_bytes(&st.center, sizeof(double)), world);
    rank.isend(right, 0, mpi::Payload::from_bytes(&st.center, sizeof(double)), world);
    rank.wait(rl);
    rank.wait(rr);
    std::vector<double> lv, rv;
    rl.result().copy_to(lv);
    rr.result().copy_to(rv);
    st.left_edge = lv[0];
    st.right_edge = rv[0];

    // Local relaxation step (2 ms of "physics").
    rank.compute(2e-3);
    st.center = 0.5 * st.center + 0.25 * (st.left_edge + st.right_edge);

    ++st.iter;
    rank.maybe_checkpoint();
  }

  double sum = mpi::allreduce_scalar(rank, st.center, mpi::ReduceOp::kSum, world);
  if (rank.rank() == 0)
    std::printf("[t=%8.4fs] converged: global sum = %.6f after %d iters\n",
                rank.now(), sum, iters);
}

}  // namespace

int main() {
  std::printf("SPBC quickstart: 8 ranks, 4 clusters, failure at t=12ms\n\n");

  mpi::MachineConfig cfg;
  cfg.nranks = 8;
  cfg.ranks_per_node = 2;

  core::SpbcConfig spbc_cfg;
  spbc_cfg.checkpoint_every = 3;  // coordinated checkpoint every 3 iterations

  auto protocol = std::make_unique<core::SpbcProtocol>(spbc_cfg);
  core::SpbcProtocol* spbc = protocol.get();
  mpi::Machine machine(cfg, std::move(protocol));
  machine.set_cluster_of({0, 0, 1, 1, 2, 2, 3, 3});  // 4 clusters of one node

  machine.launch([](mpi::Rank& r) { heat_app(r, 10); });
  machine.inject_failure(/*t=*/12e-3, /*victim=*/2);  // cluster 1 dies

  mpi::RunResult result = machine.run();

  std::printf("\nrun completed: %s (virtual time %.4fs)\n",
              result.completed ? "yes" : "NO", result.finish_time);
  std::printf("checkpoints taken: %lu, rollbacks: %lu\n",
              static_cast<unsigned long>(spbc->checkpoints_taken()),
              static_cast<unsigned long>(spbc->rollbacks()));
  for (const auto& rec : machine.recoveries()) {
    std::printf("recovery of cluster %d: failure at %.4fs, rework %.4fs "
                "(lost work window %.4fs)\n",
                rec.failed_cluster, rec.failure_time, rec.rework(),
                rec.failure_time - rec.checkpoint_time);
  }
  for (int r = 0; r < cfg.nranks; ++r) {
    const auto& p = machine.rank(r).profile();
    if (p.bytes_logged > 0 || machine.rank(r).restarted())
      std::printf("rank %d: logged %lu bytes, suppressed %lu re-sends%s\n", r,
                  static_cast<unsigned long>(p.bytes_logged),
                  static_cast<unsigned long>(p.suppressed_sends),
                  machine.rank(r).restarted() ? "  [rolled back]" : "");
  }
  return result.completed ? 0 : 1;
}

// Recovery timeline: runs MiniGhost under SPBC, kills a cluster, and prints
// an annotated timeline of Algorithm 1's recovery — checkpoint waves,
// crash, detection, rollback announcements, replay, LS suppression,
// catch-up.
//
// Usage: ./build/examples/recovery_timeline [--ranks=32] [--clusters=4]

#include <cstdio>

#include "apps/app.hpp"
#include "core/spbc.hpp"
#include "harness/scenario.hpp"
#include "mpi/machine.hpp"
#include "util/cli.hpp"

using namespace spbc;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  int nranks = static_cast<int>(cli.get_int("ranks", 32));
  int nclusters = static_cast<int>(cli.get_int("clusters", 4));

  std::printf("Recovery timeline: MiniGhost, %d ranks, %d clusters\n\n", nranks,
              nclusters);

  harness::ScenarioConfig cfg;
  cfg.app = "MiniGhost";
  cfg.nranks = nranks;
  cfg.ranks_per_node = 8;
  cfg.nclusters = nclusters;
  cfg.protocol = harness::ProtocolKind::kSpbc;
  cfg.app_cfg.iters = 8;
  cfg.spbc.checkpoint_every = 3;
  cfg.machine.compute_noise_frac = 0.05;

  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  std::printf("failure-free execution: %.4fs, %.1f MB logged in total\n",
              ff.elapsed, static_cast<double>(ff.profile.bytes_logged) / 1e6);
  std::printf("comm ratio %.1f%%, inter-cluster share of traffic %.1f%%\n\n",
              100 * ff.profile.comm_ratio, 100 * ff.profile.inter_cluster_share);

  sim::Time failure_at = ff.elapsed * 0.6;
  std::printf("--- injecting failure of rank 0 at t=%.4fs ---\n\n", failure_at);
  harness::ScenarioResult rec = harness::run_with_failure(cfg, ff.elapsed, 0.6);
  if (!rec.run.completed || rec.recoveries.empty()) {
    std::printf("recovery failed!\n");
    return 1;
  }
  const mpi::RecoveryRecord& r = rec.recoveries.front();

  std::printf("t=%.4fs  crash of rank 0 (cluster %d, %zu ranks)\n", r.failure_time,
              r.failed_cluster, r.target_ops.size());
  std::printf("t=%.4fs  last coordinated checkpoint of that cluster\n",
              r.checkpoint_time);
  std::printf("           => lost work window: %.4fs\n",
              r.failure_time - r.checkpoint_time);
  std::printf("t=%.4fs  cluster restarted (detection + restore delays)\n",
              r.restart_time);
  std::printf("           Rollback(received-windows) -> all inter-cluster peers\n");
  std::printf("           peers reply lastMessage + replay logs, window=50\n");
  for (const auto& [rank, t] : r.catch_up)
    std::printf("t=%.4fs  rank %d caught up\n", t, rank);
  std::printf("t=%.4fs  recovery complete: rework %.4fs (%.1f%% of the lost "
              "window)\n\n",
              r.caught_up_time, r.rework(),
              100.0 * r.rework() / (r.failure_time - r.checkpoint_time));

  std::printf("run finished at t=%.4fs (failure-free: %.4fs)\n",
              rec.elapsed, ff.elapsed);
  std::printf("failure containment: %zu of %d ranks rolled back\n",
              r.target_ops.size(), nranks);
  return 0;
}

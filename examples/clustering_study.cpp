// Clustering study: trace an application's communication, feed it to the
// clustering tool, and inspect the trade-off Section 6.6 discusses — total
// logged volume vs per-process imbalance vs failure containment granularity.
//
// Usage: ./build/examples/clustering_study [--app=MiniGhost] [--ranks=64]

#include <algorithm>
#include <cstdio>

#include "apps/app.hpp"
#include "baselines/presets.hpp"
#include "clustering/comm_graph.hpp"
#include "clustering/partitioner.hpp"
#include "mpi/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace spbc;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  std::string app = cli.get_string("app", "MiniGhost");
  int nranks = static_cast<int>(cli.get_int("ranks", 64));
  int ppn = static_cast<int>(cli.get_int("ppn", 8));

  std::printf("Clustering study: %s at %d ranks (%d per node)\n\n", app.c_str(),
              nranks, ppn);

  // 1. Trace a few iterations (the paper's methodology, Section 6.1).
  mpi::MachineConfig mc;
  mc.nranks = nranks;
  mc.ranks_per_node = ppn;
  mpi::Machine machine(mc, baselines::make_native());
  machine.set_cluster_of(baselines::single_cluster_map(nranks));
  const apps::AppInfo& info = apps::find_app(app);
  apps::AppConfig acfg;
  acfg.iters = 4;
  machine.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });
  mpi::RunResult rr = machine.run();
  if (!rr.completed) {
    std::printf("trace run failed\n");
    return 1;
  }
  std::printf("traced %.1f MB of traffic over %.3fs of virtual time\n\n",
              static_cast<double>(machine.network().bytes_submitted()) / 1e6,
              rr.finish_time);

  // 2. Partition for a range of cluster counts and both objectives.
  clustering::CommGraph graph =
      clustering::CommGraph::from_traffic(nranks, machine.traffic());
  sim::Topology topo = sim::Topology::for_ranks(nranks, ppn);
  clustering::Partitioner part(graph, topo);

  util::Table table({"Clusters", "Objective", "Logged (MB)", "of total %",
                     "Max/rank (MB)", "Imbalance", "Ranks lost per failure"});
  for (int k : {2, 4, 8, 16}) {
    if (k > topo.nodes()) continue;
    for (auto obj : {clustering::Objective::kMinTotalLogged,
                     clustering::Objective::kBalancedLogged}) {
      clustering::PartitionResult res = part.partition(k, obj);
      auto per_rank = graph.logged_bytes_per_rank(res.cluster_of);
      double avg = 0;
      for (uint64_t b : per_rank) avg += static_cast<double>(b);
      avg /= static_cast<double>(nranks);
      double imbalance =
          avg > 0 ? static_cast<double>(res.max_rank_logged) / avg : 0.0;
      table.add_row(
          {std::to_string(k),
           obj == clustering::Objective::kMinTotalLogged ? "min-total" : "balanced",
           util::Table::fmt(static_cast<double>(res.logged_bytes) / 1e6, 2),
           util::Table::fmt(100.0 * static_cast<double>(res.logged_bytes) /
                                static_cast<double>(graph.total_bytes()),
                            1),
           util::Table::fmt(static_cast<double>(res.max_rank_logged) / 1e6, 2),
           util::Table::fmt(imbalance, 1), std::to_string(nranks / k)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading the table:\n"
      " * more clusters  => more logging but fewer ranks roll back per failure\n"
      " * min-total      => least aggregate logging, but imbalanced (Section 6.6:\n"
      "                     the hottest process runs out of memory first)\n"
      " * balanced       => caps the per-process maximum at some aggregate cost\n");
  return 0;
}

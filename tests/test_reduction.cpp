// Tests: checkpoint data reduction (DESIGN.md §15) — the deterministic
// LZ/RLE codec, the synthetic block-mutation state model, content-addressed
// delta captures in ckpt::Store (chains, the full-capture stride bound,
// chain-clamped pruning, rename semantics), chain-aware staging
// recoverability, and end-to-end scenario identity with reduction enabled.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ckpt/reduction.hpp"
#include "ckpt/staging.hpp"
#include "ckpt/store.hpp"
#include "core/spbc.hpp"
#include "harness/scenario.hpp"
#include "mpi/machine.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace spbc {
namespace {

std::vector<unsigned char> roundtrip(const std::vector<unsigned char>& data) {
  const std::vector<unsigned char> enc = util::codec::lz_compress(data);
  return util::codec::lz_decompress(enc, data.size());
}

TEST(Codec, RoundTripsEmptyAndTiny) {
  EXPECT_TRUE(roundtrip({}).empty());
  for (size_t n = 1; n <= 16; ++n) {
    std::vector<unsigned char> data(n);
    for (size_t i = 0; i < n; ++i) data[i] = static_cast<unsigned char>(i * 37);
    EXPECT_EQ(roundtrip(data), data) << "length " << n;
  }
}

TEST(Codec, CompressesConstantRuns) {
  std::vector<unsigned char> data(64 * 1024, 0xAB);
  const std::vector<unsigned char> enc = util::codec::lz_compress(data);
  EXPECT_LT(enc.size(), data.size() / 100) << "RLE degeneration missing";
  EXPECT_EQ(util::codec::lz_decompress(enc, data.size()), data);
}

TEST(Codec, RoundTripsPatternedPayloads) {
  // Low-entropy structured content at awkward sizes, including ones that end
  // mid-match and mid-literal-run.
  util::Pcg32 rng(42, 7);
  for (size_t n : {17u, 255u, 256u, 257u, 4095u, 4096u, 70000u}) {
    std::vector<unsigned char> data(n);
    size_t i = 0;
    while (i < n) {
      const unsigned char fill = static_cast<unsigned char>(rng.next_bounded(256));
      const size_t run = 1 + rng.next_bounded(64);
      for (size_t j = 0; j < run && i < n; ++j) data[i++] = fill;
    }
    EXPECT_EQ(roundtrip(data), data) << "length " << n;
  }
}

TEST(Codec, RoundTripsIncompressibleBytes) {
  util::Pcg32 rng(3, 9);
  std::vector<unsigned char> data(50000);
  for (unsigned char& b : data) b = static_cast<unsigned char>(rng.next_bounded(256));
  // Uniform noise may expand — the caller keeps the raw bytes then — but the
  // round trip itself must still be exact.
  EXPECT_EQ(roundtrip(data), data);
}

TEST(Codec, DeterministicEncoding) {
  std::vector<unsigned char> data(8192);
  util::Pcg32 rng(11, 1);
  ckpt::fill_synth_block(data.data(), data.size(), rng.next_u64());
  EXPECT_EQ(util::codec::lz_compress(data), util::codec::lz_compress(data));
}

TEST(StateModel, PureInSeedRankEpoch) {
  ckpt::StateModelConfig cfg;
  cfg.bytes = 8192;
  cfg.block_bytes = 512;
  cfg.mutation_rate = 0.25;
  cfg.seed = 77;
  std::vector<unsigned char> a = ckpt::make_state(cfg, 3);
  std::vector<unsigned char> b = ckpt::make_state(cfg, 3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, ckpt::make_state(cfg, 4));
  ckpt::evolve_state(a, cfg, 3, 1);
  ckpt::evolve_state(b, cfg, 3, 1);
  EXPECT_EQ(a, b) << "evolution not pure in (seed, rank, epoch)";
  // Compressible by construction, and a bounded fraction of blocks changes
  // per epoch (mutation_rate, at least one block).
  EXPECT_LT(util::codec::lz_compress(a).size(), a.size());
  std::vector<unsigned char> c = b;
  ckpt::evolve_state(c, cfg, 3, 2);
  const std::vector<uint64_t> hb = ckpt::hash_blocks(b, cfg.block_bytes);
  const std::vector<uint64_t> hc = ckpt::hash_blocks(c, cfg.block_bytes);
  size_t changed = 0;
  for (size_t i = 0; i < hb.size(); ++i)
    if (hb[i] != hc[i]) ++changed;
  EXPECT_GE(changed, 1u);
  EXPECT_LE(changed, 4u) << "mutation rewrote more blocks than the rate allows";
}

TEST(StateModel, HashBlocksSeesTailChanges) {
  std::vector<unsigned char> a(1000, 1);
  std::vector<unsigned char> b = a;
  b.back() = 2;  // short tail block
  const std::vector<uint64_t> ha = ckpt::hash_blocks(a, 256);
  const std::vector<uint64_t> hb = ckpt::hash_blocks(b, 256);
  ASSERT_EQ(ha.size(), 4u);
  EXPECT_EQ(ha[0], hb[0]);
  EXPECT_NE(ha[3], hb[3]);
}

// Store with delta + compression on: saves a per-epoch evolving payload and
// checks the chain metadata, the reduction ratio, and exact materialization.
class DeltaStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    smc_.bytes = 16384;
    smc_.block_bytes = 1024;
    smc_.mutation_rate = 0.10;
    smc_.seed = 5;
    ckpt::ReductionConfig red;
    red.delta = true;
    red.block_bytes = 1024;
    red.full_stride = 4;
    red.compress = true;
    store_.set_reduction(red);
    state_ = ckpt::make_state(smc_, 0);
  }

  ckpt::SaveInfo save_epoch(uint64_t epoch, bool force_full = false) {
    ckpt::evolve_state(state_, smc_, 0, epoch);
    expected_[epoch] = state_;
    ckpt::Snapshot s;
    s.taken_at = static_cast<double>(epoch);
    s.epoch = epoch;
    s.bytes = state_;
    return store_.save(0, std::move(s), force_full);
  }

  void expect_materializes(uint64_t epoch) {
    std::vector<unsigned char> scratch;
    EXPECT_EQ(store_.materialize(0, epoch, scratch), expected_.at(epoch))
        << "epoch " << epoch;
  }

  ckpt::StateModelConfig smc_;
  ckpt::Store store_;
  std::vector<unsigned char> state_;
  std::map<uint64_t, std::vector<unsigned char>> expected_;
};

TEST_F(DeltaStoreTest, ChainsAndStrideBound) {
  for (uint64_t e = 1; e <= 9; ++e) save_epoch(e);
  // full_stride = 4: epochs 1, 5, 9 are full; the rest chain off them.
  for (uint64_t e = 1; e <= 9; ++e) {
    const ckpt::StoredSnapshot& s = store_.at_epoch(0, e);
    const uint64_t want_base = e - ((e - 1) % 4);
    EXPECT_EQ(s.chain_base, want_base) << "epoch " << e;
    EXPECT_EQ(s.full(), e == want_base);
    expect_materializes(e);
  }
  EXPECT_EQ(store_.delta_snapshots(), 6u);
  // 10% of blocks mutate per epoch: deltas must shrink storage well below
  // the raw capture volume.
  EXPECT_LT(store_.total_bytes_written(), store_.total_raw_bytes() / 2);
}

TEST_F(DeltaStoreTest, ForceFullBreaksTheChain) {
  save_epoch(1);
  save_epoch(2);
  const ckpt::SaveInfo info = save_epoch(3, /*force_full=*/true);
  EXPECT_TRUE(info.full);
  EXPECT_EQ(info.chain_base, 3u);
  // A forced-full epoch may be renamed (the migration flip's re-key).
  store_.rename_epoch(0, 3, 7);
  EXPECT_TRUE(store_.has_epoch(0, 7));
  EXPECT_EQ(store_.at_epoch(0, 7).chain_base, 7u);
  std::vector<unsigned char> scratch;
  EXPECT_EQ(store_.materialize(0, 7, scratch), expected_.at(3));
}

TEST_F(DeltaStoreTest, PruneClampsToChainBase) {
  for (uint64_t e = 1; e <= 6; ++e) save_epoch(e);
  // Nominal floor 3 sits mid-chain (base 1): the effective floor must clamp
  // to the base, keeping epochs 1 and 2 alive to back epoch 3's restore.
  EXPECT_EQ(store_.prune_epochs_below(0, 3), 1u);
  EXPECT_TRUE(store_.has_epoch(0, 1));
  EXPECT_TRUE(store_.has_epoch(0, 2));
  expect_materializes(3);
  expect_materializes(6);
  // A floor on a full epoch prunes everything below it.
  EXPECT_EQ(store_.prune_epochs_below(0, 5), 5u);
  EXPECT_FALSE(store_.has_epoch(0, 4));
  expect_materializes(6);
}

TEST(DeltaStore, SameGranularityRequiredForDelta) {
  ckpt::Store store;
  ckpt::ReductionConfig red;
  red.delta = true;
  red.block_bytes = 512;
  store.set_reduction(red);
  ckpt::Snapshot a;
  a.epoch = 1;
  a.bytes.assign(4096, 3);
  store.save(0, std::move(a));
  // Same bytes one epoch later: a delta with zero changed blocks.
  ckpt::Snapshot b;
  b.epoch = 2;
  b.bytes.assign(4096, 3);
  const ckpt::SaveInfo info = store.save(0, std::move(b));
  EXPECT_FALSE(info.full);
  EXPECT_EQ(info.blocks_changed, 0u);
  EXPECT_EQ(info.stored_bytes, 0u);
  std::vector<unsigned char> scratch;
  EXPECT_EQ(store.materialize(0, 2, scratch),
            std::vector<unsigned char>(4096, 3));
}

TEST(DeltaStore, MissingPredecessorForcesFull) {
  ckpt::Store store;
  ckpt::ReductionConfig red;
  red.delta = true;
  store.set_reduction(red);
  ckpt::Snapshot a;
  a.epoch = 1;
  a.bytes.assign(1000, 1);
  store.save(0, std::move(a));
  // Epoch 3 has no epoch-2 predecessor: it must be a full capture.
  ckpt::Snapshot c;
  c.epoch = 3;
  c.bytes.assign(1000, 2);
  EXPECT_TRUE(store.save(0, std::move(c)).full);
}

// Chain-aware staging: a delta head is only recoverable while every chain
// element is, and execute_restore walks the whole chain.
TEST(StagingChain, RecoverabilitySpansTheChain) {
  mpi::MachineConfig mc;
  mc.nranks = 4;
  mc.ranks_per_node = 1;
  core::SpbcConfig scfg;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  mpi::Machine m(mc, std::move(proto));
  m.set_cluster_of({0, 0, 1, 1});

  ckpt::StagingConfig sc;
  sc.level = ckpt::StorageLevel::kPfs;
  sc.async = true;
  sc.model.pfs_bw = 1.0;  // the PFS frontier never catches up
  sc.redundancy.kind = ckpt::SchemeKind::kPartner;
  ckpt::StagingArea area(sc);
  area.attach(m);

  auto failed = std::make_shared<int>(0);
  auto succeeded = std::make_shared<int>(0);
  m.engine().at(0.01, [&] {
    area.write(0, 1, 1000);                          // full
    area.write(0, 2, 200, ckpt::LevelPlan{}, 1);     // delta on 1
    area.write(0, 3, 200, ckpt::LevelPlan{}, 1);     // delta on 1
  });
  m.engine().at(1.0, [&] {
    const std::vector<uint64_t> chain = area.restore_chain(0, 3);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain.front(), 1u);
    EXPECT_TRUE(area.recoverable(0, 3));
    // Losing the owner's node kills LOCAL copies of every element; the
    // partner copies keep the chain recoverable.
    area.invalidate_node(0);
    EXPECT_TRUE(area.recoverable(0, 3));
    // Losing the partner's host too exhausts the chain (PFS never landed):
    // the head must stop claiming recoverability.
    area.invalidate_node(m.node_of(area.partner_of(0)));
    EXPECT_FALSE(area.recoverable(0, 3));
    area.execute_restore(0, 3, [failed, succeeded](bool ok) {
      if (ok)
        ++*failed;  // false success: the chain was exhausted
      else
        ++*succeeded;
    });
  });
  ASSERT_TRUE(m.run().completed);
  EXPECT_EQ(*failed, 0) << "exhausted chain restore reported success";
  EXPECT_EQ(*succeeded, 1);
}

// End-to-end: reduction on (delta + compression + evolving synthetic state),
// a mid-run failure, validate-mode checksums. The recovered run must land on
// exactly the failure-free checksums — the reduction pipeline may not change
// a single byte of restored state.
TEST(ReductionE2E, FailureRunMatchesFailureFreeChecksums) {
  harness::ScenarioConfig cfg;
  cfg.app = "MiniGhost";
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  cfg.nclusters = 4;
  cfg.app_cfg.iters = 6;
  cfg.app_cfg.validate = true;
  cfg.spbc.checkpoint_every = 2;
  cfg.spbc.storage = ckpt::StorageLevel::kPfs;
  cfg.spbc.async_staging = true;
  cfg.spbc.reduction.delta = true;
  cfg.spbc.reduction.block_bytes = 256;
  cfg.spbc.reduction.full_stride = 4;
  cfg.spbc.reduction.compress = true;
  cfg.spbc.state_model.bytes = 4096;
  cfg.spbc.state_model.block_bytes = 256;
  cfg.spbc.state_model.mutation_rate = 0.2;
  cfg.spbc.state_model.seed = 9;

  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);
  ASSERT_FALSE(ff.checksums.empty());
  EXPECT_GT(ff.delta_snapshots, 0u);
  EXPECT_LT(ff.ckpt_stored_bytes, ff.ckpt_raw_bytes);

  harness::ScenarioResult fr = harness::run_with_failure(cfg, ff.elapsed, 0.6);
  ASSERT_TRUE(fr.run.completed);
  EXPECT_EQ(fr.checksums, ff.checksums)
      << "reduction changed restored state bytes";
}

// Bit-identity across engine shard layouts with reduction enabled: encoded
// sizes feed the control plane and staging, so any layout-dependence in the
// encoder would fan out into divergent schedules.
TEST(ReductionE2E, ShardLayoutInvariant) {
  harness::ScenarioConfig cfg;
  cfg.app = "MiniFE";
  cfg.nranks = 16;
  cfg.ranks_per_node = 4;
  cfg.nclusters = 4;
  cfg.app_cfg.iters = 5;
  cfg.app_cfg.validate = true;
  cfg.spbc.checkpoint_every = 2;
  cfg.spbc.storage = ckpt::StorageLevel::kPfs;
  cfg.spbc.async_staging = true;
  cfg.spbc.reduction.delta = true;
  cfg.spbc.reduction.block_bytes = 512;
  cfg.spbc.reduction.compress = true;
  cfg.spbc.state_model.bytes = 2048;
  cfg.spbc.state_model.block_bytes = 512;
  cfg.spbc.state_model.seed = 4;

  cfg.machine.engine_shards = 1;
  harness::ScenarioResult serial = harness::run_failure_free(cfg);
  ASSERT_TRUE(serial.run.completed);

  cfg.machine.engine_shards = 0;  // one shard per cluster
  harness::ScenarioResult sharded = harness::run_failure_free(cfg);
  ASSERT_TRUE(sharded.run.completed);

  EXPECT_EQ(serial.checksums, sharded.checksums);
  EXPECT_EQ(serial.ckpt_stored_bytes, sharded.ckpt_stored_bytes);
  EXPECT_EQ(serial.delta_snapshots, sharded.delta_snapshots);
  EXPECT_EQ(serial.bytes_pfs_written, sharded.bytes_pfs_written);
}

}  // namespace
}  // namespace spbc

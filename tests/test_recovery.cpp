// End-to-end recovery tests: Algorithm 1's full cycle — coordinated
// checkpoint, crash, cluster rollback, Rollback/lastMessage exchange, log
// replay with LS suppression, re-execution — on a small SPMD ring-stencil
// app with verifiable checksums.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>

#include "apps/app.hpp"
#include "core/spbc.hpp"
#include "mpi/collectives.hpp"
#include "mpi/machine.hpp"

namespace spbc {
namespace {

using mpi::Machine;
using mpi::MachineConfig;
using mpi::Payload;
using mpi::Rank;

struct RingOpts {
  int iters = 12;
  uint64_t bytes = 256;
  int tag = 1;
  double compute_s = 1e-3;
  std::map<int, uint64_t>* sums = nullptr;
};

// Minimal SPMD workload: ring halo exchange + compute + checkpoint call per
// iteration; checksum folds every received message.
void ring_app(Rank& r, const RingOpts& opt) {
  struct St {
    int iter = 0;
    uint64_t sum = 0;
  } st;
  r.set_state_handlers(
      [&st](util::ByteWriter& w) {
        w.put<int>(st.iter);
        w.put<uint64_t>(st.sum);
      },
      [&st](util::ByteReader& rd) {
        st.iter = rd.get<int>();
        st.sum = rd.get<uint64_t>();
      });
  if (r.restarted()) r.restore_app_state();
  const mpi::Comm& w = r.world();
  int n = r.nranks();
  int to = (r.rank() + 1) % n;
  int from = (r.rank() - 1 + n) % n;
  for (; st.iter < opt.iters;) {
    mpi::Request rq = r.irecv(from, opt.tag, w);
    uint64_t h = apps::synthetic_hash(static_cast<uint64_t>(r.rank()),
                                      static_cast<uint64_t>(st.iter), 0, 0);
    r.isend(to, opt.tag, Payload::make_synthetic(opt.bytes, h), w);
    r.wait(rq);
    util::Fnv1a64 fh;
    fh.update_u64(st.sum);
    fh.update_u64(rq.result().hash);
    st.sum = fh.digest();
    r.compute(opt.compute_s);
    ++st.iter;
    r.maybe_checkpoint();
  }
  if (opt.sums) (*opt.sums)[r.rank()] = st.sum;
}

struct Rig {
  std::unique_ptr<Machine> machine;
  core::SpbcProtocol* protocol = nullptr;
};

Rig make_rig(int nranks, int rpn, std::vector<int> clusters, int ckpt_every,
                 uint64_t eager_threshold = 64 * 1024) {
  MachineConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = rpn;
  cfg.eager_threshold = eager_threshold;
  cfg.abort_on_deadlock = false;
  // SPBC_TEST_SCALABLE_CTRL=1 reruns this suite with the scalable control
  // plane (leader-aggregated rollbacks + tree wave markers) forced on. The
  // checksum oracles below must hold regardless of which plane delivered
  // the recovery announces.
  if (std::getenv("SPBC_TEST_SCALABLE_CTRL") != nullptr) {
    cfg.aggregate_rollbacks = true;
    cfg.tree_ckpt_markers = true;
  }
  // SPBC_TEST_ELASTIC=1 reruns this suite with a spare-node pool and every
  // injected failure upgraded to a permanent node loss: the victim's node
  // never returns, its ranks hot-swap onto a pooled spare, and the same
  // checksum oracles must still hold across the rebind.
  if (std::getenv("SPBC_TEST_ELASTIC") != nullptr) {
    cfg.spare_nodes = 2;
    cfg.default_failure_kind = mpi::FailureKind::kNodePermanent;
  }
  core::SpbcConfig scfg;
  scfg.checkpoint_every = static_cast<uint64_t>(ckpt_every);
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  Rig s;
  s.protocol = proto.get();
  s.machine = std::make_unique<Machine>(cfg, std::move(proto));
  s.machine->set_cluster_of(std::move(clusters));
  return s;
}

std::map<int, uint64_t> failure_free_sums(int nranks, int iters) {
  std::map<int, uint64_t> sums;
  Rig s = make_rig(nranks, 2, std::vector<int>(static_cast<size_t>(nranks), 0), 0);
  RingOpts opt;
  opt.iters = iters;
  opt.sums = &sums;
  s.machine->launch([opt](Rank& r) { ring_app(r, opt); });
  EXPECT_TRUE(s.machine->run().completed);
  return sums;
}

TEST(Recovery, SingleFailureCompletesWithIdenticalResults) {
  const int n = 8, iters = 12;
  auto expect = failure_free_sums(n, iters);

  std::map<int, uint64_t> sums;
  // 4 clusters of 2 ranks (2 ranks per node).
  Rig s = make_rig(n, 2, {0, 0, 1, 1, 2, 2, 3, 3}, 3);
  RingOpts opt;
  opt.iters = iters;
  opt.sums = &sums;
  s.machine->launch([opt](Rank& r) { ring_app(r, opt); });
  s.machine->inject_failure(0.006, /*victim=*/2);  // cluster 1 rolls back
  mpi::RunResult res = s.machine->run();
  EXPECT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  EXPECT_EQ(s.protocol->rollbacks(), 1u);
  ASSERT_EQ(s.machine->recoveries().size(), 1u);
  EXPECT_TRUE(s.machine->recoveries()[0].complete());
}

TEST(Recovery, FailureContainmentOnlyFailedClusterRollsBack) {
  const int n = 8, iters = 12;
  Rig s = make_rig(n, 2, {0, 0, 1, 1, 2, 2, 3, 3}, 3);
  RingOpts opt;
  opt.iters = iters;
  s.machine->launch([opt](Rank& r) { ring_app(r, opt); });
  s.machine->inject_failure(0.006, 4);  // cluster 2
  EXPECT_TRUE(s.machine->run().completed);
  // Restarted flag is set only on the failed cluster's ranks.
  for (int r = 0; r < n; ++r) {
    bool in_failed = (r == 4 || r == 5);
    EXPECT_EQ(s.machine->rank(r).restarted(), in_failed) << "rank " << r;
  }
  // Recovery record covers exactly the failed cluster.
  const auto& rec = s.machine->recoveries().at(0);
  EXPECT_EQ(rec.failed_cluster, 2);
  EXPECT_EQ(rec.target_ops.size(), 2u);
  EXPECT_TRUE(rec.target_ops.count(4));
  EXPECT_TRUE(rec.target_ops.count(5));
}

TEST(Recovery, MessagesAreReplayedFromLogs) {
  const int n = 8, iters = 12;
  Rig s = make_rig(n, 2, {0, 0, 1, 1, 2, 2, 3, 3}, 3);
  RingOpts opt;
  opt.iters = iters;
  s.machine->launch([opt](Rank& r) { ring_app(r, opt); });
  s.machine->inject_failure(0.006, 2);
  EXPECT_TRUE(s.machine->run().completed);
  // Rank 1 (cluster 0) feeds rank 2 (failed cluster) over an inter-cluster
  // channel: its replayer must have re-sent logged messages.
  EXPECT_GT(s.protocol->replayer_of(1).replayed_total(), 0u);
  // In the ring, rank 3's sends to rank 4 are the failed cluster's
  // inter-cluster output: re-executed sends the survivor already received
  // must be suppressed (LS) or at worst dropped as duplicates.
  uint64_t suppressed = s.machine->rank(3).profile().suppressed_sends +
                        s.machine->rank(4).profile().duplicate_drops;
  EXPECT_GT(suppressed, 0u);
}

TEST(Recovery, FailureBeforeFirstCheckpointRestartsFromInitialState) {
  const int n = 4, iters = 6;
  auto expect = failure_free_sums(n, iters);
  std::map<int, uint64_t> sums;
  Rig s = make_rig(n, 2, {0, 0, 1, 1}, 0);  // never checkpoints
  RingOpts opt;
  opt.iters = iters;
  opt.sums = &sums;
  s.machine->launch([opt](Rank& r) { ring_app(r, opt); });
  s.machine->inject_failure(0.003, 0);
  EXPECT_TRUE(s.machine->run().completed);
  EXPECT_EQ(sums, expect);
  // Restart-from-sigma0: ranks re-ran their mains without restore.
  EXPECT_FALSE(s.machine->rank(0).restarted());
}

TEST(Recovery, RendezvousTrafficSurvivesFailure) {
  const int n = 4, iters = 8;
  // Eager threshold below the payload size: every message is rendezvous.
  auto expect = [&] {
    std::map<int, uint64_t> sums;
    Rig s = make_rig(n, 2, {0, 0, 0, 0}, 0, /*eager=*/128);
    RingOpts opt;
    opt.iters = iters;
    opt.bytes = 4096;
    opt.sums = &sums;
    s.machine->launch([opt](Rank& r) { ring_app(r, opt); });
    EXPECT_TRUE(s.machine->run().completed);
    return sums;
  }();
  std::map<int, uint64_t> sums;
  Rig s = make_rig(n, 2, {0, 0, 1, 1}, 2, /*eager=*/128);
  RingOpts opt;
  opt.iters = iters;
  opt.bytes = 4096;
  opt.sums = &sums;
  s.machine->launch([opt](Rank& r) { ring_app(r, opt); });
  s.machine->inject_failure(0.004, 3);
  mpi::RunResult res = s.machine->run();
  EXPECT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
}

TEST(Recovery, SecondFailureAfterRecoveryCompletes) {
  const int n = 8, iters = 16;
  auto expect = failure_free_sums(n, iters);
  std::map<int, uint64_t> sums;
  Rig s = make_rig(n, 2, {0, 0, 1, 1, 2, 2, 3, 3}, 3);
  RingOpts opt;
  opt.iters = iters;
  opt.sums = &sums;
  s.machine->launch([opt](Rank& r) { ring_app(r, opt); });
  s.machine->inject_failure(0.006, 2);   // cluster 1
  s.machine->inject_failure(0.020, 6);   // cluster 3, later
  mpi::RunResult res = s.machine->run();
  EXPECT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  EXPECT_EQ(s.protocol->rollbacks(), 2u);
}

TEST(Recovery, ConcurrentFailuresOfTwoClusters) {
  const int n = 8, iters = 16;
  auto expect = failure_free_sums(n, iters);
  std::map<int, uint64_t> sums;
  Rig s = make_rig(n, 2, {0, 0, 1, 1, 2, 2, 3, 3}, 3);
  RingOpts opt;
  opt.iters = iters;
  opt.sums = &sums;
  s.machine->launch([opt](Rank& r) { ring_app(r, opt); });
  s.machine->inject_failure(0.0060, 2);   // cluster 1
  s.machine->inject_failure(0.0062, 6);   // cluster 3, overlapping recovery
  mpi::RunResult res = s.machine->run();
  EXPECT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  EXPECT_EQ(s.protocol->rollbacks(), 2u);
}

TEST(Recovery, GlobalCoordinatedRollsBackEveryone) {
  const int n = 4, iters = 10;
  auto expect = failure_free_sums(n, iters);
  std::map<int, uint64_t> sums;
  // Single cluster: classic coordinated checkpointing, no logging.
  Rig s = make_rig(n, 2, {0, 0, 0, 0}, 3);
  RingOpts opt;
  opt.iters = iters;
  opt.sums = &sums;
  s.machine->launch([opt](Rank& r) { ring_app(r, opt); });
  s.machine->inject_failure(0.006, 1);
  EXPECT_TRUE(s.machine->run().completed);
  EXPECT_EQ(sums, expect);
  // Everyone rolled back; nothing was ever logged.
  for (int r = 0; r < n; ++r) {
    EXPECT_TRUE(s.machine->rank(r).restarted());
    EXPECT_EQ(s.machine->rank(r).profile().bytes_logged, 0u);
  }
}

TEST(Recovery, NoMessagesLostNoDuplicatesDelivered) {
  const int n = 8, iters = 12;
  Rig s = make_rig(n, 2, {0, 0, 1, 1, 2, 2, 3, 3}, 3);
  // Count deliveries at rank 3 (survivor neighbor of the failed cluster).
  std::map<int, int> recv_count;
  RingOpts opt;
  opt.iters = iters;
  s.machine->launch([opt, &recv_count](Rank& r) {
    ring_app(r, opt);
    recv_count[r.rank()] = static_cast<int>(r.profile().recvs);
  });
  s.machine->inject_failure(0.006, 2);
  EXPECT_TRUE(s.machine->run().completed);
  // Every rank delivered exactly `iters` ring messages per incarnation run;
  // survivors ran once: exactly iters deliveries.
  EXPECT_EQ(recv_count[0], iters);
  EXPECT_EQ(recv_count[7], iters);
}

}  // namespace
}  // namespace spbc

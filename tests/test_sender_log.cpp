// Unit tests: sender-based message log and the replay bookkeeping around it.

#include <gtest/gtest.h>

#include "core/sender_log.hpp"
#include "util/serialize.hpp"

namespace spbc::core {
namespace {

mpi::Envelope env_of(int src, int dst, int ctx, uint64_t seq, uint64_t bytes) {
  mpi::Envelope e;
  e.src = src;
  e.dst = dst;
  e.ctx = ctx;
  e.tag = 1;
  e.seqnum = seq;
  e.bytes = bytes;
  e.hash = seq * 31;
  return e;
}

TEST(SenderLog, AppendsInPostOrderAndCounts) {
  SenderLog log;
  log.append(env_of(0, 1, 0, 1, 100), mpi::Payload::make_synthetic(100, 1));
  log.append(env_of(0, 2, 0, 1, 200), mpi::Payload::make_synthetic(200, 2));
  log.append(env_of(0, 1, 0, 2, 50), mpi::Payload::make_synthetic(50, 3));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.bytes_appended(), 350u);
  EXPECT_EQ(log.bytes_retained(), 350u);
  EXPECT_EQ(log.messages_appended(), 3u);
  // Post order preserved.
  EXPECT_EQ(log.entries()[0].env.dst, 1);
  EXPECT_EQ(log.entries()[1].env.dst, 2);
  EXPECT_EQ(log.entries()[2].env.seqnum, 2u);
}

TEST(SenderLog, HasEntriesTo) {
  SenderLog log;
  log.append(env_of(0, 3, 0, 1, 10), mpi::Payload::make_synthetic(10, 0));
  EXPECT_TRUE(log.has_entries_to(3));
  EXPECT_FALSE(log.has_entries_to(4));
}

TEST(SenderLog, SerializeRestoreRoundTrip) {
  SenderLog log;
  std::vector<double> data{1.5, 2.5};
  log.append(env_of(0, 1, 0, 1, 16), mpi::Payload::from_vector(data));
  log.append(env_of(0, 1, 2, 1, 99), mpi::Payload::make_synthetic(99, 7));
  util::ByteWriter w;
  log.serialize(w);
  SenderLog log2;
  util::ByteReader r(w.bytes());
  log2.restore(r);
  ASSERT_EQ(log2.size(), 2u);
  EXPECT_EQ(log2.entries()[0].env.seqnum, 1u);
  EXPECT_EQ(log2.entries()[0].payload.data.size(), 16u);
  EXPECT_EQ(log2.entries()[1].payload.hash, 7u);
  EXPECT_TRUE(log2.entries()[1].payload.synthetic());
  EXPECT_EQ(log2.bytes_retained(), 115u);
  // Restore resets the queued-for-replay marker.
  EXPECT_EQ(log2.entries()[0].queued_for_inc, UINT32_MAX);
}

TEST(SenderLog, RestoreAfterAppendDiscardsNewer) {
  SenderLog log;
  log.append(env_of(0, 1, 0, 1, 10), mpi::Payload::make_synthetic(10, 0));
  util::ByteWriter w;
  log.serialize(w);
  log.append(env_of(0, 1, 0, 2, 20), mpi::Payload::make_synthetic(20, 0));
  util::ByteReader r(w.bytes());
  log.restore(r);  // rollback: post-checkpoint entries are gone
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.bytes_retained(), 10u);
  // Monotonic counters survive (Table 1 measures appended volume).
  EXPECT_EQ(log.bytes_appended(), 30u);
}

TEST(SenderLog, GcDropsCapturedEntries) {
  SenderLog log;
  for (uint64_t s = 1; s <= 5; ++s)
    log.append(env_of(0, 1, 0, s, 10), mpi::Payload::make_synthetic(10, s));
  log.append(env_of(0, 2, 0, 1, 10), mpi::Payload::make_synthetic(10, 0));
  mpi::SeqWindow captured;
  captured.add(1);
  captured.add(2);
  captured.add(3);
  uint64_t freed = log.gc_received(1, 0, captured);
  EXPECT_EQ(freed, 30u);
  EXPECT_EQ(log.size(), 3u);  // seq 4, 5 to rank 1 + the rank-2 entry
  EXPECT_EQ(log.bytes_retained(), 30u);
}

TEST(SenderLog, ClearResetsRetainedNotAppended) {
  SenderLog log;
  log.append(env_of(0, 1, 0, 1, 42), mpi::Payload::make_synthetic(42, 0));
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.bytes_retained(), 0u);
  EXPECT_EQ(log.bytes_appended(), 42u);
}

}  // namespace
}  // namespace spbc::core

// Unit/integration tests: SPBC protocol hooks — logging policy, failure-free
// behaviour, LS suppression bookkeeping, log GC extension.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/presets.hpp"
#include "core/spbc.hpp"
#include "mpi/machine.hpp"

namespace spbc {
namespace {

using mpi::Machine;
using mpi::MachineConfig;
using mpi::Payload;
using mpi::Rank;

struct Rig {
  std::unique_ptr<Machine> machine;
  core::SpbcProtocol* protocol = nullptr;
};

Rig make_rig(int nranks, std::vector<int> clusters, core::SpbcConfig scfg = {}) {
  MachineConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 1;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  Rig s;
  s.protocol = proto.get();
  s.machine = std::make_unique<Machine>(cfg, std::move(proto));
  s.machine->set_cluster_of(std::move(clusters));
  return s;
}

TEST(SpbcLogging, OnlyInterClusterMessagesAreLogged) {
  Rig s = make_rig(4, {0, 0, 1, 1});
  s.machine->launch([](Rank& r) {
    const mpi::Comm& w = r.world();
    if (r.rank() == 0) {
      r.send(1, 1, Payload::make_synthetic(100, 0), w);  // intra-cluster
      r.send(2, 1, Payload::make_synthetic(200, 0), w);  // inter-cluster
    } else if (r.rank() == 1) {
      r.recv(0, 1, w);
    } else if (r.rank() == 2) {
      r.recv(0, 1, w);
    }
  });
  EXPECT_TRUE(s.machine->run().completed);
  EXPECT_EQ(s.protocol->log_of(0).size(), 1u);
  EXPECT_EQ(s.protocol->log_of(0).bytes_appended(), 200u);
  EXPECT_EQ(s.machine->rank(0).profile().bytes_logged, 200u);
  EXPECT_EQ(s.machine->rank(0).profile().bytes_sent_intra_cluster, 100u);
  EXPECT_EQ(s.machine->rank(0).profile().bytes_sent_inter_cluster, 200u);
}

TEST(SpbcLogging, LoggingChargesSenderTime) {
  core::SpbcConfig scfg;
  scfg.log_memcpy_bw = 1e6;  // deliberately slow: 1 MB/s
  Rig inter = make_rig(2, {0, 1}, scfg);
  sim::Time t_inter = 0;
  inter.machine->launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.send(1, 1, Payload::make_synthetic(10000, 0), r.world());
      t_inter = r.now();
    } else {
      r.recv(0, 1, r.world());
    }
  });
  EXPECT_TRUE(inter.machine->run().completed);
  // 10 KB at 1 MB/s = 10 ms of logging time charged to the sender.
  EXPECT_GE(t_inter, 0.01);

  Rig intra = make_rig(2, {0, 0}, scfg);
  sim::Time t_intra = 0;
  intra.machine->launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.send(1, 1, Payload::make_synthetic(10000, 0), r.world());
      t_intra = r.now();
    } else {
      r.recv(0, 1, r.world());
    }
  });
  EXPECT_TRUE(intra.machine->run().completed);
  EXPECT_LT(t_intra, 0.001);  // no logging on intra-cluster sends
}

TEST(SpbcLogging, PureLoggingPresetLogsEverything) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 2;
  cfg.enforce_node_colocation = false;
  auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of(baselines::per_rank_cluster_map(4));
  m.launch([](Rank& r) {
    if (r.rank() == 0) {
      for (int d = 1; d < 4; ++d)
        r.send(d, 1, Payload::make_synthetic(50, 0), r.world());
    } else {
      r.recv(0, 1, r.world());
    }
  });
  EXPECT_TRUE(m.run().completed);
  EXPECT_EQ(p->log_of(0).bytes_appended(), 150u);
}

TEST(SpbcLogging, SingleClusterLogsNothing) {
  Rig s = make_rig(4, {0, 0, 0, 0});
  s.machine->launch([](Rank& r) {
    if (r.rank() == 0) {
      for (int d = 1; d < 4; ++d)
        r.send(d, 1, Payload::make_synthetic(50, 0), r.world());
    } else {
      r.recv(0, 1, r.world());
    }
  });
  EXPECT_TRUE(s.machine->run().completed);
  EXPECT_EQ(s.protocol->log_of(0).bytes_appended(), 0u);
}

TEST(SpbcLogging, GcReclaimsAfterDestinationCheckpoint) {
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  scfg.gc_logs = true;
  Rig s = make_rig(4, {0, 0, 1, 1}, scfg);
  s.machine->launch([](Rank& r) {
    r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(0); },
                         [](util::ByteReader& rd) { rd.get<int>(); });
    const mpi::Comm& w = r.world();
    for (int it = 0; it < 3; ++it) {
      if (r.rank() == 0) {
        r.send(2, 1, Payload::make_synthetic(100, 0), w);
      } else if (r.rank() == 2) {
        r.recv(0, 1, w);
      }
      r.maybe_checkpoint();
    }
  });
  EXPECT_TRUE(s.machine->run().completed);
  // All three messages were logged; GC after cluster 1's checkpoints
  // reclaimed the received ones.
  EXPECT_EQ(s.protocol->log_of(0).bytes_appended(), 300u);
  EXPECT_LT(s.protocol->log_of(0).bytes_retained(), 300u);
}

TEST(SpbcProtocol, PatternMatchingFlag) {
  core::SpbcConfig on;
  on.pattern_ids = true;
  core::SpbcConfig off;
  off.pattern_ids = false;
  core::SpbcProtocol a(on), b(off);
  EXPECT_TRUE(a.pattern_matching_enabled());
  EXPECT_FALSE(b.pattern_matching_enabled());
}

TEST(SpbcProtocol, CheckpointNowForcesWave) {
  core::SpbcConfig scfg;  // checkpoint_every = 0: no periodic checkpoints
  Rig s = make_rig(2, {0, 1}, scfg);
  core::SpbcProtocol* p = s.protocol;
  s.machine->launch([p](Rank& r) {
    r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(1); },
                         [](util::ByteReader& rd) { rd.get<int>(); });
    EXPECT_FALSE(r.maybe_checkpoint());
    p->checkpoint_now(r);
  });
  EXPECT_TRUE(s.machine->run().completed);
  EXPECT_EQ(p->checkpoints_taken(), 2u);
}

TEST(SpbcProtocol, SuppressionWindowBlocksTransmit) {
  // Direct unit check of should_transmit against an installed window.
  Rig s = make_rig(2, {0, 1});
  core::SpbcProtocol* p = s.protocol;
  s.machine->launch([p, &s](Rank& r) {
    if (r.rank() != 0) return;
    auto& ch = r.send_state(1, 0);
    ch.peer_received.add(1);
    ch.peer_received.add(2);
    mpi::Envelope e;
    e.src = 0;
    e.dst = 1;
    e.ctx = 0;
    e.seqnum = 2;
    EXPECT_FALSE(p->should_transmit(r, e));
    e.seqnum = 3;
    EXPECT_TRUE(p->should_transmit(r, e));
    (void)s;
  });
  EXPECT_TRUE(s.machine->run().completed);
}

}  // namespace
}  // namespace spbc

// Unit tests: utilities (serialization, RNG, stats, tables, CLI).

#include <gtest/gtest.h>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace spbc::util {
namespace {

TEST(Serialize, RoundTripScalars) {
  ByteWriter w;
  w.put<int>(-42);
  w.put<uint64_t>(123456789012345ULL);
  w.put<double>(3.25);
  w.put<uint8_t>(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<int>(), -42);
  EXPECT_EQ(r.get<uint64_t>(), 123456789012345ULL);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<uint8_t>(), 7);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, RoundTripVectorsAndStrings) {
  ByteWriter w;
  std::vector<double> v{1.0, 2.5, -3.0};
  w.put_vector(v);
  w.put_string("spbc");
  std::vector<uint32_t> empty;
  w.put_vector(empty);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_vector<double>(), v);
  EXPECT_EQ(r.get_string(), "spbc");
  EXPECT_TRUE(r.get_vector<uint32_t>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, RoundTripNestedBytes) {
  ByteWriter inner;
  inner.put<int>(99);
  ByteWriter w;
  w.put_bytes(inner.bytes().data(), inner.size());
  ByteReader r(w.bytes());
  auto blob = r.get_bytes();
  ByteReader ir(blob);
  EXPECT_EQ(ir.get<int>(), 99);
}

TEST(Rng, Pcg32Deterministic) {
  Pcg32 a(42, 1), b(42, 1);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, Pcg32StreamsDiffer) {
  Pcg32 a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, BoundedIsInRange) {
  Pcg32 g(7, 3);
  for (int i = 0; i < 1000; ++i) {
    uint32_t v = g.next_bounded(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, DoubleIsInUnitInterval) {
  Pcg32 g(11, 5);
  for (int i = 0; i < 1000; ++i) {
    double d = g.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, Fnv1aMatchesKnownVector) {
  // FNV-1a of empty input is the offset basis.
  Fnv1a64 h;
  EXPECT_EQ(h.digest(), 14695981039346656037ULL);
  h.update("a", 1);
  EXPECT_EQ(h.digest(), 0xaf63dc4c8601ec8cULL);
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, MergeEqualsCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = i * 0.7;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, SamplesPercentile) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"App", "Avg", "Max"});
  t.add_row({"MiniGhost", "1.6", "2.1"});
  t.add_row({"GTC", "0.4", "0.9"});
  std::string out = t.render();
  EXPECT_NE(out.find("MiniGhost"), std::string::npos);
  EXPECT_NE(out.find("| GTC"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
}

TEST(Cli, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--ranks=64", "--iters", "10", "--validate"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("ranks", 0), 64);
  EXPECT_EQ(cli.get_int("iters", 0), 10);
  EXPECT_TRUE(cli.get_flag("validate"));
  EXPECT_FALSE(cli.get_flag("absent"));
  EXPECT_EQ(cli.get_int("absent", 7), 7);
  EXPECT_EQ(cli.get_string("absent", "x"), "x");
}

TEST(Cli, ParsesDoubles) {
  const char* argv[] = {"prog", "--scale=0.5"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.5);
}

}  // namespace
}  // namespace spbc::util

// Unit tests: discrete-event engine, fibers, event queue, topology.

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/topology.hpp"

namespace spbc::sim {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });  // same time: insertion order
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int ran = 0;
  auto id = q.schedule(1.0, [&] { ++ran; });
  q.schedule(2.0, [&] { ++ran; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto id = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(Engine, TimeAdvancesMonotonically) {
  Engine e;
  std::vector<Time> stamps;
  e.at(0.5, [&] { stamps.push_back(e.now()); });
  e.at(0.25, [&] { stamps.push_back(e.now()); });
  e.at(1.0, [&] { stamps.push_back(e.now()); });
  e.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_DOUBLE_EQ(stamps[0], 0.25);
  EXPECT_DOUBLE_EQ(stamps[1], 0.5);
  EXPECT_DOUBLE_EQ(stamps[2], 1.0);
}

TEST(Engine, FiberWaitAdvancesVirtualTime) {
  Engine e;
  Time end = -1;
  e.spawn([&] {
    e.wait(1.5);
    e.wait(0.5);
    end = e.now();
  });
  e.run();
  EXPECT_DOUBLE_EQ(end, 2.0);
}

TEST(Engine, TwoFibersInterleaveDeterministically) {
  Engine e;
  std::vector<int> order;
  e.spawn([&] {
    order.push_back(1);
    e.wait(1.0);
    order.push_back(3);
  });
  e.spawn([&] {
    order.push_back(2);
    e.wait(0.5);
    order.push_back(4);  // wakes at 0.5, before fiber 1's 1.0
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3}));
}

TEST(Engine, ParkUnparkRoundTrip) {
  Engine e;
  bool done = false;
  Engine::TaskId id = e.spawn([&] {
    e.park();
    done = true;
  });
  e.at(3.0, [&] { e.unpark(id); });
  e.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, KillUnwindsStackWithDestructors) {
  Engine e;
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  Engine::TaskId id = e.spawn([&] {
    Sentinel s{&destroyed};
    e.park();  // killed here
    FAIL() << "should not resume";
  });
  e.at(1.0, [&] { e.kill(id); });
  e.run();
  EXPECT_TRUE(destroyed);
  EXPECT_TRUE(e.task_finished(id));
}

TEST(Engine, DeadlockDetectedGracefully) {
  Engine e;
  e.set_abort_on_deadlock(false);
  e.spawn([&] { e.park(); });  // nobody will wake it
  e.run();
  EXPECT_TRUE(e.deadlocked());
  EXPECT_EQ(e.live_task_count(), 1u);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int ran = 0;
  e.at(1.0, [&] { ++ran; });
  e.at(5.0, [&] { ++ran; });
  e.run_until(2.0);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(Engine, SpawnFromFiber) {
  Engine e;
  int child_ran = 0;
  e.spawn([&] {
    e.spawn([&] { ++child_ran; });
    e.wait(1.0);
  });
  e.run();
  EXPECT_EQ(child_ran, 1);
}

TEST(Engine, ManyFibersScale) {
  Engine e(64 * 1024);
  int finished = 0;
  for (int i = 0; i < 512; ++i) {
    e.spawn([&e, &finished, i] {
      e.wait(0.001 * (i % 7));
      ++finished;
    });
  }
  e.run();
  EXPECT_EQ(finished, 512);
}

TEST(Topology, NodeMapping) {
  Topology t(64, 8);
  EXPECT_EQ(t.nranks(), 512);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(7), 0);
  EXPECT_EQ(t.node_of(8), 1);
  EXPECT_EQ(t.node_of(511), 63);
  EXPECT_TRUE(t.same_node(8, 15));
  EXPECT_FALSE(t.same_node(7, 8));
}

TEST(Topology, ForRanksFactory) {
  Topology t = Topology::for_ranks(32, 4);
  EXPECT_EQ(t.nodes(), 8);
  EXPECT_EQ(t.ranks_per_node(), 4);
}

}  // namespace
}  // namespace spbc::sim

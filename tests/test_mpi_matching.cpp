// Unit tests: the matching engine in isolation — MPICH-like posted/
// unexpected queues, pattern-id matching (Section 4.3 / 5.2.1), and
// checkpoint serialization of the unexpected queue.

#include <gtest/gtest.h>

#include "mpi/matching.hpp"
#include "util/serialize.hpp"

namespace spbc::mpi {
namespace {

Envelope env_of(int src, int tag, uint64_t seq, PatternTag pid = {}) {
  Envelope e;
  e.src = src;
  e.dst = 0;
  e.tag = tag;
  e.ctx = 0;
  e.seqnum = seq;
  e.pid = pid;
  e.bytes = 8;
  e.hash = seq;
  return e;
}

std::shared_ptr<RequestState> req_of(int src, int tag, PatternTag pid = {}) {
  auto r = std::make_shared<RequestState>();
  r->kind = RequestState::Kind::kRecv;
  r->match_src = src;
  r->match_tag = tag;
  r->ctx = 0;
  r->pid = pid;
  return r;
}

TEST(Matching, PredicateBasics) {
  auto r = req_of(3, 5);
  EXPECT_TRUE(MatchEngine::matches(*r, env_of(3, 5, 1), false));
  EXPECT_FALSE(MatchEngine::matches(*r, env_of(2, 5, 1), false));
  EXPECT_FALSE(MatchEngine::matches(*r, env_of(3, 6, 1), false));
}

TEST(Matching, WildcardsMatchAnything) {
  auto r = req_of(kAnySource, kAnyTag);
  EXPECT_TRUE(MatchEngine::matches(*r, env_of(7, 42, 1), false));
}

TEST(Matching, CommunicatorSeparatesChannels) {
  auto r = req_of(1, 1);
  r->ctx = 5;
  Envelope e = env_of(1, 1, 1);
  e.ctx = 4;
  EXPECT_FALSE(MatchEngine::matches(*r, e, false));
  e.ctx = 5;
  EXPECT_TRUE(MatchEngine::matches(*r, e, false));
}

TEST(Matching, PatternIdsGateMatchingWhenEnabled) {
  PatternTag p1{1, 3};
  PatternTag p2{1, 4};
  auto r = req_of(kAnySource, 1, p1);
  Envelope e = env_of(2, 1, 1, p2);
  EXPECT_TRUE(MatchEngine::matches(*r, e, false));   // plain protocol
  EXPECT_FALSE(MatchEngine::matches(*r, e, true));   // A' with id matching
  Envelope ok = env_of(2, 1, 1, p1);
  EXPECT_TRUE(MatchEngine::matches(*r, ok, true));
}

TEST(Matching, PostOrderRespectedOnArrival) {
  MatchEngine m;
  auto r1 = req_of(kAnySource, 1);
  auto r2 = req_of(kAnySource, 1);
  m.on_post(r1);
  m.on_post(r2);
  Payload p;
  auto hit = m.on_envelope(env_of(5, 1, 1), p, true, 0);
  EXPECT_EQ(hit.get(), r1.get());  // first posted matches first
  auto hit2 = m.on_envelope(env_of(5, 1, 2), p, true, 0);
  EXPECT_EQ(hit2.get(), r2.get());
}

TEST(Matching, ArrivalOrderRespectedOnPost) {
  MatchEngine m;
  Payload p;
  EXPECT_EQ(m.on_envelope(env_of(5, 1, 1), p, true, 0), nullptr);
  EXPECT_EQ(m.on_envelope(env_of(6, 1, 1), p, true, 0), nullptr);
  auto res = m.on_post(req_of(kAnySource, 1));
  ASSERT_TRUE(res.matched);
  EXPECT_EQ(res.msg.env.src, 5);  // first arrived matches first
}

TEST(Matching, UnexpectedQueueSkipsNonMatching) {
  MatchEngine m;
  Payload p;
  m.on_envelope(env_of(5, 9, 1), p, true, 0);
  m.on_envelope(env_of(5, 1, 2), p, true, 0);
  auto res = m.on_post(req_of(kAnySource, 1));
  ASSERT_TRUE(res.matched);
  EXPECT_EQ(res.msg.env.tag, 1);
  EXPECT_EQ(m.unexpected().size(), 1u);
}

TEST(Matching, IprobePeeksWithoutRemoving) {
  MatchEngine m;
  Payload p;
  m.on_envelope(env_of(3, 2, 1), p, true, 0);
  RequestState probe;
  probe.match_src = kAnySource;
  probe.match_tag = 2;
  probe.ctx = 0;
  Status st;
  EXPECT_TRUE(m.iprobe(probe, &st));
  EXPECT_EQ(st.source, 3);
  EXPECT_EQ(m.unexpected().size(), 1u);
  probe.match_tag = 7;
  EXPECT_FALSE(m.iprobe(probe, nullptr));
}

TEST(Matching, RendezvousEnvelopeMatchesBeforePayload) {
  MatchEngine m;
  auto r = req_of(4, 1);
  m.on_post(r);
  Payload empty;
  auto hit = m.on_envelope(env_of(4, 1, 1), empty, /*payload_ready=*/false, 77);
  EXPECT_EQ(hit.get(), r.get());
}

TEST(Matching, CompleteUnexpectedPayload) {
  MatchEngine m;
  Payload empty;
  m.on_envelope(env_of(4, 1, 1), empty, false, 77);
  Payload data = Payload::make_synthetic(100, 0xfeed);
  EXPECT_TRUE(m.complete_unexpected_payload(77, 4, std::move(data)));
  auto res = m.on_post(req_of(4, 1));
  ASSERT_TRUE(res.matched);
  EXPECT_TRUE(res.msg.payload_ready);
  EXPECT_EQ(res.msg.payload.hash, 0xfeedU);
  EXPECT_FALSE(m.complete_unexpected_payload(99, 4, Payload{}));
}

TEST(Matching, CancelPostedRemoves) {
  MatchEngine m;
  auto r = req_of(1, 1);
  m.on_post(r);
  EXPECT_EQ(m.posted_count(), 1u);
  m.cancel_posted(r.get());
  EXPECT_EQ(m.posted_count(), 0u);
}

TEST(Matching, SerializeRestoresReadyUnexpectedOnly) {
  MatchEngine m;
  Payload full = Payload::make_synthetic(64, 0x11);
  m.on_envelope(env_of(2, 1, 1), full, true, 0);
  Payload empty;
  m.on_envelope(env_of(3, 1, 1), empty, false, 55);  // pending RTS: skipped
  util::ByteWriter w;
  m.serialize(w);
  MatchEngine m2;
  util::ByteReader r(w.bytes());
  m2.restore(r);
  EXPECT_EQ(m2.unexpected().size(), 1u);
  EXPECT_EQ(m2.unexpected().front().env.src, 2);
  EXPECT_EQ(m2.unexpected().front().payload.hash, 0x11U);
}

TEST(SeqWindow, ContiguousGrowth) {
  SeqWindow w;
  w.add(1);
  w.add(2);
  w.add(3);
  EXPECT_EQ(w.base(), 3u);
  EXPECT_TRUE(w.sparse().empty());
  EXPECT_TRUE(w.contains(2));
  EXPECT_FALSE(w.contains(4));
}

TEST(SeqWindow, OutOfOrderAbsorption) {
  SeqWindow w;
  w.add(1);
  w.add(3);  // gap at 2
  EXPECT_EQ(w.base(), 1u);
  EXPECT_TRUE(w.contains(3));
  EXPECT_FALSE(w.contains(2));
  w.add(2);  // fills the gap; base advances through 3
  EXPECT_EQ(w.base(), 3u);
  EXPECT_TRUE(w.sparse().empty());
}

TEST(SeqWindow, EncodeDecodeRoundTrip) {
  SeqWindow w;
  w.add(1);
  w.add(2);
  w.add(5);
  w.add(9);
  std::vector<uint64_t> words;
  w.encode(words);
  size_t pos = 0;
  SeqWindow w2 = SeqWindow::decode(words, pos);
  EXPECT_EQ(w, w2);
  EXPECT_EQ(pos, words.size());
}

TEST(SeqWindow, SerializeRoundTrip) {
  SeqWindow w;
  w.add(1);
  w.add(4);
  util::ByteWriter bw;
  w.serialize(bw);
  util::ByteReader br(bw.bytes());
  EXPECT_EQ(SeqWindow::deserialize(br), w);
}

}  // namespace
}  // namespace spbc::mpi

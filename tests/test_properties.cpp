// Parameterized property sweeps over (app x cluster count x failure point):
// the five invariants of DESIGN.md Section 5 that involve whole runs —
// recovery equivalence, failure containment, replay order, suppression
// accounting, and log-volume consistency with the traffic matrix.

#include <gtest/gtest.h>

#include <tuple>

#include "clustering/comm_graph.hpp"
#include "harness/scenario.hpp"

namespace spbc {
namespace {

using Param = std::tuple<std::string, int, double>;  // app, clusters, failure frac

class RecoveryProperty : public ::testing::TestWithParam<Param> {};

harness::ScenarioConfig config_for(const std::string& app, int nclusters) {
  harness::ScenarioConfig cfg;
  cfg.app = app;
  cfg.nranks = 16;
  cfg.ranks_per_node = 2;
  cfg.nclusters = nclusters;
  cfg.protocol = harness::ProtocolKind::kSpbc;
  cfg.app_cfg.iters = 6;
  cfg.app_cfg.validate = true;
  cfg.app_cfg.msg_scale = 0.02;
  cfg.app_cfg.compute_scale = 0.02;
  cfg.spbc.checkpoint_every = 2;
  cfg.machine.abort_on_deadlock = false;
  cfg.use_clustering_tool = false;
  return cfg;
}

TEST_P(RecoveryProperty, EquivalenceAndContainment) {
  auto [app, nclusters, frac] = GetParam();
  harness::ScenarioConfig cfg = config_for(app, nclusters);
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed) << app;
  harness::ScenarioResult rec = harness::run_with_failure(cfg, ff.elapsed, frac);
  ASSERT_TRUE(rec.run.completed)
      << app << " k=" << nclusters << " frac=" << frac
      << " deadlocked=" << rec.run.deadlocked;

  // Invariant 3: no loss, no duplication — identical results.
  EXPECT_EQ(rec.checksums, ff.checksums) << app << " k=" << nclusters;

  // Invariant 4: containment — the recovery record names exactly the ranks
  // of one cluster.
  ASSERT_FALSE(rec.recoveries.empty());
  const mpi::RecoveryRecord& r0 = rec.recoveries.front();
  EXPECT_TRUE(r0.complete());
  int failed = r0.failed_cluster;
  size_t cluster_size = 0;
  for (int c : rec.cluster_of)
    if (c == failed) ++cluster_size;
  EXPECT_EQ(r0.target_ops.size(), cluster_size);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryProperty,
    ::testing::Combine(::testing::Values("MiniGhost", "AMG", "GTC", "MILC"),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(0.35, 0.7)));

class FailurePointSweep : public ::testing::TestWithParam<double> {};

// Invariant: recovery works regardless of where in the run the failure
// lands — before the first checkpoint, right after one, near the end.
TEST_P(FailurePointSweep, RingAppAnyFailurePoint) {
  double frac = GetParam();
  harness::ScenarioConfig cfg = config_for("MiniGhost", 4);
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);
  harness::ScenarioResult rec = harness::run_with_failure(cfg, ff.elapsed, frac);
  ASSERT_TRUE(rec.run.completed) << "frac=" << frac;
  EXPECT_EQ(rec.checksums, ff.checksums) << "frac=" << frac;
}

INSTANTIATE_TEST_SUITE_P(Fracs, FailurePointSweep,
                         ::testing::Values(0.15, 0.3, 0.5, 0.65, 0.85));

// Invariant 5/6 accounting: the protocol's logged volume equals the
// inter-cluster traffic the clustering graph predicts.
TEST(LogVolume, MatchesTrafficMatrixCut) {
  harness::ScenarioConfig cfg = config_for("MiniGhost", 4);
  cfg.app_cfg.validate = false;
  cfg.protocol = harness::ProtocolKind::kNative;
  cfg.machine.record_send_trace = false;

  // Native run collects the traffic matrix.
  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  mpi::Machine native(mc, baselines::make_native());
  std::vector<int> map = harness::compute_cluster_map(
      [] {
        harness::ScenarioConfig c = config_for("MiniGhost", 4);
        c.app_cfg.validate = false;
        return c;
      }());
  native.set_cluster_of(map);
  const apps::AppInfo& info = apps::find_app("MiniGhost");
  apps::AppConfig acfg = cfg.app_cfg;
  native.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });
  ASSERT_TRUE(native.run().completed);
  clustering::CommGraph g =
      clustering::CommGraph::from_traffic(cfg.nranks, native.traffic());
  uint64_t predicted = g.logged_bytes(map);

  // SPBC run with the same map must log exactly that volume.
  mpi::Machine spbc_m(mc, std::make_unique<core::SpbcProtocol>(cfg.spbc));
  spbc_m.set_cluster_of(map);
  spbc_m.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });
  ASSERT_TRUE(spbc_m.run().completed);
  uint64_t logged = 0;
  for (int r = 0; r < cfg.nranks; ++r)
    logged += spbc_m.rank(r).profile().bytes_logged;
  EXPECT_EQ(logged, predicted);
}

// More clusters => more (or equal) logged data (Table 1's monotone columns).
TEST(LogVolume, MonotoneInClusterCount) {
  uint64_t prev = 0;
  for (int k : {1, 2, 4, 8}) {
    harness::ScenarioConfig cfg = config_for("MiniGhost", k);
    cfg.app_cfg.validate = false;
    if (k == 1) cfg.protocol = harness::ProtocolKind::kGlobalCoordinated;
    harness::ScenarioResult res = harness::run_failure_free(cfg);
    ASSERT_TRUE(res.run.completed);
    EXPECT_GE(res.profile.bytes_logged, prev) << "k=" << k;
    prev = res.profile.bytes_logged;
  }
}

}  // namespace
}  // namespace spbc

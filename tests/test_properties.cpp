// Parameterized property sweeps over (app x cluster count x failure point):
// the five invariants of DESIGN.md Section 5 that involve whole runs —
// recovery equivalence, failure containment, replay order, suppression
// accounting, and log-volume consistency with the traffic matrix.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "ckpt/staging.hpp"
#include "clustering/comm_graph.hpp"
#include "core/spbc.hpp"
#include "failure_matrix.hpp"
#include "harness/scenario.hpp"
#include "util/rng.hpp"

namespace spbc {
namespace {

using Param = std::tuple<std::string, int, double>;  // app, clusters, failure frac

class RecoveryProperty : public ::testing::TestWithParam<Param> {};

harness::ScenarioConfig config_for(const std::string& app, int nclusters) {
  harness::ScenarioConfig cfg;
  cfg.app = app;
  cfg.nranks = 16;
  cfg.ranks_per_node = 2;
  cfg.nclusters = nclusters;
  cfg.protocol = harness::ProtocolKind::kSpbc;
  cfg.app_cfg.iters = 6;
  cfg.app_cfg.validate = true;
  cfg.app_cfg.msg_scale = 0.02;
  cfg.app_cfg.compute_scale = 0.02;
  cfg.spbc.checkpoint_every = 2;
  cfg.machine.abort_on_deadlock = false;
  cfg.use_clustering_tool = false;
  return cfg;
}

TEST_P(RecoveryProperty, EquivalenceAndContainment) {
  auto [app, nclusters, frac] = GetParam();
  harness::ScenarioConfig cfg = config_for(app, nclusters);
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed) << app;
  harness::ScenarioResult rec = harness::run_with_failure(cfg, ff.elapsed, frac);
  ASSERT_TRUE(rec.run.completed)
      << app << " k=" << nclusters << " frac=" << frac
      << " deadlocked=" << rec.run.deadlocked;

  // Invariant 3: no loss, no duplication — identical results.
  EXPECT_EQ(rec.checksums, ff.checksums) << app << " k=" << nclusters;

  // Invariant 4: containment — the recovery record names exactly the ranks
  // of one cluster.
  ASSERT_FALSE(rec.recoveries.empty());
  const mpi::RecoveryRecord& r0 = rec.recoveries.front();
  EXPECT_TRUE(r0.complete());
  int failed = r0.failed_cluster;
  size_t cluster_size = 0;
  for (int c : rec.cluster_of)
    if (c == failed) ++cluster_size;
  EXPECT_EQ(r0.target_ops.size(), cluster_size);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryProperty,
    ::testing::Combine(::testing::Values("MiniGhost", "AMG", "GTC", "MILC"),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(0.35, 0.7)));

class FailurePointSweep : public ::testing::TestWithParam<double> {};

// Invariant: recovery works regardless of where in the run the failure
// lands — before the first checkpoint, right after one, near the end.
TEST_P(FailurePointSweep, RingAppAnyFailurePoint) {
  double frac = GetParam();
  harness::ScenarioConfig cfg = config_for("MiniGhost", 4);
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);
  harness::ScenarioResult rec = harness::run_with_failure(cfg, ff.elapsed, frac);
  ASSERT_TRUE(rec.run.completed) << "frac=" << frac;
  EXPECT_EQ(rec.checksums, ff.checksums) << "frac=" << frac;
}

INSTANTIATE_TEST_SUITE_P(Fracs, FailurePointSweep,
                         ::testing::Values(0.15, 0.3, 0.5, 0.65, 0.85));

// Invariant 5/6 accounting: the protocol's logged volume equals the
// inter-cluster traffic the clustering graph predicts.
TEST(LogVolume, MatchesTrafficMatrixCut) {
  harness::ScenarioConfig cfg = config_for("MiniGhost", 4);
  cfg.app_cfg.validate = false;
  cfg.protocol = harness::ProtocolKind::kNative;
  cfg.machine.record_send_trace = false;

  // Native run collects the traffic matrix.
  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  mpi::Machine native(mc, baselines::make_native());
  std::vector<int> map = harness::compute_cluster_map(
      [] {
        harness::ScenarioConfig c = config_for("MiniGhost", 4);
        c.app_cfg.validate = false;
        return c;
      }());
  native.set_cluster_of(map);
  const apps::AppInfo& info = apps::find_app("MiniGhost");
  apps::AppConfig acfg = cfg.app_cfg;
  native.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });
  ASSERT_TRUE(native.run().completed);
  clustering::CommGraph g =
      clustering::CommGraph::from_traffic(cfg.nranks, native.traffic());
  uint64_t predicted = g.logged_bytes(map);

  // SPBC run with the same map must log exactly that volume.
  mpi::Machine spbc_m(mc, std::make_unique<core::SpbcProtocol>(cfg.spbc));
  spbc_m.set_cluster_of(map);
  spbc_m.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });
  ASSERT_TRUE(spbc_m.run().completed);
  uint64_t logged = 0;
  for (int r = 0; r < cfg.nranks; ++r)
    logged += spbc_m.rank(r).profile().bytes_logged;
  EXPECT_EQ(logged, predicted);
}

// More clusters => more (or equal) logged data (Table 1's monotone columns).
TEST(LogVolume, MonotoneInClusterCount) {
  uint64_t prev = 0;
  for (int k : {1, 2, 4, 8}) {
    harness::ScenarioConfig cfg = config_for("MiniGhost", k);
    cfg.app_cfg.validate = false;
    if (k == 1) cfg.protocol = harness::ProtocolKind::kGlobalCoordinated;
    harness::ScenarioResult res = harness::run_failure_free(cfg);
    ASSERT_TRUE(res.run.completed);
    EXPECT_GE(res.profile.bytes_logged, prev) << "k=" << k;
    prev = res.profile.bytes_logged;
  }
}

// Redundancy-liveness property: for random residency states (random write /
// node-kill sequences) and every scheme, `recoverable_without_pfs` must
// never exceed the brute-force oracle — an actual byte reconstruction (full
// copy, XOR fold, or GF(256) Cauchy solve) from exactly what the residency
// view says is readable. Conservatism (predicate false, oracle true) is
// allowed; false liveness is not, because the protocol would then skip the
// PFS/epoch fallback and fail the restore.
TEST(LivenessOracle, NoFalseLivenessUnderRandomResidency) {
  for (uint64_t seed = 1; seed <= 80; ++seed) {
    util::Pcg32 rng(seed, 0x0bac1e);
    ckpt::RedundancyConfig red;
    int span = 2;
    switch (rng.next_bounded(4)) {
      case 0:
        red.kind = ckpt::SchemeKind::kSingle;
        break;
      case 1:
        red.kind = ckpt::SchemeKind::kPartner;
        break;
      case 2:
        red.kind = ckpt::SchemeKind::kXorGroup;
        red.group_size = 3 + static_cast<int>(rng.next_bounded(3));
        span = red.group_size;
        break;
      default:
        red.kind = ckpt::SchemeKind::kReedSolomon;
        red.rs_k = 2 + static_cast<int>(rng.next_bounded(5));
        red.rs_m = 1 + static_cast<int>(rng.next_bounded(3));
        span = red.rs_k + red.rs_m;
        break;
    }
    const int nodes = span + static_cast<int>(rng.next_bounded(4));

    mpi::MachineConfig mc;
    mc.nranks = nodes;
    mc.ranks_per_node = 1;
    auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
    mpi::Machine m(mc, std::move(proto));
    std::vector<int> clusters(static_cast<size_t>(nodes));
    for (int n = 0; n < nodes; ++n) clusters[static_cast<size_t>(n)] = n / 2;
    m.set_cluster_of(clusters);

    ckpt::StagingConfig sc;
    sc.level = ckpt::StorageLevel::kPartner;  // sync: fragments land with write
    sc.async = false;
    sc.redundancy = red;
    ckpt::StagingArea area(sc);
    area.attach(m);

    // Random mutation sequence: writes (including rewrites after a node
    // came back) interleaved with node kills; audit liveness vs the oracle
    // after every step, across every (rank, epoch).
    for (int op = 0; op < 24; ++op) {
      const uint32_t action = rng.next_bounded(3);
      const int subject = static_cast<int>(
          rng.next_bounded(static_cast<uint32_t>(nodes)));
      if (action == 0) {
        area.invalidate_node(subject);
      } else {
        const uint64_t epoch = 1 + rng.next_bounded(2);
        area.write(subject, epoch, 512);
      }
      for (int r = 0; r < nodes; ++r) {
        for (uint64_t e = 1; e <= 2; ++e) {
          const bool live = area.scheme().recoverable_without_pfs(r, e, area);
          if (!live) continue;
          EXPECT_TRUE(testing::oracle_recoverable(area, red, nodes, r, e))
              << "scheme " << ckpt::scheme_name(red.kind)
              << " claims liveness the oracle refutes: seed=" << seed
              << " op=" << op << " rank=" << r << " epoch=" << e;
        }
      }
    }
  }
}

}  // namespace
}  // namespace spbc

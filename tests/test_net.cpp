// Unit tests: network model — latency/bandwidth arithmetic, per-channel
// FIFO (with and without jitter), NIC injection serialization.

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"

namespace spbc::net {
namespace {

NetworkParams flat_params() {
  NetworkParams p;
  p.intra_latency = sim::usec(1);
  p.intra_bandwidth = 1e9;
  p.inter_latency = sim::usec(10);
  p.inter_bandwidth = 1e8;
  p.model_nic_contention = false;
  return p;
}

TEST(Network, WireTimeIntraVsInter) {
  sim::Engine e;
  sim::Topology topo(2, 4);  // ranks 0-3 node 0, 4-7 node 1
  Network net(e, topo, flat_params());
  // intra: 1us + 1000/1e9 = 2us
  EXPECT_NEAR(net.wire_time(0, 1, 1000), 2e-6, 1e-12);
  // inter: 10us + 1000/1e8 = 20us
  EXPECT_NEAR(net.wire_time(0, 4, 1000), 20e-6, 1e-12);
}

TEST(Network, SubmitDeliversAtWireTime) {
  sim::Engine e;
  sim::Topology topo(2, 4);
  Network net(e, topo, flat_params());
  sim::Time arrived = -1;
  net.submit(Transfer{0, 4, 1000}, [&] { arrived = e.now(); });
  e.run();
  EXPECT_NEAR(arrived, 20e-6, 1e-12);
}

TEST(Network, PerChannelFifoUnderJitter) {
  sim::Engine e;
  sim::Topology topo(2, 4);
  NetworkParams p = flat_params();
  p.jitter_frac = 0.8;
  p.jitter_seed = 99;
  Network net(e, topo, p);
  std::vector<int> arrivals;
  for (int i = 0; i < 50; ++i)
    net.submit(Transfer{0, 4, 100}, [&arrivals, i] { arrivals.push_back(i); });
  e.run();
  ASSERT_EQ(arrivals.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(arrivals[static_cast<size_t>(i)], i);
}

TEST(Network, DistinctChannelsMayReorder) {
  sim::Engine e;
  sim::Topology topo(3, 1);
  NetworkParams p = flat_params();
  Network net(e, topo, p);
  std::vector<int> arrivals;
  // Big message 0->2 submitted first, small message 1->2 second: the small
  // one lands first because bandwidth delays the big one.
  net.submit(Transfer{0, 2, 1000000}, [&] { arrivals.push_back(0); });
  net.submit(Transfer{1, 2, 10}, [&] { arrivals.push_back(1); });
  e.run();
  EXPECT_EQ(arrivals, (std::vector<int>{1, 0}));
}

TEST(Network, NicSerializesInterNodeInjection) {
  sim::Engine e;
  sim::Topology topo(2, 2);
  NetworkParams p = flat_params();
  p.model_nic_contention = true;
  Network net(e, topo, p);
  sim::Time t1 = -1, t2 = -1;
  // Two messages from the same node injected back-to-back: the second waits
  // for the first's serialization (1e6 bytes / 1e8 B/s = 10ms each).
  net.submit(Transfer{0, 2, 1000000}, [&] { t1 = e.now(); });
  net.submit(Transfer{1, 3, 1000000}, [&] { t2 = e.now(); });
  e.run();
  EXPECT_NEAR(t1, 10e-6 + 0.01, 1e-9);
  EXPECT_NEAR(t2, 10e-6 + 0.02, 1e-9);  // queued behind the first injection
}

TEST(Network, IntraNodeSkipsNic) {
  sim::Engine e;
  sim::Topology topo(2, 2);
  NetworkParams p = flat_params();
  p.model_nic_contention = true;
  Network net(e, topo, p);
  sim::Time t1 = -1, t2 = -1;
  net.submit(Transfer{0, 1, 1000000}, [&] { t1 = e.now(); });
  net.submit(Transfer{0, 1, 1000000}, [&] { t2 = e.now(); });
  e.run();
  // Intra-node transfers do not share the NIC but FIFO still applies on the
  // channel; both computed from submit time (1us + 1ms), FIFO keeps order.
  EXPECT_NEAR(t1, 1e-6 + 1e-3, 1e-9);
  EXPECT_GE(t2, t1);
}

TEST(Network, CountsTraffic) {
  sim::Engine e;
  sim::Topology topo(2, 1);
  Network net(e, topo, flat_params());
  net.submit(Transfer{0, 1, 500}, [] {});
  net.submit(Transfer{1, 0, 700}, [] {});
  e.run();
  EXPECT_EQ(net.transfers_submitted(), 2u);
  EXPECT_EQ(net.bytes_submitted(), 1200u);
}

TEST(Network, JitterIsDeterministicPerSeed) {
  auto run_once = [](uint64_t seed) {
    sim::Engine e;
    sim::Topology topo(2, 1);
    NetworkParams p;
    p.jitter_frac = 0.5;
    p.jitter_seed = seed;
    Network net(e, topo, p);
    sim::Time arrived = -1;
    net.submit(Transfer{0, 1, 1000}, [&] { arrived = e.now(); });
    e.run();
    return arrived;
  };
  EXPECT_DOUBLE_EQ(run_once(1), run_once(1));
  EXPECT_NE(run_once(1), run_once(2));
}

}  // namespace
}  // namespace spbc::net

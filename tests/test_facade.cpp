// Facade conformance suite (core/facade.hpp; DESIGN.md §16).
//
// Covers the drop-in adoption surface end to end: the
// need/start/route/complete lifecycle and its misuse rejection, the ported
// facade apps (MiniFE-facade, BT-facade) recovering checksum-identical
// under hostile workload shapes, bit-identity of the facade path across
// engine shard layouts (same discipline as test_engine_shard.cpp), and the
// per-shape ScenarioResult accounting (straggler stall, partition holds,
// PFS interference).
//
// SPBC_TEST_ELASTIC=1 reruns the scenario-level suites with a two-node
// spare pool and permanent node losses as the default failure kind, so the
// facade's restart path is also exercised across a spare-node hot-swap.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/facade.hpp"
#include "core/spbc.hpp"
#include "harness/scenario.hpp"
#include "mpi/machine.hpp"
#include "trace/determinism.hpp"

namespace spbc {
namespace {

using core::SPBC_ERR_BAD_ARG;
using core::SPBC_ERR_IN_SESSION;
using core::SPBC_ERR_NO_SESSION;
using core::SPBC_ERR_TRUNCATED;
using core::SPBC_ERR_UNKNOWN_REGION;
using core::SPBC_SUCCESS;

bool elastic_env() { return std::getenv("SPBC_TEST_ELASTIC") != nullptr; }

void apply_elastic_env(mpi::MachineConfig& cfg) {
  if (elastic_env()) {
    cfg.spare_nodes = 2;
    cfg.default_failure_kind = mpi::FailureKind::kNodePermanent;
  }
}

// ---- lifecycle + misuse rejection -----------------------------------------

TEST(FacadeLifecycle, NeedStartRouteCompleteAndMisuseCodes) {
  mpi::MachineConfig mc;
  mc.nranks = 4;
  mc.ranks_per_node = 2;
  mc.seed = 3;
  core::SpbcConfig sc;
  sc.checkpoint_every = 2;
  auto proto = std::make_unique<core::SpbcProtocol>(sc);
  core::SpbcProtocol* p = proto.get();
  mpi::Machine m(mc, std::move(proto));
  m.set_cluster_of({0, 0, 1, 1});

  m.launch([p](mpi::Rank& rank) {
    const int me = rank.rank();
    // Fresh start: no restart state.
    int have = -1;
    EXPECT_EQ(core::spbc_have_restart(rank, &have), SPBC_SUCCESS);
    EXPECT_EQ(have, 0);

    // Misuse outside a session.
    EXPECT_EQ(core::spbc_route(rank, "iter", &me, sizeof me, nullptr, 0),
              SPBC_ERR_NO_SESSION);
    EXPECT_EQ(core::spbc_complete(rank, 1), SPBC_ERR_NO_SESSION);
    EXPECT_EQ(core::spbc_need_checkpoint(rank, nullptr), SPBC_ERR_BAD_ARG);

    // The static every-N schedule paces the need query: checkpoint_every=2
    // means the second opportunity is the boundary.
    int need = -1;
    EXPECT_EQ(core::spbc_need_checkpoint(rank, &need), SPBC_SUCCESS);
    EXPECT_EQ(need, 0);
    EXPECT_EQ(core::spbc_need_checkpoint(rank, &need), SPBC_SUCCESS);
    EXPECT_EQ(need, 1);

    // A committed session: routed regions land in the rank's LOCAL store
    // for the NEXT epoch, resolved against the current physical binding.
    EXPECT_EQ(core::spbc_start(rank), SPBC_SUCCESS);
    EXPECT_EQ(core::spbc_start(rank), SPBC_ERR_IN_SESSION);
    EXPECT_EQ(core::spbc_route(rank, nullptr, &me, sizeof me, nullptr, 0),
              SPBC_ERR_BAD_ARG);
    EXPECT_EQ(core::spbc_route(rank, "iter", nullptr, sizeof me, nullptr, 0),
              SPBC_ERR_BAD_ARG);
    char where[128] = {0};
    EXPECT_EQ(core::spbc_route(rank, "iter", &me, sizeof me, where,
                               sizeof where),
              SPBC_SUCCESS);
    char expect[128];
    std::snprintf(expect, sizeof expect, "local://node%d/rank%d/epoch%llu/iter",
                  rank.machine().node_of(me), me,
                  static_cast<unsigned long long>(p->snapshot_epoch(me) + 1));
    EXPECT_STREQ(where, expect);
    double junk = 1.5;
    EXPECT_EQ(core::spbc_route(rank, "junk", &junk, sizeof junk, nullptr, 0),
              SPBC_SUCCESS);
    EXPECT_EQ(core::spbc_complete(rank, /*valid=*/1), SPBC_SUCCESS);

    // An invalid session discards its routed regions (the app detected a
    // torn dump); the committed image is untouched.
    EXPECT_EQ(core::spbc_start(rank), SPBC_SUCCESS);
    int torn = -1;
    EXPECT_EQ(core::spbc_route(rank, "torn", &torn, sizeof torn, nullptr, 0),
              SPBC_SUCCESS);
    EXPECT_EQ(core::spbc_complete(rank, /*valid=*/0), SPBC_SUCCESS);

    // Region reads: the sizing protocol and its error codes.
    uint64_t len = 0;
    EXPECT_EQ(core::spbc_restart_read(rank, "iter", nullptr, &len),
              SPBC_ERR_TRUNCATED);
    EXPECT_EQ(len, sizeof me);
    int back = -1;
    EXPECT_EQ(core::spbc_restart_read(rank, "iter", &back, &len), SPBC_SUCCESS);
    EXPECT_EQ(back, me);
    EXPECT_EQ(core::spbc_restart_read(rank, "nope", &back, &len),
              SPBC_ERR_UNKNOWN_REGION);
    EXPECT_EQ(core::spbc_restart_read(rank, "torn", &back, &len),
              SPBC_ERR_UNKNOWN_REGION);
  });
  mpi::RunResult res = m.run();
  ASSERT_TRUE(res.completed);

  for (int r = 0; r < 4; ++r) {
    const auto& fs = p->facade_state(r);
    EXPECT_FALSE(fs.in_session) << r;
    EXPECT_EQ(fs.sessions, 2u) << r;
    EXPECT_EQ(fs.completes, 1u) << r;  // the torn session never committed
    EXPECT_EQ(fs.regions.size(), 2u) << r;
  }
  // spbc_complete(valid=1) cut a real epoch through the coordinated wave.
  EXPECT_GT(p->store().snapshots_taken(), 0u);
}

TEST(FacadeLifecycle, ErrorStringsAreDistinct) {
  for (int code : {SPBC_SUCCESS, core::SPBC_ERR_NO_PROTOCOL,
                   SPBC_ERR_IN_SESSION, SPBC_ERR_NO_SESSION, SPBC_ERR_BAD_ARG,
                   SPBC_ERR_UNKNOWN_REGION, SPBC_ERR_TRUNCATED}) {
    ASSERT_NE(core::spbc_error_string(code), nullptr);
    EXPECT_GT(std::strlen(core::spbc_error_string(code)), 0u) << code;
  }
  EXPECT_STRNE(core::spbc_error_string(SPBC_ERR_NO_SESSION),
               core::spbc_error_string(SPBC_ERR_IN_SESSION));
}

// ---- checksum-identical recovery under hostile shapes ---------------------
//
// The acceptance bar: both facade ports run end-to-end through the facade
// and recover checksum-identical under at least three hostile shapes. Each
// shape is expressed through ScenarioConfig::hostile and composed with the
// partner-scheme default; the same config runs failure-free and with an
// injected mid-run failure, and the results must match bit-for-bit.

harness::ScenarioConfig facade_config(const std::string& app) {
  harness::ScenarioConfig cfg;
  cfg.app = app;
  cfg.nranks = 16;
  cfg.ranks_per_node = 2;
  cfg.nclusters = 4;
  cfg.app_cfg.iters = 6;
  cfg.app_cfg.validate = true;
  cfg.app_cfg.msg_scale = 0.02;
  cfg.app_cfg.compute_scale = 0.02;
  cfg.spbc.checkpoint_every = 2;
  cfg.machine.abort_on_deadlock = false;
  cfg.use_clustering_tool = false;
  apply_elastic_env(cfg.machine);
  return cfg;
}

struct HostileShape {
  const char* name;
  void (*apply)(harness::ScenarioConfig&, sim::Time probe_elapsed);
};

const HostileShape kShapes[] = {
    {"bursty-traffic",
     [](harness::ScenarioConfig& cfg, sim::Time) {
       cfg.hostile.burst_factor = 3.0;
       cfg.hostile.burst_period = 3;
       cfg.hostile.burst_duty = 1;
     }},
    {"straggler-skew",
     [](harness::ScenarioConfig& cfg, sim::Time) {
       cfg.hostile.straggler_factor = 1.5;
       cfg.hostile.straggler_frac = 0.4;
       cfg.hostile.straggler_seed = 11;
     }},
    {"healing-partition",
     [](harness::ScenarioConfig& cfg, sim::Time probe_elapsed) {
       // Split the machine down the middle for the probe run's middle
       // third; the window is fixed virtual time, identical in the
       // failure-free and recovery runs.
       cfg.hostile.partitions.push_back(
           {probe_elapsed * 0.3, probe_elapsed * 0.7,
            cfg.nranks / cfg.ranks_per_node / 2});
     }},
};

class FacadeHostileRecovery
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(FacadeHostileRecovery, ChecksumIdenticalViaFacade) {
  const auto& [app, shape_idx] = GetParam();
  const HostileShape& shape = kShapes[shape_idx];

  harness::ScenarioConfig cfg = facade_config(app);
  harness::ScenarioResult probe = harness::run_failure_free(cfg);
  ASSERT_TRUE(probe.run.completed) << app << "/" << shape.name;
  shape.apply(cfg, probe.elapsed);

  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed) << app << "/" << shape.name;
  ASSERT_EQ(ff.checksums.size(), static_cast<size_t>(cfg.nranks));

  harness::ScenarioResult rec = harness::run_with_failure(cfg, ff.elapsed, 0.55);
  ASSERT_TRUE(rec.run.completed)
      << app << "/" << shape.name << ": deadlocked=" << rec.run.deadlocked;
  EXPECT_EQ(rec.checksums, ff.checksums) << app << "/" << shape.name;
  ASSERT_FALSE(rec.recoveries.empty()) << app << "/" << shape.name;
  EXPECT_TRUE(rec.recoveries.front().complete()) << app << "/" << shape.name;
}

INSTANTIATE_TEST_SUITE_P(
    AppsByShape, FacadeHostileRecovery,
    ::testing::Combine(::testing::Values(std::string("MiniFE-facade"),
                                         std::string("BT-facade")),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         kShapes[std::get<1>(info.param)].name;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---- bit-identity across engine shard layouts -----------------------------
//
// Same discipline as test_engine_shard.cpp: a fixed-seed run with injected
// failures and recoveries must be bit-identical on every shard plan — now
// through the facade path, under hostile knobs (bursty traffic + straggler
// nodes; both deterministic pure functions of iteration index / node id, so
// they cannot depend on the execution layout).

struct FacadeOut {
  bool completed = false;
  sim::Time finish = 0;
  std::map<mpi::ChannelKey, std::vector<uint64_t>> trace;
  size_t recoveries = 0;
  uint64_t snapshots = 0;
};

FacadeOut facade_run(const std::string& app, int engine_shards,
                     int engine_threads,
                     const std::vector<std::pair<sim::Time, int>>& failures) {
  const int nranks = 32, ppn = 2, nclusters = 8;
  mpi::MachineConfig mc;
  mc.nranks = nranks;
  mc.ranks_per_node = ppn;
  mc.seed = 7;
  mc.record_send_trace = true;
  mc.compute_noise_frac = 0.05;
  mc.net.jitter_frac = 0.0;
  mc.engine_shards = engine_shards;
  mc.engine_threads = engine_threads;
  // Hostile knobs: straggle a third of the nodes and burst every third
  // iteration's messages.
  mc.straggler_factor = 1.5;
  mc.straggler_frac = 0.3;
  mc.straggler_seed = 5;

  core::SpbcConfig sc;
  sc.checkpoint_every = 2;
  sc.redundancy.kind = ckpt::SchemeKind::kSingle;  // node-local reservations
  auto proto = std::make_unique<core::SpbcProtocol>(sc);
  core::SpbcProtocol* p = proto.get();
  mpi::Machine m(mc, std::move(proto));

  const int nodes = nranks / ppn;
  std::vector<int> cmap(nranks);
  for (int r = 0; r < nranks; ++r) cmap[r] = (r / ppn) * nclusters / nodes;
  m.set_cluster_of(cmap);

  const apps::AppInfo& info = apps::find_app(app);
  apps::AppConfig ac;
  ac.iters = 6;
  ac.msg_scale = 0.05;
  ac.compute_scale = 0.05;
  ac.validate = false;
  ac.burst_factor = 2.0;
  ac.burst_period = 3;
  ac.burst_duty = 1;
  m.launch([&info, ac](mpi::Rank& r) { info.main(r, ac); });
  for (const auto& [t, victim] : failures) m.inject_failure(t, victim);

  mpi::RunResult res = m.run();
  FacadeOut out;
  out.completed = res.completed;
  out.finish = res.finish_time;
  out.trace = m.send_trace();
  out.recoveries = m.recoveries().size();
  out.snapshots = p->store().snapshots_taken();
  return out;
}

class FacadeShardDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(FacadeShardDeterminism, HostileRunBitIdenticalAcrossShardPlans) {
  const std::string app = GetParam();
  FacadeOut ff = facade_run(app, 1, 1, {});
  ASSERT_TRUE(ff.completed);
  const std::vector<std::pair<sim::Time, int>> failures = {
      {ff.finish * 0.35, 3}, {ff.finish * 0.6, 21}};

  FacadeOut ref = facade_run(app, 1, 1, failures);
  ASSERT_TRUE(ref.completed);
  EXPECT_EQ(ref.recoveries, 2u);

  struct Plan {
    int shards, threads;
    const char* name;
  };
  const std::vector<Plan> plans = {{2, 1, "shards=2"},
                                   {8, 1, "shards=8"},
                                   {0, 1, "shards=per-cluster"},
                                   {8, 4, "shards=8,threads=4"}};
  for (const Plan& pl : plans) {
    FacadeOut got = facade_run(app, pl.shards, pl.threads, failures);
    ASSERT_TRUE(got.completed) << app << "/" << pl.name;
    EXPECT_EQ(got.finish, ref.finish) << app << "/" << pl.name;
    EXPECT_EQ(got.recoveries, ref.recoveries) << app << "/" << pl.name;
    EXPECT_EQ(got.snapshots, ref.snapshots) << app << "/" << pl.name;
    trace::DeterminismReport rep =
        trace::compare_send_traces(ref.trace, got.trace);
    EXPECT_TRUE(rep.equal) << app << "/" << pl.name << ": " << rep.detail;
    EXPECT_GT(rep.events_compared, 0u) << app << "/" << pl.name;
  }
}

INSTANTIATE_TEST_SUITE_P(BothPorts, FacadeShardDeterminism,
                         ::testing::Values("MiniFE-facade", "BT-facade"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param == "MiniFE-facade" ? "MiniFE" : "BT";
                         });

// ---- per-shape accounting --------------------------------------------------
//
// ScenarioResult's hostile counters must move exactly when their shape is
// on: straggler stall time, partition holds/stall, and PFS interference
// (contended flushes, extra flush seconds, queue-depth high-water mark).

TEST(HostileStats, StragglerStallAccounting) {
  harness::ScenarioConfig cfg = facade_config("MiniFE-facade");
  harness::ScenarioResult base = harness::run_failure_free(cfg);
  ASSERT_TRUE(base.run.completed);
  EXPECT_EQ(base.straggler_stall_time, 0.0);

  cfg.hostile.straggler_factor = 2.0;
  cfg.hostile.straggler_frac = 0.4;
  cfg.hostile.straggler_seed = 11;
  harness::ScenarioResult slow = harness::run_failure_free(cfg);
  ASSERT_TRUE(slow.run.completed);
  EXPECT_GT(slow.straggler_stall_time, 0.0);
  // Stalls are real time: the straggled run finishes later.
  EXPECT_GT(slow.elapsed, base.elapsed);
  // Checksums are content, not timing: identical to the un-straggled run.
  EXPECT_EQ(slow.checksums, base.checksums);
}

TEST(HostileStats, PartitionHoldAccounting) {
  harness::ScenarioConfig cfg = facade_config("BT-facade");
  harness::ScenarioResult base = harness::run_failure_free(cfg);
  ASSERT_TRUE(base.run.completed);
  EXPECT_EQ(base.partition_msgs_held, 0u);
  EXPECT_EQ(base.partition_stall_time, 0.0);

  cfg.hostile.partitions.push_back(
      {base.elapsed * 0.2, base.elapsed * 0.6,
       cfg.nranks / cfg.ranks_per_node / 2});
  harness::ScenarioResult part = harness::run_failure_free(cfg);
  ASSERT_TRUE(part.run.completed);
  EXPECT_GT(part.partition_msgs_held, 0u);
  EXPECT_GT(part.partition_stall_time, 0.0);
  EXPECT_GT(part.elapsed, base.elapsed);
  EXPECT_EQ(part.checksums, base.checksums);
}

TEST(HostileStats, PfsInterferenceAccounting) {
  harness::ScenarioConfig cfg = facade_config("MiniFE-facade");
  // Real staging with a PFS tail so flushes exist to contend with.
  cfg.spbc.storage = ckpt::StorageLevel::kPfs;
  cfg.spbc.async_staging = true;
  cfg.spbc.snapshot_pad_bytes = 1 << 20;
  harness::ScenarioResult base = harness::run_failure_free(cfg);
  ASSERT_TRUE(base.run.completed);
  ASSERT_GT(base.staging.pfs_flushes, 0u);
  EXPECT_EQ(base.pfs_contended_flushes, 0u);
  EXPECT_EQ(base.pfs_interference_time, 0.0);
  EXPECT_GE(base.pfs_queue_depth_hwm, 1u);

  // Another job owns 3/4 of the PFS ingest for the whole run.
  cfg.hostile.pfs_interference.push_back({0.0, 1e9, 0.25});
  harness::ScenarioResult busy = harness::run_failure_free(cfg);
  ASSERT_TRUE(busy.run.completed);
  EXPECT_GT(busy.pfs_contended_flushes, 0u);
  EXPECT_GT(busy.pfs_interference_time, 0.0);
  EXPECT_GE(busy.pfs_queue_depth_hwm, base.pfs_queue_depth_hwm);
  EXPECT_EQ(busy.checksums, base.checksums);
}

TEST(HostileStats, DomainFailureInjection) {
  // One rack's worth of correlated losses through the hostile matrix; the
  // scenario must count the expanded per-node failures and still recover
  // checksum-identical.
  harness::ScenarioConfig cfg = facade_config("MiniFE-facade");
  cfg.spbc.redundancy.kind = ckpt::SchemeKind::kReedSolomon;
  cfg.spbc.redundancy.rs_k = 4;
  cfg.spbc.redundancy.rs_m = 2;
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);
  EXPECT_EQ(ff.domain_failures_injected, 0u);

  cfg.hostile.rack_size = 2;  // 2-node rack = 4 ranks, inside RS(4,2) reach
  cfg.hostile.domain_failures.push_back(
      {ff.elapsed * 0.55, harness::FailureDomain::kRack, 1});
  harness::ScenarioResult rec = harness::run_scenario(cfg);
  ASSERT_TRUE(rec.run.completed) << "deadlocked=" << rec.run.deadlocked;
  EXPECT_EQ(rec.domain_failures_injected, 2u);
  EXPECT_FALSE(rec.recoveries.empty());
  EXPECT_EQ(rec.checksums, ff.checksums);
}

}  // namespace
}  // namespace spbc

// Tests: asynchronous multi-level checkpoint staging (LOCAL -> PARTNER ->
// PFS), residency-aware recovery (cheapest live level, cross-level and
// cross-epoch fallback), the binomial-tree commit reduction, the in-flight
// capture memory bound, and log reclamation accounting.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "ckpt/staging.hpp"
#include "core/spbc.hpp"
#include "mpi/machine.hpp"

namespace spbc {
namespace {

using mpi::Machine;
using mpi::MachineConfig;
using mpi::Payload;
using mpi::Rank;

// Slows the PFS so drains stay observable mid-run: a ~KB snapshot takes tens
// of milliseconds to flush while LOCAL writes and partner copies stay fast.
ckpt::StorageCostModel slow_pfs_model() {
  ckpt::StorageCostModel m;
  m.pfs_bw = 1.0e5;
  return m;
}

TEST(Staging, PartnerMappingPrefersOtherCluster) {
  MachineConfig cfg;
  cfg.nranks = 8;
  cfg.ranks_per_node = 2;
  core::SpbcConfig scfg;
  scfg.storage = ckpt::StorageLevel::kPfs;
  scfg.async_staging = true;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 0, 0, 0, 1, 1, 1, 1});  // nodes 0,1 vs nodes 2,3
  for (int r = 0; r < 8; ++r) {
    int partner = p->staging().partner_of(r);
    ASSERT_GE(partner, 0);
    EXPECT_NE(m.cluster_of(partner), m.cluster_of(r))
        << "rank " << r << " partnered inside its own failure domain";
    EXPECT_NE(m.topology().node_of(partner), m.topology().node_of(r));
  }
  // Single cluster: a cross-cluster buddy does not exist; a distinct node
  // must still be chosen.
  auto proto2 = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p2 = proto2.get();
  Machine m2(cfg, std::move(proto2));
  m2.set_cluster_of(std::vector<int>(8, 0));
  EXPECT_NE(m2.topology().node_of(p2->staging().partner_of(0)),
            m2.topology().node_of(0));
}

// Async staging charges the member only the LOCAL write; by the end of the
// run the background drainer has promoted every snapshot to PFS.
TEST(Staging, AsyncWriteStallsShortAndDrainsToPfs) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  scfg.storage = ckpt::StorageLevel::kPfs;
  scfg.async_staging = true;
  scfg.storage_model = slow_pfs_model();
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1});
  sim::Time stall = 0;
  m.launch([&](Rank& r) {
    r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(1); },
                         [](util::ByteReader& rd) { rd.get<int>(); });
    sim::Time before = r.now();
    r.maybe_checkpoint();
    if (r.rank() == 0) stall = r.now() - before;
  });
  EXPECT_TRUE(m.run().completed);
  // The fiber paid roughly the LOCAL write (base latency + ~KB/GBps), far
  // below the tens-of-milliseconds sync PFS write of the same snapshot.
  EXPECT_GT(stall, 0.0);
  EXPECT_LT(stall, 1e-2);
  const ckpt::StagingStats& st = p->staging().stats();
  EXPECT_EQ(st.drains_started, 2u);
  EXPECT_EQ(st.pfs_flushes, 2u);
  EXPECT_GE(p->staging().pfs_frontier(0), 1u);
  EXPECT_EQ(p->staging().levels(0, 1) & ckpt::kAtPfs, ckpt::kAtPfs);
}

// Commit does not wait for the drain: an epoch committed while its PFS flush
// is still in flight records LOCAL residency, and the introspection shows
// which redundancy actually backed the commit.
TEST(Staging, CommitRecordsResidencyAtCommitTime) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  scfg.storage = ckpt::StorageLevel::kPfs;
  scfg.async_staging = true;
  scfg.storage_model = slow_pfs_model();
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 0});
  m.launch([&](Rank& r) {
    r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(1); },
                         [](util::ByteReader& rd) { rd.get<int>(); });
    r.maybe_checkpoint();
    r.compute(1e-4);  // commit happens here, long before the PFS flush
  });
  EXPECT_TRUE(m.run().completed);
  EXPECT_EQ(p->committed_epoch(0), 1u);
  EXPECT_NE(p->commit_levels(0) & ckpt::kAtLocal, 0);
  EXPECT_EQ(p->commit_levels(0) & ckpt::kAtPfs, 0)
      << "commit should have preceded the slow PFS flush";
}

// A failure that destroys the LOCAL copies restores the cluster from the
// PARTNER copies hosted on the surviving failure domain.
TEST(Staging, PartnerCopyServesRecovery) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 2;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  scfg.storage = ckpt::StorageLevel::kPfs;
  scfg.async_staging = true;
  scfg.storage_model = slow_pfs_model();
  const int iters = 3;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 0, 1, 1});
  m.launch([](Rank& r) {
    struct St {
      int iter = 0;
    } st;
    r.set_state_handlers(
        [&st](util::ByteWriter& w) { w.put(st); },
        [&st](util::ByteReader& rd) { st = rd.get<decltype(st)>(); });
    if (r.restarted()) r.restore_app_state();
    const mpi::Comm& w = r.world();
    for (; st.iter < iters;) {
      int peer = r.rank() ^ 1;  // intra-cluster pairing
      mpi::Request rq = r.irecv(peer, 1, w);
      r.isend(peer, 1, Payload::make_synthetic(128, 7), w);
      r.wait(rq);
      r.compute(5e-3);
      ++st.iter;
      r.maybe_checkpoint();
    }
  });
  // Epoch 1 commits around t=5ms (LOCAL + PARTNER; the slow PFS flush is
  // still pending); the crash at 8ms destroys node 0's LOCAL copies.
  m.inject_failure(8e-3, 0);
  mpi::RunResult res = m.run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  ASSERT_EQ(m.recoveries().size(), 1u);
  EXPECT_TRUE(m.recoveries().at(0).complete());
  EXPECT_GT(m.recoveries().at(0).checkpoint_time, 0.0);
  const ckpt::StagingStats& st = p->staging().stats();
  EXPECT_EQ(st.epoch_fallbacks, 0u);
  // Both members of the failed cluster restored from their buddy node.
  EXPECT_GE(st.restores_by_level[1], 2u);  // index 1 = PARTNER
  EXPECT_EQ(st.restores_by_level[0], 0u);  // LOCAL was destroyed
}

// Drain-in-progress failure: the committed epoch existed only at LOCAL (and
// at a PARTNER inside the same dying failure domain), so recovery falls back
// to the older epoch the drainer had already flushed to PFS — and the
// re-execution still produces the failure-free result.
TEST(Staging, DrainInProgressFailureFallsBackAnEpoch) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  scfg.storage = ckpt::StorageLevel::kPfs;
  scfg.async_staging = true;
  scfg.storage_model = slow_pfs_model();
  const int iters = 3;
  auto run = [&](bool inject, std::map<int, uint64_t>* sums,
                 core::SpbcProtocol** proto_out) {
    auto proto = std::make_unique<core::SpbcProtocol>(scfg);
    if (proto_out) *proto_out = proto.get();
    auto m = std::make_unique<Machine>(cfg, std::move(proto));
    m->set_cluster_of({0, 0});  // one cluster spanning both nodes
    m->launch([sums](Rank& r) {
      struct St {
        int iter = 0;
        uint64_t sum = 0;
      } st;
      r.set_state_handlers(
          [&st](util::ByteWriter& w) { w.put(st); },
          [&st](util::ByteReader& rd) { st = rd.get<decltype(st)>(); });
      if (r.restarted()) r.restore_app_state();
      const mpi::Comm& w = r.world();
      for (; st.iter < iters;) {
        int peer = 1 - r.rank();
        mpi::Request rq = r.irecv(peer, 1, w);
        r.isend(peer, 1,
                Payload::make_synthetic(
                    128, static_cast<uint64_t>(r.rank() * 100 + st.iter)),
                w);
        r.wait(rq);
        util::Fnv1a64 h;
        h.update_u64(st.sum);
        h.update_u64(rq.result().hash);
        st.sum = h.digest();
        // Iteration 0 ends at ~10ms (epoch 1; its flush lands ~15-20ms);
        // iteration 1 stretches to ~70ms (epoch 2, flush pending at the
        // 72ms crash).
        r.compute(st.iter == 1 ? 60e-3 : 10e-3);
        ++st.iter;
        r.maybe_checkpoint();
      }
      if (sums) (*sums)[r.rank()] = st.sum;
    });
    if (inject) m->inject_failure(72e-3, 0);
    return m;
  };
  std::map<int, uint64_t> expect;
  {
    auto m = run(false, &expect, nullptr);
    ASSERT_TRUE(m->run().completed);
  }
  std::map<int, uint64_t> sums;
  core::SpbcProtocol* p = nullptr;
  auto m = run(true, &sums, &p);
  mpi::RunResult res = m->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  const ckpt::StagingStats& st = p->staging().stats();
  EXPECT_EQ(st.epoch_fallbacks, 1u);
  EXPECT_GE(st.restores_by_level[2], 2u);  // index 2 = PFS
  ASSERT_EQ(m->recoveries().size(), 1u);
  // The restored checkpoint is epoch 1 (cut at ~10ms), not the committed-
  // but-destroyed epoch 2 (cut at ~70ms).
  EXPECT_GT(m->recoveries().at(0).checkpoint_time, 5e-3);
  EXPECT_LT(m->recoveries().at(0).checkpoint_time, 40e-3);
  // Re-execution recommitted the redone epochs.
  EXPECT_EQ(p->committed_epoch(0), static_cast<uint64_t>(iters));
}

// The capture bound turns memory pressure into an early checkpoint wave:
// a rank whose live capture bytes exceed the bound cuts a fresh epoch at its
// next opportunity, and the resulting commit reclaims the captures.
TEST(Staging, CaptureBoundForcesEarlyWave) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 2;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 0;  // no periodic schedule: pressure must trigger
  scfg.capture_bytes_bound = 512;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 0});
  const int batches = 3, per_batch = 4;
  m.launch([&](Rank& r) {
    r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(0); },
                         [](util::ByteReader& rd) { rd.get<int>(); });
    const mpi::Comm& w = r.world();
    if (r.rank() == 1) p->checkpoint_now(r);
    for (int b = 0; b < batches; ++b) {
      for (int i = 0; i < per_batch; ++i) {
        if (r.rank() == 0)
          r.send(1, 1, Payload::make_synthetic(256, 0xc0de), w);
        else
          r.recv(0, 1, w);
      }
      r.maybe_checkpoint();
      r.compute(1e-3);
    }
  });
  EXPECT_TRUE(m.run().completed);
  // Rank 0's first batch was stamped pre-cut and captured at rank 1 (1KB >
  // the 512B bound), forcing at least one wave beyond the checkpoint_now.
  EXPECT_GE(p->capture_forced_waves(), 1u);
  EXPECT_GT(p->store().capture_hwm_bytes(), scfg.capture_bytes_bound);
  EXPECT_GE(p->committed_epoch(0), 2u);
  // The forced commit reclaimed the pressure: live captures ended below the
  // high-water mark.
  EXPECT_LT(p->store().capture_live_bytes(1), p->store().capture_hwm_bytes());
}

// The binomial-tree completion reduction commits waves for cluster sizes on
// and off powers of two.
TEST(Staging, TreeReductionCommitsAcrossClusterSizes) {
  for (int nranks : {6, 8}) {
    MachineConfig cfg;
    cfg.nranks = nranks;
    cfg.ranks_per_node = nranks / 2;
    core::SpbcConfig scfg;
    scfg.checkpoint_every = 1;
    auto proto = std::make_unique<core::SpbcProtocol>(scfg);
    core::SpbcProtocol* p = proto.get();
    Machine m(cfg, std::move(proto));
    m.set_cluster_of(std::vector<int>(static_cast<size_t>(nranks), 0));
    const int iters = 3;
    m.launch([&](Rank& r) {
      r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(0); },
                           [](util::ByteReader& rd) { rd.get<int>(); });
      const mpi::Comm& w = r.world();
      for (int it = 0; it < iters; ++it) {
        int to = (r.rank() + 1) % r.nranks();
        int from = (r.rank() + r.nranks() - 1) % r.nranks();
        mpi::Request rq = r.irecv(from, 1, w);
        r.isend(to, 1, Payload::make_synthetic(64, static_cast<uint64_t>(it)), w);
        r.wait(rq);
        r.maybe_checkpoint();
      }
    });
    EXPECT_TRUE(m.run().completed) << "nranks=" << nranks;
    EXPECT_EQ(p->committed_epoch(0), static_cast<uint64_t>(iters));
    EXPECT_EQ(p->checkpoints_taken(),
              static_cast<uint64_t>(nranks) * static_cast<uint64_t>(iters));
  }
}

// Kill-during-drain: the partner node dies while it hosts the only PARTNER
// copy and the PFS flush sourced from it is still in flight. The promotion
// hop must not abort the chain — it retries from the cheapest surviving
// level (the home node's LOCAL copy) and still lands the snapshot on PFS.
// Drives the StagingArea directly so the loss timing is exact.
TEST(Staging, HopRetriesFromLocalWhenPartnerDiesMidDrain) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;
  auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1});  // rank 1's node hosts rank 0's PARTNER copies
  ckpt::StagingConfig sc;
  sc.level = ckpt::StorageLevel::kPfs;
  sc.async = true;
  sc.model = slow_pfs_model();  // 100KB => ~1s of PFS flush time
  ckpt::StagingArea area(sc);
  area.attach(m);
  ASSERT_EQ(area.partner_of(0), 1);
  // Rank 0 snapshots epoch 1: LOCAL write, then the background chain copies
  // to the partner (fast) and starts the ~1s PFS flush from the partner's
  // node. At t=50ms that node's storage dies, taking the flush's source.
  m.engine().at(1e-3, [&] { area.write(0, 1, 100000); });
  m.engine().at(50e-3, [&] { area.invalidate_node(1); });
  mpi::RunResult res = m.run();
  EXPECT_TRUE(res.completed);
  const ckpt::StagingStats& st = area.stats();
  EXPECT_GE(st.hop_retries, 1u);       // the hop was re-issued, not abandoned
  EXPECT_EQ(st.drains_aborted, 0u);    // the chain never gave up
  EXPECT_EQ(st.pfs_flushes, 1u);
  // The retried chain reached PFS from the surviving LOCAL copy. The buddy
  // node is still out of service (no resident wrote again), so no new
  // PARTNER copy may land there — a copy on a down store would outlive the
  // node's next death, because invalidate_node dedups repeat failures.
  EXPECT_EQ(area.levels(0, 1) & ckpt::kAtPartner, 0);
  EXPECT_NE(area.levels(0, 1) & ckpt::kAtPfs, 0);
  EXPECT_NE(area.levels(0, 1) & ckpt::kAtLocal, 0);
  EXPECT_EQ(area.pfs_frontier(0), 1u);
}

// gc_logs reclaims sender-log entries once the destination cluster commits,
// and the reclamation is now measurable.
TEST(Staging, GcLogsReclaimsMeasuredBytes) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 2;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  scfg.gc_logs = true;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 0, 1, 1});
  const int iters = 4;
  m.launch([&](Rank& r) {
    r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(0); },
                         [](util::ByteReader& rd) { rd.get<int>(); });
    const mpi::Comm& w = r.world();
    for (int it = 0; it < iters; ++it) {
      int to = (r.rank() + 1) % 4;  // ring: crosses clusters at 1->2, 3->0
      int from = (r.rank() + 3) % 4;
      mpi::Request rq = r.irecv(from, 1, w);
      r.isend(to, 1, Payload::make_synthetic(512, static_cast<uint64_t>(it)), w);
      r.wait(rq);
      r.compute(1e-3);
      r.maybe_checkpoint();
    }
  });
  EXPECT_TRUE(m.run().completed);
  uint64_t reclaimed = 0, retained = 0;
  for (int r = 0; r < 4; ++r) {
    reclaimed += p->log_of(r).bytes_reclaimed();
    retained += p->log_of(r).bytes_retained();
  }
  EXPECT_GT(reclaimed, 0u);
  // Reclamation kept the live log strictly below everything ever appended.
  uint64_t appended = 0;
  for (int r = 0; r < 4; ++r) appended += p->log_of(r).bytes_appended();
  EXPECT_LT(retained, appended);
}

}  // namespace
}  // namespace spbc

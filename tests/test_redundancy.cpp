// Tests: the pluggable redundancy-scheme layer (ckpt/redundancy.hpp).
//
// Failure matrix for kXorGroup — a single in-group node loss rebuilds the
// snapshot from surviving fragments without touching the PFS, a double
// in-group loss falls back to the PFS frontier epoch, a source death
// mid-rebuild retries from a surviving fragment — plus group construction
// (spanning failure domains, rotating parity hosts), proactive
// re-protection after a host loss, kPartner-through-the-interface parity
// with the pre-refactor restore-source counts, and the capture-spill
// backstop when bound pressure cannot prune past the retention floor.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "ckpt/redundancy.hpp"
#include "ckpt/staging.hpp"
#include "core/spbc.hpp"
#include "mpi/machine.hpp"

namespace spbc {
namespace {

using mpi::Machine;
using mpi::MachineConfig;
using mpi::Payload;
using mpi::Rank;

ckpt::StorageCostModel slow_pfs_model() {
  ckpt::StorageCostModel m;
  m.pfs_bw = 1.0e5;
  return m;
}

core::SpbcConfig xor_config() {
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  scfg.storage = ckpt::StorageLevel::kPfs;
  scfg.async_staging = true;
  scfg.storage_model = slow_pfs_model();
  scfg.redundancy.kind = ckpt::SchemeKind::kXorGroup;
  scfg.redundancy.group_size = 4;
  return scfg;
}

// Groups are dealt round-robin over the cluster-sorted node list, so a
// group's nodes land in distinct failure domains whenever the machine has
// enough clusters.
TEST(Redundancy, XorGroupsSpanFailureDomains) {
  MachineConfig cfg;
  cfg.nranks = 32;
  cfg.ranks_per_node = 8;  // 4 nodes
  core::SpbcConfig scfg = xor_config();
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  std::vector<int> clusters(32);
  for (int r = 0; r < 32; ++r) clusters[static_cast<size_t>(r)] = r / 8;
  m.set_cluster_of(clusters);  // one node per cluster
  for (int r = 0; r < 32; ++r) {
    std::vector<int> group = p->staging().scheme().group_of(r);
    ASSERT_EQ(group.size(), 3u) << "rank " << r;
    std::set<int> domains{m.cluster_of(r)};
    for (int member : group) {
      EXPECT_EQ(member % 8, r % 8) << "group must keep the node-local slot";
      domains.insert(m.cluster_of(member));
    }
    EXPECT_EQ(domains.size(), 4u)
        << "rank " << r << "'s group does not span all failure domains";
  }
}

// With G=2 on a 4-node machine the deal must still split same-cluster nodes
// into different groups.
TEST(Redundancy, XorSmallGroupsAvoidSameCluster) {
  MachineConfig cfg;
  cfg.nranks = 8;
  cfg.ranks_per_node = 2;  // 4 nodes
  core::SpbcConfig scfg = xor_config();
  scfg.redundancy.group_size = 2;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 0, 0, 0, 1, 1, 1, 1});  // clusters = node pairs
  for (int r = 0; r < 8; ++r) {
    std::vector<int> group = p->staging().scheme().group_of(r);
    ASSERT_EQ(group.size(), 1u);
    EXPECT_NE(m.cluster_of(group[0]), m.cluster_of(r))
        << "rank " << r << " grouped inside its own failure domain";
  }
}

// Sync writes at the redundancy level (no PFS in the chain at all) place the
// parity with the write; the host rotates with the epoch, and after a home
// node loss the group alone keeps the epoch recoverable — the sync-local
// mode that could not survive node loss now can (ROADMAP).
TEST(Redundancy, SyncXorRotatesHostsAndSurvivesNodeLossWithoutPfs) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 1;
  auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1, 2, 3});
  ckpt::StagingConfig sc;
  sc.level = ckpt::StorageLevel::kPartner;  // chain ends at redundancy
  sc.async = false;
  sc.redundancy.kind = ckpt::SchemeKind::kXorGroup;
  sc.redundancy.group_size = 4;
  ckpt::StagingArea area(sc);
  area.attach(m);
  for (int r = 0; r < 4; ++r) {
    area.write(r, 1, 3000);
    area.write(r, 2, 3000);
  }
  const std::vector<ckpt::Fragment>* f1 = area.fragments(0, 1);
  const std::vector<ckpt::Fragment>* f2 = area.fragments(0, 2);
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);
  ASSERT_EQ(f1->size(), 1u);
  ASSERT_EQ(f2->size(), 1u);
  EXPECT_TRUE(f1->front().parity && f1->front().live);
  EXPECT_NE(f1->front().host_rank, f2->front().host_rank)
      << "parity host must rotate with the epoch";
  EXPECT_EQ(f1->front().bytes, 1000u);  // ceil(B / (G-1))
  // Node loss: every epoch of rank 0 stays recoverable through the group,
  // with no PFS copy anywhere.
  area.invalidate_node(0);
  EXPECT_TRUE(area.recoverable(0, 1));
  EXPECT_TRUE(area.recoverable(0, 2));
  EXPECT_EQ(area.plan_restore(0, 1).source,
            ckpt::RestorePlan::Source::kRebuild);
  EXPECT_EQ(area.pfs_frontier(0), 0u);
}

// Protocol-level single in-group loss: the failed cluster's committed epoch
// is rebuilt over the network from the surviving group members, the restored
// run matches the failure-free result, and the PFS is never read.
TEST(Redundancy, XorSingleLossRebuildsWithoutPfs) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 1;
  core::SpbcConfig scfg = xor_config();
  const int iters = 3;
  auto run = [&](bool inject, std::map<int, uint64_t>* sums,
                 core::SpbcProtocol** proto_out) {
    auto proto = std::make_unique<core::SpbcProtocol>(scfg);
    if (proto_out) *proto_out = proto.get();
    auto m = std::make_unique<Machine>(cfg, std::move(proto));
    m->set_cluster_of({0, 1, 2, 3});  // one node per cluster: G spans all
    m->launch([sums](Rank& r) {
      struct St {
        int iter = 0;
        uint64_t sum = 0;
      } st;
      r.set_state_handlers(
          [&st](util::ByteWriter& w) { w.put(st); },
          [&st](util::ByteReader& rd) { st = rd.get<decltype(st)>(); });
      if (r.restarted()) r.restore_app_state();
      const mpi::Comm& w = r.world();
      for (; st.iter < iters;) {
        int to = (r.rank() + 1) % r.nranks();
        int from = (r.rank() + r.nranks() - 1) % r.nranks();
        mpi::Request rq = r.irecv(from, 1, w);
        r.isend(to, 1,
                Payload::make_synthetic(
                    256, static_cast<uint64_t>(r.rank() * 100 + st.iter)),
                w);
        r.wait(rq);
        util::Fnv1a64 h;
        h.update_u64(st.sum);
        h.update_u64(rq.result().hash);
        st.sum = h.digest();
        r.compute(5e-3);
        ++st.iter;
        r.maybe_checkpoint();
      }
      if (sums) (*sums)[r.rank()] = st.sum;
    });
    if (inject) m->inject_failure(8e-3, 0);
    return m;
  };
  std::map<int, uint64_t> expect;
  {
    auto m = run(false, &expect, nullptr);
    ASSERT_TRUE(m->run().completed);
  }
  std::map<int, uint64_t> sums;
  core::SpbcProtocol* p = nullptr;
  auto m = run(true, &sums, &p);
  mpi::RunResult res = m->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  ASSERT_EQ(m->recoveries().size(), 1u);
  EXPECT_TRUE(m->recoveries().at(0).complete());
  const ckpt::StagingStats& st = p->staging().stats();
  EXPECT_GE(st.rebuild_restores, 1u);  // the lost member came back via XOR
  EXPECT_GT(st.rebuild_bytes_read, 0u);
  EXPECT_EQ(st.restores_by_level[2], 0u) << "rebuild must not touch the PFS";
  EXPECT_EQ(st.epoch_fallbacks, 0u);
  EXPECT_GE(st.parity_fragments, 1u);
}

// Double in-group loss destroys a rebuild source: the not-yet-flushed epoch
// becomes unrecoverable and the restore target falls back to the PFS
// frontier epoch.
TEST(Redundancy, DoubleInGroupLossFallsBackToPfsFrontier) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 1;
  auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1, 2, 3});
  ckpt::StagingConfig sc;
  sc.level = ckpt::StorageLevel::kPfs;
  sc.async = true;
  sc.model = slow_pfs_model();  // 100KB => ~1s per PFS flush
  sc.redundancy.kind = ckpt::SchemeKind::kXorGroup;
  sc.redundancy.group_size = 4;
  ckpt::StagingArea area(sc);
  area.attach(m);
  // Epoch 1 flushes to the PFS (~1s); epoch 2's flush is still in flight
  // when two group nodes die at t=1.6s.
  for (int r = 0; r < 4; ++r) m.engine().at(1e-3, [&, r] { area.write(r, 1, 100000); });
  for (int r = 0; r < 4; ++r) m.engine().at(1.5, [&, r] { area.write(r, 2, 100000); });
  bool checked = false;
  m.engine().at(1.6, [&] {
    area.invalidate_node(0);
    area.invalidate_node(1);
    EXPECT_EQ(area.pfs_frontier(0), 1u);
    // Epoch 2: LOCAL gone, group cannot rebuild (member 1's data died too),
    // no PFS copy yet -> unrecoverable; recovery must fall back to epoch 1,
    // which the PFS frontier retained.
    EXPECT_FALSE(area.recoverable(0, 2));
    EXPECT_EQ(area.plan_restore(0, 2).source, ckpt::RestorePlan::Source::kNone);
    EXPECT_TRUE(area.recoverable(0, 1));
    EXPECT_EQ(area.plan_restore(0, 1).source, ckpt::RestorePlan::Source::kPfs);
    checked = true;
  });
  EXPECT_TRUE(m.run().completed);
  EXPECT_TRUE(checked);
}

// A rebuild source dies mid-read: the rebuild retries by re-planning from
// what survives — here the epoch's PFS copy — instead of failing the
// restore.
TEST(Redundancy, KillDuringRebuildRetriesFromSurvivingFragment) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 1;
  auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1, 2, 3});
  ckpt::StagingConfig sc;
  sc.level = ckpt::StorageLevel::kPfs;
  sc.async = true;
  sc.model.pfs_bw = 1.0e9;  // flushes finish quickly: PFS copies exist
  sc.redundancy.kind = ckpt::SchemeKind::kXorGroup;
  sc.redundancy.group_size = 4;
  ckpt::StagingArea area(sc);
  area.attach(m);
  // 100MB snapshots: rebuild reads (~33MB each) take tens of milliseconds,
  // long enough to lose a source node mid-flight.
  for (int r = 0; r < 4; ++r)
    m.engine().at(1e-3, [&, r] { area.write(r, 1, 100000000); });
  bool restored = false, ok_result = false;
  m.engine().at(0.5, [&] {
    area.invalidate_node(0);
    ASSERT_EQ(area.plan_restore(0, 1).source,
              ckpt::RestorePlan::Source::kRebuild)
        << "rebuild must be preferred over the PFS read";
    area.execute_restore(0, 1, [&](bool ok) {
      restored = true;
      ok_result = ok;
    });
  });
  // One of the rebuild's sources dies while its read is on the wire.
  m.engine().at(0.51, [&] { area.invalidate_node(1); });
  EXPECT_TRUE(m.run().completed);
  ASSERT_TRUE(restored);
  EXPECT_TRUE(ok_result);
  const ckpt::StagingStats& st = area.stats();
  EXPECT_GE(st.rebuild_retries, 1u);
  EXPECT_EQ(st.rebuild_restores, 0u);  // the retry landed on the PFS instead
  EXPECT_EQ(st.restores_by_level[2], 1u);
}

// A parity host dies after the fragment landed but before the epoch reached
// the PFS: proactive re-protection re-encodes the parity onto a replacement
// node, restoring single-loss coverage.
TEST(Redundancy, ReprotectionMovesParityToReplacementHost) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 1;
  auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1, 2, 3});
  ckpt::StagingConfig sc;
  sc.level = ckpt::StorageLevel::kPfs;
  sc.async = true;
  sc.model = slow_pfs_model();  // flush pending for ~1s
  sc.redundancy.kind = ckpt::SchemeKind::kXorGroup;
  sc.redundancy.group_size = 4;
  ckpt::StagingArea area(sc);
  area.attach(m);
  for (int r = 0; r < 4; ++r)
    m.engine().at(1e-3, [&, r] { area.write(r, 1, 100000); });
  int first_host = -1;
  m.engine().at(0.1, [&] {
    const std::vector<ckpt::Fragment>* frags = area.fragments(0, 1);
    ASSERT_NE(frags, nullptr);
    ASSERT_EQ(frags->size(), 1u);
    ASSERT_TRUE(frags->front().live);
    first_host = frags->front().host_node;
    area.invalidate_node(first_host);
  });
  bool verified = false;
  m.engine().at(0.2, [&] {
    const std::vector<ckpt::Fragment>* frags = area.fragments(0, 1);
    ASSERT_NE(frags, nullptr);
    ASSERT_GE(frags->size(), 2u) << "no replacement fragment was placed";
    const ckpt::Fragment& repl = frags->back();
    EXPECT_TRUE(repl.live);
    EXPECT_TRUE(repl.parity);
    EXPECT_NE(repl.host_node, first_host);
    EXPECT_NE(repl.host_node, 0);
    verified = true;
  });
  EXPECT_TRUE(m.run().completed);
  EXPECT_TRUE(verified);
  EXPECT_GE(area.stats().reprotections, 1u);
}

// kPartner through the scheme interface must reproduce the pre-refactor
// restore-source counts exactly: both members of the failed cluster restore
// from their buddy node, nothing from LOCAL, the PFS, or a rebuild.
TEST(Redundancy, PartnerViaInterfaceMatchesPreRefactorCounts) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 2;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  scfg.storage = ckpt::StorageLevel::kPfs;
  scfg.async_staging = true;
  scfg.storage_model = slow_pfs_model();
  scfg.redundancy.kind = ckpt::SchemeKind::kPartner;  // explicit, == default
  const int iters = 3;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 0, 1, 1});
  m.launch([](Rank& r) {
    struct St {
      int iter = 0;
    } st;
    r.set_state_handlers(
        [&st](util::ByteWriter& w) { w.put(st); },
        [&st](util::ByteReader& rd) { st = rd.get<decltype(st)>(); });
    if (r.restarted()) r.restore_app_state();
    const mpi::Comm& w = r.world();
    for (; st.iter < iters;) {
      int peer = r.rank() ^ 1;
      mpi::Request rq = r.irecv(peer, 1, w);
      r.isend(peer, 1, Payload::make_synthetic(128, 7), w);
      r.wait(rq);
      r.compute(5e-3);
      ++st.iter;
      r.maybe_checkpoint();
    }
  });
  m.inject_failure(8e-3, 0);
  mpi::RunResult res = m.run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  const ckpt::StagingStats& st = p->staging().stats();
  // The pre-refactor partner path served exactly these sources for this
  // scenario (see test_staging.PartnerCopyServesRecovery).
  EXPECT_EQ(st.restores_by_level[0], 0u);
  EXPECT_EQ(st.restores_by_level[1], 2u);
  EXPECT_EQ(st.restores_by_level[2], 0u);
  EXPECT_EQ(st.rebuild_restores, 0u);
  EXPECT_EQ(st.parity_fragments, 0u);
  EXPECT_EQ(st.epoch_fallbacks, 0u);
}

// Protocol-level DOUBLE in-group loss under RS(4, 2): two clusters fail
// back-to-back, both committed epochs are rebuilt over the network from the
// surviving group (any-2-loss tolerance), the restored run matches the
// failure-free result, and the PFS is never read.
TEST(Redundancy, RsDoubleLossRebuildsWithoutPfs) {
  MachineConfig cfg;
  cfg.nranks = 6;
  cfg.ranks_per_node = 1;
  core::SpbcConfig scfg = xor_config();
  scfg.redundancy.kind = ckpt::SchemeKind::kReedSolomon;
  scfg.redundancy.rs_k = 4;
  scfg.redundancy.rs_m = 2;
  const int iters = 3;
  auto run = [&](bool inject, std::map<int, uint64_t>* sums,
                 core::SpbcProtocol** proto_out) {
    auto proto = std::make_unique<core::SpbcProtocol>(scfg);
    if (proto_out) *proto_out = proto.get();
    auto m = std::make_unique<Machine>(cfg, std::move(proto));
    m->set_cluster_of({0, 1, 2, 3, 4, 5});  // one node per cluster
    m->launch([sums](Rank& r) {
      struct St {
        int iter = 0;
        uint64_t sum = 0;
      } st;
      r.set_state_handlers(
          [&st](util::ByteWriter& w) { w.put(st); },
          [&st](util::ByteReader& rd) { st = rd.get<decltype(st)>(); });
      if (r.restarted()) r.restore_app_state();
      const mpi::Comm& w = r.world();
      for (; st.iter < iters;) {
        int to = (r.rank() + 1) % r.nranks();
        int from = (r.rank() + r.nranks() - 1) % r.nranks();
        mpi::Request rq = r.irecv(from, 1, w);
        r.isend(to, 1,
                Payload::make_synthetic(
                    256, static_cast<uint64_t>(r.rank() * 100 + st.iter)),
                w);
        r.wait(rq);
        util::Fnv1a64 h;
        h.update_u64(st.sum);
        h.update_u64(rq.result().hash);
        st.sum = h.digest();
        r.compute(5e-3);
        ++st.iter;
        r.maybe_checkpoint();
      }
      if (sums) (*sums)[r.rank()] = st.sum;
    });
    if (inject) {
      // Two losses in the same RS group (all six nodes form one group),
      // close enough that the second lands while the first recovery is in
      // flight.
      m->inject_failure(8e-3, 0);
      m->inject_failure(8.2e-3, 3);
    }
    return m;
  };
  std::map<int, uint64_t> expect;
  {
    auto m = run(false, &expect, nullptr);
    ASSERT_TRUE(m->run().completed);
  }
  std::map<int, uint64_t> sums;
  core::SpbcProtocol* p = nullptr;
  auto m = run(true, &sums, &p);
  mpi::RunResult res = m->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  const ckpt::StagingStats& st = p->staging().stats();
  EXPECT_GE(st.rebuild_restores, 2u) << "both lost members must rebuild";
  EXPECT_GT(st.rebuild_bytes_read, 0u);
  EXPECT_EQ(st.restores_by_level[2], 0u) << "rebuild must not touch the PFS";
  EXPECT_GE(st.parity_fragments, 2u);
}

// A parity host dies; the deferred re-encode places a replacement — and the
// replacement host dies while that placement is on the wire. The in-flight
// fragment must not go live on dead storage; the chain retries onto a third
// host and full single-loss coverage comes back.
TEST(Redundancy, XorReprotectionRacesReplacementHostDeath) {
  MachineConfig cfg;
  cfg.nranks = 5;
  cfg.ranks_per_node = 1;
  auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1, 2, 3, 4});
  ckpt::StagingConfig sc;
  sc.level = ckpt::StorageLevel::kPfs;
  sc.async = true;
  sc.model = slow_pfs_model();  // flushes pending throughout (100MB / 1e5)
  sc.redundancy.kind = ckpt::SchemeKind::kXorGroup;
  sc.redundancy.group_size = 5;
  ckpt::StagingArea area(sc);
  area.attach(m);
  // 100MB snapshots: the replacement placement is on the wire long enough
  // to lose its destination mid-flight.
  for (int r = 0; r < 5; ++r)
    m.engine().at(1e-3, [&, r] { area.write(r, 1, 100000000); });
  int h1 = -1, h2 = -1;
  m.engine().at(0.5, [&] {
    const std::vector<ckpt::Fragment>* frags = area.fragments(0, 1);
    ASSERT_NE(frags, nullptr);
    ASSERT_EQ(frags->size(), 1u);
    ASSERT_TRUE(frags->front().live);
    h1 = frags->front().host_node;
    area.invalidate_node(h1);
  });
  m.engine().at(0.503, [&] {
    // The deferred re-encode has started a replacement placement (the
    // ~25MB folded segment is on the wire for tens of ms); its fragment is
    // recorded but must not be live yet.
    const std::vector<ckpt::Fragment>* frags = area.fragments(0, 1);
    ASSERT_NE(frags, nullptr);
    ASSERT_GE(frags->size(), 2u) << "re-protection did not start";
    ASSERT_FALSE(frags->back().live) << "fragment live before the copy landed";
    h2 = frags->back().host_node;
    EXPECT_NE(h2, h1);
    area.invalidate_node(h2);  // the re-protection target dies mid-placement
  });
  bool verified = false;
  m.engine().at(2.0, [&] {
    const std::vector<ckpt::Fragment>* frags = area.fragments(0, 1);
    ASSERT_NE(frags, nullptr);
    int live = 0, live_host = -1;
    for (const ckpt::Fragment& f : *frags) {
      if (f.live && area.node_in_service(f.host_node)) {
        ++live;
        live_host = f.host_node;
      }
      // A fragment must never read as live on out-of-service storage.
      EXPECT_FALSE(f.live && !area.node_in_service(f.host_node));
    }
    EXPECT_EQ(live, 1) << "parity must land on exactly one surviving host";
    EXPECT_NE(live_host, h1);
    EXPECT_NE(live_host, h2);
    EXPECT_NE(live_host, 0);
    verified = true;
  });
  EXPECT_TRUE(m.run().completed);
  EXPECT_TRUE(verified);
  EXPECT_GE(area.stats().reprotections, 1u);
  EXPECT_GE(area.stats().hop_retries, 1u);
}

// The RS variant of the race, pushed one failure further: after the killed
// re-protection target the share retries onto a fresh host, and even with
// THREE nodes down (the owner included) the surviving shares still solve
// the decode — the restore rebuilds without the PFS.
TEST(Redundancy, RsReprotectionRaceThenTripleLossStillRebuilds) {
  MachineConfig cfg;
  cfg.nranks = 6;
  cfg.ranks_per_node = 1;
  auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1, 2, 3, 4, 5});
  ckpt::StagingConfig sc;
  sc.level = ckpt::StorageLevel::kPfs;
  sc.async = true;
  sc.model = slow_pfs_model();
  sc.redundancy.kind = ckpt::SchemeKind::kReedSolomon;
  sc.redundancy.rs_k = 4;
  sc.redundancy.rs_m = 2;
  ckpt::StagingArea area(sc);
  area.attach(m);
  for (int r = 0; r < 6; ++r)
    m.engine().at(1e-3, [&, r] { area.write(r, 1, 100000000); });
  int h1 = -1, h2 = -1;
  m.engine().at(0.6, [&] {
    const std::vector<ckpt::Fragment>* frags = area.fragments(0, 1);
    ASSERT_NE(frags, nullptr);
    ASSERT_EQ(frags->size(), 2u) << "RS(4,2) must place two shares";
    ASSERT_TRUE((*frags)[0].live && (*frags)[1].live);
    EXPECT_NE((*frags)[0].host_node, (*frags)[1].host_node);
    h1 = frags->front().host_node;
    area.invalidate_node(h1);
  });
  m.engine().at(0.603, [&] {
    const std::vector<ckpt::Fragment>* frags = area.fragments(0, 1);
    ASSERT_NE(frags, nullptr);
    ASSERT_GE(frags->size(), 3u) << "re-protection did not start";
    const ckpt::Fragment& repl = frags->back();
    ASSERT_FALSE(repl.live);
    EXPECT_EQ(repl.share, frags->front().share)
        << "the replacement must re-place the lost share id";
    h2 = repl.host_node;
    area.invalidate_node(h2);  // the re-protection target dies mid-placement
  });
  m.engine().at(2.0, [&] {
    // The share retried onto a fresh host: both logical shares live again.
    const std::vector<ckpt::Fragment>* frags = area.fragments(0, 1);
    ASSERT_NE(frags, nullptr);
    std::set<int> live_shares;
    for (const ckpt::Fragment& f : *frags)
      if (f.live && area.node_in_service(f.host_node)) {
        live_shares.insert(f.share);
        EXPECT_NE(f.host_node, h1);
        EXPECT_NE(f.host_node, h2);
      }
    EXPECT_EQ(live_shares.size(), 2u) << "full RS coverage must come back";
    // Third loss: the owner. Unknowns {0, h1, h2}; the group's surviving
    // shares still close the system.
    area.invalidate_node(0);
    EXPECT_TRUE(area.recoverable(0, 1));
    EXPECT_EQ(area.plan_restore(0, 1).source,
              ckpt::RestorePlan::Source::kRebuild);
  });
  bool restored = false, ok_result = false;
  m.engine().at(2.1, [&] {
    area.execute_restore(0, 1, [&](bool ok) {
      restored = true;
      ok_result = ok;
    });
  });
  EXPECT_TRUE(m.run().completed);
  ASSERT_TRUE(restored);
  EXPECT_TRUE(ok_result);
  const ckpt::StagingStats& st = area.stats();
  EXPECT_GE(st.reprotections, 1u);
  EXPECT_GE(st.hop_retries, 1u);
  EXPECT_GE(st.rebuild_restores, 1u);
  EXPECT_EQ(st.restores_by_level[2], 0u) << "no PFS read anywhere";
}

// Re-protection fires while the owner's OTHER share is still on the wire:
// the in-flight share must count as covered (it will land, or the
// generation check re-issues it) — re-placing it would duplicate the share
// id and could co-locate two shares on one host, silently shrinking the
// any-m-loss distance.
TEST(Redundancy, RsReprotectionDoesNotDuplicateInFlightShares) {
  MachineConfig cfg;
  cfg.nranks = 6;
  cfg.ranks_per_node = 1;
  auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1, 2, 3, 4, 5});
  ckpt::StagingConfig sc;
  sc.level = ckpt::StorageLevel::kPfs;
  sc.async = true;
  sc.model = slow_pfs_model();
  sc.redundancy.kind = ckpt::SchemeKind::kReedSolomon;
  sc.redundancy.rs_k = 4;
  sc.redundancy.rs_m = 2;
  ckpt::StagingArea area(sc);
  area.attach(m);
  // 100MB snapshots: the two share placements serialize on the owner's NIC
  // and land at different times, opening the one-live-one-in-flight window.
  for (int r = 0; r < 6; ++r)
    m.engine().at(1e-3, [&, r] { area.write(r, 1, 100000000); });
  auto poll = std::make_shared<std::function<void()>>();
  bool killed = false;
  *poll = [&] {
    if (killed) return;
    const std::vector<ckpt::Fragment>* frags = area.fragments(0, 1);
    if (frags != nullptr && frags->size() == 2 &&
        (*frags)[0].live != (*frags)[1].live) {
      // Exactly the race: one share landed, the other is on the wire. Kill
      // the landed share's host so re-protection runs mid-flight.
      killed = true;
      area.invalidate_node(
          ((*frags)[0].live ? (*frags)[0] : (*frags)[1]).host_node);
      return;
    }
    if (m.engine().now() < 1.0) m.engine().after(0.002, [&] { (*poll)(); });
  };
  m.engine().at(0.05, [&] { (*poll)(); });
  bool verified = false;
  m.engine().at(2.5, [&] {
    ASSERT_TRUE(killed) << "never caught one share live, one in flight";
    const std::vector<ckpt::Fragment>* frags = area.fragments(0, 1);
    ASSERT_NE(frags, nullptr);
    std::map<int, int> live_per_share;
    std::set<int> live_hosts;
    for (const ckpt::Fragment& f : *frags) {
      if (!f.live) continue;
      EXPECT_TRUE(area.node_in_service(f.host_node));
      ++live_per_share[f.share];
      live_hosts.insert(f.host_node);
    }
    EXPECT_EQ(live_per_share.size(), 2u) << "both share ids must be covered";
    for (const auto& [share, n] : live_per_share)
      EXPECT_EQ(n, 1) << "share " << share << " placed twice";
    EXPECT_EQ(live_hosts.size(), 2u) << "two shares co-located on one host";
    verified = true;
  });
  EXPECT_TRUE(m.run().completed);
  EXPECT_TRUE(verified);
}

// The partner variant: the buddy mapping is fixed, so re-protection with a
// dead buddy must be a clean no-op; once the buddy node comes back in
// service and a fresh epoch re-encodes onto it, a second buddy death
// mid-placement must not leave a live fragment on dead storage — and with
// no copy and no PFS level, a later owner loss is correctly unrecoverable.
TEST(Redundancy, PartnerReprotectionRacesSecondBuddyDeath) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 1;
  auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1, 2, 3});
  ckpt::StagingConfig sc;
  sc.level = ckpt::StorageLevel::kPartner;  // no PFS level in the chain
  sc.async = true;
  sc.redundancy.kind = ckpt::SchemeKind::kPartner;
  ckpt::StagingArea area(sc);
  area.attach(m);
  const int buddy = ckpt::cross_domain_partner(m, 0);
  ASSERT_GE(buddy, 0);
  for (int r = 0; r < 4; ++r)
    m.engine().at(1e-3, [&, r] { area.write(r, 1, 100000000); });
  m.engine().at(0.5, [&] {
    area.invalidate_node(buddy);  // first buddy death, copies landed
  });
  m.engine().at(0.7, [&] {
    // The fixed mapping cannot re-protect onto another node: no live
    // fragment, no reprotection counted, the epoch survives via LOCAL.
    EXPECT_EQ(area.stats().reprotections, 0u);
    EXPECT_EQ(area.levels(0, 1) & ckpt::kAtPartner, 0);
    EXPECT_TRUE(area.recoverable(0, 1));
    // The buddy node returns to service (a respawned resident writes).
    area.write(buddy, 2, 100000000);
  });
  m.engine().at(0.8, [&] {
    area.write(0, 2, 100000000);  // epoch 2 re-encodes onto the reborn buddy
  });
  m.engine().at(0.95, [&] {
    // The copy is on the wire; the buddy dies a second time.
    const std::vector<ckpt::Fragment>* frags = area.fragments(0, 2);
    ASSERT_NE(frags, nullptr);
    ASSERT_EQ(frags->size(), 1u);
    ASSERT_FALSE(frags->front().live) << "copy landed before the kill";
    area.invalidate_node(buddy);
  });
  bool verified = false;
  m.engine().at(2.0, [&] {
    // The in-flight copy must not have gone live on dead storage, and the
    // chain retried (straight to nothing: no PFS level, buddy dead).
    EXPECT_EQ(area.levels(0, 2) & ckpt::kAtPartner, 0);
    EXPECT_GE(area.stats().hop_retries, 1u);
    EXPECT_TRUE(area.recoverable(0, 2));  // via LOCAL
    // Owner loss: with the buddy dead and no PFS, epoch 2 is gone — the
    // scheme must say so, not fabricate a source.
    area.invalidate_node(0);
    EXPECT_FALSE(area.recoverable(0, 2));
    EXPECT_EQ(area.plan_restore(0, 2).source, ckpt::RestorePlan::Source::kNone);
    verified = true;
  });
  EXPECT_TRUE(m.run().completed);
  EXPECT_TRUE(verified);
}

// Capture-bound pressure with a PFS whose frontier never advances: commits
// cannot prune the retained captures, so the backstop spills the oldest ones
// to LOCAL storage and reclamation keeps moving.
TEST(Redundancy, CaptureSpillWhenFloorLagsBehindBound) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 2;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 0;  // pressure-triggered waves only
  scfg.capture_bytes_bound = 512;
  scfg.storage = ckpt::StorageLevel::kPfs;
  scfg.async_staging = true;
  scfg.storage_model.pfs_bw = 1.0e3;  // frontier stays at 0 all run
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 0});
  const int batches = 3, per_batch = 4;
  m.launch([&](Rank& r) {
    r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(0); },
                         [](util::ByteReader& rd) { rd.get<int>(); });
    const mpi::Comm& w = r.world();
    if (r.rank() == 1) p->checkpoint_now(r);
    for (int b = 0; b < batches; ++b) {
      for (int i = 0; i < per_batch; ++i) {
        if (r.rank() == 0)
          r.send(1, 1, Payload::make_synthetic(256, 0xc0de), w);
        else
          r.recv(0, 1, w);
      }
      r.maybe_checkpoint();
      r.compute(1e-3);
    }
  });
  EXPECT_TRUE(m.run().completed);
  EXPECT_GE(p->capture_forced_waves(), 1u);
  // The retention floor was still 0 when the waves committed (the first
  // flush lands at ~0.2s of virtual time, long after the app's commits), so
  // pruning reclaimed nothing — the spill kept capture memory at the bound.
  EXPECT_GT(p->store().captures_spilled(), 0u);
  EXPECT_GT(p->store().capture_spilled_bytes(), 0u);
  EXPECT_LE(p->store().capture_live_bytes(1), scfg.capture_bytes_bound);
}

}  // namespace
}  // namespace spbc

// Integration tests: every workload runs failure-free at small scale in
// validate mode, produces deterministic checksums, and (parameterized sweep)
// survives an injected failure with bit-identical results under SPBC.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "apps/app.hpp"
#include "apps/decomp.hpp"
#include "harness/scenario.hpp"

namespace spbc {
namespace {

harness::ScenarioConfig base_config(const std::string& app, int nranks) {
  harness::ScenarioConfig cfg;
  cfg.app = app;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 2;
  cfg.nclusters = 4;
  cfg.app_cfg.iters = 6;
  cfg.app_cfg.validate = true;
  cfg.app_cfg.msg_scale = 0.02;      // keep test payloads small
  cfg.app_cfg.compute_scale = 0.02;  // keep virtual runs short
  cfg.spbc.checkpoint_every = 2;
  cfg.machine.abort_on_deadlock = false;
  cfg.use_clustering_tool = false;  // block partition: fast and deterministic
  return cfg;
}

class AppRuns : public ::testing::TestWithParam<std::string> {};

TEST_P(AppRuns, FailureFreeCompletesAndIsDeterministic) {
  harness::ScenarioConfig cfg = base_config(GetParam(), 16);
  cfg.protocol = harness::ProtocolKind::kNative;
  harness::ScenarioResult a = harness::run_failure_free(cfg);
  ASSERT_TRUE(a.run.completed) << "deadlocked=" << a.run.deadlocked;
  EXPECT_EQ(a.checksums.size(), 16u);
  harness::ScenarioResult b = harness::run_failure_free(cfg);
  EXPECT_EQ(a.checksums, b.checksums);
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
}

TEST_P(AppRuns, SpbcFailureFreeMatchesNative) {
  harness::ScenarioConfig cfg = base_config(GetParam(), 16);
  cfg.protocol = harness::ProtocolKind::kNative;
  harness::ScenarioResult native = harness::run_failure_free(cfg);
  ASSERT_TRUE(native.run.completed);
  cfg.protocol = harness::ProtocolKind::kSpbc;
  harness::ScenarioResult spbc = harness::run_failure_free(cfg);
  ASSERT_TRUE(spbc.run.completed);
  EXPECT_EQ(native.checksums, spbc.checksums);
  // SPBC may only be (slightly) slower in failure-free execution.
  EXPECT_GE(spbc.elapsed, native.elapsed);
  EXPECT_LT(spbc.elapsed, native.elapsed * 1.10);
}

TEST_P(AppRuns, RecoveryReproducesFailureFreeResults) {
  harness::ScenarioConfig cfg = base_config(GetParam(), 16);
  cfg.protocol = harness::ProtocolKind::kSpbc;
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);
  harness::ScenarioResult rec = harness::run_with_failure(cfg, ff.elapsed, 0.55);
  ASSERT_TRUE(rec.run.completed)
      << GetParam() << ": deadlocked=" << rec.run.deadlocked;
  EXPECT_EQ(rec.checksums, ff.checksums) << GetParam();
  ASSERT_FALSE(rec.recoveries.empty());
  EXPECT_TRUE(rec.recoveries.front().complete());
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppRuns,
                         ::testing::Values("AMG", "CM1", "GTC", "MILC", "MiniFE",
                                           "MiniGhost", "BT", "LU", "MG", "SP"));

TEST(AppRegistry, AllAppsRegistered) {
  // 10 native ports + the two facade-driven ports (MiniFE-facade, BT-facade).
  EXPECT_EQ(apps::registry().size(), 12u);
  EXPECT_TRUE(apps::find_app("MiniFE-facade").uses_any_source);
  EXPECT_FALSE(apps::find_app("BT-facade").uses_any_source);
  EXPECT_TRUE(apps::find_app("AMG").uses_any_source);
  EXPECT_TRUE(apps::find_app("GTC").uses_any_source);
  EXPECT_TRUE(apps::find_app("MILC").uses_any_source);
  EXPECT_TRUE(apps::find_app("MiniFE").uses_any_source);
  EXPECT_FALSE(apps::find_app("CM1").uses_any_source);
  EXPECT_FALSE(apps::find_app("MiniGhost").uses_any_source);
  EXPECT_FALSE(apps::find_app("LU").uses_any_source);
}

TEST(Decomp, DimsCreateBalanced) {
  EXPECT_EQ(apps::dims_create(512, 3), (std::vector<int>{8, 8, 8}));
  EXPECT_EQ(apps::dims_create(512, 2), (std::vector<int>{32, 16}));
  EXPECT_EQ(apps::dims_create(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(apps::dims_create(7, 2), (std::vector<int>{7, 1}));
}

TEST(Decomp, GridNeighbors) {
  apps::Grid2D g(6, {3, 2}, /*periodic=*/false);
  EXPECT_EQ(g.rank_of({0, 0}), 0);
  EXPECT_EQ(g.rank_of({2, 1}), 5);
  EXPECT_EQ(g.neighbor(0, 0, +1), 2);   // next row
  EXPECT_EQ(g.neighbor(0, 0, -1), -1);  // bounded edge
  apps::Grid2D p(6, {3, 2}, /*periodic=*/true);
  EXPECT_EQ(p.neighbor(0, 0, -1), 4);   // wraps
}

}  // namespace
}  // namespace spbc

// Failure-injection edge cases: crashes landing at awkward protocol moments
// — during a checkpoint wave, during a collective, immediately after
// launch, near the end of the run, twice in the same cluster, and under
// pure message logging / per-node clustering presets.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>

#include "baselines/presets.hpp"
#include "core/spbc.hpp"
#include "mpi/collectives.hpp"
#include "mpi/machine.hpp"

namespace spbc {
namespace {

using mpi::Machine;
using mpi::MachineConfig;
using mpi::Payload;
using mpi::Rank;

// Workload with both halo traffic and a collective per iteration, plus
// checkpoints — enough structure for a failure to land anywhere interesting.
void workload(Rank& r, int iters, std::map<int, uint64_t>* sums) {
  struct St {
    int iter = 0;
    uint64_t sum = 0;
  } st;
  r.set_state_handlers(
      [&st](util::ByteWriter& w) { w.put(st); },
      [&st](util::ByteReader& rd) { st = rd.get<decltype(st)>(); });
  if (r.restarted()) r.restore_app_state();
  const mpi::Comm& w = r.world();
  int n = r.nranks();
  for (; st.iter < iters;) {
    int to = (r.rank() + 1) % n;
    int from = (r.rank() - 1 + n) % n;
    mpi::Request rq = r.irecv(from, 1, w);
    r.isend(to, 1,
            Payload::make_synthetic(
                512, static_cast<uint64_t>(r.rank() * 1000 + st.iter)),
            w);
    r.wait(rq);
    util::Fnv1a64 h;
    h.update_u64(st.sum);
    h.update_u64(rq.result().hash);
    st.sum = h.digest();
    r.compute(5e-4);
    double g = mpi::allreduce_scalar(r, static_cast<double>(st.iter),
                                     mpi::ReduceOp::kSum, w);
    h.update(&g, sizeof(g));
    st.sum = h.digest();
    ++st.iter;
    r.maybe_checkpoint();
  }
  if (sums) (*sums)[r.rank()] = st.sum;
}

struct Rig {
  std::unique_ptr<Machine> machine;
  core::SpbcProtocol* protocol = nullptr;
};

// SPBC_TEST_SCALABLE_CTRL=1 reruns this suite with the scalable control
// plane (leader-aggregated rollbacks + tree wave markers) forced on; every
// edge case here must survive either plane.
bool elastic_env() { return std::getenv("SPBC_TEST_ELASTIC") != nullptr; }

void apply_ctrl_plane_env(MachineConfig& cfg) {
  if (std::getenv("SPBC_TEST_SCALABLE_CTRL") != nullptr) {
    cfg.aggregate_rollbacks = true;
    cfg.tree_ckpt_markers = true;
  }
  // SPBC_TEST_ELASTIC=1 upgrades every injected failure to a permanent node
  // loss with a two-deep spare pool: each edge case must survive the victim
  // node never coming back and its ranks hot-swapping onto a spare.
  if (elastic_env()) {
    cfg.spare_nodes = 2;
    cfg.default_failure_kind = mpi::FailureKind::kNodePermanent;
  }
}

Rig make_rig(std::vector<int> clusters, int ckpt_every, bool colocate = true) {
  MachineConfig cfg;
  cfg.nranks = static_cast<int>(clusters.size());
  cfg.ranks_per_node = 2;
  cfg.abort_on_deadlock = false;
  cfg.enforce_node_colocation = colocate;
  apply_ctrl_plane_env(cfg);
  core::SpbcConfig scfg;
  scfg.checkpoint_every = static_cast<uint64_t>(ckpt_every);
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  Rig rig;
  rig.protocol = proto.get();
  rig.machine = std::make_unique<Machine>(cfg, std::move(proto));
  rig.machine->set_cluster_of(std::move(clusters));
  return rig;
}

std::map<int, uint64_t> reference(int nranks, int iters) {
  std::map<int, uint64_t> sums;
  Rig rig = make_rig(std::vector<int>(static_cast<size_t>(nranks), 0), 0);
  rig.machine->launch([iters, &sums](Rank& r) { workload(r, iters, &sums); });
  EXPECT_TRUE(rig.machine->run().completed);
  return sums;
}

class FailureSweep : public ::testing::TestWithParam<double> {};

// A dense sweep of failure times across the whole run, including times that
// land inside checkpoint waves and collectives.
TEST_P(FailureSweep, RecoversAtAnyInstant) {
  const int n = 8, iters = 10;
  static const auto expect = reference(n, iters);
  // Failure-free elapsed for this workload is ~16ms; sweep across it.
  double t = GetParam();
  std::map<int, uint64_t> sums;
  Rig rig = make_rig({0, 0, 1, 1, 2, 2, 3, 3}, 3);
  rig.machine->launch([&sums](Rank& r) { workload(r, iters, &sums); });
  rig.machine->inject_failure(t, 2);
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "t=" << t << " deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(DenseTimes, FailureSweep,
                         ::testing::Values(0.0004, 0.0011, 0.0019, 0.0027, 0.0035,
                                           0.0044, 0.0052, 0.0061, 0.0070, 0.0078));

TEST(FailureEdge, ImmediatelyAfterLaunch) {
  const int n = 4, iters = 6;
  auto expect = reference(n, iters);
  std::map<int, uint64_t> sums;
  Rig rig = make_rig({0, 0, 1, 1}, 2);
  rig.machine->launch([&sums](Rank& r) { workload(r, iters, &sums); });
  rig.machine->inject_failure(1e-6, 0);  // before any real progress
  ASSERT_TRUE(rig.machine->run().completed);
  EXPECT_EQ(sums, expect);
}

TEST(FailureEdge, TwoFailuresSameCluster) {
  const int n = 8, iters = 12;
  auto expect = reference(n, iters);
  std::map<int, uint64_t> sums;
  Rig rig = make_rig({0, 0, 1, 1, 2, 2, 3, 3}, 3);
  rig.machine->launch([&sums](Rank& r) { workload(r, iters, &sums); });
  rig.machine->inject_failure(0.003, 2);
  rig.machine->inject_failure(0.012, 3);  // same cluster, after first recovery
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  EXPECT_EQ(rig.protocol->rollbacks(), 2u);
}

TEST(FailureEdge, PureMessageLoggingRecoversSingleRank) {
  const int n = 4, iters = 8;
  auto expect = reference(n, iters);
  std::map<int, uint64_t> sums;
  Rig rig = make_rig(baselines::per_rank_cluster_map(n), 2, /*colocate=*/false);
  rig.machine->launch([&sums](Rank& r) { workload(r, iters, &sums); });
  rig.machine->inject_failure(0.004, 1);
  ASSERT_TRUE(rig.machine->run().completed);
  EXPECT_EQ(sums, expect);
  // Perfect containment: only the failed process rolled back — except under
  // a permanent node loss, where the victim's node co-resident (rank 0, a
  // distinct per-rank cluster) physically dies with the node and restarts
  // too.
  for (int r = 0; r < n; ++r) {
    const bool dies = elastic_env() ? (r == 0 || r == 1) : (r == 1);
    EXPECT_EQ(rig.machine->rank(r).restarted(), dies) << "rank " << r;
  }
}

TEST(FailureEdge, PerNodeClusteringContainsNodeFailure) {
  const int n = 8, iters = 8;
  auto expect = reference(n, iters);
  std::map<int, uint64_t> sums;
  Rig rig = make_rig(baselines::per_node_cluster_map(n, 2), 2);
  rig.machine->launch([&sums](Rank& r) { workload(r, iters, &sums); });
  rig.machine->inject_failure(0.004, 4);  // node 2 = ranks {4,5}
  ASSERT_TRUE(rig.machine->run().completed);
  EXPECT_EQ(sums, expect);
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(rig.machine->rank(r).restarted(), r == 4 || r == 5) << "rank " << r;
}

TEST(FailureEdge, VictimChoiceIsIrrelevantWithinCluster) {
  // Killing rank 2 or rank 3 of cluster {2,3} must both recover the same way.
  const int n = 8, iters = 10;
  auto expect = reference(n, iters);
  for (int victim : {2, 3}) {
    std::map<int, uint64_t> sums;
    Rig rig = make_rig({0, 0, 1, 1, 2, 2, 3, 3}, 3);
    rig.machine->launch([&sums](Rank& r) { workload(r, iters, &sums); });
    rig.machine->inject_failure(0.005, victim);
    ASSERT_TRUE(rig.machine->run().completed) << "victim " << victim;
    EXPECT_EQ(sums, expect) << "victim " << victim;
    const auto& rec = rig.machine->recoveries().at(0);
    EXPECT_EQ(rec.failed_cluster, 1);
  }
}

// Regression: repeated failures across clusters with rendezvous-sized halo
// traffic. This combination exposed three distinct protocol holes during
// development: (1) stale RTSs from a dead incarnation being matched by later
// requests (CTS into the void), (2) rewound rendezvous requests unable to
// re-match a re-sent RTS that arrived before the Rollback, and (3) stale
// LS-suppression windows after the *peer* of a previously-rolled-back rank
// itself rolls back.
TEST(FailureEdge, RepeatedFailuresWithRendezvousTraffic) {
  const int n = 8, iters = 14;
  MachineConfig base;
  base.eager_threshold = 256;  // everything is rendezvous
  apply_ctrl_plane_env(base);
  auto make = [&](std::vector<int> clusters, int every) {
    MachineConfig cfg = base;
    cfg.nranks = n;
    cfg.ranks_per_node = 2;
    cfg.abort_on_deadlock = false;
    core::SpbcConfig scfg;
    scfg.checkpoint_every = static_cast<uint64_t>(every);
    Rig rig;
    auto proto = std::make_unique<core::SpbcProtocol>(scfg);
    rig.protocol = proto.get();
    rig.machine = std::make_unique<Machine>(cfg, std::move(proto));
    rig.machine->set_cluster_of(std::move(clusters));
    return rig;
  };
  std::map<int, uint64_t> expect;
  {
    Rig rig = make(std::vector<int>(n, 0), 0);
    rig.machine->launch([&expect](Rank& r) { workload(r, iters, &expect); });
    ASSERT_TRUE(rig.machine->run().completed);
  }
  std::map<int, uint64_t> sums;
  Rig rig = make({0, 0, 1, 1, 2, 2, 3, 3}, 3);
  rig.machine->launch([&sums](Rank& r) { workload(r, iters, &sums); });
  // Staggered failures across three clusters, including a repeat.
  rig.machine->inject_failure(0.0030, 2);  // cluster 1
  rig.machine->inject_failure(0.0075, 4);  // cluster 2, during 1's tail
  rig.machine->inject_failure(0.0150, 3);  // cluster 1 again
  rig.machine->inject_failure(0.0230, 0);  // cluster 0
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  // Elastic runs see a fifth rollback: the fourth node loss hits a node a
  // shrunk restart had packed cluster 1 onto, so that cluster rolls back as
  // collateral alongside cluster 0.
  EXPECT_EQ(rig.protocol->rollbacks(), elastic_env() ? 5u : 4u);
}

TEST(FailureEdge, DroppedInFlightAreAccounted) {
  const int iters = 10;
  Rig rig = make_rig({0, 0, 1, 1, 2, 2, 3, 3}, 3);
  rig.machine->launch([](Rank& r) { workload(r, iters, nullptr); });
  rig.machine->inject_failure(0.005, 2);
  ASSERT_TRUE(rig.machine->run().completed);
  // The crash cut messages mid-flight; the filter must have seen them.
  // Under a permanent loss the victim is tombstoned, so post-crash sends to
  // it are dropped at the source (tombstone accounting) instead of dying
  // inside the transport.
  if (elastic_env())
    EXPECT_GT(rig.machine->dropped_in_flight() + rig.machine->tombstone_drops(),
              0u);
  else
    EXPECT_GT(rig.machine->dropped_in_flight(), 0u);
}

}  // namespace
}  // namespace spbc

// Unit tests: collectives built over point-to-point (barrier, bcast,
// reduce, allreduce, allgather, alltoall, comm_split/dup).

#include <gtest/gtest.h>

#include <memory>

#include "mpi/collectives.hpp"
#include "mpi/machine.hpp"

namespace spbc::mpi {
namespace {

std::unique_ptr<Machine> make_machine(int nranks) {
  MachineConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 1;
  auto m = std::make_unique<Machine>(cfg, std::make_unique<NativeProtocol>());
  m->set_cluster_of(std::vector<int>(static_cast<size_t>(nranks), 0));
  return m;
}

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, BarrierSynchronizes) {
  int n = GetParam();
  auto m = make_machine(n);
  std::vector<sim::Time> after(static_cast<size_t>(n));
  m->launch([&](Rank& r) {
    r.compute(1e-4 * (r.rank() + 1));  // staggered arrival
    barrier(r, r.world());
    after[static_cast<size_t>(r.rank())] = r.now();
  });
  EXPECT_TRUE(m->run().completed);
  // Nobody leaves before the slowest arrival.
  sim::Time slowest = 1e-4 * n;
  for (int i = 0; i < n; ++i) EXPECT_GE(after[static_cast<size_t>(i)], slowest);
}

TEST_P(CollectivesP, BcastDistributesRootData) {
  int n = GetParam();
  auto m = make_machine(n);
  std::vector<std::vector<double>> got(static_cast<size_t>(n));
  m->launch([&](Rank& r) {
    std::vector<double> data;
    if (r.rank() == 0) data = {3.0, 1.0, 4.0};
    bcast(r, data, 0, r.world());
    got[static_cast<size_t>(r.rank())] = data;
  });
  EXPECT_TRUE(m->run().completed);
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(got[static_cast<size_t>(i)], (std::vector<double>{3.0, 1.0, 4.0}));
}

TEST_P(CollectivesP, BcastFromNonzeroRoot) {
  int n = GetParam();
  if (n < 2) GTEST_SKIP();
  auto m = make_machine(n);
  std::vector<double> got0;
  m->launch([&](Rank& r) {
    std::vector<double> data;
    if (r.rank() == 1) data = {9.0};
    bcast(r, data, 1, r.world());
    if (r.rank() == 0) got0 = data;
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_EQ(got0, (std::vector<double>{9.0}));
}

TEST_P(CollectivesP, AllreduceSum) {
  int n = GetParam();
  auto m = make_machine(n);
  std::vector<double> results(static_cast<size_t>(n));
  m->launch([&](Rank& r) {
    results[static_cast<size_t>(r.rank())] =
        allreduce_scalar(r, static_cast<double>(r.rank() + 1), ReduceOp::kSum,
                         r.world());
  });
  EXPECT_TRUE(m->run().completed);
  double expect = n * (n + 1) / 2.0;
  for (int i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(results[static_cast<size_t>(i)], expect);
}

TEST_P(CollectivesP, AllreduceMaxMin) {
  int n = GetParam();
  auto m = make_machine(n);
  std::vector<double> maxs(static_cast<size_t>(n)), mins(static_cast<size_t>(n));
  m->launch([&](Rank& r) {
    maxs[static_cast<size_t>(r.rank())] =
        allreduce_scalar(r, static_cast<double>(r.rank()), ReduceOp::kMax, r.world());
    mins[static_cast<size_t>(r.rank())] =
        allreduce_scalar(r, static_cast<double>(r.rank()), ReduceOp::kMin, r.world());
  });
  EXPECT_TRUE(m->run().completed);
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(maxs[static_cast<size_t>(i)], n - 1.0);
    EXPECT_DOUBLE_EQ(mins[static_cast<size_t>(i)], 0.0);
  }
}

TEST_P(CollectivesP, AllgatherCollectsAll) {
  int n = GetParam();
  auto m = make_machine(n);
  bool ok = true;
  m->launch([&](Rank& r) {
    std::vector<double> mine{static_cast<double>(r.rank() * 10)};
    auto all = allgather(r, mine, r.world());
    for (int i = 0; i < n; ++i)
      if (all[static_cast<size_t>(i)] != std::vector<double>{i * 10.0}) ok = false;
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_TRUE(ok);
}

TEST_P(CollectivesP, AlltoallExchangesBlocks) {
  int n = GetParam();
  auto m = make_machine(n);
  bool ok = true;
  m->launch([&](Rank& r) {
    std::vector<std::vector<double>> send(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
      send[static_cast<size_t>(i)] = {static_cast<double>(r.rank() * 100 + i)};
    auto got = alltoall(r, send, r.world());
    for (int i = 0; i < n; ++i)
      if (got[static_cast<size_t>(i)] != std::vector<double>{i * 100.0 + r.rank()})
        ok = false;
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesP, ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Collectives, ReduceToRootOnly) {
  auto m = make_machine(5);
  std::vector<double> root_result;
  m->launch([&](Rank& r) {
    std::vector<double> data{static_cast<double>(r.rank()), 1.0};
    reduce(r, data, ReduceOp::kSum, 2, r.world());
    if (r.rank() == 2) root_result = data;
  });
  EXPECT_TRUE(m->run().completed);
  ASSERT_EQ(root_result.size(), 2u);
  EXPECT_DOUBLE_EQ(root_result[0], 0 + 1 + 2 + 3 + 4);
  EXPECT_DOUBLE_EQ(root_result[1], 5.0);
}

TEST(Collectives, CommSplitFormsGroups) {
  auto m = make_machine(6);
  std::vector<int> sizes(6), ranks_in_new(6);
  m->launch([&](Rank& r) {
    int color = r.rank() % 2;
    Comm sub = comm_split(r, r.world(), color, r.rank());
    sizes[static_cast<size_t>(r.rank())] = sub.size();
    ranks_in_new[static_cast<size_t>(r.rank())] = sub.comm_rank(r.rank());
    // Collectives work on the sub-communicator.
    double s = allreduce_scalar(r, 1.0, ReduceOp::kSum, sub);
    EXPECT_DOUBLE_EQ(s, 3.0);
  });
  EXPECT_TRUE(m->run().completed);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(sizes[static_cast<size_t>(i)], 3);
    EXPECT_EQ(ranks_in_new[static_cast<size_t>(i)], i / 2);
  }
}

TEST(Collectives, CommSplitPureMatchesCommSplit) {
  auto m = make_machine(8);
  bool ok = true;
  m->launch([&](Rank& r) {
    Comm a = comm_split(r, r.world(), r.rank() / 4, r.rank());
    Comm b = mpi::comm_split_pure(
        r.world(), r.rank(), 17,
        [](int wr, const void*) { return wr / 4; },
        [](int wr, const void*) { return wr; }, nullptr);
    if (a.group() != b.group()) ok = false;
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_TRUE(ok);
}

TEST(Collectives, CommDupIsolatesTraffic) {
  auto m = make_machine(4);
  bool ok = true;
  m->launch([&](Rank& r) {
    Comm dup = comm_dup(r, r.world());
    if (dup.ctx() == r.world().ctx()) ok = false;
    if (dup.group() != r.world().group()) ok = false;
    // A message sent on dup must not match a recv on world.
    if (r.rank() == 0) {
      r.send(1, 5, Payload::make_synthetic(8, 1), dup);
      r.send(1, 5, Payload::make_synthetic(8, 2), r.world());
    } else if (r.rank() == 1) {
      uint64_t w = r.recv(0, 5, r.world()).hash;
      uint64_t d = r.recv(0, 5, dup).hash;
      if (w != 2 || d != 1) ok = false;
    }
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace spbc::mpi

// Elastic recovery end-to-end: spare-node hot-swap rebuilds the victims'
// state from redundancy shares without touching the PFS, a pool-exhausted
// permanent loss degrades to a shrunk restart with checksum-identical
// results, a second failure during a spare rebuild re-plans instead of
// aborting, the streaming repartitioner migrates checkpoint-group
// membership under communication drift, and the whole elastic trajectory is
// bit-identical across event-engine shard layouts.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "ckpt/staging.hpp"
#include "core/spbc.hpp"
#include "mpi/collectives.hpp"
#include "mpi/machine.hpp"

namespace spbc {
namespace {

using mpi::Machine;
using mpi::MachineConfig;
using mpi::Payload;
using mpi::Rank;

// Ring + checksum workload: every iteration exchanges one message with each
// neighbor and folds the received hash into the rank's running state, so a
// wrong or missing restore shows up as a final-sum mismatch.
void workload(Rank& r, int iters, std::map<int, uint64_t>* sums) {
  struct St {
    int iter = 0;
    uint64_t sum = 0;
  } st;
  r.set_state_handlers(
      [&st](util::ByteWriter& w) { w.put(st); },
      [&st](util::ByteReader& rd) { st = rd.get<decltype(st)>(); });
  if (r.restarted()) r.restore_app_state();
  const mpi::Comm& w = r.world();
  int n = r.nranks();
  for (; st.iter < iters;) {
    int to = (r.rank() + 1) % n;
    int from = (r.rank() - 1 + n) % n;
    mpi::Request rq = r.irecv(from, 1, w);
    r.isend(to, 1,
            Payload::make_synthetic(
                256, static_cast<uint64_t>(r.rank() * 100 + st.iter)),
            w);
    r.wait(rq);
    util::Fnv1a64 h;
    h.update_u64(st.sum);
    h.update_u64(rq.result().hash);
    st.sum = h.digest();
    r.compute(2e-3);
    ++st.iter;
    r.maybe_checkpoint();
  }
  if (sums) (*sums)[r.rank()] = st.sum;
}

// XOR-over-async-staging config with a PFS slow enough that flushes lag the
// run: a permanent node loss then MUST come back through the group rebuild,
// not a PFS read.
core::SpbcConfig xor_config() {
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  scfg.storage = ckpt::StorageLevel::kPfs;
  scfg.async_staging = true;
  scfg.storage_model.pfs_bw = 1.0e5;
  scfg.redundancy.kind = ckpt::SchemeKind::kXorGroup;
  scfg.redundancy.group_size = 4;
  return scfg;
}

struct Rig {
  std::unique_ptr<Machine> machine;
  core::SpbcProtocol* protocol = nullptr;
};

Rig make_rig(const MachineConfig& cfg, const core::SpbcConfig& scfg,
             std::vector<int> clusters) {
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  Rig rig;
  rig.protocol = proto.get();
  rig.machine = std::make_unique<Machine>(cfg, std::move(proto));
  rig.machine->set_cluster_of(std::move(clusters));
  return rig;
}

MachineConfig elastic_cfg(int nranks, int spares) {
  MachineConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 2;
  cfg.abort_on_deadlock = false;
  cfg.spare_nodes = spares;
  cfg.default_failure_kind = mpi::FailureKind::kNodePermanent;
  return cfg;
}

std::map<int, uint64_t> reference(int nranks, int iters) {
  std::map<int, uint64_t> sums;
  MachineConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 2;
  Rig rig = make_rig(cfg, core::SpbcConfig{},
                     std::vector<int>(static_cast<size_t>(nranks), 0));
  rig.machine->launch([iters, &sums](Rank& r) { workload(r, iters, &sums); });
  EXPECT_TRUE(rig.machine->run().completed);
  return sums;
}

// A permanent node loss with spares pooled: the dead node's ranks hot-swap
// onto a spare, their state is rebuilt from surviving XOR fragments (the
// PFS is never read), and the run finishes checksum-identical to the
// failure-free execution.
TEST(Elastic, SpareSwapRebuildsWithoutPfs) {
  const int n = 8, iters = 8;
  auto expect = reference(n, iters);
  std::map<int, uint64_t> sums;
  Rig rig = make_rig(elastic_cfg(n, 2), xor_config(), {0, 0, 1, 1, 2, 2, 3, 3});
  rig.machine->launch([&sums](Rank& r) { workload(r, iters, &sums); });
  rig.machine->inject_failure(9e-3, 2);  // node 1 never returns
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  EXPECT_EQ(rig.machine->spare_swaps(), 1u);
  EXPECT_EQ(rig.machine->shrink_restarts(), 0u);
  EXPECT_TRUE(rig.machine->node_retired(1));
  // The victims now live on the swapped-in spare (ids follow the compute
  // nodes), and the colocation invariant survived the move.
  EXPECT_GE(rig.machine->node_of(2), 4);
  EXPECT_EQ(rig.machine->node_of(2), rig.machine->node_of(3));
  EXPECT_EQ(rig.machine->spares_available(), 1);
  const ckpt::StagingStats& st = rig.protocol->staging().stats();
  EXPECT_GE(st.rebuild_restores, 1u);
  EXPECT_EQ(st.restores_by_level[2], 0u) << "rebuild must not read the PFS";
}

// Same loss with an empty pool: the machine degrades to a shrunk restart —
// the victims re-pack onto a surviving node — and still restores
// checksum-identical state through the shadow-coded fragments.
TEST(Elastic, PoolExhaustedShrinkRestoresState) {
  const int n = 8, iters = 8;
  auto expect = reference(n, iters);
  std::map<int, uint64_t> sums;
  Rig rig = make_rig(elastic_cfg(n, 0), xor_config(), {0, 0, 1, 1, 2, 2, 3, 3});
  rig.machine->launch([&sums](Rank& r) { workload(r, iters, &sums); });
  rig.machine->inject_failure(9e-3, 2);
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  EXPECT_EQ(rig.machine->spare_swaps(), 0u);
  EXPECT_EQ(rig.machine->shrink_restarts(), 1u);
  // Packed onto a surviving compute node, not the retired one.
  EXPECT_LT(rig.machine->node_of(2), 4);
  EXPECT_NE(rig.machine->node_of(2), 1);
  EXPECT_FALSE(rig.machine->node_retired(rig.machine->node_of(2)));
}

// A second permanent loss landing while the first cluster's spare rebuild is
// still in flight (within the restart delay) must re-plan — both clusters
// recover, both victims end on spares, and the checksums still match.
TEST(Elastic, SecondFailureDuringRebuildReplans) {
  const int n = 8, iters = 8;
  auto expect = reference(n, iters);
  std::map<int, uint64_t> sums;
  Rig rig = make_rig(elastic_cfg(n, 2), xor_config(), {0, 0, 1, 1, 2, 2, 3, 3});
  rig.machine->launch([&sums](Rank& r) { workload(r, iters, &sums); });
  rig.machine->inject_failure(9e-3, 2);     // cluster 1, node 1
  rig.machine->inject_failure(1.05e-2, 4);  // cluster 2, during 1's rebuild
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  EXPECT_EQ(rig.machine->spare_swaps(), 2u);
  EXPECT_EQ(rig.machine->shrink_restarts(), 0u);
  EXPECT_EQ(rig.machine->spares_available(), 0);
  EXPECT_EQ(rig.protocol->rollbacks(), 2u);
  const ckpt::StagingStats& st = rig.protocol->staging().stats();
  EXPECT_GE(st.rebuild_restores, 1u);
  EXPECT_EQ(st.restores_by_level[2], 0u);
}

// Communication drift: an interleaved node-granular map leaves the ring's
// cut twice as large as necessary. The streaming repartitioner must notice
// from the live traffic matrix and migrate at least one node's membership
// through the quiescence bridge — without disturbing the application.
TEST(Elastic, RepartitionerMigratesUnderDrift) {
  const int n = 8, iters = 14;
  auto expect = reference(n, iters);
  std::map<int, uint64_t> sums;
  MachineConfig cfg;
  cfg.nranks = n;
  cfg.ranks_per_node = 2;
  cfg.abort_on_deadlock = false;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 2;
  scfg.control.repartition_period = 2e-3;
  // Nodes alternate clusters: half the ring's hops cross the cut.
  Rig rig = make_rig(cfg, scfg, {0, 0, 1, 1, 0, 0, 1, 1});
  rig.machine->launch([&sums](Rank& r) { workload(r, iters, &sums); });
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  EXPECT_GE(rig.protocol->control_plane().stats().repartitions, 1u);
  // The flip really moved membership: some node's ranks changed cluster.
  bool moved = false;
  const std::vector<int> initial = {0, 0, 1, 1, 0, 0, 1, 1};
  for (int r = 0; r < n; ++r)
    if (rig.machine->cluster_of(r) != initial[static_cast<size_t>(r)])
      moved = true;
  EXPECT_TRUE(moved);
}

// Determinism across shard layouts: the elastic trajectory (hot-swap,
// rebuild, recovery) is a function of the cluster map only — running the
// same failure schedule with 2 physical shard queues vs one-per-cluster
// must produce identical checksums, finish times, and swap counts.
TEST(Elastic, DeterministicAcrossShardLayouts) {
  const int n = 8, iters = 8;
  auto run_with_shards = [&](int shards, std::map<int, uint64_t>* sums,
                             uint64_t* swaps) {
    MachineConfig cfg = elastic_cfg(n, 2);
    cfg.engine_shards = shards;
    cfg.engine_threads = 1;
    Rig rig = make_rig(cfg, xor_config(), {0, 0, 1, 1, 2, 2, 3, 3});
    rig.machine->launch([sums](Rank& r) { workload(r, iters, sums); });
    rig.machine->inject_failure(9e-3, 2);
    mpi::RunResult res = rig.machine->run();
    EXPECT_TRUE(res.completed) << "shards=" << shards;
    *swaps = rig.machine->spare_swaps();
    return res.finish_time;
  };
  std::map<int, uint64_t> sums_a, sums_b;
  uint64_t swaps_a = 0, swaps_b = 0;
  const sim::Time t_a = run_with_shards(2, &sums_a, &swaps_a);
  const sim::Time t_b = run_with_shards(0, &sums_b, &swaps_b);
  EXPECT_EQ(sums_a, sums_b);
  EXPECT_EQ(t_a, t_b);
  EXPECT_EQ(swaps_a, swaps_b);
  EXPECT_EQ(swaps_a, 1u);
}

}  // namespace
}  // namespace spbc

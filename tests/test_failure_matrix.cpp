// Driver for the randomized failure-matrix harness (failure_matrix.hpp).
//
// Sweeps seed-derived cases over (scheme x group shape x loss count x loss
// timing x correlation x PFS speed) and asserts the shared invariants. The
// sweep is reproducible: SPBC_FM_SEED picks the base seed (default 1),
// SPBC_FM_CASES the case count (default 48; CI runs 200). Any violation
// prints the exact failing seed — replay it alone with
// `SPBC_FM_SEED=<seed> SPBC_FM_CASES=1 ./test_failure_matrix`.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>

#include "failure_matrix.hpp"

namespace spbc {
namespace {

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

TEST(FailureMatrix, RandomizedSweep) {
  const uint64_t base_seed = env_u64("SPBC_FM_SEED", 1);
  const uint64_t cases = env_u64("SPBC_FM_CASES", 48);
  uint64_t failures = 0;
  for (uint64_t i = 0; i < cases; ++i) {
    const uint64_t seed = base_seed + i;
    testing::FailureCase c = testing::sample_case(seed);
    testing::CaseResult res = testing::run_case(c);
    if (!res.ok) {
      ++failures;
      ADD_FAILURE() << "failure-matrix counterexample at seed " << seed
                    << "\n  case: " << testing::describe_case(c)
                    << "\n  replay: SPBC_FM_SEED=" << seed
                    << " SPBC_FM_CASES=1 ./test_failure_matrix";
      for (const std::string& v : res.violations)
        ADD_FAILURE() << "  violated: " << v;
    }
  }
  EXPECT_EQ(failures, 0u) << failures << "/" << cases << " cases failed";
}

// The four corners the sweep must keep covering regardless of the sampled
// distribution: one hand-pinned case per scheme — in-tolerance losses,
// settled timing, lagging PFS — so a sampler change can never silently
// drop a scheme from coverage.
TEST(FailureMatrix, PinnedSchemeCorners) {
  auto pinned = [](ckpt::SchemeKind kind) {
    testing::FailureCase c;
    c.seed = 0;  // hand-built, not sampled
    c.redundancy.kind = kind;
    c.redundancy.group_size = 4;
    c.redundancy.rs_k = 4;
    c.redundancy.rs_m = 2;
    c.nclusters = 3;
    c.bytes = 2048;
    c.correlated = false;
    c.timing = testing::FailureCase::Timing::kSettled;
    c.flush_pfs = false;
    switch (kind) {
      case ckpt::SchemeKind::kSingle:
      case ckpt::SchemeKind::kPartner:
        c.nodes = 4;
        c.losses = 1;
        break;
      case ckpt::SchemeKind::kXorGroup:
        c.nodes = 4;  // one G=4 group
        c.losses = 1;
        break;
      case ckpt::SchemeKind::kReedSolomon:
        c.nodes = 6;  // one k+m group; both tolerated losses at once
        c.losses = 2;
        break;
    }
    return c;
  };
  for (ckpt::SchemeKind kind :
       {ckpt::SchemeKind::kSingle, ckpt::SchemeKind::kPartner,
        ckpt::SchemeKind::kXorGroup, ckpt::SchemeKind::kReedSolomon}) {
    testing::FailureCase c = pinned(kind);
    testing::CaseResult res = testing::run_case(c);
    EXPECT_TRUE(res.ok) << testing::describe_case(c);
    if (!res.ok)
      for (const std::string& v : res.violations) ADD_FAILURE() << v;
  }
}

// Node-never-returns corners pinned the same way: hot-swap with the pool
// holding (spares > losses), shrunk restart with the pool empty, and a
// permanent loss landing while an earlier victim's spare rebuild is still
// in flight (losses=2 reserves one). The randomized sweep samples this
// bucket too; the pins keep each path covered under any sampler change.
TEST(FailureMatrix, PinnedSpareSwapCorners) {
  struct Corner {
    ckpt::SchemeKind kind;
    int nodes;
    int losses;
    int spares;
  };
  for (const Corner& k : {Corner{ckpt::SchemeKind::kXorGroup, 4, 1, 2},
                          Corner{ckpt::SchemeKind::kXorGroup, 4, 1, 0},
                          Corner{ckpt::SchemeKind::kReedSolomon, 6, 2, 1}}) {
    testing::FailureCase c;
    c.seed = 0;  // hand-built, not sampled
    c.redundancy.kind = k.kind;
    c.redundancy.group_size = 4;
    c.redundancy.rs_k = 4;
    c.redundancy.rs_m = 2;
    c.nodes = k.nodes;
    c.nclusters = 2;
    c.bytes = 2048;
    c.losses = k.losses;
    c.correlated = false;
    c.timing = testing::FailureCase::Timing::kSpareSwap;
    c.flush_pfs = false;
    c.spares = k.spares;
    testing::CaseResult res = testing::run_case(c);
    EXPECT_TRUE(res.ok) << testing::describe_case(c);
    if (!res.ok)
      for (const std::string& v : res.violations) ADD_FAILURE() << v;
  }
}

// Hostile-shape corners (DESIGN.md §16): one hand-pinned case per Hostile
// bucket over a representative scheme, so every adversarial shape stays
// covered regardless of the sampled distribution. Straggler skew and the
// healing partition replay the settled XOR corner; the three hardware
// domains (rack / switch / PSU) draw the victims from their own blast
// geometry with enough nodes that the domain fits the loss count.
TEST(FailureMatrix, PinnedHostileCorners) {
  struct Corner {
    testing::FailureCase::Hostile hostile;
    ckpt::SchemeKind kind;
    int nodes;
    int losses;
    testing::FailureCase::Timing timing;
  };
  using H = testing::FailureCase::Hostile;
  using T = testing::FailureCase::Timing;
  for (const Corner& k :
       {Corner{H::kStragglerSkew, ckpt::SchemeKind::kXorGroup, 4, 1,
               T::kSettled},
        // Straggler + mid-drain: the skewed epoch-2 writes straddle the kill.
        Corner{H::kStragglerSkew, ckpt::SchemeKind::kReedSolomon, 6, 2,
               T::kMidDrain},
        Corner{H::kPartitionHeal, ckpt::SchemeKind::kXorGroup, 4, 1,
               T::kMidDrain},
        Corner{H::kPartitionHeal, ckpt::SchemeKind::kPartner, 4, 1,
               T::kSettled},
        Corner{H::kRackDomain, ckpt::SchemeKind::kReedSolomon, 12, 2,
               T::kSettled},
        Corner{H::kSwitchDomain, ckpt::SchemeKind::kXorGroup, 8, 1,
               T::kSettled},
        Corner{H::kPsuDomain, ckpt::SchemeKind::kReedSolomon, 6, 2,
               T::kSettled}}) {
    testing::FailureCase c;
    c.seed = 0;  // hand-built, not sampled
    c.redundancy.kind = k.kind;
    c.redundancy.group_size = 4;
    c.redundancy.rs_k = 4;
    c.redundancy.rs_m = 2;
    c.nodes = k.nodes;
    c.nclusters = 2;
    c.bytes = 2048;
    c.losses = k.losses;
    c.correlated = false;
    c.timing = k.timing;
    c.flush_pfs = false;
    c.hostile = k.hostile;
    testing::CaseResult res = testing::run_case(c);
    EXPECT_TRUE(res.ok) << testing::describe_case(c);
    if (!res.ok)
      for (const std::string& v : res.violations) ADD_FAILURE() << v;
  }
}

// The CI sweep must actually sample every hostile bucket: scan the seed
// range CI uses (SPBC_FM_SEED=1, 300 cases) and assert each Hostile value
// appears. Sampling only — no cases are run — so this stays cheap and fails
// the moment a sampler change starves a bucket.
TEST(FailureMatrix, SweepCoversEveryHostileBucket) {
  const uint64_t base_seed = env_u64("SPBC_FM_SEED", 1);
  const uint64_t cases = std::max<uint64_t>(env_u64("SPBC_FM_CASES", 48), 300);
  std::array<uint64_t, 6> hits{};
  for (uint64_t i = 0; i < cases; ++i) {
    testing::FailureCase c = testing::sample_case(base_seed + i);
    ++hits[static_cast<size_t>(c.hostile)];
  }
  for (size_t b = 0; b < hits.size(); ++b)
    EXPECT_GT(hits[b], 0u)
        << "hostile bucket '"
        << testing::hostile_name(static_cast<testing::FailureCase::Hostile>(b))
        << "' never sampled in " << cases << " cases from seed " << base_seed;
}

}  // namespace
}  // namespace spbc

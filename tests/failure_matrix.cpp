#include "failure_matrix.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "ckpt/reduction.hpp"
#include "ckpt/staging.hpp"
#include "core/spbc.hpp"
#include "mpi/machine.hpp"
#include "util/codec.hpp"
#include "util/gf256.hpp"
#include "util/rng.hpp"

namespace spbc::testing {

namespace {

// Event schedule (virtual seconds). Mid-drain / mid-rebuild cases use a
// 100 MB snapshot so the placement / rebuild transfers are long enough to
// lose a node mid-flight; the other timings use small payloads.
constexpr double kEpoch1At = 0.01;
constexpr double kEpoch2At = 0.5;
constexpr uint64_t kBigBytes = 100000000;

uint64_t checksum(const std::vector<uint8_t>& bytes) {
  util::Fnv1a64 h;
  h.update(bytes.data(), bytes.size());
  return h.digest();
}

}  // namespace

const char* timing_name(FailureCase::Timing t) {
  switch (t) {
    case FailureCase::Timing::kPreDrain:
      return "pre-drain";
    case FailureCase::Timing::kSettled:
      return "settled";
    case FailureCase::Timing::kMidDrain:
      return "mid-drain";
    case FailureCase::Timing::kMidRebuild:
      return "mid-rebuild";
    case FailureCase::Timing::kMidScrub:
      return "mid-scrub";
    case FailureCase::Timing::kSpareSwap:
      return "spare-swap";
    case FailureCase::Timing::kMidDeltaChain:
      return "mid-delta-chain";
  }
  return "?";
}

const char* hostile_name(FailureCase::Hostile h) {
  switch (h) {
    case FailureCase::Hostile::kNone:
      return "none";
    case FailureCase::Hostile::kStragglerSkew:
      return "straggler-skew";
    case FailureCase::Hostile::kPartitionHeal:
      return "partition-heal";
    case FailureCase::Hostile::kRackDomain:
      return "rack-domain";
    case FailureCase::Hostile::kSwitchDomain:
      return "switch-domain";
    case FailureCase::Hostile::kPsuDomain:
      return "psu-domain";
  }
  return "?";
}

FailureCase sample_case(uint64_t seed) {
  util::Pcg32 rng(seed, 0xfa17);
  FailureCase c;
  c.seed = seed;

  switch (rng.next_bounded(4)) {
    case 0:
      c.redundancy.kind = ckpt::SchemeKind::kSingle;
      break;
    case 1:
      c.redundancy.kind = ckpt::SchemeKind::kPartner;
      break;
    case 2:
      c.redundancy.kind = ckpt::SchemeKind::kXorGroup;
      c.redundancy.group_size = 3 + static_cast<int>(rng.next_bounded(3));
      break;
    default:
      c.redundancy.kind = ckpt::SchemeKind::kReedSolomon;
      c.redundancy.rs_k = 2 + static_cast<int>(rng.next_bounded(5));  // 2..6
      c.redundancy.rs_m = 1 + static_cast<int>(rng.next_bounded(3));  // 1..3
      break;
  }

  // Machine: at least one full protection group plus slack, one rank per
  // node so "node" and "rank" coincide and loss patterns stay legible.
  int span = 2;
  if (c.redundancy.kind == ckpt::SchemeKind::kXorGroup)
    span = c.redundancy.group_size;
  if (c.redundancy.kind == ckpt::SchemeKind::kReedSolomon)
    span = c.redundancy.rs_k + c.redundancy.rs_m;
  c.nodes = span + static_cast<int>(rng.next_bounded(5));
  // Failure domains: 2..nodes clusters, nodes dealt contiguously.
  c.nclusters = 2 + static_cast<int>(
                        rng.next_bounded(static_cast<uint32_t>(c.nodes - 1)));

  const uint32_t timing = rng.next_bounded(7);
  c.timing = static_cast<FailureCase::Timing>(timing);
  c.bytes = (c.timing == FailureCase::Timing::kMidDrain ||
             c.timing == FailureCase::Timing::kMidRebuild)
                ? kBigBytes
                : 256 + 64 * rng.next_bounded(120);

  // Loss count: 1 .. tolerance+1, so the sweep probes both sides of every
  // scheme's advertised distance.
  int max_losses = 2;
  if (c.redundancy.kind == ckpt::SchemeKind::kReedSolomon)
    max_losses = c.redundancy.rs_m + 1;
  max_losses = std::min(max_losses, c.nodes - 1);
  c.losses = 1 + static_cast<int>(
                     rng.next_bounded(static_cast<uint32_t>(max_losses)));
  c.correlated = rng.next_bounded(2) == 0;
  c.flush_pfs = rng.next_bounded(4) == 0;
  // Spare pool for the permanent-loss bucket: 0 (forces shrunk restarts)
  // through 2; larger losses than spares mix hot-swaps and shrinks.
  if (c.timing == FailureCase::Timing::kSpareSwap)
    c.spares = static_cast<int>(rng.next_bounded(3));
  // Hostile-shape dimension, drawn LAST so it composes with every earlier
  // draw (scheme x shape x losses x timing x correlation x PFS x spares).
  c.hostile = static_cast<FailureCase::Hostile>(rng.next_bounded(6));
  return c;
}

std::string describe_case(const FailureCase& c) {
  std::ostringstream os;
  os << "seed=" << c.seed << " scheme=" << ckpt::scheme_name(c.redundancy.kind);
  if (c.redundancy.kind == ckpt::SchemeKind::kXorGroup)
    os << " G=" << c.redundancy.group_size;
  if (c.redundancy.kind == ckpt::SchemeKind::kReedSolomon)
    os << " k=" << c.redundancy.rs_k << " m=" << c.redundancy.rs_m;
  os << " nodes=" << c.nodes << " clusters=" << c.nclusters
     << " bytes=" << c.bytes << " losses=" << c.losses
     << (c.correlated ? " correlated" : " independent")
     << " timing=" << timing_name(c.timing)
     << (c.flush_pfs ? " pfs=fast" : " pfs=lagging");
  if (c.timing == FailureCase::Timing::kSpareSwap)
    os << " spares=" << c.spares;
  if (c.hostile != FailureCase::Hostile::kNone)
    os << " hostile=" << hostile_name(c.hostile);
  return os.str();
}

namespace {

// ---------------------------------------------------------------------------
// Shadow codec: re-derives a victim's snapshot from the surviving residency
// with the real arithmetic (GF(256) Cauchy solve for RS, XOR fold, full copy
// for PARTNER) and compares checksums against the original payload. It reads
// only what the residency view says is live — exactly the data a real
// rebuild could stream.
//
// The shadow models the full data-reduction pipeline (DESIGN.md §15):
// logical payloads come from the shared block-mutation generator
// (ckpt::make_state / evolve_state — the same primitives the protocol's
// synthetic state model uses), what the wire carries is the ENCODED blob
// (epoch 2 is a block delta over epoch 1 when smaller; both epochs LZ
// compressed when smaller), and checksum identity is asserted on the
// LOGICAL (decoded) payload. A defect in the codec, the delta scatter, or
// the chain decode fails the oracle even when the scheme arithmetic is
// right. Wire blobs differ in length across ranks, so XOR/RS operate over
// the group-max length with zero padding (length metadata travels with the
// fragment header, as in a real striped layout).
// ---------------------------------------------------------------------------
class ShadowCodec {
 public:
  ShadowCodec(const ckpt::RedundancyConfig& red, const ckpt::StagingArea& area,
              int nodes, uint64_t bytes, util::Pcg32& rng)
      : red_(red),
        area_(area),
        // The codec verifies the reconstruction *math*, not data volume:
        // payloads are capped so the 100 MB timing cases don't generate
        // gigabytes of shadow bytes. The sim still accounts the full size.
        len_(static_cast<size_t>(std::min<uint64_t>(bytes, 4096))) {
    smc_.bytes = len_;
    smc_.block_bytes = 256;
    smc_.mutation_rate = 0.25;
    smc_.seed = rng.next_u64();
    for (int r = 0; r < nodes; ++r) {
      std::vector<unsigned char> buf = ckpt::make_state(smc_, r);
      ckpt::evolve_state(buf, smc_, r, 1);
      originals_[{r, 1}].assign(buf.begin(), buf.end());
      ckpt::evolve_state(buf, smc_, r, 2);
      originals_[{r, 2}].assign(buf.begin(), buf.end());
      encode(r);
    }
  }

  uint64_t original_checksum(int rank, uint64_t epoch) const {
    return checksum(originals_.at({rank, epoch}));
  }

  /// Rebuilds (rank, epoch)'s wire blob from live residency and decodes it
  /// back to the logical payload; false when the surviving symbols cannot
  /// determine it (the caller asserts this never happens while the scheme
  /// claims liveness).
  bool reconstruct(int rank, uint64_t epoch, std::vector<uint8_t>* out) const {
    std::vector<uint8_t> enc;
    switch (red_.kind) {
      case ckpt::SchemeKind::kSingle:
        return false;  // no remote redundancy to decode from
      case ckpt::SchemeKind::kPartner: {
        const std::vector<ckpt::Fragment>* frags =
            area_.fragments(rank, epoch);
        if (frags == nullptr) return false;
        bool copy_live = false;
        for (const ckpt::Fragment& f : *frags)
          if (f.live && !f.corrupt && !f.parity &&
              area_.node_in_service(f.host_node))
            copy_live = true;
        if (!copy_live) return false;
        enc = blobs_.at({rank, epoch}).enc;  // the copy is the wire blob
        break;
      }
      case ckpt::SchemeKind::kXorGroup:
        if (!reconstruct_xor(rank, epoch, &enc)) return false;
        break;
      case ckpt::SchemeKind::kReedSolomon:
        if (!reconstruct_rs(rank, epoch, &enc)) return false;
        break;
    }
    return decode(rank, epoch, enc, out);
  }

 private:
  // Wire form of one epoch: delta (changed 256-byte blocks vs epoch 1) and
  // LZ compression, each kept only when smaller — the store's policy.
  struct Blob {
    std::vector<uint8_t> enc;
    uint64_t payload_len = 0;  // pre-compression (delta payload) bytes
    bool compressed = false;
    bool delta = false;
    std::vector<uint32_t> changed;
  };

  void pack(std::vector<uint8_t> payload, Blob* b) {
    b->payload_len = payload.size();
    std::vector<unsigned char> enc =
        util::codec::lz_compress(payload.data(), payload.size());
    if (enc.size() < payload.size()) {
      b->compressed = true;
      b->enc.assign(enc.begin(), enc.end());
    } else {
      b->enc = std::move(payload);
    }
  }

  void encode(int r) {
    const std::vector<uint8_t>& v1 = originals_.at({r, 1});
    const std::vector<uint8_t>& v2 = originals_.at({r, 2});
    Blob b1;
    pack(v1, &b1);
    blobs_[{r, 1}] = std::move(b1);
    const std::vector<uint64_t> h1 = ckpt::hash_blocks(v1, smc_.block_bytes);
    const std::vector<uint64_t> h2 = ckpt::hash_blocks(v2, smc_.block_bytes);
    Blob b2;
    for (uint32_t blk = 0; blk < h2.size(); ++blk)
      if (blk >= h1.size() || h1[blk] != h2[blk]) b2.changed.push_back(blk);
    if (b2.changed.size() < h2.size()) {
      b2.delta = true;
      std::vector<uint8_t> payload;
      for (uint32_t blk : b2.changed) {
        const size_t off = static_cast<size_t>(blk) * smc_.block_bytes;
        const size_t n = std::min<size_t>(smc_.block_bytes, len_ - off);
        payload.insert(payload.end(), v2.begin() + static_cast<long>(off),
                       v2.begin() + static_cast<long>(off + n));
      }
      pack(std::move(payload), &b2);
    } else {
      b2.changed.clear();
      pack(v2, &b2);
    }
    blobs_[{r, 2}] = std::move(b2);
  }

  // Wire blob -> logical payload: decompress, then scatter a delta's changed
  // blocks over the decoded epoch-1 base (the store materializes the chain
  // base the same way on the real restore path).
  bool decode(int rank, uint64_t epoch, const std::vector<uint8_t>& enc,
              std::vector<uint8_t>* out) const {
    const Blob& b = blobs_.at({rank, epoch});
    std::vector<uint8_t> payload;
    if (b.compressed) {
      payload.resize(b.payload_len);
      util::codec::lz_decompress(enc.data(), enc.size(), payload.data(),
                                 payload.size());
    } else {
      payload = enc;
    }
    if (!b.delta) {
      *out = std::move(payload);
      return true;
    }
    std::vector<uint8_t> base;
    if (!decode(rank, 1, blobs_.at({rank, 1}).enc, &base)) return false;
    base.resize(len_);
    size_t src = 0;
    for (uint32_t blk : b.changed) {
      const size_t off = static_cast<size_t>(blk) * smc_.block_bytes;
      const size_t n = std::min<size_t>(smc_.block_bytes, len_ - off);
      if (src + n > payload.size()) return false;
      std::copy(payload.begin() + static_cast<long>(src),
                payload.begin() + static_cast<long>(src + n),
                base.begin() + static_cast<long>(off));
      src += n;
    }
    *out = std::move(base);
    return true;
  }

  std::vector<int> group_ranks(int rank) const {
    std::vector<int> members = area_.scheme().group_of(rank);
    members.push_back(rank);
    std::sort(members.begin(), members.end());
    return members;
  }

  bool data_live(int member, uint64_t epoch) const {
    return area_.has_local(member, epoch) && area_.node_in_service(member);
  }

  size_t group_wire_len(const std::vector<int>& members,
                        uint64_t epoch) const {
    size_t n = 0;
    for (int m : members) n = std::max(n, blobs_.at({m, epoch}).enc.size());
    return n;
  }

  std::vector<uint8_t> padded_wire(int rank, uint64_t epoch, size_t n) const {
    std::vector<uint8_t> v = blobs_.at({rank, epoch}).enc;
    v.resize(n, 0);
    return v;
  }

  // XOR: parity(owner) = fold of every member's wire blob. Rebuild needs the
  // owner's live parity and every other member's data.
  bool reconstruct_xor(int rank, uint64_t epoch,
                       std::vector<uint8_t>* out) const {
    const std::vector<ckpt::Fragment>* frags = area_.fragments(rank, epoch);
    if (frags == nullptr) return false;
    bool parity_live = false;
    for (const ckpt::Fragment& f : *frags)
      if (f.live && !f.corrupt && f.parity &&
          area_.node_in_service(f.host_node))
        parity_live = true;
    if (!parity_live) return false;
    const std::vector<int> members = group_ranks(rank);
    const size_t wlen = group_wire_len(members, epoch);
    std::vector<uint8_t> acc(wlen, 0);
    for (int m : members) {  // parity content: fold over the whole group
      const std::vector<uint8_t> d = padded_wire(m, epoch, wlen);
      for (size_t i = 0; i < acc.size(); ++i) acc[i] ^= d[i];
    }
    for (int m : members) {  // peel the surviving members back out
      if (m == rank) continue;
      if (!data_live(m, epoch)) return false;
      const std::vector<uint8_t> d = padded_wire(m, epoch, wlen);
      for (size_t i = 0; i < acc.size(); ++i) acc[i] ^= d[i];
    }
    acc.resize(blobs_.at({rank, epoch}).enc.size());
    *out = std::move(acc);
    return true;
  }

  // RS: each live share is one Cauchy equation (row = position * m + share)
  // over the group's member wire blobs; solve for the unknown members and
  // return the requested one.
  bool reconstruct_rs(int rank, uint64_t epoch,
                      std::vector<uint8_t>* out) const {
    const std::vector<int> members = group_ranks(rank);
    const int g = static_cast<int>(members.size());
    const int m = red_.rs_m;
    const size_t wlen = group_wire_len(members, epoch);
    std::vector<int> unknowns;
    for (int p = 0; p < g; ++p)
      if (!data_live(members[static_cast<size_t>(p)], epoch))
        unknowns.push_back(p);
    const auto rank_pos = std::find(members.begin(), members.end(), rank);
    const int target = static_cast<int>(rank_pos - members.begin());
    if (std::find(unknowns.begin(), unknowns.end(), target) == unknowns.end())
      return false;  // the owner's data is live; nothing to decode

    struct Eq {
      int row = 0;
      std::vector<uint8_t> rhs;  // share content minus the known members
    };
    const util::gf256::Matrix family =
        util::gf256::cauchy_parity_matrix(g, g * m);
    std::vector<Eq> eqs;
    std::set<int> rows_seen;
    for (int p = 0; p < g; ++p) {
      const std::vector<ckpt::Fragment>* frags =
          area_.fragments(members[static_cast<size_t>(p)], epoch);
      if (frags == nullptr) continue;
      for (const ckpt::Fragment& f : *frags) {
        if (!f.live || f.corrupt || !f.parity ||
            !area_.node_in_service(f.host_node))
          continue;
        const int row = p * m + f.share;
        if (!rows_seen.insert(row).second) continue;
        if (static_cast<int>(eqs.size()) == static_cast<int>(unknowns.size()))
          continue;  // enough equations picked
        // Share content minus the known members' terms: in GF(2^8) addition
        // is XOR, so the RHS is just the unknown columns' contribution.
        Eq eq;
        eq.row = row;
        eq.rhs.assign(wlen, 0);
        for (int j : unknowns) {
          const std::vector<uint8_t> d =
              padded_wire(members[static_cast<size_t>(j)], epoch, wlen);
          util::gf256::mul_add(eq.rhs.data(), d.data(), eq.rhs.size(),
                               family.at(row, j));
        }
        eqs.push_back(std::move(eq));
      }
    }
    const int u = static_cast<int>(unknowns.size());
    if (static_cast<int>(eqs.size()) < u) return false;
    util::gf256::Matrix dec(u, u);
    for (int i = 0; i < u; ++i)
      for (int j = 0; j < u; ++j)
        dec.at(i, j) =
            family.at(eqs[static_cast<size_t>(i)].row,
                      unknowns[static_cast<size_t>(j)]);
    if (!util::gf256::invert(dec)) return false;
    // Target row of the inverse applied to the RHS vectors.
    int trow = 0;
    while (unknowns[static_cast<size_t>(trow)] != target) ++trow;
    std::vector<uint8_t> solved(wlen, 0);
    for (int i = 0; i < u; ++i)
      util::gf256::mul_add(solved.data(),
                           eqs[static_cast<size_t>(i)].rhs.data(),
                           solved.size(), dec.at(trow, i));
    solved.resize(blobs_.at({rank, epoch}).enc.size());
    *out = std::move(solved);
    return true;
  }

  const ckpt::RedundancyConfig red_;
  const ckpt::StagingArea& area_;
  size_t len_;  // shadow payload length (capped; see constructor)
  ckpt::StateModelConfig smc_;
  std::map<std::pair<int, uint64_t>, std::vector<uint8_t>> originals_;
  std::map<std::pair<int, uint64_t>, Blob> blobs_;
};

struct CaseRunner {
  const FailureCase& c;
  CaseResult result;

  void fail(const std::string& what) {
    result.ok = false;
    result.violations.push_back(what + "  [" + describe_case(c) + "]");
  }
};

}  // namespace

bool oracle_recoverable(const ckpt::StagingArea& area,
                        const ckpt::RedundancyConfig& red, int nodes,
                        int rank, uint64_t epoch) {
  if (area.has_local(rank, epoch)) return true;
  // Random payloads make a wrong reconstruction collide with the original
  // checksum with probability ~2^-64; the seed only varies the bytes.
  util::Pcg32 rng(0x0bacULL + static_cast<uint64_t>(rank) * 977 + epoch,
                  0x5eed);
  ShadowCodec codec(red, area, nodes, 512, rng);
  std::vector<uint8_t> out;
  if (!codec.reconstruct(rank, epoch, &out)) return false;
  return checksum(out) == codec.original_checksum(rank, epoch);
}

CaseResult run_case(const FailureCase& c) {
  CaseRunner run{c, {}};
  util::Pcg32 rng(c.seed, 0x5badc0de);

  mpi::MachineConfig mc;
  mc.nranks = c.nodes;
  mc.ranks_per_node = 1;
  mc.spare_nodes = c.spares;
  // Hostile shape: healing partition over the epoch-2 drain era. Fragment
  // placements crossing the nodes/2 boundary are held in the fabric until
  // the heal — which lands before every settled-family kill/check time, so
  // held placements must arrive, count, and restore like unheld ones.
  if (c.hostile == FailureCase::Hostile::kPartitionHeal) {
    net::PartitionPhase p;
    p.start = kEpoch2At;
    p.heal = kEpoch2At + 0.6;
    p.boundary_node = std::max(1, c.nodes / 2);
    mc.net.partitions.push_back(p);
  }
  auto proto = std::make_unique<core::SpbcProtocol>(core::SpbcConfig{});
  mpi::Machine m(mc, std::move(proto));
  std::vector<int> clusters(static_cast<size_t>(c.nodes));
  const int span = (c.nodes + c.nclusters - 1) / c.nclusters;
  for (int n = 0; n < c.nodes; ++n)
    clusters[static_cast<size_t>(n)] = n / span;
  m.set_cluster_of(clusters);

  ckpt::StagingConfig sc;
  sc.level = ckpt::StorageLevel::kPfs;
  sc.async = true;
  sc.model.pfs_bw = c.flush_pfs ? 1.0e12 : 1.0;  // instant vs never-lands
  sc.redundancy = c.redundancy;
  ckpt::StagingArea area(sc);
  area.attach(m);

  ShadowCodec shadow(c.redundancy, area, c.nodes, c.bytes, rng);

  // Victims: `losses` distinct nodes, either spread independently or all
  // drawn from one failure domain (the correlated multi-node pattern a
  // cluster failure produces).
  std::vector<int> victims;
  {
    std::vector<int> pool;
    // Hostile hardware domains trump the cluster-correlated pool: the blast
    // radius is a rack (contiguous 4-node span), a leaf switch (node % 2
    // stripe), or a PSU pair — patterns that cut ACROSS the cluster map and
    // across redundancy groups.
    switch (c.hostile) {
      case FailureCase::Hostile::kRackDomain: {
        const int racks = (c.nodes + 3) / 4;
        const int rack =
            static_cast<int>(rng.next_bounded(static_cast<uint32_t>(racks)));
        for (int n = rack * 4; n < std::min(c.nodes, rack * 4 + 4); ++n)
          pool.push_back(n);
        break;
      }
      case FailureCase::Hostile::kSwitchDomain: {
        const int sw = static_cast<int>(rng.next_bounded(2));
        for (int n = 0; n < c.nodes; ++n)
          if (n % 2 == sw) pool.push_back(n);
        break;
      }
      case FailureCase::Hostile::kPsuDomain: {
        const int pairs = (c.nodes + 1) / 2;
        const int p =
            static_cast<int>(rng.next_bounded(static_cast<uint32_t>(pairs)));
        if (p * 2 < c.nodes) pool.push_back(p * 2);
        if (p * 2 + 1 < c.nodes) pool.push_back(p * 2 + 1);
        break;
      }
      default:
        break;
    }
    if (static_cast<int>(pool.size()) < c.losses) pool.clear();
    if (!pool.empty()) {
      // Domain pool in effect; fall through to the draw below.
    } else if (c.correlated) {
      int dom = clusters[static_cast<size_t>(
          rng.next_bounded(static_cast<uint32_t>(c.nodes)))];
      for (int n = 0; n < c.nodes; ++n)
        if (clusters[static_cast<size_t>(n)] == dom) pool.push_back(n);
      if (static_cast<int>(pool.size()) < c.losses) {
        pool.clear();  // domain too small: widen to the whole machine
        for (int n = 0; n < c.nodes; ++n) pool.push_back(n);
      }
    } else {
      for (int n = 0; n < c.nodes; ++n) pool.push_back(n);
    }
    for (int i = 0; i < c.losses; ++i) {
      const size_t pick = rng.next_bounded(static_cast<uint32_t>(pool.size()));
      victims.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<long>(pick));
    }
    std::sort(victims.begin(), victims.end());
  }
  const std::set<int> victim_set(victims.begin(), victims.end());

  const double local_write = static_cast<double>(c.bytes) / sc.model.local_bw;
  double kill_at = 0;
  switch (c.timing) {
    case FailureCase::Timing::kPreDrain:
      kill_at = kEpoch2At - 0.1;
      break;
    case FailureCase::Timing::kSettled:
    case FailureCase::Timing::kMidRebuild:
    case FailureCase::Timing::kMidScrub:
    case FailureCase::Timing::kSpareSwap:
    case FailureCase::Timing::kMidDeltaChain:
      kill_at = kEpoch2At + local_write + 1.5;
      break;
    case FailureCase::Timing::kMidDrain:
      // The async chain starts when the LOCAL write completes; the kill
      // lands while epoch 2's fragment placements are on the wire.
      kill_at = kEpoch2At + local_write + 0.005;
      break;
  }
  const double check_at = kill_at + (c.bytes >= kBigBytes ? 1.0 : 0.3);
  const double reprotect_check_at = check_at + 1.0;

  // ---- writes ------------------------------------------------------------
  // Straggler skew: odd nodes cut epoch 2 late, so the wave's placements
  // straggle across the kill instead of moving in lockstep.
  auto skew_of = [&](int r) {
    return c.hostile == FailureCase::Hostile::kStragglerSkew && (r % 2) != 0
               ? 0.15
               : 0.0;
  };
  // Mid-rebuild (and multi-loss spare-swap) keeps one victim in reserve: it
  // dies while the earlier losses' rebuild reads are in flight (see the
  // losses block below), so its skewed write still precedes its death.
  const bool reserve_one =
      (c.timing == FailureCase::Timing::kMidRebuild ||
       c.timing == FailureCase::Timing::kSpareSwap) &&
      victims.size() > 1;
  for (int r = 0; r < c.nodes; ++r) {
    m.engine().at(kEpoch1At, [&, r] { area.write(r, 1, c.bytes); });
    m.engine().at(kEpoch2At + skew_of(r), [&, r] {
      // Pre-drain victims died before epoch 2 was cut; a dead rank must not
      // write (a write would also mark its node back in service). The same
      // holds for a straggler victim whose skewed write would land after
      // its own first-wave death.
      if (c.timing == FailureCase::Timing::kPreDrain && victim_set.count(r))
        return;
      if (victim_set.count(r) && kEpoch2At + skew_of(r) >= kill_at &&
          !(reserve_one && r == victims.back()))
        return;
      // Delta-chain bucket: epoch 2 is staged as a delta anchored on the
      // epoch-1 full capture, so its recoverability spans both elements.
      const uint64_t chain_base =
          c.timing == FailureCase::Timing::kMidDeltaChain ? 1 : 2;
      area.write(r, 2, c.bytes, ckpt::LevelPlan{}, chain_base);
    });
  }

  // ---- losses ------------------------------------------------------------
  const size_t first_wave =
      reserve_one ? victims.size() - 1 : victims.size();
  // Permanent loss: the victim's current physical node is invalidated (its
  // staged state is gone for good) AND retired from the machine, so the
  // resident rank rebinds onto a pooled spare or packs onto a survivor.
  auto retire = [&](int v) {
    const int old = m.node_of(v);
    area.invalidate_node(old);
    m.retire_node(old);
    if (m.node_of(v) == old)
      run.fail("retire_node left rank " + std::to_string(v) +
               " bound to the dead node");
    if (!m.node_retired(old)) run.fail("retired node still in service");
  };
  if (c.timing == FailureCase::Timing::kSpareSwap) {
    m.engine().at(kill_at, [&] {
      for (size_t i = 0; i < first_wave; ++i) retire(victims[i]);
      // Each retire_node call on a live node bumps exactly one counter:
      // hot-swap while the pool lasts, shrunk restart after.
      const uint64_t want_swaps =
          std::min<uint64_t>(first_wave, static_cast<uint64_t>(c.spares));
      if (m.spare_swaps() != want_swaps)
        run.fail("spare-swap count " + std::to_string(m.spare_swaps()) +
                 " != expected " + std::to_string(want_swaps));
      if (m.shrink_restarts() != first_wave - want_swaps)
        run.fail("shrink-restart count " + std::to_string(m.shrink_restarts()) +
                 " != expected " + std::to_string(first_wave - want_swaps));
    });
  } else if (c.timing != FailureCase::Timing::kMidScrub) {
    m.engine().at(kill_at, [&] {
      for (size_t i = 0; i < first_wave; ++i) area.invalidate_node(victims[i]);
    });
  }

  // ---- silent losses (mid-scrub timing) ----------------------------------
  // No node dies; `losses` staged fragments silently rot in place. A scrub
  // wave then runs, and the checks assert it found every one, repaired it
  // while the PFS lagged, and that the scheme's liveness claims match the
  // oracle's actual derivability afterwards.
  if (c.timing == FailureCase::Timing::kMidScrub) {
    std::vector<uint64_t> salts;
    for (int i = 0; i < c.losses; ++i) salts.push_back(rng.next_u64());
    auto injected = std::make_shared<uint64_t>(0);
    m.engine().at(kill_at, [&, salts, injected] {
      // Fewer candidates than losses (e.g. the SINGLE scheme places no
      // fragments at all) just shrinks the injection; `injected` carries the
      // real count into the assertions.
      for (uint64_t s : salts)
        if (area.corrupt_one_fragment(s)) ++*injected;
    });
    m.engine().at(kill_at + 0.2, [&] { area.run_scrub_wave(); });
    m.engine().at(kill_at + 1.0, [&, injected] {
      const ckpt::StagingStats st = area.stats();
      if (st.silent_losses_injected != *injected)
        run.fail("silent-loss injection count mismatch");
      if (st.scrubs_detected != *injected)
        run.fail("scrub wave missed silent losses (" +
                 std::to_string(st.scrubs_detected) + " detected of " +
                 std::to_string(*injected) + ")");
      if (area.corrupt_live_fragments() != 0)
        run.fail("corrupt fragments still believed live after the scrub");
      if (!c.flush_pfs && st.scrubs_repaired != *injected)
        run.fail("scrub left detected losses unrepaired while the PFS "
                 "lagged (" +
                 std::to_string(st.scrubs_repaired) + " repaired of " +
                 std::to_string(*injected) + ")");
      // Oracle as arbiter: after detection + repair, every liveness claim
      // must be backed by an actual reconstruction of the payload bytes.
      for (int r = 0; r < c.nodes; ++r) {
        for (uint64_t e = 1; e <= 2; ++e) {
          if (area.scheme().recoverable_without_pfs(r, e, area) &&
              !oracle_recoverable(area, c.redundancy, c.nodes, r, e)) {
            run.fail("post-scrub liveness claim the oracle refutes (rank " +
                     std::to_string(r) + " epoch " + std::to_string(e) + ")");
          }
        }
      }
    });
  }

  // ---- delta-chain checks (mid-delta-chain timing) -----------------------
  // Epoch 2 is a delta head anchored on epoch 1; its restore must walk both
  // elements. Asserts the chain shape, chain-aware recoverability (a head
  // never claims liveness past a lost base), no false success when the
  // chain is exhausted, and that the epoch-1 fallback target still restores
  // on its own whenever its elements survive.
  auto outstanding = std::make_shared<int>(0);
  if (c.timing == FailureCase::Timing::kMidDeltaChain) {
    m.engine().at(check_at, [&, outstanding] {
      for (size_t i = 0; i < first_wave; ++i) {
        const int v = victims[i];
        const std::vector<uint64_t> chain = area.restore_chain(v, 2);
        if (chain.size() != 2 || chain.front() != 1 || chain.back() != 2)
          run.fail("delta head's restore chain is not [1, 2] (rank " +
                   std::to_string(v) + ")");
        const bool head_ok = area.recoverable(v, 2);
        const bool base_ok = area.recoverable(v, 1);
        if (head_ok && !base_ok)
          run.fail("chain head claims recoverability past a lost base (rank " +
                   std::to_string(v) + ")");
        ++*outstanding;
        area.execute_restore(
            v, 2, [&, v, head_ok, base_ok, outstanding](bool ok) {
              --*outstanding;
              if (ok && !head_ok)
                run.fail("exhausted-chain restore reported success — "
                         "invented data (rank " +
                         std::to_string(v) + ")");
              if (!ok && head_ok)
                run.fail("chain restore failed although every element was "
                         "recoverable (rank " +
                         std::to_string(v) + ")");
              if (ok && area.scheme().recoverable_without_pfs(v, 2, area) &&
                  !area.has_local(v, 2)) {
                // Checksum identity through the reduction pipeline: the
                // rebuilt wire blob must decode (delta scatter over the
                // epoch-1 base) to the exact logical payload.
                std::vector<uint8_t> rebuilt;
                if (!shadow.reconstruct(v, 2, &rebuilt)) {
                  run.fail("shadow codec cannot decode a chain head the "
                           "scheme claims (rank " +
                           std::to_string(v) + ")");
                } else if (checksum(rebuilt) !=
                           shadow.original_checksum(v, 2)) {
                  run.fail("decoded chain head differs from the original "
                           "logical payload (rank " +
                           std::to_string(v) + ")");
                }
              }
              if (!ok && base_ok) {
                // Exhausted chain: the caller falls back one epoch; the
                // base must then restore as its own (length-1) chain.
                ++*outstanding;
                area.execute_restore(v, 1, [&, v, outstanding](bool ok1) {
                  --*outstanding;
                  if (!ok1)
                    run.fail("epoch-1 fallback restore failed although "
                             "epoch 1 was recoverable (rank " +
                             std::to_string(v) + ")");
                });
              }
            });
      }
    });
  }

  // ---- invariant checks --------------------------------------------------
  // (Mid-scrub and mid-delta-chain cases run their own checks above.)
  if (c.timing != FailureCase::Timing::kMidScrub &&
      c.timing != FailureCase::Timing::kMidDeltaChain)
  m.engine().at(check_at, [&, outstanding] {
    const uint64_t probe_epoch =
        c.timing == FailureCase::Timing::kPreDrain ? 1 : 2;
    for (size_t i = 0; i < first_wave; ++i) {
      const int v = victims[i];
      for (uint64_t e = 1; e <= probe_epoch; ++e) {
        const bool live =
            area.scheme().recoverable_without_pfs(v, e, area);
        ckpt::RestorePlan plan = area.plan_restore(v, e);
        // Invariant 1: plan consistency with the liveness predicate.
        if (live && (plan.source == ckpt::RestorePlan::Source::kPfs ||
                     plan.source == ckpt::RestorePlan::Source::kNone)) {
          run.fail("liveness=true but the plan reads the PFS or nothing (rank " +
                   std::to_string(v) + " epoch " + std::to_string(e) + ")");
        }
        if (!live && (plan.source == ckpt::RestorePlan::Source::kLocal ||
                      plan.source == ckpt::RestorePlan::Source::kRemoteCopy ||
                      plan.source == ckpt::RestorePlan::Source::kRebuild)) {
          run.fail("liveness=false but the plan claims a redundancy source (rank " +
                   std::to_string(v) + " epoch " + std::to_string(e) + ")");
        }
        // Invariant 2 (settled cases, and permanent losses — the rebind to a
        // spare/survivor must not cost recoverability): within the scheme's
        // advertised distance the victim MUST be recoverable without the PFS.
        if (c.timing == FailureCase::Timing::kSettled ||
            c.timing == FailureCase::Timing::kSpareSwap) {
          std::vector<int> group = area.scheme().group_of(v);
          group.push_back(v);
          int in_group_dead = 0;
          for (int g : group)
            if (victim_set.count(g)) ++in_group_dead;
          bool guaranteed = false;
          switch (c.redundancy.kind) {
            case ckpt::SchemeKind::kSingle:
              guaranteed = false;
              break;
            case ckpt::SchemeKind::kPartner: {
              const std::vector<int> buddies = area.scheme().group_of(v);
              guaranteed =
                  !buddies.empty() && !victim_set.count(buddies.front());
              break;
            }
            case ckpt::SchemeKind::kXorGroup:
              guaranteed = in_group_dead == 1;
              break;
            case ckpt::SchemeKind::kReedSolomon: {
              // The round-robin deal can produce a group smaller than k+m
              // (e.g. 7 nodes at k+m=6 split 4/3); each member can then
              // place only group-1 distinct shares, and that is the
              // group's real distance.
              const int placeable =
                  std::min(c.redundancy.rs_m,
                           static_cast<int>(group.size()) - 1);
              guaranteed = in_group_dead <= placeable;
              break;
            }
          }
          if (guaranteed && !live) {
            run.fail("in-tolerance loss not recoverable without the PFS (rank " +
                     std::to_string(v) + " epoch " + std::to_string(e) +
                     ", in-group dead " + std::to_string(in_group_dead) + ")");
          }
          if (c.redundancy.kind == ckpt::SchemeKind::kSingle && live) {
            run.fail("single scheme claims liveness with LOCAL dead (rank " +
                     std::to_string(v) + ")");
          }
        }
        // Invariants 3 + 4: execute the restore and audit the outcome. The
        // PFS-restore counter is machine-global, so the "no PFS touch"
        // audit is only meaningful when this is the sole restore in
        // flight; concurrent victims are covered by the plan-consistency
        // check above.
        const bool sole_probe = first_wave == 1 && probe_epoch == 1;
        const bool had_pfs = area.has_pfs(v, e);
        const uint64_t pfs_before = area.stats().restores_by_level[2];
        ++*outstanding;
        area.execute_restore(v, e, [&, v, e, live, had_pfs, pfs_before,
                                    sole_probe, outstanding](bool ok) {
          --*outstanding;
          const uint64_t pfs_after = area.stats().restores_by_level[2];
          const bool later_loss_possible =
              c.timing == FailureCase::Timing::kMidRebuild ||
              (c.timing == FailureCase::Timing::kSpareSwap && reserve_one);
          if (!ok && live && !later_loss_possible) {
            run.fail("restore failed although liveness held and no later "
                     "loss intervened (rank " +
                     std::to_string(v) + " epoch " + std::to_string(e) + ")");
          }
          if (!ok && had_pfs) {
            run.fail("restore failed with a PFS copy present (rank " +
                     std::to_string(v) + " epoch " + std::to_string(e) + ")");
          }
          if (ok && live && sole_probe &&
              c.timing != FailureCase::Timing::kMidRebuild &&
              pfs_after != pfs_before) {
            run.fail("restore touched the PFS although the redundancy layer "
                     "claimed the epoch (rank " +
                     std::to_string(v) + " epoch " + std::to_string(e) + ")");
          }
          // Invariant: checksum identity. Whenever the scheme still claims
          // the epoch at completion time, the shadow codec must reproduce
          // the exact original bytes from the surviving residency.
          if (ok && area.scheme().recoverable_without_pfs(v, e, area) &&
              !area.has_local(v, e)) {
            std::vector<uint8_t> rebuilt;
            if (!shadow.reconstruct(v, e, &rebuilt)) {
              run.fail("shadow codec cannot decode an epoch the scheme "
                       "claims (rank " +
                       std::to_string(v) + " epoch " + std::to_string(e) + ")");
            } else if (checksum(rebuilt) != shadow.original_checksum(v, e)) {
              run.fail("restored bytes differ from the original snapshot "
                       "(rank " +
                       std::to_string(v) + " epoch " + std::to_string(e) + ")");
            }
          }
        });
      }
    }
  });

  // Mid-rebuild: the reserved victim (a surviving group member, i.e. a
  // rebuild source) dies while the reads above are on the wire. Under
  // spare-swap timing the reserved loss is itself permanent — a node dying
  // while an earlier victim's spare rebuild is still in flight.
  if (reserve_one) {
    m.engine().at(check_at + 0.01, [&] {
      if (c.timing == FailureCase::Timing::kSpareSwap)
        retire(victims.back());
      else
        area.invalidate_node(victims.back());
    });
  }

  // Invariant 5 (settled, lagging PFS): owners that survived but lost a
  // fragment host must have been re-protected back to full liveness.
  if (c.timing == FailureCase::Timing::kSettled && !c.flush_pfs) {
    m.engine().at(reprotect_check_at, [&] {
      for (int r = 0; r < c.nodes; ++r) {
        if (victim_set.count(r)) continue;
        // Re-protection needs somewhere to put the fragments: enough
        // in-service hosts beside the owner.
        std::vector<int> group = area.scheme().group_of(r);
        int alive_hosts = 0;
        for (int g : group)
          if (!victim_set.count(g)) ++alive_hosts;
        int needed = 0;
        switch (c.redundancy.kind) {
          case ckpt::SchemeKind::kSingle:
            needed = 0;
            break;
          case ckpt::SchemeKind::kPartner:
            // The buddy mapping is fixed: a dead buddy cannot be replaced.
            needed = (alive_hosts == static_cast<int>(group.size())) ? 1 : -1;
            break;
          case ckpt::SchemeKind::kXorGroup:
            needed = 1;
            break;
          case ckpt::SchemeKind::kReedSolomon:
            needed = c.redundancy.rs_m;
            break;
        }
        if (needed <= 0 || alive_hosts < needed) continue;
        for (uint64_t e = 1; e <= 2; ++e) {
          if (!area.has_local(r, e)) continue;
          if (!area.scheme().recoverable_without_pfs(r, e, area))
            run.fail("survivor lost liveness despite re-protection (rank " +
                     std::to_string(r) + " epoch " + std::to_string(e) + ")");
          // Full protection: were the owner's node to die *now*, the scheme
          // must still claim the epoch — probe by counting live fragments.
          const std::vector<ckpt::Fragment>* frags = area.fragments(r, e);
          int live_frags = 0;
          if (frags != nullptr)
            for (const ckpt::Fragment& f : *frags)
              if (f.live && area.node_in_service(f.host_node)) ++live_frags;
          if (live_frags < needed)
            run.fail("re-protection left fragments missing (rank " +
                     std::to_string(r) + " epoch " + std::to_string(e) +
                     ": " + std::to_string(live_frags) + " live, need " +
                     std::to_string(needed) + ")");
        }
      }
    });
  }

  mpi::RunResult rr = m.run();
  if (!rr.completed) run.fail("case run did not complete");
  if (*outstanding != 0)
    run.fail("execute_restore never completed for " +
             std::to_string(*outstanding) + " victims");
  return run.result;
}

}  // namespace spbc::testing

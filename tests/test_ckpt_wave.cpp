// Tests for the non-blocking marker-based checkpoint wave: the cross-cluster
// circular-wait regression that killed the old drain barrier, waves running
// concurrently with recovery, overlapping waves, mid-wave failures, and
// failure storms that mix sigma_0 and committed-epoch restores.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/spbc.hpp"
#include "mpi/machine.hpp"

namespace spbc {
namespace {

using mpi::Machine;
using mpi::MachineConfig;
using mpi::Payload;
using mpi::Rank;

struct Rig {
  std::unique_ptr<Machine> machine;
  core::SpbcProtocol* protocol = nullptr;
};

Rig make_rig(std::vector<int> clusters, core::SpbcConfig scfg,
             MachineConfig cfg = {}) {
  cfg.nranks = static_cast<int>(clusters.size());
  if (cfg.ranks_per_node > cfg.nranks) cfg.ranks_per_node = cfg.nranks;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  Rig rig;
  rig.protocol = proto.get();
  rig.machine = std::make_unique<Machine>(cfg, std::move(proto));
  rig.machine->set_cluster_of(std::move(clusters));
  return rig;
}

void noop_handlers(Rank& r) {
  r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(0); },
                       [](util::ByteReader& rd) { rd.get<int>(); });
}

// Regression for the drain-barrier deadlock: two clusters checkpoint
// concurrently while their members hold halo dependencies on each other.
// Under the old blocking wave this is a textbook circular wait:
//   rank 0 parks in its wave until rank 1 joins;
//   rank 1 waits for a message rank 2 sends only after ITS wave completes;
//   rank 2 parks in its wave until rank 3 joins;
//   rank 3 waits for a message rank 1 sends only after its recv
// -- a 1 -> 2 -> 3 -> 1 cycle through two blocking waves. The marker-based
// wave never parks, so every rank keeps communicating and the run completes.
TEST(CkptWave, NonBlockingWaveBreaksCrossClusterCycle) {
  MachineConfig cfg;
  cfg.ranks_per_node = 2;
  Rig rig = make_rig({0, 0, 1, 1}, core::SpbcConfig{}, cfg);
  core::SpbcProtocol* p = rig.protocol;
  rig.machine->launch([p](Rank& r) {
    noop_handlers(r);
    const mpi::Comm& w = r.world();
    switch (r.rank()) {
      case 0:
        p->checkpoint_now(r);
        break;
      case 1:
        r.recv(2, 1, w);
        r.send(3, 1, Payload::make_synthetic(64, 0x11), w);
        p->checkpoint_now(r);
        break;
      case 2:
        p->checkpoint_now(r);
        r.send(1, 1, Payload::make_synthetic(64, 0x22), w);
        break;
      case 3:
        r.recv(1, 1, w);
        p->checkpoint_now(r);
        break;
    }
  });
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(p->checkpoints_taken(), 4u);
  EXPECT_EQ(p->committed_epoch(0), 1u);
  EXPECT_EQ(p->committed_epoch(1), 1u);
}

// Shared iterative workload: ring halo exchange + checksum, checkpointing at
// every iteration boundary.
void ring_workload(Rank& r, int iters, std::map<int, uint64_t>* sums) {
  struct St {
    int iter = 0;
    uint64_t sum = 0;
  } st;
  r.set_state_handlers(
      [&st](util::ByteWriter& w) { w.put(st); },
      [&st](util::ByteReader& rd) { st = rd.get<decltype(st)>(); });
  if (r.restarted()) r.restore_app_state();
  const mpi::Comm& w = r.world();
  int n = r.nranks();
  for (; st.iter < iters;) {
    int to = (r.rank() + 1) % n;
    int from = (r.rank() - 1 + n) % n;
    mpi::Request rq = r.irecv(from, 1, w);
    r.isend(to, 1,
            Payload::make_synthetic(
                512, static_cast<uint64_t>(r.rank() * 1000 + st.iter)),
            w);
    r.wait(rq);
    util::Fnv1a64 h;
    h.update_u64(st.sum);
    h.update_u64(rq.result().hash);
    st.sum = h.digest();
    r.compute(5e-4);
    ++st.iter;
    r.maybe_checkpoint();
  }
  if (sums) (*sums)[r.rank()] = st.sum;
}

std::map<int, uint64_t> ring_reference(int nranks, int iters) {
  std::map<int, uint64_t> sums;
  Rig rig = make_rig(std::vector<int>(static_cast<size_t>(nranks), 0),
                     core::SpbcConfig{});
  rig.machine->launch([iters, &sums](Rank& r) { ring_workload(r, iters, &sums); });
  EXPECT_TRUE(rig.machine->run().completed);
  return sums;
}

// A cluster must be able to run its checkpoint wave while another cluster is
// mid-recovery (the old wave drained replays first, parking members).
TEST(CkptWave, WaveDuringRecoveryCompletes) {
  const int n = 8, iters = 10;
  auto expect = ring_reference(n, iters);
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;  // a wave at every boundary, also during recovery
  MachineConfig cfg;
  cfg.ranks_per_node = 2;
  cfg.abort_on_deadlock = false;
  std::map<int, uint64_t> sums;
  Rig rig = make_rig({0, 0, 1, 1, 2, 2, 3, 3}, scfg, cfg);
  rig.machine->launch([&sums](Rank& r) { ring_workload(r, iters, &sums); });
  rig.machine->inject_failure(0.004, 2);
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  for (int c = 0; c < 4; ++c)
    EXPECT_EQ(rig.protocol->committed_epoch(c), static_cast<uint64_t>(iters));
}

// Back-to-back waves: with checkpoint_every=1 and an async completion
// reduction, wave E+1 can start before wave E's commit lands at every
// member. All epochs must still commit, in order, on every cluster.
TEST(CkptWave, OverlappingWavesAllCommit) {
  const int n = 4, iters = 6;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  MachineConfig cfg;
  cfg.ranks_per_node = 2;
  std::map<int, uint64_t> sums;
  Rig rig = make_rig({0, 0, 1, 1}, scfg, cfg);
  rig.machine->launch([&sums](Rank& r) { ring_workload(r, iters, &sums); });
  ASSERT_TRUE(rig.machine->run().completed);
  EXPECT_EQ(rig.protocol->checkpoints_taken(), static_cast<uint64_t>(n * iters));
  EXPECT_EQ(rig.protocol->committed_epoch(0), static_cast<uint64_t>(iters));
  EXPECT_EQ(rig.protocol->committed_epoch(1), static_cast<uint64_t>(iters));
}

// A failure before any wave commits must roll the cluster back to the
// initial state -- even if some members already wrote an (uncommitted)
// epoch-1 snapshot -- and the run must still converge to the reference.
TEST(CkptWave, MidWaveFailureRestoresSigmaZero) {
  const int n = 4, iters = 4;
  auto expect = ring_reference(n, iters);
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 2;
  MachineConfig cfg;
  cfg.ranks_per_node = 2;
  cfg.abort_on_deadlock = false;
  std::map<int, uint64_t> sums;
  Rig rig = make_rig({0, 0, 1, 1}, scfg, cfg);
  rig.machine->launch([&sums](Rank& r) { ring_workload(r, iters, &sums); });
  // First boundary is after iteration 2 (~1.3ms in); fail cluster 0 before
  // its wave can commit.
  rig.machine->inject_failure(0.0001, 0);
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  ASSERT_EQ(rig.machine->recoveries().size(), 1u);
  // sigma_0 restore: no checkpoint backed the rollback, so the members
  // re-ran from the initial state rather than restoring one.
  EXPECT_EQ(rig.machine->recoveries().at(0).checkpoint_time, 0.0);
  EXPECT_FALSE(rig.machine->rank(0).restarted());
  EXPECT_FALSE(rig.machine->rank(1).restarted());
}

// Failure storm across clusters with rendezvous-sized halo traffic and
// frequent waves: repeated rollbacks (including to sigma_0 and to committed
// epochs, including the same cluster twice) must neither deadlock nor
// corrupt the checksums. This storm covers the marker/rollback races fixed
// alongside the wave rewrite: live rendezvous handshakes surviving a
// re-announced Rollback, replayed copies overlapping in-flight handshakes,
// and stale LS-suppression for streams a peer's rollback emptied.
TEST(CkptWave, FailureStormCompletes) {
  const int n = 8, iters = 14;
  MachineConfig cfg;
  cfg.ranks_per_node = 2;
  cfg.eager_threshold = 256;  // 512-byte halos go rendezvous
  cfg.abort_on_deadlock = false;
  std::map<int, uint64_t> expect;
  {
    Rig rig = make_rig(std::vector<int>(n, 0), core::SpbcConfig{}, cfg);
    rig.machine->launch([&expect](Rank& r) { ring_workload(r, iters, &expect); });
    ASSERT_TRUE(rig.machine->run().completed);
  }
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 2;
  std::map<int, uint64_t> sums;
  Rig rig = make_rig({0, 0, 1, 1, 2, 2, 3, 3}, scfg, cfg);
  rig.machine->launch([&sums](Rank& r) { ring_workload(r, iters, &sums); });
  rig.machine->inject_failure(0.0008, 2);  // cluster 1, before any commit
  rig.machine->inject_failure(0.0075, 4);  // cluster 2, overlapping 1's tail
  rig.machine->inject_failure(0.0145, 2);  // cluster 1 again
  rig.machine->inject_failure(0.0210, 0);  // cluster 0
  rig.machine->inject_failure(0.0290, 3);  // cluster 1, third time
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  EXPECT_EQ(rig.protocol->rollbacks(), 5u);
}

// checkpoint_now on one member propagates through markers: peers that never
// reach a periodic boundary (checkpoint_every=0 here) join the wave at
// their next maybe_checkpoint() call, so the forced epoch gains every
// member's snapshot and commits — i.e. becomes the restore target.
TEST(CkptWave, CheckpointNowPropagatesThroughMarkers) {
  MachineConfig cfg;
  cfg.ranks_per_node = 2;
  Rig rig = make_rig({0, 0}, core::SpbcConfig{}, cfg);
  core::SpbcProtocol* p = rig.protocol;
  rig.machine->launch([p](Rank& r) {
    noop_handlers(r);
    if (r.rank() == 0) {
      p->checkpoint_now(r);
      r.compute(1e-3);
    } else {
      // Never forces a checkpoint itself; its checkpoint opportunities
      // adopt the wave once rank 0's marker has arrived.
      for (int i = 0; i < 5 && !r.maybe_checkpoint(); ++i) r.compute(1e-4);
    }
  });
  ASSERT_TRUE(rig.machine->run().completed);
  EXPECT_EQ(p->checkpoints_taken(), 2u);
  EXPECT_EQ(p->committed_epoch(0), 1u);
}

// Deterministic repro of the stale-suppression wedge found in the MTBF
// storm: rank 0 rolls back and re-learns (via lastMessage) that rank 1
// holds seqs 1-2; rank 1 then rolls back to sigma_0 — losing them — while
// rank 0 is still BETWEEN its re-executed sends. Rank 1's Rollback carries
// an EMPTY window map; unless that clears rank 0's suppression for every
// stream toward rank 1, the upcoming seq-2 send is skipped as "already
// held", nothing ever delivers it (it was not yet re-logged when the
// Rollback was handled, so replay missed it too), and rank 1 waits forever.
TEST(CkptWave, EmptyRollbackResetsStaleSuppression) {
  MachineConfig cfg;
  cfg.ranks_per_node = 1;
  cfg.abort_on_deadlock = false;
  core::SpbcConfig scfg;  // no checkpoints: every rollback is to sigma_0
  std::map<int, uint64_t> got;
  Rig rig = make_rig({0, 1}, scfg, cfg);
  rig.machine->launch([&got](Rank& r) {
    noop_handlers(r);
    const mpi::Comm& w = r.world();
    if (r.rank() == 0) {
      r.send(1, 1, Payload::make_synthetic(64, 0xaa), w);
      r.compute(8e-3);
      r.send(1, 1, Payload::make_synthetic(64, 0xbb), w);
      r.compute(12e-3);
    } else {
      uint64_t a = r.recv(0, 1, w).hash;
      uint64_t b = r.recv(0, 1, w).hash;
      got[0] = a;
      got[1] = b;
    }
  });
  // Rank 0 falls after both sends (respawns at ~15ms; rank 1, still alive,
  // replies lastMessage base=2). Rank 1 falls at 16ms — after that reply,
  // but so that its empty Rollback re-announcement (~22ms) lands while rank
  // 0's re-execution still sits between its two sends (seq 2 goes out at
  // ~23ms, not yet re-logged at 22ms).
  rig.machine->inject_failure(9e-3, 0);
  rig.machine->inject_failure(16e-3, 1);
  mpi::RunResult res = rig.machine->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(got[0], 0xaau);
  EXPECT_EQ(got[1], 0xbbu);
  EXPECT_EQ(rig.protocol->rollbacks(), 2u);
}

}  // namespace
}  // namespace spbc

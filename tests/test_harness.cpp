// Tests: the experiment harness — protocol/cluster wiring, clustering-tool
// integration, measurement plumbing, and the noise model the benches rely on.

#include <gtest/gtest.h>

#include <set>

#include "harness/scenario.hpp"

namespace spbc {
namespace {

harness::ScenarioConfig small_cfg() {
  harness::ScenarioConfig cfg;
  cfg.app = "MiniGhost";
  cfg.nranks = 16;
  cfg.ranks_per_node = 2;
  cfg.nclusters = 4;
  cfg.app_cfg.iters = 4;
  cfg.app_cfg.msg_scale = 0.02;
  cfg.app_cfg.compute_scale = 0.02;
  cfg.spbc.checkpoint_every = 2;
  cfg.use_clustering_tool = false;
  return cfg;
}

TEST(Harness, ProtocolNames) {
  EXPECT_STREQ(harness::protocol_name(harness::ProtocolKind::kNative), "MPICH");
  EXPECT_STREQ(harness::protocol_name(harness::ProtocolKind::kSpbc), "SPBC");
  EXPECT_STREQ(harness::protocol_name(harness::ProtocolKind::kHydee), "HydEE");
}

TEST(Harness, ClusterMapsByProtocol) {
  harness::ScenarioConfig cfg = small_cfg();
  cfg.protocol = harness::ProtocolKind::kNative;
  auto native = harness::compute_cluster_map(cfg);
  EXPECT_EQ(std::set<int>(native.begin(), native.end()).size(), 1u);

  cfg.protocol = harness::ProtocolKind::kGlobalCoordinated;
  auto global = harness::compute_cluster_map(cfg);
  EXPECT_EQ(std::set<int>(global.begin(), global.end()).size(), 1u);

  cfg.protocol = harness::ProtocolKind::kPureLogging;
  auto pure = harness::compute_cluster_map(cfg);
  EXPECT_EQ(std::set<int>(pure.begin(), pure.end()).size(), 16u);

  cfg.protocol = harness::ProtocolKind::kSpbc;
  auto spbc = harness::compute_cluster_map(cfg);
  EXPECT_EQ(std::set<int>(spbc.begin(), spbc.end()).size(), 4u);
}

TEST(Harness, ClusteringToolMapRespectsNodes) {
  harness::ScenarioConfig cfg = small_cfg();
  cfg.protocol = harness::ProtocolKind::kSpbc;
  cfg.use_clustering_tool = true;
  auto map = harness::compute_cluster_map(cfg);
  ASSERT_EQ(map.size(), 16u);
  for (int r = 0; r < 16; r += 2)
    EXPECT_EQ(map[static_cast<size_t>(r)], map[static_cast<size_t>(r) + 1])
        << "node pair " << r;
  EXPECT_EQ(std::set<int>(map.begin(), map.end()).size(), 4u);
}

TEST(Harness, LogRatesPopulated) {
  harness::ScenarioConfig cfg = small_cfg();
  cfg.protocol = harness::ProtocolKind::kSpbc;
  harness::ScenarioResult res = harness::run_failure_free(cfg);
  ASSERT_TRUE(res.run.completed);
  EXPECT_EQ(res.log_rate_mb_s.size(), 16u);
  EXPECT_GT(res.max_log_rate_mb_s, 0.0);
  EXPECT_GE(res.max_log_rate_mb_s, res.avg_log_rate_mb_s);
  EXPECT_GT(res.checkpoints, 0u);
}

TEST(Harness, NativeRunsLogNothing) {
  harness::ScenarioConfig cfg = small_cfg();
  cfg.protocol = harness::ProtocolKind::kNative;
  harness::ScenarioResult res = harness::run_failure_free(cfg);
  ASSERT_TRUE(res.run.completed);
  EXPECT_EQ(res.profile.bytes_logged, 0u);
  EXPECT_DOUBLE_EQ(res.max_log_rate_mb_s, 0.0);
}

TEST(Harness, NormalizedReworkZeroWithoutRecovery) {
  harness::ScenarioConfig cfg = small_cfg();
  cfg.protocol = harness::ProtocolKind::kSpbc;
  harness::ScenarioResult res = harness::run_failure_free(cfg);
  EXPECT_DOUBLE_EQ(res.normalized_rework(), 0.0);
}

TEST(Harness, RunWithFailureProducesRecovery) {
  harness::ScenarioConfig cfg = small_cfg();
  cfg.protocol = harness::ProtocolKind::kSpbc;
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);
  harness::ScenarioResult rec = harness::run_with_failure(cfg, ff.elapsed, 0.5);
  ASSERT_TRUE(rec.run.completed);
  ASSERT_EQ(rec.recoveries.size(), 1u);
  EXPECT_GT(rec.normalized_rework(), 0.0);
  EXPECT_GE(rec.elapsed, ff.elapsed);  // a failure never speeds the run up
}

TEST(Harness, NoiseIsDeterministicPerSeed) {
  harness::ScenarioConfig cfg = small_cfg();
  cfg.protocol = harness::ProtocolKind::kNative;
  cfg.machine.compute_noise_frac = 0.1;
  cfg.machine.seed = 42;
  harness::ScenarioResult a = harness::run_failure_free(cfg);
  harness::ScenarioResult b = harness::run_failure_free(cfg);
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
  cfg.machine.seed = 43;
  harness::ScenarioResult c = harness::run_failure_free(cfg);
  EXPECT_NE(a.elapsed, c.elapsed);
}

TEST(Harness, NoiseLengthensRuns) {
  harness::ScenarioConfig cfg = small_cfg();
  cfg.protocol = harness::ProtocolKind::kNative;
  cfg.machine.compute_noise_frac = 0.0;
  harness::ScenarioResult quiet = harness::run_failure_free(cfg);
  cfg.machine.compute_noise_frac = 0.2;
  harness::ScenarioResult noisy = harness::run_failure_free(cfg);
  EXPECT_GT(noisy.elapsed, quiet.elapsed);
}

TEST(Harness, RecoveryEquivalenceHoldsUnderNoise) {
  harness::ScenarioConfig cfg = small_cfg();
  cfg.protocol = harness::ProtocolKind::kSpbc;
  cfg.app_cfg.validate = true;
  cfg.machine.abort_on_deadlock = false;
  cfg.machine.compute_noise_frac = 0.15;
  cfg.machine.net.jitter_frac = 0.3;
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);
  harness::ScenarioResult rec = harness::run_with_failure(cfg, ff.elapsed, 0.6);
  ASSERT_TRUE(rec.run.completed);
  EXPECT_EQ(rec.checksums, ff.checksums);
}

}  // namespace
}  // namespace spbc

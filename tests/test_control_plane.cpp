// Self-tuning reliability control plane (core/control_plane.hpp): the
// sliding-window failure-rate estimator, the generalized Young/Daly interval
// planner, escalation hysteresis, and the integrated behavior — adaptive
// checkpoint pacing, background scrub repair, bit-identical trajectories
// across engine shard/thread layouts.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/control_plane.hpp"
#include "core/spbc.hpp"
#include "harness/scenario.hpp"
#include "mpi/machine.hpp"
#include "util/rng.hpp"

namespace spbc {
namespace {

// ---------------------------------------------------------------------------
// RateEstimator
// ---------------------------------------------------------------------------

TEST(RateEstimator, ReportsPriorUntilMinSamples) {
  core::RateEstimator est(/*window=*/8, /*min_samples=*/3, /*prior=*/42.0);
  EXPECT_DOUBLE_EQ(est.mtbf(), 42.0);
  est.note_event(5.0);
  EXPECT_DOUBLE_EQ(est.mtbf(), 42.0);
  est.note_event(10.0);
  EXPECT_DOUBLE_EQ(est.mtbf(), 42.0);
  est.note_event(15.0);  // third gap: the observed rate takes over
  EXPECT_DOUBLE_EQ(est.mtbf(), 5.0);
}

TEST(RateEstimator, ConstantGapsConvergeExactly) {
  core::RateEstimator est(/*window=*/16, /*min_samples=*/2, /*prior=*/100.0);
  double t = 0;
  for (int i = 0; i < 40; ++i) est.note_event(t += 7.5);
  EXPECT_DOUBLE_EQ(est.mtbf(), 7.5);
  EXPECT_EQ(est.samples(), 16);  // window bounded
}

TEST(RateEstimator, StepChangeReconvergesWithinWindowEvents) {
  // A step in the true rate must be fully absorbed after `window` further
  // events — the bounded re-convergence the control plane relies on.
  const int kWindow = 8;
  core::RateEstimator est(kWindow, /*min_samples=*/2, /*prior=*/1.0);
  double t = 0;
  for (int i = 0; i < 20; ++i) est.note_event(t += 10.0);
  EXPECT_DOUBLE_EQ(est.mtbf(), 10.0);
  // MTBF collapses 10 -> 1. Strictly monotone convergence toward the new
  // rate, and exact after kWindow events.
  double prev = est.mtbf();
  for (int i = 0; i < kWindow; ++i) {
    est.note_event(t += 1.0);
    EXPECT_LT(est.mtbf(), prev);
    prev = est.mtbf();
  }
  EXPECT_DOUBLE_EQ(est.mtbf(), 1.0);
}

// ---------------------------------------------------------------------------
// Interval planner: generalized Young/Daly against the storage cost model
// ---------------------------------------------------------------------------

core::ControlPlaneConfig enabled_config() {
  core::ControlPlaneConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(ControlPlane, StaticMtbfConvergesToClosedFormYoungDaly) {
  // Exponential inter-failure times at a fixed true MTBF, fixed seed: the
  // computed LOCAL interval must land within 10% of the closed-form optimum
  // sqrt(2 * C * MTBF) for the true rate.
  const double kTrueMtbf = 5.0;
  core::ControlPlaneConfig cfg = enabled_config();
  cfg.window = 64;
  cfg.snapshot_bytes_hint = 1 << 20;
  ckpt::StorageCostModel model;
  core::ControlPlane cp(cfg, model);

  util::Pcg32 rng(123, 456);
  double t = 0;
  for (int i = 0; i < 256; ++i) {
    const double u = (rng.next_u32() + 0.5) / 4294967296.0;  // uniform (0,1)
    t += -kTrueMtbf * std::log(1.0 - u);
    cp.note_failure(t, /*storage_lost=*/true, /*node=*/i % 7);
  }
  const double c =
      model.write_time(ckpt::StorageLevel::kLocal, cfg.snapshot_bytes_hint);
  const double closed_form = std::sqrt(2.0 * c * kTrueMtbf);
  EXPECT_NEAR(cp.local_interval(), closed_form, 0.10 * closed_form);

  // Constant gaps converge exactly (the estimator mean is the gap itself).
  core::ControlPlane exact(cfg, model);
  t = 0;
  for (int i = 0; i < 80; ++i)
    exact.note_failure(t += kTrueMtbf, true, i % 7);
  EXPECT_DOUBLE_EQ(exact.local_interval(), closed_form);
}

TEST(ControlPlane, StepChangeRetunesTheIntervalWithinWindow) {
  core::ControlPlaneConfig cfg = enabled_config();
  cfg.window = 8;
  ckpt::StorageCostModel model;
  core::ControlPlane cp(cfg, model);
  double t = 0;
  for (int i = 0; i < 20; ++i) cp.note_failure(t += 20.0, true, i % 5);
  const double before = cp.local_interval();
  for (int i = 0; i < cfg.window; ++i) cp.note_failure(t += 0.2, true, i % 5);
  const double c =
      model.write_time(ckpt::StorageLevel::kLocal, cfg.snapshot_bytes_hint);
  // Fully re-converged: the interval is the closed form for the NEW rate
  // (tolerance only for the accumulated-sum rounding of the gap times).
  const double target = std::max(std::sqrt(2.0 * c * 0.2), cfg.min_interval);
  EXPECT_NEAR(cp.local_interval(), target, 1e-9 * target);
  EXPECT_LT(cp.local_interval(), before);
}

TEST(ControlPlane, StridesOrderByLevelCostAndPlanHonorsThem) {
  core::ControlPlaneConfig cfg = enabled_config();
  ckpt::StorageCostModel model;
  core::ControlPlane cp(cfg, model);

  const uint64_t red = cp.redundancy_stride();
  const uint64_t pfs = cp.pfs_stride();
  EXPECT_GE(red, 1u);
  EXPECT_GE(pfs, 1u);
  EXPECT_LE(pfs, cfg.max_level_stride);
  // PFS writes are far costlier and double losses far rarer than single
  // node losses under the default model/priors, so the PFS stride must not
  // be shorter than the redundancy stride.
  EXPECT_GE(pfs, red);

  for (uint64_t e = 1; e <= 2 * pfs + 1; ++e) {
    const ckpt::LevelPlan plan = cp.plan_for_epoch(e);
    EXPECT_EQ(plan.redundancy, e % red == 0) << "epoch " << e;
    EXPECT_EQ(plan.pfs, e % pfs == 0) << "epoch " << e;
  }

  // Disabled controller: full-depth plans, static behavior untouched.
  core::ControlPlane off(core::ControlPlaneConfig{}, model);
  const ckpt::LevelPlan full = off.plan_for_epoch(3);
  EXPECT_TRUE(full.redundancy);
  EXPECT_TRUE(full.pfs);
}

TEST(ControlPlane, RarerDoubleLossesStretchThePfsStride) {
  ckpt::StorageCostModel model;
  core::ControlPlaneConfig often = enabled_config();
  often.prior_double_mtbf = 50.0;
  core::ControlPlaneConfig rare = enabled_config();
  rare.prior_double_mtbf = 5000.0;
  core::ControlPlane cp_often(often, model);
  core::ControlPlane cp_rare(rare, model);
  EXPECT_GE(cp_rare.pfs_stride(), cp_often.pfs_stride());
  EXPECT_GT(cp_rare.pfs_stride(), 1u);
}

// ---------------------------------------------------------------------------
// Escalation hysteresis (pure policy; no staging area attached)
// ---------------------------------------------------------------------------

TEST(ControlPlane, EscalatesOnCorrelatedDoublesAndCalmsDown) {
  core::ControlPlaneConfig cfg = enabled_config();
  cfg.escalation = true;
  cfg.escalate_after = 2;
  cfg.correlation_window = 0.05;
  cfg.calm_period = 5.0;
  core::ControlPlane cp(cfg, ckpt::StorageCostModel{});

  // Pair 1: two storage losses on distinct nodes within the window.
  cp.note_failure(10.0, true, /*node=*/1);
  cp.note_failure(10.02, true, /*node=*/2);
  EXPECT_EQ(cp.stats().double_losses, 1u);
  EXPECT_FALSE(cp.escalated());

  // Same node twice is NOT a correlated double (one platform event).
  cp.note_failure(20.0, true, 3);
  cp.note_failure(20.01, true, 3);
  EXPECT_EQ(cp.stats().double_losses, 1u);

  // Outside the window: no double either.
  cp.note_failure(30.0, true, 4);
  cp.note_failure(30.2, true, 5);
  EXPECT_EQ(cp.stats().double_losses, 1u);

  // Process-only failures never count toward storage-loss pairing.
  cp.note_failure(40.0, false, 6);
  cp.note_failure(40.01, false, 7);
  EXPECT_EQ(cp.stats().double_losses, 1u);

  // Pair 2 crosses the threshold: escalate.
  cp.note_failure(50.0, true, 1);
  cp.note_failure(50.03, true, 2);
  EXPECT_EQ(cp.stats().double_losses, 2u);
  EXPECT_TRUE(cp.escalated());
  EXPECT_EQ(cp.stats().escalations, 1u);

  // Still inside the calm period: stays escalated.
  cp.on_tick(54.0);
  EXPECT_TRUE(cp.escalated());
  // Calm period with no further double loss: de-escalate.
  cp.on_tick(55.1);
  EXPECT_FALSE(cp.escalated());
  EXPECT_EQ(cp.stats().deescalations, 1u);
}

// ---------------------------------------------------------------------------
// Integration: adaptive pacing, scrub repair, shard/thread determinism
// ---------------------------------------------------------------------------

harness::ScenarioConfig controller_scenario() {
  harness::ScenarioConfig cfg;
  cfg.app = "MiniGhost";
  cfg.nranks = 16;
  cfg.ranks_per_node = 2;
  cfg.nclusters = 4;
  cfg.use_clustering_tool = false;  // block partition: deterministic, cheap
  cfg.app_cfg.iters = 10;
  cfg.app_cfg.msg_scale = 0.05;
  cfg.app_cfg.compute_scale = 0.2;
  cfg.app_cfg.validate = false;
  cfg.machine.seed = 7;
  cfg.machine.net.jitter_frac = 0.0;
  cfg.machine.compute_noise_frac = 0.05;
  cfg.spbc.storage = ckpt::StorageLevel::kPfs;
  cfg.spbc.async_staging = true;
  cfg.spbc.redundancy.kind = ckpt::SchemeKind::kXorGroup;
  cfg.spbc.redundancy.group_size = 4;
  // A lagging PFS: flushes crawl, so scrub repairs (which only run while an
  // epoch is short of the PFS) actually happen.
  cfg.spbc.storage_model.pfs_bw = 2.0e4;
  cfg.spbc.control.enabled = true;
  // Priors scaled to the run's sub-second virtual length: many LOCAL epochs,
  // a redundancy hop every epoch (the storage prior pushes T_red below
  // T_local, clamping the stride to 1 so fragments exist to scrub), PFS
  // flushes rare.
  cfg.spbc.control.prior_mtbf = 0.02;
  cfg.spbc.control.prior_storage_mtbf = 0.005;
  cfg.spbc.control.scrub_period = 0.004;
  return cfg;
}

TEST(ControlPlaneScenario, AdaptivePacingCheckpointsWithoutStaticSchedule) {
  harness::ScenarioConfig cfg = controller_scenario();
  cfg.spbc.checkpoint_every = 0;  // no static schedule at all
  harness::ScenarioResult res = harness::run_failure_free(cfg);
  ASSERT_TRUE(res.run.completed);
  // The time-based trigger alone must have cut epochs.
  EXPECT_GT(res.checkpoints, 0u);
  EXPECT_GT(res.control.replans, 0u);
  EXPECT_GT(res.staging.scrub_waves, 0u);
}

TEST(ControlPlaneScenario, ScrubDetectsAndRepairsInjectedSilentLosses) {
  harness::ScenarioConfig cfg = controller_scenario();
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);
  const sim::Time t0 = ff.elapsed;

  cfg.silent_losses = {{t0 * 0.45, 0x1111}, {t0 * 0.55, 0x2222}};
  harness::ScenarioResult res = harness::run_failure_free(cfg);
  ASSERT_TRUE(res.run.completed);
  EXPECT_EQ(res.silent_losses_injected, 2u);
  EXPECT_EQ(res.scrubs_detected, 2u);
  EXPECT_EQ(res.scrubs_repaired, 2u);
  // Every silent loss was found before the run ended: no fragment is still
  // believed live while its bytes are gone.
  EXPECT_EQ(res.corrupt_live_fragments, 0u);
}

TEST(ControlPlaneScenario, EstimatorSeparatesProcessOnlyFromNodeLoss) {
  harness::ScenarioConfig cfg = controller_scenario();
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);
  const sim::Time t0 = ff.elapsed;

  cfg.inject_failure = true;
  cfg.failure_at = t0 * 0.4;
  cfg.victim_rank = 3;
  cfg.process_only_failures = {{t0 * 0.6, 9}};
  harness::ScenarioResult res = harness::run_scenario(cfg);
  ASSERT_TRUE(res.run.completed);
  EXPECT_EQ(res.control.failures, 2u);
  EXPECT_EQ(res.control.storage_losses, 1u);  // the process-only one spared
  EXPECT_EQ(res.recoveries.size(), 2u);
}

struct ShardOut {
  bool completed = false;
  sim::Time finish = 0;
  uint64_t checkpoints = 0;
  uint64_t failures = 0;
  uint64_t replans = 0;
  double local_interval = 0;
};

// Machine-level run (no harness) so the engine shard plan can vary. LOCAL-
// only redundancy keeps every bandwidth-queue reservation shard-owned, the
// precondition of the threaded executor's exact-determinism claim
// (DESIGN.md §12) — the controller's time-based trigger, estimator feed and
// snapshot-size publication are exactly what is under test.
ShardOut controller_run(int engine_shards, int engine_threads,
                        const std::vector<std::pair<sim::Time, int>>& fails) {
  const int nranks = 32, ppn = 2, nclusters = 8;
  mpi::MachineConfig mc;
  mc.nranks = nranks;
  mc.ranks_per_node = ppn;
  mc.seed = 7;
  mc.compute_noise_frac = 0.05;
  mc.net.jitter_frac = 0.0;
  mc.engine_shards = engine_shards;
  mc.engine_threads = engine_threads;

  core::SpbcConfig sc;
  sc.storage = ckpt::StorageLevel::kLocal;
  sc.async_staging = true;
  sc.redundancy.kind = ckpt::SchemeKind::kSingle;
  sc.control.enabled = true;
  sc.control.prior_mtbf = 0.2;
  auto proto = std::make_unique<core::SpbcProtocol>(sc);
  core::SpbcProtocol* p = proto.get();
  mpi::Machine m(mc, std::move(proto));

  const int nodes = nranks / ppn;
  std::vector<int> cmap(nranks);
  for (int r = 0; r < nranks; ++r) cmap[r] = (r / ppn) * nclusters / nodes;
  m.set_cluster_of(cmap);

  const apps::AppInfo& info = apps::find_app("MiniGhost");
  apps::AppConfig ac;
  ac.iters = 6;
  ac.msg_scale = 0.05;
  ac.compute_scale = 0.05;
  ac.validate = false;
  m.launch([&info, ac](mpi::Rank& r) { info.main(r, ac); });
  for (const auto& [t, victim] : fails) m.inject_failure(t, victim);

  mpi::RunResult res = m.run();
  ShardOut out;
  out.completed = res.completed;
  out.finish = res.finish_time;
  out.checkpoints = p->checkpoints_taken();
  const core::ControlPlaneStats st = p->control_plane().stats();
  out.failures = st.failures;
  out.replans = st.replans;
  out.local_interval = st.local_interval;
  return out;
}

TEST(ControlPlaneScenario, BitIdenticalAcrossShardAndThreadLayouts) {
  ShardOut ff = controller_run(1, 1, {});
  ASSERT_TRUE(ff.completed);
  const std::vector<std::pair<sim::Time, int>> fails = {
      {ff.finish * 0.35, 3}, {ff.finish * 0.6, 21}};

  ShardOut ref = controller_run(1, 1, fails);
  ASSERT_TRUE(ref.completed);
  EXPECT_EQ(ref.failures, 2u);

  struct Plan {
    int shards, threads;
    const char* name;
  };
  const std::vector<Plan> plans = {{2, 1, "shards=2"},
                                   {8, 1, "shards=8"},
                                   {0, 1, "shards=per-cluster"},
                                   {8, 4, "shards=8,threads=4"}};
  for (const Plan& pl : plans) {
    ShardOut got = controller_run(pl.shards, pl.threads, fails);
    ASSERT_TRUE(got.completed) << pl.name;
    // Bit-identical trajectory: same adaptive cut times, same estimator
    // feed, same final interval — to the last bit, not approximately.
    EXPECT_EQ(got.finish, ref.finish) << pl.name;
    EXPECT_EQ(got.checkpoints, ref.checkpoints) << pl.name;
    EXPECT_EQ(got.failures, ref.failures) << pl.name;
    EXPECT_EQ(got.replans, ref.replans) << pl.name;
    EXPECT_EQ(got.local_interval, ref.local_interval) << pl.name;
  }
}

}  // namespace
}  // namespace spbc

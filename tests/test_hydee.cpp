// Tests: HydEE baseline — recovery correctness and the cost of its
// centralized coordination relative to SPBC (Section 6.5).

#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace spbc {
namespace {

harness::ScenarioConfig nas_config(const std::string& app) {
  harness::ScenarioConfig cfg;
  cfg.app = app;
  cfg.nranks = 16;
  cfg.ranks_per_node = 2;
  cfg.nclusters = 4;
  cfg.app_cfg.iters = 6;
  cfg.app_cfg.validate = true;
  cfg.app_cfg.msg_scale = 0.02;
  cfg.app_cfg.compute_scale = 0.02;
  cfg.spbc.checkpoint_every = 2;
  cfg.machine.abort_on_deadlock = false;
  cfg.use_clustering_tool = false;
  return cfg;
}

TEST(Hydee, RecoveryProducesCorrectResults) {
  harness::ScenarioConfig cfg = nas_config("LU");
  cfg.protocol = harness::ProtocolKind::kSpbc;
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);
  cfg.protocol = harness::ProtocolKind::kHydee;
  harness::ScenarioResult rec = harness::run_with_failure(cfg, ff.elapsed, 0.55);
  ASSERT_TRUE(rec.run.completed) << "deadlocked=" << rec.run.deadlocked;
  EXPECT_EQ(rec.checksums, ff.checksums);
  ASSERT_FALSE(rec.recoveries.empty());
  EXPECT_TRUE(rec.recoveries.front().complete());
}

TEST(Hydee, CoordinatorGrantsEveryReplayedMessage) {
  harness::ScenarioConfig cfg = nas_config("BT");
  cfg.protocol = harness::ProtocolKind::kHydee;
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);

  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  baselines::HydeeConfig hcfg;
  hcfg.base = cfg.spbc;
  auto proto = std::make_unique<baselines::HydeeProtocol>(hcfg);
  baselines::HydeeProtocol* p = proto.get();
  mpi::Machine machine(mc, std::move(proto));
  machine.set_cluster_of(harness::compute_cluster_map(cfg));
  const apps::AppInfo& info = apps::find_app(cfg.app);
  apps::AppConfig acfg = cfg.app_cfg;
  acfg.validate = false;
  machine.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });
  machine.inject_failure(ff.elapsed * 0.55, 0);
  EXPECT_TRUE(machine.run().completed);
  uint64_t replayed = 0;
  for (int r = 0; r < cfg.nranks; ++r) replayed += p->replayer_of(r).replayed_total();
  EXPECT_GT(replayed, 0u);
  EXPECT_EQ(p->grants_issued(), replayed);
}

TEST(Hydee, RecoveryIsSlowerThanSpbc) {
  // The headline of Section 6.5: SPBC's distributed, channel-local recovery
  // beats HydEE's coordinator-serialized replay. Use LU (many small logged
  // messages) and a coordinator with realistic latency.
  harness::ScenarioConfig cfg = nas_config("LU");
  cfg.app_cfg.validate = false;

  cfg.protocol = harness::ProtocolKind::kSpbc;
  harness::ScenarioResult ff = harness::run_failure_free(cfg);
  ASSERT_TRUE(ff.run.completed);
  harness::ScenarioResult spbc = harness::run_with_failure(cfg, ff.elapsed, 0.55);
  ASSERT_TRUE(spbc.run.completed);
  ASSERT_FALSE(spbc.recoveries.empty());

  cfg.protocol = harness::ProtocolKind::kHydee;
  harness::ScenarioResult hyd = harness::run_with_failure(cfg, ff.elapsed, 0.55);
  ASSERT_TRUE(hyd.run.completed);
  ASSERT_FALSE(hyd.recoveries.empty());

  EXPECT_GT(hyd.recoveries.front().rework(), spbc.recoveries.front().rework());
}

TEST(Hydee, NoPatternIdMatching) {
  baselines::HydeeConfig hcfg;
  baselines::HydeeProtocol p(hcfg);
  EXPECT_FALSE(p.pattern_matching_enabled());
}

}  // namespace
}  // namespace spbc

// Sharded-engine properties: fixed-seed trajectories must be bit-identical
// for every execution configuration (key shards stamp the (time, shard, seq)
// ordering key; exec shards and worker threads never appear in it), killed
// fibers must release their pooled stacks, cross-shard kill/unpark races at
// the same virtual time must resolve by the same key tie-break as the legacy
// single-queue engine, and the event queue's lazy cancellation must stay
// bounded by compaction.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/spbc.hpp"
#include "harness/scenario.hpp"
#include "mpi/machine.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "trace/determinism.hpp"

namespace spbc {
namespace {

// ---- satellite: determinism across shard counts ---------------------------
//
// An ablation_mtbf-style run: SPBC protocol, injected failures, recoveries,
// staged checkpoints. jitter_frac = 0 so the shards=1 run (which draws
// jitter from the legacy Pcg32 stream) and sharded runs (counter-hash
// jitter) see the same network; compute noise stays on (per-rank RNG,
// engine-independent).

struct MtbfOut {
  bool completed = false;
  sim::Time finish = 0;
  std::map<mpi::ChannelKey, std::vector<uint64_t>> trace;
  size_t recoveries = 0;
  uint64_t snapshots = 0;
};

MtbfOut mtbf_run(int engine_shards, int engine_threads,
                 const std::vector<std::pair<sim::Time, int>>& failures,
                 bool scalable_ctrl = false) {
  const int nranks = 32, ppn = 2, nclusters = 8;
  mpi::MachineConfig mc;
  mc.nranks = nranks;
  mc.ranks_per_node = ppn;
  mc.seed = 7;
  mc.record_send_trace = true;
  mc.compute_noise_frac = 0.05;
  mc.net.jitter_frac = 0.0;
  mc.engine_shards = engine_shards;
  mc.engine_threads = engine_threads;
  // Scalable control plane (leader-aggregated rollback announces + binomial
  // tree wave markers). Changes which control messages exist, so its runs
  // are only comparable against a reference with the same flags.
  mc.aggregate_rollbacks = scalable_ctrl;
  mc.tree_ckpt_markers = scalable_ctrl;

  core::SpbcConfig sc;
  sc.checkpoint_every = 2;
  // LOCAL-only staging: partner/XOR placement reserves the *host* node's
  // bandwidth queue from the owning rank's shard, and under the threaded
  // executor the CAS order of same-window cross-shard reservations is not
  // pinned (DESIGN.md §12). The engine-determinism claim tested here is
  // exact for shard-owned queues, so keep every reservation node-local.
  sc.redundancy.kind = ckpt::SchemeKind::kSingle;
  auto proto = std::make_unique<core::SpbcProtocol>(sc);
  core::SpbcProtocol* p = proto.get();
  mpi::Machine m(mc, std::move(proto));

  // Block cluster map, one cluster per pair of nodes (node-colocated, as the
  // threaded executor requires).
  const int nodes = nranks / ppn;
  std::vector<int> cmap(nranks);
  for (int r = 0; r < nranks; ++r) cmap[r] = (r / ppn) * nclusters / nodes;
  m.set_cluster_of(cmap);

  const apps::AppInfo& info = apps::find_app("MiniGhost");
  apps::AppConfig ac;
  ac.iters = 6;
  ac.msg_scale = 0.05;
  ac.compute_scale = 0.05;
  ac.validate = false;
  m.launch([&info, ac](mpi::Rank& r) { info.main(r, ac); });
  for (const auto& [t, victim] : failures) m.inject_failure(t, victim);

  mpi::RunResult res = m.run();
  MtbfOut out;
  out.completed = res.completed;
  out.finish = res.finish_time;
  out.trace = m.send_trace();
  out.recoveries = m.recoveries().size();
  out.snapshots = p->store().snapshots_taken();
  return out;
}

TEST(ShardDeterminism, MtbfScenarioBitIdenticalAcrossShardPlans) {
  // Failure times as fractions of the failure-free span so both recoveries
  // actually interrupt the run.
  MtbfOut ff = mtbf_run(1, 1, {});
  ASSERT_TRUE(ff.completed);
  const std::vector<std::pair<sim::Time, int>> failures = {
      {ff.finish * 0.35, 3}, {ff.finish * 0.6, 21}};

  MtbfOut ref = mtbf_run(1, 1, failures);
  ASSERT_TRUE(ref.completed);
  EXPECT_EQ(ref.recoveries, 2u);

  struct Plan {
    int shards, threads;
    const char* name;
  };
  const std::vector<Plan> plans = {{2, 1, "shards=2"},
                                   {8, 1, "shards=8"},
                                   {0, 1, "shards=per-cluster"},
                                   {8, 4, "shards=8,threads=4"}};
  for (const Plan& pl : plans) {
    MtbfOut got = mtbf_run(pl.shards, pl.threads, failures);
    ASSERT_TRUE(got.completed) << pl.name;
    // Bit-identical, not approximately equal: same ordering keys => same
    // trajectory, including the recovery path.
    EXPECT_EQ(got.finish, ref.finish) << pl.name;
    EXPECT_EQ(got.recoveries, ref.recoveries) << pl.name;
    EXPECT_EQ(got.snapshots, ref.snapshots) << pl.name;
    trace::DeterminismReport rep =
        trace::compare_send_traces(ref.trace, got.trace);
    EXPECT_TRUE(rep.equal) << pl.name << ": " << rep.detail;
    EXPECT_GT(rep.events_compared, 0u) << pl.name;
  }
}

// The scalable control plane (aggregate_rollbacks + tree_ckpt_markers)
// reroutes recovery announces through the cluster leader and wave markers
// through the completion tree. Those are different messages with different
// timings than the pairwise plane, so determinism is asserted within the
// flagged world: shards=1 with flags on is the reference, and every shard
// plan must reproduce it bit-exactly — recoveries included.
TEST(ShardDeterminism, MtbfScenarioBitIdenticalWithScalableControlPlane) {
  MtbfOut ff = mtbf_run(1, 1, {}, /*scalable_ctrl=*/true);
  ASSERT_TRUE(ff.completed);
  const std::vector<std::pair<sim::Time, int>> failures = {
      {ff.finish * 0.35, 3}, {ff.finish * 0.6, 21}};

  MtbfOut ref = mtbf_run(1, 1, failures, /*scalable_ctrl=*/true);
  ASSERT_TRUE(ref.completed);
  EXPECT_EQ(ref.recoveries, 2u);

  struct Plan {
    int shards, threads;
    const char* name;
  };
  const std::vector<Plan> plans = {{2, 1, "shards=2"},
                                   {8, 1, "shards=8"},
                                   {0, 1, "shards=per-cluster"},
                                   {8, 4, "shards=8,threads=4"}};
  for (const Plan& pl : plans) {
    MtbfOut got = mtbf_run(pl.shards, pl.threads, failures,
                           /*scalable_ctrl=*/true);
    ASSERT_TRUE(got.completed) << pl.name;
    EXPECT_EQ(got.finish, ref.finish) << pl.name;
    EXPECT_EQ(got.recoveries, ref.recoveries) << pl.name;
    EXPECT_EQ(got.snapshots, ref.snapshots) << pl.name;
    trace::DeterminismReport rep =
        trace::compare_send_traces(ref.trace, got.trace);
    EXPECT_TRUE(rep.equal) << pl.name << ": " << rep.detail;
    EXPECT_GT(rep.events_compared, 0u) << pl.name;
  }
}

// ---- satellite: cross-shard kill/unpark race ------------------------------
//
// A rank parked on shard 1 has its wake event queued on that shard while a
// serial kill (failure injection path) lands at the SAME virtual time. The
// (time, shard, seq) tie-break must resolve the race identically in every
// execution configuration — including the legacy single-queue engine, where
// at_serial degrades to an ordinary event and at_on clamps to shard 0, but
// both draw from the same per-origin seq counter, preserving the order.

std::vector<std::string> race_run(int key_shards, int exec_shards, int threads,
                                  bool wake_scheduled_first) {
  sim::Engine eng;
  eng.set_shard_plan(key_shards, exec_shards);
  eng.set_lookahead(sim::usec(1.0));
  if (threads > 1) eng.set_threads(threads);

  std::mutex mu;
  std::vector<std::string> log;
  auto note = [&mu, &log](std::string s) {
    std::lock_guard<std::mutex> g(mu);
    log.push_back(std::move(s));
  };

  const int shard_b = key_shards > 1 ? 1 : 0;
  sim::Engine::TaskId b = eng.spawn_on(shard_b, [&eng, &note] {
    note("B:parked");
    eng.park();  // killed fibers unwind with FiberKilled at their next wake
    note("B:woke");
    eng.wait(sim::usec(50.0));
    note("B:survived");
  });

  const sim::Time T = sim::usec(100.0);
  auto wake = [&eng, &note, b, shard_b, T] {
    eng.at_on(shard_b, T, [&eng, &note, b] {
      note("wake-event");
      eng.unpark(b);
    });
  };
  auto kill = [&eng, &note, b, T] {
    eng.at_serial(T, [&eng, &note, b] {
      note("kill-event");
      eng.kill(b);
    });
  };
  if (wake_scheduled_first) {
    wake();
    kill();
  } else {
    kill();
    wake();
  }
  eng.run();
  {
    std::lock_guard<std::mutex> g(mu);
    log.push_back(eng.task_finished(b) ? "B:finished" : "B:alive");
  }
  return log;
}

TEST(ShardDeterminism, CrossShardKillUnparkTieBreak) {
  for (bool wake_first : {true, false}) {
    // Legacy single-queue engine defines the expected resolution.
    const std::vector<std::string> ref = race_run(1, 1, 1, wake_first);
    struct Plan {
      int key, exec, threads;
    };
    const std::vector<Plan> plans = {{2, 1, 1}, {2, 2, 1}, {2, 2, 2}};
    for (const Plan& pl : plans) {
      const std::vector<std::string> got =
          race_run(pl.key, pl.exec, pl.threads, wake_first);
      EXPECT_EQ(got, ref) << "key=" << pl.key << " exec=" << pl.exec
                          << " threads=" << pl.threads
                          << " wake_first=" << wake_first;
    }
    // Whatever the resolution, the task must be gone at the end (killed, or
    // woken then killed at its next wait).
    EXPECT_EQ(ref.back(), "B:finished") << "wake_first=" << wake_first;
  }
}

// ---- satellite: finished fibers release pooled stacks ---------------------

TEST(EngineShard, FinishedFibersReleaseStacksToPool) {
  sim::Engine eng;
  // 50 short-lived fibers staggered so at most a couple are ever live; the
  // pool must recycle stacks instead of holding all 50.
  for (int i = 0; i < 50; ++i) {
    eng.at(sim::usec(10.0) * i, [&eng] {
      eng.spawn([&eng] { eng.wait(sim::usec(2.0)); });
    });
  }
  eng.run();
  const sim::Engine::Stats st = eng.stats();
  EXPECT_EQ(st.live_stacks, 0u);
  EXPECT_LE(st.peak_live_stacks, 2u);
  EXPECT_LE(st.stacks_allocated, 2u);
  EXPECT_GE(st.stacks_allocated, 1u);
}

TEST(EngineShard, KilledFibersReleaseStacksToPool) {
  sim::Engine eng;
  std::vector<sim::Engine::TaskId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(eng.spawn([&eng] {
      while (true) eng.wait(sim::usec(5.0));
    }));
  eng.at(sim::usec(17.0), [&eng, &ids] {
    for (sim::Engine::TaskId id : ids) eng.kill(id);
  });
  eng.run();
  const sim::Engine::Stats st = eng.stats();
  EXPECT_EQ(st.live_stacks, 0u);
  EXPECT_EQ(st.peak_live_stacks, 8u);
}

// ---- satellite: lazy-cancellation compaction bounds the heap --------------

TEST(EventQueueCompaction, CancelStormKeepsHeapNearLiveCount) {
  sim::EventQueue q;
  // 99% of scheduled events are cancelled immediately. Without compaction
  // the heap would grow to ~10000 entries; with it, heap_size() stays within
  // a small factor of the live count at every step.
  for (int i = 0; i < 10000; ++i) {
    sim::EventQueue::EventId id =
        q.schedule(static_cast<sim::Time>(i), [] {});
    if (i % 100 != 0) q.cancel(id);
    ASSERT_LE(q.heap_size(), 2 * q.size() + 65)
        << "at i=" << i << " live=" << q.size();
  }
  EXPECT_EQ(q.size(), 100u);
  size_t ran = 0;
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn();
    ++ran;
  }
  EXPECT_EQ(ran, 100u);
}

}  // namespace
}  // namespace spbc

// Property tests: channel-determinism (Definition 2) of every shipped
// workload — identical per-channel send sequences under perturbed network
// jitter — plus the checker's own behaviour.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "trace/determinism.hpp"

namespace spbc {
namespace {

std::map<mpi::ChannelKey, std::vector<uint64_t>> trace_run(const std::string& app,
                                                           uint64_t jitter_seed) {
  harness::ScenarioConfig cfg;
  cfg.app = app;
  cfg.nranks = 16;
  cfg.ranks_per_node = 2;
  cfg.protocol = harness::ProtocolKind::kNative;
  cfg.app_cfg.iters = 4;
  cfg.app_cfg.msg_scale = 0.02;
  cfg.app_cfg.compute_scale = 0.02;
  cfg.machine.record_send_trace = true;
  cfg.machine.net.jitter_frac = 0.6;  // strong cross-channel reordering
  cfg.machine.net.jitter_seed = jitter_seed;
  cfg.use_clustering_tool = false;

  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  mpi::Machine machine(mc, baselines::make_native());
  machine.set_cluster_of(baselines::single_cluster_map(cfg.nranks));
  const apps::AppInfo& info = apps::find_app(app);
  apps::AppConfig app_cfg = cfg.app_cfg;
  machine.launch([&info, app_cfg](mpi::Rank& r) { info.main(r, app_cfg); });
  EXPECT_TRUE(machine.run().completed) << app;
  return machine.send_trace();
}

class ChannelDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(ChannelDeterminism, SendSequencesInvariantUnderJitter) {
  auto a = trace_run(GetParam(), 1);
  auto b = trace_run(GetParam(), 20250611);
  trace::DeterminismReport rep = trace::compare_send_traces(a, b);
  EXPECT_TRUE(rep.equal) << GetParam() << ": " << rep.detail;
  EXPECT_GT(rep.events_compared, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, ChannelDeterminism,
                         ::testing::Values("AMG", "CM1", "GTC", "MILC", "MiniFE",
                                           "MiniGhost", "BT", "LU", "MG", "SP"));

TEST(Checker, DetectsDivergence) {
  std::map<mpi::ChannelKey, std::vector<uint64_t>> a, b;
  mpi::ChannelKey k{0, 1, 0};
  a[k] = {1, 2, 3};
  b[k] = {1, 9, 3};
  trace::DeterminismReport rep = trace::compare_send_traces(a, b);
  EXPECT_FALSE(rep.equal);
  EXPECT_NE(rep.detail.find("send #2"), std::string::npos);
}

TEST(Checker, DetectsLengthMismatch) {
  std::map<mpi::ChannelKey, std::vector<uint64_t>> a, b;
  mpi::ChannelKey k{0, 1, 0};
  a[k] = {1, 2};
  b[k] = {1, 2, 3};
  EXPECT_FALSE(trace::compare_send_traces(a, b).equal);
}

TEST(Checker, DetectsMissingChannel) {
  std::map<mpi::ChannelKey, std::vector<uint64_t>> a, b;
  a[mpi::ChannelKey{0, 1, 0}] = {1};
  EXPECT_FALSE(trace::compare_send_traces(a, b).equal);
  EXPECT_FALSE(trace::compare_send_traces(b, a).equal);
}

TEST(Checker, EqualTracesPass) {
  std::map<mpi::ChannelKey, std::vector<uint64_t>> a;
  a[mpi::ChannelKey{0, 1, 0}] = {1, 2, 3};
  a[mpi::ChannelKey{1, 0, 0}] = {4};
  trace::DeterminismReport rep = trace::compare_send_traces(a, a);
  EXPECT_TRUE(rep.equal);
  EXPECT_EQ(rep.channels_compared, 2u);
  EXPECT_EQ(rep.events_compared, 4u);
}

// An intentionally NOT channel-deterministic app: message content depends on
// arrival order of ANY_SOURCE receptions. The checker must flag it.
TEST(Checker, CatchesNonDeterministicApp) {
  auto run = [](uint64_t seed) {
    mpi::MachineConfig mc;
    mc.nranks = 3;
    mc.ranks_per_node = 1;
    mc.record_send_trace = true;
    mc.net.jitter_frac = 0.9;
    mc.net.jitter_seed = seed;
    mpi::Machine machine(mc, baselines::make_native());
    machine.set_cluster_of({0, 0, 0});
    machine.launch([](mpi::Rank& r) {
      const mpi::Comm& w = r.world();
      if (r.rank() == 2) {
        // Forward whatever arrives first: content depends on arrival order.
        auto first = r.recv(mpi::kAnySource, 1, w);
        r.recv(mpi::kAnySource, 1, w);
        r.send(0, 2, mpi::Payload::make_synthetic(8, first.hash), w);
      } else {
        r.send(2, 1,
               mpi::Payload::make_synthetic(8, static_cast<uint64_t>(r.rank())), w);
        if (r.rank() == 0) r.recv(2, 2, w);
      }
    });
    EXPECT_TRUE(machine.run().completed);
    return machine.send_trace();
  };
  // Find two seeds that flip the arrival order; with 90% jitter this is
  // quick. (If every seed gave the same order the test would be vacuous, so
  // scan a few.)
  auto base = run(1);
  bool diverged = false;
  for (uint64_t seed = 2; seed < 12 && !diverged; ++seed) {
    diverged = !trace::compare_send_traces(base, run(seed)).equal;
  }
  EXPECT_TRUE(diverged) << "jitter never flipped ANY_SOURCE arrival order";
}

}  // namespace
}  // namespace spbc

#pragma once
// Scheme-agnostic randomized failure-matrix harness.
//
// The failure space of the redundancy layer — scheme x group shape x loss
// count x loss timing (pre-drain / mid-drain / mid-rebuild) x loss
// correlation (domain-correlated vs independent) x PFS frontier position —
// is far too large for hand-written cases. This harness samples a point of
// that space from a seed (fully reproducible: re-running the same seed
// replays the same case), drives a real sim::Engine + net::Network +
// ckpt::StagingArea through it, and asserts the invariants every scheme
// must share:
//
//   1. Plan consistency: `recoverable_without_pfs` true implies the restore
//      plan reads only the redundancy layer (LOCAL / remote copy /
//      rebuild); false implies the plan is the PFS or nothing.
//   2. Guaranteed tolerance: with losses settled and the in-group loss
//      count within the scheme's advertised distance (PARTNER: the buddy
//      survives; XOR: one; RS(k, m): any m), the victim MUST be
//      recoverable without the PFS, and executing the restore must succeed
//      without touching it.
//   3. Checksum identity: a restore served by the redundancy layer is
//      re-derived through a shadow codec — real GF(256) Cauchy solves for
//      RS, XOR folds, full copies for PARTNER — and must reproduce the
//      original snapshot exactly (Fnv1a64). The shadow models the full
//      data-reduction pipeline (DESIGN.md §15): its logical payloads come
//      from the shared block-mutation generator, what the wire carries is
//      the ENCODED blob (block delta for epoch 2 + LZ compression), and
//      checksum identity is asserted on the LOGICAL (decoded) payload, so a
//      codec or chain-decode defect fails the oracle even when the scheme's
//      arithmetic is right. The shadow works at a capped payload length;
//      the simulator's ceil(B/k) fragment sizes are its wire-cost
//      abstraction of the striped layout.
//   4. No false success: when the predicate is false and no PFS copy
//      exists, the executed restore must report failure (the caller's
//      epoch-fallback path), never invent data.
//   5. Re-protection: after an in-tolerance loss that killed fragment
//      hosts (but not the owner), the proactive re-encode must restore the
//      scheme's full liveness while the epoch is still short of the PFS.
//
// The gtest driver (test_failure_matrix.cpp) sweeps seeds; CI runs a
// 200-case sweep. On any violation the failing seed is printed so the case
// replays locally with `SPBC_FM_SEED=<seed> SPBC_FM_CASES=1`.

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/redundancy.hpp"

namespace spbc::testing {

struct FailureCase {
  uint64_t seed = 0;
  ckpt::RedundancyConfig redundancy;
  int nodes = 0;      // one rank per node
  int nclusters = 0;  // failure domains (cluster map: node / cluster_span)
  uint64_t bytes = 0;  // snapshot payload bytes
  int losses = 0;      // node losses injected
  bool correlated = false;  // victims drawn from a single failure domain
  /// When the losses land relative to the staging pipeline.
  enum class Timing {
    kPreDrain,    // between epoch 1 settling and epoch 2 being written
    kSettled,     // after every placement of both epochs landed
    kMidDrain,    // while epoch 2's fragment placements are on the wire
    kMidRebuild,  // one extra source death while a rebuild read is in flight
    /// Silent-fragment-loss bucket: no node dies; `losses` staged fragments
    /// are corrupted in place (the host keeps believing it holds them) and a
    /// scrub wave runs. Asserts detection, repair back to full liveness
    /// while the PFS lags, and oracle agreement afterwards.
    kMidScrub,
    /// Node-never-returns bucket: each loss is a PERMANENT node death —
    /// invalidate + mpi::Machine::retire_node, so the victims' ranks rebind
    /// onto pooled spares (or pack onto survivors when the pool is
    /// exhausted, `spares` = 0). Asserts the rebind happened, the swap /
    /// shrink accounting, and that in-tolerance losses stay recoverable
    /// without the PFS against the NEW physical binding. With several
    /// losses, one is held in reserve and lands while the spare rebuild's
    /// reads are in flight (swap-in-progress loss).
    kSpareSwap,
    /// Delta-chain bucket: epoch 2 is staged as a DELTA anchored on epoch 1
    /// (chain_base = 1), and the losses land with the chain live. Asserts
    /// chain-aware recoverability (the head is recoverable only while its
    /// base is), that an exhausted chain's restore reports failure instead
    /// of inventing data, and that the epoch-1 fallback target then still
    /// restores whenever its own elements survive.
    kMidDeltaChain,
  };
  Timing timing = Timing::kSettled;
  bool flush_pfs = false;  // fast PFS: the frontier covers every epoch
  int spares = 0;          // pooled spare nodes (kSpareSwap bucket only)

  /// Hostile-shape dimension (DESIGN.md §16), orthogonal to `timing`: the
  /// same loss pattern replayed under an adversarial environment.
  enum class Hostile {
    kNone,
    /// Straggler / slow-node skew: odd nodes cut epoch 2 late (+0.15 s), so
    /// the wave's placements straggle across the kill instead of moving in
    /// lockstep. A victim whose skewed write would land after its own death
    /// never writes (a dead node must not re-enter service).
    kStragglerSkew,
    /// Healing partition: a network partition splits the machine at
    /// nodes/2 while epoch 2's placements are on the wire and heals before
    /// the invariant checks — held fragments must land and count.
    kPartitionHeal,
    /// Correlated hardware domains: victims are drawn from one rack
    /// (contiguous 4-node span), one leaf switch (node % 2 stripe), or one
    /// PSU pair {2k, 2k+1} instead of a cluster — the blast patterns the
    /// correlated-double estimator must survive. Widened to the whole
    /// machine when the domain is smaller than the loss count.
    kRackDomain,
    kSwitchDomain,
    kPsuDomain,
  };
  Hostile hostile = Hostile::kNone;
};

struct CaseResult {
  bool ok = true;
  std::vector<std::string> violations;
};

const char* timing_name(FailureCase::Timing t);
const char* hostile_name(FailureCase::Hostile h);

/// Deterministically expands `seed` into a case (scheme, shape, losses,
/// timing, correlation, PFS speed).
FailureCase sample_case(uint64_t seed);

/// One-line description for failure messages.
std::string describe_case(const FailureCase& c);

/// Runs the case and checks the shared invariants.
CaseResult run_case(const FailureCase& c);

}  // namespace spbc::testing

namespace spbc::ckpt {
class StagingArea;
}

namespace spbc::testing {

/// Brute-force derivability oracle over the live residency of (rank,
/// epoch): attempts an *actual* reconstruction of the payload bytes — a
/// full-copy read, an XOR fold, or a GF(256) Cauchy solve — from exactly
/// what the residency view says is readable, and checks the result against
/// the original checksum. The liveness property test asserts that no
/// scheme ever claims `recoverable_without_pfs` beyond this oracle (no
/// false liveness). The machine must run one rank per node.
bool oracle_recoverable(const ckpt::StagingArea& area,
                        const ckpt::RedundancyConfig& red, int nodes,
                        int rank, uint64_t epoch);

}  // namespace spbc::testing

// Unit tests: point-to-point semantics of the simmpi runtime — blocking and
// nonblocking operations, wildcards, eager vs rendezvous, FIFO delivery,
// probe, and the non-deterministic completion functions of Section 3.2.

#include <gtest/gtest.h>

#include <memory>

#include "mpi/collectives.hpp"
#include "mpi/machine.hpp"

namespace spbc::mpi {
namespace {

MachineConfig small_cfg(int nranks = 4) {
  MachineConfig cfg;
  cfg.nranks = nranks;
  cfg.ranks_per_node = 1;
  return cfg;
}

std::unique_ptr<Machine> make_machine(MachineConfig cfg) {
  auto m = std::make_unique<Machine>(cfg, std::make_unique<NativeProtocol>());
  m->set_cluster_of(std::vector<int>(static_cast<size_t>(cfg.nranks), 0));
  return m;
}

TEST(P2P, BlockingSendRecvDeliversPayload) {
  auto m = make_machine(small_cfg(2));
  std::vector<double> got;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      std::vector<double> data{1.0, 2.0, 3.0};
      r.send(1, 7, Payload::from_vector(data), r.world());
    } else {
      RecvResult rr = r.recv(0, 7, r.world());
      rr.copy_to(got);
      EXPECT_EQ(rr.source, 0);
      EXPECT_EQ(rr.tag, 7);
    }
  });
  RunResult res = m->run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(P2P, NonblockingOverlap) {
  auto m = make_machine(small_cfg(2));
  bool received = false;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      Request rq = r.isend(1, 1, Payload::make_synthetic(100, 0xaa), r.world());
      r.compute(1e-3);
      r.wait(rq);
    } else {
      Request rq = r.irecv(0, 1, r.world());
      r.compute(1e-3);
      r.wait(rq);
      received = true;
      EXPECT_EQ(rq.result().hash, 0xaaU);
    }
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_TRUE(received);
}

TEST(P2P, AnySourceReceivesFromEither) {
  auto m = make_machine(small_cfg(3));
  std::vector<int> sources;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        RecvResult rr = r.recv(kAnySource, 5, r.world());
        sources.push_back(rr.source);
      }
    } else {
      r.compute(r.rank() * 1e-4);
      r.send(0, 5, Payload::make_synthetic(64, static_cast<uint64_t>(r.rank())),
             r.world());
    }
  });
  EXPECT_TRUE(m->run().completed);
  ASSERT_EQ(sources.size(), 2u);
  // Rank 1 computes less before sending, so it arrives first.
  EXPECT_EQ(sources[0], 1);
  EXPECT_EQ(sources[1], 2);
}

TEST(P2P, AnyTagMatchesFirstArrival) {
  auto m = make_machine(small_cfg(2));
  int got_tag = -1;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.send(1, 3, Payload::make_synthetic(16, 1), r.world());
      r.send(1, 9, Payload::make_synthetic(16, 2), r.world());
    } else {
      RecvResult rr = r.recv(0, kAnyTag, r.world());
      got_tag = rr.tag;
      r.recv(0, kAnyTag, r.world());
    }
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_EQ(got_tag, 3);  // FIFO: first sent matches first
}

TEST(P2P, TagSelectionSkipsNonMatching) {
  auto m = make_machine(small_cfg(2));
  uint64_t first_hash = 0;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.send(1, 3, Payload::make_synthetic(16, 111), r.world());
      r.send(1, 9, Payload::make_synthetic(16, 222), r.world());
    } else {
      // Ask for tag 9 first: must skip the tag-3 message.
      RecvResult rr = r.recv(0, 9, r.world());
      first_hash = rr.hash;
      r.recv(0, 3, r.world());
    }
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_EQ(first_hash, 222u);
}

TEST(P2P, ChannelFifoManyMessages) {
  auto m = make_machine(small_cfg(2));
  std::vector<uint64_t> hashes;
  constexpr int kN = 100;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      for (int i = 0; i < kN; ++i)
        r.send(1, 1, Payload::make_synthetic(32, static_cast<uint64_t>(i)), r.world());
    } else {
      for (int i = 0; i < kN; ++i) hashes.push_back(r.recv(0, 1, r.world()).hash);
    }
  });
  EXPECT_TRUE(m->run().completed);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hashes[static_cast<size_t>(i)], static_cast<uint64_t>(i));
}

TEST(P2P, RendezvousLargeMessage) {
  MachineConfig cfg = small_cfg(2);
  cfg.eager_threshold = 1000;
  auto m = make_machine(cfg);
  uint64_t got = 0;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.send(1, 2, Payload::make_synthetic(1000000, 0xbeef), r.world());
    } else {
      r.compute(5e-3);  // sender must wait for the matching recv (CTS)
      got = r.recv(0, 2, r.world()).hash;
    }
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_EQ(got, 0xbeefU);
}

TEST(P2P, RendezvousPreservesChannelOrderWithEagerBehind) {
  MachineConfig cfg = small_cfg(2);
  cfg.eager_threshold = 1000;
  auto m = make_machine(cfg);
  std::vector<uint64_t> order;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      Request big = r.isend(1, 1, Payload::make_synthetic(500000, 1), r.world());
      Request small = r.isend(1, 1, Payload::make_synthetic(10, 2), r.world());
      r.wait(big);
      r.wait(small);
    } else {
      r.compute(2e-3);
      // Matching is by envelope (RTS) order: the big message matches first
      // even though its payload arrives last.
      order.push_back(r.recv(0, 1, r.world()).hash);
      order.push_back(r.recv(0, 1, r.world()).hash);
    }
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 2}));
}

TEST(P2P, WaitanyReturnsCompletedIndex) {
  auto m = make_machine(small_cfg(3));
  int first = -1;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      std::vector<Request> reqs;
      reqs.push_back(r.irecv(1, 1, r.world()));
      reqs.push_back(r.irecv(2, 1, r.world()));
      first = r.waitany(reqs);
      r.waitall(reqs);
    } else {
      r.compute(r.rank() == 2 ? 1e-4 : 5e-3);  // rank 2 sends first
      r.send(0, 1, Payload::make_synthetic(8, 0), r.world());
    }
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_EQ(first, 1);  // index of the rank-2 request
}

TEST(P2P, TestReflectsCompletion) {
  auto m = make_machine(small_cfg(2));
  bool before = true, after = false;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.compute(2e-3);
      r.send(1, 1, Payload::make_synthetic(8, 0), r.world());
    } else {
      Request rq = r.irecv(0, 1, r.world());
      before = r.test(rq);  // nothing sent yet
      r.compute(5e-3);
      after = r.test(rq);
    }
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

TEST(P2P, IprobeSeesEnvelopeWithoutConsuming) {
  auto m = make_machine(small_cfg(2));
  Status st;
  bool hit1 = false, hit2 = false;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.send(1, 4, Payload::make_synthetic(123, 9), r.world());
    } else {
      r.compute(2e-3);
      hit1 = r.iprobe(kAnySource, 4, r.world(), &st);
      hit2 = r.iprobe(kAnySource, 4, r.world(), nullptr);  // still there
      r.recv(0, 4, r.world());
      EXPECT_FALSE(r.iprobe(kAnySource, 4, r.world(), nullptr));
    }
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_TRUE(hit1);
  EXPECT_TRUE(hit2);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 4);
  EXPECT_EQ(st.bytes, 123u);
}

TEST(P2P, BlockingProbeWaits) {
  auto m = make_machine(small_cfg(2));
  sim::Time probed_at = 0;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.compute(3e-3);
      r.send(1, 4, Payload::make_synthetic(8, 0), r.world());
    } else {
      Status st = r.probe(kAnySource, 4, r.world());
      probed_at = r.now();
      EXPECT_EQ(st.source, 0);
      r.recv(st.source, 4, r.world());
    }
  });
  EXPECT_TRUE(m->run().completed);
  EXPECT_GE(probed_at, 3e-3);
}

TEST(P2P, UnmatchedRecvDeadlocks) {
  MachineConfig cfg = small_cfg(2);
  cfg.abort_on_deadlock = false;
  auto m = make_machine(cfg);
  m->launch([&](Rank& r) {
    if (r.rank() == 1) r.recv(0, 1, r.world());  // never sent
  });
  RunResult res = m->run();
  EXPECT_TRUE(res.deadlocked);
  EXPECT_FALSE(res.completed);
}

TEST(P2P, OpCounterAdvances) {
  auto m = make_machine(small_cfg(2));
  uint64_t ops0 = 0;
  m->launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.send(1, 1, Payload::make_synthetic(8, 0), r.world());
      r.compute(1e-3);
      ops0 = r.op_counter();
    } else {
      r.recv(0, 1, r.world());
    }
  });
  EXPECT_TRUE(m->run().completed);
  // isend + wait (via send) + compute = at least 3 ops.
  EXPECT_GE(ops0, 3u);
}

}  // namespace
}  // namespace spbc::mpi

// Tests: the GF(256) arithmetic kernel and Reed-Solomon codec
// (util/gf256.hpp) underneath the kReedSolomon redundancy scheme.
//
// Field axioms over the whole field (mul/div/inverse round-trips against
// the log/exp tables), Cauchy encode-matrix structure (every square
// submatrix invertible — the MDS property), encode/decode identity for all
// shapes (k, m) <= (8, 4) under every loss pattern of size <= m, and the
// singular-submatrix rejection paths (duplicate shards, short shard sets,
// genuinely singular matrices).

#include <gtest/gtest.h>

#include <vector>

#include "util/gf256.hpp"
#include "util/rng.hpp"

namespace spbc {
namespace {

namespace gf = util::gf256;

TEST(Gf256, MulDivInverseRoundTrips) {
  // a * inv(a) == 1 and div undoes mul, across the whole field.
  for (int a = 1; a < 256; ++a) {
    const uint8_t ua = static_cast<uint8_t>(a);
    EXPECT_EQ(gf::mul(ua, gf::inv(ua)), 1) << "a=" << a;
    for (int b = 1; b < 256; ++b) {
      const uint8_t ub = static_cast<uint8_t>(b);
      const uint8_t p = gf::mul(ua, ub);
      EXPECT_EQ(gf::div(p, ub), ua) << "a=" << a << " b=" << b;
      EXPECT_EQ(gf::mul(ua, ub), gf::mul(ub, ua));
    }
  }
  // Zero annihilates; log/exp are inverse maps.
  for (int a = 0; a < 256; ++a)
    EXPECT_EQ(gf::mul(static_cast<uint8_t>(a), 0), 0);
  for (int a = 1; a < 256; ++a)
    EXPECT_EQ(gf::exp(gf::log(static_cast<uint8_t>(a))),
              static_cast<uint8_t>(a));
}

TEST(Gf256, MulIsDistributive) {
  util::Pcg32 rng(7, 0x6f);
  for (int i = 0; i < 2000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.next_bounded(256));
    const uint8_t b = static_cast<uint8_t>(rng.next_bounded(256));
    const uint8_t c = static_cast<uint8_t>(rng.next_bounded(256));
    EXPECT_EQ(gf::mul(a, static_cast<uint8_t>(b ^ c)),
              static_cast<uint8_t>(gf::mul(a, b) ^ gf::mul(a, c)));
    EXPECT_EQ(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
  }
}

TEST(Gf256, CauchySquareSubmatricesInvertible) {
  // The MDS property: every square submatrix of the Cauchy block is
  // nonsingular. Exhaustive for the (k, m) the redundancy layer uses.
  for (int k = 2; k <= 8; ++k) {
    for (int m = 1; m <= 4; ++m) {
      const gf::Matrix c = gf::cauchy_parity_matrix(k, m);
      // All 1x1 and 2x2 submatrices.
      for (int i = 0; i < m; ++i)
        for (int j = 0; j < k; ++j) EXPECT_NE(c.at(i, j), 0);
      for (int i1 = 0; i1 < m; ++i1)
        for (int i2 = i1 + 1; i2 < m; ++i2)
          for (int j1 = 0; j1 < k; ++j1)
            for (int j2 = j1 + 1; j2 < k; ++j2) {
              gf::Matrix sub(2, 2);
              sub.at(0, 0) = c.at(i1, j1);
              sub.at(0, 1) = c.at(i1, j2);
              sub.at(1, 0) = c.at(i2, j1);
              sub.at(1, 1) = c.at(i2, j2);
              EXPECT_TRUE(gf::invert(sub))
                  << "k=" << k << " m=" << m << " rows " << i1 << "," << i2
                  << " cols " << j1 << "," << j2;
            }
    }
  }
}

TEST(Gf256, MatrixInverseRoundTrip) {
  util::Pcg32 rng(11, 0xa1);
  for (int n = 1; n <= 6; ++n) {
    // Random invertible matrices: retry until invert succeeds, then check
    // A * A^-1 == I.
    for (int trial = 0; trial < 20; ++trial) {
      gf::Matrix a(n, n);
      for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
          a.at(r, c) = static_cast<uint8_t>(rng.next_bounded(256));
      gf::Matrix ai = a;
      if (!gf::invert(ai)) continue;
      const gf::Matrix prod = gf::matmul(a, ai);
      for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
          EXPECT_EQ(prod.at(r, c), r == c ? 1 : 0) << "n=" << n;
    }
  }
}

TEST(Gf256, SingularMatrixRejected) {
  // Duplicate rows => singular.
  gf::Matrix a(3, 3);
  for (int c = 0; c < 3; ++c) {
    a.at(0, c) = static_cast<uint8_t>(c + 1);
    a.at(1, c) = static_cast<uint8_t>(c + 1);
    a.at(2, c) = static_cast<uint8_t>(7 * (c + 1));
  }
  EXPECT_FALSE(gf::invert(a));
  // All-zero matrix.
  gf::Matrix z(2, 2);
  EXPECT_FALSE(gf::invert(z));
  // Row 2 = row 0 ^ row 1 (GF addition) => linearly dependent.
  gf::Matrix d(3, 3);
  util::Pcg32 rng(3, 0x11);
  for (int c = 0; c < 3; ++c) {
    d.at(0, c) = static_cast<uint8_t>(1 + rng.next_bounded(255));
    d.at(1, c) = static_cast<uint8_t>(1 + rng.next_bounded(255));
    d.at(2, c) = d.at(0, c) ^ d.at(1, c);
  }
  EXPECT_FALSE(gf::invert(d));
}

// Encode/decode identity: for every (k, m) <= (8, 4) and every loss pattern
// of up to m shards (data and parity mixed), reconstruction from any k
// survivors returns the original data exactly.
TEST(Gf256, EncodeDecodeIdentityAllShapes) {
  util::Pcg32 rng(42, 0xc0);
  const size_t len = 64;
  for (int k = 1; k <= 8; ++k) {
    for (int m = 1; m <= 4; ++m) {
      std::vector<std::vector<uint8_t>> data(static_cast<size_t>(k));
      for (auto& d : data) {
        d.resize(len);
        for (uint8_t& b : d) b = static_cast<uint8_t>(rng.next_bounded(256));
      }
      const std::vector<std::vector<uint8_t>> parity = gf::rs_encode(k, m, data);
      ASSERT_EQ(parity.size(), static_cast<size_t>(m));

      // Codeword = data shards 0..k-1 + parity shards k..k+m-1. Try many
      // random loss patterns of exactly m erasures (the worst case); any k
      // survivors must reconstruct.
      for (int trial = 0; trial < 30; ++trial) {
        std::vector<int> alive;
        for (int i = 0; i < k + m; ++i) alive.push_back(i);
        for (int kill = 0; kill < m; ++kill)
          alive.erase(alive.begin() +
                      static_cast<long>(rng.next_bounded(
                          static_cast<uint32_t>(alive.size()))));
        std::vector<gf::Shard> shards;
        for (int idx : alive) {
          gf::Shard s;
          s.index = idx;
          s.bytes = idx < k ? &data[static_cast<size_t>(idx)]
                            : &parity[static_cast<size_t>(idx - k)];
          shards.push_back(s);
        }
        std::vector<std::vector<uint8_t>> out;
        ASSERT_TRUE(gf::rs_reconstruct(k, m, shards, len, &out))
            << "k=" << k << " m=" << m;
        EXPECT_EQ(out, data) << "k=" << k << " m=" << m;
      }
    }
  }
}

TEST(Gf256, ReconstructRejectsBadShardSets) {
  const int k = 4, m = 2;
  const size_t len = 16;
  util::Pcg32 rng(9, 0x77);
  std::vector<std::vector<uint8_t>> data(static_cast<size_t>(k));
  for (auto& d : data) {
    d.resize(len);
    for (uint8_t& b : d) b = static_cast<uint8_t>(rng.next_bounded(256));
  }
  const std::vector<std::vector<uint8_t>> parity = gf::rs_encode(k, m, data);
  std::vector<std::vector<uint8_t>> out;

  // Fewer than k shards.
  std::vector<gf::Shard> few = {{0, &data[0]}, {1, &data[1]}, {2, &data[2]}};
  EXPECT_FALSE(gf::rs_reconstruct(k, m, few, len, &out));

  // k shards but a duplicate index: the decode matrix is singular.
  std::vector<gf::Shard> dup = {
      {0, &data[0]}, {1, &data[1]}, {1, &data[1]}, {4, &parity[0]}};
  EXPECT_FALSE(gf::rs_reconstruct(k, m, dup, len, &out));

  // Out-of-range shard index.
  std::vector<gf::Shard> oob = {
      {0, &data[0]}, {1, &data[1]}, {2, &data[2]}, {k + m, &parity[0]}};
  EXPECT_FALSE(gf::rs_reconstruct(k, m, oob, len, &out));

  // Mismatched shard length.
  std::vector<uint8_t> short_shard(len - 1, 0);
  std::vector<gf::Shard> bad_len = {
      {0, &data[0]}, {1, &data[1]}, {2, &data[2]}, {3, &short_shard}};
  EXPECT_FALSE(gf::rs_reconstruct(k, m, bad_len, len, &out));
}

}  // namespace
}  // namespace spbc

// Section 7 extension: hybrid MPI + threads (MPI_THREAD_MULTIPLE).
//
// When two threads of one MPI process send over the same channel with
// distinct tags, the per-channel total order of sends differs between valid
// executions (channel-determinism is lost), but each (channel, tag)
// sub-stream stays deterministic. The paper proposes "to associate a
// sequence number with each (channel, tag) tuple instead of a single
// sequence number per channel" — implemented here as
// MachineConfig::seq_per_tag.
//
// The emulated hybrid workload: a "router" rank consumes messages from two
// producers with ANY_SOURCE (arrival order = scheduling order of its two
// logical threads) and immediately forwards each on a per-thread tag to a
// sink. The forward order on the router->sink channel interleaves
// nondeterministically; each tag's subsequence is fixed.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/spbc.hpp"
#include "mpi/collectives.hpp"
#include "mpi/machine.hpp"
#include "trace/determinism.hpp"

namespace spbc {
namespace {

using mpi::Machine;
using mpi::MachineConfig;
using mpi::Payload;
using mpi::Rank;

constexpr int kMsgsPerProducer = 10;
constexpr int kTagProduce = 1;
constexpr int kTagThreadBase = 10;  // +producer index
constexpr int kTagDone = 99;

// Ranks: 0,1 producers; 2 router ("two threads"); 3 sink.
void hybrid_app(Rank& r, std::map<int, std::vector<uint64_t>>* sink_streams) {
  const mpi::Comm& w = r.world();
  struct St {
    int iter = 0;
  } st;
  r.set_state_handlers([](util::ByteWriter&) {}, [](util::ByteReader&) {});

  if (r.rank() <= 1) {
    for (int i = 0; i < kMsgsPerProducer; ++i) {
      uint64_t h = static_cast<uint64_t>(r.rank() + 1) * 1000 + static_cast<uint64_t>(i);
      r.send(2, kTagProduce, Payload::make_synthetic(64, h), w);
      r.compute(r.rng().next_range(1e-5, 3e-5));  // stagger the producers
    }
  } else if (r.rank() == 2) {
    // The "multithreaded" router: forwards in arrival order; thread identity
    // (and thus the outgoing tag) is the producer it consumed from.
    for (int i = 0; i < 2 * kMsgsPerProducer; ++i) {
      mpi::RecvResult rr = r.recv(mpi::kAnySource, kTagProduce, w);
      int thread = rr.source;  // producer 0 -> thread 0, producer 1 -> thread 1
      r.send(3, kTagThreadBase + thread, Payload::make_synthetic(64, rr.hash), w);
    }
    r.send(3, kTagDone, Payload::make_synthetic(8, 0), w);
  } else {
    // Sink: drains each thread stream on its own tag (tag-constrained
    // anonymous receptions — an ANY_TAG loop would promiscuously swallow
    // unrelated traffic such as collective messages), then the done marker.
    // A restarted incarnation re-records from scratch.
    if (sink_streams) sink_streams->clear();
    for (int tag : {kTagThreadBase, kTagThreadBase + 1}) {
      for (int i = 0; i < kMsgsPerProducer; ++i) {
        mpi::RecvResult rr = r.recv(mpi::kAnySource, tag, w);
        if (sink_streams) (*sink_streams)[rr.tag].push_back(rr.hash);
      }
    }
    r.recv(mpi::kAnySource, kTagDone, w);
  }
  (void)st;
  mpi::barrier(r, w);
}

struct RunOut {
  bool completed = false;
  std::map<int, std::vector<uint64_t>> streams;  // per tag at the sink
};

RunOut run_hybrid(bool seq_per_tag, double jitter, uint64_t seed, bool fail_router,
                  bool fail_sink) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 1;
  cfg.abort_on_deadlock = false;
  cfg.seq_per_tag = seq_per_tag;
  cfg.net.jitter_frac = jitter;
  cfg.net.jitter_seed = seed;
  cfg.seed = seed;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 0;  // rollback to sigma_0
  auto m = std::make_unique<Machine>(cfg, std::make_unique<core::SpbcProtocol>(scfg));
  m->set_cluster_of({0, 0, 1, 2});  // router and sink in separate clusters
  RunOut out;
  m->launch([&out](Rank& r) { hybrid_app(r, &out.streams); });
  if (fail_router) m->inject_failure(2e-4, 2);
  if (fail_sink) m->inject_failure(2e-4, 3);
  out.completed = m->run().completed;
  return out;
}

TEST(HybridStreams, PerTagStreamsAreDeterministicAcrossJitter) {
  RunOut a = run_hybrid(true, 0.8, 1, false, false);
  RunOut b = run_hybrid(true, 0.8, 77, false, false);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  // Each tag's subsequence is identical even though the interleave differs.
  EXPECT_EQ(a.streams, b.streams);
}

TEST(HybridStreams, ChannelTotalOrderActuallyVaries) {
  // Sanity: the workload is genuinely NOT channel-deterministic — the
  // router's send trace on channel 2->3 differs across jitter seeds.
  auto trace = [](uint64_t seed) {
    MachineConfig cfg;
    cfg.nranks = 4;
    cfg.ranks_per_node = 1;
    cfg.record_send_trace = true;
    cfg.seq_per_tag = true;
    cfg.net.jitter_frac = 0.8;
    cfg.net.jitter_seed = seed;
    Machine m(cfg, std::make_unique<core::SpbcProtocol>(core::SpbcConfig{}));
    m.set_cluster_of({0, 0, 1, 2});
    m.launch([](Rank& r) { hybrid_app(r, nullptr); });
    EXPECT_TRUE(m.run().completed);
    return m.send_trace();
  };
  auto base = trace(1);
  bool diverged = false;
  for (uint64_t seed = 2; seed < 12 && !diverged; ++seed)
    diverged = !trace::compare_send_traces(base, trace(seed)).equal;
  EXPECT_TRUE(diverged) << "router interleave never changed; test is vacuous";
}

TEST(HybridStreams, SinkRecoveryReplaysEachStreamInOrder) {
  // The sink's cluster fails: the router (survivor) replays its log. Without
  // per-tag sequence numbers the replay cannot order the interleaved
  // channel; with them each tag stream is replayed in its own order.
  RunOut ff = run_hybrid(true, 0.3, 5, false, false);
  ASSERT_TRUE(ff.completed);
  RunOut rec = run_hybrid(true, 0.3, 5, false, true);
  ASSERT_TRUE(rec.completed);
  EXPECT_EQ(rec.streams.at(kTagThreadBase + 0), ff.streams.at(kTagThreadBase + 0));
  EXPECT_EQ(rec.streams.at(kTagThreadBase + 1), ff.streams.at(kTagThreadBase + 1));
}

TEST(HybridStreams, RouterRecoveryReinterleavesButStreamsHold) {
  // The router's cluster fails and re-executes; its new interleave on the
  // channel may legally differ, but each (channel, tag) stream must reach
  // the sink exactly once, in stream order — the Section 7 property.
  RunOut ff = run_hybrid(true, 0.3, 9, false, false);
  ASSERT_TRUE(ff.completed);
  RunOut rec = run_hybrid(true, 0.3, 9, true, false);
  ASSERT_TRUE(rec.completed);
  for (int tag : {kTagThreadBase, kTagThreadBase + 1}) {
    ASSERT_TRUE(rec.streams.count(tag));
    EXPECT_EQ(rec.streams.at(tag).size(), ff.streams.at(tag).size())
        << "stream " << tag << " lost or duplicated messages";
    EXPECT_EQ(rec.streams.at(tag), ff.streams.at(tag));
  }
}

TEST(HybridStreams, SeqPerTagKeepsIndependentCounters) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;
  cfg.seq_per_tag = true;
  Machine m(cfg, std::make_unique<mpi::NativeProtocol>());
  m.set_cluster_of({0, 1});
  m.launch([](Rank& r) {
    if (r.rank() == 0) {
      r.send(1, 5, Payload::make_synthetic(8, 1), r.world());
      r.send(1, 7, Payload::make_synthetic(8, 2), r.world());
      r.send(1, 5, Payload::make_synthetic(8, 3), r.world());
      // Stream (dst=1, ctx=0, tag=5) advanced to 2; tag=7 only to 1.
      EXPECT_EQ(r.send_state(1, 0, 5).next_seq, 2u);
      EXPECT_EQ(r.send_state(1, 0, 7).next_seq, 1u);
    } else {
      r.recv(0, 5, r.world());
      r.recv(0, 7, r.world());
      r.recv(0, 5, r.world());
    }
  });
  EXPECT_TRUE(m.run().completed);
}

TEST(HybridStreams, DefaultModeSharesOneCounterPerChannel) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;
  cfg.seq_per_tag = false;
  Machine m(cfg, std::make_unique<mpi::NativeProtocol>());
  m.set_cluster_of({0, 1});
  m.launch([](Rank& r) {
    if (r.rank() == 0) {
      r.send(1, 5, Payload::make_synthetic(8, 1), r.world());
      r.send(1, 7, Payload::make_synthetic(8, 2), r.world());
      EXPECT_EQ(r.send_state(1, 0, 5).next_seq, 2u);  // same stream
    } else {
      r.recv(0, 5, r.world());
      r.recv(0, 7, r.world());
    }
  });
  EXPECT_TRUE(m.run().completed);
}

}  // namespace
}  // namespace spbc

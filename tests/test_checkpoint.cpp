// Tests: checkpoint store cost model, rank-state snapshot round trips, and
// the intra-cluster coordinated checkpoint protocol (non-blocking
// marker-based wave): consistent waves, periodicity, storage cost,
// in-flight-message capture, and epoch-consistent restore.

#include <gtest/gtest.h>

#include <memory>

#include "ckpt/store.hpp"
#include "core/spbc.hpp"
#include "mpi/collectives.hpp"
#include "mpi/machine.hpp"

namespace spbc {
namespace {

using mpi::Machine;
using mpi::MachineConfig;
using mpi::Payload;
using mpi::Rank;

TEST(Store, CostModelLevels) {
  ckpt::StorageCostModel m;
  EXPECT_DOUBLE_EQ(m.write_time(ckpt::StorageLevel::kNone, 1 << 20), 0.0);
  EXPECT_GT(m.write_time(ckpt::StorageLevel::kLocal, 1 << 20), 0.0);
  EXPECT_GT(m.write_time(ckpt::StorageLevel::kPfs, 1 << 20),
            m.write_time(ckpt::StorageLevel::kLocal, 1 << 20));
}

TEST(Store, SaveAndLatest) {
  ckpt::Store store;
  ckpt::Snapshot s;
  s.taken_at = 1.5;
  s.epoch = 2;
  s.bytes = {1, 2, 3};
  store.save(0, std::move(s));
  EXPECT_TRUE(store.has(0));
  EXPECT_FALSE(store.has(1));
  EXPECT_EQ(store.latest(0).epoch, 2u);
  EXPECT_EQ(store.total_bytes_written(), 3u);
  ckpt::Snapshot s2;
  s2.epoch = 3;
  store.save(0, std::move(s2));
  EXPECT_EQ(store.latest(0).epoch, 3u);
  EXPECT_EQ(store.snapshots_taken(), 2u);
}

TEST(RankSnapshot, RuntimeStateRoundTrips) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;
  Machine m(cfg, std::make_unique<mpi::NativeProtocol>());
  m.set_cluster_of({0, 1});
  util::ByteWriter w;
  std::vector<unsigned char> snap;
  uint64_t ops_before = 0;
  m.launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.send(1, 1, Payload::make_synthetic(64, 0xaa), r.world());
      r.compute(1e-3);
      uint32_t pid = r.declare_pattern();
      r.begin_iteration(pid);
      r.end_iteration(pid);
      ops_before = r.op_counter();
      util::ByteWriter bw;
      r.serialize_runtime(bw);
      snap = bw.take();
    } else {
      r.recv(0, 1, r.world());
    }
  });
  EXPECT_TRUE(m.run().completed);
  ASSERT_FALSE(snap.empty());

  // Restore into a fresh machine's rank 0 and verify key fields.
  Machine m2(cfg, std::make_unique<mpi::NativeProtocol>());
  m2.set_cluster_of({0, 1});
  m2.launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.reset_for_restart();
      util::ByteReader br(snap);
      r.restore_runtime(br);
      EXPECT_EQ(r.op_counter(), ops_before);
      EXPECT_EQ(r.send_state(1, 0).next_seq, 1u);
      EXPECT_EQ(r.patterns().iteration.size(), 2u);
      // Re-declaring after restart returns the same id.
      EXPECT_EQ(r.declare_pattern(), 1u);
    }
  });
  EXPECT_TRUE(m2.run().completed);
}

TEST(RankSnapshot, UnexpectedQueueSurvives) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;
  Machine m(cfg, std::make_unique<mpi::NativeProtocol>());
  m.set_cluster_of({0, 1});
  uint64_t got_hash = 0;
  m.launch([&](Rank& r) {
    if (r.rank() == 0) {
      r.send(1, 9, Payload::make_synthetic(32, 0x77), r.world());
    } else {
      // Let the message land in the unexpected queue, snapshot, wipe, restore,
      // then receive it from the restored queue.
      r.compute(2e-3);
      util::ByteWriter bw;
      r.serialize_runtime(bw);
      auto snap = bw.take();
      r.reset_for_restart();
      util::ByteReader br(snap);
      r.restore_runtime(br);
      got_hash = r.recv(0, 9, r.world()).hash;
    }
  });
  EXPECT_TRUE(m.run().completed);
  EXPECT_EQ(got_hash, 0x77U);
}

// Coordinated checkpoint: all members of a cluster snapshot together after a
// drain; intra-cluster in-flight messages are either delivered (and
// serialized in the receiver's unexpected queue) or not yet sent.
TEST(CoordinatedCkpt, ClusterTakesConsistentWave) {
  MachineConfig cfg;
  cfg.nranks = 4;
  cfg.ranks_per_node = 2;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;  // checkpoint at every maybe_checkpoint()
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 0, 1, 1});
  m.launch([&](Rank& r) {
    r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(0); },
                         [](util::ByteReader& rd) { rd.get<int>(); });
    // Ring traffic then a checkpoint each iteration.
    const mpi::Comm& w = r.world();
    for (int it = 0; it < 3; ++it) {
      int to = (r.rank() + 1) % 4;
      int from = (r.rank() + 3) % 4;
      mpi::Request rq = r.irecv(from, 1, w);
      r.isend(to, 1, Payload::make_synthetic(128, static_cast<uint64_t>(it)), w);
      r.wait(rq);
      r.maybe_checkpoint();
    }
  });
  EXPECT_TRUE(m.run().completed);
  // 3 waves x 4 ranks.
  EXPECT_EQ(p->checkpoints_taken(), 12u);
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(p->store().has(r));
}

TEST(CoordinatedCkpt, PeriodicityHonored) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 3;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1});
  int taken0 = 0;
  m.launch([&](Rank& r) {
    r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(0); },
                         [](util::ByteReader& rd) { rd.get<int>(); });
    for (int it = 0; it < 7; ++it) {
      if (r.rank() == 0) {
        r.send(1, 1, Payload::make_synthetic(8, 0), r.world());
      } else {
        r.recv(0, 1, r.world());
      }
      bool took = r.maybe_checkpoint();
      if (r.rank() == 0 && took) ++taken0;
    }
  });
  EXPECT_TRUE(m.run().completed);
  EXPECT_EQ(taken0, 2);  // calls 3 and 6
  EXPECT_EQ(p->checkpoints_taken(), 4u);
}

// An intra-cluster message in flight across the checkpoint cut (sent before
// the sender's snapshot, delivered after the receiver's) must be captured
// into the epoch's restore data and re-delivered after a rollback: the
// restored sender will not re-send it, and the restored receiver has not
// received it.
TEST(CoordinatedCkpt, InFlightIntraMessageCapturedAndRestored) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 2;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  core::SpbcProtocol* p = proto.get();
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 0});
  uint64_t hash_out = 0;
  m.launch([&hash_out](Rank& r) {
    struct St {
      int stage = 0;
      uint64_t hash = 0;
    } st;
    r.set_state_handlers(
        [&st](util::ByteWriter& w) { w.put(st); },
        [&st](util::ByteReader& rd) { st = rd.get<decltype(st)>(); });
    if (r.restarted()) r.restore_app_state();
    const mpi::Comm& w = r.world();
    if (r.rank() == 0) {
      if (st.stage == 0) {
        // Eager send: the buffer is reusable immediately, so the message is
        // still in flight when the boundary snapshot below cuts the epoch.
        r.send(1, 5, Payload::make_synthetic(256, 0xfeed), w);
        st.stage = 1;
      }
      r.maybe_checkpoint();
      r.compute(5e-3);
    } else {
      // Rank 1 reaches its boundary (and snapshots) before the message
      // arrives -- the delivery then crosses the cut and is captured.
      r.maybe_checkpoint();
      if (st.stage == 0) {
        st.hash = r.recv(0, 5, w).hash;
        st.stage = 1;
      }
      r.compute(5e-3);
      hash_out = st.hash;
    }
  });
  m.inject_failure(2e-3, 0);  // after epoch 1 committed, during the computes
  mpi::RunResult res = m.run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  // The cut-crossing message was captured (the per-epoch list itself is
  // pruned once re-execution commits the next epoch)...
  EXPECT_GE(p->store().in_flight_captured(), 1u);
  // ...and the restored epoch was the committed one, not sigma_0.
  ASSERT_EQ(m.recoveries().size(), 1u);
  EXPECT_GT(m.recoveries().at(0).checkpoint_time, 0.0);
  // Rank 1's re-executed recv was satisfied by the re-delivered capture
  // (rank 0's restored state shows the message as already sent).
  EXPECT_EQ(hash_out, 0xfeedu);
  EXPECT_EQ(p->rollbacks(), 1u);
}

// A failure while a wave is only partially complete (one member snapshotted
// epoch E, the other has not) must restore the whole cluster to the last
// COMMITTED epoch -- never a mix of epochs, which would be an inconsistent
// cut (the epoch-E member would skip re-sends its peer still expects).
TEST(CoordinatedCkpt, EpochConsistentRestoreDiscardsUncommittedWave) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 2;
  cfg.abort_on_deadlock = false;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  const int iters = 2;
  auto run = [&](bool inject, std::map<int, uint64_t>* sums,
                 core::SpbcProtocol** proto_out) {
    auto proto = std::make_unique<core::SpbcProtocol>(scfg);
    if (proto_out) *proto_out = proto.get();
    auto m = std::make_unique<Machine>(cfg, std::move(proto));
    m->set_cluster_of({0, 0});
    m->launch([sums](Rank& r) {
      struct St {
        int iter = 0;
        uint64_t sum = 0;
      } st;
      r.set_state_handlers(
          [&st](util::ByteWriter& w) { w.put(st); },
          [&st](util::ByteReader& rd) { st = rd.get<decltype(st)>(); });
      if (r.restarted()) r.restore_app_state();
      const mpi::Comm& w = r.world();
      for (; st.iter < iters;) {
        int peer = 1 - r.rank();
        mpi::Request rq = r.irecv(peer, 1, w);
        r.isend(peer, 1,
                Payload::make_synthetic(
                    128, static_cast<uint64_t>(r.rank() * 100 + st.iter)),
                w);
        r.wait(rq);
        util::Fnv1a64 h;
        h.update_u64(st.sum);
        h.update_u64(rq.result().hash);
        st.sum = h.digest();
        // Iteration 1: rank 0 races ahead to the next boundary and
        // snapshots epoch 2 while rank 1 is still computing.
        r.compute(st.iter == 1 && r.rank() == 1 ? 8e-3 : 1e-4);
        ++st.iter;
        r.maybe_checkpoint();
      }
      if (sums) (*sums)[r.rank()] = st.sum;
    });
    if (inject) m->inject_failure(4e-3, 0);
    return m;
  };
  std::map<int, uint64_t> expect;
  {
    auto m = run(false, &expect, nullptr);
    ASSERT_TRUE(m->run().completed);
  }
  std::map<int, uint64_t> sums;
  core::SpbcProtocol* p = nullptr;
  auto m = run(true, &sums, &p);
  mpi::RunResult res = m->run();
  ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
  EXPECT_EQ(sums, expect);
  // The rollback was backed by the committed epoch 1 (not sigma_0, not the
  // uncommitted epoch 2 rank 0 had already written).
  ASSERT_EQ(m->recoveries().size(), 1u);
  EXPECT_GT(m->recoveries().at(0).checkpoint_time, 0.0);
  EXPECT_LT(m->recoveries().at(0).checkpoint_time, 4e-3);
  // Re-execution redid the wave: both epochs end up committed, and every
  // member's local snapshot epoch converged on the committed one.
  EXPECT_EQ(p->committed_epoch(0), 2u);
  EXPECT_EQ(p->snapshot_epoch(0), 2u);
  EXPECT_EQ(p->snapshot_epoch(1), 2u);
}

TEST(CoordinatedCkpt, StorageCostCharged) {
  MachineConfig cfg;
  cfg.nranks = 2;
  cfg.ranks_per_node = 1;
  core::SpbcConfig scfg;
  scfg.checkpoint_every = 1;
  scfg.storage = ckpt::StorageLevel::kLocal;
  auto proto = std::make_unique<core::SpbcProtocol>(scfg);
  Machine m(cfg, std::move(proto));
  m.set_cluster_of({0, 1});
  sim::Time end = 0;
  m.launch([&](Rank& r) {
    r.set_state_handlers([](util::ByteWriter& w) { w.put<int>(1); },
                         [](util::ByteReader& rd) { rd.get<int>(); });
    r.maybe_checkpoint();
    end = r.now();
  });
  EXPECT_TRUE(m.run().completed);
  // At least the local device latency was charged.
  EXPECT_GT(end, 1e-5);
}

}  // namespace
}  // namespace spbc

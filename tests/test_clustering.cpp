// Unit tests: communication graph and the clustering tool (partitioner).

#include <gtest/gtest.h>

#include "clustering/comm_graph.hpp"
#include "clustering/partitioner.hpp"
#include "sim/topology.hpp"

namespace spbc::clustering {
namespace {

TEST(CommGraph, TrafficAccumulates) {
  CommGraph g(4);
  g.add_traffic(0, 1, 100);
  g.add_traffic(0, 1, 50);
  g.add_traffic(1, 0, 25);
  EXPECT_EQ(g.traffic(0, 1), 150u);
  EXPECT_EQ(g.traffic(1, 0), 25u);
  EXPECT_EQ(g.weight(0, 1), 175u);
  EXPECT_EQ(g.total_bytes(), 175u);
}

TEST(CommGraph, LoggedBytesIsCutVolume) {
  CommGraph g(4);
  g.add_traffic(0, 1, 100);
  g.add_traffic(2, 3, 100);
  g.add_traffic(1, 2, 40);
  std::vector<int> part{0, 0, 1, 1};
  EXPECT_EQ(g.logged_bytes(part), 40u);
  auto per_rank = g.logged_bytes_per_rank(part);
  EXPECT_EQ(per_rank[1], 40u);  // sender logs
  EXPECT_EQ(per_rank[2], 0u);
}

// Ring of 8 nodes (1 rank per node): contiguous blocks are optimal.
TEST(Partitioner, RingGetsContiguousBlocks) {
  sim::Topology topo(8, 1);
  CommGraph g(8);
  for (int i = 0; i < 8; ++i) {
    g.add_traffic(i, (i + 1) % 8, 1000);
    g.add_traffic((i + 1) % 8, i, 1000);
  }
  Partitioner part(g, topo);
  PartitionResult res = part.partition(4);
  EXPECT_EQ(res.clusters, 4);
  // Optimal 4-way cut of a ring: 4 edges cut x 2 directions x 1000 = 8000.
  EXPECT_EQ(res.logged_bytes, 8000u);
}

TEST(Partitioner, NodeColocationRespected) {
  sim::Topology topo(4, 2);  // 8 ranks, 2 per node
  CommGraph g(8);
  for (int i = 0; i < 7; ++i) g.add_traffic(i, i + 1, 100);
  Partitioner part(g, topo);
  PartitionResult res = part.partition(2);
  for (int r = 0; r < 8; r += 2)
    EXPECT_EQ(res.cluster_of[static_cast<size_t>(r)],
              res.cluster_of[static_cast<size_t>(r + 1)])
        << "node pair " << r;
}

TEST(Partitioner, BeatsOrEqualsBlockPartitionOnClusteredTraffic) {
  sim::Topology topo(8, 1);
  CommGraph g(8);
  // Two "communities" interleaved in rank order: {0,2,4,6} and {1,3,5,7}.
  for (int a : {0, 2, 4, 6})
    for (int b : {0, 2, 4, 6})
      if (a < b) g.add_traffic(a, b, 1000);
  for (int a : {1, 3, 5, 7})
    for (int b : {1, 3, 5, 7})
      if (a < b) g.add_traffic(a, b, 1000);
  g.add_traffic(0, 1, 10);  // weak cross links
  g.add_traffic(2, 3, 10);
  Partitioner part(g, topo);
  PartitionResult tool = part.partition(2);
  PartitionResult block = part.block_partition(2);
  EXPECT_LE(tool.logged_bytes, block.logged_bytes);
  EXPECT_EQ(tool.logged_bytes, 20u);  // only the weak links crossed
}

TEST(Partitioner, KEqualsOneIsEverything) {
  sim::Topology topo(4, 1);
  CommGraph g(4);
  g.add_traffic(0, 3, 100);
  Partitioner part(g, topo);
  PartitionResult res = part.partition(1);
  EXPECT_EQ(res.logged_bytes, 0u);
  for (int c : res.cluster_of) EXPECT_EQ(c, 0);
}

TEST(Partitioner, KEqualsNodesIsPerNode) {
  sim::Topology topo(4, 2);
  CommGraph g(8);
  g.add_traffic(0, 2, 100);
  Partitioner part(g, topo);
  PartitionResult res = part.partition(4);
  // 4 clusters over 4 nodes: each node is its own cluster.
  EXPECT_EQ(res.clusters, 4);
  std::set<int> ids(res.cluster_of.begin(), res.cluster_of.end());
  EXPECT_EQ(ids.size(), 4u);
}

TEST(Partitioner, BalancedObjectiveLowersMaxRankLogged) {
  sim::Topology topo(8, 1);
  CommGraph g(8);
  // A "hot" pair (0,1) with massive mutual traffic plus a chain; the
  // min-total partition keeps 0 and 1 together no matter the imbalance
  // elsewhere; the balanced objective may split differently.
  for (int i = 0; i < 8; ++i)
    for (int j = i + 1; j < 8; ++j) g.add_traffic(i, j, 10);
  g.add_traffic(0, 7, 5000);
  g.add_traffic(0, 6, 5000);
  Partitioner part(g, topo);
  PartitionResult total = part.partition(4, Objective::kMinTotalLogged);
  PartitionResult bal = part.partition(4, Objective::kBalancedLogged);
  EXPECT_LE(bal.max_rank_logged, total.max_rank_logged);
}

TEST(Partitioner, DeterministicAcrossCalls) {
  sim::Topology topo(8, 1);
  CommGraph g(8);
  for (int i = 0; i < 8; ++i)
    for (int j = i + 1; j < 8; ++j) g.add_traffic(i, j, static_cast<uint64_t>(i * 13 + j * 7));
  Partitioner part(g, topo);
  EXPECT_EQ(part.partition(3).cluster_of, part.partition(3).cluster_of);
}

}  // namespace
}  // namespace spbc::clustering

// Unit tests: communication graph and the clustering tool (partitioner) —
// CSR storage, incremental cut accounting, the heap/delta pipeline's parity
// with the seed algorithm and with brute-force optima, and the flat traffic
// matrix that feeds the graph.

#include <gtest/gtest.h>

#include <set>

#include "clustering/comm_graph.hpp"
#include "clustering/partitioner.hpp"
#include "mpi/traffic.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace spbc::clustering {
namespace {

TEST(CommGraph, TrafficAccumulates) {
  CommGraph g(4);
  g.add_traffic(0, 1, 100);
  g.add_traffic(0, 1, 50);
  g.add_traffic(1, 0, 25);
  EXPECT_EQ(g.traffic(0, 1), 150u);
  EXPECT_EQ(g.traffic(1, 0), 25u);
  EXPECT_EQ(g.weight(0, 1), 175u);
  EXPECT_EQ(g.total_bytes(), 175u);
}

TEST(CommGraph, LoggedBytesIsCutVolume) {
  CommGraph g(4);
  g.add_traffic(0, 1, 100);
  g.add_traffic(2, 3, 100);
  g.add_traffic(1, 2, 40);
  std::vector<int> part{0, 0, 1, 1};
  EXPECT_EQ(g.logged_bytes(part), 40u);
  auto per_rank = g.logged_bytes_per_rank(part);
  EXPECT_EQ(per_rank[1], 40u);  // sender logs
  EXPECT_EQ(per_rank[2], 0u);
}

// Ring of 8 nodes (1 rank per node): contiguous blocks are optimal.
TEST(Partitioner, RingGetsContiguousBlocks) {
  sim::Topology topo(8, 1);
  CommGraph g(8);
  for (int i = 0; i < 8; ++i) {
    g.add_traffic(i, (i + 1) % 8, 1000);
    g.add_traffic((i + 1) % 8, i, 1000);
  }
  Partitioner part(g, topo);
  PartitionResult res = part.partition(4);
  EXPECT_EQ(res.clusters, 4);
  // Optimal 4-way cut of a ring: 4 edges cut x 2 directions x 1000 = 8000.
  EXPECT_EQ(res.logged_bytes, 8000u);
}

TEST(Partitioner, NodeColocationRespected) {
  sim::Topology topo(4, 2);  // 8 ranks, 2 per node
  CommGraph g(8);
  for (int i = 0; i < 7; ++i) g.add_traffic(i, i + 1, 100);
  Partitioner part(g, topo);
  PartitionResult res = part.partition(2);
  for (int r = 0; r < 8; r += 2)
    EXPECT_EQ(res.cluster_of[static_cast<size_t>(r)],
              res.cluster_of[static_cast<size_t>(r + 1)])
        << "node pair " << r;
}

TEST(Partitioner, BeatsOrEqualsBlockPartitionOnClusteredTraffic) {
  sim::Topology topo(8, 1);
  CommGraph g(8);
  // Two "communities" interleaved in rank order: {0,2,4,6} and {1,3,5,7}.
  for (int a : {0, 2, 4, 6})
    for (int b : {0, 2, 4, 6})
      if (a < b) g.add_traffic(a, b, 1000);
  for (int a : {1, 3, 5, 7})
    for (int b : {1, 3, 5, 7})
      if (a < b) g.add_traffic(a, b, 1000);
  g.add_traffic(0, 1, 10);  // weak cross links
  g.add_traffic(2, 3, 10);
  Partitioner part(g, topo);
  PartitionResult tool = part.partition(2);
  PartitionResult block = part.block_partition(2);
  EXPECT_LE(tool.logged_bytes, block.logged_bytes);
  EXPECT_EQ(tool.logged_bytes, 20u);  // only the weak links crossed
}

TEST(Partitioner, KEqualsOneIsEverything) {
  sim::Topology topo(4, 1);
  CommGraph g(4);
  g.add_traffic(0, 3, 100);
  Partitioner part(g, topo);
  PartitionResult res = part.partition(1);
  EXPECT_EQ(res.logged_bytes, 0u);
  for (int c : res.cluster_of) EXPECT_EQ(c, 0);
}

TEST(Partitioner, KEqualsNodesIsPerNode) {
  sim::Topology topo(4, 2);
  CommGraph g(8);
  g.add_traffic(0, 2, 100);
  Partitioner part(g, topo);
  PartitionResult res = part.partition(4);
  // 4 clusters over 4 nodes: each node is its own cluster.
  EXPECT_EQ(res.clusters, 4);
  std::set<int> ids(res.cluster_of.begin(), res.cluster_of.end());
  EXPECT_EQ(ids.size(), 4u);
}

TEST(Partitioner, BalancedObjectiveLowersMaxRankLogged) {
  sim::Topology topo(8, 1);
  CommGraph g(8);
  // A "hot" pair (0,1) with massive mutual traffic plus a chain; the
  // min-total partition keeps 0 and 1 together no matter the imbalance
  // elsewhere; the balanced objective may split differently.
  for (int i = 0; i < 8; ++i)
    for (int j = i + 1; j < 8; ++j) g.add_traffic(i, j, 10);
  g.add_traffic(0, 7, 5000);
  g.add_traffic(0, 6, 5000);
  Partitioner part(g, topo);
  PartitionResult total = part.partition(4, Objective::kMinTotalLogged);
  PartitionResult bal = part.partition(4, Objective::kBalancedLogged);
  EXPECT_LE(bal.max_rank_logged, total.max_rank_logged);
}

TEST(Partitioner, DeterministicAcrossCalls) {
  sim::Topology topo(8, 1);
  CommGraph g(8);
  for (int i = 0; i < 8; ++i)
    for (int j = i + 1; j < 8; ++j) g.add_traffic(i, j, static_cast<uint64_t>(i * 13 + j * 7));
  Partitioner part(g, topo);
  EXPECT_EQ(part.partition(3).cluster_of, part.partition(3).cluster_of);
}

// ---------------------------------------------------------------------------
// Flat traffic matrix (the Machine's hot-path accumulator).
// ---------------------------------------------------------------------------

TEST(TrafficMatrix, AccumulatesAndGrows) {
  mpi::TrafficMatrix t(16);
  // More distinct destinations than the initial row capacity forces growth.
  for (int d = 1; d < 16; ++d) t.add(0, d, static_cast<uint64_t>(d));
  for (int d = 1; d < 16; ++d) t.add(0, d, static_cast<uint64_t>(d));
  for (int d = 1; d < 16; ++d)
    EXPECT_EQ(t.bytes(0, d), static_cast<uint64_t>(2 * d)) << "dst " << d;
  EXPECT_EQ(t.bytes(0, 0), 0u);
  EXPECT_EQ(t.bytes(3, 5), 0u);
  EXPECT_EQ(t.total_bytes(), static_cast<uint64_t>(2 * (15 * 16) / 2));
}

TEST(TrafficMatrix, MapViewAndGraphAgree) {
  mpi::TrafficMatrix t(6);
  util::Pcg32 rng(42, 1);
  for (int i = 0; i < 200; ++i) {
    int s = static_cast<int>(rng.next_bounded(6));
    int d = static_cast<int>(rng.next_bounded(6));
    t.add(s, d, 1 + rng.next_bounded(1000));
  }
  auto map = t.as_map();
  uint64_t map_total = 0;
  for (const auto& [key, b] : map) {
    EXPECT_EQ(t.bytes(key.first, key.second), b);
    map_total += b;
  }
  EXPECT_EQ(map_total, t.total_bytes());
  // Both construction paths yield the same graph.
  CommGraph from_flat = CommGraph::from_traffic(6, t);
  CommGraph from_map = CommGraph::from_traffic(6, map);
  for (int a = 0; a < 6; ++a)
    for (int b = 0; b < 6; ++b)
      EXPECT_EQ(from_flat.traffic(a, b), from_map.traffic(a, b))
          << a << "->" << b;
}

// ---------------------------------------------------------------------------
// CSR graph: incremental cut accounting.
// ---------------------------------------------------------------------------

TEST(CommGraph, CutDeltaMatchesRecompute) {
  const int n = 12;
  CommGraph g(n);
  util::Pcg32 rng(7, 3);
  for (int i = 0; i < 80; ++i) {
    int a = static_cast<int>(rng.next_bounded(n));
    int b = static_cast<int>(rng.next_bounded(n));
    if (a != b) g.add_traffic(a, b, 1 + rng.next_bounded(500));
  }
  std::vector<int> part(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) part[static_cast<size_t>(r)] = r % 3;
  const uint64_t base = g.logged_bytes(part);
  for (int v = 0; v < n; ++v) {
    for (int to = 0; to < 3; ++to) {
      std::vector<int> moved = part;
      moved[static_cast<size_t>(v)] = to;
      const int64_t expect = static_cast<int64_t>(g.logged_bytes(moved)) -
                             static_cast<int64_t>(base);
      EXPECT_EQ(g.cut_delta(part, v, to), expect) << "v=" << v << " to=" << to;
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline parity: brute-force optima, seed equivalence, delta validation,
// and determinism across the flat and multilevel paths.
// ---------------------------------------------------------------------------

CommGraph random_graph(int nranks, uint64_t seed, int edges, uint64_t wmax) {
  CommGraph g(nranks);
  util::Pcg32 rng(seed, 11);
  for (int i = 0; i < edges; ++i) {
    int a = static_cast<int>(rng.next_bounded(static_cast<uint32_t>(nranks)));
    int b = static_cast<int>(rng.next_bounded(static_cast<uint32_t>(nranks)));
    if (a != b) g.add_traffic(a, b, 1 + rng.next_bounded(static_cast<uint32_t>(wmax)));
  }
  return g;
}

// Exhaustive optimum over all ways to put `g` node-groups into exactly k
// non-empty clusters within the partitioner's size slack (ceil(g/k) + 1).
struct BruteOpt {
  uint64_t total = 0;
  uint64_t max_rank = 0;
};
BruteOpt brute_force(const CommGraph& graph, const sim::Topology& topo, int k) {
  const int g = topo.nodes();
  const int cap = ((g + k - 1) / k) + 1;
  std::vector<int> assign(static_cast<size_t>(g), 0);
  BruteOpt best;
  uint64_t best_total = ~0ull;
  uint64_t best_max = ~0ull;
  std::vector<int> cluster_of(static_cast<size_t>(graph.nranks()));
  for (;;) {
    // Feasibility: all k clusters used, sizes within cap.
    std::vector<int> count(static_cast<size_t>(k), 0);
    for (int c : assign) ++count[static_cast<size_t>(c)];
    bool ok = true;
    for (int c = 0; c < k; ++c)
      if (count[static_cast<size_t>(c)] == 0 || count[static_cast<size_t>(c)] > cap)
        ok = false;
    if (ok) {
      for (int r = 0; r < graph.nranks(); ++r)
        cluster_of[static_cast<size_t>(r)] = assign[static_cast<size_t>(topo.node_of(r))];
      const uint64_t total = graph.logged_bytes(cluster_of);
      auto per_rank = graph.logged_bytes_per_rank(cluster_of);
      const uint64_t mx =
          per_rank.empty() ? 0 : *std::max_element(per_rank.begin(), per_rank.end());
      best_total = std::min(best_total, total);
      best_max = std::min(best_max, mx);
    }
    // Next assignment (odometer).
    int i = 0;
    while (i < g && ++assign[static_cast<size_t>(i)] == k) {
      assign[static_cast<size_t>(i)] = 0;
      ++i;
    }
    if (i == g) break;
  }
  best.total = best_total;
  best.max_rank = best_max;
  return best;
}

// Planted communities over the node-groups plus light random cross noise:
// the structure a real traced app exhibits and the regime where the greedy
// tool is expected to find the optimum. (On dense *uniform* random graphs
// every greedy partitioner — the seed included — can land several percent
// off the exhaustive optimum; seed parity there is covered by
// PipelineMatchesSeedReference below.)
CommGraph planted_graph(const sim::Topology& topo, int communities,
                        uint64_t seed) {
  const int n = topo.nranks();
  CommGraph g(n);
  util::Pcg32 rng(seed, 17);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const int ga = topo.node_of(a), gb = topo.node_of(b);
      if (ga == gb) continue;
      if (ga % communities == gb % communities)
        g.add_traffic(a, b, 2000 + rng.next_bounded(200));  // heavy intra
      else if (rng.next_bounded(3) == 0)
        g.add_traffic(a, b, 1 + rng.next_bounded(30));  // light noise
    }
  }
  return g;
}

TEST(Partitioner, WithinTwoPercentOfBruteForceOptimum) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    sim::Topology topo(8, 2);  // 8 groups, 16 ranks
    CommGraph g = planted_graph(topo, 3, seed);
    Partitioner part(g, topo);
    BruteOpt opt = brute_force(g, topo, 3);
    PartitionResult total = part.partition(3, Objective::kMinTotalLogged);
    EXPECT_LE(total.logged_bytes, opt.total + opt.total / 50)
        << "seed " << seed << " (opt " << opt.total << ")";
    PartitionResult bal = part.partition(3, Objective::kBalancedLogged);
    EXPECT_LE(bal.max_rank_logged, opt.max_rank + opt.max_rank / 50)
        << "seed " << seed << " (opt max " << opt.max_rank << ")";
  }
}

TEST(Partitioner, PipelineMatchesSeedReference) {
  // The heap agglomeration and delta refinement replicate the seed greedy
  // order and acceptance rule, so the flat pipeline's quality must be at
  // least the seed's on arbitrary graphs (and is identical on most).
  for (uint64_t seed : {11u, 12u, 13u}) {
    sim::Topology topo(16, 2);  // 32 ranks over 16 nodes
    CommGraph g = random_graph(32, seed, 200, 5000);
    Partitioner part(g, topo);
    for (auto obj : {Objective::kMinTotalLogged, Objective::kBalancedLogged}) {
      PartitionResult fast = part.partition(4, obj);
      PartitionResult ref = part.partition_reference(4, obj);
      if (obj == Objective::kMinTotalLogged) {
        EXPECT_LE(fast.logged_bytes, ref.logged_bytes + ref.logged_bytes / 50)
            << "seed " << seed;
      } else {
        EXPECT_LE(fast.max_rank_logged,
                  ref.max_rank_logged + ref.max_rank_logged / 50)
            << "seed " << seed;
      }
    }
  }
}

TEST(Partitioner, DeltaObjectiveMatchesRecomputeAfterEveryMove) {
  // validate_deltas recomputes logged_bytes()/per-rank from scratch after
  // every applied refinement move and aborts on any divergence from the
  // incremental tables — for both objectives, flat and multilevel paths.
  for (uint64_t seed : {21u, 22u}) {
    sim::Topology topo(12, 2);
    CommGraph g = random_graph(24, seed, 150, 3000);
    Partitioner part(g, topo);
    for (auto obj : {Objective::kMinTotalLogged, Objective::kBalancedLogged}) {
      for (bool multilevel : {false, true}) {
        PartitionConfig cfg;
        cfg.objective = obj;
        cfg.multilevel = multilevel;
        cfg.coarsen_target = 6;  // force real coarsening on this small graph
        cfg.validate_deltas = true;
        PartitionResult res = part.partition(4, cfg);
        EXPECT_EQ(res.clusters, 4);
        std::set<int> ids(res.cluster_of.begin(), res.cluster_of.end());
        EXPECT_EQ(ids.size(), 4u);
      }
    }
  }
}

TEST(Partitioner, FlatAndMultilevelPathsAreDeterministic) {
  sim::Topology topo(16, 2);
  CommGraph g = random_graph(32, 33, 250, 4000);
  Partitioner part(g, topo);
  for (bool multilevel : {false, true}) {
    PartitionConfig cfg;
    cfg.multilevel = multilevel;
    cfg.coarsen_target = 8;
    PartitionResult a = part.partition(4, cfg);
    PartitionResult b = part.partition(4, cfg);
    EXPECT_EQ(a.cluster_of, b.cluster_of) << "multilevel=" << multilevel;
    EXPECT_EQ(a.logged_bytes, b.logged_bytes);
  }
}

TEST(Partitioner, MultilevelRecoversPlantedCommunities) {
  // Interleaved communities at a size where the V-cycle actually coarsens;
  // both pipelines must find the planted cut exactly.
  const int n = 64;
  sim::Topology topo(n, 1);
  CommGraph g(n);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (a % 4 == b % 4) g.add_traffic(a, b, 1000);
  g.add_traffic(0, 1, 1);  // weak cross links
  g.add_traffic(2, 3, 1);
  Partitioner part(g, topo);
  PartitionConfig ml;
  ml.multilevel = true;
  ml.coarsen_target = 16;
  PartitionResult multi = part.partition(4, ml);
  PartitionResult flat = part.partition(4);
  EXPECT_EQ(multi.logged_bytes, 2u);  // only the two weak links are cut
  EXPECT_EQ(flat.logged_bytes, multi.logged_bytes);
}

}  // namespace
}  // namespace spbc::clustering

// Micro-bench: sender-log append throughput under a many-small-messages
// stream — the bookkeeping constant behind Table 2.
//
// Each rank streams batches of small eager messages to a partner in the
// other cluster (every send crosses the cluster cut, so every send is
// logged) with a slice of compute per batch, roughly the comm/compute ratio
// of the paper's kernels. The paper reports the resulting failure-free
// overhead at 0.07%..1.14%; the absolute per-message append cost
// (SpbcConfig::log_overhead + bytes / log_memcpy_bw) is also derived from
// the elapsed-time delta so the constant is visible directly, not only as a
// percentage of an application run.
//
// Flags: --ranks --ppn --batches --batch --bytes --compute-us --seed

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/presets.hpp"
#include "core/spbc.hpp"
#include "mpi/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace spbc;

namespace {

struct Opts {
  int ranks = 16;
  int ppn = 8;
  int batches = 50;
  int batch = 16;       // messages per batch per rank
  double compute_us = 50.0;  // compute per batch
  uint64_t seed = 1;
};

struct RunOut {
  bool ok = false;
  double elapsed = 0;
  uint64_t msgs_logged = 0;
  uint64_t bytes_logged = 0;
};

RunOut run_stream(const Opts& o, uint64_t bytes, bool with_spbc) {
  mpi::MachineConfig mc;
  mc.nranks = o.ranks;
  mc.ranks_per_node = o.ppn;
  mc.seed = o.seed;
  std::unique_ptr<mpi::ProtocolHooks> proto;
  core::SpbcProtocol* spbc = nullptr;
  if (with_spbc) {
    core::SpbcConfig scfg;
    scfg.checkpoint_every = 0;  // pure logging-path measurement, as Table 2
    auto p = std::make_unique<core::SpbcProtocol>(scfg);
    spbc = p.get();
    proto = std::move(p);
  } else {
    proto = baselines::make_native();
  }
  mpi::Machine m(mc, std::move(proto));
  // Two clusters split at the node boundary; partners straddle the cut so
  // every data message is inter-cluster and hits the sender log.
  std::vector<int> map(static_cast<size_t>(o.ranks));
  for (int r = 0; r < o.ranks; ++r) map[static_cast<size_t>(r)] = r < o.ranks / 2 ? 0 : 1;
  m.set_cluster_of(map);

  const int half = o.ranks / 2;
  const sim::Time compute = o.compute_us * 1e-6;
  m.launch([&, bytes](mpi::Rank& r) {
    const mpi::Comm& w = r.world();
    const int peer = (r.rank() + half) % o.ranks;
    for (int b = 0; b < o.batches; ++b) {
      std::vector<mpi::Request> reqs;
      reqs.reserve(static_cast<size_t>(2 * o.batch));
      for (int i = 0; i < o.batch; ++i) {
        reqs.push_back(r.irecv(peer, 1, w));
        reqs.push_back(r.isend(
            peer, 1,
            mpi::Payload::make_synthetic(bytes, static_cast<uint64_t>(b * o.batch + i)),
            w));
      }
      r.waitall(reqs);
      r.compute(compute);
    }
  });
  mpi::RunResult res = m.run();
  RunOut out;
  out.ok = res.completed;
  out.elapsed = res.finish_time;
  if (spbc != nullptr) {
    for (int r = 0; r < o.ranks; ++r) {
      out.msgs_logged += spbc->log_of(r).messages_appended();
      out.bytes_logged += spbc->log_of(r).bytes_appended();
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  Opts o;
  o.ranks = static_cast<int>(cli.get_int("ranks", o.ranks));
  o.ppn = static_cast<int>(cli.get_int("ppn", std::min(o.ppn, o.ranks / 2)));
  o.batches = static_cast<int>(cli.get_int("batches", o.batches));
  o.batch = static_cast<int>(cli.get_int("batch", o.batch));
  o.compute_us = cli.get_double("compute-us", o.compute_us);
  o.seed = static_cast<uint64_t>(cli.get_int("seed", 1));

  std::printf("== Micro: sender-log append rate (many small messages) ==\n");
  std::printf("ranks=%d ppn=%d batches=%d batch=%d compute/batch=%.1fus\n\n",
              o.ranks, o.ppn, o.batches, o.batch, o.compute_us);

  util::Table table({"Payload B", "native (s)", "SPBC (s)", "overhead %",
                     "log msgs/s", "log MB/s", "append cost ns/msg"});
  for (uint64_t bytes : {64ull, 512ull, 4096ull}) {
    RunOut native = run_stream(o, bytes, /*with_spbc=*/false);
    RunOut spbc_run = run_stream(o, bytes, /*with_spbc=*/true);
    if (!native.ok || !spbc_run.ok) {
      table.add_row({std::to_string(bytes), "fail", "fail", "-", "-", "-", "-"});
      continue;
    }
    double ovh = (spbc_run.elapsed - native.elapsed) / native.elapsed * 100.0;
    double per_rank_msgs =
        static_cast<double>(spbc_run.msgs_logged) / o.ranks;
    double append_ns = per_rank_msgs > 0
                           ? (spbc_run.elapsed - native.elapsed) / per_rank_msgs * 1e9
                           : 0.0;
    table.add_row(
        {std::to_string(bytes), util::Table::fmt(native.elapsed, 4),
         util::Table::fmt(spbc_run.elapsed, 4), util::Table::fmt(ovh, 3),
         util::Table::fmt(spbc_run.msgs_logged / spbc_run.elapsed, 0),
         util::Table::fmt(spbc_run.bytes_logged / 1.0e6 / spbc_run.elapsed, 2),
         util::Table::fmt(append_ns, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "(paper, Table 2: whole-app overhead 0.07%%..1.14%% — the append is a\n"
      " memcpy into sender memory plus fixed bookkeeping; the ns/msg column\n"
      " is that constant recovered from the elapsed-time delta)\n");
  return 0;
}

// Ablation: elastic recovery — spare-node hot-swap vs shrunk restarts, with
// and without online repartitioning.
//
// A Poisson storm of PERMANENT node losses (the node never returns; its
// staged fragments die with it) runs against the same workload under a grid
// of arms: spare pool {0, --spares} x streaming-repartitioner cadence
// {off, --repart-period}. With spares pooled, each loss hot-swaps the dead
// node's ranks onto idle hardware and rebuilds their state from surviving
// XOR fragments; with the pool empty the machine degrades to shrunk
// restarts — survivors absorb the dead node's ranks, doubling NIC load and
// breaking cluster colocation.
//
// The merit figure is total lost work, ranks x (finish - t_base), with
// t_base the checkpoint-free failure-free time. Gate rows at the bottom
// print "pass"/"fail" tokens that CI greps:
//   * spares-cut-lost-work — the spare-pool arm strictly beats the no-spare
//     arm on lost work under the identical storm;
//   * rebuild-no-pfs — every spare rebuild was served from redundancy
//     fragments (swap count > 0, zero PFS restores);
//   * determinism — the spare-pool run is bit-identical across engine shard
//     layouts (2 queues vs one-per-cluster, threads=1).

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/redundancy.hpp"
#include "util/rng.hpp"

using namespace spbc;

namespace {

struct FailureEvent {
  sim::Time at = 0;
  int victim = -1;
};

struct Outcome {
  bool ok = false;
  sim::Time finish = 0;
  double lost_work = 0;  // ranks x (finish - t_base)
  uint64_t checkpoints = 0;
  uint64_t spare_swaps = 0;
  uint64_t shrink_restarts = 0;
  uint64_t repartitions = 0;
  uint64_t pfs_restores = 0;
  uint64_t rebuilds = 0;
  uint64_t epoch_fallbacks = 0;
};

Outcome run_one(const harness::ScenarioConfig& base,
                const std::vector<int>& cluster_of,
                const std::vector<FailureEvent>& storm, sim::Time t_base,
                int spares, double repart_period, int engine_shards) {
  harness::ScenarioConfig cfg = base;
  cfg.spbc.control.repartition_period = repart_period;
  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  mc.engine_shards = engine_shards;
  mc.engine_threads = 1;  // elastic rebind mutates serial machine state
  mc.spare_nodes = spares;
  mc.default_failure_kind = mpi::FailureKind::kNodePermanent;
  mc.abort_on_deadlock = false;
  auto proto = std::make_unique<core::SpbcProtocol>(cfg.spbc);
  core::SpbcProtocol* spbc = proto.get();
  mpi::Machine m(mc, std::move(proto));
  m.set_cluster_of(cluster_of);

  const apps::AppInfo& info = apps::find_app(cfg.app);
  apps::AppConfig acfg = cfg.app_cfg;
  m.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });
  for (const FailureEvent& f : storm) m.inject_failure(f.at, f.victim);

  mpi::RunResult res = m.run();
  Outcome out;
  out.ok = res.completed;
  if (!out.ok) return out;
  out.finish = res.finish_time;
  out.lost_work = static_cast<double>(cfg.nranks) * (res.finish_time - t_base);
  out.checkpoints = spbc->checkpoints_taken();
  out.spare_swaps = m.spare_swaps();
  out.shrink_restarts = m.shrink_restarts();
  out.repartitions = spbc->control_plane().stats().repartitions;
  const ckpt::StagingStats& st = spbc->staging().stats();
  out.pfs_restores = st.restores_by_level[2];
  out.rebuilds = st.rebuild_restores;
  out.epoch_fallbacks = st.epoch_fallbacks;
  if (std::getenv("SPBC_ELASTIC_DEBUG")) {
    std::printf(
        "[dbg] spares=%d finish=%.4f restores L=%llu P=%llu F=%llu "
        "rebuilds=%llu retries=%llu fallbacks=%llu parity=%llu reprot=%llu "
        "exhausted=%llu swaps=%llu shrinks=%llu\n",
        spares, out.finish, (unsigned long long)st.restores_by_level[0],
        (unsigned long long)st.restores_by_level[1],
        (unsigned long long)st.restores_by_level[2],
        (unsigned long long)st.rebuild_restores,
        (unsigned long long)st.rebuild_retries,
        (unsigned long long)st.epoch_fallbacks,
        (unsigned long long)st.parity_fragments,
        (unsigned long long)st.reprotections,
        (unsigned long long)st.retries_exhausted,
        (unsigned long long)out.spare_swaps,
        (unsigned long long)out.shrink_restarts);
  }
  return out;
}

/// Poisson storm of permanent losses over the mid-run window, victims drawn
/// from DISTINCT home nodes (a second hit on an already-retired node would
/// coalesce into the first and shrink the ablation's contrast). Spaced by
/// detection + restart + a re-protection margin so each loss lands on a
/// machine that has finished absorbing the previous one — the overlapping
/// case is covered by the failure-matrix and elastic test suites.
std::vector<FailureEvent> make_storm(const harness::ScenarioConfig& cfg,
                                     sim::Time t_base,
                                     const bench::BenchOpts& o,
                                     int max_failures) {
  std::vector<FailureEvent> storm;
  util::Pcg32 rng(cfg.machine.seed, 0xe1a5);
  const int nodes = cfg.nranks / cfg.ranks_per_node;
  // The window opens mid-run, past the first committed checkpoint wave and
  // its background parity promotion: a loss before any epoch is protected
  // restarts from scratch and exercises nothing elastic-specific.
  const double mtbf = 0.15 * t_base;
  const sim::Time last_at = 0.85 * t_base;
  std::set<int> hit_nodes;
  sim::Time t = 0.45 * t_base;
  while (static_cast<int>(storm.size()) < max_failures) {
    const double u = (rng.next_u32() + 0.5) / 4294967296.0;
    t += -mtbf * std::log(1.0 - u);
    if (t > last_at) break;
    int victim = -1;
    for (int tries = 0; tries < 64 && victim < 0; ++tries) {
      const int cand =
          static_cast<int>(rng.next_bounded(static_cast<uint32_t>(cfg.nranks)));
      if (hit_nodes.insert(cand / cfg.ranks_per_node).second) victim = cand;
    }
    if (victim < 0) break;  // every node already hit
    storm.push_back({t, victim});
    if (static_cast<int>(hit_nodes.size()) >= nodes - 2) break;
    t += 0.05 * t_base;  // detection + restart + fragment re-protection
  }
  return storm;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  if (o.spares <= 0) o.spares = 2;
  if (o.repart_period == 0) o.repart_period = -1;  // -1 = auto from t_base
  bench::print_header("Ablation: elastic recovery (spares / shrink / repartition)",
                      o);

  const int nodes = o.ranks / o.ppn;
  const int k = std::min(8, nodes);
  const std::string app = "MiniGhost";

  harness::ScenarioConfig base =
      bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);
  base.machine.spare_nodes = 0;  // per-arm below
  base.spbc.control.repartition_period = 0;
  base.spbc.storage = ckpt::StorageLevel::kPfs;
  base.spbc.async_staging = true;
  base.spbc.redundancy.kind = ckpt::SchemeKind::kXorGroup;
  // Same cost regime as ablation_control: a LOCAL write the app waits for
  // and a PFS far slower than the burst rate, so restores that fall through
  // to the PFS (or rework from lost progress) carry real cost — the regime
  // where a spare pool can pay for itself.
  base.spbc.storage_model.local_latency = 5e-3;
  base.spbc.storage_model.pfs_bw = 2e7;
  base.spbc.snapshot_pad_bytes = 1 << 20;
  const std::vector<int> cluster_of = harness::compute_cluster_map(base);

  // t_base: checkpoint-free failure-free time — the lost-work zero point.
  harness::ScenarioConfig base_free = base;
  base_free.spbc.checkpoint_every = 0;
  base_free.spbc.storage = ckpt::StorageLevel::kNone;
  Outcome baseline =
      run_one(base_free, cluster_of, {}, 0, /*spares=*/0, 0, o.shards);
  if (!baseline.ok) {
    std::printf("baseline run failed\n");
    return 1;
  }
  const sim::Time t_base = baseline.finish;
  const double repart_period =
      o.repart_period < 0 ? 0.05 * t_base : o.repart_period;

  const int max_failures = std::min(4, nodes - 2);
  const std::vector<FailureEvent> storm = make_storm(base, t_base, o,
                                                     max_failures);
  std::printf("workload: %s, %d ranks on %d nodes, t_base %.3fs; storm: %zu "
              "permanent node losses\n\n",
              app.c_str(), o.ranks, nodes, t_base, storm.size());

  util::Table table({"Spares", "Repart", "Finish", "Lost work", "Ckpts",
                     "Swaps", "Shrinks", "Moves", "PFS restores", "Rebuilds"});
  auto add_row = [&](int spares, double period, const Outcome& out) {
    table.add_row({std::to_string(spares),
                   period > 0 ? util::Table::fmt(period, 3) : "off",
                   out.ok ? util::Table::fmt(out.finish, 4) : "fail",
                   out.ok ? util::Table::fmt(out.lost_work, 2) : "fail",
                   std::to_string(out.checkpoints),
                   std::to_string(out.spare_swaps),
                   std::to_string(out.shrink_restarts),
                   std::to_string(out.repartitions),
                   std::to_string(out.pfs_restores),
                   std::to_string(out.rebuilds)});
  };

  Outcome grid[2][2];
  const int spare_arms[2] = {0, o.spares};
  const double repart_arms[2] = {0, repart_period};
  for (int si = 0; si < 2; ++si)
    for (int ri = 0; ri < 2; ++ri) {
      grid[si][ri] = run_one(base, cluster_of, storm, t_base, spare_arms[si],
                             repart_arms[ri], o.shards);
      add_row(spare_arms[si], repart_arms[ri], grid[si][ri]);
    }
  std::printf("%s\n", table.render().c_str());

  // Gate rows (CI greps "^|" for a "fail" token).
  const Outcome& no_spare = grid[0][0];
  const Outcome& spared = grid[1][0];
  const bool cut = no_spare.ok && spared.ok && !storm.empty() &&
                   spared.lost_work < no_spare.lost_work;
  std::printf("| gate spares-cut-lost-work: %s (spares=%d lost %.2f vs "
              "spares=0 lost %.2f)\n",
              cut ? "pass" : "fail", o.spares, spared.lost_work,
              no_spare.lost_work);

  // Fallbacks (a recovery walking below the committed epoch when group
  // epochs desynced) are a documented degradation and are reported, not
  // gated: even a fallback restore never touches the PFS here.
  const bool no_pfs = spared.ok && spared.spare_swaps > 0 &&
                      spared.rebuilds > 0 && spared.pfs_restores == 0;
  std::printf("| gate rebuild-no-pfs: %s (swaps=%llu rebuilds=%llu "
              "pfs-restores=%llu fallbacks=%llu)\n",
              no_pfs ? "pass" : "fail",
              static_cast<unsigned long long>(spared.spare_swaps),
              static_cast<unsigned long long>(spared.rebuilds),
              static_cast<unsigned long long>(spared.pfs_restores),
              static_cast<unsigned long long>(spared.epoch_fallbacks));

  // Bit-identity across resharded engines (shards=1 is the legacy
  // single-queue engine with a shared jitter stream — exempt from the
  // layout-invariance claim; threads stay 1, required by the elastic rebind).
  Outcome det_a = run_one(base, cluster_of, storm, t_base, o.spares,
                          repart_period, /*shards=*/2);
  Outcome det_b = run_one(base, cluster_of, storm, t_base, o.spares,
                          repart_period, /*shards=*/0);
  const bool det_ok = det_a.ok && det_b.ok && det_a.finish == det_b.finish &&
                      det_a.checkpoints == det_b.checkpoints &&
                      det_a.spare_swaps == det_b.spare_swaps;
  std::printf("| gate determinism: %s (shards=2 finish %.9g vs "
              "shards=per-cluster finish %.9g)\n",
              det_ok ? "pass" : "fail", det_a.finish, det_b.finish);

  return cut && no_pfs && det_ok ? 0 : 1;
}

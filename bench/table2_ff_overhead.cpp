// Table 2: "failure-free overhead of SPBC in percent (16 clusters)" — the
// cost of sender-based payload logging relative to the native library, for
// the configuration that logs the most (16 clusters).
//
// Paper values: AMG 0.26%, CM1 0.63%, GTC 1.14%, MILC 0.07%, MiniFE 0.08%,
// MiniGhost 0.36% — i.e. at most ~1%.

#include "bench_common.hpp"

using namespace spbc;

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Table 2: failure-free overhead of SPBC (16 clusters)", o);

  int nodes = o.ranks / o.ppn;
  int k = std::min(16, nodes);

  util::Table table({"App", "native (s)", "SPBC (s)", "overhead %"});
  for (const auto& app : bench::paper_apps()) {
    harness::ScenarioConfig native_cfg =
        bench::make_config(o, app, k, harness::ProtocolKind::kNative);
    harness::ScenarioResult native = harness::run_failure_free(native_cfg);

    harness::ScenarioConfig spbc_cfg =
        bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);
    spbc_cfg.spbc.checkpoint_every = 0;  // the paper excludes checkpointing
    harness::ScenarioResult spbc = harness::run_failure_free(spbc_cfg);

    if (!native.run.completed || !spbc.run.completed) {
      table.add_row({app, "fail", "fail", "-"});
      continue;
    }
    double overhead = (spbc.elapsed - native.elapsed) / native.elapsed * 100.0;
    table.add_row({app, util::Table::fmt(native.elapsed, 4),
                   util::Table::fmt(spbc.elapsed, 4),
                   util::Table::fmt(overhead, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(paper: 0.07%% .. 1.14%% — logging payloads in sender memory is\n"
              " nearly free compared to the application's own work)\n");
  return 0;
}

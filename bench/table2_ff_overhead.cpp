// Table 2: "failure-free overhead of SPBC in percent (16 clusters)" — the
// cost of sender-based payload logging relative to the native library, for
// the configuration that logs the most (16 clusters).
//
// Paper values: AMG 0.26%, CM1 0.63%, GTC 1.14%, MILC 0.07%, MiniFE 0.08%,
// MiniGhost 0.36% — i.e. at most ~1%.

#include "bench_common.hpp"

using namespace spbc;

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Table 2: failure-free overhead of SPBC (16 clusters)", o);

  int nodes = o.ranks / o.ppn;
  int k = std::min(16, nodes);

  util::Table table({"App", "native (s)", "SPBC (s)", "overhead %"});
  for (const auto& app : bench::paper_apps()) {
    harness::ScenarioConfig native_cfg =
        bench::make_config(o, app, k, harness::ProtocolKind::kNative);
    harness::ScenarioResult native = harness::run_failure_free(native_cfg);

    harness::ScenarioConfig spbc_cfg =
        bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);
    spbc_cfg.spbc.checkpoint_every = 0;  // the paper excludes checkpointing
    harness::ScenarioResult spbc = harness::run_failure_free(spbc_cfg);

    if (!native.run.completed || !spbc.run.completed) {
      table.add_row({app, "fail", "fail", "-"});
      continue;
    }
    double overhead = (spbc.elapsed - native.elapsed) / native.elapsed * 100.0;
    table.add_row({app, util::Table::fmt(native.elapsed, 4),
                   util::Table::fmt(spbc.elapsed, 4),
                   util::Table::fmt(overhead, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(paper: 0.07%% .. 1.14%% — logging payloads in sender memory is\n"
              " nearly free compared to the application's own work)\n\n");

  // Companion: the checkpoint *write path* the paper excludes, at the bench's
  // checkpoint interval. Async staging (ckpt/staging.hpp) charges the member
  // only the node-local write and drains LOCAL -> PARTNER -> PFS in the
  // background, so its overhead approaches the LOCAL write time while a
  // synchronous PFS write stalls the member for the full storage latency.
  const std::string app = "MiniGhost";
  harness::ScenarioConfig free_cfg =
      bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);
  harness::ScenarioResult free_run = harness::run_failure_free(free_cfg);
  util::Table ckpt_table({"Write mode", "elapsed (s)", "overhead %", "ckpts"});
  if (free_run.run.completed) {
    struct Mode {
      const char* name;
      ckpt::StorageLevel level;
      bool async;
    };
    for (const Mode& mode :
         {Mode{"sync-LOCAL", ckpt::StorageLevel::kLocal, false},
          Mode{"sync-PFS", ckpt::StorageLevel::kPfs, false},
          Mode{"async L/P/F", ckpt::StorageLevel::kPfs, true}}) {
      harness::ScenarioConfig cfg = free_cfg;
      cfg.spbc.storage = mode.level;
      cfg.spbc.async_staging = mode.async;
      harness::ScenarioResult res = harness::run_failure_free(cfg);
      if (!res.run.completed) {
        ckpt_table.add_row({mode.name, "fail", "-", "-"});
        continue;
      }
      double ovh = (res.elapsed - free_run.elapsed) / free_run.elapsed * 100.0;
      ckpt_table.add_row({mode.name, util::Table::fmt(res.elapsed, 4),
                          util::Table::fmt(ovh, 3),
                          std::to_string(res.checkpoints)});
    }
    std::printf("Checkpoint write-path overhead (%s, ckpt_every=%d, vs free I/O):\n%s\n",
                app.c_str(), o.ckpt_every, ckpt_table.render().c_str());
  }
  return 0;
}

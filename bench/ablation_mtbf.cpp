// Ablation: efficiency under repeated failures vs MTBF — the paper's
// motivating argument (Section 1: with an expected MTBF between one day and
// a few hours, "simple solutions based on coordinated checkpoints ... will
// not work" because every failure rolls the whole machine back).
//
// A Poisson failure process (seeded, deterministic) kills random ranks
// during a fixed workload. Efficiency = failure-free time / actual time.
// SPBC's containment re-executes one cluster per failure; global coordinated
// checkpointing re-executes everyone, so its efficiency collapses faster as
// the (scaled) MTBF shrinks.
//
// Every row is expected to complete: the marker-based checkpoint wave never
// parks a rank, so the cross-cluster circular wait that the old blocking
// drain barrier could form under repeated recoveries (and that used to make
// high-failure-rate rows report "fail") cannot occur. A row reporting
// "fail" is a protocol regression, not expected behavior — the
// abort_on_deadlock=false below only keeps the sweep alive to report it.

#include <cmath>

#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace spbc;

namespace {

struct Outcome {
  bool ok = false;
  double efficiency = 0;
  int failures = 0;
  // Containment metrics (Section 2.1: rolling back all processes "is a big
  // waste of resources and, consequently, of energy" and causes an IO burst
  // on restart): how many rank-restarts the failures cost, and how many
  // rank-seconds of computation were thrown away and redone.
  uint64_t rank_restarts = 0;
  double wasted_rank_seconds = 0;
};

Outcome run_with_failures(const harness::ScenarioConfig& base, sim::Time t_ff,
                          double mtbf, uint64_t seed) {
  harness::ScenarioConfig cfg = base;
  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  mc.abort_on_deadlock = false;  // a failed row reports "fail", not abort
  if (cfg.protocol == harness::ProtocolKind::kGlobalCoordinated) {
    // nothing special
  }
  auto proto = std::make_unique<core::SpbcProtocol>(cfg.spbc);
  mpi::Machine m(mc, std::move(proto));
  m.set_cluster_of(harness::compute_cluster_map(cfg));
  const apps::AppInfo& info = apps::find_app(cfg.app);
  apps::AppConfig acfg = cfg.app_cfg;
  m.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });

  // Poisson failure schedule over [10% .. 85%] of the failure-free span
  // (recoveries push the real end further out; failures beyond the original
  // span would hit an already-finished run).
  util::Pcg32 rng(seed, 0xfa11);
  Outcome out;
  sim::Time t = t_ff * 0.1;
  for (;;) {
    double u = rng.next_double();
    t += -mtbf * std::log(1.0 - u);
    if (t > t_ff * 0.85) break;
    int victim = static_cast<int>(rng.next_bounded(static_cast<uint32_t>(cfg.nranks)));
    m.inject_failure(t, victim);
    ++out.failures;
    // Give each recovery room: at most one pending failure per detection+
    // restart window keeps the schedule realistic at these scales.
    t += m.config().failure_detection_delay + m.config().restart_delay;
  }

  mpi::RunResult res = m.run();
  out.ok = res.completed;
  if (out.ok) {
    out.efficiency = t_ff / res.finish_time;
    for (const auto& rec : m.recoveries()) {
      out.rank_restarts += rec.target_ops.size();
      out.wasted_rank_seconds += static_cast<double>(rec.target_ops.size()) *
                                 (rec.failure_time - rec.checkpoint_time);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Ablation: efficiency vs MTBF (containment argument)", o);

  // --fracs=2.0,0.5 trims the MTBF sweep (CI smoke-runs a single large-rank
  // row instead of the full five-row sweep).
  std::vector<double> fracs = {2.0, 1.0, 0.5, 0.25, 0.125};
  {
    util::Cli cli(argc, argv);
    std::string arg = cli.get_string("fracs", "");
    if (!arg.empty()) {
      fracs.clear();
      size_t pos = 0;
      while (pos < arg.size()) {
        size_t comma = arg.find(',', pos);
        if (comma == std::string::npos) comma = arg.size();
        fracs.push_back(std::stod(arg.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    }
  }

  int nodes = o.ranks / o.ppn;
  int k = std::min(8, nodes);
  const std::string app = "MiniGhost";

  harness::ScenarioConfig spbc_cfg =
      bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);
  spbc_cfg.spbc.checkpoint_every = 2;
  harness::ScenarioConfig coord_cfg =
      bench::make_config(o, app, k, harness::ProtocolKind::kGlobalCoordinated);
  coord_cfg.spbc.checkpoint_every = 2;

  harness::ScenarioResult ff = harness::run_failure_free(spbc_cfg);
  if (!ff.run.completed) {
    std::printf("failure-free run failed\n");
    return 1;
  }
  std::printf("workload: %s, %d ranks, failure-free time %.3fs\n\n", app.c_str(),
              o.ranks, ff.elapsed);

  util::Table table({"MTBF (frac)", "Failures", "SPBC eff.", "Coord eff.",
                     "SPBC restarts", "Coord restarts", "SPBC wasted rank-s",
                     "Coord wasted rank-s"});
  for (double frac : fracs) {
    double mtbf = ff.elapsed * frac;
    Outcome spbc = run_with_failures(spbc_cfg, ff.elapsed, mtbf, o.seed);
    Outcome coord = run_with_failures(coord_cfg, ff.elapsed, mtbf, o.seed);
    table.add_row({util::Table::fmt(frac, 3), std::to_string(spbc.failures),
                   spbc.ok ? util::Table::fmt(spbc.efficiency, 3) : "fail",
                   coord.ok ? util::Table::fmt(coord.efficiency, 3) : "fail",
                   std::to_string(spbc.rank_restarts),
                   std::to_string(coord.rank_restarts),
                   util::Table::fmt(spbc.wasted_rank_seconds, 2),
                   util::Table::fmt(coord.wasted_rank_seconds, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "(in tightly coupled codes survivors wait for the recovering cluster, so\n"
      " wall-clock efficiency is similar — the paper makes the same point in\n"
      " Section 6.4. Containment's win is the resource bill: SPBC restarts and\n"
      " re-executes one cluster per failure, coordinated restarts everyone —\n"
      " the \"big waste of resources and, consequently, of energy\" of\n"
      " Section 2.1, plus the restart IO burst, scale with those columns)\n");
  return 0;
}

// Figure 6: "Comparison of the performance of HydEE and SPBC in recovery
// (8 clusters)" on the NAS benchmarks BT, LU, MG, SP.
//
// Paper shape: SPBC recovers up to 2x faster than HydEE; HydEE's centralized
// replay coordination makes it sometimes *slower* than the failure-free
// execution (bars above 1.0), while SPBC always stays below 1.0.

#include "bench_common.hpp"

using namespace spbc;

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Figure 6: HydEE vs SPBC recovery (NAS, 8 clusters)", o);

  int nodes = o.ranks / o.ppn;
  int k = std::min(8, nodes);

  util::Table table({"App", "MPICH", "HydEE", "SPBC"});
  for (const auto& app : bench::nas_apps()) {
    // Paper methodology (Sections 6.4/6.5): the failed cluster re-executes
    // the whole run while everyone else replays complete logs — under HydEE
    // every replayed message pays the coordinator round-trip.
    harness::ScenarioConfig spbc_cfg =
        bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);
    spbc_cfg.spbc.checkpoint_every = 0;
    harness::ScenarioResult ff = harness::run_failure_free(spbc_cfg);
    if (!ff.run.completed) {
      table.add_row({app, "1.00", "fail", "fail"});
      continue;
    }
    harness::ScenarioResult spbc =
        harness::run_with_failure(spbc_cfg, ff.elapsed, 0.97);

    harness::ScenarioConfig hyd_cfg =
        bench::make_config(o, app, k, harness::ProtocolKind::kHydee);
    hyd_cfg.spbc.checkpoint_every = 0;
    harness::ScenarioResult hyd = harness::run_with_failure(hyd_cfg, ff.elapsed, 0.97);

    auto fmt = [](const harness::ScenarioResult& r) {
      if (!r.run.completed || r.recoveries.empty() || !r.recoveries.front().complete())
        return std::string("fail");
      return util::Table::fmt(r.normalized_rework(), 3);
    };
    table.add_row({app, "1.00", fmt(hyd), fmt(spbc)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(paper: SPBC up to 2x faster than HydEE; HydEE sometimes above\n"
              " 1.0 because its coordinator serializes every replayed message)\n");
  return 0;
}

// Ablation: checkpoint data reduction (DESIGN.md §15) — content-addressed
// block deltas and stage-boundary LZ/RLE compression, stacked, at equal
// redundancy scheme and checkpoint interval.
//
// Every run carries the synthetic evolving state model (a per-rank buffer
// whose blocks mutate deterministically each epoch), so the reduction layer
// sees realistic churn: deltas capture the mutated blocks, compression eats
// the low-entropy content. The table reports the store-level reduction (raw
// vs stored bytes) and the bytes each staging level actually shipped —
// reduction at LOCAL compounds through PARTNER copies, parity shares and
// the PFS flush. Each variant then takes a mid-run failure in validate mode:
// the recovered run must land on exactly the failure-free checksums (a
// restore that decodes the chain wrong is a silent-corruption bug, not a
// perf trade-off).
//
// CI gates (exit 1 on violation):
//   * delta+compress cuts PARTNER+PFS bytes >= 2x vs raw, same scheme;
//   * every variant's failure run completes with checksums identical to its
//     failure-free run (zero false restore successes);
//   * the delta+compress run is bit-identical across engine shard layouts
//     (encoded sizes feed the control plane, so layout-dependence would fan
//     out into divergent schedules).

#include <string>

#include "bench_common.hpp"

using namespace spbc;

namespace {

std::string kb(uint64_t bytes) { return util::Table::fmt(bytes / 1.0e3, 2); }

struct VariantOutcome {
  bool ok = false;          // both runs completed, checksums identical
  uint64_t raw = 0;         // logical capture bytes (store-level)
  uint64_t stored = 0;      // post-reduction stored bytes
  uint64_t deltas = 0;      // non-full captures
  uint64_t wire_partner = 0;  // PARTNER traffic: copies + parity
  uint64_t wire_pfs = 0;
  double rework = 0;  // normalized rework of the first recovery
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Ablation: checkpoint data reduction", o);

  const int nodes = o.ranks / o.ppn;
  const int k = std::min(8, nodes);
  const uint32_t block =
      o.delta_blocks > 0 ? static_cast<uint32_t>(o.delta_blocks) : 1024;
  const uint64_t state_bytes =
      o.state_bytes > 0 ? static_cast<uint64_t>(o.state_bytes) : 32768;

  harness::ScenarioConfig base =
      bench::make_config(o, "MiniGhost", k, harness::ProtocolKind::kSpbc);
  base.app_cfg.validate = true;  // checksum identity is the point here
  base.spbc.storage = ckpt::StorageLevel::kPfs;
  base.spbc.async_staging = true;
  base.spbc.reduction.block_bytes = block;
  base.spbc.reduction.full_stride =
      static_cast<uint64_t>(o.full_stride < 0 ? 0 : o.full_stride);
  base.spbc.state_model.bytes = state_bytes;
  base.spbc.state_model.block_bytes = block;
  base.spbc.state_model.mutation_rate = o.mutation_rate;
  base.spbc.state_model.seed = o.seed;

  constexpr double kFailFrac = 0.6;
  struct Variant {
    const char* name;
    bool delta;
    bool compress;
  };
  const Variant variants[] = {
      {"raw", false, false},
      {"compress", false, true},
      {"delta", true, false},
      {"delta+compress", true, true},
  };

  util::Table tab({"Variant", "raw KB", "stored KB", "reduction", "deltas",
                   "wire KB L/P/F", "rework", "restore"});
  std::map<std::string, VariantOutcome> out;
  for (const Variant& v : variants) {
    harness::ScenarioConfig cfg = base;
    cfg.spbc.reduction.delta = v.delta;
    cfg.spbc.reduction.compress = v.compress;
    harness::ScenarioResult ff = harness::run_failure_free(cfg);
    if (!ff.run.completed) {
      tab.add_row({v.name, "-", "-", "-", "-", "-", "-", "fail"});
      continue;
    }
    harness::ScenarioResult fr =
        harness::run_with_failure(cfg, ff.elapsed, kFailFrac);
    VariantOutcome& vo = out[v.name];
    vo.raw = ff.ckpt_raw_bytes;
    vo.stored = ff.ckpt_stored_bytes;
    vo.deltas = ff.delta_snapshots;
    vo.wire_partner = ff.bytes_partner_written;
    vo.wire_pfs = ff.bytes_pfs_written;
    vo.rework = fr.normalized_rework();
    // Zero false successes: a "successful" recovery with different
    // checksums is a silent corruption and fails the row outright.
    vo.ok = fr.run.completed && !ff.checksums.empty() &&
            fr.checksums == ff.checksums;
    tab.add_row(
        {v.name, kb(vo.raw), kb(vo.stored),
         util::Table::fmt(
             vo.stored ? static_cast<double>(vo.raw) /
                             static_cast<double>(vo.stored)
                       : 0.0,
             2) + "x",
         std::to_string(vo.deltas),
         kb(ff.bytes_local_written) + "/" + kb(vo.wire_partner) + "/" +
             kb(vo.wire_pfs),
         util::Table::fmt(vo.rework, 3), vo.ok ? "ok" : "fail"});
  }
  std::printf("%s\n", tab.render().c_str());

  // ---- gates -------------------------------------------------------------
  bool gates_ok = true;
  for (const Variant& v : variants) {
    if (!out.count(v.name) || !out[v.name].ok) {
      std::printf("identity gate: %s FAIL (run failed or checksums drifted)\n",
                  v.name);
      gates_ok = false;
    }
  }
  if (out.count("raw") && out.count("delta+compress")) {
    const uint64_t raw_wire =
        out["raw"].wire_partner + out["raw"].wire_pfs;
    const uint64_t red_wire =
        out["delta+compress"].wire_partner + out["delta+compress"].wire_pfs;
    const double cut = red_wire ? static_cast<double>(raw_wire) /
                                      static_cast<double>(red_wire)
                                : 0.0;
    const bool cut_ok = red_wire > 0 && cut >= 2.0;
    std::printf(
        "bytes gate: delta+compress PARTNER+PFS bytes %.2fx below raw "
        "(need >= 2.0) %s\n",
        cut, cut_ok ? "OK" : "FAIL");
    gates_ok = gates_ok && cut_ok;
    const bool deltas_seen = out["delta+compress"].deltas > 0;
    if (!deltas_seen) {
      std::printf("bytes gate: no delta captures were taken FAIL\n");
      gates_ok = false;
    }
  } else {
    gates_ok = false;
  }

  // Shard-layout bit-identity at full reduction: shards=2 vs per-cluster,
  // the documented gate pair (the legacy engine_shards=1 jitter stream is
  // exempt from cross-layout identity, DESIGN.md §12).
  {
    harness::ScenarioConfig cfg = base;
    cfg.spbc.reduction.delta = true;
    cfg.spbc.reduction.compress = true;
    cfg.machine.engine_shards = 2;
    harness::ScenarioResult serial = harness::run_failure_free(cfg);
    cfg.machine.engine_shards = 0;  // one shard per cluster
    harness::ScenarioResult sharded = harness::run_failure_free(cfg);
    const bool shard_ok = serial.run.completed && sharded.run.completed &&
                          serial.checksums == sharded.checksums &&
                          serial.ckpt_stored_bytes ==
                              sharded.ckpt_stored_bytes &&
                          serial.delta_snapshots == sharded.delta_snapshots;
    std::printf("shard gate: delta+compress bit-identical across layouts %s "
                "(checksums %s, raw %llu vs %llu, stored %llu vs %llu, "
                "deltas %llu vs %llu)\n",
                shard_ok ? "OK" : "FAIL",
                serial.checksums == sharded.checksums ? "equal" : "DIFFER",
                static_cast<unsigned long long>(serial.ckpt_raw_bytes),
                static_cast<unsigned long long>(sharded.ckpt_raw_bytes),
                static_cast<unsigned long long>(serial.ckpt_stored_bytes),
                static_cast<unsigned long long>(sharded.ckpt_stored_bytes),
                static_cast<unsigned long long>(serial.delta_snapshots),
                static_cast<unsigned long long>(sharded.delta_snapshots));
    gates_ok = gates_ok && shard_ok;
  }

  return gates_ok ? 0 : 1;
}

// Partitioner scaling study: wall-time and cut quality of the clustering
// pipeline vs the seed algorithm, at 256 / 1024 / 4096 ranks.
//
// The seed partitioner (all-pairs dense aggregation, O(g^3) agglomeration
// rescans, full-recompute Kernighan-Lin) capped clustering studies at ~512
// ranks. The CSR + lazy-heap + delta-refinement pipeline (DESIGN.md #10) is
// near-linear in the traced edge count; this bench measures both on the same
// graphs — synthetic halo/community graphs plus a traced paper app — and
// reports speedup and cut quality relative to the seed and to the block
// partition baseline.
//
// Flags (beyond the common ones):
//   --ranks=N          run only the scale N (default: 256, 1024, 4096)
//   --seed-max-ranks=N largest scale to run the seed algorithm at (def 1024)
//   --budget-ms=B      exit non-zero if any pipeline partition exceeds B ms
//   --compare-seed     exit non-zero if pipeline cut quality regresses >5%
//                      vs the block-partition baseline (CI quality gate)
//   --clusters=K       cluster count (default 8)
//   --app-ranks=N      largest scale to trace the paper app at (default 256)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "clustering/comm_graph.hpp"
#include "clustering/partitioner.hpp"
#include "util/rng.hpp"

using namespace spbc;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// 3D halo exchange pattern (MiniGhost-like): heavy faces to the six grid
// neighbors plus a light deterministic long-range sprinkle (collectives,
// global reductions).
clustering::CommGraph halo3d_graph(int nranks, uint64_t seed) {
  int nx = 1;
  while (nx * nx * nx < nranks) ++nx;
  clustering::CommGraph g(nranks);
  util::Pcg32 rng(seed, 0x9a10);
  for (int r = 0; r < nranks; ++r) {
    const int x = r % nx, y = (r / nx) % nx, z = r / (nx * nx);
    auto at = [&](int xx, int yy, int zz) {
      return ((zz + nx) % nx) * nx * nx + ((yy + nx) % nx) * nx + ((xx + nx) % nx);
    };
    const int faces[6] = {at(x + 1, y, z), at(x - 1, y, z), at(x, y + 1, z),
                          at(x, y - 1, z), at(x, y, z + 1), at(x, y, z - 1)};
    for (int f : faces) {
      if (f == r || f >= nranks) continue;
      g.add_traffic(r, f, 64 * 1024 + (rng.next_u32() & 0xfff));
    }
    // Long-range: 2 light edges per rank.
    for (int j = 0; j < 2; ++j) {
      int peer = static_cast<int>(rng.next_bounded(static_cast<uint32_t>(nranks)));
      if (peer != r) g.add_traffic(r, peer, 1024 + (rng.next_u32() & 0xff));
    }
  }
  return g;
}

// Planted communities interleaved in rank order: heavy intra-community
// traffic, light cross links. The clustering tool should recover them.
clustering::CommGraph community_graph(int nranks, int communities, uint64_t seed) {
  clustering::CommGraph g(nranks);
  util::Pcg32 rng(seed, 7);
  for (int r = 0; r < nranks; ++r) {
    const int c = r % communities;
    for (int j = 0; j < 12; ++j) {
      // Peer inside the community (same residue class).
      int idx = static_cast<int>(
          rng.next_bounded(static_cast<uint32_t>(nranks / communities)));
      int peer = idx * communities + c;
      if (peer != r && peer < nranks)
        g.add_traffic(r, peer, 32 * 1024 + (rng.next_u32() & 0xfff));
    }
    for (int j = 0; j < 2; ++j) {
      int peer = static_cast<int>(rng.next_bounded(static_cast<uint32_t>(nranks)));
      if (peer != r) g.add_traffic(r, peer, 512 + (rng.next_u32() & 0x7f));
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  const int k_req = static_cast<int>(cli.get_int("clusters", 8));
  const int seed_max_ranks = static_cast<int>(cli.get_int("seed-max-ranks", 1024));
  const int app_max_ranks = static_cast<int>(cli.get_int("app-ranks", 256));
  const double budget_ms = cli.get_double("budget-ms", 0.0);
  const bool compare_seed = cli.get_flag("compare-seed");

  std::vector<int> scales = {256, 1024, 4096};
  if (cli.has("ranks")) scales = {o.ranks};

  std::printf("== Partitioner scaling: seed algorithm vs CSR/heap/delta pipeline ==\n");
  std::printf("ppn=%d clusters=%d seed-max-ranks=%d\n\n", o.ppn, k_req,
              seed_max_ranks);

  util::Table table({"Graph", "Ranks", "Edges", "flat ms", "multi ms", "seed ms",
                     "speedup", "cut flat", "cut multi", "cut seed", "cut block"});
  bool ok = true;
  double speedup_at_1024 = 0.0;

  for (int nranks : scales) {
    struct Input {
      std::string name;
      clustering::CommGraph graph;
    };
    std::vector<Input> inputs;
    inputs.push_back({"halo3d", halo3d_graph(nranks, o.seed)});
    inputs.push_back({"community", community_graph(nranks, 8, o.seed)});
    if (nranks <= app_max_ranks) {
      // Trace a real paper app at this scale (Section 6.1 methodology).
      mpi::MachineConfig mc;
      mc.nranks = nranks;
      mc.ranks_per_node = o.ppn;
      mc.seed = o.seed;
      mpi::Machine tracer(mc, baselines::make_native());
      tracer.set_cluster_of(baselines::single_cluster_map(nranks));
      const apps::AppInfo& info = apps::find_app("MiniGhost");
      apps::AppConfig acfg;
      acfg.iters = 3;
      acfg.validate = false;
      tracer.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });
      if (tracer.run().completed)
        inputs.push_back({"MiniGhost",
                          clustering::CommGraph::from_traffic(nranks, tracer.traffic())});
    }

    for (const Input& in : inputs) {
      sim::Topology topo = sim::Topology::for_ranks(nranks, o.ppn);
      const int k = std::min(k_req, topo.nodes());
      clustering::Partitioner part(in.graph, topo);

      auto t0 = std::chrono::steady_clock::now();
      clustering::PartitionConfig flat_cfg;
      clustering::PartitionResult flat = part.partition(k, flat_cfg);
      const double flat_ms = ms_since(t0);

      t0 = std::chrono::steady_clock::now();
      clustering::PartitionConfig multi_cfg;
      multi_cfg.multilevel = true;
      clustering::PartitionResult multi = part.partition(k, multi_cfg);
      const double multi_ms = ms_since(t0);

      double seed_ms = -1.0;
      clustering::PartitionResult seed_res;
      if (nranks <= seed_max_ranks) {
        t0 = std::chrono::steady_clock::now();
        seed_res = part.partition_reference(k);
        seed_ms = ms_since(t0);
      }

      clustering::PartitionResult block = part.block_partition(k);

      const double best_ms = std::min(flat_ms, multi_ms);
      const double speedup = seed_ms >= 0 ? seed_ms / std::max(best_ms, 1e-3) : 0.0;
      if (nranks == 1024 && speedup > speedup_at_1024) speedup_at_1024 = speedup;

      table.add_row(
          {in.name, std::to_string(nranks), std::to_string(in.graph.nedges()),
           util::Table::fmt(flat_ms, 2), util::Table::fmt(multi_ms, 2),
           seed_ms >= 0 ? util::Table::fmt(seed_ms, 2) : "-",
           seed_ms >= 0 ? util::Table::fmt(speedup, 1) + "x" : "-",
           std::to_string(flat.logged_bytes), std::to_string(multi.logged_bytes),
           seed_ms >= 0 ? std::to_string(seed_res.logged_bytes) : "-",
           std::to_string(block.logged_bytes)});

      if (budget_ms > 0 && (flat_ms > budget_ms || multi_ms > budget_ms)) {
        std::printf("FAIL: %s at %d ranks took %.1f/%.1f ms (budget %.1f ms)\n",
                    in.name.c_str(), nranks, flat_ms, multi_ms, budget_ms);
        ok = false;
      }
      if (compare_seed) {
        // Quality gate: the pipeline must not regress >5% vs the block
        // baseline (and is reported against the seed cut when it ran).
        const auto gate = [&](const char* which, uint64_t cut) {
          if (cut > block.logged_bytes + block.logged_bytes / 20) {
            std::printf("FAIL: %s cut %llu regresses >5%% vs block %llu (%s, %d ranks)\n",
                        which, static_cast<unsigned long long>(cut),
                        static_cast<unsigned long long>(block.logged_bytes),
                        in.name.c_str(), nranks);
            ok = false;
          }
        };
        gate("flat", flat.logged_bytes);
        gate("multilevel", multi.logged_bytes);
        if (seed_ms >= 0 && flat.logged_bytes >
                                seed_res.logged_bytes + seed_res.logged_bytes / 20) {
          std::printf("FAIL: flat cut %llu regresses >5%% vs seed %llu (%s, %d ranks)\n",
                      static_cast<unsigned long long>(flat.logged_bytes),
                      static_cast<unsigned long long>(seed_res.logged_bytes),
                      in.name.c_str(), nranks);
          ok = false;
        }
      }
    }
  }

  std::printf("%s\n", table.render().c_str());
  if (speedup_at_1024 > 0)
    std::printf("best pipeline speedup vs seed at 1024 ranks: %.1fx\n",
                speedup_at_1024);
  std::printf("(cut quality: pipeline == seed on these graphs is expected — the\n"
              " greedy order and refinement acceptance rule are replicated; the\n"
              " win is wall-time, which is what unlocked the 4096-rank row)\n");
  return ok ? 0 : 1;
}

#pragma once
// Shared plumbing for the experiment benches. Each bench binary reproduces
// one table or figure of the paper (see DESIGN.md's per-experiment index)
// and prints the same rows/series the paper reports. All binaries run with
// no arguments at a scaled-down default and accept flags to reach the
// paper's full 512-rank configuration:
//   --ranks=N --ppn=N --iters=N --ckpt-every=N --seed=N
//
// Absolute numbers are not expected to match the paper (the substrate is a
// simulator, not the authors' InfiniBand testbed); the shapes are.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace spbc::bench {

struct BenchOpts {
  int ranks = 128;
  int ppn = 8;
  int iters = 6;
  int ckpt_every = 2;
  uint64_t seed = 1;
  double msg_scale = 1.0;
  double compute_scale = 1.0;
  bool use_clustering_tool = true;
  // Staging redundancy scheme override (--scheme {single,partner,xor,rs},
  // --group-size for XOR, --rs-k/--rs-m for Reed-Solomon); empty = the
  // config default (partner).
  std::string scheme;
  int group_size = 4;
  int rs_k = 4;
  int rs_m = 2;
  // System noise, as on the paper's real testbed: OS jitter on compute
  // blocks and latency jitter on the network. Without it a simulator is
  // perfectly synchronous and failure-free runs contain no waits for
  // recovery to win back.
  double compute_noise = 0.08;
  double net_jitter = 0.20;
  // Engine sharding (--shards N, --threads N): 1 = the legacy single-queue
  // engine; 0 = one exec shard per cluster; N = min(N, nclusters). Threads
  // > 1 runs the conservative-lookahead parallel executor (requires
  // node-colocated clusters). See DESIGN.md §12.
  int shards = 1;
  int threads = 1;
  // --agg-rollbacks: aggregated cluster rollback announces (one message per
  // outside rank from the cluster leader instead of the pairwise
  // O(cluster x world) broadcast). Required for failure rows at 16k+ ranks.
  bool agg_rollbacks = false;
  // --tree-markers: flood checkpoint-wave markers over the binomial
  // completion tree (O(members) per wave) instead of the all-to-all member
  // broadcast (O(members^2)). Required past a few thousand ranks — the
  // coordinated arm's wave spans every rank.
  bool tree_markers = false;
  // Control-plane ablation knobs (ablation_control):
  // --mtbf-drift: calm-phase MTBF / storm-phase MTBF ratio of the drifting
  // failure process the self-tuning controller must track.
  double mtbf_drift = 40.0;
  // --scrub-period: background audit-wave cadence in virtual seconds for the
  // controller arm (< 0 = auto-scale to the workload, 0 = scrubbing off).
  double scrub_period = -1.0;
  // --escalate: arm scheme escalation (XOR -> RS on correlated double
  // losses) and include same-group double losses in the storm.
  bool escalate = false;
  // Elastic-recovery knobs (ablation_elastic):
  // --spares: hot-spare nodes appended after the compute nodes; permanent
  // node losses hot-swap onto them until the pool drains, then degrade to
  // shrunk restarts.
  int spares = 0;
  // --repart-period: streaming-repartitioner cadence in virtual seconds
  // (0 = the pinned Section 6.1 map for the whole run).
  double repart_period = 0;
  // Checkpoint data-reduction knobs (ablation_compress; DESIGN.md §15):
  // --compress: stage-boundary LZ/RLE codec applied once at LOCAL capture.
  bool compress = false;
  // --delta-blocks: content-addressed delta-capture block size in bytes
  // (0 = delta encoding off; captures stay full).
  int delta_blocks = 0;
  // --full-stride: delta-chain length bound including the full capture
  // (1 = every capture full, 0 = unbounded chains).
  int full_stride = 8;
  // --state-bytes / --mutate: the synthetic evolving app-state model that
  // gives delta encoding realistic block-level churn (0 bytes = off; the
  // snapshot then carries only protocol + app token state).
  int state_bytes = 0;
  double mutation_rate = 0.10;
};

inline BenchOpts parse_opts(int argc, char** argv) {
  util::Cli cli(argc, argv);
  BenchOpts o;
  o.ranks = static_cast<int>(cli.get_int("ranks", o.ranks));
  o.ppn = static_cast<int>(cli.get_int("ppn", o.ppn));
  o.iters = static_cast<int>(cli.get_int("iters", o.iters));
  o.ckpt_every = static_cast<int>(cli.get_int("ckpt-every", o.ckpt_every));
  o.seed = static_cast<uint64_t>(cli.get_int("seed", 1));
  o.msg_scale = cli.get_double("msg-scale", 1.0);
  o.compute_scale = cli.get_double("compute-scale", 1.0);
  o.compute_noise = cli.get_double("noise", o.compute_noise);
  o.net_jitter = cli.get_double("jitter", o.net_jitter);
  if (cli.get_flag("block-clustering")) o.use_clustering_tool = false;
  o.scheme = cli.get_string("scheme", "");
  o.group_size = static_cast<int>(cli.get_int("group-size", o.group_size));
  o.rs_k = static_cast<int>(cli.get_int("rs-k", o.rs_k));
  o.rs_m = static_cast<int>(cli.get_int("rs-m", o.rs_m));
  o.shards = static_cast<int>(cli.get_int("shards", o.shards));
  o.threads = static_cast<int>(cli.get_int("threads", o.threads));
  o.agg_rollbacks = cli.get_flag("agg-rollbacks");
  o.tree_markers = cli.get_flag("tree-markers");
  o.mtbf_drift = cli.get_double("mtbf-drift", o.mtbf_drift);
  o.scrub_period = cli.get_double("scrub-period", o.scrub_period);
  o.escalate = cli.get_flag("escalate");
  o.spares = static_cast<int>(cli.get_int("spares", o.spares));
  o.repart_period = cli.get_double("repart-period", o.repart_period);
  o.compress = cli.get_flag("compress");
  o.delta_blocks = static_cast<int>(cli.get_int("delta-blocks", o.delta_blocks));
  o.full_stride = static_cast<int>(cli.get_int("full-stride", o.full_stride));
  o.state_bytes = static_cast<int>(cli.get_int("state-bytes", o.state_bytes));
  o.mutation_rate = cli.get_double("mutate", o.mutation_rate);
  if (!o.scheme.empty() && !ckpt::parse_scheme(o.scheme)) {
    std::fprintf(stderr, "unknown --scheme=%s (single|partner|xor|rs)\n",
                 o.scheme.c_str());
    std::exit(2);
  }
  return o;
}

inline harness::ScenarioConfig make_config(const BenchOpts& o, const std::string& app,
                                           int nclusters,
                                           harness::ProtocolKind protocol) {
  harness::ScenarioConfig cfg;
  cfg.app = app;
  cfg.nranks = o.ranks;
  cfg.ranks_per_node = o.ppn;
  cfg.nclusters = nclusters;
  cfg.protocol = protocol;
  cfg.app_cfg.iters = o.iters;
  cfg.app_cfg.validate = false;  // synthetic payloads at bench scale
  cfg.app_cfg.msg_scale = o.msg_scale;
  cfg.app_cfg.compute_scale = o.compute_scale;
  cfg.spbc.checkpoint_every = static_cast<uint64_t>(o.ckpt_every);
  if (!o.scheme.empty()) cfg.spbc.redundancy.kind = *ckpt::parse_scheme(o.scheme);
  cfg.spbc.redundancy.group_size = o.group_size;
  cfg.spbc.redundancy.rs_k = o.rs_k;
  cfg.spbc.redundancy.rs_m = o.rs_m;
  cfg.machine.seed = o.seed;
  cfg.machine.compute_noise_frac = o.compute_noise;
  cfg.machine.net.jitter_frac = o.net_jitter;
  cfg.machine.net.jitter_seed = o.seed;
  cfg.machine.engine_shards = o.shards;
  cfg.machine.engine_threads = o.threads;
  cfg.machine.aggregate_rollbacks = o.agg_rollbacks;
  cfg.machine.tree_ckpt_markers = o.tree_markers;
  cfg.machine.spare_nodes = o.spares;
  cfg.spbc.control.repartition_period = o.repart_period;
  cfg.spbc.reduction.compress = o.compress;
  if (o.delta_blocks > 0) {
    cfg.spbc.reduction.delta = true;
    cfg.spbc.reduction.block_bytes = static_cast<uint32_t>(o.delta_blocks);
  }
  cfg.spbc.reduction.full_stride = static_cast<uint64_t>(
      o.full_stride < 0 ? 0 : o.full_stride);
  if (o.state_bytes > 0) {
    cfg.spbc.state_model.bytes = static_cast<uint64_t>(o.state_bytes);
    cfg.spbc.state_model.block_bytes = cfg.spbc.reduction.block_bytes;
    cfg.spbc.state_model.mutation_rate = o.mutation_rate;
    cfg.spbc.state_model.seed = o.seed;
  }
  cfg.use_clustering_tool = o.use_clustering_tool;
  return cfg;
}

/// Shared deterministic block-mutation payload generator (DESIGN.md §15):
/// the protocol's synthetic evolving state and the bench/test harnesses all
/// derive payloads from the same (seed, rank, epoch) keys, so expected
/// checksums and delta chains can be recomputed anywhere without replaying
/// a run. Epoch e state = make_payload_state(cfg', rank) evolved e times.
inline std::vector<unsigned char> payload_state_at(
    const ckpt::StateModelConfig& cfg, int rank, uint64_t epoch) {
  std::vector<unsigned char> buf = ckpt::make_state(cfg, rank);
  for (uint64_t e = 1; e <= epoch; ++e) ckpt::evolve_state(buf, cfg, rank, e);
  return buf;
}

inline const std::vector<std::string>& paper_apps() {
  static const std::vector<std::string> apps = {"AMG",  "CM1",    "GTC",
                                                "MILC", "MiniFE", "MiniGhost"};
  return apps;
}

inline const std::vector<std::string>& nas_apps() {
  static const std::vector<std::string> apps = {"BT", "LU", "MG", "SP"};
  return apps;
}

inline void print_header(const char* what, const BenchOpts& o) {
  std::printf("== %s ==\n", what);
  std::printf("ranks=%d ppn=%d iters=%d ckpt_every=%d clustering=%s\n\n", o.ranks,
              o.ppn, o.iters, o.ckpt_every,
              o.use_clustering_tool ? "tool[30]" : "block");
}

}  // namespace spbc::bench

// Ablation: clustering strategy (Section 6.6).
//
// The paper's configurations minimize the *total* logged volume, which
// produces very imbalanced per-process logs ("inside one cluster some
// processes have a lot of communication with other clusters while others do
// not have any") and suggests studying balanced strategies. This bench
// compares partitioners at k clusters (--clusters=K, default 8): the tool's
// min-total objective (flat and multilevel pipelines), the balanced
// (min-max per-rank) objective, and a naive block partition — reporting the
// partitioning wall-time per strategy alongside the quality columns.

#include <chrono>

#include "bench_common.hpp"
#include "clustering/comm_graph.hpp"
#include "clustering/partitioner.hpp"

using namespace spbc;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Ablation: clustering objective (Section 6.6)", o);

  int nodes = o.ranks / o.ppn;
  int k = std::min(static_cast<int>(cli.get_int("clusters", 8)), nodes);

  util::Table table({"App", "Strategy", "partition ms", "total logged MB/s",
                     "max rank MB/s", "norm. rework"});

  for (const auto& app : bench::paper_apps()) {
    // Trace once per app.
    harness::ScenarioConfig trace_cfg =
        bench::make_config(o, app, k, harness::ProtocolKind::kNative);
    trace_cfg.app_cfg.iters = std::min(o.iters, 3);
    mpi::MachineConfig mc = trace_cfg.machine;
    mc.nranks = o.ranks;
    mc.ranks_per_node = o.ppn;
    mpi::Machine tracer(mc, baselines::make_native());
    tracer.set_cluster_of(baselines::single_cluster_map(o.ranks));
    const apps::AppInfo& info = apps::find_app(app);
    apps::AppConfig acfg = trace_cfg.app_cfg;
    tracer.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });
    if (!tracer.run().completed) continue;
    clustering::CommGraph graph =
        clustering::CommGraph::from_traffic(o.ranks, tracer.traffic());
    sim::Topology topo = sim::Topology::for_ranks(o.ranks, o.ppn);
    clustering::Partitioner part(graph, topo);

    struct Strategy {
      const char* name;
      clustering::PartitionResult partition;
      double ms = 0;
    };
    auto timed = [&](auto&& fn) {
      auto t0 = std::chrono::steady_clock::now();
      clustering::PartitionResult res = fn();
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      return std::pair<clustering::PartitionResult, double>(std::move(res), ms);
    };
    std::vector<Strategy> strategies;
    {
      auto [res, ms] = timed(
          [&] { return part.partition(k, clustering::Objective::kMinTotalLogged); });
      strategies.push_back({"min-total [30]", std::move(res), ms});
    }
    {
      clustering::PartitionConfig pc;
      pc.multilevel = true;
      auto [res, ms] = timed([&] { return part.partition(k, pc); });
      strategies.push_back({"min-total multi", std::move(res), ms});
    }
    {
      auto [res, ms] = timed(
          [&] { return part.partition(k, clustering::Objective::kBalancedLogged); });
      strategies.push_back({"balanced", std::move(res), ms});
    }
    {
      auto [res, ms] = timed([&] { return part.block_partition(k); });
      strategies.push_back({"block", std::move(res), ms});
    }

    for (const auto& s : strategies) {
      harness::ScenarioConfig cfg =
          bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);
      // Run with the explicit map by bypassing the harness clustering: use a
      // dedicated machine.
      mpi::MachineConfig mc2 = cfg.machine;
      mc2.nranks = o.ranks;
      mc2.ranks_per_node = o.ppn;
      auto proto = std::make_unique<core::SpbcProtocol>(cfg.spbc);
      mpi::Machine m(mc2, std::move(proto));
      m.set_cluster_of(s.partition.cluster_of);
      m.launch([&info, acfg = cfg.app_cfg](mpi::Rank& r) { info.main(r, acfg); });
      mpi::RunResult ffr = m.run();
      if (!ffr.completed) {
        table.add_row({app, s.name, util::Table::fmt(s.ms, 2), "fail", "fail",
                       "fail"});
        continue;
      }
      double elapsed = ffr.finish_time;
      double total_rate = 0, max_rate = 0;
      for (int r = 0; r < o.ranks; ++r) {
        double rate =
            static_cast<double>(m.rank(r).profile().bytes_logged) / 1e6 / elapsed;
        total_rate += rate;
        max_rate = std::max(max_rate, rate);
      }
      // Recovery run with the same map.
      auto proto2 = std::make_unique<core::SpbcProtocol>(cfg.spbc);
      mpi::Machine m2(mc2, std::move(proto2));
      m2.set_cluster_of(s.partition.cluster_of);
      m2.launch([&info, acfg = cfg.app_cfg](mpi::Rank& r) { info.main(r, acfg); });
      m2.inject_failure(elapsed * 0.55, 0);
      mpi::RunResult recr = m2.run();
      std::string rework = "fail";
      if (recr.completed && !m2.recoveries().empty() &&
          m2.recoveries().front().complete()) {
        const auto& rec = m2.recoveries().front();
        double lost = rec.failure_time - rec.checkpoint_time;
        if (lost > 0) rework = util::Table::fmt(rec.rework() / lost, 3);
      }
      table.add_row({app, s.name, util::Table::fmt(s.ms, 2),
                     util::Table::fmt(total_rate, 2), util::Table::fmt(max_rate, 2),
                     rework});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(expected: min-total logs least in aggregate but is imbalanced;\n"
              " the balanced objective trims the per-rank maximum — the memory\n"
              " that actually limits the checkpoint interval)\n");
  return 0;
}

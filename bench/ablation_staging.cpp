// Ablation: asynchronous multi-level checkpoint staging (LOCAL -> PARTNER ->
// PFS) vs synchronous writes, at equal checkpoint interval.
//
// The paper measures checkpointing with free I/O (Section 6.1); this
// ablation turns the cost model on and asks what the write path itself
// costs. Part 1 (failure-free): each storage mode's overhead over the
// no-I/O baseline — async staging must charge the fiber only the LOCAL
// write, so its overhead sits far below a synchronous PFS write of the same
// snapshots. Part 2 (Poisson failures): efficiency of sync-PFS vs async
// staging, plus which level served each restore (LOCAL dies with the failed
// nodes, so PARTNER carries most restores; epoch fallbacks count recoveries
// where a drain-in-progress epoch was lost and an older flushed epoch was
// used). The in-flight-capture high-water mark (ROADMAP memory-bound
// metric) is surfaced for every run.

#include <cmath>

#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace spbc;

namespace {

struct ModeResult {
  bool ok = false;
  double elapsed = 0;
  uint64_t checkpoints = 0;
  uint64_t capture_hwm = 0;
  ckpt::StagingStats staging;
};

harness::ScenarioConfig mode_config(const harness::ScenarioConfig& base,
                                    ckpt::StorageLevel level, bool async) {
  harness::ScenarioConfig cfg = base;
  cfg.spbc.storage = level;
  cfg.spbc.async_staging = async;
  return cfg;
}

ModeResult run_ff(const harness::ScenarioConfig& cfg) {
  harness::ScenarioResult res = harness::run_failure_free(cfg);
  ModeResult out;
  out.ok = res.run.completed;
  out.elapsed = res.elapsed;
  out.checkpoints = res.checkpoints;
  out.capture_hwm = res.capture_hwm_bytes;
  out.staging = res.staging;
  return out;
}

struct FailOutcome {
  bool ok = false;
  double efficiency = 0;
  int failures = 0;
  uint64_t capture_hwm = 0;
  ckpt::StagingStats staging;
};

FailOutcome run_with_failures(const harness::ScenarioConfig& base, sim::Time t_ff,
                              double mtbf, uint64_t seed) {
  harness::ScenarioConfig cfg = base;
  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  mc.abort_on_deadlock = false;  // a failed row reports "fail", not abort
  auto proto = std::make_unique<core::SpbcProtocol>(cfg.spbc);
  core::SpbcProtocol* p = proto.get();
  mpi::Machine m(mc, std::move(proto));
  m.set_cluster_of(harness::compute_cluster_map(cfg));
  const apps::AppInfo& info = apps::find_app(cfg.app);
  apps::AppConfig acfg = cfg.app_cfg;
  m.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });

  util::Pcg32 rng(seed, 0x57a6);
  FailOutcome out;
  sim::Time t = t_ff * 0.1;
  for (;;) {
    double u = rng.next_double();
    t += -mtbf * std::log(1.0 - u);
    if (t > t_ff * 0.85) break;
    int victim = static_cast<int>(rng.next_bounded(static_cast<uint32_t>(cfg.nranks)));
    m.inject_failure(t, victim);
    ++out.failures;
    t += m.config().failure_detection_delay + m.config().restart_delay;
  }

  mpi::RunResult res = m.run();
  out.ok = res.completed;
  if (out.ok) out.efficiency = t_ff / res.finish_time;
  out.capture_hwm = p->store().capture_hwm_bytes();
  out.staging = p->staging().stats();
  return out;
}

std::string kb(uint64_t bytes) { return util::Table::fmt(bytes / 1.0e3, 2); }

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Ablation: multi-level checkpoint staging", o);

  int nodes = o.ranks / o.ppn;
  int k = std::min(8, nodes);
  const std::string app = "MiniGhost";

  harness::ScenarioConfig base =
      bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);

  // ---- Part 1: failure-free write-path overhead ------------------------
  ModeResult none = run_ff(mode_config(base, ckpt::StorageLevel::kNone, false));
  if (!none.ok) {
    std::printf("baseline (no-I/O) run failed\n");
    return 1;
  }
  struct Mode {
    const char* name;
    ckpt::StorageLevel level;
    bool async;
  };
  const Mode modes[] = {
      {"sync-LOCAL", ckpt::StorageLevel::kLocal, false},
      {"sync-PFS", ckpt::StorageLevel::kPfs, false},
      {"async L/P/F", ckpt::StorageLevel::kPfs, true},
  };
  util::Table ff({"Mode", "elapsed (s)", "overhead %", "ckpts", "capture HWM KB",
                  "PFS flushes"});
  ff.add_row({"no-I/O", util::Table::fmt(none.elapsed, 4), "0.000",
              std::to_string(none.checkpoints), kb(none.capture_hwm), "-"});
  double sync_pfs_ovh = 0, async_ovh = 0;
  bool sync_pfs_ok = false, async_ok = false;
  for (const Mode& mode : modes) {
    ModeResult r = run_ff(mode_config(base, mode.level, mode.async));
    if (!r.ok) {
      ff.add_row({mode.name, "fail", "-", "-", "-", "-"});
      continue;
    }
    double ovh = (r.elapsed - none.elapsed) / none.elapsed * 100.0;
    if (std::string(mode.name) == "sync-PFS") {
      sync_pfs_ovh = ovh;
      sync_pfs_ok = true;
    }
    if (mode.async) {
      async_ovh = ovh;
      async_ok = true;
    }
    ff.add_row({mode.name, util::Table::fmt(r.elapsed, 4), util::Table::fmt(ovh, 3),
                std::to_string(r.checkpoints), kb(r.capture_hwm),
                std::to_string(r.staging.pfs_flushes)});
  }
  const bool async_wins = sync_pfs_ok && async_ok && async_ovh < sync_pfs_ovh;
  std::printf("%s\n", ff.render().c_str());
  if (sync_pfs_ok && async_ok) {
    std::printf("async staging %s sync-PFS at equal interval (%.3f%% vs %.3f%%)\n\n",
                async_wins ? "beats" : "DOES NOT BEAT", async_ovh, sync_pfs_ovh);
  } else {
    std::printf("async staging comparison unavailable: a mode run failed\n\n");
  }

  // ---- Part 2: recovery under failures, per-level restore counts -------
  util::Table rec({"MTBF (frac)", "Failures", "sync-PFS eff.", "async eff.",
                   "restores L/P/F/R", "epoch fallbacks", "drains aborted",
                   "capture HWM KB"});
  harness::ScenarioConfig sync_cfg =
      mode_config(base, ckpt::StorageLevel::kPfs, false);
  harness::ScenarioConfig async_cfg =
      mode_config(base, ckpt::StorageLevel::kPfs, true);
  for (double frac : {1.0, 0.5, 0.25}) {
    double mtbf = none.elapsed * frac;
    FailOutcome sync_out =
        run_with_failures(sync_cfg, none.elapsed, mtbf, o.seed);
    FailOutcome async_out =
        run_with_failures(async_cfg, none.elapsed, mtbf, o.seed);
    const auto& st = async_out.staging;
    rec.add_row(
        {util::Table::fmt(frac, 3), std::to_string(async_out.failures),
         sync_out.ok ? util::Table::fmt(sync_out.efficiency, 3) : "fail",
         async_out.ok ? util::Table::fmt(async_out.efficiency, 3) : "fail",
         std::to_string(st.restores_by_level[0]) + "/" +
             std::to_string(st.restores_by_level[1]) + "/" +
             std::to_string(st.restores_by_level[2]) + "/" +
             std::to_string(st.rebuild_restores),
         std::to_string(st.epoch_fallbacks), std::to_string(st.drains_aborted),
         kb(async_out.capture_hwm)});
  }
  std::printf("%s\n", rec.render().c_str());
  std::printf(
      "(LOCAL copies die with the failed nodes, so restores come from the\n"
      " buddy node (P), an XOR group rebuild (R), or, when a drain was still\n"
      " in flight, an older epoch on the PFS (F; counted as an epoch\n"
      " fallback). Async staging hides the PFS latency from the failure-free\n"
      " path without giving up multi-level recoverability.)\n\n");

  // ---- Part 3: redundancy schemes — write bytes vs failure coverage ----
  // Same snapshots, three redundancy shapes. The PFS is slowed so the
  // retention floor lags: recovery must come out of the redundancy layer,
  // which is exactly the coverage each scheme is paid to provide. A single
  // deterministic node-loss (one cluster, past the first commit) probes the
  // restore source; redundancy bytes count what each scheme landed on
  // remote storage per run (full copies for PARTNER, parity for XOR).
  struct SchemeMode {
    const char* name;
    ckpt::SchemeKind kind;
  };
  const SchemeMode schemes[] = {
      {"single", ckpt::SchemeKind::kSingle},
      {"partner", ckpt::SchemeKind::kPartner},
      {"xor", ckpt::SchemeKind::kXorGroup},
  };
  util::Table st3({"Scheme", "redundancy KB", "overhead %", "restores L/P/F",
                   "rebuilds", "epoch fallbacks", "reprotections"});
  std::map<std::string, uint64_t> red_bytes;
  bool xor_ok = false, xor_no_pfs_restore = false, xor_rebuilt = false;
  for (const SchemeMode& s : schemes) {
    harness::ScenarioConfig cfg =
        mode_config(base, ckpt::StorageLevel::kPfs, true);
    cfg.spbc.redundancy.kind = s.kind;
    cfg.spbc.redundancy.group_size = o.group_size;
    cfg.spbc.storage_model.pfs_bw = 2.0e6;  // floors lag; locals persist
    ModeResult ff3 = run_ff(cfg);
    if (!ff3.ok) {
      st3.add_row({s.name, "fail", "-", "-", "-", "-", "-"});
      continue;
    }
    red_bytes[s.name] =
        ff3.staging.bytes_to_partner + ff3.staging.bytes_to_parity;
    harness::ScenarioResult fr =
        harness::run_with_failure(cfg, none.elapsed, 0.8);
    const ckpt::StagingStats& fs = fr.staging;
    const double ovh = (ff3.elapsed - none.elapsed) / none.elapsed * 100.0;
    st3.add_row(
        {s.name, kb(red_bytes[s.name]), util::Table::fmt(ovh, 3),
         fr.run.completed
             ? std::to_string(fs.restores_by_level[0]) + "/" +
                   std::to_string(fs.restores_by_level[1]) + "/" +
                   std::to_string(fs.restores_by_level[2])
             : "fail",
         std::to_string(fs.rebuild_restores), std::to_string(fs.epoch_fallbacks),
         std::to_string(fs.reprotections)});
    if (s.kind == ckpt::SchemeKind::kXorGroup && fr.run.completed) {
      xor_ok = true;
      xor_no_pfs_restore = fs.restores_by_level[2] == 0;
      xor_rebuilt = fs.rebuild_restores > 0;
    }
  }
  std::printf("%s\n", st3.render().c_str());
  bool scheme_gates_ok = true;
  if (o.scheme == "xor") {
    // CI gates: XOR must land at most half the PARTNER copy bytes and must
    // recover a single in-group node loss without touching the PFS.
    const bool bytes_ok =
        red_bytes.count("xor") && red_bytes.count("partner") &&
        red_bytes["xor"] * 2 <= red_bytes["partner"];
    scheme_gates_ok = bytes_ok && xor_ok && xor_no_pfs_restore && xor_rebuilt;
    std::printf(
        "xor gates: write bytes %.2fx partner (need <= 0.5) %s; single node "
        "loss %s without a PFS read (%s)\n",
        red_bytes.count("partner") && red_bytes["partner"] > 0
            ? static_cast<double>(red_bytes["xor"]) /
                  static_cast<double>(red_bytes["partner"])
            : 0.0,
        bytes_ok ? "OK" : "FAIL",
        xor_ok && xor_rebuilt ? "rebuilt" : "DID NOT rebuild",
        xor_no_pfs_restore ? "OK" : "FAIL");
  }
  return (async_wins && scheme_gates_ok) ? 0 : 1;
}

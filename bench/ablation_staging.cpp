// Ablation: asynchronous multi-level checkpoint staging (LOCAL -> PARTNER ->
// PFS) vs synchronous writes, at equal checkpoint interval.
//
// The paper measures checkpointing with free I/O (Section 6.1); this
// ablation turns the cost model on and asks what the write path itself
// costs. Part 1 (failure-free): each storage mode's overhead over the
// no-I/O baseline — async staging must charge the fiber only the LOCAL
// write, so its overhead sits far below a synchronous PFS write of the same
// snapshots. Part 2 (Poisson failures): efficiency of sync-PFS vs async
// staging, plus which level served each restore (LOCAL dies with the failed
// nodes, so PARTNER carries most restores; epoch fallbacks count recoveries
// where a drain-in-progress epoch was lost and an older flushed epoch was
// used). The in-flight-capture high-water mark (ROADMAP memory-bound
// metric) is surfaced for every run.

#include <cmath>

#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace spbc;

namespace {

struct ModeResult {
  bool ok = false;
  double elapsed = 0;
  uint64_t checkpoints = 0;
  uint64_t capture_hwm = 0;
  ckpt::StagingStats staging;
};

harness::ScenarioConfig mode_config(const harness::ScenarioConfig& base,
                                    ckpt::StorageLevel level, bool async) {
  harness::ScenarioConfig cfg = base;
  cfg.spbc.storage = level;
  cfg.spbc.async_staging = async;
  return cfg;
}

ModeResult run_ff(const harness::ScenarioConfig& cfg) {
  harness::ScenarioResult res = harness::run_failure_free(cfg);
  ModeResult out;
  out.ok = res.run.completed;
  out.elapsed = res.elapsed;
  out.checkpoints = res.checkpoints;
  out.capture_hwm = res.capture_hwm_bytes;
  out.staging = res.staging;
  return out;
}

struct FailOutcome {
  bool ok = false;
  double efficiency = 0;
  int failures = 0;
  uint64_t capture_hwm = 0;
  ckpt::StagingStats staging;
};

FailOutcome run_with_failures(const harness::ScenarioConfig& base, sim::Time t_ff,
                              double mtbf, uint64_t seed) {
  harness::ScenarioConfig cfg = base;
  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  mc.abort_on_deadlock = false;  // a failed row reports "fail", not abort
  auto proto = std::make_unique<core::SpbcProtocol>(cfg.spbc);
  core::SpbcProtocol* p = proto.get();
  mpi::Machine m(mc, std::move(proto));
  m.set_cluster_of(harness::compute_cluster_map(cfg));
  const apps::AppInfo& info = apps::find_app(cfg.app);
  apps::AppConfig acfg = cfg.app_cfg;
  m.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });

  util::Pcg32 rng(seed, 0x57a6);
  FailOutcome out;
  sim::Time t = t_ff * 0.1;
  for (;;) {
    double u = rng.next_double();
    t += -mtbf * std::log(1.0 - u);
    if (t > t_ff * 0.85) break;
    int victim = static_cast<int>(rng.next_bounded(static_cast<uint32_t>(cfg.nranks)));
    m.inject_failure(t, victim);
    ++out.failures;
    t += m.config().failure_detection_delay + m.config().restart_delay;
  }

  mpi::RunResult res = m.run();
  out.ok = res.completed;
  if (out.ok) out.efficiency = t_ff / res.finish_time;
  out.capture_hwm = p->store().capture_hwm_bytes();
  out.staging = p->staging().stats();
  return out;
}

std::string kb(uint64_t bytes) { return util::Table::fmt(bytes / 1.0e3, 2); }

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Ablation: multi-level checkpoint staging", o);

  int nodes = o.ranks / o.ppn;
  int k = std::min(8, nodes);
  const std::string app = "MiniGhost";

  harness::ScenarioConfig base =
      bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);

  // ---- Part 1: failure-free write-path overhead ------------------------
  ModeResult none = run_ff(mode_config(base, ckpt::StorageLevel::kNone, false));
  if (!none.ok) {
    std::printf("baseline (no-I/O) run failed\n");
    return 1;
  }
  struct Mode {
    const char* name;
    ckpt::StorageLevel level;
    bool async;
  };
  const Mode modes[] = {
      {"sync-LOCAL", ckpt::StorageLevel::kLocal, false},
      {"sync-PFS", ckpt::StorageLevel::kPfs, false},
      {"async L/P/F", ckpt::StorageLevel::kPfs, true},
  };
  util::Table ff({"Mode", "elapsed (s)", "overhead %", "ckpts", "capture HWM KB",
                  "PFS flushes"});
  ff.add_row({"no-I/O", util::Table::fmt(none.elapsed, 4), "0.000",
              std::to_string(none.checkpoints), kb(none.capture_hwm), "-"});
  double sync_pfs_ovh = 0, async_ovh = 0;
  bool sync_pfs_ok = false, async_ok = false;
  for (const Mode& mode : modes) {
    ModeResult r = run_ff(mode_config(base, mode.level, mode.async));
    if (!r.ok) {
      ff.add_row({mode.name, "fail", "-", "-", "-", "-"});
      continue;
    }
    double ovh = (r.elapsed - none.elapsed) / none.elapsed * 100.0;
    if (std::string(mode.name) == "sync-PFS") {
      sync_pfs_ovh = ovh;
      sync_pfs_ok = true;
    }
    if (mode.async) {
      async_ovh = ovh;
      async_ok = true;
    }
    ff.add_row({mode.name, util::Table::fmt(r.elapsed, 4), util::Table::fmt(ovh, 3),
                std::to_string(r.checkpoints), kb(r.capture_hwm),
                std::to_string(r.staging.pfs_flushes)});
  }
  const bool async_wins = sync_pfs_ok && async_ok && async_ovh < sync_pfs_ovh;
  std::printf("%s\n", ff.render().c_str());
  if (sync_pfs_ok && async_ok) {
    std::printf("async staging %s sync-PFS at equal interval (%.3f%% vs %.3f%%)\n\n",
                async_wins ? "beats" : "DOES NOT BEAT", async_ovh, sync_pfs_ovh);
  } else {
    std::printf("async staging comparison unavailable: a mode run failed\n\n");
  }

  // ---- Part 2: recovery under failures, per-level restore counts -------
  util::Table rec({"MTBF (frac)", "Failures", "sync-PFS eff.", "async eff.",
                   "restores L/P/F/R", "epoch fallbacks", "drains aborted",
                   "capture HWM KB"});
  harness::ScenarioConfig sync_cfg =
      mode_config(base, ckpt::StorageLevel::kPfs, false);
  harness::ScenarioConfig async_cfg =
      mode_config(base, ckpt::StorageLevel::kPfs, true);
  for (double frac : {1.0, 0.5, 0.25}) {
    double mtbf = none.elapsed * frac;
    FailOutcome sync_out =
        run_with_failures(sync_cfg, none.elapsed, mtbf, o.seed);
    FailOutcome async_out =
        run_with_failures(async_cfg, none.elapsed, mtbf, o.seed);
    const auto& st = async_out.staging;
    rec.add_row(
        {util::Table::fmt(frac, 3), std::to_string(async_out.failures),
         sync_out.ok ? util::Table::fmt(sync_out.efficiency, 3) : "fail",
         async_out.ok ? util::Table::fmt(async_out.efficiency, 3) : "fail",
         std::to_string(st.restores_by_level[0]) + "/" +
             std::to_string(st.restores_by_level[1]) + "/" +
             std::to_string(st.restores_by_level[2]) + "/" +
             std::to_string(st.rebuild_restores),
         std::to_string(st.epoch_fallbacks), std::to_string(st.drains_aborted),
         kb(async_out.capture_hwm)});
  }
  std::printf("%s\n", rec.render().c_str());
  std::printf(
      "(LOCAL copies die with the failed nodes, so restores come from the\n"
      " buddy node (P), an XOR group rebuild (R), or, when a drain was still\n"
      " in flight, an older epoch on the PFS (F; counted as an epoch\n"
      " fallback). Async staging hides the PFS latency from the failure-free\n"
      " path without giving up multi-level recoverability.)\n\n");

  // ---- Part 3: redundancy schemes — write bytes vs failure coverage ----
  // Same snapshots, four redundancy shapes. The PFS is slowed so the
  // retention floor lags: recovery must come out of the redundancy layer,
  // which is exactly the coverage each scheme is paid to provide. A single
  // deterministic node-loss (one cluster, past the first commit) probes the
  // restore source for SINGLE/PARTNER/XOR; the RS row kills a *second*
  // in-group node right behind the first — the multi-loss pattern only
  // RS(k, m >= 2) can serve without the PFS. Redundancy bytes count what
  // each scheme landed on remote storage per failure-free run (full copies
  // for PARTNER, parity for XOR/RS); rebuild KB counts the network bytes
  // the failure run's rebuilds actually streamed.
  // Both kills of the double-loss probe key off the same failure point so
  // the second one always lands right behind the first.
  constexpr double kFailFrac = 0.8;
  struct SchemeMode {
    const char* name;
    ckpt::SchemeKind kind;
    int losses;  // in-group node losses the failure probe injects
  };
  const SchemeMode schemes[] = {
      {"single", ckpt::SchemeKind::kSingle, 1},
      {"partner", ckpt::SchemeKind::kPartner, 1},
      {"xor", ckpt::SchemeKind::kXorGroup, 1},
      {"rs", ckpt::SchemeKind::kReedSolomon, 2},
  };
  util::Table st3({"Scheme", "losses", "redundancy KB", "wire KB L/P/F",
                   "overhead %", "restores L/P/F", "rebuilds", "rebuild KB",
                   "epoch fallbacks", "reprotections"});
  std::map<std::string, uint64_t> red_bytes;
  std::map<std::string, ckpt::StagingStats> fail_stats;
  std::map<std::string, bool> fail_ok;
  for (const SchemeMode& s : schemes) {
    harness::ScenarioConfig cfg =
        mode_config(base, ckpt::StorageLevel::kPfs, true);
    cfg.spbc.redundancy.kind = s.kind;
    cfg.spbc.redundancy.group_size = o.group_size;
    cfg.spbc.storage_model.pfs_bw = 2.0e6;  // floors lag; locals persist
    ModeResult ff3 = run_ff(cfg);
    if (!ff3.ok) {
      st3.add_row({s.name, "-", "fail", "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    red_bytes[s.name] =
        ff3.staging.bytes_to_partner + ff3.staging.bytes_to_parity;
    if (s.losses > 1) {
      // The second victim must share the FIRST victim's redundancy group,
      // or the "double in-group loss" probe silently degrades to two
      // independent single losses once the machine holds more than one
      // group. Query the scheme's actual mapping on a throwaway machine
      // with the run's cluster map.
      mpi::MachineConfig probe_mc = cfg.machine;
      probe_mc.nranks = cfg.nranks;
      probe_mc.ranks_per_node = cfg.ranks_per_node;
      auto probe_proto = std::make_unique<core::SpbcProtocol>(cfg.spbc);
      mpi::Machine probe(probe_mc, std::move(probe_proto));
      probe.set_cluster_of(harness::compute_cluster_map(cfg));
      std::unique_ptr<ckpt::RedundancyScheme> scheme =
          ckpt::RedundancyScheme::make(cfg.spbc.redundancy, probe);
      const std::vector<int> group = scheme->group_of(cfg.victim_rank);
      if (group.empty()) {
        st3.add_row(
            {s.name, "-", "no group", "-", "-", "-", "-", "-", "-", "-"});
        continue;
      }
      cfg.extra_failures.push_back(
          {none.elapsed * kFailFrac + 1e-4, group.front()});
    }
    harness::ScenarioResult fr =
        harness::run_with_failure(cfg, none.elapsed, kFailFrac);
    const ckpt::StagingStats& fs = fr.staging;
    fail_stats[s.name] = fs;
    fail_ok[s.name] = fr.run.completed;
    const double ovh = (ff3.elapsed - none.elapsed) / none.elapsed * 100.0;
    st3.add_row(
        {s.name, std::to_string(s.losses), kb(red_bytes[s.name]),
         // Bytes-on-wire per level in the failure-free run: LOCAL device
         // writes, PARTNER traffic (copies + parity), PFS ingest.
         kb(ff3.staging.bytes_to_local) + "/" +
             kb(ff3.staging.bytes_to_partner + ff3.staging.bytes_to_parity) +
             "/" + kb(ff3.staging.bytes_to_pfs),
         util::Table::fmt(ovh, 3),
         fr.run.completed
             ? std::to_string(fs.restores_by_level[0]) + "/" +
                   std::to_string(fs.restores_by_level[1]) + "/" +
                   std::to_string(fs.restores_by_level[2])
             : "fail",
         std::to_string(fs.rebuild_restores), kb(fs.rebuild_bytes_read),
         std::to_string(fs.epoch_fallbacks), std::to_string(fs.reprotections)});
  }
  std::printf("%s\n", st3.render().c_str());
  bool scheme_gates_ok = true;
  if (o.scheme == "xor") {
    // CI gates: XOR must land at most half the PARTNER copy bytes and must
    // recover a single in-group node loss without touching the PFS.
    const ckpt::StagingStats& xs = fail_stats["xor"];
    const bool bytes_ok =
        red_bytes.count("xor") && red_bytes.count("partner") &&
        red_bytes["xor"] * 2 <= red_bytes["partner"];
    const bool xor_ok = fail_ok["xor"];
    const bool xor_no_pfs_restore = xs.restores_by_level[2] == 0;
    const bool xor_rebuilt = xs.rebuild_restores > 0;
    scheme_gates_ok = bytes_ok && xor_ok && xor_no_pfs_restore && xor_rebuilt;
    std::printf(
        "xor gates: write bytes %.2fx partner (need <= 0.5) %s; single node "
        "loss %s without a PFS read (%s)\n",
        red_bytes.count("partner") && red_bytes["partner"] > 0
            ? static_cast<double>(red_bytes["xor"]) /
                  static_cast<double>(red_bytes["partner"])
            : 0.0,
        bytes_ok ? "OK" : "FAIL",
        xor_ok && xor_rebuilt ? "rebuilt" : "DID NOT rebuild",
        xor_no_pfs_restore ? "OK" : "FAIL");
    // Regression pin: at the canonical CI configuration the XOR row's
    // numbers are deterministic — any drift in redundancy bytes, restore
    // sources, or rebuild count is a behavior change that must be looked
    // at, not absorbed.
    const bool canonical = o.ranks == 32 && o.ppn == 8 && o.iters == 3 &&
                           o.ckpt_every == 2 && o.seed == 1 &&
                           o.msg_scale == 1.0 && o.compute_scale == 1.0 &&
                           o.group_size == 4;
    if (canonical) {
      const uint64_t kPinnedXorBytes = 7560;   // 0.33x the partner copy bytes
      const uint64_t kPinnedXorRebuilds = 8;   // one per rank of the cluster
      const bool pin_ok = red_bytes["xor"] == kPinnedXorBytes &&
                          xs.rebuild_restores == kPinnedXorRebuilds &&
                          xs.restores_by_level[0] == 0 &&
                          xs.restores_by_level[1] == 0 &&
                          xs.restores_by_level[2] == 0;
      scheme_gates_ok = scheme_gates_ok && pin_ok;
      std::printf(
          "xor pin (canonical config): redundancy %llu B (pin %llu), "
          "rebuilds %llu (pin %llu), restores %llu/%llu/%llu (pin 0/0/0) %s\n",
          static_cast<unsigned long long>(red_bytes["xor"]),
          static_cast<unsigned long long>(kPinnedXorBytes),
          static_cast<unsigned long long>(xs.rebuild_restores),
          static_cast<unsigned long long>(kPinnedXorRebuilds),
          static_cast<unsigned long long>(xs.restores_by_level[0]),
          static_cast<unsigned long long>(xs.restores_by_level[1]),
          static_cast<unsigned long long>(xs.restores_by_level[2]),
          pin_ok ? "OK" : "FAIL");
    }
  }
  if (o.scheme == "rs") {
    // CI gates: RS(k, m) must land at most 0.55x the PARTNER copy bytes
    // (the (m/k) = 0.5 parity overhead plus per-share ceil slack) and must
    // recover a *double* in-group node loss entirely out of the redundancy
    // layer — rebuilds for both lost nodes, zero PFS restores.
    const ckpt::StagingStats& rs = fail_stats["rs"];
    const bool bytes_ok =
        red_bytes.count("rs") && red_bytes.count("partner") &&
        static_cast<double>(red_bytes["rs"]) <=
            0.55 * static_cast<double>(red_bytes["partner"]);
    const bool rs_ok = fail_ok["rs"];
    const bool rs_no_pfs_restore = rs.restores_by_level[2] == 0;
    const bool rs_rebuilt = rs.rebuild_restores >= 2;
    scheme_gates_ok =
        scheme_gates_ok && bytes_ok && rs_ok && rs_no_pfs_restore && rs_rebuilt;
    std::printf(
        "rs gates: write bytes %.2fx partner (need <= 0.55) %s; double node "
        "loss %s without a PFS read (%s); rebuilds=%llu rebuild KB=%s\n",
        red_bytes.count("partner") && red_bytes["partner"] > 0
            ? static_cast<double>(red_bytes["rs"]) /
                  static_cast<double>(red_bytes["partner"])
            : 0.0,
        bytes_ok ? "OK" : "FAIL",
        rs_ok && rs_rebuilt ? "rebuilt" : "DID NOT rebuild",
        rs_no_pfs_restore ? "OK" : "FAIL",
        static_cast<unsigned long long>(rs.rebuild_restores),
        kb(rs.rebuild_bytes_read).c_str());
  }
  return (async_wins && scheme_gates_ok) ? 0 : 1;
}

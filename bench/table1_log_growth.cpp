// Table 1: "Logs growth rate per process in MB/s according to the number of
// clusters" — per application, Avg and Max per-process log growth for
// cluster counts {2, 4, 8, 16, nodes (=all inter-node), nranks (=pure
// message logging)}.
//
// Paper values for reference (512 ranks, 64 nodes):
//   MiniGhost is the heaviest logger (up to 6.3 MB/s at 512 clusters),
//   MiniFE the lightest; the average grows with the cluster count while
//   GTC's maximum stays flat from 2 to 64 clusters (ring cut).

#include <algorithm>

#include "bench_common.hpp"

using namespace spbc;

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Table 1: log growth rate per process (MB/s)", o);

  int nodes = o.ranks / o.ppn;
  std::vector<int> cluster_counts;
  for (int k : {2, 4, 8, 16}) {
    if (k < nodes) cluster_counts.push_back(k);
  }
  cluster_counts.push_back(nodes);    // all inter-node messages logged
  cluster_counts.push_back(o.ranks);  // pure message logging

  std::vector<std::string> header{"Clusters"};
  for (const auto& app : bench::paper_apps()) {
    header.push_back(app + " Avg");
    header.push_back(app + " Max");
  }
  util::Table table(header);

  // Reclamation companion table (gc_logs extension, DESIGN.md §7): once a
  // destination cluster's checkpoint wave commits, every channel into it
  // drops the log entries the committed epoch captured. Reclaimed = bytes
  // dropped over the run; HWM = highest live per-process log footprint —
  // with reclamation it stays bounded by the checkpoint interval instead of
  // growing with the run.
  std::vector<std::string> gc_header{"Clusters"};
  for (const auto& app : bench::paper_apps()) {
    gc_header.push_back(app + " Recl");
    gc_header.push_back(app + " HWM");
  }
  util::Table gc_table(gc_header);

  for (int k : cluster_counts) {
    std::vector<std::string> row{std::to_string(k)};
    std::vector<std::string> gc_row{std::to_string(k)};
    for (const auto& app : bench::paper_apps()) {
      harness::ScenarioConfig cfg = bench::make_config(
          o, app, std::min(k, nodes),
          k >= o.ranks ? harness::ProtocolKind::kPureLogging
                       : harness::ProtocolKind::kSpbc);
      cfg.spbc.gc_logs = true;  // measure the Table-1 reclamation effect
      harness::ScenarioResult res = harness::run_failure_free(cfg);
      if (!res.run.completed) {
        row.push_back("fail");
        row.push_back("fail");
        gc_row.push_back("fail");
        gc_row.push_back("fail");
        continue;
      }
      row.push_back(util::Table::fmt(res.avg_log_rate_mb_s, 2));
      row.push_back(util::Table::fmt(res.max_log_rate_mb_s, 2));
      gc_row.push_back(util::Table::fmt(res.log_bytes_reclaimed / 1.0e6, 2));
      gc_row.push_back(util::Table::fmt(res.log_retained_hwm / 1.0e6, 2));
    }
    table.add_row(std::move(row));
    gc_table.add_row(std::move(gc_row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "(paper, 512 ranks: MiniGhost heaviest — 5.5/6.3 at 512 clusters; "
      "MiniFE lightest — 0.5/0.6; GTC max flat at ~0.9 from 2..64 clusters)\n\n");
  std::printf("Reclaimed / live-HWM per process (MB, gc_logs on):\n%s\n",
              gc_table.render().c_str());
  return 0;
}

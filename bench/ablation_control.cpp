// Ablation: the self-tuning reliability control plane vs static schedules.
//
// A drifting-MTBF failure process — a calm phase, then a storm whose MTBF is
// --mtbf-drift times shorter, seasoned with correlated double losses and
// silent fragment corruptions — runs against the same workload under:
//
//   * six static configurations: checkpoint interval {1,2,4} x redundancy
//     scheme {xor, rs}, full-depth staging every epoch, no scrubbing; and
//   * the controller: observed-MTBF Young/Daly pacing per storage level
//     (LOCAL interval + redundancy/PFS epoch strides), background scrub
//     repair, and (with --escalate) XOR -> RS scheme escalation on
//     correlated double losses.
//
// The merit figure is total lost work, ranks x (finish - t_base), where
// t_base is the checkpoint-free failure-free time: everything a schedule
// costs (checkpoint writes, rework after rollbacks, PFS restores) lands in
// that one number. Gate rows at the bottom print "pass"/"fail" tokens that
// CI greps:
//   * controller-beats-statics — strictly less lost work than EVERY static;
//   * scrub-repair — every injected silent loss detected AND repaired by
//     the audit wave, none still believed live at the end;
//   * determinism — the controller run is bit-identical on a resharded
//     engine (same finish time to the last bit).

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/redundancy.hpp"
#include "util/rng.hpp"

using namespace spbc;

namespace {

struct FailureEvent {
  sim::Time at = 0;
  int victim = -1;
};

struct Schedule {
  std::vector<FailureEvent> failures;
  std::vector<std::pair<sim::Time, uint64_t>> silent_losses;
  int doubles = 0;
};

struct Outcome {
  bool ok = false;
  sim::Time finish = 0;
  double lost_work = 0;  // ranks x (finish - t_base)
  uint64_t checkpoints = 0;
  uint64_t pfs_restores = 0;
  uint64_t epoch_fallbacks = 0;
  uint64_t silent_injected = 0;
  uint64_t scrubs_detected = 0;
  uint64_t scrubs_repaired = 0;
  uint64_t corrupt_live = 0;
  uint64_t escalations = 0;
};

Outcome run_one(const harness::ScenarioConfig& base,
                const std::vector<int>& cluster_of, const Schedule& sched,
                sim::Time t_base, int engine_shards) {
  harness::ScenarioConfig cfg = base;
  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  mc.engine_shards = engine_shards;
  mc.abort_on_deadlock = false;  // a failed column reports "fail", not abort
  auto proto = std::make_unique<core::SpbcProtocol>(cfg.spbc);
  core::SpbcProtocol* spbc = proto.get();
  mpi::Machine m(mc, std::move(proto));
  m.set_cluster_of(cluster_of);

  const apps::AppInfo& info = apps::find_app(cfg.app);
  apps::AppConfig acfg = cfg.app_cfg;
  m.launch([&info, acfg](mpi::Rank& r) { info.main(r, acfg); });

  for (const FailureEvent& f : sched.failures) m.inject_failure(f.at, f.victim);
  for (const auto& [at, salt] : sched.silent_losses) {
    const uint64_t s = salt;
    m.engine().at_serial(
        at, [spbc, s] { spbc->staging_mut().corrupt_one_fragment(s); });
  }

  mpi::RunResult res = m.run();
  Outcome out;
  out.ok = res.completed;
  if (!out.ok) return out;
  out.finish = res.finish_time;
  out.lost_work = static_cast<double>(cfg.nranks) * (res.finish_time - t_base);
  out.checkpoints = spbc->checkpoints_taken();
  const ckpt::StagingStats& st = spbc->staging().stats();
  out.pfs_restores = st.restores_by_level[2];
  out.epoch_fallbacks = st.epoch_fallbacks;
  out.silent_injected = st.silent_losses_injected;
  out.scrubs_detected = st.scrubs_detected;
  out.scrubs_repaired = st.scrubs_repaired;
  out.corrupt_live = spbc->staging().corrupt_live_fragments();
  out.escalations = spbc->control_plane().stats().escalations;
  if (std::getenv("SPBC_CONTROL_DEBUG")) {
    const core::ControlPlaneStats cs = spbc->control_plane().stats();
    std::printf(
        "[dbg] finish=%.4f ckpts=%llu restores L=%llu P=%llu F=%llu "
        "rebuilds=%llu fallbacks=%llu reprot=%llu retries=%llu aborted=%llu | "
        "ctrl fail=%llu dbl=%llu mtbf=%.4f smtbf=%.4f T=%.5f red=%llu "
        "pfs=%llu\n",
        out.finish, (unsigned long long)out.checkpoints,
        (unsigned long long)st.restores_by_level[0],
        (unsigned long long)st.restores_by_level[1],
        (unsigned long long)st.restores_by_level[2],
        (unsigned long long)st.rebuild_restores,
        (unsigned long long)st.epoch_fallbacks,
        (unsigned long long)st.reprotections,
        (unsigned long long)st.retries_exhausted,
        (unsigned long long)st.drains_aborted, (unsigned long long)cs.failures,
        (unsigned long long)cs.double_losses, cs.observed_mtbf,
        cs.observed_storage_mtbf, cs.local_interval,
        (unsigned long long)cs.redundancy_stride,
        (unsigned long long)cs.pfs_stride);
  }
  return out;
}

/// The drifting storm: Poisson singles at MTBF_calm over the calm phase,
/// then MTBF_calm / drift over the storm phase, with every third storm
/// arrival widened into a correlated double loss — the first pairs span XOR
/// groups (they trigger escalation without defeating single parity), later
/// pairs land INSIDE one XOR group (the class only the escalated RS scheme
/// absorbs; included only when escalation is armed, they are its ablation).
Schedule make_schedule(const harness::ScenarioConfig& cfg,
                       const std::vector<int>& cluster_of, sim::Time t_base,
                       const bench::BenchOpts& o, sim::Time pair_gap) {
  // XOR group structure, queried from the scheme itself on a throwaway
  // machine so the bench never hardcodes the group-dealing rule.
  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  mpi::Machine probe(mc, std::make_unique<core::SpbcProtocol>(cfg.spbc));
  probe.set_cluster_of(cluster_of);
  ckpt::RedundancyConfig xor_cfg;
  xor_cfg.kind = ckpt::SchemeKind::kXorGroup;
  xor_cfg.group_size = o.group_size;
  std::unique_ptr<ckpt::RedundancyScheme> xorg =
      ckpt::RedundancyScheme::make(xor_cfg, probe);

  auto in_group = [&](int a, int b) {
    const std::vector<int> g = xorg->group_of(a);
    return std::find(g.begin(), g.end(), b) != g.end();
  };
  auto pair_for = [&](int a, bool same_group) -> int {
    for (int b = 0; b < cfg.nranks; ++b) {
      if (probe.topology().node_of(b) == probe.topology().node_of(a)) continue;
      if (in_group(a, b) == same_group) return b;
    }
    return -1;  // degenerate topology (single group): no such partner
  };

  Schedule sched;
  util::Pcg32 rng(cfg.machine.seed, 0xc7a1);
  const double mtbf_calm = 1.5 * t_base;
  const double mtbf_storm = mtbf_calm / std::max(o.mtbf_drift, 1.0);
  const sim::Time storm_from = 0.45 * t_base;
  const sim::Time last_at = 0.85 * t_base;
  sim::Time t = 0.10 * t_base;
  int arrivals = 0;
  while (true) {
    const double u = (rng.next_u32() + 0.5) / 4294967296.0;
    const double mtbf = t < storm_from ? mtbf_calm : mtbf_storm;
    t += -mtbf * std::log(1.0 - u);
    if (t > last_at) break;
    const int victim =
        static_cast<int>(rng.next_bounded(static_cast<uint32_t>(cfg.nranks)));
    sched.failures.push_back({t, victim});
    const bool in_storm = t >= storm_from;
    if (in_storm && ++arrivals % 2 == 0) {
      // Correlated double: cross-group while the controller is still
      // gathering evidence, same-group once escalation (if armed) has had
      // two cross-group pairs to trip on.
      const bool same_group = o.escalate && sched.doubles >= 2;
      const int partner = pair_for(victim, same_group);
      if (partner >= 0) {
        sched.failures.push_back({t + pair_gap, partner});
        ++sched.doubles;
      }
    }
    // Room for detection + restart before the next arrival.
    t += probe.config().failure_detection_delay + probe.config().restart_delay;
  }
  // Silent fragment corruptions: calm-phase losses a scrub must find before
  // the storm's restores go looking for the fragments.
  sched.silent_losses = {{0.30 * t_base, rng.next_u64()},
                         {0.42 * t_base, rng.next_u64()}};
  return sched;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Ablation: self-tuning control plane vs static schedules",
                      o);

  const int nodes = o.ranks / o.ppn;
  const int k = std::min(8, nodes);
  const std::string app = "MiniGhost";

  harness::ScenarioConfig base =
      bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);
  base.spbc.storage = ckpt::StorageLevel::kPfs;
  base.spbc.async_staging = true;
  base.spbc.redundancy.kind = ckpt::SchemeKind::kXorGroup;
  // A storage model where scheduling decisions carry real cost: a LOCAL
  // write the app actually waits for (serialization + device latency), and
  // a PFS whose per-process bandwidth share lags far behind the burst rate —
  // the regime the multi-level staging literature targets. With the seed
  // model's near-free writes every schedule collapses to "checkpoint at
  // every opportunity" and there is nothing to tune.
  base.spbc.storage_model.local_latency = 5e-3;
  base.spbc.storage_model.pfs_bw = 5e6;
  // Real per-process state: the synthetic apps carry token state vectors, so
  // without the pad every staging level is free and no schedule can
  // differentiate (see SpbcConfig::snapshot_pad_bytes).
  base.spbc.snapshot_pad_bytes = 1 << 20;
  const std::vector<int> cluster_of = harness::compute_cluster_map(base);

  // t_base: checkpoint-free failure-free time — the lost-work zero point.
  harness::ScenarioConfig base_free = base;
  base_free.spbc.checkpoint_every = 0;
  base_free.spbc.storage = ckpt::StorageLevel::kNone;
  Outcome baseline = run_one(base_free, cluster_of, Schedule{}, 0, o.shards);
  if (!baseline.ok) {
    std::printf("baseline run failed\n");
    return 1;
  }
  const sim::Time t_base = baseline.finish;

  const sim::Time pair_gap = 0.004 * t_base;
  const Schedule sched = make_schedule(base, cluster_of, t_base, o, pair_gap);
  std::printf(
      "workload: %s, %d ranks, t_base %.3fs; storm: %zu failures "
      "(%d correlated doubles), %zu silent losses, drift %.1fx\n\n",
      app.c_str(), o.ranks, t_base, sched.failures.size(), sched.doubles,
      sched.silent_losses.size(), o.mtbf_drift);

  util::Table table({"Config", "Scheme", "Interval", "Finish", "Lost work",
                     "Ckpts", "PFS restores", "Fallbacks", "Scrub d/r",
                     "Esc"});
  auto add_row = [&](const std::string& name, const std::string& scheme,
                     const std::string& interval, const Outcome& out) {
    table.add_row(
        {name, scheme, interval, out.ok ? util::Table::fmt(out.finish, 4) : "fail",
         out.ok ? util::Table::fmt(out.lost_work, 2) : "fail",
         std::to_string(out.checkpoints), std::to_string(out.pfs_restores),
         std::to_string(out.epoch_fallbacks),
         std::to_string(out.scrubs_detected) + "/" +
             std::to_string(out.scrubs_repaired),
         std::to_string(out.escalations)});
  };

  // Static arms: full-depth staging every epoch, no controller, no scrub.
  std::vector<Outcome> statics;
  for (ckpt::SchemeKind kind :
       {ckpt::SchemeKind::kXorGroup, ckpt::SchemeKind::kReedSolomon}) {
    for (int every : {1, 2, 4}) {
      harness::ScenarioConfig cfg = base;
      cfg.spbc.redundancy.kind = kind;
      cfg.spbc.checkpoint_every = static_cast<uint64_t>(every);
      Outcome out = run_one(cfg, cluster_of, sched, t_base, o.shards);
      add_row("static", ckpt::scheme_name(kind), std::to_string(every), out);
      statics.push_back(out);
    }
  }

  // The controller arm: observed-MTBF pacing, scrub, optional escalation.
  harness::ScenarioConfig ctrl = base;
  ctrl.spbc.checkpoint_every = 0;  // the time-based trigger owns the cadence
  ctrl.spbc.control.enabled = true;
  // Pessimistic cold-start priors: checkpoint soon until the observed rate
  // proves the machine calm (an optimistic prior would leave the whole
  // cold-start window unprotected).
  ctrl.spbc.control.prior_mtbf = 0.05 * t_base;
  ctrl.spbc.control.prior_storage_mtbf = 0.05 * t_base;
  ctrl.spbc.control.prior_double_mtbf = t_base;
  ctrl.spbc.control.correlation_window = 2.5 * pair_gap;
  ctrl.spbc.control.min_interval = 1e-6 * t_base;
  ctrl.spbc.control.max_interval = t_base;
  ctrl.spbc.control.scrub_period =
      o.scrub_period < 0 ? 0.02 * t_base : o.scrub_period;
  ctrl.spbc.control.escalation = o.escalate;
  ctrl.spbc.control.escalated.kind = ckpt::SchemeKind::kReedSolomon;
  ctrl.spbc.control.escalated.rs_k = o.rs_k;
  ctrl.spbc.control.escalated.rs_m = o.rs_m;
  Outcome controller = run_one(ctrl, cluster_of, sched, t_base, o.shards);
  add_row("controller", o.escalate ? "xor->rs" : "xor", "auto", controller);
  std::printf("%s\n", table.render().c_str());

  // Gate rows (CI greps "^|" for a "fail" token).
  bool beats = controller.ok;
  for (const Outcome& s : statics)
    beats = beats && (!s.ok || controller.lost_work < s.lost_work);
  std::printf("| gate controller-beats-statics: %s\n", beats ? "pass" : "fail");

  const bool scrub_ok = controller.ok && controller.silent_injected > 0 &&
                        controller.scrubs_detected == controller.silent_injected &&
                        controller.scrubs_repaired == controller.silent_injected &&
                        controller.corrupt_live == 0;
  std::printf("| gate scrub-repair: %s (injected=%llu detected=%llu "
              "repaired=%llu still-live=%llu)\n",
              scrub_ok ? "pass" : "fail",
              static_cast<unsigned long long>(controller.silent_injected),
              static_cast<unsigned long long>(controller.scrubs_detected),
              static_cast<unsigned long long>(controller.scrubs_repaired),
              static_cast<unsigned long long>(controller.corrupt_live));

  // Bit-identity across resharded engines. Both runs use sharded plans
  // (engine_shards=1 is the legacy single-queue engine with a shared jitter
  // stream — exempt from the layout-invariance claim), and threads stay 1:
  // the controller arm places cross-node fragments, which the threaded
  // executor's exactness claim excludes (DESIGN.md §12).
  Outcome det_a = run_one(ctrl, cluster_of, sched, t_base, /*shards=*/2);
  Outcome det_b = run_one(ctrl, cluster_of, sched, t_base, /*shards=*/0);
  const bool det_ok = det_a.ok && det_b.ok && det_a.finish == det_b.finish &&
                      det_a.checkpoints == det_b.checkpoints;
  std::printf("| gate determinism: %s (shards=2 finish %.9g vs "
              "shards=per-cluster finish %.9g)\n",
              det_ok ? "pass" : "fail", det_a.finish, det_b.finish);

  return beats && scrub_ok && det_ok ? 0 : 1;
}

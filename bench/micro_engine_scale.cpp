// Microbenchmark: sharded event-engine throughput and memory at ablation
// scale (16k - 131k ranks), engine layer only — no MPI machinery, no
// protocol. Gates the two resources that used to make 100k-rank ablation
// rows CI-infeasible: events/sec (per-shard queues + pooled fiber stacks +
// the threaded conservative-lookahead executor) and peak RSS (stacks are
// recycled; the workload keeps every rank's fiber alive, so resident memory
// is dominated by touched stack pages).
//
// Workload: R rank fibers in C clusters (block map), each iterating
// wait(jittered dt) -> deliver a wake token to a cross-cluster partner
// (rides at_on with the lookahead, exactly like a cross-cluster send) ->
// park until its own token arrives. Every rank folds its wake times into a
// per-rank hash; the XOR over ranks is an execution-order-independent
// trajectory fingerprint, so identical hashes across shard/thread
// configurations certify the determinism contract (the bench self-checks
// this at a small size before the timed rows).
//
// Flags:
//   --ranks=N            single row at N ranks (default: 16k/65k/131k sweep)
//   --shards=N --threads=N   engine plan for the timed rows (0 shards = one
//                            exec shard per cluster)
//   --clusters=N         key shards (default 64)
//   --iters=N            tokens per rank (default 4)
//   --min-events-per-sec=X   gate: fail when a timed row runs slower
//   --max-rss-mb=X           gate: fail when VmHWM exceeds X
//   --skip-selfcheck     skip the cross-config determinism self-check

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace spbc;

namespace {

uint64_t mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t time_bits(sim::Time t) {
  uint64_t b = 0;
  static_assert(sizeof(t) == sizeof(b));
  std::memcpy(&b, &t, sizeof(b));
  return b;
}

struct RunOut {
  uint64_t events = 0;       // shard events executed
  uint64_t hash = 0;         // order-independent trajectory fingerprint
  double wall_sec = 0;
  size_t peak_live_stacks = 0;
  size_t stacks_allocated = 0;
  uint64_t windows = 0;
};

/// One engine run of the token ping workload. Deterministic for any
/// (exec shards, threads) given the same (ranks, clusters, iters).
RunOut run_workload(int ranks, int clusters, int iters, int exec_shards,
                    int threads) {
  sim::Engine eng(/*default_stack_size=*/64 * 1024);
  eng.set_shard_plan(clusters, exec_shards);
  const sim::Time lookahead = sim::usec(10.0);
  eng.set_lookahead(lookahead);
  if (threads > 1) eng.set_threads(threads);

  auto cluster_of = [ranks, clusters](int r) {
    return static_cast<int>(static_cast<int64_t>(r) * clusters / ranks);
  };

  std::vector<sim::Engine::TaskId> ids(static_cast<size_t>(ranks),
                                       sim::Engine::kInvalidTask);
  std::vector<int> tokens(static_cast<size_t>(ranks), 0);
  std::vector<uint64_t> hashes(static_cast<size_t>(ranks), 0);

  for (int r = 0; r < ranks; ++r) {
    // The partner sits half the machine away: cross-cluster for everyone
    // (clusters are contiguous blocks), so every token rides the
    // cross-shard path with the lookahead.
    const int peer = (r + ranks / 2) % ranks;
    const int my_cluster = cluster_of(r);
    const int peer_cluster = cluster_of(peer);
    ids[static_cast<size_t>(r)] = eng.spawn_on(
        my_cluster, [&eng, &ids, &tokens, &hashes, r, peer, my_cluster,
                     peer_cluster, iters, lookahead] {
          uint64_t h = mix64(static_cast<uint64_t>(r) + 1);
          for (int i = 0; i < iters; ++i) {
            // Jittered compute block, deterministic per (rank, iteration).
            const double jit = static_cast<double>(
                                   mix64(h ^ static_cast<uint64_t>(i)) & 0xff) /
                               256.0;
            eng.wait(sim::usec(20.0) * (1.0 + 0.25 * jit));
            // Deliver a wake token to the partner on its own shard.
            auto deliver = [&eng, &ids, &tokens, peer] {
              ++tokens[static_cast<size_t>(peer)];
              eng.unpark(ids[static_cast<size_t>(peer)]);
            };
            if (peer_cluster == my_cluster)
              eng.after(0.0, deliver);
            else
              eng.after_on(peer_cluster, lookahead, deliver);
            // Consume one token of our own (parking until it lands).
            while (tokens[static_cast<size_t>(r)] == 0) eng.park();
            --tokens[static_cast<size_t>(r)];
            h = mix64(h ^ time_bits(eng.now()));
          }
          hashes[static_cast<size_t>(r)] = h;
        });
  }

  const auto t0 = std::chrono::steady_clock::now();
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();

  RunOut out;
  const sim::Engine::Stats st = eng.stats();
  out.events = st.events + st.serial_events;
  out.windows = st.windows;
  out.peak_live_stacks = st.peak_live_stacks;
  out.stacks_allocated = st.stacks_allocated;
  out.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  for (uint64_t h : hashes) out.hash ^= h;
  return out;
}

uint64_t vm_hwm_kb() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%" SCNu64, &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int clusters = static_cast<int>(cli.get_int("clusters", 64));
  const int iters = static_cast<int>(cli.get_int("iters", 4));
  const int shards = static_cast<int>(cli.get_int("shards", 0));
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  const double min_eps = cli.get_double("min-events-per-sec", 0.0);
  const double max_rss_mb = cli.get_double("max-rss-mb", 0.0);

  std::vector<int> rank_rows = {16384, 65536, 131072};
  if (cli.has("ranks"))
    rank_rows = {static_cast<int>(cli.get_int("ranks", 16384))};

  std::printf("== micro: sharded engine scale ==\n");
  std::printf("clusters=%d iters=%d shards=%d threads=%d\n\n", clusters, iters,
              shards, threads);

  if (!cli.get_flag("skip-selfcheck")) {
    // Determinism self-check at a small size: the trajectory fingerprint
    // must not depend on the execution configuration.
    const int cr = 2048, cc = 16, ci = 3;
    const uint64_t ref = run_workload(cr, cc, ci, /*exec=*/1, /*thr=*/1).hash;
    const std::vector<std::pair<int, int>> configs = {{4, 1}, {0, 1}, {0, 4}};
    for (auto [ex, th] : configs) {
      const uint64_t got = run_workload(cr, cc, ci, ex, th).hash;
      if (got != ref) {
        std::printf("DETERMINISM MISMATCH: exec=%d threads=%d hash %016" PRIx64
                    " != ref %016" PRIx64 "\n",
                    ex, th, got, ref);
        return 1;
      }
    }
    std::printf("determinism self-check: ok (exec shards 1/4/%d, threads 1/4)\n\n",
                cc);
  }

  util::Table table({"Ranks", "Events", "Wall (s)", "Events/s", "Windows",
                     "Peak stacks", "Stacks alloc", "VmHWM (MB)"});
  bool ok = true;
  for (int ranks : rank_rows) {
    RunOut out = run_workload(ranks, clusters, iters, shards, threads);
    const double eps =
        out.wall_sec > 0 ? static_cast<double>(out.events) / out.wall_sec : 0;
    const double rss_mb = static_cast<double>(vm_hwm_kb()) / 1024.0;
    table.add_row({std::to_string(ranks), std::to_string(out.events),
                   util::Table::fmt(out.wall_sec, 3), util::Table::fmt(eps, 0),
                   std::to_string(out.windows),
                   std::to_string(out.peak_live_stacks),
                   std::to_string(out.stacks_allocated),
                   util::Table::fmt(rss_mb, 1)});
    if (min_eps > 0 && eps < min_eps) {
      std::printf("GATE FAIL: %d ranks ran at %.0f events/s < floor %.0f\n",
                  ranks, eps, min_eps);
      ok = false;
    }
    if (max_rss_mb > 0 && rss_mb > max_rss_mb) {
      std::printf("GATE FAIL: VmHWM %.1f MB > cap %.1f MB\n", rss_mb,
                  max_rss_mb);
      ok = false;
    }
  }
  std::printf("%s\n", table.render().c_str());
  return ok ? 0 : 1;
}

// Ablation: the replay pre-post window (Section 5.2.2).
//
// The paper states that "allowing up to 50 pre-posted messages per process
// was providing good performance". This bench sweeps the window and reports
// normalized rework time: window=1 serializes the replay on per-message
// round trips, large windows pipeline it; returns diminish around the
// paper's value.

#include "bench_common.hpp"

using namespace spbc;

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Ablation: replay pre-post window (Section 5.2.2)", o);

  int nodes = o.ranks / o.ppn;
  int k = std::min(8, nodes);
  // LU replays the most messages per channel; MiniGhost the most bytes.
  // Compute is scaled down so that recovery is replay-bound — the regime the
  // flow-control window exists for ("recovering processes will never be
  // waiting for small messages"); at full compute/communication ratios the
  // window never binds and every setting looks identical.
  o.compute_scale *= 0.02;
  const std::vector<std::string> apps{"LU", "MiniGhost"};
  const std::vector<int> windows{1, 2, 4, 8, 16, 50, 128};

  std::vector<std::string> header{"Window"};
  for (const auto& a : apps) header.push_back(a + " norm. rework");
  util::Table table(header);

  std::map<std::string, sim::Time> ff_cache;
  for (const auto& app : apps) {
    harness::ScenarioConfig cfg = bench::make_config(o, app, k,
                                                     harness::ProtocolKind::kSpbc);
    cfg.spbc.checkpoint_every = 0;
    harness::ScenarioResult ff = harness::run_failure_free(cfg);
    ff_cache[app] = ff.run.completed ? ff.elapsed : 0;
  }

  for (int w : windows) {
    std::vector<std::string> row{std::to_string(w)};
    for (const auto& app : apps) {
      if (ff_cache[app] <= 0) {
        row.push_back("fail");
        continue;
      }
      harness::ScenarioConfig cfg = bench::make_config(o, app, k,
                                                       harness::ProtocolKind::kSpbc);
      cfg.spbc.checkpoint_every = 0;  // whole-run replay (paper methodology)
      cfg.spbc.replay_window = w;
      harness::ScenarioResult rec = harness::run_with_failure(cfg, ff_cache[app], 0.97);
      if (!rec.run.completed || rec.recoveries.empty() ||
          !rec.recoveries.front().complete()) {
        row.push_back("fail");
        continue;
      }
      row.push_back(util::Table::fmt(rec.normalized_rework(), 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "(the window trades pipelining against fairness: each replayer drains\n"
      " its log in post order, so a large window lets head-of-log destinations\n"
      " hog the sender's NIC and the slowest recovering rank sets the rework\n"
      " time. In the paper's MPICH prototype the window's main job was to keep\n"
      " replay ahead of the rendezvous protocol — our replay path ships full\n"
      " messages directly, so the rendezvous-stall benefit that motivated 50 is\n"
      " structural here and the fairness cost dominates at large windows.)\n");
  return 0;
}

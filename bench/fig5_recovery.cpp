// Figure 5: "Performance of SPBC in Recovery" — rework time of the failed
// cluster normalized to the failure-free time of the lost work, for 2, 4, 8
// and 16 clusters. Values below 1.0 mean recovery runs faster than the
// original execution (skipped inter-cluster sends + logged messages arriving
// early).
//
// Paper shape: always <= 1.0; AMG up to ~25% faster (comm-heavy, mostly
// inter-cluster); CM1/GTC/MiniFE within ~4% of 1.0 (compute-bound);
// MILC/MiniGhost small gains (comm mostly intra-cluster); smaller clusters
// recover faster.

#include "bench_common.hpp"

using namespace spbc;

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Figure 5: SPBC recovery, normalized to failure-free", o);

  int nodes = o.ranks / o.ppn;
  std::vector<int> cluster_counts;
  for (int k : {2, 4, 8, 16})
    if (k <= nodes) cluster_counts.push_back(k);

  std::vector<std::string> header{"App", "MPICH"};
  for (int k : cluster_counts) header.push_back(std::to_string(k) + " clusters");
  util::Table table(header);

  // The paper's methodology (Section 6.4): generate the logs with one full
  // execution, then re-execute ONLY the failed cluster while every other
  // process replays its complete log. We reproduce that by disabling
  // periodic checkpoints and failing near the end of the run: the cluster
  // rolls back to the initial state and re-executes everything, fed from
  // the survivors' full logs. Rework time is then directly comparable to
  // the failure-free execution time of the same work.
  for (const auto& app : bench::paper_apps()) {
    std::vector<std::string> row{app, "1.00"};
    for (int k : cluster_counts) {
      harness::ScenarioConfig cfg =
          bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);
      cfg.spbc.checkpoint_every = 0;  // roll back to sigma_0: replay everything
      harness::ScenarioResult ff = harness::run_failure_free(cfg);
      if (!ff.run.completed) {
        row.push_back("fail");
        continue;
      }
      harness::ScenarioResult rec = harness::run_with_failure(cfg, ff.elapsed, 0.97);
      if (rec.run.completed && !rec.recoveries.empty() &&
          rec.recoveries.front().complete()) {
        row.push_back(util::Table::fmt(rec.normalized_rework(), 3));
      } else {
        row.push_back("fail");
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(paper: all bars <= 1.0; AMG gains most — up to ~25%%; CM1/GTC/\n"
              " MiniFE ~1.0; fewer ranks per cluster => faster recovery)\n");
  return 0;
}

// Ablation: hostile workload matrix — lost work vs redundancy scheme under
// adversarial environment shapes (DESIGN.md §16).
//
// The same mid-run failure replays against every redundancy scheme
// {single, xor, rs} under each hostile shape: a clean run, bursty traffic
// phases, straggler/slow-node skew, a healing network partition, multi-job
// PFS interference, and a correlated whole-rack blast (the latter replaces
// the single-rank failure with one loss per rack node, staggered inside the
// control plane's correlation window). The workload is MiniFE ported to the
// four-call facade, so the bench also smoke-tests the drop-in adoption path
// at bench scale.
//
// The merit figure is lost work, ranks x (finish - t_base), where t_base is
// the checkpoint-free failure-free time UNDER THE SAME SHAPE — so a row
// isolates what the failure cost on that terrain, not what the terrain
// itself cost. Gate rows at the bottom print "pass"/"fail" tokens CI greps:
//   * hostile-all-recover — every scheme x shape cell completed and
//     recovered from its injected loss;
//   * hostile-shape-accounting — each shape's ScenarioResult counters moved
//     (straggler stall, partition holds, contended flushes, domain losses).

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/redundancy.hpp"

using namespace spbc;

namespace {

struct Shape {
  const char* name;
  // Applies the shape's hostile knobs; windows are placed with the clean
  // probe time so every scheme sees the identical terrain.
  void (*apply)(harness::ScenarioConfig&, sim::Time t_probe);
  bool domain_blast;  // rack blast replaces the single-rank failure
};

const Shape kShapes[] = {
    {"none", [](harness::ScenarioConfig&, sim::Time) {}, false},
    {"burst",
     [](harness::ScenarioConfig& cfg, sim::Time) {
       cfg.hostile.burst_factor = 3.0;
       cfg.hostile.burst_period = 3;
       cfg.hostile.burst_duty = 1;
     },
     false},
    {"straggler",
     [](harness::ScenarioConfig& cfg, sim::Time) {
       cfg.hostile.straggler_factor = 1.5;
       cfg.hostile.straggler_frac = 0.25;
       cfg.hostile.straggler_seed = 11;
     },
     false},
    {"partition",
     [](harness::ScenarioConfig& cfg, sim::Time t_probe) {
       cfg.hostile.partitions.push_back(
           {0.25 * t_probe, 0.45 * t_probe,
            cfg.nranks / cfg.ranks_per_node / 2});
     },
     false},
    {"pfs-interference",
     [](harness::ScenarioConfig& cfg, sim::Time) {
       // Another job owns 3/4 of the shared PFS ingest for the whole run.
       cfg.hostile.pfs_interference.push_back({0.0, 1e9, 0.25});
     },
     false},
    {"rack-blast",
     [](harness::ScenarioConfig& cfg, sim::Time) {
       cfg.hostile.rack_size = 4;
     },
     true},
};

/// The per-shape counter the accounting gate checks (0 for shapes whose
/// observable is the traffic itself).
uint64_t shape_stat(const Shape& s, const harness::ScenarioResult& r) {
  const std::string name = s.name;
  if (name == "straggler")
    return r.straggler_stall_time > 0 ? static_cast<uint64_t>(
               r.straggler_stall_time * 1e6) : 0;
  if (name == "partition") return r.partition_msgs_held;
  if (name == "pfs-interference") return r.pfs_contended_flushes;
  if (name == "rack-blast") return r.domain_failures_injected;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOpts o = bench::parse_opts(argc, argv);
  bench::print_header("Ablation: hostile workload matrix (lost work vs scheme x shape)",
                      o);

  const int nodes = o.ranks / o.ppn;
  const int k = std::min(8, nodes);
  const std::string app = "MiniFE-facade";

  harness::ScenarioConfig base =
      bench::make_config(o, app, k, harness::ProtocolKind::kSpbc);
  base.machine.abort_on_deadlock = false;
  base.spbc.storage = ckpt::StorageLevel::kPfs;
  base.spbc.async_staging = true;
  // The cost regime where schemes differentiate: a LOCAL write the app
  // waits for and a PFS far slower than the burst rate.
  base.spbc.storage_model.local_latency = 5e-3;
  base.spbc.storage_model.pfs_bw = 2e7;
  base.spbc.snapshot_pad_bytes = 1 << 20;

  // Clean probe: places partition windows and the failure point.
  harness::ScenarioConfig probe_cfg = base;
  probe_cfg.spbc.checkpoint_every = 0;
  probe_cfg.spbc.storage = ckpt::StorageLevel::kNone;
  harness::ScenarioResult probe = harness::run_failure_free(probe_cfg);
  if (!probe.run.completed) {
    std::printf("probe run failed\n");
    return 1;
  }
  const sim::Time t_probe = probe.elapsed;
  std::printf("workload: %s, %d ranks on %d nodes, clean t_probe %.3fs\n\n",
              app.c_str(), o.ranks, nodes, t_probe);

  const struct {
    const char* name;
    ckpt::SchemeKind kind;
  } schemes[] = {{"single", ckpt::SchemeKind::kSingle},
                 {"xor", ckpt::SchemeKind::kXorGroup},
                 {"rs", ckpt::SchemeKind::kReedSolomon}};

  util::Table table({"Scheme", "Shape", "t_base", "Finish", "Lost work",
                     "Recov", "Shape stat"});
  bool all_recover = true;
  bool accounting_ok = true;

  for (const Shape& shape : kShapes) {
    // Per-shape zero point: checkpoint-free, failure-free, same terrain.
    harness::ScenarioConfig free_cfg = probe_cfg;
    shape.apply(free_cfg, t_probe);
    harness::ScenarioResult free_run = harness::run_failure_free(free_cfg);
    const bool base_ok = free_run.run.completed;
    const sim::Time t_base = base_ok ? free_run.elapsed : 0;

    for (const auto& sch : schemes) {
      harness::ScenarioConfig cfg = base;
      cfg.spbc.redundancy.kind = sch.kind;
      shape.apply(cfg, t_probe);
      if (shape.domain_blast) {
        cfg.hostile.domain_failures.push_back(
            {0.55 * t_base, harness::FailureDomain::kRack, 1});
      } else {
        cfg.inject_failure = true;
        cfg.failure_at = 0.55 * t_base;
        cfg.victim_rank = 3;
      }
      harness::ScenarioResult res = harness::run_scenario(cfg);
      const bool ok =
          base_ok && res.run.completed && !res.recoveries.empty();
      all_recover = all_recover && ok;
      const double lost = ok ? static_cast<double>(cfg.nranks) *
                                   (res.elapsed - t_base)
                             : 0;
      const uint64_t stat = shape_stat(shape, res);
      if (ok && std::string(shape.name) != "none" &&
          std::string(shape.name) != "burst" && stat == 0)
        accounting_ok = false;
      table.add_row({sch.name, shape.name,
                     base_ok ? util::Table::fmt(t_base, 4) : "fail",
                     ok ? util::Table::fmt(res.elapsed, 4) : "fail",
                     ok ? util::Table::fmt(lost, 2) : "fail",
                     std::to_string(res.recoveries.size()),
                     std::to_string(stat)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Gate rows (CI greps "^|" for a "fail" token).
  std::printf("| gate hostile-all-recover: %s\n",
              all_recover ? "pass" : "fail");
  std::printf("| gate hostile-shape-accounting: %s\n",
              accounting_ok ? "pass" : "fail");
  return all_recover && accounting_ok ? 0 : 1;
}

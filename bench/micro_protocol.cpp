// Microbenchmarks (google-benchmark) for the hot paths the protocol adds to
// the MPI library: the matching predicate with and without pattern ids
// (Section 5.2.1's "additionally to comparing the source and tag"), the
// sender-log append (the Table 2 overhead), the received-window update, the
// event queue, and fiber context switches.

#include <benchmark/benchmark.h>

#include "core/sender_log.hpp"
#include "mpi/matching.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"

namespace spbc {
namespace {

mpi::Envelope make_env(int src, int tag, uint64_t seq) {
  mpi::Envelope e;
  e.src = src;
  e.dst = 0;
  e.tag = tag;
  e.ctx = 0;
  e.seqnum = seq;
  e.bytes = 1024;
  return e;
}

void BM_MatchPredicatePlain(benchmark::State& state) {
  mpi::RequestState req;
  req.match_src = mpi::kAnySource;
  req.match_tag = 7;
  mpi::Envelope env = make_env(3, 7, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpi::MatchEngine::matches(req, env, false));
  }
}
BENCHMARK(BM_MatchPredicatePlain);

void BM_MatchPredicateWithIds(benchmark::State& state) {
  // The entire cost of the A -> A' transformation on the matching path: one
  // extra tuple comparison.
  mpi::RequestState req;
  req.match_src = mpi::kAnySource;
  req.match_tag = 7;
  req.pid = {2, 41};
  mpi::Envelope env = make_env(3, 7, 1);
  env.pid = {2, 41};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpi::MatchEngine::matches(req, env, true));
  }
}
BENCHMARK(BM_MatchPredicateWithIds);

void BM_UnexpectedQueueScan(benchmark::State& state) {
  mpi::MatchEngine engine;
  const int depth = static_cast<int>(state.range(0));
  for (int i = 0; i < depth; ++i) {
    mpi::Payload p;
    engine.on_envelope(make_env(1, 1000 + i, static_cast<uint64_t>(i + 1)), p, true, 0);
  }
  for (auto _ : state) {
    mpi::RequestState probe;
    probe.match_src = mpi::kAnySource;
    probe.match_tag = 1000 + depth - 1;  // worst case: last entry
    mpi::Status st;
    benchmark::DoNotOptimize(engine.iprobe(probe, &st));
  }
}
BENCHMARK(BM_UnexpectedQueueScan)->Arg(4)->Arg(32)->Arg(256);

void BM_SenderLogAppend(benchmark::State& state) {
  const uint64_t bytes = static_cast<uint64_t>(state.range(0));
  std::vector<unsigned char> buf(bytes, 0xab);
  core::SenderLog log;
  uint64_t seq = 0;
  for (auto _ : state) {
    mpi::Envelope e = make_env(0, 1, ++seq);
    e.bytes = bytes;
    log.append(e, mpi::Payload::from_bytes(buf.data(), bytes));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_SenderLogAppend)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_SeqWindowAdd(benchmark::State& state) {
  mpi::SeqWindow w;
  uint64_t seq = 0;
  for (auto _ : state) {
    w.add(++seq);
    benchmark::DoNotOptimize(w.base());
  }
}
BENCHMARK(BM_SeqWindowAdd);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  double t = 0;
  for (auto _ : state) {
    q.schedule(t += 1.0, [] {});
    q.pop().second();
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_FiberSwitch(benchmark::State& state) {
  sim::Engine e(64 * 1024);
  // One fiber that yields forever; measure resume+yield round trips.
  sim::Fiber fiber([] {
    for (;;) sim::Fiber::current()->yield();
  }, 64 * 1024);
  for (auto _ : state) {
    fiber.resume();
  }
  // The fiber stays parked; its stack is reclaimed with the object.
}
BENCHMARK(BM_FiberSwitch);

}  // namespace
}  // namespace spbc

BENCHMARK_MAIN();

#pragma once
// The programming interface of Section 5.1, in the paper's own spelling.
//
//   pattern_id id = DECLARE_PATTERN(rank);
//   BEGIN_ITERATION(rank, id);
//   ... communication pattern with MPI_ANY_SOURCE ...
//   END_ITERATION(rank, id);
//
// The three primitives are purely local (no communication); they only move
// the rank's active-pattern state, which stamps every subsequent message and
// reception request with (pattern_id, iteration_id) for id-based matching.

#include <cstdint>

#include "mpi/rank.hpp"

namespace spbc::core {

using pattern_id = uint32_t;

/// pattern_id DECLARE_PATTERN(void) — generates a new pattern id.
inline pattern_id DECLARE_PATTERN(mpi::Rank& rank) { return rank.declare_pattern(); }

/// BEGIN_ITERATION(pattern_id) — the pattern becomes active; its
/// iteration_id is incremented by one.
inline void BEGIN_ITERATION(mpi::Rank& rank, pattern_id id) {
  rank.begin_iteration(id);
}

/// END_ITERATION(pattern_id) — the default communication pattern is restored.
inline void END_ITERATION(mpi::Rank& rank, pattern_id id) { rank.end_iteration(id); }

}  // namespace spbc::core

#include "core/sender_log.hpp"

namespace spbc::core {

void SenderLog::append(const mpi::Envelope& env, const mpi::Payload& payload) {
  LogEntry e;
  e.env = env;
  e.payload = payload;  // copy; synthetic payloads copy only the descriptor
  entries_.push_back(std::move(e));
  bytes_appended_ += env.bytes;
  bytes_retained_ += env.bytes;
  if (bytes_retained_ > retained_hwm_) retained_hwm_ = bytes_retained_;
  ++messages_appended_;
}

bool SenderLog::has_entries_to(int dst) const {
  for (const auto& e : entries_)
    if (e.env.dst == dst) return true;
  return false;
}

uint64_t SenderLog::gc_received(int dst, int ctx, const mpi::SeqWindow& captured,
                                int stream) {
  uint64_t freed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->env.dst == dst && it->env.ctx == ctx &&
        (stream == -1 || it->env.tag == stream) &&
        captured.contains(it->env.seqnum)) {
      freed += it->env.bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  bytes_retained_ -= freed;
  bytes_reclaimed_ += freed;
  return freed;
}

void SenderLog::serialize(util::ByteWriter& w) const {
  w.put<uint64_t>(entries_.size());
  for (const auto& e : entries_) {
    w.put(e.env);
    w.put<uint64_t>(e.payload.bytes);
    w.put<uint64_t>(e.payload.hash);
    w.put_vector(e.payload.data);
  }
}

void SenderLog::restore(util::ByteReader& r) {
  entries_.clear();
  bytes_retained_ = 0;
  auto n = r.get<uint64_t>();
  for (uint64_t i = 0; i < n; ++i) {
    LogEntry e;
    e.env = r.get<mpi::Envelope>();
    e.payload.bytes = r.get<uint64_t>();
    e.payload.hash = r.get<uint64_t>();
    e.payload.data = r.get_vector<unsigned char>();
    bytes_retained_ += e.env.bytes;
    entries_.push_back(std::move(e));
  }
}

void SenderLog::clear() {
  entries_.clear();
  bytes_retained_ = 0;
}

}  // namespace spbc::core

#pragma once
// SPBC — Scalable Pattern-Based Checkpointing (Section 4, Algorithm 1).
//
// Hierarchical protocol: coordinated checkpointing inside clusters, sender-
// based message logging between clusters, no delivery-event logging at all,
// and no inter-process synchronization during replay. Residual ANY_SOURCE
// non-determinism is handled by id-based matching (Section 4.3): the match
// predicate compares the (pattern_id, iteration_id) stamp carried by every
// message and reception request.
//
// Generalizations relative to the paper's pseudocode (documented in
// DESIGN.md):
//   * LR and LS scalars become received-windows (SeqWindow): a contiguous
//     prefix plus sparse out-of-order receipts, which stays correct when a
//     rendezvous payload completes behind newer eager traffic.
//   * Receiver-side duplicate filtering closes the race between a peer's
//     lastMessage reply and the recovering rank's re-execution.
//   * Overlapping failures of distinct clusters are supported; recovery of
//     one cluster re-triggers Rollbacks from other still-recovering
//     clusters, so replays invalidated by a second crash are re-issued.
//
//   * The intra-cluster checkpoint wave is marker-based (Chandy-Lamport
//     style) and never parks a member: each rank snapshots at its own
//     checkpoint boundary, stamps subsequent intra-cluster messages with the
//     new epoch (the piggybacked marker), keeps executing while peers catch
//     up, and the wave commits through an async binomial-tree completion
//     reduction (O(log k) deep; no member handles more than log2(k)
//     completion messages per epoch). Snapshot writes go through the
//     multi-level staging pipeline (ckpt/staging.hpp). Intra-
//     cluster messages that cross the cut are captured at the receiver and
//     re-delivered on restore. This replaces an earlier blocking drain
//     barrier whose concurrent waves could form a cross-cluster circular
//     wait through application halo dependencies under failure storms (the
//     paper does not specify the intra-cluster coordination algorithm).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ckpt/staging.hpp"
#include "ckpt/store.hpp"
#include "core/control_plane.hpp"
#include "core/replayer.hpp"
#include "core/sender_log.hpp"
#include "mpi/machine.hpp"
#include "mpi/protocol_hooks.hpp"

namespace spbc::core {

struct SpbcConfig {
  /// Take a coordinated checkpoint every N maybe_checkpoint() calls
  /// (iteration boundaries); 0 disables periodic checkpointing.
  uint64_t checkpoint_every = 0;

  /// Id-based matching (the A -> A' transformation). Disabling reproduces
  /// the plain Algorithm-1 protocol, which can mismatch after a failure in
  /// the Figure 2 scenario — tests rely on this switch.
  bool pattern_ids = true;

  /// Sender-side logging cost model: one memcpy of the payload into the log
  /// plus fixed bookkeeping. This is the failure-free overhead of Table 2.
  double log_memcpy_bw = 4.0e9;  // bytes/s
  sim::Time log_overhead = sim::nsec(120);

  /// Replay flow-control window (Section 5.2.2; the paper settled on 50).
  int replay_window = 50;

  /// Checkpoint storage level and cost model (kNone = free, matching the
  /// paper's measurement methodology).
  ckpt::StorageLevel storage = ckpt::StorageLevel::kNone;
  ckpt::StorageCostModel storage_model{};

  /// Multi-level staging (SCR-style; see ckpt/staging.hpp): charge the
  /// member's fiber only the fast LOCAL write and promote the snapshot
  /// LOCAL -> redundancy -> PFS in the background, overlapped with
  /// computation. When false, the write is synchronous at `storage` level.
  /// Ignored while storage == kNone.
  bool async_staging = false;

  /// What the staging chain's remote-redundancy hop places (see
  /// ckpt/redundancy.hpp): SINGLE (LOCAL only), PARTNER (full buddy copy,
  /// the default — the pre-refactor behavior), XOR group parity (~1/(G-1)
  /// of the copy bytes, tolerating any single in-group node loss), or
  /// Reed-Solomon RS(k, m) (GF(256) parity at (m/k)x the copy bytes,
  /// tolerating any m concurrent in-group node losses).
  ckpt::RedundancyConfig redundancy{};

  /// Virtual app-state bytes added to every snapshot's STAGED (and costed)
  /// size — the synthetic workloads carry token state vectors, while real
  /// HPC checkpoints run megabytes per process, and staging-level tradeoffs
  /// (LOCAL stall, redundancy bytes, PFS drain rate) only appear at real
  /// sizes. The pad inflates what the storage pipeline and the control
  /// plane's Daly terms see; the stored/replayed snapshot bytes are
  /// unchanged (nothing is materialized). Since nothing is materialized the
  /// pad is incompressible: it is added on top of the POST-reduction size.
  /// Workloads that want reduction-sensitive sizing use `state_model`
  /// instead.
  uint64_t snapshot_pad_bytes = 0;

  /// Checkpoint data reduction (ckpt/reduction.hpp; DESIGN.md §15):
  /// content-addressed block deltas between consecutive epochs and/or
  /// deterministic LZ/RLE compression, applied once in the store — staging
  /// fragments, PFS flushes and the control plane's Daly C_level terms all
  /// see the post-reduction bytes. Both off by default (the raw path is
  /// bit-for-bit the pre-reduction pipeline).
  ckpt::ReductionConfig reduction{};

  /// Per-rank synthetic evolving app state materialized into every snapshot
  /// (AMG/miniFE-style block-mutation model; ckpt/reduction.hpp). 0 bytes =
  /// off. Gives the reduction layer real deltas and real compressibility;
  /// restored runs regenerate identical state on any shard/thread layout.
  ckpt::StateModelConfig state_model{};

  /// Bound on a rank's live in-flight-capture bytes: when exceeded, the rank
  /// cuts a new epoch at its next checkpoint opportunity so the resulting
  /// commit can prune the retained captures (a cluster that never reaches
  /// its periodic boundary would otherwise retain them unboundedly — see
  /// ROADMAP). 0 disables the bound; the high-water mark is always tracked
  /// (ckpt::Store::capture_hwm_bytes).
  uint64_t capture_bytes_bound = 0;

  /// Extension: reclaim log entries once the destination cluster checkpoints
  /// (requires one notification per channel after each checkpoint wave).
  bool gc_logs = false;

  /// Self-tuning reliability control plane (core/control_plane.hpp): when
  /// enabled, the checkpoint trigger becomes time-based at the observed-MTBF
  /// Young/Daly interval, per-epoch level plans pace the redundancy hop and
  /// the PFS flush, a background scrub wave audits staged fragments for
  /// silent loss (control.scrub_period), and the redundancy scheme can
  /// escalate to control.escalated under correlated double losses. When
  /// disabled (the default), the static checkpoint_every schedule and
  /// full-depth writes are bit-for-bit unchanged.
  ControlPlaneConfig control{};

  /// Multi-job PFS interference phases (hostile workload matrix; DESIGN.md
  /// §16): windows during which other jobs occupy a fraction of the shared
  /// PFS ingest bandwidth, stretching this job's flush costs. Empty (the
  /// default) keeps every flush cost byte-identical.
  std::vector<ckpt::PfsInterferencePhase> pfs_interference{};
};

class SpbcProtocol : public mpi::ProtocolHooks {
 public:
  explicit SpbcProtocol(SpbcConfig cfg = {});

  // ---- ProtocolHooks ---------------------------------------------------
  void attach(mpi::Machine& machine) override;
  void on_cluster_map(int nclusters) override;
  void stamp_envelope(mpi::Rank& sender, mpi::Envelope& env) override;
  sim::Time on_send(mpi::Rank& sender, const mpi::Envelope& env,
                    const mpi::Payload& payload) override;
  bool should_transmit(mpi::Rank& sender, const mpi::Envelope& env) override;
  void on_delivered(mpi::Rank& receiver, const mpi::Envelope& env,
                    const mpi::Payload& payload) override;
  bool pattern_matching_enabled() const override { return cfg_.pattern_ids; }
  bool maybe_checkpoint(mpi::Rank& rank) override;
  void on_failure_injected(int victim_rank, mpi::FailureKind kind) override;
  void on_failure(int victim_rank) override;
  void on_rank_killed(int rank) override;
  void on_control(mpi::Rank& receiver, const mpi::ControlMsg& msg) override;
  void on_rank_start(mpi::Rank& rank, bool restarted) override;

  // ---- introspection ----------------------------------------------------
  const SenderLog& log_of(int rank) const;
  SenderLog& log_of_mut(int rank);
  const Replayer& replayer_of(int rank) const;
  const ckpt::Store& store() const { return store_; }
  const ckpt::StagingArea& staging() const { return staging_; }
  /// Mutable staging access for fault injection (silent-loss benches/tests
  /// corrupt fragments from serial events) and manual scrub waves.
  ckpt::StagingArea& staging_mut() { return staging_; }
  const ControlPlane& control_plane() const { return control_; }
  const SpbcConfig& config() const { return cfg_; }
  /// An online repartition bridge is between announce and flip (DESIGN.md
  /// §14): one colocation unit is being walked to a new cluster.
  bool migration_active() const { return migration_.active; }
  uint64_t checkpoints_taken() const { return store_.snapshots_taken(); }
  uint64_t rollbacks() const { return rollbacks_; }
  /// Staging residency mask (ckpt::ResidencyBit) of this rank's snapshot at
  /// the moment its epoch committed — the level redundancy the commit was
  /// actually backed by (0 when staging is off).
  uint8_t commit_levels(int rank) const;
  /// Waves triggered by the capture-bytes bound rather than the periodic
  /// schedule or a peer marker.
  uint64_t capture_forced_waves() const {
    return capture_forced_waves_.load(std::memory_order_relaxed);
  }
  /// Last checkpoint epoch whose wave fully committed (every member
  /// snapshotted and drained its pre-cut intra-cluster sends). Recovery
  /// restores this epoch.
  uint64_t committed_epoch(int cluster) const;
  /// Epoch of this rank's most recent local snapshot (>= its cluster's
  /// committed epoch while a wave is in flight).
  uint64_t snapshot_epoch(int rank) const;

  /// Starts a checkpoint wave from the caller (fiber context) regardless of
  /// the periodic schedule: the caller snapshots immediately; its markers
  /// make every cluster peer join the wave at its next maybe_checkpoint()
  /// call (peers running with checkpoint_every=0 included). The epoch
  /// commits — i.e. becomes the restore target — once every member has
  /// joined and drained, so peers must keep reaching checkpoint
  /// opportunities for the forced snapshot to become restorable.
  void checkpoint_now(mpi::Rank& rank);

  /// The facade's trigger query (spbc_need_checkpoint): answers exactly the
  /// question maybe_checkpoint() asks — the §13 control plane's time-based
  /// boundary when enabled, the static every-N schedule otherwise, OR a
  /// cluster peer's wave marker running ahead — WITHOUT cutting an epoch.
  /// Counts the call as a checkpoint opportunity like maybe_checkpoint()
  /// does, so facade-driven apps pace the periodic schedule identically.
  bool need_checkpoint(mpi::Rank& rank);

  /// Per-rank state of the four-call facade (core/facade.hpp). `regions` is
  /// the committed named-region map embedded in every snapshot via the app
  /// state handlers; `staged` holds the open session's routed writes until
  /// spbc_complete(valid=1) promotes them. Reset (session aborted) on
  /// rollback: a torn session must never leak into the restored epoch.
  struct FacadeState {
    bool in_session = false;
    bool restart_loaded = false;  // this incarnation pulled its restart state
    uint64_t sessions = 0;    // spbc_start calls that opened a session
    uint64_t completes = 0;   // spbc_complete(valid=1) commits
    std::map<std::string, std::vector<unsigned char>> staged;
    std::map<std::string, std::vector<unsigned char>> regions;
  };
  FacadeState& facade_state(int rank) {
    return facade_[static_cast<size_t>(rank)];
  }

 protected:
  /// HydEE overrides this to install its coordinator gate on each replayer.
  virtual Replayer::Gate make_gate(int /*rank*/) { return nullptr; }

  /// HydEE overrides: called when a replayed message has been delivered.
  virtual void on_replay_delivered(const mpi::Envelope& /*env*/) {}

  mpi::Machine* machine_ = nullptr;
  SpbcConfig cfg_;

 private:
  struct CkptLocal {
    uint64_t calls = 0;       // maybe_checkpoint() invocations (checkpointed)
    uint64_t epoch = 0;       // last epoch this rank knows committed
    uint64_t snap_epoch = 0;  // last epoch this rank snapshotted (>= epoch);
                              // the stamp carried by its outgoing envelopes
    // Highest epoch whose kCkptComplete this member has sent (transient;
    // reset to the restored epoch on rollback). A drain at time T covers
    // every epoch cut before T, so one watcher firing can report several.
    uint64_t complete_sent = 0;
    // Highest epoch announced by a cluster peer's kCkptMarker (transient).
    // When it runs ahead of snap_epoch, this member joins the wave at its
    // next maybe_checkpoint() call — the application-level analogue of
    // "snapshot on first marker receipt": the marker cannot interrupt the
    // app mid-iteration, but the next checkpoint opportunity is the first
    // point where an app-consistent local snapshot exists.
    uint64_t wave_seen = 0;
    // Highest epoch whose marker this member has flooded over the binomial
    // tree (transient; only used under MachineConfig::tree_ckpt_markers).
    // The >= guard makes each member forward a wave's marker at most once,
    // bounding dissemination at O(members) messages per wave instead of the
    // all-to-all broadcast's O(members^2).
    uint64_t marker_fwd = 0;
    // Binomial-tree commit reduction (transient, cleared on rollback): per
    // epoch, the member ranks covered by aggregates received from this
    // member's tree children. The aggregate (children + self) is forwarded
    // to the tree parent once this member's own drain reached the epoch and
    // every child subtree reported; a full aggregate at the tree root (the
    // wave root) commits the epoch. Replaces the flat member->root
    // reduction: the commit path is O(log k) hops deep and no member
    // handles more than log2(k) messages per epoch.
    //
    // Under gc_logs the aggregate also carries, per covered member, the
    // inter-cluster received-windows that member froze at its cut (encoded
    // words, piggybacked on kCkptComplete). The windows therefore live only
    // inside the in-flight wave state and on the wire — no per-(rank, epoch)
    // map is frozen in a side table until commit (see ROADMAP).
    struct TreeAgg {
      std::set<int> covered;
      bool self_done = false;
      bool sent = false;
      std::map<int, std::vector<uint64_t>> windows;  // member -> encoded
    };
    std::map<uint64_t, TreeAgg> agg;
    // Staging residency of this rank's snapshot when its epoch committed.
    uint8_t commit_levels = 0;
    // When this member last cut an epoch (virtual time) — the control
    // plane's time-based trigger compares against it. Reset to the restore
    // time on rollback so the next cut comes one interval after restart.
    sim::Time last_cut = 0;
  };

  /// Per-cluster marker-wave state (event-context authoritative view).
  struct ClusterWave {
    uint64_t committed = 0;  // last epoch whose completion reduction finished
  };

  /// One online-repartition bridge (DESIGN.md §14), at most one in flight
  /// globally: the ranks of one colocation unit walking from cluster `from`
  /// to cluster `to`. Announced on a cadence tick once both clusters are
  /// quiescent; flipped on a later tick once the boundary epochs committed
  /// at full depth. Serial-context-written; shard events only read it.
  struct Migration {
    bool active = false;
    std::vector<int> ranks;   // the moving colocation unit's residents
    int unit = -1;            // physical node id (mpi::Machine::node_of)
    int from = -1;            // cluster A (source)
    int to = -1;              // cluster B (destination)
    uint64_t boundary_a = 0;  // first A epoch logged as if already flipped
    uint64_t pin_b = 0;       // B epoch the movers' snapshots renumber into
  };

  bool is_inter_cluster(const mpi::Envelope& env) const;
  bool is_migrating(int rank) const;
  /// No wave in flight and no member ahead of / behind the committed epoch.
  bool cluster_quiescent(int cluster) const;
  /// Self-rescheduling serial cadence tick for the streaming repartitioner
  /// (armed once from on_cluster_map when control.repartition_period > 0).
  void schedule_repartition();
  void repartition_tick();
  void try_announce_migration();
  void try_flip_migration();
  ClusterWave& wave_of(int cluster);
  void run_coordinated_checkpoint(mpi::Rank& rank);
  void arm_wave_completion(int member, uint64_t epoch);
  void try_forward_aggregate(int member, uint64_t epoch);
  void commit_epoch(int cluster, uint64_t epoch,
                    const std::map<int, std::vector<uint64_t>>& gc_windows);
  /// Picks the newest epoch every member can still restore (scanning down
  /// from `epoch_hint`), restores in-memory state, executes the staging
  /// restore plans (XOR rebuilds ride the network), and schedules the
  /// respawn. Re-enters itself one epoch lower when a rebuild's sources die
  /// mid-read and no reconstruction path remains.
  void select_and_restore(int cluster, std::vector<int> members,
                          sim::Time failure_time,
                          std::map<int, mpi::Rank::Progress> targets,
                          uint64_t epoch_hint);
  void restore_rank(int r, uint64_t epoch);
  void redeliver_captured(int r, uint64_t epoch);
  void send_rollbacks_from(int r, const std::set<int>& peers);
  std::set<int> rollback_peers_of(int r) const;
  /// Aggregated rollback announce (MachineConfig::aggregate_rollbacks): one
  /// kClusterRollback from the cluster leader to each rank in `targets`,
  /// carrying every member's restored windows for that destination.
  void send_cluster_rollback(int cluster, const std::vector<int>& members,
                             const std::vector<int>& targets);
  void handle_rollback(mpi::Rank& receiver, const mpi::ControlMsg& msg);
  void handle_cluster_rollback(mpi::Rank& receiver, const mpi::ControlMsg& msg);
  /// Tree-based wave-marker dissemination (MachineConfig::tree_ckpt_markers):
  /// forwards `epoch` to this member's binomial-tree neighbors, at most once
  /// per epoch. `learned_from` is the peer the marker arrived from (-1 when
  /// this member initiated the wave) and is skipped.
  void flood_wave_marker(int me, uint64_t epoch, int learned_from);
  void handle_last_message(mpi::Rank& receiver, const mpi::ControlMsg& msg);
  void gc_from_windows(int member, const std::vector<uint64_t>& blob);
  /// Capture-bound backstop after a commit's prune: when the retention
  /// floor (PFS frontier) lags and the rank's live captures still exceed
  /// the bound, spill the oldest ones to LOCAL storage instead of stalling
  /// reclamation.
  void maybe_spill_captures(int rank);

  ckpt::Store store_;
  ckpt::StagingArea staging_;
  ControlPlane control_;
  // Per-cluster: the last injected failure's storage survived (process-only
  // crash). Written at the crash instant (serial context), consulted by
  // on_rank_killed for the victim's kill (same serial event) and the
  // detection-time peer kills (a serial event too). Default: node loss.
  std::vector<uint8_t> storage_survives_;
  std::vector<SenderLog> logs_;
  std::vector<Replayer> replayers_;
  // Per-rank synthetic evolving app state (state_model.bytes > 0 only).
  // Mutated from the rank's own shard at its epoch cut and regenerated
  // deterministically on restore, so delta captures see realistic
  // block-level churn without a real application.
  std::vector<std::vector<unsigned char>> synth_state_;
  // Per-rank facade sessions/regions (only touched by facade-driven apps;
  // pattern-API apps never allocate region bytes). Sized in attach().
  std::vector<FacadeState> facade_;
  std::vector<CkptLocal> ckpt_;
  // Pre-sized by on_cluster_map (lazy map insertion would be a structural
  // race under the threaded shard executor). A cluster's wave cell is read
  // from its own shard and written there or in serial recovery context.
  std::vector<ClusterWave> waves_;
  std::set<int> recovering_clusters_;   // serial context only
  std::set<int> restart_pending_;       // serial context only
  uint64_t rollbacks_ = 0;              // serial context only
  // The (at most one) in-flight cluster migration and the per-cluster epochs
  // its bridge forces to full staging depth (and pins against pruning until
  // the flip). Written on serial cadence ticks; read by shard events — the
  // repartitioner therefore requires engine_threads <= 1.
  Migration migration_;
  std::map<int, uint64_t> forced_pfs_epoch_;
  bool repartition_armed_ = false;
  // Bumped from on_delivered on any shard (capture-bound pressure).
  std::atomic<uint64_t> capture_forced_waves_{0};
};

}  // namespace spbc::core

#pragma once
// SPBC — Scalable Pattern-Based Checkpointing (Section 4, Algorithm 1).
//
// Hierarchical protocol: coordinated checkpointing inside clusters, sender-
// based message logging between clusters, no delivery-event logging at all,
// and no inter-process synchronization during replay. Residual ANY_SOURCE
// non-determinism is handled by id-based matching (Section 4.3): the match
// predicate compares the (pattern_id, iteration_id) stamp carried by every
// message and reception request.
//
// Generalizations relative to the paper's pseudocode (documented in
// DESIGN.md):
//   * LR and LS scalars become received-windows (SeqWindow): a contiguous
//     prefix plus sparse out-of-order receipts, which stays correct when a
//     rendezvous payload completes behind newer eager traffic.
//   * Receiver-side duplicate filtering closes the race between a peer's
//     lastMessage reply and the recovering rank's re-execution.
//   * Overlapping failures of distinct clusters are supported; recovery of
//     one cluster re-triggers Rollbacks from other still-recovering
//     clusters, so replays invalidated by a second crash are re-issued.
//
// Known limitation: the intra-cluster checkpoint wave is a blocking drain
// barrier. Under sustained failure storms (many rollbacks close together),
// clusters can drift far enough out of phase that two concurrently blocking
// waves form a cross-cluster circular wait through application halo
// dependencies. A marker-based (Chandy-Lamport) wave that snapshots without
// parking its members would remove the cycle; the paper does not specify
// the intra-cluster coordination algorithm. The MTBF stress bench reports
// such rows as "fail" rather than masking them.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ckpt/store.hpp"
#include "core/replayer.hpp"
#include "core/sender_log.hpp"
#include "mpi/machine.hpp"
#include "mpi/protocol_hooks.hpp"

namespace spbc::core {

struct SpbcConfig {
  /// Take a coordinated checkpoint every N maybe_checkpoint() calls
  /// (iteration boundaries); 0 disables periodic checkpointing.
  uint64_t checkpoint_every = 0;

  /// Id-based matching (the A -> A' transformation). Disabling reproduces
  /// the plain Algorithm-1 protocol, which can mismatch after a failure in
  /// the Figure 2 scenario — tests rely on this switch.
  bool pattern_ids = true;

  /// Sender-side logging cost model: one memcpy of the payload into the log
  /// plus fixed bookkeeping. This is the failure-free overhead of Table 2.
  double log_memcpy_bw = 4.0e9;  // bytes/s
  sim::Time log_overhead = sim::nsec(120);

  /// Replay flow-control window (Section 5.2.2; the paper settled on 50).
  int replay_window = 50;

  /// Checkpoint storage level and cost model (kNone = free, matching the
  /// paper's measurement methodology).
  ckpt::StorageLevel storage = ckpt::StorageLevel::kNone;
  ckpt::StorageCostModel storage_model{};

  /// Extension: reclaim log entries once the destination cluster checkpoints
  /// (requires one notification per channel after each checkpoint wave).
  bool gc_logs = false;
};

class SpbcProtocol : public mpi::ProtocolHooks {
 public:
  explicit SpbcProtocol(SpbcConfig cfg = {});

  // ---- ProtocolHooks ---------------------------------------------------
  void attach(mpi::Machine& machine) override;
  sim::Time on_send(mpi::Rank& sender, const mpi::Envelope& env,
                    const mpi::Payload& payload) override;
  bool should_transmit(mpi::Rank& sender, const mpi::Envelope& env) override;
  void on_delivered(mpi::Rank& receiver, const mpi::Envelope& env) override;
  bool pattern_matching_enabled() const override { return cfg_.pattern_ids; }
  bool maybe_checkpoint(mpi::Rank& rank) override;
  void on_failure(int victim_rank) override;
  void on_control(mpi::Rank& receiver, const mpi::ControlMsg& msg) override;
  void on_rank_start(mpi::Rank& rank, bool restarted) override;

  // ---- introspection ----------------------------------------------------
  const SenderLog& log_of(int rank) const;
  SenderLog& log_of_mut(int rank);
  const Replayer& replayer_of(int rank) const;
  const ckpt::Store& store() const { return store_; }
  const SpbcConfig& config() const { return cfg_; }
  uint64_t checkpoints_taken() const { return store_.snapshots_taken(); }
  uint64_t rollbacks() const { return rollbacks_; }

  /// Forces an immediate coordinated checkpoint of the caller's cluster
  /// (fiber context) regardless of the periodic schedule.
  void checkpoint_now(mpi::Rank& rank);

 protected:
  /// HydEE overrides this to install its coordinator gate on each replayer.
  virtual Replayer::Gate make_gate(int /*rank*/) { return nullptr; }

  /// HydEE overrides: called when a replayed message has been delivered.
  virtual void on_replay_delivered(const mpi::Envelope& /*env*/) {}

  mpi::Machine* machine_ = nullptr;
  SpbcConfig cfg_;

 private:
  struct CkptLocal {
    uint64_t calls = 0;        // maybe_checkpoint() invocations (checkpointed)
    uint64_t epoch = 0;        // completed checkpoint waves (checkpointed)
    // Transient barrier state (zeroed on rollback):
    int ready_count = 0;
    int done_count = 0;
    bool take_received = false;
    bool resume_received = false;
  };

  bool is_inter_cluster(const mpi::Envelope& env) const;
  void run_coordinated_checkpoint(mpi::Rank& rank);
  void take_snapshot(mpi::Rank& rank);
  void restore_rank(int r);
  void send_rollbacks_from(int r, const std::set<int>& peers);
  std::set<int> rollback_peers_of(int r) const;
  void handle_rollback(mpi::Rank& receiver, const mpi::ControlMsg& msg);
  void handle_last_message(mpi::Rank& receiver, const mpi::ControlMsg& msg);
  void gc_after_checkpoint(int cluster);

  ckpt::Store store_;
  std::vector<SenderLog> logs_;
  std::vector<Replayer> replayers_;
  std::vector<CkptLocal> ckpt_;
  std::set<int> recovering_clusters_;
  std::set<int> restart_pending_;  // killed + restored, respawn scheduled
  uint64_t rollbacks_ = 0;
};

}  // namespace spbc::core

#pragma once
// Self-tuning reliability control plane for the staged checkpoint pipeline.
//
// SPBC's checkpoint interval and redundancy scheme are static configuration;
// a production runtime observes its failure process and adapts (FTI/MPC-style
// per-level interval tuning against a cost model, SCR-style rebuild of lost
// cache fragments before the next failure finds them). This module closes
// that loop over three mechanisms:
//
//  * Per-level interval controller. Sliding-window estimators of the
//    observed mean time between failures — three classes: any failure,
//    storage-destroying node losses, and correlated double losses (two node
//    losses within a short window, the class that defeats single parity) —
//    drive generalized Young/Daly optimal intervals per level of the
//    LOCAL -> redundancy -> PFS cost model:
//        T_level = sqrt(2 * C_level * MTBF_class)
//    where C_level is the level's incremental write cost for the observed
//    snapshot size. The LOCAL interval paces the checkpoint wave itself
//    (time-based trigger instead of the static every-N-iterations schedule);
//    the redundancy and PFS intervals become epoch strides, so cheap LOCAL
//    epochs fire often while PFS flushes stay rare (ckpt::LevelPlan).
//
//  * Background scrubbing cadence. The periodic audit wave itself lives in
//    ckpt::StagingArea (it walks residency and rides net::Network); the
//    control plane uses the same tick for its time-based policy checks.
//
//  * Scheme escalation. When the observed correlated-double-loss count
//    crosses a threshold, future epochs are routed through a pre-built
//    stronger scheme (XOR -> RS(k, m)); after a calm period with no double
//    loss the scheme de-escalates. Hysteresis lives here; the pluggable
//    scheme switch lives in StagingArea (epochs pin their encoder).
//
// Determinism discipline (see DESIGN.md §13): every estimator / escalation
// MUTATION happens in serial context (failure injections and scrub ticks
// both run at global barriers); interval and plan READS are computed on
// demand as pure functions of that serial-written state, so there is no
// cached value concurrent shard events could race on. The snapshot-size
// observation is an atomic max — order-independent across shards.

#include <atomic>
#include <cstdint>
#include <deque>

#include "ckpt/staging.hpp"
#include "ckpt/store.hpp"
#include "sim/time.hpp"

namespace spbc::core {

/// Sliding-window estimator of a failure process's mean time between
/// events: the mean of the last `window` inter-event gaps, reporting the
/// prior until `min_samples` gaps accumulated. The window opens at t=0 (job
/// start), so the first event contributes its arrival time as a gap. A
/// step-change in the true rate is fully absorbed after `window` events —
/// the bounded re-convergence the tests pin.
class RateEstimator {
 public:
  RateEstimator() = default;
  RateEstimator(int window, int min_samples, double prior_mtbf)
      : window_(window < 1 ? 1 : window),
        min_samples_(min_samples < 1 ? 1 : min_samples),
        prior_(prior_mtbf) {}

  /// Serial context: record an event at time `now` (non-decreasing).
  void note_event(sim::Time now) {
    const double gap = now - last_;
    last_ = now;
    gaps_.push_back(gap);
    sum_ += gap;
    if (static_cast<int>(gaps_.size()) > window_) {
      sum_ -= gaps_.front();
      gaps_.pop_front();
    }
  }

  double mtbf() const {
    if (static_cast<int>(gaps_.size()) < min_samples_ || sum_ <= 0.0)
      return prior_;
    return sum_ / static_cast<double>(gaps_.size());
  }

  int samples() const { return static_cast<int>(gaps_.size()); }
  sim::Time last_event() const { return last_; }

 private:
  int window_ = 32;
  int min_samples_ = 2;
  double prior_ = 10.0;
  std::deque<double> gaps_;
  double sum_ = 0.0;
  sim::Time last_ = 0.0;
};

struct ControlPlaneConfig {
  /// Master switch: off = the static schedule (checkpoint_every, full-depth
  /// writes) exactly as before.
  bool enabled = false;

  // ---- failure-rate estimation ----
  int window = 32;      // inter-failure gaps kept per failure class
  int min_samples = 2;  // gaps before the observed rate replaces the prior
  double prior_mtbf = 10.0;          // any-failure prior (virtual seconds)
  double prior_storage_mtbf = 20.0;  // node-loss (storage-destroying) prior
  double prior_double_mtbf = 200.0;  // correlated double-loss prior
  /// Two node losses on distinct nodes within this window count as one
  /// correlated double-loss event.
  sim::Time correlation_window = 0.05;

  // ---- interval planner ----
  sim::Time min_interval = 1e-3;  // clamps on the LOCAL epoch interval
  sim::Time max_interval = 60.0;
  uint64_t max_level_stride = 64;  // clamp on redundancy/PFS epoch strides
  /// Snapshot-size seed for the Daly cost terms until a real write is seen.
  uint64_t snapshot_bytes_hint = 1 << 20;
  /// Set by the protocol from SpbcConfig::async_staging: under async staging
  /// the redundancy hop and the PFS flush run in the background, so their
  /// app-visible incremental cost is the bandwidth they occupy (bytes/bw),
  /// not the full latency-dominated write time — the strides must not buy
  /// rollback depth to save latency the app never sees.
  bool async_staging = false;

  // ---- background scrubbing ----
  sim::Time scrub_period = 0;  // 0 = no audit wave (forwarded to staging)

  // ---- scheme escalation ----
  bool escalation = false;
  int escalate_after = 2;       // double-loss events before promoting
  sim::Time calm_period = 5.0;  // no double loss for this long -> demote
  ckpt::RedundancyConfig escalated{ckpt::SchemeKind::kReedSolomon, 4, 4, 2};

  // ---- online repartitioning ----
  /// Cadence of the streaming repartitioner's drift check (0 = never): every
  /// period the protocol asks clustering::StreamingRepartitioner for
  /// cut-reducing node moves against the live traffic matrix and migrates
  /// them through the quiescence bridge (DESIGN.md §14).
  sim::Time repartition_period = 0;
  /// Most colocation units migrated per cadence tick.
  int repartition_max_moves = 1;
};

struct ControlPlaneStats {
  uint64_t failures = 0;        // injected failure events observed
  uint64_t storage_losses = 0;  // events that destroyed node storage
  uint64_t double_losses = 0;   // correlated double-loss events
  uint64_t replans = 0;         // commit-time re-plan points
  uint64_t escalations = 0;
  uint64_t deescalations = 0;
  double observed_mtbf = 0;
  double observed_storage_mtbf = 0;
  double observed_double_mtbf = 0;
  sim::Time local_interval = 0;
  uint64_t redundancy_stride = 0;
  uint64_t pfs_stride = 0;
  bool escalated = false;
  uint64_t repartitions = 0;    // completed online repartition flips
  uint64_t ranks_migrated = 0;  // ranks moved across clusters by them
};

class ControlPlane {
 public:
  ControlPlane(const ControlPlaneConfig& cfg,
               const ckpt::StorageCostModel& model);

  /// Wires the staging area escalation switches (may be null in unit tests:
  /// the policy state machine still runs, only the switch is skipped).
  void attach(ckpt::StagingArea* staging) { staging_ = staging; }

  /// Containment domains (the protocol's cluster count, wired before the
  /// run). SPBC rolls back ONE cluster per failure, so the failure rate a
  /// Young/Daly interval must balance against is the rate at which a given
  /// domain loses work: class MTBF x domains, not the global machine MTBF —
  /// a machine of many small clusters checkpoints each of them less often,
  /// not more.
  void set_domains(int n) { domains_ = n < 1 ? 1 : n; }
  int domains() const { return domains_; }

  bool enabled() const { return cfg_.enabled; }
  const ControlPlaneConfig& config() const { return cfg_; }

  /// Serial context (the crash instant): feed the estimators and run the
  /// escalation policy. Exactly one call per injected failure event.
  /// `storage_lost` distinguishes node losses from process-only failures;
  /// `node` is the victim's node (correlated-pair bookkeeping).
  void note_failure(sim::Time now, bool storage_lost, int node);

  /// Serial context (scrub cadence): time-based policy checks that must not
  /// wait for the next failure — currently de-escalation on calm.
  void on_tick(sim::Time now);

  /// Serial context (migration flip): one online repartition completed,
  /// moving `moved` ranks across clusters.
  void note_repartition(int moved) {
    ++repartitions_;
    ranks_migrated_ += static_cast<uint64_t>(moved < 0 ? 0 : moved);
  }

  /// Any shard: observe a real snapshot size — the staged (post-reduction)
  /// bytes, after delta encoding and compression, plus the incompressible
  /// pad. Daly's C is the cost actually paid per checkpoint, so the interval
  /// math must see what the storage hierarchy ships, not the raw capture
  /// size. Two-phase for bit-identity
  /// across shard/thread layouts: the observation lands in a pending atomic
  /// max (order-independent), and only a serial-context event (a failure or
  /// a scrub tick) publishes it into the value the interval math reads — so
  /// concurrent shard events never see a mid-flight change.
  void note_snapshot_bytes(uint64_t bytes);

  /// Commit hook (the wave root's shard event): a re-plan point. Only a
  /// relaxed counter moves here — the plan itself is recomputed on demand
  /// from serial-written state, never cached where a reader could race.
  void on_commit() { replans_.fetch_add(1, std::memory_order_relaxed); }

  // ---- plan reads (pure functions of serial-written state) --------------
  /// Young/Daly interval between LOCAL epochs for the observed any-failure
  /// MTBF, clamped to [min_interval, max_interval].
  sim::Time local_interval() const;
  /// Every how many LOCAL epochs the plan keeps the redundancy hop / the
  /// PFS flush (>= 1; epoch strides derived from the per-level intervals).
  uint64_t redundancy_stride() const;
  uint64_t pfs_stride() const;
  ckpt::LevelPlan plan_for_epoch(uint64_t epoch) const;

  double observed_mtbf() const { return any_.mtbf(); }
  double observed_storage_mtbf() const { return storage_.mtbf(); }
  double observed_double_mtbf() const { return dbl_.mtbf(); }
  bool escalated() const { return escalated_; }

  ControlPlaneStats stats() const;

 private:
  uint64_t snapshot_bytes() const;
  void maybe_deescalate(sim::Time now);
  void publish_snapshot_bytes();

  ControlPlaneConfig cfg_;
  ckpt::StorageCostModel model_;
  ckpt::StagingArea* staging_ = nullptr;
  int domains_ = 1;

  // Serial-written estimator/policy state.
  RateEstimator any_, storage_, dbl_;
  sim::Time last_storage_loss_ = -1.0;
  int last_storage_node_ = -1;
  sim::Time last_double_ = -1.0;
  bool escalated_ = false;
  uint64_t failures_ = 0;
  uint64_t storage_losses_ = 0;
  uint64_t double_losses_ = 0;
  uint64_t escalations_ = 0;
  uint64_t deescalations_ = 0;
  uint64_t repartitions_ = 0;
  uint64_t ranks_migrated_ = 0;

  /// Pending (any-shard atomic max) and published (serial-written, read by
  /// any shard after the barrier) snapshot-size observations.
  std::atomic<uint64_t> pending_bytes_{0};
  uint64_t published_bytes_ = 0;
  std::atomic<uint64_t> replans_{0};
};

}  // namespace spbc::core

#include "core/spbc.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spbc::core {

namespace {

// Control-word encodings for Rollback / lastMessage payloads:
// [n_streams, { ctx, stream, window... } * n ]. A stream is a whole channel
// in MPI-only mode (stream id -1) or a (channel, tag) sub-stream under the
// Section 7 hybrid extension.
using StreamWindows = std::map<std::pair<int, int>, mpi::SeqWindow>;

void encode_windows(const StreamWindows& windows, std::vector<uint64_t>& out) {
  out.push_back(windows.size());
  for (const auto& [key, win] : windows) {
    out.push_back(static_cast<uint64_t>(static_cast<int64_t>(key.first)));
    out.push_back(static_cast<uint64_t>(static_cast<int64_t>(key.second)));
    win.encode(out);
  }
}

StreamWindows decode_windows(const std::vector<uint64_t>& in, size_t& pos) {
  StreamWindows windows;
  uint64_t n = in.at(pos++);
  for (uint64_t i = 0; i < n; ++i) {
    int ctx = static_cast<int>(static_cast<int64_t>(in.at(pos++)));
    int stream = static_cast<int>(static_cast<int64_t>(in.at(pos++)));
    windows[{ctx, stream}] = mpi::SeqWindow::decode(in, pos);
  }
  return windows;
}

}  // namespace

SpbcProtocol::SpbcProtocol(SpbcConfig cfg)
    : cfg_(cfg), store_(cfg.storage, cfg.storage_model) {}

void SpbcProtocol::attach(mpi::Machine& machine) {
  machine_ = &machine;
  int n = machine.nranks();
  logs_.resize(static_cast<size_t>(n));
  replayers_.resize(static_cast<size_t>(n));
  ckpt_.resize(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    replayers_[static_cast<size_t>(r)].configure(&machine, r, cfg_.replay_window);
    auto gate = make_gate(r);
    if (gate) replayers_[static_cast<size_t>(r)].set_gate(std::move(gate));
  }
}

const SenderLog& SpbcProtocol::log_of(int rank) const {
  return logs_.at(static_cast<size_t>(rank));
}
SenderLog& SpbcProtocol::log_of_mut(int rank) {
  return logs_.at(static_cast<size_t>(rank));
}
const Replayer& SpbcProtocol::replayer_of(int rank) const {
  return replayers_.at(static_cast<size_t>(rank));
}

bool SpbcProtocol::is_inter_cluster(const mpi::Envelope& env) const {
  return machine_->cluster_of(env.src) != machine_->cluster_of(env.dst);
}

// ---------------------------------------------------------------------------
// Failure-free path (Algorithm 1, lines 3-12)
// ---------------------------------------------------------------------------

sim::Time SpbcProtocol::on_send(mpi::Rank& sender, const mpi::Envelope& env,
                                const mpi::Payload& payload) {
  if (!is_inter_cluster(env)) return 0.0;
  // Line 6: log before the LS guard — the log must contain every
  // inter-cluster message of the execution.
  logs_[static_cast<size_t>(env.src)].append(env, payload);
  sender.profile_mut().bytes_logged += env.bytes;
  return cfg_.log_overhead + static_cast<double>(env.bytes) / cfg_.log_memcpy_bw;
}

bool SpbcProtocol::should_transmit(mpi::Rank& sender, const mpi::Envelope& env) {
  if (!is_inter_cluster(env)) return true;
  // Line 7: skip sends the destination already received before we rolled
  // back (peer_received was installed by its lastMessage reply).
  const auto& ch = sender.send_state(env.dst, env.ctx, env.tag);
  return !ch.peer_received.contains(env.seqnum);
}

void SpbcProtocol::on_delivered(mpi::Rank& /*receiver*/, const mpi::Envelope& env) {
  // Received-window bookkeeping (the LR of line 11, generalized) already
  // happened in Rank::accept_seq. Only the HydEE hook observes replays here.
  if (env.replayed) on_replay_delivered(env);
}

// ---------------------------------------------------------------------------
// Coordinated checkpointing inside a cluster (line 14)
// ---------------------------------------------------------------------------

bool SpbcProtocol::maybe_checkpoint(mpi::Rank& rank) {
  if (cfg_.checkpoint_every == 0) return false;
  auto& cs = ckpt_[static_cast<size_t>(rank.rank())];
  ++cs.calls;
  // The decision is a pure function of the call index, so every member of a
  // cluster reaches the same decision at the same logical spot (SPMD).
  if (cs.calls % cfg_.checkpoint_every != 0) return false;
  run_coordinated_checkpoint(rank);
  return true;
}

void SpbcProtocol::checkpoint_now(mpi::Rank& rank) { run_coordinated_checkpoint(rank); }

void SpbcProtocol::run_coordinated_checkpoint(mpi::Rank& rank) {
  const int me = rank.rank();
  const int cluster = machine_->cluster_of(me);
  const std::vector<int> members = machine_->ranks_in_cluster(cluster);
  const int coordinator = members.front();
  auto& cs = ckpt_[static_cast<size_t>(me)];
  const uint64_t epoch = cs.epoch + 1;

  // Drain: our in-flight intra-cluster sends must land before the snapshot
  // so intra-cluster channels are empty in the recorded global state.
  // Also wait out any replay we are performing for another cluster's
  // recovery — snapshots during active replay are not supported.
  rank.block_until(
      [&rank] {
        for (const auto& [key, ch] : rank.all_send_states())
          if (ch.replay_pending != 0) return false;
        return true;
      },
      "ckpt: drain replay");
  machine_->flush_intra_sends(rank);

  auto control = [&](mpi::ControlMsg::Kind kind, int dst) {
    mpi::ControlMsg m;
    m.kind = kind;
    m.src = me;
    m.dst = dst;
    m.words.push_back(epoch);
    machine_->send_control(me, dst, std::move(m));
  };

  if (me == coordinator) {
    rank.block_until(
        [&cs, &members] { return cs.ready_count == static_cast<int>(members.size()) - 1; },
        "ckpt: await Ready");
    cs.ready_count = 0;
    for (int m : members)
      if (m != me) control(mpi::ControlMsg::Kind::kCkptTake, m);
    take_snapshot(rank);
    rank.block_until(
        [&cs, &members] { return cs.done_count == static_cast<int>(members.size()) - 1; },
        "ckpt: await Done");
    cs.done_count = 0;
    for (int m : members)
      if (m != me) control(mpi::ControlMsg::Kind::kCkptResume, m);
  } else {
    control(mpi::ControlMsg::Kind::kCkptReady, coordinator);
    rank.block_until([&cs] { return cs.take_received; }, "ckpt: await Take");
    cs.take_received = false;
    take_snapshot(rank);
    control(mpi::ControlMsg::Kind::kCkptDone, coordinator);
    rank.block_until([&cs] { return cs.resume_received; }, "ckpt: await Resume");
    cs.resume_received = false;
  }
  cs.epoch = epoch;

  if (cfg_.gc_logs && me == coordinator) gc_after_checkpoint(cluster);
}

void SpbcProtocol::take_snapshot(mpi::Rank& rank) {
  const int me = rank.rank();
  auto& cs = ckpt_[static_cast<size_t>(me)];

  util::ByteWriter w;
  w.put<uint64_t>(cs.epoch + 1);
  w.put<uint64_t>(cs.calls);
  rank.serialize_runtime(w);
  logs_[static_cast<size_t>(me)].serialize(w);
  util::ByteWriter app;
  rank.serialize_app(app);
  w.put_bytes(app.bytes().data(), app.size());

  ckpt::Snapshot snap;
  snap.taken_at = machine_->engine().now();
  snap.epoch = cs.epoch + 1;
  snap.bytes = w.take();
  sim::Time cost = store_.write_cost(snap.bytes.size());
  store_.save(me, std::move(snap));
  if (cost > 0) machine_->engine().wait(cost);
}

void SpbcProtocol::gc_after_checkpoint(int cluster) {
  // Extension (off by default): after a cluster checkpoints, every channel
  // into it can drop log entries the checkpoint captured. We use the
  // captured received-windows directly; a real implementation piggybacks
  // them on one control message per channel after the wave completes.
  for (int member : machine_->ranks_in_cluster(cluster)) {
    const mpi::Rank& mr = machine_->rank(member);
    for (const auto& [key, win] : mr.all_recv_windows()) {
      if (machine_->cluster_of(key.peer) == cluster) continue;
      logs_[static_cast<size_t>(key.peer)].gc_received(member, key.ctx, win,
                                                       key.stream);
    }
  }
}

// ---------------------------------------------------------------------------
// Failure handling and recovery (lines 16-26)
// ---------------------------------------------------------------------------

void SpbcProtocol::on_failure(int victim_rank) {
  const int cluster = machine_->cluster_of(victim_rank);
  // Coalesce: a second crash in a cluster whose restart is already scheduled
  // (killed, restored, fibers not yet respawned) needs no further action —
  // the victim is already dead and the pending respawn covers everyone.
  if (restart_pending_.count(cluster)) return;
  const std::vector<int> members = machine_->ranks_in_cluster(cluster);
  const sim::Time failure_time =
      machine_->engine().now() - machine_->config().failure_detection_delay;
  ++rollbacks_;
  recovering_clusters_.insert(cluster);
  restart_pending_.insert(cluster);

  // Record pre-failure progress (rework-time measurement). The victim's
  // progress was frozen at the crash; other members die now, at detection.
  std::map<int, mpi::Rank::Progress> targets;
  for (int r : members) {
    const mpi::Rank::Progress* frozen = machine_->rank(r).frozen_progress();
    targets[r] = frozen ? *frozen : machine_->rank(r).progress_now();
  }

  // Line 18: the whole cluster rolls back to its last coordinated
  // checkpoint. Kill first (fibers unwind, incarnations bump), then restore
  // in-memory state; fibers respawn after the restart delay.
  for (int r : members) machine_->kill_rank(r);
  sim::Time ckpt_time = 0;
  for (int r : members) {
    if (store_.has(r)) ckpt_time = std::max(ckpt_time, store_.latest(r).taken_at);
    restore_rank(r);
  }

  // Collect, per recovering rank, the peers that must learn of the rollback:
  // every inter-cluster channel in the restored state plus every rank whose
  // log holds messages for it (a channel the checkpoint had not seen yet).
  std::map<int, std::set<int>> peers;
  for (int r : members) peers[r] = rollback_peers_of(r);

  machine_->engine().after(machine_->config().restart_delay, [this, cluster, members,
                                                              failure_time, ckpt_time,
                                                              targets, peers] {
    restart_pending_.erase(cluster);
    for (int r : members) machine_->respawn_rank(r, store_.has(r));
    machine_->begin_recovery_record(cluster, failure_time, ckpt_time, targets);
    // Lines 19-20: announce the rollback with the restored received-windows.
    for (int r : members) send_rollbacks_from(r, peers.at(r));
    // Overlapping recoveries: clusters that rolled back earlier re-announce
    // to the ranks we just restarted, so replays lost to this crash re-run.
    // Not gated on the recovery record being open: a cluster can be caught
    // up by the op-counter measure yet still owed messages it had not
    // consumed before its own failure. Rollback is idempotent (window
    // filtering + per-incarnation queuing + duplicate drops), so
    // re-announcing from every past-rollback cluster is safe.
    for (int other : recovering_clusters_) {
      if (other == cluster) continue;
      for (int rr : machine_->ranks_in_cluster(other)) {
        std::set<int> again;
        for (int m : members)
          if (rollback_peers_of(rr).count(m)) again.insert(m);
        if (!again.empty()) send_rollbacks_from(rr, again);
      }
    }
  });
}

void SpbcProtocol::restore_rank(int r) {
  mpi::Rank& rank = machine_->rank(r);
  rank.reset_for_restart();
  // Any replay this rank was performing for another cluster dies with the
  // rollback (the log is about to be replaced); the peers will re-announce.
  replayers_[static_cast<size_t>(r)].reset();
  auto& cs = ckpt_[static_cast<size_t>(r)];
  cs.ready_count = 0;
  cs.done_count = 0;
  cs.take_received = false;
  cs.resume_received = false;
  if (!store_.has(r)) {
    // No checkpoint yet: roll back to the initial state sigma_0.
    logs_[static_cast<size_t>(r)].clear();
    cs.calls = 0;
    cs.epoch = 0;
    return;
  }
  const ckpt::Snapshot& snap = store_.latest(r);
  util::ByteReader reader(snap.bytes);
  cs.epoch = reader.get<uint64_t>();
  cs.calls = reader.get<uint64_t>();
  rank.restore_runtime(reader);
  logs_[static_cast<size_t>(r)].restore(reader);
  machine_->set_pending_app_state(r, reader.get_bytes());
  SPBC_ASSERT_MSG(reader.exhausted(), "trailing bytes in snapshot of rank " << r);
}

std::set<int> SpbcProtocol::rollback_peers_of(int r) const {
  // Section 3.1 defines a channel between every ordered pair of processes,
  // so "all outgoing inter-cluster channels" (Algorithm 1, line 19) means
  // every rank outside the cluster. Restricting to channels the checkpoint
  // has seen would lose messages a survivor sent on a brand-new channel
  // while this rank was down (e.g. the first collective after the crash):
  // that survivor would never learn it must replay.
  std::set<int> peers;
  const int my_cluster = machine_->cluster_of(r);
  for (int s = 0; s < machine_->nranks(); ++s) {
    if (machine_->cluster_of(s) != my_cluster) peers.insert(s);
  }
  return peers;
}

void SpbcProtocol::send_rollbacks_from(int r, const std::set<int>& peers) {
  const mpi::Rank& rank = machine_->rank(r);
  for (int p : peers) {
    // Gather this rank's received-windows for streams p -> r (all ctxs and,
    // under seq_per_tag, all tag streams).
    StreamWindows windows;
    for (const auto& [key, win] : rank.all_recv_windows())
      if (key.peer == p) windows[{key.ctx, key.stream}] = win;
    mpi::ControlMsg m;
    m.kind = mpi::ControlMsg::Kind::kRollback;
    m.src = r;
    m.dst = p;
    encode_windows(windows, m.words);
    machine_->send_control(r, p, std::move(m));
  }
}

void SpbcProtocol::handle_rollback(mpi::Rank& receiver, const mpi::ControlMsg& msg) {
  const int me = receiver.rank();
  const int peer = msg.src;  // the recovering rank
  size_t pos = 0;
  StreamWindows peer_windows = decode_windows(msg.words, pos);

  // The Rollback carries the peer's restored received-windows — refresh our
  // LS-suppression state from it. Without this, a rank that itself rolled
  // back earlier keeps suppression learned from the peer's PRE-crash state:
  // it would keep skipping re-sends the peer no longer holds, and if those
  // sends were not yet re-logged when this Rollback arrived, nothing would
  // ever deliver them (observed as a deadlock under repeated failures).
  for (const auto& [key, win] : peer_windows) {
    receiver.send_state(peer, key.first, key.second == -1 ? 0 : key.second)
        .peer_received = win;
  }

  // Line 22: reply with what we already received on streams peer -> me, so
  // the recovering rank can skip those sends (LS suppression).
  StreamWindows mine;
  for (const auto& [key, win] : receiver.all_recv_windows())
    if (key.peer == peer) mine[{key.ctx, key.stream}] = win;
  mpi::ControlMsg reply;
  reply.kind = mpi::ControlMsg::Kind::kLastMessage;
  reply.src = me;
  reply.dst = peer;
  encode_windows(mine, reply.words);
  machine_->send_control(me, peer, std::move(reply));

  // Rendezvous state tied to the peer's old incarnation will never complete:
  // drop its pending RTSs from the unexpected queue (matching one would CTS
  // into the void) and rewind receptions already matched to one.
  receiver.match_engine().purge_pending_rts_from(peer);
  receiver.rewind_pending_from(peer);

  // Our own sends to the peer that were caught mid-rendezvous: the replayer
  // completes their application requests when the logged copies land.
  std::map<std::pair<int, uint64_t>, std::function<void()>> orphan_done;
  for (auto& orphan : machine_->take_rendezvous_to(peer, me)) {
    orphan_done[{orphan.env.ctx, orphan.env.seqnum}] = std::move(orphan.on_complete);
  }

  // Lines 23-24: replay logged messages the peer does not hold, in log
  // order, under the pre-post window.
  replayers_[static_cast<size_t>(me)].enqueue_for_peer(
      logs_[static_cast<size_t>(me)], peer, peer_windows, std::move(orphan_done));
  receiver.wake();
}

void SpbcProtocol::handle_last_message(mpi::Rank& receiver, const mpi::ControlMsg& msg) {
  // Lines 25-26: install the peer's received-windows as our suppression
  // state for streams me -> peer. The stream id doubles as the tag in
  // seq_per_tag mode and is -1 otherwise, matching stream_of().
  size_t pos = 0;
  StreamWindows windows = decode_windows(msg.words, pos);
  for (auto& [key, win] : windows) {
    receiver.send_state(msg.src, key.first, key.second == -1 ? 0 : key.second)
        .peer_received = std::move(win);
  }
  receiver.wake();
}

void SpbcProtocol::on_control(mpi::Rank& receiver, const mpi::ControlMsg& msg) {
  auto& cs = ckpt_[static_cast<size_t>(receiver.rank())];
  switch (msg.kind) {
    case mpi::ControlMsg::Kind::kRollback:
      handle_rollback(receiver, msg);
      break;
    case mpi::ControlMsg::Kind::kLastMessage:
      handle_last_message(receiver, msg);
      break;
    case mpi::ControlMsg::Kind::kCkptReady:
      ++cs.ready_count;
      receiver.wake();
      break;
    case mpi::ControlMsg::Kind::kCkptTake:
      cs.take_received = true;
      receiver.wake();
      break;
    case mpi::ControlMsg::Kind::kCkptDone:
      ++cs.done_count;
      receiver.wake();
      break;
    case mpi::ControlMsg::Kind::kCkptResume:
      cs.resume_received = true;
      receiver.wake();
      break;
    default:
      SPBC_UNREACHABLE("unhandled control message kind in SpbcProtocol");
  }
}

void SpbcProtocol::on_rank_start(mpi::Rank& rank, bool restarted) {
  if (!restarted) return;
  // Rollback announcements were already sent from the recovery orchestration
  // (event context) at respawn time; nothing to do in the fiber.
  (void)rank;
}

}  // namespace spbc::core

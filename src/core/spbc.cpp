#include "core/spbc.hpp"

#include <algorithm>

#include "clustering/comm_graph.hpp"
#include "clustering/streaming.hpp"
#include "util/assert.hpp"

namespace spbc::core {

namespace {

// Control-word encodings for Rollback / lastMessage payloads:
// [n_streams, { ctx, stream, window... } * n ]. A stream is a whole channel
// in MPI-only mode (stream id -1) or a (channel, tag) sub-stream under the
// Section 7 hybrid extension.
using StreamWindows = std::map<std::pair<int, int>, mpi::SeqWindow>;

void encode_windows(const StreamWindows& windows, std::vector<uint64_t>& out) {
  out.push_back(windows.size());
  for (const auto& [key, win] : windows) {
    out.push_back(static_cast<uint64_t>(static_cast<int64_t>(key.first)));
    out.push_back(static_cast<uint64_t>(static_cast<int64_t>(key.second)));
    win.encode(out);
  }
}

StreamWindows decode_windows(const std::vector<uint64_t>& in, size_t& pos) {
  StreamWindows windows;
  uint64_t n = in.at(pos++);
  for (uint64_t i = 0; i < n; ++i) {
    int ctx = static_cast<int>(static_cast<int64_t>(in.at(pos++)));
    int stream = static_cast<int>(static_cast<int64_t>(in.at(pos++)));
    windows[{ctx, stream}] = mpi::SeqWindow::decode(in, pos);
  }
  return windows;
}

// Binomial-tree arithmetic over a cluster's members vector (ascending rank
// order; index 0 is both the wave root and the tree root). parent(i) clears
// the lowest set bit of i; the subtree rooted at i spans the contiguous
// index range [i, i + lowbit(i)) clipped to the member count.
int tree_parent(int idx) { return idx & (idx - 1); }

int tree_subtree_size(int idx, int k) {
  if (idx == 0) return k;
  int low = idx & -idx;
  return low < k - idx ? low : k - idx;
}

// Tree-adjacent member indices of idx: the binomial parent plus the
// children i + 2^j for 2^j < lowbit(i) (the whole range when i == 0),
// clipped to the member count.
void tree_neighbors(int idx, int k, std::vector<int>& out) {
  out.clear();
  if (idx > 0) out.push_back(tree_parent(idx));
  const int span = idx == 0 ? k : (idx & -idx);
  for (int step = 1; step < span && idx + step < k; step <<= 1)
    out.push_back(idx + step);
}

}  // namespace

namespace {
// The control plane needs to know whether staging levels are app-visible
// stalls (sync) or background traffic (async) when costing its strides.
core::ControlPlaneConfig with_staging_mode(core::ControlPlaneConfig c,
                                           bool async_staging) {
  c.async_staging = async_staging;
  return c;
}
}  // namespace

SpbcProtocol::SpbcProtocol(SpbcConfig cfg)
    : cfg_(cfg),
      store_(cfg.storage, cfg.storage_model),
      staging_(ckpt::StagingConfig{cfg.storage, cfg.async_staging,
                                   cfg.storage_model, cfg.redundancy,
                                   cfg.control.scrub_period,
                                   /*prepare_escalated=*/cfg.control.escalation,
                                   cfg.control.escalated,
                                   cfg.pfs_interference}),
      control_(with_staging_mode(cfg.control, cfg.async_staging),
               cfg.storage_model) {}

void SpbcProtocol::attach(mpi::Machine& machine) {
  machine_ = &machine;
  staging_.attach(machine);
  control_.attach(&staging_);
  // The scrub cadence doubles as the control plane's time-based policy tick
  // (de-escalation on calm must not wait for the next failure).
  staging_.set_scrub_tick([this](sim::Time now) { control_.on_tick(now); });
  int n = machine.nranks();
  // Pre-size per-rank and per-cluster state: under the threaded shard
  // executor, lazy growth from concurrent shard events would be a
  // structural race. (set_cluster_of also calls on_cluster_map, covering
  // either wiring order.)
  store_.reserve_ranks(n);
  store_.set_reduction(cfg_.reduction);
  on_cluster_map(machine.nclusters());
  logs_.resize(static_cast<size_t>(n));
  synth_state_.assign(static_cast<size_t>(n), {});
  if (cfg_.state_model.bytes > 0) {
    for (int r = 0; r < n; ++r)
      synth_state_[static_cast<size_t>(r)] = ckpt::make_state(cfg_.state_model, r);
  }
  replayers_.resize(static_cast<size_t>(n));
  facade_.assign(static_cast<size_t>(n), {});
  ckpt_.resize(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    replayers_[static_cast<size_t>(r)].configure(&machine, r, cfg_.replay_window);
    auto gate = make_gate(r);
    if (gate) replayers_[static_cast<size_t>(r)].set_gate(std::move(gate));
  }
}

const SenderLog& SpbcProtocol::log_of(int rank) const {
  return logs_.at(static_cast<size_t>(rank));
}
SenderLog& SpbcProtocol::log_of_mut(int rank) {
  return logs_.at(static_cast<size_t>(rank));
}
const Replayer& SpbcProtocol::replayer_of(int rank) const {
  return replayers_.at(static_cast<size_t>(rank));
}

bool SpbcProtocol::is_inter_cluster(const mpi::Envelope& env) const {
  const bool inter =
      machine_->cluster_of(env.src) != machine_->cluster_of(env.dst);
  if (!migration_.active) return inter;
  // Bridge pre-classification (DESIGN.md §14): once a mover cut the boundary
  // epoch, its traffic with its OLD cluster is logged as if the flip already
  // happened — those sends must be in the sender log when the flip turns the
  // channel into a real inter-cluster one. The envelope's epoch stamp is the
  // sender's cut at send time, so the classification is a pure function of
  // the message, identical on the send and delivery paths. Pairs migrating
  // together stay intra (they remain colocated after the flip); the extra
  // pre-flip logging is safe — intra-classified logs are simply never
  // replayed.
  const bool src_moving = is_migrating(env.src);
  const bool dst_moving = is_migrating(env.dst);
  if (src_moving == dst_moving) return inter;
  const int other = src_moving ? env.dst : env.src;
  if (machine_->cluster_of(other) != migration_.from) return inter;
  return inter || env.ckpt_epoch >= migration_.boundary_a;
}

bool SpbcProtocol::is_migrating(int rank) const {
  for (int m : migration_.ranks)
    if (m == rank) return true;
  return false;
}

void SpbcProtocol::on_cluster_map(int nclusters) {
  control_.set_domains(nclusters);
  if (static_cast<size_t>(nclusters) > waves_.size())
    waves_.resize(static_cast<size_t>(nclusters));
  if (static_cast<size_t>(nclusters) > storage_survives_.size())
    storage_survives_.resize(static_cast<size_t>(nclusters), 0);
  // Arm the streaming repartitioner's cadence (once): shard events read the
  // serial-written migration state, so the bridge needs the single-threaded
  // executor — the same discipline the elastic machine hooks assert.
  if (cfg_.control.repartition_period > 0 && !repartition_armed_ &&
      machine_ != nullptr && nclusters > 1) {
    SPBC_ASSERT_MSG(machine_->config().engine_threads <= 1,
                    "online repartitioning requires engine_threads <= 1");
    repartition_armed_ = true;
    schedule_repartition();
  }
}

SpbcProtocol::ClusterWave& SpbcProtocol::wave_of(int cluster) {
  // Lazy growth only happens when no cluster map was installed (legacy
  // single-threaded runs); sharded runs pre-size via on_cluster_map.
  if (static_cast<size_t>(cluster) >= waves_.size())
    waves_.resize(static_cast<size_t>(cluster) + 1);
  return waves_[static_cast<size_t>(cluster)];
}

uint64_t SpbcProtocol::committed_epoch(int cluster) const {
  return static_cast<size_t>(cluster) < waves_.size()
             ? waves_[static_cast<size_t>(cluster)].committed
             : 0;
}

uint64_t SpbcProtocol::snapshot_epoch(int rank) const {
  return ckpt_.at(static_cast<size_t>(rank)).snap_epoch;
}

uint8_t SpbcProtocol::commit_levels(int rank) const {
  return ckpt_.at(static_cast<size_t>(rank)).commit_levels;
}

// ---------------------------------------------------------------------------
// Failure-free path (Algorithm 1, lines 3-12)
// ---------------------------------------------------------------------------

void SpbcProtocol::stamp_envelope(mpi::Rank& sender, mpi::Envelope& env) {
  // The piggybacked marker: every envelope carries the sender's current
  // snapshot epoch. An intra-cluster message stamped below the receiver's
  // snapshot epoch was sent before the sender's cut and delivered after the
  // receiver's — exactly the channel state a Chandy-Lamport wave records.
  env.ckpt_epoch = ckpt_[static_cast<size_t>(sender.rank())].snap_epoch;
}

sim::Time SpbcProtocol::on_send(mpi::Rank& sender, const mpi::Envelope& env,
                                const mpi::Payload& payload) {
  if (!is_inter_cluster(env)) return 0.0;
  // Line 6: log before the LS guard — the log must contain every
  // inter-cluster message of the execution.
  logs_[static_cast<size_t>(env.src)].append(env, payload);
  sender.profile_mut().bytes_logged += env.bytes;
  return cfg_.log_overhead + static_cast<double>(env.bytes) / cfg_.log_memcpy_bw;
}

bool SpbcProtocol::should_transmit(mpi::Rank& sender, const mpi::Envelope& env) {
  if (!is_inter_cluster(env)) return true;
  // Line 7: skip sends the destination already received before we rolled
  // back (peer_received was installed by its lastMessage reply).
  const auto& ch = sender.send_state(env.dst, env.ctx, env.tag);
  return !ch.peer_received.contains(env.seqnum);
}

void SpbcProtocol::on_delivered(mpi::Rank& receiver, const mpi::Envelope& env,
                                const mpi::Payload& payload) {
  // Received-window bookkeeping (the LR of line 11, generalized) already
  // happened in Rank::accept_seq.
  if (!is_inter_cluster(env)) {
    // Marker-wave channel capture: a message stamped below the receiver's
    // snapshot epoch crossed the cut(s) in (stamp, snap_epoch]. The restored
    // sender will not re-send it (its snapshot counts it as sent) and the
    // restored receiver has not received it, so it must be part of the
    // epoch's restore data. Redelivered captures are re-stamped with the
    // restored epoch, which keeps them out of this branch.
    auto& cs = ckpt_[static_cast<size_t>(receiver.rank())];
    if (env.ckpt_epoch < cs.snap_epoch) {
      uint64_t live = store_.record_in_flight(receiver.rank(), env.ckpt_epoch + 1,
                                              cs.snap_epoch, env, payload);
      // Capture-pressure trigger: retained captures are only reclaimed when
      // a newer epoch commits, so a rank past its bound cuts a fresh epoch
      // at its next checkpoint opportunity (as if a peer's marker arrived)
      // instead of waiting for the periodic schedule.
      if (cfg_.capture_bytes_bound != 0 && live > cfg_.capture_bytes_bound &&
          cs.wave_seen <= cs.snap_epoch) {
        cs.wave_seen = cs.snap_epoch + 1;
        ++capture_forced_waves_;
      }
    }
  }
  // The HydEE hook observes replays here.
  if (env.replayed) on_replay_delivered(env);
}

// ---------------------------------------------------------------------------
// Coordinated checkpointing inside a cluster (line 14)
// ---------------------------------------------------------------------------

bool SpbcProtocol::maybe_checkpoint(mpi::Rank& rank) {
  auto& cs = ckpt_[static_cast<size_t>(rank.rank())];
  ++cs.calls;
  bool boundary;
  if (control_.enabled()) {
    // Adaptive trigger: cut when the observed-MTBF Young/Daly interval has
    // elapsed since this member's last cut. Members may reach the threshold
    // at different call indices; the marker mechanism below makes the rest
    // of the cluster join the wave at their next opportunity — exactly the
    // path checkpoint_now already exercises.
    boundary =
        machine_->engine().now() - cs.last_cut >= control_.local_interval();
  } else {
    // Periodic trigger: a pure function of the call index, so every member
    // of a cluster reaches the same decision at the same logical spot
    // (SPMD).
    boundary =
        cfg_.checkpoint_every != 0 && cs.calls % cfg_.checkpoint_every == 0;
  }
  // Marker trigger: a cluster peer already cut an epoch we have not (it
  // called checkpoint_now, or cadences drifted). This is our first
  // app-consistent point since its marker arrived — join the wave here. The
  // cut need not land at the same call index on every member: consistency
  // comes from the epoch stamps (capture for sent-before/received-after,
  // duplicate filtering plus send determinism for the reverse), not from
  // call-index alignment.
  if (!boundary && cs.wave_seen <= cs.snap_epoch) return false;
  run_coordinated_checkpoint(rank);
  return true;
}

void SpbcProtocol::checkpoint_now(mpi::Rank& rank) { run_coordinated_checkpoint(rank); }

bool SpbcProtocol::need_checkpoint(mpi::Rank& rank) {
  // The facade's query half of maybe_checkpoint: the SAME trigger (the §13
  // control plane's time-based boundary when enabled, the static every-N
  // schedule otherwise, OR a peer's wave marker running ahead of our last
  // snapshot) evaluated WITHOUT cutting — the app cuts on its own schedule
  // through spbc_start/spbc_route/spbc_complete. The call still counts as a
  // checkpoint opportunity, so a facade-driven app paces the periodic
  // schedule exactly like a pattern-API app calling maybe_checkpoint.
  auto& cs = ckpt_[static_cast<size_t>(rank.rank())];
  ++cs.calls;
  bool boundary;
  if (control_.enabled()) {
    boundary =
        machine_->engine().now() - cs.last_cut >= control_.local_interval();
  } else {
    boundary =
        cfg_.checkpoint_every != 0 && cs.calls % cfg_.checkpoint_every == 0;
  }
  return boundary || cs.wave_seen > cs.snap_epoch;
}

// The marker-based wave (replaces the old Ready/Take/Done/Resume drain
// barrier — see DESIGN.md). Each member snapshots at its own checkpoint
// boundary without waiting for anyone: the checkpoint decision is SPMD (a
// pure function of the call index), so every member cuts at the same logical
// spot. From the cut on, outgoing intra-cluster envelopes carry the new
// epoch stamp (stamp_envelope), which is the piggybacked marker; an explicit
// kCkptMarker control message announces the cut to peers that see no data
// traffic. Messages that cross the cut are captured at the receiver
// (on_delivered) and re-delivered on restore. The wave commits through an
// async completion reduction over a binomial tree: a member's kCkptComplete
// aggregate moves toward the wave root once its snapshot is written, its
// pre-cut intra-cluster sends have landed, and its tree children reported;
// the root broadcasts kCkptCommit when the aggregate covers every member.
// No rank ever parks, so two clusters checkpointing concurrently cannot
// form a cross-cluster circular wait through halo dependencies.
// Tree-based marker dissemination (MachineConfig::tree_ckpt_markers). A
// member floods a wave's epoch to its binomial-tree neighbors the first
// time it learns of the wave — from its own cut (learned_from == -1) or
// from a received marker (learned_from == the forwarding peer, skipped).
// The marker_fwd guard caps every member at one forwarding round per epoch,
// so a wave costs O(members) marker messages in total where the all-to-all
// broadcast costs O(members^2).
void SpbcProtocol::flood_wave_marker(int me, uint64_t epoch, int learned_from) {
  auto& cs = ckpt_[static_cast<size_t>(me)];
  if (cs.marker_fwd >= epoch) return;
  cs.marker_fwd = epoch;
  const int cluster = machine_->cluster_of(me);
  const std::vector<int> members = machine_->ranks_in_cluster(cluster);
  const int k = static_cast<int>(members.size());
  const int idx = static_cast<int>(
      std::lower_bound(members.begin(), members.end(), me) - members.begin());
  SPBC_ASSERT_MSG(idx < k && members[static_cast<size_t>(idx)] == me,
                  "rank " << me << " not a member of cluster " << cluster);
  std::vector<int> nbrs;
  tree_neighbors(idx, k, nbrs);
  for (int nidx : nbrs) {
    const int peer = members[static_cast<size_t>(nidx)];
    if (peer == learned_from) continue;
    mpi::ControlMsg msg;
    msg.kind = mpi::ControlMsg::Kind::kCkptMarker;
    msg.src = me;
    msg.dst = peer;
    msg.words.push_back(epoch);
    machine_->send_control(me, peer, std::move(msg));
  }
}

void SpbcProtocol::run_coordinated_checkpoint(mpi::Rank& rank) {
  const int me = rank.rank();
  const int cluster = machine_->cluster_of(me);
  const std::vector<int> members = machine_->ranks_in_cluster(cluster);
  auto& cs = ckpt_[static_cast<size_t>(me)];
  const uint64_t epoch = cs.snap_epoch + 1;

  // --- the cut: capture local state, no coordination, no parking ---------
  util::ByteWriter w;
  w.put<uint64_t>(epoch);
  w.put<uint64_t>(cs.calls);
  rank.serialize_runtime(w);
  logs_[static_cast<size_t>(me)].serialize(w);
  util::ByteWriter app;
  rank.serialize_app(app);
  w.put_bytes(app.bytes().data(), app.size());
  if (cfg_.state_model.bytes > 0) {
    // Synthetic evolving state: mutate a deterministic subset of blocks for
    // this epoch, then capture the buffer. Keyed by (seed, rank, epoch)
    // only, so re-execution after a rollback regenerates identical state —
    // and identical delta chains.
    std::vector<unsigned char>& buf = synth_state_[static_cast<size_t>(me)];
    ckpt::evolve_state(buf, cfg_.state_model, me, epoch);
    w.put_bytes(buf.data(), buf.size());
  }

  ckpt::Snapshot snap;
  snap.taken_at = machine_->engine().now();
  snap.epoch = epoch;
  snap.bytes = w.take();
  // Level plan first (a pure read of control-plane state): migration
  // boundary/pin epochs are forced to full staging depth AND to a full
  // (non-delta) capture — the flip's rename_epoch re-keys them, which must
  // not orphan a delta from its chain.
  ckpt::LevelPlan plan = control_.plan_for_epoch(epoch);
  bool force_full = false;
  if (!forced_pfs_epoch_.empty()) {
    auto fp = forced_pfs_epoch_.find(cluster);
    if (fp != forced_pfs_epoch_.end() && fp->second == epoch) {
      plan.redundancy = true;
      plan.pfs = true;
      force_full = true;
    }
  }
  const ckpt::SaveInfo sinfo = store_.save(me, std::move(snap), force_full);
  // Downstream levels ship the reduced (delta/compressed) bytes; the pad
  // models incompressible side state and rides on top of them.
  const uint64_t staged = sinfo.stored_bytes + cfg_.snapshot_pad_bytes;
  cs.last_cut = machine_->engine().now();
  control_.note_snapshot_bytes(staged);
  // Staging write: the fiber stall is the full configured-level cost in sync
  // mode but only the fast LOCAL write under async staging — the drainer
  // promotes LOCAL -> PARTNER -> PFS in the background while the
  // application computes. Under the control plane the epoch carries a level
  // plan: cheap LOCAL epochs fire at the Young/Daly cadence while the
  // redundancy hop and the PFS flush run at their own (longer) strides.
  sim::Time cost = staging_.write(me, epoch, staged, plan, sinfo.chain_base);

  if (cfg_.gc_logs) {
    // Freeze the inter-cluster received-windows the epoch captured (GC at
    // commit must not see post-snapshot receipts) — encoded directly into
    // the wave's transient aggregate so they piggyback on this member's
    // kCkptComplete instead of waiting in a per-(rank, epoch) side table.
    std::vector<uint64_t>& blob = cs.agg[epoch].windows[me];
    blob.assign(1, 0);
    uint64_t n = 0;
    for (const auto& [key, win] : rank.all_recv_windows()) {
      if (machine_->cluster_of(key.peer) == cluster) continue;
      blob.push_back(static_cast<uint64_t>(static_cast<int64_t>(key.peer)));
      blob.push_back(static_cast<uint64_t>(static_cast<int64_t>(key.ctx)));
      blob.push_back(static_cast<uint64_t>(static_cast<int64_t>(key.stream)));
      win.encode(blob);
      ++n;
    }
    blob[0] = n;
  }

  // From this instant the cut exists: deliveries of pre-cut messages (even
  // those arriving during the storage wait below) are classified as
  // cut-crossing, and everything we send is stamped with the new epoch.
  cs.snap_epoch = epoch;

  // Explicit markers so idle peers learn of the wave without data traffic.
  if (machine_->config().tree_ckpt_markers) {
    flood_wave_marker(me, epoch, /*learned_from=*/-1);
  } else {
    for (int m : members) {
      if (m == me) continue;
      mpi::ControlMsg msg;
      msg.kind = mpi::ControlMsg::Kind::kCkptMarker;
      msg.src = me;
      msg.dst = m;
      msg.words.push_back(epoch);
      machine_->send_control(me, m, std::move(msg));
    }
  }

  // Storage cost is charged to the member's own fiber (the write itself is
  // not free) — but no cluster-wide rendezvous follows it.
  if (cost > 0) machine_->engine().wait(cost);

  // --- async completion: report once our pre-cut sends have landed --------
  arm_wave_completion(me, epoch);
}

void SpbcProtocol::arm_wave_completion(int member, uint64_t epoch) {
  const uint32_t inc = machine_->incarnation(member);
  machine_->notify_when_intra_drained(member, [this, member, epoch, inc] {
    if (machine_->incarnation(member) != inc) return;  // rolled back meanwhile
    auto& cs = ckpt_[static_cast<size_t>(member)];
    if (cs.snap_epoch < epoch) return;  // superseded by a rollback
    // The member may have out-raced this epoch's drain and already cut a
    // newer one; the drain that just finished covers every epoch cut before
    // it, so report everything not yet reported — dropping the older report
    // would leave its wave one member short forever.
    for (uint64_t e = cs.complete_sent + 1; e <= cs.snap_epoch; ++e) {
      cs.agg[e].self_done = true;
      try_forward_aggregate(member, e);
    }
    cs.complete_sent = std::max(cs.complete_sent, cs.snap_epoch);
  });
}

// One hop of the binomial-tree completion reduction: once this member's own
// drain reached `epoch` and every tree-child subtree reported, the combined
// member set moves one level up (or commits, at the root). Aggregates carry
// explicit member ranks rather than counts so re-sent reports after partial
// delivery are idempotent under set union.
void SpbcProtocol::try_forward_aggregate(int member, uint64_t epoch) {
  const int cluster = machine_->cluster_of(member);
  auto& cs = ckpt_[static_cast<size_t>(member)];
  auto it = cs.agg.find(epoch);
  if (it == cs.agg.end()) return;
  if (epoch <= wave_of(cluster).committed) {
    cs.agg.erase(it);  // stale state from a superseded wave
    return;
  }
  const std::vector<int> members = machine_->ranks_in_cluster(cluster);
  const int k = static_cast<int>(members.size());
  const int idx = static_cast<int>(
      std::lower_bound(members.begin(), members.end(), member) - members.begin());
  SPBC_ASSERT_MSG(idx < k && members[static_cast<size_t>(idx)] == member,
                  "rank " << member << " not a member of cluster " << cluster);
  auto& agg = it->second;
  const int descendants = tree_subtree_size(idx, k) - 1;
  if (!agg.self_done || agg.sent ||
      static_cast<int>(agg.covered.size()) < descendants) {
    return;
  }
  agg.sent = true;
  if (idx == 0) {
    // covered + self == every member; the aggregated GC windows (gc_logs)
    // are consumed by the commit before the transient state is dropped.
    commit_epoch(cluster, epoch, agg.windows);
    cs.agg.erase(epoch);
    return;
  }
  mpi::ControlMsg msg;
  msg.kind = mpi::ControlMsg::Kind::kCkptComplete;
  msg.src = member;
  msg.dst = members[static_cast<size_t>(tree_parent(idx))];
  msg.words.push_back(epoch);
  msg.words.push_back(agg.covered.size() + 1);
  for (int m : agg.covered) msg.words.push_back(static_cast<uint64_t>(m));
  msg.words.push_back(static_cast<uint64_t>(member));
  if (cfg_.gc_logs) {
    // Piggyback the frozen GC windows of every member this aggregate
    // covers: [rank, len, words...] blocks after the member list.
    for (const auto& [m, blob] : agg.windows) {
      msg.words.push_back(static_cast<uint64_t>(m));
      msg.words.push_back(blob.size());
      msg.words.insert(msg.words.end(), blob.begin(), blob.end());
    }
  }
  cs.agg.erase(epoch);
  machine_->send_control(member, msg.dst, std::move(msg));
}

void SpbcProtocol::commit_epoch(
    int cluster, uint64_t epoch,
    const std::map<int, std::vector<uint64_t>>& gc_windows) {
  auto& wave = wave_of(cluster);
  if (epoch <= wave.committed) return;  // stale commit from a superseded wave

  // Commit: every member snapshotted `epoch` and drained its pre-cut sends,
  // so the epoch's snapshots plus its in-flight captures form a complete
  // consistent cut. Older epochs are superseded — but under async staging
  // they are only pruned down to the cluster's PFS frontier: the committed
  // epoch may still live only at LOCAL/PARTNER, and a node failure that
  // destroys those copies needs an older, flushed epoch to fall back to.
  wave.committed = epoch;
  control_.on_commit();  // a re-plan point for the interval controller
  const std::vector<int> members = machine_->ranks_in_cluster(cluster);
  uint64_t floor = epoch;
  if (staging_.async()) {
    for (int m : members) floor = std::min(floor, staging_.pfs_frontier(m));
  }
  if (!forced_pfs_epoch_.empty()) {
    // An in-flight migration pins this cluster's boundary/pin epoch against
    // pruning: the flip renames the movers' snapshots into it and the
    // post-flip fallback floor rests on every member still holding it.
    auto fp = forced_pfs_epoch_.find(cluster);
    if (fp != forced_pfs_epoch_.end()) floor = std::min(floor, fp->second);
  }
  const int root = members.front();
  for (int m : members) {
    // The residency the commit is backed by, for introspection and benches.
    ckpt_[static_cast<size_t>(m)].commit_levels = staging_.levels(m, epoch);
    if (m == root) {
      // The down-sweep reaches the root locally; members prune their
      // superseded snapshots/captures when their kCkptCommit arrives.
      ckpt_[static_cast<size_t>(m)].epoch = epoch;
      // The store clamps the floor to the oldest retained epoch's delta-chain
      // base; staging must keep the same interval or restores of the surviving
      // head would find their chain elements unstaged.
      const uint64_t eff = store_.prune_epochs_below(m, floor);
      staging_.prune_epochs_below(m, eff);
      maybe_spill_captures(m);
      continue;
    }
    mpi::ControlMsg msg;
    msg.kind = mpi::ControlMsg::Kind::kCkptCommit;
    msg.src = root;
    msg.dst = m;
    msg.words.push_back(epoch);
    msg.words.push_back(floor);
    machine_->send_control(root, m, std::move(msg));
  }
  if (cfg_.gc_logs) {
    // Extension (off by default): once a cluster's wave commits, every
    // channel into it can drop log entries the committed epoch captured.
    // The windows each member froze at its cut arrived piggybacked on the
    // completion aggregates, so the commit consumes them here and nothing
    // outlives the wave. GC mutates *other* clusters' sender logs, so it
    // bounces to serial context in sharded runs; the windows are copied
    // because the caller drops the wave's transient state on return.
    auto windows = gc_windows;
    machine_->engine().run_serial([this, windows = std::move(windows)] {
      for (const auto& [member, blob] : windows) gc_from_windows(member, blob);
    });
  }
}

void SpbcProtocol::gc_from_windows(int member, const std::vector<uint64_t>& blob) {
  size_t pos = 0;
  const uint64_t n = blob.at(pos++);
  for (uint64_t i = 0; i < n; ++i) {
    const int peer = static_cast<int>(static_cast<int64_t>(blob.at(pos++)));
    const int ctx = static_cast<int>(static_cast<int64_t>(blob.at(pos++)));
    const int stream = static_cast<int>(static_cast<int64_t>(blob.at(pos++)));
    mpi::SeqWindow win = mpi::SeqWindow::decode(blob, pos);
    logs_[static_cast<size_t>(peer)].gc_received(member, ctx, win, stream);
  }
}

void SpbcProtocol::maybe_spill_captures(int rank) {
  if (cfg_.capture_bytes_bound == 0) return;
  if (store_.capture_live_bytes(rank) <= cfg_.capture_bytes_bound) return;
  // The commit's prune stopped at the retention floor (the PFS frontier
  // lags the committed epoch under async staging), so memory pressure
  // cannot be reclaimed by pruning. Push the oldest captures out to the
  // node-local device instead of stalling reclamation.
  const uint64_t spilled =
      store_.spill_captures(rank, cfg_.capture_bytes_bound);
  if (spilled != 0) staging_.charge_local_spill(rank, spilled);
}

// ---------------------------------------------------------------------------
// Failure handling and recovery (lines 16-26)
// ---------------------------------------------------------------------------

void SpbcProtocol::on_failure_injected(int victim_rank, mpi::FailureKind kind) {
  // The crash instant (serial, before any kill): record the failure's
  // severity for the kill path below and feed the control plane's
  // estimators. Exactly one call per injected failure, so the estimators
  // never double-count the victim's kill and its peers' detection-time
  // kills as separate events.
  const bool storage_lost = kind != mpi::FailureKind::kProcessOnly;
  // storage_survives_ drives the detection-time kills of the victim's
  // cluster peers. kNodeLoss takes the whole cluster's nodes down; a
  // permanent loss takes exactly the victim's node out of service — the
  // peers' nodes (and the redundancy fragments they host, which the spare
  // rebuild reads) survive.
  const int cluster = machine_->cluster_of(victim_rank);
  if (static_cast<size_t>(cluster) < storage_survives_.size())
    storage_survives_[static_cast<size_t>(cluster)] =
        kind == mpi::FailureKind::kNodeLoss ? 0 : 1;
  const int node = machine_->node_of(victim_rank);
  control_.note_failure(machine_->engine().now(), storage_lost, node);
  if (kind == mpi::FailureKind::kNodePermanent) {
    // The node never returns: invalidate its staged copies against the OLD
    // physical binding first — retire_node rebinds the residents to a spare
    // (or packs them onto survivors), after which residency is computed
    // against the NEW node and the dead copies would be missed.
    staging_.invalidate_node(node);
    // A shrunk restart can pack ranks from another cluster onto this node;
    // when the node dies they die with it. Collect the tenants before
    // retire_node rebinds residency, then run the standard failure path for
    // each collateral cluster: kill its residents at the crash instant and
    // let detection trigger its cluster-wide rollback (coalescing with any
    // restart already pending there).
    std::map<int, std::vector<int>> collateral;
    for (int r = 0; r < machine_->nranks(); ++r)
      if (machine_->node_of(r) == node && machine_->cluster_of(r) != cluster)
        collateral[machine_->cluster_of(r)].push_back(r);
    machine_->retire_node(node);
    for (const auto& entry : collateral) {
      if (static_cast<size_t>(entry.first) < storage_survives_.size())
        storage_survives_[static_cast<size_t>(entry.first)] = 1;
      for (int r : entry.second) machine_->kill_rank(r);
      const int rep = entry.second.front();
      machine_->engine().after(machine_->config().failure_detection_delay,
                               [this, rep] { on_failure(rep); });
    }
  }
}

void SpbcProtocol::on_failure(int victim_rank) {
  const int cluster = machine_->cluster_of(victim_rank);
  // Coalesce: a second crash in a cluster whose restart is already scheduled
  // (killed, restored, fibers not yet respawned) needs no further action —
  // the victim is already dead and the pending respawn covers everyone.
  if (restart_pending_.count(cluster)) return;
  const std::vector<int> members = machine_->ranks_in_cluster(cluster);
  const sim::Time failure_time =
      machine_->engine().now() - machine_->config().failure_detection_delay;
  ++rollbacks_;
  recovering_clusters_.insert(cluster);
  restart_pending_.insert(cluster);

  // Record pre-failure progress (rework-time measurement). The victim's
  // progress was frozen at the crash; other members die now, at detection.
  std::map<int, mpi::Rank::Progress> targets;
  for (int r : members) {
    const mpi::Rank::Progress* frozen = machine_->rank(r).frozen_progress();
    targets[r] = frozen ? *frozen : machine_->rank(r).progress_now();
  }

  // Line 18: the whole cluster rolls back to its last committed checkpoint
  // epoch. Kill first (fibers unwind, incarnations bump, and the staging
  // residency of the dead nodes is invalidated via on_rank_killed), then
  // restore in-memory state; fibers respawn after the restart delay. The
  // epoch is chosen cluster-wide: members that already snapshotted a newer,
  // not-yet-committed epoch discard it — restoring a mix of epochs would be
  // an inconsistent cut.
  for (int r : members) machine_->kill_rank(r);
  select_and_restore(cluster, members, failure_time, targets,
                     wave_of(cluster).committed);
}

void SpbcProtocol::select_and_restore(int cluster, std::vector<int> members,
                                      sim::Time failure_time,
                                      std::map<int, mpi::Rank::Progress> targets,
                                      uint64_t epoch_hint) {
  auto& wave = wave_of(cluster);
  uint64_t epoch = epoch_hint;
  // Multi-level fallback: the committed epoch may have lived only at levels
  // this failure just destroyed (e.g. LOCAL on the dead nodes while its
  // PFS flush was still in flight). Fall back to the newest older epoch
  // every member can still reconstruct — scheme-aware: an XOR member with a
  // dead LOCAL copy counts as recoverable while its group can rebuild it —
  // down to the commit-time retention floor (the cluster's PFS frontier),
  // which keeps older flushed epochs around precisely for this.
  while (epoch > 0) {
    bool ok = true;
    for (int r : members) {
      // Audit before trusting residency: fragments the host silently lost
      // must not count as live sources (no false restore success), exactly
      // as the read path itself audits.
      staging_.audit_for_restore(r, epoch);
      if (!store_.has_epoch(r, epoch) || !staging_.recoverable(r, epoch)) {
        ok = false;
        break;
      }
    }
    if (ok) break;
    --epoch;
  }
  if (epoch != wave.committed) {
    // Lower the cluster's committed epoch to what is actually restorable so
    // re-execution can legitimately re-commit the epochs in between.
    staging_.note_epoch_fallback();
    wave.committed = epoch;
  }
  sim::Time ckpt_time = 0;
  sim::Time read_cost = 0;
  std::vector<int> rebuilds;
  std::vector<ckpt::RestorePlan> direct_plans;
  for (int r : members) {
    if (epoch > 0) {
      ckpt_time = std::max(ckpt_time, store_.at_epoch(r, epoch).taken_at);
      // Restart must re-read every member's snapshot from its cheapest live
      // source; the slowest member's read extends the outage. Direct reads
      // (LOCAL / remote copy / PFS) are a pure cost; XOR rebuilds schedule
      // real network reads below and finish when the last fragment lands.
      // Direct-read metrics are deferred until the pass commits: a rebuild
      // failure abandons this epoch and re-enters one lower, and the
      // abandoned pass's direct reads never happen.
      ckpt::RestorePlan plan = staging_.plan_restore(r, epoch);
      if (plan.source == ckpt::RestorePlan::Source::kRebuild ||
          staging_.restore_chain(r, epoch).size() > 1) {
        // Delta heads read their whole chain [base..epoch]; route them
        // through execute_restore, which reads (and audits) per element.
        rebuilds.push_back(r);
      } else if (plan.source != ckpt::RestorePlan::Source::kNone) {
        direct_plans.push_back(plan);
        read_cost = std::max(read_cost, plan.direct_cost);
      }
    }
    restore_rank(r, epoch);
  }

  // Shared, not copied per callback: the rebuild path threads this closure
  // (and its captured member/target maps) through every network-read
  // completion.
  auto finish = std::make_shared<std::function<void()>>(
      [this, cluster, members, epoch, failure_time, ckpt_time,
       targets] {
    restart_pending_.erase(cluster);
    for (int r : members) machine_->respawn_rank(r, epoch > 0);
    // Re-deliver the intra-cluster messages the restored epoch captured as
    // in flight across its cut: their senders' snapshots count them as sent,
    // so nothing else would ever deliver them.
    for (int r : members) redeliver_captured(r, epoch);
    machine_->begin_recovery_record(cluster, failure_time, ckpt_time, targets);
    // Lines 19-20: announce the rollback with the restored received-windows.
    if (machine_->config().aggregate_rollbacks) {
      std::vector<int> outside;
      outside.reserve(static_cast<size_t>(machine_->nranks()));
      for (int s = 0; s < machine_->nranks(); ++s)
        if (machine_->cluster_of(s) != cluster && !machine_->tombstoned(s))
          outside.push_back(s);
      send_cluster_rollback(cluster, members, outside);
    } else {
      // Peer sets are computed here, at announce time, not when the restore
      // was planned: a peer tombstoned by an overlapping permanent failure at
      // plan time may have respawned on a spare since and must still hear the
      // rollback. Peers still tombstoned now are covered by their own
      // cluster's overlapping-recovery re-announce below when they restart.
      for (int r : members) send_rollbacks_from(r, rollback_peers_of(r));
    }
    // Overlapping recoveries: clusters that rolled back earlier re-announce
    // to the ranks we just restarted, so replays lost to this crash re-run.
    // Not gated on the recovery record being open: a cluster can be caught
    // up by the op-counter measure yet still owed messages it had not
    // consumed before its own failure. Rollback is idempotent (window
    // filtering + per-incarnation queuing + duplicate drops), so
    // re-announcing from every past-rollback cluster is safe.
    for (int other : recovering_clusters_) {
      if (other == cluster) continue;
      if (machine_->config().aggregate_rollbacks) {
        send_cluster_rollback(other, machine_->ranks_in_cluster(other),
                              members);
        continue;
      }
      for (int rr : machine_->ranks_in_cluster(other)) {
        std::set<int> again;
        for (int m : members)
          if (rollback_peers_of(rr).count(m)) again.insert(m);
        if (!again.empty()) send_rollbacks_from(rr, again);
      }
    }
  });

  if (rebuilds.empty()) {
    for (const ckpt::RestorePlan& plan : direct_plans)
      staging_.note_restore(plan);
    machine_->engine().after(machine_->config().restart_delay + read_cost,
                             [finish] { (*finish)(); });
    return;
  }
  // XOR rebuilds stream surviving fragments over the real network to the
  // replacement nodes; the respawn waits for the slowest member (direct
  // reads overlap the rebuild window).
  const sim::Time start = machine_->engine().now();
  auto remaining = std::make_shared<int>(static_cast<int>(rebuilds.size()));
  auto failed = std::make_shared<bool>(false);
  auto directs = std::make_shared<std::vector<ckpt::RestorePlan>>(
      std::move(direct_plans));
  for (int r : rebuilds) {
    staging_.execute_restore(
        r, epoch,
        [this, cluster, members, failure_time, targets, epoch, read_cost,
         start, remaining, failed, directs, finish](bool ok) {
          if (!ok) *failed = true;
          if (--*remaining != 0) return;
          if (*failed) {
            // A rebuild lost its last reconstruction path mid-read (a second
            // in-group failure): re-select one epoch lower — the retention
            // floor guarantees an older PFS-resident epoch exists. The
            // abandoned pass's direct reads never happened; their metrics
            // were never recorded.
            select_and_restore(cluster, members, failure_time, targets,
                               epoch - 1);
            return;
          }
          for (const ckpt::RestorePlan& plan : *directs)
            staging_.note_restore(plan);
          const sim::Time rebuilt = machine_->engine().now() - start;
          const sim::Time residual = std::max(0.0, read_cost - rebuilt);
          machine_->engine().after(
              machine_->config().restart_delay + residual,
              [finish] { (*finish)(); });
        });
  }
}

void SpbcProtocol::on_rank_killed(int victim) {
  // Process-only failures (FailureKind::kProcessOnly) kill the cluster's
  // processes but leave node-local storage intact: restart re-reads LOCAL
  // copies instead of rebuilding from partners. The severity was recorded
  // per cluster at the crash instant (on_failure_injected), so both the
  // victim's kill and the peers' detection-time kills consult it here.
  const int cluster = machine_->cluster_of(victim);
  if (static_cast<size_t>(cluster) < storage_survives_.size() &&
      storage_survives_[static_cast<size_t>(cluster)] != 0) {
    return;
  }
  // A permanently-dead rank's OLD node was already invalidated at the crash
  // instant (on_failure_injected), before the elastic rebind: its current
  // node_of is the replacement, whose storage is intact.
  if (machine_->tombstoned(victim)) return;
  // The process died with its node (cluster failures take whole nodes down —
  // node colocation is enforced): LOCAL snapshot copies of the node's
  // residents and PARTNER copies hosted there are gone, and drains reading
  // from them will abort. Residency is keyed by the PHYSICAL binding.
  staging_.invalidate_node(machine_->node_of(victim));
}

void SpbcProtocol::restore_rank(int r, uint64_t epoch) {
  mpi::Rank& rank = machine_->rank(r);
  rank.reset_for_restart();
  // Any replay this rank was performing for another cluster dies with the
  // rollback (the log is about to be replaced); the peers will re-announce.
  replayers_[static_cast<size_t>(r)].reset();
  // Snapshots and captures above the committed epoch belong to a wave that
  // never finished; re-execution will redo that wave from scratch.
  store_.drop_epochs_above(r, epoch);
  staging_.drop_epochs_above(r, epoch);
  // A facade session torn open by the crash must not leak into the restored
  // epoch: the session aborts, and the committed regions are re-loaded from
  // the snapshot's app bytes by the state handlers on respawn (empty for a
  // sigma_0 restore — epoch 0 carries no app bytes).
  auto& fs = facade_[static_cast<size_t>(r)];
  fs.in_session = false;
  fs.restart_loaded = false;
  fs.staged.clear();
  fs.regions.clear();
  auto& cs = ckpt_[static_cast<size_t>(r)];
  if (epoch == 0) {
    // No committed checkpoint yet: roll back to the initial state sigma_0.
    logs_[static_cast<size_t>(r)].clear();
    cs = CkptLocal{};
    cs.last_cut = machine_->engine().now();
    if (cfg_.state_model.bytes > 0)
      synth_state_[static_cast<size_t>(r)] = ckpt::make_state(cfg_.state_model, r);
    return;
  }
  // Decode the stored form: roll the delta chain forward from its full base
  // and decompress. The raw path hands back a reference without copying.
  std::vector<unsigned char> scratch;
  const std::vector<unsigned char>& bytes = store_.materialize(r, epoch, scratch);
  util::ByteReader reader(bytes);
  const uint64_t snap_epoch = reader.get<uint64_t>();
  SPBC_ASSERT_MSG(snap_epoch == epoch, "snapshot/epoch mismatch for rank " << r);
  cs.epoch = epoch;
  cs.snap_epoch = epoch;
  // Transient wave state restarts at the restored epoch: it is committed by
  // definition, and markers of any dropped in-flight wave died with the old
  // incarnation. Partially collected tree aggregates died with it too.
  cs.complete_sent = epoch;
  cs.wave_seen = epoch;
  cs.marker_fwd = epoch;
  cs.agg.clear();
  // The adaptive trigger restarts its clock at the restore: the restored
  // snapshot's cut is in the rolled-back past, not this incarnation's.
  cs.last_cut = machine_->engine().now();
  cs.calls = reader.get<uint64_t>();
  rank.restore_runtime(reader);
  logs_[static_cast<size_t>(r)].restore(reader);
  machine_->set_pending_app_state(r, reader.get_bytes());
  if (cfg_.state_model.bytes > 0)
    synth_state_[static_cast<size_t>(r)] = reader.get_bytes();
  SPBC_ASSERT_MSG(reader.exhausted(), "trailing bytes in snapshot of rank " << r);
}

void SpbcProtocol::redeliver_captured(int r, uint64_t epoch) {
  if (epoch == 0) return;
  for (const ckpt::CapturedMsg& cm : store_.in_flight(r, epoch)) {
    mpi::Envelope env = cm.env;
    // Re-stamp with the restored epoch: the copy is now part of the
    // epoch's state, not a cut-crossing message to capture again.
    env.ckpt_epoch = epoch;
    machine_->rank(r).deliver_envelope(env, *cm.payload, /*payload_ready=*/true,
                                       /*sender_req=*/0);
  }
}

std::set<int> SpbcProtocol::rollback_peers_of(int r) const {
  // Section 3.1 defines a channel between every ordered pair of processes,
  // so "all outgoing inter-cluster channels" (Algorithm 1, line 19) means
  // every rank outside the cluster. Restricting to channels the checkpoint
  // has seen would lose messages a survivor sent on a brand-new channel
  // while this rank was down (e.g. the first collective after the crash):
  // that survivor would never learn it must replay.
  std::set<int> peers;
  const int my_cluster = machine_->cluster_of(r);
  for (int s = 0; s < machine_->nranks(); ++s) {
    if (machine_->cluster_of(s) == my_cluster) continue;
    // Dead-rank tombstone: a permanently-failed rank awaiting its elastic
    // rebind has no rendezvous to announce to — re-announcing Rollback at
    // it forever is the retry storm this filter removes. Its own recovery
    // re-announces in the other direction once it respawns.
    if (machine_->tombstoned(s)) continue;
    peers.insert(s);
  }
  return peers;
}

void SpbcProtocol::send_rollbacks_from(int r, const std::set<int>& peers) {
  const mpi::Rank& rank = machine_->rank(r);
  for (int p : peers) {
    // Gather this rank's received-windows for streams p -> r (all ctxs and,
    // under seq_per_tag, all tag streams).
    StreamWindows windows;
    for (const auto& [key, win] : rank.all_recv_windows())
      if (key.peer == p) windows[{key.ctx, key.stream}] = win;
    mpi::ControlMsg m;
    m.kind = mpi::ControlMsg::Kind::kRollback;
    m.src = r;
    m.dst = p;
    encode_windows(windows, m.words);
    machine_->send_control(r, p, std::move(m));
  }
}

// Aggregated Algorithm 1 lines 19-20 (MachineConfig::aggregate_rollbacks).
// The pairwise broadcast above posts one Rollback per (member, outside rank)
// pair — O(cluster x world) control messages per failure, which is what
// capped MTBF ablations at a few thousand ranks. A scalable implementation
// aggregates: members gather their restored windows to the cluster leader
// (free here — the serial recovery event already holds every member's
// restored state; the real gather is an intra-cluster reduction subsumed in
// restart_delay) and the leader posts ONE kClusterRollback per target,
// carrying only the members' windows for that destination (almost always
// none: a rank holds windows for a handful of peers). Replies shrink the
// same way — a peer posts lastMessage only toward members it actually holds
// received-windows for — so the members' stale LS suppression toward every
// target is wiped up front here, where the pairwise path relies on the
// always-sent reply's clear-then-install.
void SpbcProtocol::send_cluster_rollback(int cluster,
                                         const std::vector<int>& members,
                                         const std::vector<int>& targets) {
  SPBC_ASSERT(!members.empty());
  const int leader = *std::min_element(members.begin(), members.end());
  const std::set<int> target_set(targets.begin(), targets.end());
  auto is_target = [&target_set](int peer) {
    return target_set.count(peer) != 0;
  };
  // dst -> member -> that member's restored windows for streams dst -> member.
  std::map<int, std::map<int, StreamWindows>> by_dst;
  for (int r : members) {
    mpi::Rank& rank = machine_->rank(r);
    rank.clear_peer_received_if(is_target);
    for (const auto& [key, win] : rank.all_recv_windows()) {
      if (!is_target(key.peer)) continue;
      by_dst[key.peer][r][{key.ctx, key.stream}] = win;
    }
  }
  for (int dst : targets) {
    mpi::ControlMsg m;
    m.kind = mpi::ControlMsg::Kind::kClusterRollback;
    m.src = leader;
    m.dst = dst;
    m.words.push_back(static_cast<uint64_t>(cluster));
    auto it = by_dst.find(dst);
    m.words.push_back(it == by_dst.end() ? 0 : it->second.size());
    if (it != by_dst.end()) {
      for (const auto& [member, windows] : it->second) {
        m.words.push_back(static_cast<uint64_t>(member));
        encode_windows(windows, m.words);
      }
    }
    machine_->send_control(leader, dst, std::move(m));
  }
}

void SpbcProtocol::handle_rollback(mpi::Rank& receiver, const mpi::ControlMsg& msg) {
  const int me = receiver.rank();
  const int peer = msg.src;  // the recovering rank
  size_t pos = 0;
  StreamWindows peer_windows = decode_windows(msg.words, pos);

  // The Rollback carries the peer's COMPLETE restored received-windows —
  // replace our LS-suppression state with it. Without the refresh, a rank
  // that itself rolled back earlier keeps suppression learned from the
  // peer's PRE-crash state: it would keep skipping re-sends the peer no
  // longer holds, and if those sends were not yet re-logged when this
  // Rollback arrived, nothing would ever deliver them (observed as a
  // deadlock under repeated failures). The reset must cover streams ABSENT
  // from the announcement too: a peer restored to the initial state (or an
  // epoch predating a stream) announces no window for it, and stale
  // suppression left behind would silently drop the re-executed sends.
  receiver.clear_peer_received(peer);
  for (const auto& [key, win] : peer_windows) {
    receiver.send_state(peer, key.first, key.second == -1 ? 0 : key.second)
        .peer_received = win;
  }

  // Line 22: reply with what we already received on streams peer -> me, so
  // the recovering rank can skip those sends (LS suppression).
  StreamWindows mine;
  for (const auto& [key, win] : receiver.all_recv_windows())
    if (key.peer == peer) mine[{key.ctx, key.stream}] = win;
  mpi::ControlMsg reply;
  reply.kind = mpi::ControlMsg::Kind::kLastMessage;
  reply.src = me;
  reply.dst = peer;
  encode_windows(mine, reply.words);
  machine_->send_control(me, peer, std::move(reply));

  // Rendezvous state tied to the peer's old incarnation will never complete:
  // drop its pending RTSs from the unexpected queue (matching one would CTS
  // into the void) and rewind receptions already matched to one.
  receiver.match_engine().purge_pending_rts_from(peer);
  receiver.rewind_pending_from(peer);

  // Our own sends to the peer that were caught mid-rendezvous: the replayer
  // completes their application requests when the logged copies land.
  std::map<std::pair<int, uint64_t>, std::function<void()>> orphan_done;
  for (auto& orphan : machine_->take_rendezvous_to(peer, me)) {
    orphan_done[{orphan.env.ctx, orphan.env.seqnum}] = std::move(orphan.on_complete);
  }

  // Lines 23-24: replay logged messages the peer does not hold, in log
  // order, under the pre-post window.
  replayers_[static_cast<size_t>(me)].enqueue_for_peer(
      logs_[static_cast<size_t>(me)], peer, peer_windows, std::move(orphan_done));
  receiver.wake();
}

// Receiver side of the aggregated announce: semantically the pairwise
// handle_rollback above unrolled over every member of the recovering
// cluster, but each scan over this rank's state (send states, receive
// windows, sender log, rendezvous rows, matching queues) happens once per
// announce instead of once per member — without that batching a 16k-rank
// recovery would still walk each receiver's log 2048 times.
void SpbcProtocol::handle_cluster_rollback(mpi::Rank& receiver,
                                           const mpi::ControlMsg& msg) {
  const int me = receiver.rank();
  size_t pos = 0;
  const int cluster = static_cast<int>(msg.words.at(pos++));
  const uint64_t nmembers = msg.words.at(pos++);
  std::map<int, StreamWindows> windows_by_member;
  for (uint64_t i = 0; i < nmembers; ++i) {
    const int member = static_cast<int>(msg.words.at(pos++));
    windows_by_member[member] = decode_windows(msg.words, pos);
  }
  auto in_cluster = [this, cluster](int peer) {
    return machine_->cluster_of(peer) == cluster;
  };

  // (1) Replace LS suppression learned from the members' pre-crash state
  // with their restored windows; members absent from the announce restored
  // no windows for us, so theirs drops to empty (same contract as the
  // pairwise clear-then-install).
  receiver.clear_peer_received_if(in_cluster);
  for (const auto& [member, windows] : windows_by_member) {
    for (const auto& [key, win] : windows) {
      receiver.send_state(member, key.first, key.second == -1 ? 0 : key.second)
          .peer_received = win;
    }
  }

  // (2) Reply with what we already received — only toward members we hold
  // any windows for. No reply means "received nothing": the members wiped
  // their suppression toward us before announcing.
  std::map<int, StreamWindows> mine;
  for (const auto& [key, win] : receiver.all_recv_windows()) {
    if (in_cluster(key.peer)) mine[key.peer][{key.ctx, key.stream}] = win;
  }
  for (const auto& [member, windows] : mine) {
    mpi::ControlMsg reply;
    reply.kind = mpi::ControlMsg::Kind::kLastMessage;
    reply.src = me;
    reply.dst = member;
    encode_windows(windows, reply.words);
    machine_->send_control(me, member, std::move(reply));
  }

  // (3) Rendezvous state tied to the members' old incarnations will never
  // complete: purge their stale RTSs, rewind receptions matched to one, and
  // orphan our own sends caught mid-handshake toward them.
  receiver.match_engine().purge_pending_rts_if(in_cluster);
  receiver.rewind_pending_if(in_cluster);
  std::map<int, std::map<std::pair<int, uint64_t>, std::function<void()>>>
      orphans_by_dst;
  for (auto& [dst, list] : machine_->take_rendezvous_to_if(in_cluster, me)) {
    for (auto& orphan : list) {
      orphans_by_dst[dst][{orphan.env.ctx, orphan.env.seqnum}] =
          std::move(orphan.on_complete);
    }
  }

  // (4) Replay logged messages the members do not hold, in log order.
  replayers_[static_cast<size_t>(me)].enqueue_for_cluster(
      logs_[static_cast<size_t>(me)], in_cluster, windows_by_member,
      std::move(orphans_by_dst));
  receiver.wake();
}

void SpbcProtocol::handle_last_message(mpi::Rank& receiver, const mpi::ControlMsg& msg) {
  // Lines 25-26: install the peer's received-windows as our suppression
  // state for streams me -> peer. The stream id doubles as the tag in
  // seq_per_tag mode and is -1 otherwise, matching stream_of(). As with
  // Rollback, the reply enumerates the peer's complete receive state, so
  // streams it does not mention must drop any stale suppression.
  size_t pos = 0;
  StreamWindows windows = decode_windows(msg.words, pos);
  receiver.clear_peer_received(msg.src);
  for (auto& [key, win] : windows) {
    receiver.send_state(msg.src, key.first, key.second == -1 ? 0 : key.second)
        .peer_received = std::move(win);
  }
  receiver.wake();
}

void SpbcProtocol::on_control(mpi::Rank& receiver, const mpi::ControlMsg& msg) {
  auto& cs = ckpt_[static_cast<size_t>(receiver.rank())];
  switch (msg.kind) {
    case mpi::ControlMsg::Kind::kRollback:
      handle_rollback(receiver, msg);
      break;
    case mpi::ControlMsg::Kind::kLastMessage:
      handle_last_message(receiver, msg);
      break;
    case mpi::ControlMsg::Kind::kClusterRollback:
      handle_cluster_rollback(receiver, msg);
      break;
    case mpi::ControlMsg::Kind::kCkptMarker:
      // A cluster peer cut epoch msg.words[0]. If this member has not, it
      // joins the wave at its next maybe_checkpoint() call (nothing blocks
      // on the marker — the wave stays non-blocking).
      cs.wave_seen = std::max(cs.wave_seen, msg.words.at(0));
      if (machine_->config().tree_ckpt_markers)
        flood_wave_marker(receiver.rank(), msg.words.at(0), msg.src);
      break;
    case mpi::ControlMsg::Kind::kCkptComplete: {
      // A tree child's aggregate for words[0]: union its covered member set
      // into ours and forward when our own subtree is complete.
      const uint64_t epoch = msg.words.at(0);
      if (epoch <= wave_of(machine_->cluster_of(receiver.rank())).committed)
        break;  // stale report from a superseded wave
      auto& agg = cs.agg[epoch];
      const uint64_t n = msg.words.at(1);
      for (uint64_t i = 0; i < n; ++i)
        agg.covered.insert(static_cast<int>(msg.words.at(2 + i)));
      if (cfg_.gc_logs) {
        // Piggybacked GC windows of the covered members: [rank, len,
        // words...] blocks after the member list (idempotent under re-sent
        // aggregates, like the covered-set union).
        size_t pos = 2 + n;
        while (pos < msg.words.size()) {
          const int m = static_cast<int>(msg.words.at(pos++));
          const uint64_t len = msg.words.at(pos++);
          std::vector<uint64_t>& blob = agg.windows[m];
          blob.assign(msg.words.begin() + static_cast<int64_t>(pos),
                      msg.words.begin() + static_cast<int64_t>(pos + len));
          pos += len;
        }
      }
      try_forward_aggregate(receiver.rank(), epoch);
      break;
    }
    case mpi::ControlMsg::Kind::kCkptCommit:
      // The wave's down-sweep: the member learns its epoch committed and
      // discards the local state the commit supersedes — down to the
      // retention floor (words[1]), which lags the committed epoch under
      // async staging until the PFS flush catches up.
      cs.epoch = std::max(cs.epoch, msg.words.at(0));
      {
        // Chain clamp (see commit_epoch): the store may retain epochs below
        // the nominal floor to back a delta head; staging mirrors it.
        const uint64_t eff =
            store_.prune_epochs_below(receiver.rank(), msg.words.at(1));
        staging_.prune_epochs_below(receiver.rank(), eff);
      }
      maybe_spill_captures(receiver.rank());
      break;
    default:
      SPBC_UNREACHABLE("unhandled control message kind in SpbcProtocol");
  }
}

// ---------------------------------------------------------------------------
// Online repartitioning: the quiescence bridge (DESIGN.md §14)
// ---------------------------------------------------------------------------

void SpbcProtocol::schedule_repartition() {
  machine_->engine().after_serial(cfg_.control.repartition_period, [this] {
    // Stop when the machine wound down (same discipline as the scrub wave):
    // run() ends only once the event queues drain.
    if (machine_->engine().live_task_count() == 0) return;
    repartition_tick();
    schedule_repartition();
  });
}

void SpbcProtocol::repartition_tick() {
  if (migration_.active) {
    try_flip_migration();
  } else {
    try_announce_migration();
  }
}

bool SpbcProtocol::cluster_quiescent(int cluster) const {
  const uint64_t committed = committed_epoch(cluster);
  for (int r : machine_->ranks_in_cluster(cluster)) {
    const auto& cs = ckpt_[static_cast<size_t>(r)];
    if (cs.snap_epoch != committed || cs.epoch != committed) return false;
  }
  return true;
}

void SpbcProtocol::try_announce_migration() {
  if (!restart_pending_.empty()) return;
  // Without a durable anchor the flip's fallback floor cannot be guaranteed:
  // under sync LOCAL/PARTNER storage migrations never run (documented
  // degradation); kNone (in-memory store) waives durability entirely.
  if (cfg_.storage != ckpt::StorageLevel::kNone &&
      cfg_.storage != ckpt::StorageLevel::kPfs) {
    return;
  }
  const int n = machine_->nranks();
  const int nclusters = machine_->nclusters();
  if (nclusters <= 1) return;
  std::vector<int> cluster_of(static_cast<size_t>(n));
  std::vector<int> unit_of(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    if (machine_->tombstoned(r)) return;  // elastic recovery in progress
    cluster_of[static_cast<size_t>(r)] = machine_->cluster_of(r);
    unit_of[static_cast<size_t>(r)] = machine_->node_of(r);
  }
  // After a shrunk restart two clusters can share a physical node; unit-
  // granular moves are ill-defined there, so the repartitioner stands down.
  std::vector<int> owner(
      static_cast<size_t>(machine_->topology().total_nodes()), -1);
  for (int r = 0; r < n; ++r) {
    int& o = owner[static_cast<size_t>(unit_of[static_cast<size_t>(r)])];
    if (o == -1) {
      o = cluster_of[static_cast<size_t>(r)];
    } else if (o != cluster_of[static_cast<size_t>(r)]) {
      return;
    }
  }
  clustering::CommGraph graph =
      clustering::CommGraph::from_traffic(n, machine_->traffic());
  clustering::RepartitionConfig rc;
  rc.max_moves = cfg_.control.repartition_max_moves < 1
                     ? 1
                     : cfg_.control.repartition_max_moves;
  const std::vector<clustering::NodeMove> moves =
      clustering::StreamingRepartitioner(rc).plan(graph, cluster_of, unit_of,
                                                  nclusters);
  if (moves.empty()) return;
  // The bridge carries ONE unit at a time; later planned moves are recomputed
  // by the next announce against the post-flip map (their gains assumed the
  // earlier moves already applied).
  const clustering::NodeMove& mv = moves.front();
  if (!cluster_quiescent(mv.from) || !cluster_quiescent(mv.to)) return;
  migration_.active = true;
  migration_.ranks = mv.ranks;
  migration_.unit = mv.unit;
  migration_.from = mv.from;
  migration_.to = mv.to;
  migration_.boundary_a = wave_of(mv.from).committed + 1;
  migration_.pin_b = wave_of(mv.to).committed + 1;
  // Force the anchor epochs to full staging depth and pin them against
  // pruning until the flip consumes them.
  forced_pfs_epoch_[mv.from] = migration_.boundary_a;
  forced_pfs_epoch_[mv.to] = migration_.pin_b;
}

void SpbcProtocol::try_flip_migration() {
  const int a = migration_.from;
  const int b = migration_.to;
  for (int r : migration_.ranks)
    if (machine_->tombstoned(r)) return;  // mid elastic rebind; retry later
  if (restart_pending_.count(a) || restart_pending_.count(b)) return;
  const uint64_t boundary = migration_.boundary_a;
  const uint64_t pin = migration_.pin_b;
  if (wave_of(a).committed < boundary || wave_of(b).committed < pin) return;
  if (!cluster_quiescent(a) || !cluster_quiescent(b)) return;
  const std::vector<int> a_members = machine_->ranks_in_cluster(a);
  const std::vector<int> b_members = machine_->ranks_in_cluster(b);
  if (staging_.enabled()) {
    // The flip's fallback guarantees rest on durable anchors: boundary_a for
    // the shrinking cluster (post-flip it can never be forced below it),
    // pin_b for everyone the movers join in B.
    for (int r : a_members)
      if ((staging_.levels(r, boundary) & ckpt::kAtPfs) == 0) return;
    for (int r : b_members)
      if ((staging_.levels(r, pin) & ckpt::kAtPfs) == 0) return;
  }
  // Every pre-cut intra send must have landed: the flip reclassifies the
  // movers' channels, and an intra-accounted send completing after it would
  // corrupt the drain bookkeeping the wave commit rests on.
  for (int r : a_members)
    if (machine_->outstanding_intra_sends(r) != 0) return;

  const uint64_t committed_b = wave_of(b).committed;
  const sim::Time now = machine_->engine().now();
  for (int r : migration_.ranks) {
    // Keep exactly the boundary epoch, renumbered into B's epoch space; the
    // rest of the mover's checkpoint history belongs to A and leaves with
    // the membership. B's fallback can then never pick an epoch the mover
    // lacks: the walk lands on pin_b, durable for every member by the
    // precondition above.
    store_.drop_epochs_above(r, boundary);
    // The boundary epoch was forced to a full capture at save time, so the
    // chain clamp is a no-op here and the rename below re-keys a
    // self-contained snapshot.
    const uint64_t eff = store_.prune_epochs_below(r, boundary);
    store_.rename_epoch(r, boundary, pin);
    staging_.drop_epochs_above(r, boundary);
    staging_.prune_epochs_below(r, eff);
    staging_.rename_epoch(r, boundary, pin);
    auto& cs = ckpt_[static_cast<size_t>(r)];
    cs.epoch = committed_b;
    cs.snap_epoch = committed_b;
    cs.complete_sent = committed_b;
    cs.wave_seen = committed_b;
    cs.marker_fwd = committed_b;
    cs.agg.clear();
    cs.last_cut = now;
    machine_->migrate_rank(r, b);
  }
  // Partner placement memos are keyed by the cluster layout; grouped schemes
  // pin their groups (logical topology) and stay valid.
  staging_.on_topology_change();
  forced_pfs_epoch_.erase(a);
  forced_pfs_epoch_.erase(b);
  control_.note_repartition(static_cast<int>(migration_.ranks.size()));
  migration_ = Migration{};
}

void SpbcProtocol::on_rank_start(mpi::Rank& rank, bool restarted) {
  if (!restarted) return;
  // Rollback announcements were already sent from the recovery orchestration
  // (event context) at respawn time; nothing to do in the fiber.
  (void)rank;
}

}  // namespace spbc::core

#pragma once
// Sender-based message log (Algorithm 1, line 6).
//
// Every inter-cluster message is appended — payload and identifier tuple —
// in send-post order, which is exactly the order Section 5.2.2 requires for
// deadlock-free replay. Entries use a deque so pointers into the log stay
// valid while the application keeps appending during a concurrent replay.

#include <cstdint>
#include <deque>

#include "mpi/types.hpp"
#include "util/serialize.hpp"

namespace spbc::core {

struct LogEntry {
  mpi::Envelope env;
  mpi::Payload payload;
  // Incarnation of env.dst this entry was last queued for replay to;
  // UINT32_MAX = never queued. Prevents double-queuing within one recovery
  // while allowing re-replay after the destination crashes again.
  uint32_t queued_for_inc = UINT32_MAX;
};

class SenderLog {
 public:
  /// Appends one message in post order. Payload is copied (that copy is the
  /// failure-free overhead the protocol pays; see Table 2).
  void append(const mpi::Envelope& env, const mpi::Payload& payload);

  std::deque<LogEntry>& entries() { return entries_; }
  const std::deque<LogEntry>& entries() const { return entries_; }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Monotonic counters (not reset by restore): drive the Table 1
  /// measurement of log growth.
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t messages_appended() const { return messages_appended_; }

  /// Live memory footprint of retained entries.
  uint64_t bytes_retained() const { return bytes_retained_; }
  /// Highest live footprint ever observed (not reset by restore).
  uint64_t bytes_retained_hwm() const { return retained_hwm_; }
  /// Cumulative bytes dropped by gc_received (the Table-1 reclamation
  /// effect measured with SpbcConfig::gc_logs on).
  uint64_t bytes_reclaimed() const { return bytes_reclaimed_; }

  /// Does the log hold any entry destined to `dst`?
  bool has_entries_to(int dst) const;

  /// Garbage collection (extension; see DESIGN.md): drops entries the
  /// destination cluster has captured in a checkpoint. `stream` selects the
  /// tag sub-stream the window covers (-1 = whole channel, the MPI-only
  /// mode). Returns bytes freed.
  uint64_t gc_received(int dst, int ctx, const mpi::SeqWindow& captured,
                       int stream = -1);

  /// Checkpoint support: logs are saved as part of the process checkpoint
  /// (Algorithm 1, line 15).
  void serialize(util::ByteWriter& w) const;
  void restore(util::ByteReader& r);
  void clear();

 private:
  std::deque<LogEntry> entries_;
  uint64_t bytes_appended_ = 0;
  uint64_t messages_appended_ = 0;
  uint64_t bytes_retained_ = 0;
  uint64_t retained_hwm_ = 0;
  uint64_t bytes_reclaimed_ = 0;
};

}  // namespace spbc::core

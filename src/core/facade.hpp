#pragma once
// Drop-in application facade over the SPBC protocol (DESIGN.md §16).
//
// The adoption surface real applications write against, modeled on SCR's
// SCR_Need_checkpoint / SCR_Start_checkpoint / SCR_Route_file /
// SCR_Complete_checkpoint integration recipe: four C-style calls wrap the
// whole checkpoint lifecycle, so a code adopts SPBC by bracketing the
// state-dump block it already has — no pattern annotations, no knowledge of
// epochs, waves, staging levels, or redundancy schemes.
//
//   // once, at startup (also answers "did I restart from a checkpoint?")
//   int have = 0;
//   spbc_have_restart(rank, &have);
//   if (have) spbc_restart_read(rank, "iter", &iter, &len);
//
//   // every iteration boundary
//   int need = 0;
//   spbc_need_checkpoint(rank, &need);   // §13 control plane answers this
//   if (need) {
//     spbc_start(rank);
//     spbc_route(rank, "iter", &iter, sizeof iter, path, sizeof path);
//     spbc_complete(rank, /*valid=*/1);  // cuts the epoch, joins the wave
//   }
//
// Semantics:
//  * spbc_need_checkpoint asks the protocol's trigger — the control plane's
//    observed-MTBF Young/Daly time boundary when enabled, the static
//    every-N schedule otherwise, or a cluster peer's wave marker running
//    ahead — without cutting. The call counts as a checkpoint opportunity,
//    so facade apps pace the periodic schedule exactly like pattern-API
//    apps calling maybe_checkpoint().
//  * spbc_start opens a session for the NEXT epoch. Routed writes stage
//    into it; nothing is durable yet.
//  * spbc_route registers one named region's bytes with the open session
//    and reports where the capture will land: the rank's node-LOCAL store
//    (`local://node<N>/rank<R>/epoch<E>/<name>`), resolved against the
//    CURRENT physical binding — after a spare-node hot-swap the same call
//    routes to the spare. The staging chain then promotes the capture
//    LOCAL -> redundancy -> PFS in the background, exactly as for
//    pattern-API snapshots.
//  * spbc_complete(valid=1) commits the session's regions into the rank's
//    snapshot image and cuts the epoch through the coordinated wave
//    (checkpoint_now — markers make cluster peers join). valid=0 discards
//    the session (the app detected its own dump was torn).
//  * On rollback an open session aborts; the regions recovered through
//    spbc_have_restart/spbc_restart_read are exactly the last COMMITTED
//    session's — checksum-identical to what spbc_route was handed.
//
// Misuse is rejected, never asserted: route/complete outside a session,
// double start, unknown regions and short buffers return error codes
// (spbc_error_string for messages). The facade is purely local — it adds
// no communication and no cost beyond the snapshot the app asked for.

#include <cstdint>

#include "mpi/rank.hpp"

namespace spbc::core {

enum FacadeStatus : int {
  SPBC_SUCCESS = 0,
  SPBC_ERR_NO_PROTOCOL = -1,  // machine's protocol is not SpbcProtocol
  SPBC_ERR_IN_SESSION = -2,   // spbc_start while a session is already open
  SPBC_ERR_NO_SESSION = -3,   // route/complete outside spbc_start..complete
  SPBC_ERR_BAD_ARG = -4,      // null name/flag/data with nonzero size
  SPBC_ERR_UNKNOWN_REGION = -5,  // restart read of a region never committed
  SPBC_ERR_TRUNCATED = -6,       // caller buffer smaller than the region
};

/// Human-readable message for a FacadeStatus code (static storage).
const char* spbc_error_string(int code);

/// Should the app checkpoint now? Writes 1/0 into *flag. Counts as a
/// checkpoint opportunity (the periodic schedule's call index advances).
int spbc_need_checkpoint(mpi::Rank& rank, int* flag);

/// Opens a checkpoint session for the next epoch.
int spbc_start(mpi::Rank& rank);

/// Registers `bytes` of region `name` with the open session and, when
/// `routed_path` is non-null, writes the LOCAL-store path the capture lands
/// at (truncated to `path_len`, always NUL-terminated when path_len > 0).
int spbc_route(mpi::Rank& rank, const char* name, const void* data,
               uint64_t bytes, char* routed_path, uint64_t path_len);

/// Ends the session: valid != 0 commits the routed regions and cuts the
/// epoch through the coordinated wave; valid == 0 discards them.
int spbc_complete(mpi::Rank& rank, int valid);

/// Did this incarnation restart from a committed checkpoint with facade
/// regions to read? Installs the facade's state handlers (idempotent) and
/// loads the restored regions on the first call of a restarted incarnation.
int spbc_have_restart(mpi::Rank& rank, int* flag);

/// Copies region `name` of the restored checkpoint into `buf`. On input
/// *bytes is the buffer capacity; on success it is the region's size. A
/// too-small buffer returns SPBC_ERR_TRUNCATED with *bytes set to the
/// required size and nothing copied.
int spbc_restart_read(mpi::Rank& rank, const char* name, void* buf,
                      uint64_t* bytes);

}  // namespace spbc::core

#include "core/control_plane.hpp"

#include <algorithm>
#include <cmath>

namespace spbc::core {

ControlPlane::ControlPlane(const ControlPlaneConfig& cfg,
                           const ckpt::StorageCostModel& model)
    : cfg_(cfg),
      model_(model),
      any_(cfg.window, cfg.min_samples, cfg.prior_mtbf),
      storage_(cfg.window, cfg.min_samples, cfg.prior_storage_mtbf),
      dbl_(cfg.window, cfg.min_samples, cfg.prior_double_mtbf) {}

void ControlPlane::note_failure(sim::Time now, bool storage_lost, int node) {
  if (!cfg_.enabled) return;
  publish_snapshot_bytes();
  maybe_deescalate(now);
  ++failures_;
  any_.note_event(now);
  if (!storage_lost) return;
  ++storage_losses_;
  storage_.note_event(now);
  if (last_storage_loss_ >= 0 && node != last_storage_node_ &&
      now - last_storage_loss_ <= cfg_.correlation_window) {
    // Two distinct nodes within the correlation window: the event class
    // single parity cannot cover. A third loss opens a fresh pair rather
    // than chaining (one platform event, one count).
    ++double_losses_;
    dbl_.note_event(now);
    last_double_ = now;
    last_storage_loss_ = -1.0;
    last_storage_node_ = -1;
    if (cfg_.escalation && !escalated_ &&
        double_losses_ >= static_cast<uint64_t>(cfg_.escalate_after)) {
      escalated_ = true;
      ++escalations_;
      if (staging_ != nullptr) staging_->set_scheme_escalated(true);
    }
  } else {
    last_storage_loss_ = now;
    last_storage_node_ = node;
  }
}

void ControlPlane::on_tick(sim::Time now) {
  if (!cfg_.enabled) return;
  publish_snapshot_bytes();
  maybe_deescalate(now);
}

void ControlPlane::maybe_deescalate(sim::Time now) {
  if (!cfg_.escalation || !escalated_) return;
  if (last_double_ >= 0 && now - last_double_ >= cfg_.calm_period) {
    escalated_ = false;
    ++deescalations_;
    if (staging_ != nullptr) staging_->set_scheme_escalated(false);
  }
}

void ControlPlane::note_snapshot_bytes(uint64_t bytes) {
  uint64_t cur = pending_bytes_.load(std::memory_order_relaxed);
  while (bytes > cur && !pending_bytes_.compare_exchange_weak(
                            cur, bytes, std::memory_order_relaxed)) {
  }
}

void ControlPlane::publish_snapshot_bytes() {
  const uint64_t p = pending_bytes_.load(std::memory_order_relaxed);
  if (p > published_bytes_) published_bytes_ = p;
}

uint64_t ControlPlane::snapshot_bytes() const {
  return published_bytes_ > 0 ? published_bytes_ : cfg_.snapshot_bytes_hint;
}

sim::Time ControlPlane::local_interval() const {
  const double c =
      model_.write_time(ckpt::StorageLevel::kLocal, snapshot_bytes());
  // The MTBF that matters to a Young/Daly balance under clustered
  // containment is per domain: a failure rolls back one cluster, so a given
  // cluster loses work `domains_` times less often than the machine fails.
  const double m = any_.mtbf() * domains_;
  const double t = std::sqrt(2.0 * std::max(c, 1e-9) * m);
  return std::clamp<sim::Time>(t, cfg_.min_interval, cfg_.max_interval);
}

uint64_t ControlPlane::redundancy_stride() const {
  const uint64_t bytes = snapshot_bytes();
  // Incremental cost of the redundancy hop on top of the LOCAL write: what
  // the level adds, not what the chain repeats. Under async staging the hop
  // is background traffic — its latency overlaps with compute, so only the
  // bandwidth term is a real cost against the rollback depth a skipped hop
  // buys.
  const double c = std::max(
      cfg_.async_staging
          ? static_cast<double>(bytes) / model_.partner_bw
          : model_.write_time(ckpt::StorageLevel::kPartner, bytes) -
                model_.write_time(ckpt::StorageLevel::kLocal, bytes),
      1e-9);
  const double t = std::sqrt(2.0 * c * storage_.mtbf() * domains_);
  const double stride = std::round(t / local_interval());
  return std::clamp<uint64_t>(
      stride < 1.0 ? 1 : static_cast<uint64_t>(stride), 1,
      cfg_.max_level_stride);
}

uint64_t ControlPlane::pfs_stride() const {
  const uint64_t bytes = snapshot_bytes();
  const double c =
      cfg_.async_staging
          ? static_cast<double>(bytes) / model_.pfs_bw
          : model_.write_time(ckpt::StorageLevel::kPfs, bytes);
  const double t = std::sqrt(2.0 * std::max(c, 1e-9) * dbl_.mtbf() * domains_);
  const double stride = std::round(t / local_interval());
  return std::clamp<uint64_t>(
      stride < 1.0 ? 1 : static_cast<uint64_t>(stride), 1,
      cfg_.max_level_stride);
}

ckpt::LevelPlan ControlPlane::plan_for_epoch(uint64_t epoch) const {
  ckpt::LevelPlan plan;  // full depth when the controller is off
  if (!cfg_.enabled) return plan;
  plan.redundancy = epoch % redundancy_stride() == 0;
  plan.pfs = epoch % pfs_stride() == 0;
  return plan;
}

ControlPlaneStats ControlPlane::stats() const {
  ControlPlaneStats st;
  st.failures = failures_;
  st.storage_losses = storage_losses_;
  st.double_losses = double_losses_;
  st.replans = replans_.load(std::memory_order_relaxed);
  st.escalations = escalations_;
  st.deescalations = deescalations_;
  st.observed_mtbf = any_.mtbf();
  st.observed_storage_mtbf = storage_.mtbf();
  st.observed_double_mtbf = dbl_.mtbf();
  st.local_interval = cfg_.enabled ? local_interval() : 0.0;
  st.redundancy_stride = cfg_.enabled ? redundancy_stride() : 0;
  st.pfs_stride = cfg_.enabled ? pfs_stride() : 0;
  st.escalated = escalated_;
  st.repartitions = repartitions_;
  st.ranks_migrated = ranks_migrated_;
  return st;
}

}  // namespace spbc::core

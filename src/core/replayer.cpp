#include "core/replayer.hpp"

#include "mpi/machine.hpp"
#include "util/assert.hpp"

namespace spbc::core {

void Replayer::configure(mpi::Machine* machine, int self_rank, int window) {
  machine_ = machine;
  self_ = self_rank;
  window_ = window;
  SPBC_ASSERT(window_ >= 1);
}

void Replayer::enqueue_for_peer(
    SenderLog& log, int dst,
    const std::map<std::pair<int, int>, mpi::SeqWindow>& windows,
    std::map<std::pair<int, uint64_t>, std::function<void()>> orphan_done) {
  SPBC_ASSERT(machine_ != nullptr);
  uint32_t inc = machine_->incarnation(dst);
  auto& send_states = machine_->rank(self_);
  size_t queued = 0;
  for (auto& e : log.entries()) {
    if (e.env.dst != dst) continue;
    if (e.queued_for_inc == inc) continue;  // already queued for this recovery
    int stream = send_states.stream_of(e.env.tag);
    auto wit = windows.find({e.env.ctx, stream});
    if (wit != windows.end() && wit->second.contains(e.env.seqnum)) {
      // The peer received this one before its checkpoint; if an application
      // request was orphaned on it (cannot be: a received payload completes
      // the send), just release any stray callback.
      auto oit = orphan_done.find({e.env.ctx, e.env.seqnum});
      if (oit != orphan_done.end() && oit->second) oit->second();
      continue;
    }
    e.queued_for_inc = inc;
    Item item;
    item.env = e.env;
    item.payload = &e.payload;
    auto oit = orphan_done.find({e.env.ctx, e.env.seqnum});
    if (oit != orphan_done.end()) item.orphan_done = std::move(oit->second);
    // Gate new application sends on this stream behind the replayed prefix
    // (per-stream order must match the failure-free execution).
    ++send_states.send_state(dst, e.env.ctx, e.env.tag).replay_pending;
    queue_.push_back(std::move(item));
    ++queued;
  }
  if (queued > 0) pump();
}

void Replayer::enqueue_for_cluster(
    SenderLog& log, const std::function<bool(int)>& in_cluster,
    const std::map<int, std::map<std::pair<int, int>, mpi::SeqWindow>>&
        windows_by_dst,
    std::map<int, std::map<std::pair<int, uint64_t>, std::function<void()>>>
        orphans_by_dst) {
  SPBC_ASSERT(machine_ != nullptr);
  static const std::map<std::pair<int, int>, mpi::SeqWindow> kNoWindows;
  auto& send_states = machine_->rank(self_);
  std::map<int, uint32_t> incs;  // per-destination incarnation cache
  size_t queued = 0;
  for (auto& e : log.entries()) {
    const int dst = e.env.dst;
    if (!in_cluster(dst)) continue;
    auto [iit, fresh] = incs.try_emplace(dst, 0);
    if (fresh) iit->second = machine_->incarnation(dst);
    const uint32_t inc = iit->second;
    if (e.queued_for_inc == inc) continue;  // already queued for this recovery
    auto wdit = windows_by_dst.find(dst);
    const auto& windows = wdit == windows_by_dst.end() ? kNoWindows : wdit->second;
    auto odit = orphans_by_dst.find(dst);
    auto* orphans = odit == orphans_by_dst.end() ? nullptr : &odit->second;
    int stream = send_states.stream_of(e.env.tag);
    auto wit = windows.find({e.env.ctx, stream});
    if (wit != windows.end() && wit->second.contains(e.env.seqnum)) {
      if (orphans != nullptr) {
        auto oit = orphans->find({e.env.ctx, e.env.seqnum});
        if (oit != orphans->end() && oit->second) oit->second();
      }
      continue;
    }
    e.queued_for_inc = inc;
    Item item;
    item.env = e.env;
    item.payload = &e.payload;
    if (orphans != nullptr) {
      auto oit = orphans->find({e.env.ctx, e.env.seqnum});
      if (oit != orphans->end()) item.orphan_done = std::move(oit->second);
    }
    ++send_states.send_state(dst, e.env.ctx, e.env.tag).replay_pending;
    queue_.push_back(std::move(item));
    ++queued;
  }
  if (queued > 0) pump();
}

void Replayer::pump() {
  while (outstanding_ < window_ && !queue_.empty()) {
    Item item = std::move(queue_.front());
    queue_.pop_front();
    ++outstanding_;
    if (gate_) {
      // HydEE-style: ask for clearance, then send. The gate may defer us
      // arbitrarily (coordinator round-trip).
      mpi::Envelope env = item.env;
      auto shared = std::make_shared<Item>(std::move(item));
      gate_(env, [this, shared] { launch(std::move(*shared)); });
    } else {
      launch(std::move(item));
    }
  }
}

void Replayer::launch(Item item) {
  mpi::Envelope env = item.env;
  auto orphan = std::make_shared<std::function<void()>>(std::move(item.orphan_done));
  uint64_t epoch = epoch_;
  machine_->replay_send(self_, env, *item.payload, [this, env, orphan, epoch] {
    if (epoch != epoch_) return;  // the sender rolled back mid-replay
    --outstanding_;
    ++replayed_total_;
    auto& ch = machine_->rank(self_).send_state(env.dst, env.ctx, env.tag);
    SPBC_ASSERT(ch.replay_pending > 0);
    --ch.replay_pending;
    if (ch.replay_pending == 0) machine_->rank(self_).wake();
    if (*orphan) (*orphan)();
    pump();
  });
}

void Replayer::reset() {
  queue_.clear();
  outstanding_ = 0;
  ++epoch_;
}

}  // namespace spbc::core

#include "core/facade.hpp"

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/spbc.hpp"
#include "mpi/machine.hpp"
#include "util/serialize.hpp"

namespace spbc::core {

namespace {

/// The facade only works against the SPBC protocol family (HydEE derives
/// from it, so HydEE runs get the facade for free).
SpbcProtocol* proto_of(mpi::Rank& rank) {
  return dynamic_cast<SpbcProtocol*>(&rank.machine().protocol());
}

/// Installs the facade's app-state handlers on the rank (once per rank —
/// handlers survive respawn). The committed region map IS the facade app's
/// checkpointed state: the save side embeds it into the snapshot's app
/// section, the load side rebuilds it on restore. Byte-exact round trip, so
/// recovery through the facade is checksum-identical to what spbc_route was
/// handed.
void ensure_handlers(mpi::Rank& rank, SpbcProtocol* p) {
  if (rank.has_state_handlers()) return;
  const int r = rank.rank();
  rank.set_state_handlers(
      [p, r](util::ByteWriter& w) {
        const auto& regions = p->facade_state(r).regions;
        w.put<uint64_t>(regions.size());
        for (const auto& [name, bytes] : regions) {
          w.put_string(name);
          w.put_bytes(bytes.data(), bytes.size());
        }
      },
      [p, r](util::ByteReader& rd) {
        auto& regions = p->facade_state(r).regions;
        regions.clear();
        const uint64_t n = rd.get<uint64_t>();
        for (uint64_t i = 0; i < n; ++i) {
          std::string name = rd.get_string();
          regions[std::move(name)] = rd.get_bytes();
        }
      });
}

}  // namespace

const char* spbc_error_string(int code) {
  switch (code) {
    case SPBC_SUCCESS:
      return "success";
    case SPBC_ERR_NO_PROTOCOL:
      return "machine is not running the SPBC protocol";
    case SPBC_ERR_IN_SESSION:
      return "a checkpoint session is already open";
    case SPBC_ERR_NO_SESSION:
      return "no checkpoint session is open";
    case SPBC_ERR_BAD_ARG:
      return "null or invalid argument";
    case SPBC_ERR_UNKNOWN_REGION:
      return "no such region in the restored checkpoint";
    case SPBC_ERR_TRUNCATED:
      return "buffer too small for the region";
    default:
      return "unknown error";
  }
}

int spbc_need_checkpoint(mpi::Rank& rank, int* flag) {
  if (flag == nullptr) return SPBC_ERR_BAD_ARG;
  *flag = 0;
  SpbcProtocol* p = proto_of(rank);
  if (p == nullptr) return SPBC_ERR_NO_PROTOCOL;
  ensure_handlers(rank, p);
  *flag = p->need_checkpoint(rank) ? 1 : 0;
  return SPBC_SUCCESS;
}

int spbc_start(mpi::Rank& rank) {
  SpbcProtocol* p = proto_of(rank);
  if (p == nullptr) return SPBC_ERR_NO_PROTOCOL;
  ensure_handlers(rank, p);
  auto& fs = p->facade_state(rank.rank());
  if (fs.in_session) return SPBC_ERR_IN_SESSION;
  fs.in_session = true;
  fs.staged.clear();
  ++fs.sessions;
  return SPBC_SUCCESS;
}

int spbc_route(mpi::Rank& rank, const char* name, const void* data,
               uint64_t bytes, char* routed_path, uint64_t path_len) {
  if (name == nullptr || *name == '\0') return SPBC_ERR_BAD_ARG;
  if (data == nullptr && bytes != 0) return SPBC_ERR_BAD_ARG;
  SpbcProtocol* p = proto_of(rank);
  if (p == nullptr) return SPBC_ERR_NO_PROTOCOL;
  auto& fs = p->facade_state(rank.rank());
  if (!fs.in_session) return SPBC_ERR_NO_SESSION;
  const auto* src = static_cast<const unsigned char*>(data);
  fs.staged[name].assign(src, src + bytes);
  if (routed_path != nullptr && path_len > 0) {
    // The capture lands in the node-LOCAL store of the rank's CURRENT
    // physical binding (after a spare hot-swap this is the spare node), as
    // part of the NEXT epoch's snapshot image. The staging chain promotes
    // it to redundancy/PFS from there.
    const int r = rank.rank();
    std::snprintf(routed_path, static_cast<size_t>(path_len),
                  "local://node%d/rank%d/epoch%llu/%s",
                  rank.machine().node_of(r), r,
                  static_cast<unsigned long long>(p->snapshot_epoch(r) + 1),
                  name);
  }
  return SPBC_SUCCESS;
}

int spbc_complete(mpi::Rank& rank, int valid) {
  SpbcProtocol* p = proto_of(rank);
  if (p == nullptr) return SPBC_ERR_NO_PROTOCOL;
  auto& fs = p->facade_state(rank.rank());
  if (!fs.in_session) return SPBC_ERR_NO_SESSION;
  fs.in_session = false;
  if (valid == 0) {
    // The app detected its own dump was torn: discard the session without
    // cutting. The previously committed regions stay the restore image.
    fs.staged.clear();
    return SPBC_SUCCESS;
  }
  // Commit: routed regions become the checkpointed image (regions absent
  // from this session keep their previously committed bytes, mirroring a
  // file set where unchanged files are carried forward), then cut the epoch
  // through the coordinated wave so cluster peers join.
  for (auto& [name, bytes] : fs.staged) fs.regions[name] = std::move(bytes);
  fs.staged.clear();
  ++fs.completes;
  p->checkpoint_now(rank);
  return SPBC_SUCCESS;
}

int spbc_have_restart(mpi::Rank& rank, int* flag) {
  if (flag == nullptr) return SPBC_ERR_BAD_ARG;
  *flag = 0;
  SpbcProtocol* p = proto_of(rank);
  if (p == nullptr) return SPBC_ERR_NO_PROTOCOL;
  ensure_handlers(rank, p);
  auto& fs = p->facade_state(rank.rank());
  // A sigma_0 rollback respawns with restarted=false and no pending app
  // bytes (machine.hpp: respawn_rank) — the app re-runs from the top with
  // no restart state, exactly like a fresh start.
  if (rank.restarted() && !fs.restart_loaded) {
    rank.restore_app_state();  // feeds the load handler -> fills regions
    fs.restart_loaded = true;
  }
  *flag = fs.regions.empty() ? 0 : 1;
  return SPBC_SUCCESS;
}

int spbc_restart_read(mpi::Rank& rank, const char* name, void* buf,
                      uint64_t* bytes) {
  if (name == nullptr || bytes == nullptr) return SPBC_ERR_BAD_ARG;
  if (buf == nullptr && *bytes != 0) return SPBC_ERR_BAD_ARG;
  SpbcProtocol* p = proto_of(rank);
  if (p == nullptr) return SPBC_ERR_NO_PROTOCOL;
  auto& fs = p->facade_state(rank.rank());
  auto it = fs.regions.find(name);
  if (it == fs.regions.end()) return SPBC_ERR_UNKNOWN_REGION;
  const uint64_t need = it->second.size();
  if (*bytes < need) {
    *bytes = need;
    return SPBC_ERR_TRUNCATED;
  }
  if (need > 0) std::memcpy(buf, it->second.data(), need);
  *bytes = need;
  return SPBC_SUCCESS;
}

}  // namespace spbc::core

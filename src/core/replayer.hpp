#pragma once
// Replay engine (Section 5.2.2).
//
// One Replayer per sending rank. On a Rollback from a recovering peer, the
// entries of this rank's sender log destined to that peer — minus anything
// the peer's restored received-window already covers — are queued in log
// (send-post) order. The replayer keeps up to `window` messages in flight
// ("up to 50 pre-posted messages per process was providing good
// performance"); queuing in post order preserves the deadlock-freedom
// argument of Section 5.2.2, and per-channel FIFO in the network preserves
// seqnum order on every channel.
//
// A `gate` lets the HydEE baseline interpose its coordinator round-trip per
// replayed message; SPBC's gate is pass-through — recovery is fully
// distributed ("the whole algorithm is applied independently on each
// communication channel").

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "core/sender_log.hpp"
#include "mpi/types.hpp"

namespace spbc::mpi {
class Machine;
}

namespace spbc::core {

class Replayer {
 public:
  /// `proceed` must eventually be invoked to release the message.
  using Gate = std::function<void(const mpi::Envelope& env, std::function<void()> proceed)>;

  Replayer() = default;

  void configure(mpi::Machine* machine, int self_rank, int window);
  void set_gate(Gate gate) { gate_ = std::move(gate); }

  /// Queues all not-yet-replayed log entries on channel (self -> dst, any
  /// ctx) whose seqnum the destination does not hold, per the windows the
  /// Rollback carried. `windows` maps (ctx, stream) -> received window
  /// (missing key => empty window); the stream is -1 in MPI-only mode or the
  /// message tag under seq_per_tag. `orphan_done` maps (ctx, seq) ->
  /// completion callback for application send requests orphaned by the
  /// peer's crash.
  void enqueue_for_peer(SenderLog& log, int dst,
                        const std::map<std::pair<int, int>, mpi::SeqWindow>& windows,
                        std::map<std::pair<int, uint64_t>, std::function<void()>>
                            orphan_done);

  /// Batched enqueue_for_peer over every destination satisfying
  /// `in_cluster`, in ONE pass over the log (per-peer calls rescan the
  /// whole log per member — quadratic for an aggregated cluster rollback).
  /// `windows_by_dst` / `orphans_by_dst` carry the per-member Rollback
  /// payloads; a missing destination key means empty windows / no orphans.
  void enqueue_for_cluster(
      SenderLog& log, const std::function<bool(int)>& in_cluster,
      const std::map<int, std::map<std::pair<int, int>, mpi::SeqWindow>>&
          windows_by_dst,
      std::map<int, std::map<std::pair<int, uint64_t>, std::function<void()>>>
          orphans_by_dst);

  int outstanding() const { return outstanding_; }
  size_t queued() const { return queue_.size(); }
  uint64_t replayed_total() const { return replayed_total_; }
  bool idle() const { return outstanding_ == 0 && queue_.empty(); }

  /// Called when the owning rank itself rolls back: queued items point into
  /// the pre-rollback log (about to be replaced) and in-flight completions
  /// reference pre-rollback channel state. Clears the queue and invalidates
  /// outstanding completion callbacks via the epoch.
  void reset();

 private:
  struct Item {
    mpi::Envelope env;
    const mpi::Payload* payload = nullptr;  // points into the sender log
    std::function<void()> orphan_done;
  };

  void pump();
  void launch(Item item);

  mpi::Machine* machine_ = nullptr;
  int self_ = -1;
  int window_ = 50;
  Gate gate_;
  std::deque<Item> queue_;
  int outstanding_ = 0;
  uint64_t replayed_total_ = 0;
  uint64_t epoch_ = 0;  // bumped by reset(); stale callbacks check it
};

}  // namespace spbc::core

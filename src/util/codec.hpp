#pragma once
// Self-contained deterministic byte codec for checkpoint payload reduction.
//
// An LZ77 variant with a byte-aligned token format (greedy single-probe
// match finder, 64 KiB window, minimum match 4). Long constant runs — the
// dominant shape of slowly-evolving HPC state — degenerate into
// self-overlapping matches, so the codec doubles as an RLE. No entropy
// stage, no external dependencies, no heap state between calls: the output
// is a pure function of the input bytes, which is what the checkpoint
// pipeline's determinism discipline requires (the same logical snapshot must
// encode to the same fragment bytes on every shard/thread layout, or scrub
// digests and the shadow-codec oracle would disagree across runs).
//
// Token format, repeated until the input is consumed:
//   token byte: high nibble = literal count, low nibble = match length - 4;
//   nibble value 15 extends with 255-coded continuation bytes. Literals
//   follow the extension bytes; a match appends a 2-byte little-endian
//   backward offset (1..65535). The final token carries literals only
//   (match nibble 0, no offset) and may be absent when the input ends on a
//   match boundary.
//
// The codec never expands silently: callers compare the encoded size against
// the raw size and keep whichever is smaller (ckpt::Store records the choice
// in the stored-snapshot header).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spbc::util::codec {

/// Deterministic LZ/RLE compression of `data[0..n)`. Round-trips exactly
/// through lz_decompress. May be larger than the input on incompressible
/// data (the caller keeps the raw bytes in that case).
std::vector<unsigned char> lz_compress(const unsigned char* data, size_t n);

inline std::vector<unsigned char> lz_compress(
    const std::vector<unsigned char>& data) {
  return lz_compress(data.data(), data.size());
}

/// Inverse of lz_compress. `out_n` must be the exact raw size recorded at
/// compression time; a malformed stream or size mismatch asserts (encoded
/// checkpoint blobs are internal state, never untrusted input).
void lz_decompress(const unsigned char* enc, size_t n, unsigned char* out,
                   size_t out_n);

std::vector<unsigned char> lz_decompress(const std::vector<unsigned char>& enc,
                                         size_t out_n);

}  // namespace spbc::util::codec

#pragma once
// Assertion macros used across the SPBC codebase.
//
// SPBC_ASSERT is active in all build types: the simulator relies on internal
// invariants (FIFO channels, matching-queue consistency, seqnum monotonicity)
// whose violation would silently corrupt experiment results, so we prefer a
// loud abort over a wrong table.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace spbc {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::fprintf(stderr, "SPBC_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg.c_str());
  std::abort();
}

}  // namespace spbc

#define SPBC_ASSERT(expr)                                             \
  do {                                                                \
    if (!(expr)) ::spbc::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SPBC_ASSERT_MSG(expr, ...)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream spbc_assert_oss_;                                \
      spbc_assert_oss_ << __VA_ARGS__;                                    \
      ::spbc::assert_fail(#expr, __FILE__, __LINE__,                      \
                          spbc_assert_oss_.str());                        \
    }                                                                     \
  } while (0)

// Marks code paths that should be unreachable.
#define SPBC_UNREACHABLE(msg) \
  ::spbc::assert_fail("unreachable", __FILE__, __LINE__, msg)

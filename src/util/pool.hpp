#pragma once
// Recycling object pool for per-message heap blocks.
//
// The transport allocates one block per in-flight message (envelope + payload
// + incarnation stamps) and frees it at arrival — at 100k ranks that is the
// dominant allocator traffic after fiber stacks. The pool keeps released
// objects *constructed*, so a recycled node's Payload vector retains its
// capacity and a steady-state run stops allocating entirely.
//
// Thread-safe (mutex-guarded free list): nodes are acquired on the sending
// shard and released on the receiving shard, which are different threads
// under the threaded shard executor. The critical section is a pointer swap.

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace spbc::util {

template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;
  ~ObjectPool() {
    for (T* p : free_) delete p;
  }

  /// Returns a constructed object — recycled (with whatever field values it
  /// was released with; the caller overwrites them) or fresh.
  T* acquire() {
    {
      std::lock_guard<std::mutex> g(mu_);
      if (!free_.empty()) {
        T* p = free_.back();
        free_.pop_back();
        return p;
      }
    }
    allocated_.fetch_add(1, std::memory_order_relaxed);
    return new T();
  }

  /// Returns the object to the pool without destroying it.
  void release(T* p) {
    std::lock_guard<std::mutex> g(mu_);
    free_.push_back(p);
  }

  /// Distinct objects ever allocated (pool effectiveness diagnostic).
  size_t allocated() const { return allocated_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  std::vector<T*> free_;
  std::atomic<size_t> allocated_{0};
};

}  // namespace spbc::util

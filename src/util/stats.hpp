#pragma once
// Streaming statistics accumulators used by the experiment harness
// (Table 1 reports per-process Avg/Max log growth; Fig. 5/6 report means over
// repeated runs).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace spbc::util {

/// Welford online accumulator: mean/variance/min/max without storing samples.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    uint64_t n = n_ + o.n_;
    double delta = o.mean_ - mean_;
    double mean = mean_ + delta * static_cast<double>(o.n_) / static_cast<double>(n);
    m2_ = m2_ + o.m2_ +
          delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) /
              static_cast<double>(n);
    mean_ = mean;
    n_ = n;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample-retaining accumulator for percentiles (small sample counts only:
/// per-rank metrics at <= 4096 ranks).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }

  size_t count() const { return xs_.size(); }

  double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  double max() const {
    double m = -std::numeric_limits<double>::infinity();
    for (double x : xs_) m = std::max(m, x);
    return xs_.empty() ? 0.0 : m;
  }

  double min() const {
    double m = std::numeric_limits<double>::infinity();
    for (double x : xs_) m = std::min(m, x);
    return xs_.empty() ? 0.0 : m;
  }

  /// Nearest-rank percentile, p in [0,100].
  double percentile(double p) const {
    SPBC_ASSERT(p >= 0.0 && p <= 100.0);
    if (xs_.empty()) return 0.0;
    std::vector<double> s = xs_;
    std::sort(s.begin(), s.end());
    size_t idx = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(s.size())));
    if (idx > 0) --idx;
    return s[std::min(idx, s.size() - 1)];
  }

  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

}  // namespace spbc::util

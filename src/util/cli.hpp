#pragma once
// Minimal command-line flag parsing for bench/example binaries.
//
// All bench binaries must run with no arguments (the harness invokes them
// bare), so every flag has a default; flags exist to scale experiments up or
// down (--ranks, --iters, --seed, ...).

#include <cstdint>
#include <map>
#include <string>

namespace spbc::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  /// --key=value or --key value. Returns default when absent.
  int64_t get_int(const std::string& key, int64_t def) const;
  double get_double(const std::string& key, double def) const;
  std::string get_string(const std::string& key, const std::string& def) const;
  bool get_flag(const std::string& key) const;  // present => true

  bool has(const std::string& key) const { return kv_.count(key) > 0; }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace spbc::util

#include "util/codec.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace spbc::util::codec {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr uint32_t kHashBits = 13;

uint32_t hash4(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  // Fibonacci hashing of the 4-byte prefix; the single-entry table makes the
  // match finder O(n) and fully deterministic.
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_len(std::vector<unsigned char>& out, size_t extra) {
  // 255-coded continuation of a nibble that saturated at 15.
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<unsigned char>(extra));
}

void emit(std::vector<unsigned char>& out, const unsigned char* lit,
          size_t nlit, size_t match_len, size_t offset) {
  const size_t lit_nib = nlit < 15 ? nlit : 15;
  const size_t match_nib =
      match_len == 0 ? 0 : (match_len - kMinMatch < 15 ? match_len - kMinMatch : 15);
  out.push_back(static_cast<unsigned char>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) put_len(out, nlit - 15);
  out.insert(out.end(), lit, lit + nlit);
  if (match_len == 0) return;  // final literal-only token
  out.push_back(static_cast<unsigned char>(offset & 0xff));
  out.push_back(static_cast<unsigned char>((offset >> 8) & 0xff));
  if (match_nib == 15) put_len(out, match_len - kMinMatch - 15);
}

}  // namespace

std::vector<unsigned char> lz_compress(const unsigned char* data, size_t n) {
  std::vector<unsigned char> out;
  if (n == 0) return out;
  out.reserve(n / 2 + 16);
  uint32_t table[1u << kHashBits];
  std::memset(table, 0xff, sizeof(table));  // 0xffffffff = empty slot
  size_t lit_start = 0;
  size_t pos = 0;
  // The last kMinMatch-1 bytes can never start a match (hash4 reads 4 bytes
  // and a match must not run past the end without being clamped below).
  const size_t match_limit = n >= kMinMatch ? n - kMinMatch + 1 : 0;
  while (pos < match_limit) {
    const uint32_t h = hash4(data + pos);
    const uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (cand == 0xffffffffu || pos - cand > kMaxOffset ||
        std::memcmp(data + cand, data + pos, kMinMatch) != 0) {
      ++pos;
      continue;
    }
    size_t len = kMinMatch;
    while (pos + len < n && data[cand + len] == data[pos + len]) ++len;
    emit(out, data + lit_start, pos - lit_start, len, pos - cand);
    pos += len;
    lit_start = pos;
  }
  if (lit_start < n) emit(out, data + lit_start, n - lit_start, 0, 0);
  return out;
}

void lz_decompress(const unsigned char* enc, size_t n, unsigned char* out,
                   size_t out_n) {
  size_t ip = 0;
  size_t op = 0;
  while (ip < n) {
    const unsigned char token = enc[ip++];
    size_t nlit = token >> 4;
    if (nlit == 15) {
      unsigned char c;
      do {
        SPBC_ASSERT_MSG(ip < n, "codec: truncated literal length");
        c = enc[ip++];
        nlit += c;
      } while (c == 255);
    }
    SPBC_ASSERT_MSG(ip + nlit <= n && op + nlit <= out_n,
                    "codec: literal run overruns the stream");
    std::memcpy(out + op, enc + ip, nlit);
    ip += nlit;
    op += nlit;
    if ((token & 0x0f) == 0 && ip == n) break;  // final literal-only token
    SPBC_ASSERT_MSG(ip + 2 <= n, "codec: truncated match offset");
    const size_t offset = static_cast<size_t>(enc[ip]) |
                          (static_cast<size_t>(enc[ip + 1]) << 8);
    ip += 2;
    size_t mlen = (token & 0x0f) + kMinMatch;
    if ((token & 0x0f) == 15) {
      unsigned char c;
      do {
        SPBC_ASSERT_MSG(ip < n, "codec: truncated match length");
        c = enc[ip++];
        mlen += c;
      } while (c == 255);
    }
    SPBC_ASSERT_MSG(offset >= 1 && offset <= op && op + mlen <= out_n,
                    "codec: match overruns the output");
    // Byte-by-byte: matches may self-overlap (offset < mlen encodes a run).
    for (size_t i = 0; i < mlen; ++i) {
      out[op] = out[op - offset];
      ++op;
    }
  }
  SPBC_ASSERT_MSG(op == out_n, "codec: decoded size mismatch");
}

std::vector<unsigned char> lz_decompress(const std::vector<unsigned char>& enc,
                                         size_t out_n) {
  std::vector<unsigned char> out(out_n);
  lz_decompress(enc.data(), enc.size(), out.data(), out_n);
  return out;
}

}  // namespace spbc::util::codec

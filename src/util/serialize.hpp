#pragma once
// Flat binary serialization used for checkpoints.
//
// Checkpoints must capture both application state (registered by the workload)
// and runtime state (channel seqnums, unexpected queues, logs). A simple
// length-prefixed byte stream is sufficient and keeps restore bit-exact.

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace spbc::util {

class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::put requires trivially copyable types");
    const auto* p = reinterpret_cast<const unsigned char*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_bytes(const void* data, size_t len) {
    put<uint64_t>(len);
    const auto* p = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<uint64_t>(v.size());
    if (!v.empty()) {
      const auto* p = reinterpret_cast<const unsigned char*>(v.data());
      buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
    }
  }

  void put_string(const std::string& s) { put_bytes(s.data(), s.size()); }

  const std::vector<unsigned char>& bytes() const { return buf_; }
  std::vector<unsigned char> take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<unsigned char> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<unsigned char>& buf) : buf_(buf) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    SPBC_ASSERT_MSG(pos_ + sizeof(T) <= buf_.size(),
                    "ByteReader overrun: pos=" << pos_ << " need=" << sizeof(T)
                                               << " size=" << buf_.size());
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::vector<unsigned char> get_bytes() {
    auto len = get<uint64_t>();
    SPBC_ASSERT(pos_ + len <= buf_.size());
    std::vector<unsigned char> out(buf_.begin() + static_cast<long>(pos_),
                                   buf_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
    return out;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    auto n = get<uint64_t>();
    SPBC_ASSERT(pos_ + n * sizeof(T) <= buf_.size());
    std::vector<T> out(n);
    if (n > 0) {
      std::memcpy(out.data(), buf_.data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return out;
  }

  std::string get_string() {
    auto b = get_bytes();
    return std::string(b.begin(), b.end());
  }

  bool exhausted() const { return pos_ == buf_.size(); }
  size_t position() const { return pos_; }

 private:
  const std::vector<unsigned char>& buf_;
  size_t pos_ = 0;
};

}  // namespace spbc::util

#include "util/gf256.hpp"

#include <utility>

#include "util/assert.hpp"

namespace spbc::util::gf256 {

namespace {

// Log/exp tables over 0x11D with generator 2, built once. exp_ is doubled so
// mul can index exp_[log a + log b] without a mod-255.
struct Tables {
  uint8_t exp_[512];
  uint8_t log_[256];

  Tables() {
    int x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[i] = static_cast<uint8_t>(x);
      log_[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    for (int i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // never consulted for 0 (checked by callers)
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

uint8_t mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp_[t.log_[a] + t.log_[b]];
}

uint8_t div(uint8_t a, uint8_t b) {
  SPBC_ASSERT(b != 0);
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp_[t.log_[a] + 255 - t.log_[b]];
}

uint8_t inv(uint8_t a) {
  SPBC_ASSERT(a != 0);
  const Tables& t = tables();
  return t.exp_[255 - t.log_[a]];
}

uint8_t exp(int e) {
  e %= 255;
  if (e < 0) e += 255;
  return tables().exp_[e];
}

uint8_t log(uint8_t a) {
  SPBC_ASSERT(a != 0);
  return tables().log_[a];
}

void mul_add(uint8_t* dst, const uint8_t* src, size_t n, uint8_t c) {
  if (c == 0) return;
  if (c == 1) {
    for (size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const Tables& t = tables();
  const int lc = t.log_[c];
  for (size_t i = 0; i < n; ++i) {
    const uint8_t s = src[i];
    if (s != 0) dst[i] ^= t.exp_[t.log_[s] + lc];
  }
}

Matrix cauchy_parity_matrix(int k, int m) {
  SPBC_ASSERT(k >= 1 && m >= 0 && k + m <= 256);
  // x_i = i (parity side), y_j = m + j (data side): disjoint by construction,
  // so x_i ^ y_j != 0 and every entry is well defined.
  Matrix c(m, k);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j)
      c.at(i, j) = inv(static_cast<uint8_t>(i ^ (m + j)));
  return c;
}

bool invert(Matrix& mat) {
  SPBC_ASSERT(mat.rows == mat.cols);
  const int n = mat.rows;
  Matrix aug(n, 2 * n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) aug.at(r, c) = mat.at(r, c);
    aug.at(r, n + r) = 1;
  }
  for (int col = 0; col < n; ++col) {
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (aug.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return false;  // singular: no invertible selection
    if (pivot != col) {
      for (int c = 0; c < 2 * n; ++c)
        std::swap(aug.at(pivot, c), aug.at(col, c));
    }
    const uint8_t d = inv(aug.at(col, col));
    for (int c = 0; c < 2 * n; ++c) aug.at(col, c) = mul(aug.at(col, c), d);
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const uint8_t f = aug.at(r, col);
      if (f == 0) continue;
      for (int c = 0; c < 2 * n; ++c)
        aug.at(r, c) ^= mul(f, aug.at(col, c));
    }
  }
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c) mat.at(r, c) = aug.at(r, n + c);
  return true;
}

Matrix matmul(const Matrix& lhs, const Matrix& rhs) {
  SPBC_ASSERT(lhs.cols == rhs.rows);
  Matrix out(lhs.rows, rhs.cols);
  for (int r = 0; r < lhs.rows; ++r) {
    for (int i = 0; i < lhs.cols; ++i) {
      const uint8_t f = lhs.at(r, i);
      if (f == 0) continue;
      for (int c = 0; c < rhs.cols; ++c)
        out.at(r, c) ^= mul(f, rhs.at(i, c));
    }
  }
  return out;
}

std::vector<std::vector<uint8_t>> rs_encode(
    int k, int m, const std::vector<std::vector<uint8_t>>& data) {
  SPBC_ASSERT(static_cast<int>(data.size()) == k);
  const size_t len = data.empty() ? 0 : data.front().size();
  for (const std::vector<uint8_t>& d : data) SPBC_ASSERT(d.size() == len);
  const Matrix c = cauchy_parity_matrix(k, m);
  std::vector<std::vector<uint8_t>> parity(
      static_cast<size_t>(m), std::vector<uint8_t>(len, 0));
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j)
      mul_add(parity[static_cast<size_t>(i)].data(),
              data[static_cast<size_t>(j)].data(), len, c.at(i, j));
  return parity;
}

bool rs_reconstruct(int k, int m, const std::vector<Shard>& shards,
                    size_t shard_len, std::vector<std::vector<uint8_t>>* out) {
  SPBC_ASSERT(out != nullptr);
  if (static_cast<int>(shards.size()) < k) return false;
  // Decode matrix: the k rows of the stacked [I; C] generator that the
  // chosen survivors correspond to. Duplicate or out-of-range indices make
  // it singular and are rejected by invert().
  const Matrix c = cauchy_parity_matrix(k, m);
  Matrix dec(k, k);
  std::vector<const std::vector<uint8_t>*> src(static_cast<size_t>(k));
  for (int r = 0; r < k; ++r) {
    const Shard& s = shards[static_cast<size_t>(r)];
    if (s.index < 0 || s.index >= k + m || s.bytes == nullptr ||
        s.bytes->size() != shard_len)
      return false;
    if (s.index < k) {
      dec.at(r, s.index) = 1;
    } else {
      for (int j = 0; j < k; ++j) dec.at(r, j) = c.at(s.index - k, j);
    }
    src[static_cast<size_t>(r)] = s.bytes;
  }
  if (!invert(dec)) return false;
  out->assign(static_cast<size_t>(k), std::vector<uint8_t>(shard_len, 0));
  for (int j = 0; j < k; ++j)
    for (int r = 0; r < k; ++r)
      mul_add((*out)[static_cast<size_t>(j)].data(),
              src[static_cast<size_t>(r)]->data(), shard_len, dec.at(j, r));
  return true;
}

}  // namespace spbc::util::gf256

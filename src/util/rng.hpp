#pragma once
// Deterministic, seedable PRNGs.
//
// The simulator must be bit-reproducible across runs and platforms, so we do
// not use std::mt19937 through std::uniform_* distributions (whose outputs are
// implementation-defined). SplitMix64 drives seeding; Pcg32 is the workhorse
// generator used by workloads and the network jitter model.

#include <cstdint>

namespace spbc::util {

/// SplitMix64: used to expand a single user seed into independent streams.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// PCG32 (pcg_xsh_rr_64_32). Small, fast, statistically solid, and fully
/// deterministic given (seed, stream).
class Pcg32 {
 public:
  Pcg32() : Pcg32(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL) {}

  Pcg32(uint64_t seed, uint64_t stream) {
    state_ = 0u;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  uint32_t next_u32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31u));
  }

  uint64_t next_u64() {
    return (static_cast<uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform in [0, bound) without modulo bias.
  uint32_t next_bounded(uint32_t bound) {
    if (bound == 0) return 0;
    uint32_t threshold = (~bound + 1u) % bound;
    for (;;) {
      uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u32() >> 5) * (1.0 / 134217728.0) / 2.0 +
           static_cast<double>(next_u32() >> 6) * (1.0 / 67108864.0 / 4294967296.0);
  }

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi) { return lo + (hi - lo) * next_double(); }

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// 64-bit FNV-1a, used for payload/trace hashing in the determinism checker.
class Fnv1a64 {
 public:
  static constexpr uint64_t kOffset = 14695981039346656037ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;

  void update(const void* data, uint64_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (uint64_t i = 0; i < len; ++i) {
      hash_ ^= p[i];
      hash_ *= kPrime;
    }
  }

  void update_u64(uint64_t v) { update(&v, sizeof(v)); }

  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = kOffset;
};

}  // namespace spbc::util

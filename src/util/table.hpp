#pragma once
// ASCII table rendering for the benchmark harness. Each bench binary prints
// the same rows/columns as the corresponding table or figure in the paper.

#include <string>
#include <vector>

namespace spbc::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);

  /// Renders with column alignment and a separator under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spbc::util

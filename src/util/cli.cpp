#include "util/cli.hpp"

#include <cstdlib>

namespace spbc::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "";
    }
  }
}

int64_t Cli::get_int(const std::string& key, int64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Cli::get_string(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second;
}

bool Cli::get_flag(const std::string& key) const { return kv_.count(key) > 0; }

}  // namespace spbc::util

#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace spbc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  SPBC_ASSERT_MSG(row.size() == header_.size(),
                  "row arity " << row.size() << " != header arity " << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace spbc::util

#pragma once
// GF(256) arithmetic and a systematic Reed-Solomon erasure codec.
//
// The Reed-Solomon redundancy scheme (ckpt/redundancy.hpp, kReedSolomon)
// protects a checkpoint group against up to m concurrent node losses by
// storing m parity fragments next to k data fragments — the classic MDS
// erasure-code regime (any k of the k+m fragments reconstruct the data).
// This header is the arithmetic kernel underneath: the field, the encode
// matrix, and the Gaussian-elimination solver the restore planner uses to
// prove (or reject) a decode before any network read is scheduled.
//
//   * Field: GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
//     (0x11D, the polynomial jerasure and ISA-L use), generator 2. mul/div
//     run off 256-entry log/exp tables built once at static-init time.
//   * Encode matrix: a Cauchy matrix, entries 1/(x_i ^ y_j) with the x
//     (parity indices) and y (data indices) drawn from disjoint element
//     sets. Every square submatrix of a Cauchy matrix is nonsingular, which
//     is exactly the MDS property: any k surviving rows of the stacked
//     [I; C] generator are invertible, so any loss pattern of <= m
//     fragments decodes. (A plain Vandermonde matrix does not survive the
//     systematic reduction with this guarantee, hence Cauchy.)
//   * Codec: rs_encode folds k equal-length data shards into m parity
//     shards; rs_reconstruct solves for the missing data shards from any k
//     survivors, and reports failure (rather than garbage) when fewer than
//     k survive or a caller hands it a singular selection.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spbc::util::gf256 {

/// y = a * b in GF(256).
uint8_t mul(uint8_t a, uint8_t b);
/// y = a / b in GF(256). b must be nonzero.
uint8_t div(uint8_t a, uint8_t b);
/// Multiplicative inverse. a must be nonzero.
uint8_t inv(uint8_t a);
/// Generator powers / logs (exp wraps mod 255; log(0) is undefined).
uint8_t exp(int e);
uint8_t log(uint8_t a);

/// dst[i] ^= c * src[i] — the row operation both encode and decode reduce
/// to (and the XOR fold when c == 1).
void mul_add(uint8_t* dst, const uint8_t* src, size_t n, uint8_t c);

/// Dense row-major GF(256) matrix, sized rows x cols.
struct Matrix {
  int rows = 0;
  int cols = 0;
  std::vector<uint8_t> a;

  Matrix() = default;
  Matrix(int r, int c) : rows(r), cols(c), a(static_cast<size_t>(r) * c, 0) {}
  uint8_t& at(int r, int c) { return a[static_cast<size_t>(r) * cols + c]; }
  uint8_t at(int r, int c) const {
    return a[static_cast<size_t>(r) * cols + c];
  }
};

/// The m x k Cauchy parity block: parity row i is sum_j C(i,j) * data_j.
/// Requires k + m <= 256 (distinct field elements for the index sets).
Matrix cauchy_parity_matrix(int k, int m);

/// In-place Gauss-Jordan inverse. Returns false (matrix left unspecified)
/// when the matrix is singular — the "singular submatrix rejection" path a
/// caller must treat as "this fragment selection cannot decode".
bool invert(Matrix& mat);

/// Multiply out = lhs * rhs.
Matrix matmul(const Matrix& lhs, const Matrix& rhs);

/// Systematic encode: k data shards (equal length) -> m parity shards.
/// parity[i] = sum_j C(i,j) * data[j], C = cauchy_parity_matrix(k, m).
std::vector<std::vector<uint8_t>> rs_encode(
    int k, int m, const std::vector<std::vector<uint8_t>>& data);

/// One surviving fragment handed to the decoder: its codeword row index
/// (0..k-1 = data shard id, k..k+m-1 = parity shard id) and its bytes.
struct Shard {
  int index = -1;
  const std::vector<uint8_t>* bytes = nullptr;
};

/// Reconstruct all k data shards from any k survivors of the k+m codeword.
/// Returns false when fewer than k distinct shards are given or the decode
/// matrix is singular (duplicate / out-of-range indices); `out` is resized
/// to k shards on success.
bool rs_reconstruct(int k, int m, const std::vector<Shard>& shards,
                    size_t shard_len, std::vector<std::vector<uint8_t>>* out);

}  // namespace spbc::util::gf256

#pragma once
// Channel-determinism checker (Definition 2).
//
// An algorithm is channel-deterministic when, for a given initial state, the
// per-channel sequence of send events is the same in every valid execution.
// We verify this empirically: run the same application under different
// network-jitter seeds (which reorders message interleavings *across*
// channels without breaking per-channel FIFO) and compare the per-channel
// send traces the Machine recorded. A mismatch names the first diverging
// channel — which is also how one would catch a workload that is not
// channel-deterministic and therefore outside SPBC's supported class.

#include <map>
#include <string>
#include <vector>

#include "mpi/types.hpp"

namespace spbc::trace {

struct DeterminismReport {
  bool equal = true;
  std::string detail;  // first divergence, human-readable
  size_t channels_compared = 0;
  uint64_t events_compared = 0;
};

/// Compares two per-channel send traces (as recorded by
/// Machine::send_trace() with record_send_trace enabled).
DeterminismReport compare_send_traces(
    const std::map<mpi::ChannelKey, std::vector<uint64_t>>& a,
    const std::map<mpi::ChannelKey, std::vector<uint64_t>>& b);

}  // namespace spbc::trace

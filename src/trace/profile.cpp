#include "trace/profile.hpp"

#include <algorithm>
#include <sstream>

namespace spbc::trace {

MachineProfile profile_machine(mpi::Machine& machine) {
  MachineProfile mp;
  int n = machine.nranks();
  double comm_sum = 0, compute_sum = 0;
  uint64_t max_logged = 0, sum_logged = 0;
  for (int r = 0; r < n; ++r) {
    const auto& p = machine.rank(r).profile();
    double total = p.time_compute + p.time_mpi;
    if (total > 0) {
      comm_sum += p.time_mpi / total;
      compute_sum += p.time_compute / total;
    }
    mp.total_bytes += p.bytes_sent_intra_cluster + p.bytes_sent_inter_cluster;
    mp.total_messages += p.sends;
    mp.bytes_logged += p.bytes_logged;
    max_logged = std::max(max_logged, p.bytes_logged);
    sum_logged += p.bytes_logged;
  }
  mp.comm_ratio = comm_sum / n;
  mp.compute_ratio = compute_sum / n;
  uint64_t inter = 0;
  for (int r = 0; r < n; ++r)
    inter += machine.rank(r).profile().bytes_sent_inter_cluster;
  mp.inter_cluster_share =
      mp.total_bytes ? static_cast<double>(inter) / static_cast<double>(mp.total_bytes)
                     : 0.0;
  mp.max_rank_logged_mb = static_cast<double>(max_logged) / 1.0e6;
  mp.avg_rank_logged_mb = static_cast<double>(sum_logged) / 1.0e6 / n;
  return mp;
}

std::string MachineProfile::summary() const {
  std::ostringstream os;
  os << "comm_ratio=" << comm_ratio << " inter_cluster_share=" << inter_cluster_share
     << " total_MB=" << static_cast<double>(total_bytes) / 1.0e6
     << " logged_MB=" << static_cast<double>(bytes_logged) / 1.0e6
     << " max_rank_logged_MB=" << max_rank_logged_mb;
  return os.str();
}

}  // namespace spbc::trace

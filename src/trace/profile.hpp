#pragma once
// IPM-style profile aggregation (Section 6.4 used the IPM profiling tool to
// explain recovery speedups via communication/computation ratios and the
// intra- vs inter-cluster communication split).

#include <cstdint>
#include <string>

#include "mpi/machine.hpp"

namespace spbc::trace {

struct MachineProfile {
  double comm_ratio = 0;            // mean fraction of time in MPI
  double compute_ratio = 0;         // mean fraction of time computing
  double inter_cluster_share = 0;   // inter-cluster bytes / total bytes
  uint64_t total_bytes = 0;
  uint64_t total_messages = 0;
  uint64_t bytes_logged = 0;
  double max_rank_logged_mb = 0;    // MB logged by the heaviest rank
  double avg_rank_logged_mb = 0;

  std::string summary() const;
};

/// Aggregates per-rank profiles after a run.
MachineProfile profile_machine(mpi::Machine& machine);

}  // namespace spbc::trace

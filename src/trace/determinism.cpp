#include "trace/determinism.hpp"

#include <sstream>

namespace spbc::trace {

DeterminismReport compare_send_traces(
    const std::map<mpi::ChannelKey, std::vector<uint64_t>>& a,
    const std::map<mpi::ChannelKey, std::vector<uint64_t>>& b) {
  DeterminismReport rep;
  auto describe = [](const mpi::ChannelKey& k) {
    std::ostringstream os;
    os << "channel (" << k.src << " -> " << k.dst << ", ctx " << k.ctx << ")";
    return os.str();
  };

  for (const auto& [key, seq_a] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      rep.equal = false;
      rep.detail = describe(key) + " present in run A only";
      return rep;
    }
    const auto& seq_b = it->second;
    ++rep.channels_compared;
    size_t n = std::min(seq_a.size(), seq_b.size());
    for (size_t i = 0; i < n; ++i) {
      ++rep.events_compared;
      if (seq_a[i] != seq_b[i]) {
        std::ostringstream os;
        os << describe(key) << " diverges at send #" << i + 1;
        rep.equal = false;
        rep.detail = os.str();
        return rep;
      }
    }
    if (seq_a.size() != seq_b.size()) {
      std::ostringstream os;
      os << describe(key) << " lengths differ: " << seq_a.size() << " vs "
         << seq_b.size();
      rep.equal = false;
      rep.detail = os.str();
      return rep;
    }
  }
  for (const auto& [key, seq_b] : b) {
    if (!a.count(key)) {
      rep.equal = false;
      rep.detail = describe(key) + " present in run B only";
      return rep;
    }
  }
  return rep;
}

}  // namespace spbc::trace

#pragma once
// Stackful cooperative fibers built on ucontext.
//
// Each simulated MPI rank runs as one fiber with its own stack, so workload
// code is written as ordinary blocking MPI-style code (no co_await, no state
// machines). The engine is single-threaded: at any moment either the
// scheduler or exactly one fiber is running, which keeps the simulation
// deterministic.
//
// Failure injection kills a fiber by resuming it with a kill flag; the next
// yield point throws FiberKilled, unwinding the stack so RAII cleanup runs.

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace spbc::sim {

/// Thrown inside a fiber when the engine kills it (failure injection).
/// Workload code must be exception-safe but should never catch this.
struct FiberKilled {};

class Fiber {
 public:
  enum class State : uint8_t { kReady, kRunning, kParked, kFinished };

  /// `stack_size` must accommodate the deepest workload call chain; workloads
  /// keep large arrays on the heap.
  Fiber(std::function<void()> body, size_t stack_size);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }

  /// Scheduler-side: run the fiber until it yields or finishes.
  void resume();

  /// Fiber-side: return control to the scheduler. Throws FiberKilled if the
  /// fiber was killed while parked.
  void yield();

  /// Scheduler-side: mark for kill. Takes effect at the next resume();
  /// the fiber unwinds via FiberKilled.
  void kill() { kill_requested_ = true; }

  bool kill_requested() const { return kill_requested_; }

  void set_state(State s) { state_ = s; }

  /// The fiber currently executing, or nullptr when the scheduler runs.
  static Fiber* current();

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  std::function<void()> body_;
  std::vector<unsigned char> stack_;
  ucontext_t ctx_{};
  ucontext_t sched_ctx_{};
  State state_ = State::kReady;
  bool kill_requested_ = false;
};

}  // namespace spbc::sim

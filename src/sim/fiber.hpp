#pragma once
// Stackful cooperative fibers built on ucontext, with pooled stacks.
//
// Each simulated MPI rank runs as one fiber with its own stack, so workload
// code is written as ordinary blocking MPI-style code (no co_await, no state
// machines). At any moment either the scheduler or exactly one fiber is
// running *per OS thread*; the sharded engine keeps every fiber pinned to
// the thread that owns its shard, which keeps the simulation deterministic.
//
// Stacks come from a StackPool: at 100k-rank scale one stack per rank is the
// dominant allocation, so finished/killed fibers return their stack to the
// pool for the next spawn instead of retaining it for the engine's lifetime.
// Stacks are allocated with operator new[] *without* value-initialization:
// untouched pages are never faulted in, so resident memory tracks the deepest
// call chain actually reached, not the configured stack size.
//
// Failure injection kills a fiber by resuming it with a kill flag; the next
// yield point throws FiberKilled, unwinding the stack so RAII cleanup runs.

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define SPBC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPBC_TSAN 1
#endif
#endif

namespace spbc::sim {

/// Thrown inside a fiber when the engine kills it (failure injection).
/// Workload code must be exception-safe but should never catch this.
struct FiberKilled {};

/// Free-list of equally-sized fiber stacks. Not thread-safe: the sharded
/// engine keeps one pool per execution shard, so acquire/release always run
/// on the shard's owning thread.
class StackPool {
 public:
  explicit StackPool(size_t stack_size);

  size_t stack_size() const { return stack_size_; }

  /// Takes a stack from the free list (or allocates a fresh one).
  unsigned char* acquire();
  /// Returns a stack to the free list.
  void release(unsigned char* stack);

  /// Stacks currently held by live fibers.
  size_t live() const { return live_; }
  /// Highest concurrent live-stack count ever observed — the engine's
  /// peak-memory driver at scale.
  size_t peak_live() const { return peak_live_; }
  /// Distinct stacks ever allocated (live + pooled): how well reuse works.
  size_t allocated() const { return allocated_; }

 private:
  size_t stack_size_;
  std::vector<std::unique_ptr<unsigned char[]>> free_;
  size_t live_ = 0;
  size_t peak_live_ = 0;
  size_t allocated_ = 0;
};

class Fiber {
 public:
  enum class State : uint8_t { kReady, kRunning, kParked, kFinished };

  /// Pool-backed stack (the engine path). The stack returns to `pool` when
  /// the fiber is destroyed, which the engine does as soon as it finishes.
  Fiber(std::function<void()> body, StackPool& pool);
  /// Self-owned stack of `stack_size` bytes (standalone/test use).
  Fiber(std::function<void()> body, size_t stack_size);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }

  /// Scheduler-side: run the fiber until it yields or finishes.
  void resume();

  /// Fiber-side: return control to the scheduler. Throws FiberKilled if the
  /// fiber was killed while parked.
  void yield();

  /// Scheduler-side: mark for kill. Takes effect at the next resume();
  /// the fiber unwinds via FiberKilled.
  void kill() { kill_requested_ = true; }

  bool kill_requested() const { return kill_requested_; }

  void set_state(State s) { state_ = s; }

  /// The fiber currently executing on this thread, or nullptr when the
  /// scheduler runs.
  static Fiber* current();

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void init_context(size_t stack_size);
  void run_body();

  std::function<void()> body_;
  StackPool* pool_ = nullptr;    // non-null: stack_ belongs to the pool
  unsigned char* stack_ = nullptr;
  ucontext_t ctx_{};
  ucontext_t sched_ctx_{};
  State state_ = State::kReady;
  bool kill_requested_ = false;
#if SPBC_TSAN
  void* tsan_fiber_ = nullptr;
  void* tsan_sched_fiber_ = nullptr;
#endif
};

}  // namespace spbc::sim

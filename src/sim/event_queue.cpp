#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spbc::sim {

namespace {
struct HeapGreater {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a > b;
  }
};

inline size_t id_hash(uint64_t id) {
  // Fibonacci multiplicative hash; ids are dense so this spreads them well.
  return static_cast<size_t>((id * 0x9E3779B97F4A7C15ull) >> 17);
}
}  // namespace

// ---------------------------------------------------------------------------
// id -> slot open-addressed map
// ---------------------------------------------------------------------------

void EventQueue::map_grow() {
  size_t cap = map_cells_.empty() ? 64 : map_cells_.size() * 2;
  std::vector<MapCell> old = std::move(map_cells_);
  map_cells_.assign(cap, MapCell{});
  map_count_ = 0;
  for (const MapCell& c : old)
    if (c.id != 0) map_insert(c.id, c.slot);
}

void EventQueue::map_insert(EventId id, size_t slot) {
  if (map_cells_.empty() || map_count_ * 10 >= map_cells_.size() * 7)
    map_grow();
  size_t mask = map_cells_.size() - 1;
  size_t i = id_hash(id) & mask;
  while (map_cells_[i].id != 0) i = (i + 1) & mask;
  map_cells_[i] = MapCell{id, slot};
  ++map_count_;
}

bool EventQueue::map_erase(EventId id, size_t* slot_out) {
  if (map_cells_.empty()) return false;
  size_t mask = map_cells_.size() - 1;
  size_t i = id_hash(id) & mask;
  while (map_cells_[i].id != id) {
    if (map_cells_[i].id == 0) return false;
    i = (i + 1) & mask;
  }
  *slot_out = map_cells_[i].slot;
  // Backward-shift deletion keeps probe chains tombstone-free.
  map_cells_[i].id = 0;
  --map_count_;
  size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    if (map_cells_[j].id == 0) break;
    size_t ideal = id_hash(map_cells_[j].id) & mask;
    if (((j - ideal) & mask) >= ((j - i) & mask)) {
      map_cells_[i] = map_cells_[j];
      map_cells_[j].id = 0;
      i = j;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

EventQueue::EventId EventQueue::schedule(Time t, EventFn fn) {
  return schedule_keyed(EventKey{t, 0, legacy_seq_++}, 0, std::move(fn));
}

EventQueue::EventId EventQueue::schedule_keyed(const EventKey& key,
                                               uint32_t owner, EventFn fn) {
  EventId id = reserve_id();
  schedule_reserved(id, key, owner, std::move(fn));
  return id;
}

void EventQueue::schedule_reserved(EventId id, const EventKey& key,
                                   uint32_t owner, EventFn fn) {
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    entries_[slot] = Entry{id, owner, key, std::move(fn)};
  } else {
    slot = entries_.size();
    entries_.push_back(Entry{id, owner, key, std::move(fn)});
  }
  map_insert(id, slot);
  heap_.push_back(HeapItem{key, id, slot});
  std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
  ++live_count_;
}

void EventQueue::free_slot(size_t slot) {
  Entry& e = entries_[slot];
  e.id = 0;
  e.fn = nullptr;  // release captures promptly (payloads, shared_ptrs)
  free_slots_.push_back(slot);
}

void EventQueue::cancel(EventId id) {
  size_t slot;
  if (!map_erase(id, &slot)) return;  // unknown or already popped
  SPBC_ASSERT(entries_[slot].id == id);
  free_slot(slot);
  --live_count_;
  maybe_compact();
}

void EventQueue::maybe_compact() {
  // Stale heap items (cancelled events) are dropped lazily as they surface;
  // bound their buildup so cancel-heavy storms cannot bloat the heap.
  if (heap_.size() <= 64 || heap_.size() <= 2 * live_count_) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapItem& it) { return stale(it); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), HeapGreater{});
}

void EventQueue::drop_stale_top() const {
  while (!heap_.empty() && stale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
    heap_.pop_back();
  }
}

const EventKey& EventQueue::next_key() const {
  drop_stale_top();
  SPBC_ASSERT_MSG(!heap_.empty(), "next_key on empty queue");
  return heap_.front().key;
}

EventQueue::Popped EventQueue::pop_keyed() {
  drop_stale_top();
  SPBC_ASSERT_MSG(!heap_.empty(), "pop on empty queue");
  HeapItem top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
  heap_.pop_back();
  Entry& e = entries_[top.slot];
  SPBC_ASSERT(e.id == top.id);
  Popped out{top.key, e.owner, std::move(e.fn)};
  size_t slot;
  map_erase(top.id, &slot);
  free_slot(top.slot);
  --live_count_;
  return out;
}

std::pair<Time, EventQueue::EventFn> EventQueue::pop() {
  Popped p = pop_keyed();
  return {p.key.t, std::move(p.fn)};
}

}  // namespace spbc::sim

#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spbc::sim {

namespace {
struct HeapGreater {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a > b;
  }
};
}  // namespace

EventQueue::EventId EventQueue::schedule(Time t, EventFn fn) {
  EventId id = next_id_++;
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    entries_[slot] = Entry{t, id, std::move(fn), false};
  } else {
    slot = entries_.size();
    entries_.push_back(Entry{t, id, std::move(fn), false});
  }
  heap_.push_back(HeapItem{t, id, slot});
  std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  // Lazy cancellation: find the entry by scanning is too slow; ids are dense
  // and entries hold their own id, so mark via linear probe over slots only
  // when needed. Callers cancel rarely (timeout-style events), so we accept a
  // scan here; the hot path (schedule/pop) stays O(log n).
  for (auto& e : entries_) {
    if (e.id == id && !e.cancelled) {
      e.cancelled = true;
      --live_count_;
      return;
    }
  }
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.front();
    const Entry& e = const_cast<EventQueue*>(this)->entries_[top.slot];
    if (e.id == top.id && !e.cancelled) return;
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const {
  drop_cancelled();
  SPBC_ASSERT_MSG(!heap_.empty(), "next_time on empty queue");
  return heap_.front().t;
}

std::pair<Time, EventQueue::EventFn> EventQueue::pop() {
  drop_cancelled();
  SPBC_ASSERT_MSG(!heap_.empty(), "pop on empty queue");
  HeapItem top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
  heap_.pop_back();
  Entry& e = entries_[top.slot];
  SPBC_ASSERT(e.id == top.id && !e.cancelled);
  auto fn = std::move(e.fn);
  e.cancelled = true;  // slot is dead until reused
  free_slots_.push_back(top.slot);
  --live_count_;
  return {top.t, std::move(fn)};
}

}  // namespace spbc::sim

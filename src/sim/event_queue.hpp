#pragma once
// Deterministic event queue: a binary min-heap ordered by (time, sequence).
// The sequence number breaks ties in insertion order, so two runs with the
// same inputs schedule events identically — the property the
// channel-determinism checker and every regression test depend on.

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace spbc::sim {

class EventQueue {
 public:
  using EventFn = std::function<void()>;
  using EventId = uint64_t;

  /// Schedules fn at absolute time t. Returns an id usable with cancel().
  EventId schedule(Time t, EventFn fn);

  /// Lazily cancels a scheduled event (it stays in the heap but will not run).
  void cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  /// Time of the earliest live event; only valid when !empty().
  Time next_time() const;

  /// Pops and returns the earliest live event. Only valid when !empty().
  std::pair<Time, EventFn> pop();

 private:
  struct Entry {
    Time t;
    EventId id;
    EventFn fn;
    bool cancelled = false;
  };
  struct HeapItem {
    Time t;
    EventId id;
    size_t slot;
    bool operator>(const HeapItem& o) const {
      if (t != o.t) return t > o.t;
      return id > o.id;
    }
  };

  void drop_cancelled() const;

  std::vector<Entry> entries_;
  mutable std::vector<HeapItem> heap_;  // min-heap via std::*_heap with greater
  std::vector<size_t> free_slots_;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace spbc::sim

#pragma once
// Deterministic event queue: a binary min-heap ordered by (time, shard, seq).
//
// The key is the global tie-break rule for the sharded engine: `shard` is the
// *logical* (key) shard that scheduled the event and `seq` is that shard's
// own monotone counter. Because the key never mentions which physical queue
// or thread executes the event, merging any number of per-shard queues by
// smallest key reproduces the exact same global order for every shard count —
// the property the channel-determinism checker and every regression test
// depend on. The legacy two-argument schedule() stamps (t, shard 0, local
// counter), which is byte-identical to the old (time, insertion-order) rule.
//
// Cancellation is O(1): an open-addressed id->slot table finds the entry, its
// slot is recycled immediately, and the stale heap item is dropped when it
// surfaces. A compaction pass rebuilds the heap whenever stale items outnumber
// live ones, so cancel-heavy storms (rank timers raced by message arrivals)
// cannot grow the heap beyond ~2x the live event count.

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace spbc::sim {

/// Global event ordering key. Lexicographic (time, shard, seq).
struct EventKey {
  Time t = kTimeZero;
  uint32_t shard = 0;  // logical (key) shard of the scheduling context
  uint64_t seq = 0;    // that shard's monotone sequence number

  bool operator<(const EventKey& o) const {
    if (t != o.t) return t < o.t;
    if (shard != o.shard) return shard < o.shard;
    return seq < o.seq;
  }
  bool operator>(const EventKey& o) const { return o < *this; }
};

class EventQueue {
 public:
  using EventFn = std::function<void()>;
  using EventId = uint64_t;

  /// Schedules fn at absolute time t with key (t, 0, internal counter) — the
  /// legacy single-queue insertion order. Returns an id usable with cancel().
  EventId schedule(Time t, EventFn fn);

  /// Sharded-engine path: schedule with an explicit ordering key. `owner` is
  /// the key shard whose state the event mutates (the execution context the
  /// engine restores around fn); it does not affect ordering.
  EventId schedule_keyed(const EventKey& key, uint32_t owner, EventFn fn);

  /// Reserves an id for a later schedule_reserved() — used by the engine's
  /// cross-shard mailboxes, where the id must be returned to the caller
  /// before the owning thread performs the actual insert. Thread-safe.
  EventId reserve_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void schedule_reserved(EventId id, const EventKey& key, uint32_t owner,
                         EventFn fn);

  /// Cancels a scheduled event. O(1); the slot is recycled immediately.
  /// Unknown/already-popped ids are ignored.
  void cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  /// Key/time of the earliest live event; only valid when !empty().
  const EventKey& next_key() const;
  Time next_time() const { return next_key().t; }

  struct Popped {
    EventKey key;
    uint32_t owner;
    EventFn fn;
  };
  /// Pops and returns the earliest live event. Only valid when !empty().
  Popped pop_keyed();
  /// Legacy shape of pop_keyed().
  std::pair<Time, EventFn> pop();

  /// Heap entries including not-yet-dropped cancelled ones — bounded at
  /// ~2x size() by compaction (regression-tested).
  size_t heap_size() const { return heap_.size(); }

 private:
  struct Entry {
    EventId id = 0;  // 0 = free slot
    uint32_t owner = 0;
    EventKey key;
    EventFn fn;
  };
  struct HeapItem {
    EventKey key;
    EventId id;
    size_t slot;
    bool operator>(const HeapItem& o) const { return key > o.key; }
  };

  bool stale(const HeapItem& it) const { return entries_[it.slot].id != it.id; }
  void drop_stale_top() const;
  void maybe_compact();
  void free_slot(size_t slot);

  // Open-addressed id->slot map (linear probe, backward-shift deletion).
  void map_insert(EventId id, size_t slot);
  bool map_erase(EventId id, size_t* slot_out);
  void map_grow();

  std::vector<Entry> entries_;
  mutable std::vector<HeapItem> heap_;  // min-heap via std::*_heap with greater
  std::vector<size_t> free_slots_;
  std::atomic<EventId> next_id_{1};
  uint64_t legacy_seq_ = 0;
  size_t live_count_ = 0;

  struct MapCell {
    EventId id = 0;  // 0 = empty
    size_t slot = 0;
  };
  std::vector<MapCell> map_cells_;
  size_t map_count_ = 0;
};

}  // namespace spbc::sim

#include "sim/engine.hpp"

#include <cstdio>

namespace spbc::sim {

Engine::Engine(size_t default_stack_size) : default_stack_size_(default_stack_size) {}

EventQueue::EventId Engine::at(Time t, std::function<void()> fn) {
  SPBC_ASSERT_MSG(t >= now_, "scheduling into the past: t=" << t << " now=" << now_);
  return queue_.schedule(t, std::move(fn));
}

Engine::TaskId Engine::spawn(std::function<void()> body) {
  TaskId id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(Task{});
  tasks_[id].fiber = std::make_unique<Fiber>(std::move(body), default_stack_size_);
  schedule_resume(id);
  return id;
}

void Engine::schedule_resume(TaskId id) {
  Task& task = tasks_[id];
  if (task.scheduled) return;
  task.scheduled = true;
  queue_.schedule(now_, [this, id] {
    Task& t = tasks_[id];
    t.scheduled = false;
    if (!t.fiber || t.fiber->finished()) return;
    TaskId prev = running_task_;
    running_task_ = id;
    t.fiber->resume();
    running_task_ = prev;
  });
}

void Engine::wait(Time dt) {
  SPBC_ASSERT_MSG(running_task_ != kInvalidTask, "wait outside fiber");
  SPBC_ASSERT_MSG(dt >= 0.0, "negative wait " << dt);
  TaskId id = running_task_;
  Time deadline = now_ + dt;
  queue_.schedule(deadline, [this, id] { unpark(id); });
  // Spurious wakes happen (message deliveries wake their rank's fiber);
  // sleep again until the deadline actually passed.
  while (now_ < deadline) park();
}

void Engine::park() {
  SPBC_ASSERT_MSG(running_task_ != kInvalidTask, "park outside fiber");
  Task& task = tasks_[running_task_];
  task.fiber->yield();  // throws FiberKilled on kill
}

void Engine::unpark(TaskId id) {
  SPBC_ASSERT(id >= 0 && static_cast<size_t>(id) < tasks_.size());
  Task& task = tasks_[id];
  if (!task.fiber || task.fiber->finished()) return;
  if (task.fiber->state() != Fiber::State::kParked &&
      task.fiber->state() != Fiber::State::kReady)
    return;
  schedule_resume(id);
}

void Engine::kill(TaskId id) {
  SPBC_ASSERT(id >= 0 && static_cast<size_t>(id) < tasks_.size());
  Task& task = tasks_[id];
  if (!task.fiber || task.fiber->finished()) return;
  task.fiber->kill();
  schedule_resume(id);  // wake it so the FiberKilled unwind runs promptly
}

bool Engine::task_finished(TaskId id) const {
  SPBC_ASSERT(id >= 0 && static_cast<size_t>(id) < tasks_.size());
  const Task& task = tasks_[id];
  return !task.fiber || task.fiber->finished();
}

Engine::TaskId Engine::current_task() const {
  SPBC_ASSERT_MSG(running_task_ != kInvalidTask, "current_task outside fiber");
  return running_task_;
}

size_t Engine::live_task_count() const {
  size_t n = 0;
  for (const auto& t : tasks_)
    if (t.fiber && !t.fiber->finished()) ++n;
  return n;
}

void Engine::set_task_label(TaskId id, std::string label) {
  SPBC_ASSERT(id >= 0 && static_cast<size_t>(id) < tasks_.size());
  tasks_[id].label = std::move(label);
}

Time Engine::run() {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    auto [t, fn] = queue_.pop();
    SPBC_ASSERT(t >= now_);
    now_ = t;
    fn();
  }
  if (!stop_requested_) {
    // Deadlock detection: events drained but fibers still alive.
    size_t live = live_task_count();
    if (live > 0) {
      deadlocked_ = true;
      if (abort_on_deadlock_) {
        std::fprintf(stderr,
                     "Engine::run: DEADLOCK at t=%.9f — %zu task(s) parked "
                     "with no pending events:\n",
                     now_, live);
        for (size_t i = 0; i < tasks_.size(); ++i) {
          const Task& t = tasks_[i];
          if (t.fiber && !t.fiber->finished())
            std::fprintf(stderr, "  task %zu (%s)\n", i,
                         t.label.empty() ? "unnamed" : t.label.c_str());
        }
        SPBC_ASSERT_MSG(false, "simulation deadlock");
      }
    }
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > deadline) break;
    auto [t, fn] = queue_.pop();
    now_ = t;
    fn();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace spbc::sim

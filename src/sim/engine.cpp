#include "sim/engine.hpp"

#include <algorithm>
#include <barrier>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

namespace spbc::sim {

namespace {

// Per-thread execution context: which engine/shard the current event belongs
// to. Fibers run inside their resume event, so fiber-side calls (at, park,
// wait) see the owning shard's context. Saved/restored around each event.
struct ThreadCtx {
  Engine* eng = nullptr;
  int exec = -1;                // exec shard executing, -1 = serial/none
  int key = 0;                  // owner key shard of the current event
  bool parallel = false;        // inside a threaded window
  bool serial = false;          // inside a serial (barrier) event
  Engine::TaskId running_task = Engine::kInvalidTask;
};
thread_local ThreadCtx tl;

}  // namespace

Engine::Engine(size_t default_stack_size)
    : default_stack_size_(default_stack_size) {
  set_shard_plan(1, 1);
}

Engine::~Engine() = default;

void Engine::set_shard_plan(int key_shards, int exec_shards) {
  SPBC_ASSERT_MSG(key_shards >= 1, "bad key shard count " << key_shards);
  SPBC_ASSERT_MSG(tasks_.empty(), "set_shard_plan after spawn");
  for (auto& sh : shards_)
    SPBC_ASSERT_MSG(sh->queue.empty(), "set_shard_plan after schedule");
  SPBC_ASSERT_MSG(serial_q_.empty(), "set_shard_plan after schedule");
  if (exec_shards <= 0 || exec_shards > key_shards) exec_shards = key_shards;
  shards_.clear();
  shards_.reserve(static_cast<size_t>(exec_shards));
  for (int i = 0; i < exec_shards; ++i) {
    auto sh = std::make_unique<ExecShard>();
    sh->pool = std::make_unique<StackPool>(default_stack_size_);
    shards_.push_back(std::move(sh));
  }
  key_seq_.assign(static_cast<size_t>(key_shards), 0);
}

bool Engine::in_shard_event() const {
  return tl.eng == this && !tl.serial && tl.exec >= 0;
}

bool Engine::in_parallel_context() const {
  return tl.eng == this && tl.parallel;
}

bool Engine::in_serial_context() const {
  return tl.eng == this && tl.serial;
}

Time Engine::now() const {
  if (tl.eng == this && !tl.serial && tl.exec >= 0)
    return shards_[static_cast<size_t>(tl.exec)]->now;
  return global_now_;
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

EventQueue::EventId Engine::schedule_event(int target_key, Time t,
                                           std::function<void()> fn) {
  SPBC_ASSERT(target_key >= 0 && target_key < key_shards());
  // The ordering key is stamped by the *scheduling* context's key shard (the
  // origin): its sequence counter is only ever advanced by the one thread
  // executing that shard, so keys are race-free and — because they never
  // mention exec shards or threads — identical for every execution layout.
  // Outside a run the world is stopped and a single thread schedules: stamp
  // origin 0 with its shared counter, so same-time events keep their global
  // scheduling order — exactly the legacy single-queue tie-break (a wake
  // queued on one shard and a kill on another resolve as they always did).
  uint32_t origin;
  if (tl.eng == this && (tl.serial || tl.exec >= 0))
    origin = static_cast<uint32_t>(tl.key);
  else
    origin = 0u;
  EventKey key{t, origin, key_seq_[origin]++};

  if (sharded() && in_shard_event() && target_key != tl.key) {
    // Conservative-lookahead invariant, asserted in every mode so cheap
    // single-threaded runs validate what threaded windows rely on.
    Time tau = shards_[static_cast<size_t>(tl.exec)]->now;
    SPBC_ASSERT_MSG(t - tau >= lookahead_ - 1e-12 * (1.0 + std::abs(tau)),
                    "cross-shard schedule inside lookahead window: t="
                        << t << " now=" << tau << " lookahead=" << lookahead_);
  }

  size_t qidx = static_cast<size_t>(exec_of(target_key));
  ExecShard& sh = *shards_[qidx];
  if (tl.eng == this && tl.parallel && static_cast<int>(qidx) != tl.exec) {
    // Another worker owns that queue right now: hand over via mailbox; the
    // coordinator applies it between windows (t >= window end, see above).
    EventQueue::EventId local = sh.queue.reserve_id();
    {
      std::lock_guard<std::mutex> g(sh.mbox_mu);
      sh.mbox.push_back(Mail{false, local, key,
                             static_cast<uint32_t>(target_key),
                             std::move(fn)});
    }
    return make_gid(qidx, local);
  }
  SPBC_ASSERT_MSG(t >= sh.now,
                  "scheduling into the past: t=" << t << " now=" << sh.now);
  return make_gid(qidx, sh.queue.schedule_keyed(
                            key, static_cast<uint32_t>(target_key),
                            std::move(fn)));
}

EventQueue::EventId Engine::schedule_serial(Time t, std::function<void()> fn) {
  uint32_t origin = (tl.eng == this && (tl.serial || tl.exec >= 0))
                        ? static_cast<uint32_t>(tl.key)
                        : 0u;
  EventKey key{t, origin, key_seq_[origin]++};
  if (sharded() && in_shard_event()) {
    Time tau = shards_[static_cast<size_t>(tl.exec)]->now;
    SPBC_ASSERT_MSG(t - tau >= lookahead_ - 1e-12 * (1.0 + std::abs(tau)),
                    "serial schedule inside lookahead window: t="
                        << t << " now=" << tau << " lookahead=" << lookahead_);
  }
  if (tl.eng == this && tl.parallel) {
    EventQueue::EventId local = serial_q_.reserve_id();
    {
      std::lock_guard<std::mutex> g(serial_mbox_mu_);
      serial_mbox_.push_back(Mail{false, local, key, origin, std::move(fn)});
    }
    return make_gid(shards_.size(), local);
  }
  SPBC_ASSERT_MSG(t >= global_now_,
                  "serial event in the past: t=" << t << " now=" << global_now_);
  return make_gid(shards_.size(),
                  serial_q_.schedule_keyed(key, origin, std::move(fn)));
}

EventQueue::EventId Engine::at(Time t, std::function<void()> fn) {
  if (in_shard_event()) return schedule_event(tl.key, t, std::move(fn));
  if (!sharded()) return schedule_event(0, t, std::move(fn));
  // Serial context or outside a run: events scheduled while the world is
  // stopped usually orchestrate global actions (failure injection, recovery
  // continuations) — keep them at the barrier.
  return schedule_serial(t, std::move(fn));
}

EventQueue::EventId Engine::at_on(int key_shard, Time t,
                                  std::function<void()> fn) {
  if (!sharded()) return schedule_event(0, t, std::move(fn));
  return schedule_event(key_shard, t, std::move(fn));
}

EventQueue::EventId Engine::at_serial(Time t, std::function<void()> fn) {
  if (!sharded()) return schedule_event(0, t, std::move(fn));
  return schedule_serial(t, std::move(fn));
}

void Engine::run_serial(std::function<void()> fn) {
  if (!sharded() || !in_shard_event()) {
    // Unsharded, already serial, or outside a run: the caller is alone.
    fn();
    return;
  }
  schedule_serial(now() + lookahead_, std::move(fn));
}

void Engine::cancel(EventQueue::EventId id) {
  size_t qidx = static_cast<size_t>(id >> kLocalIdBits) - 1;
  EventQueue::EventId local = id & ((1ull << kLocalIdBits) - 1);
  SPBC_ASSERT(qidx <= shards_.size());
  if (qidx == shards_.size()) {
    SPBC_ASSERT_MSG(!(tl.eng == this && tl.parallel),
                    "serial-event cancel from a threaded window");
    serial_q_.cancel(local);
    return;
  }
  ExecShard& sh = *shards_[qidx];
  if (tl.eng == this && tl.parallel && static_cast<int>(qidx) != tl.exec) {
    std::lock_guard<std::mutex> g(sh.mbox_mu);
    sh.mbox.push_back(Mail{true, local, EventKey{}, 0, nullptr});
    return;
  }
  sh.queue.cancel(local);
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

Engine::TaskId Engine::spawn(std::function<void()> body) {
  int k = (tl.eng == this && (tl.serial || tl.exec >= 0)) ? tl.key : 0;
  return spawn_on(k, std::move(body));
}

Engine::TaskId Engine::spawn_on(int key_shard, std::function<void()> body) {
  SPBC_ASSERT_MSG(!(tl.eng == this && tl.parallel),
                  "spawn from a threaded window");
  if (!sharded()) key_shard = 0;
  SPBC_ASSERT(key_shard >= 0 && key_shard < key_shards());
  TaskId id = static_cast<TaskId>(tasks_.size());
  tasks_.emplace_back();
  Task& t = tasks_.back();
  t.key_shard = key_shard;
  t.fiber = std::make_unique<Fiber>(
      std::move(body), *shards_[static_cast<size_t>(exec_of(key_shard))]->pool);
  schedule_resume(id);
  return id;
}

void Engine::schedule_resume(TaskId id) {
  Task& task = tasks_[static_cast<size_t>(id)];
  if (task.scheduled) return;
  task.scheduled = true;
  schedule_event(task.key_shard, now(), [this, id] { resume_task(id); });
}

void Engine::resume_task(TaskId id) {
  Task& t = tasks_[static_cast<size_t>(id)];
  t.scheduled = false;
  if (!t.fiber || t.fiber->finished()) return;
  TaskId prev = tl.running_task;
  tl.running_task = id;
  t.fiber->resume();
  tl.running_task = prev;
  // Finished fibers release their stack back to the shard's pool right away
  // (this event runs on the owning shard, so the pool access is thread-safe).
  if (t.fiber->finished()) t.fiber.reset();
}

void Engine::wait(Time dt) {
  SPBC_ASSERT_MSG(tl.eng == this && tl.running_task != kInvalidTask,
                  "wait outside fiber");
  SPBC_ASSERT_MSG(dt >= 0.0, "negative wait " << dt);
  TaskId id = tl.running_task;
  Time deadline = now() + dt;
  at(deadline, [this, id] { unpark(id); });
  // Spurious wakes happen (message deliveries wake their rank's fiber);
  // sleep again until the deadline actually passed.
  while (now() < deadline) park();
}

void Engine::park() {
  SPBC_ASSERT_MSG(tl.eng == this && tl.running_task != kInvalidTask,
                  "park outside fiber");
  tasks_[static_cast<size_t>(tl.running_task)].fiber->yield();
}

void Engine::unpark(TaskId id) {
  SPBC_ASSERT(id >= 0 && static_cast<size_t>(id) < tasks_.size());
  Task& task = tasks_[static_cast<size_t>(id)];
  if (!task.fiber || task.fiber->finished()) return;
  if (sharded() && in_shard_event())
    SPBC_ASSERT_MSG(task.key_shard == tl.key,
                    "cross-shard unpark from shard context (route the event "
                    "to the task's shard or use a serial event): task "
                    << id << " '" << task.label << "' on shard "
                    << task.key_shard << ", context shard " << tl.key);
  if (task.fiber->state() != Fiber::State::kParked &&
      task.fiber->state() != Fiber::State::kReady)
    return;
  schedule_resume(id);
}

void Engine::kill(TaskId id) {
  SPBC_ASSERT(id >= 0 && static_cast<size_t>(id) < tasks_.size());
  Task& task = tasks_[static_cast<size_t>(id)];
  if (!task.fiber || task.fiber->finished()) return;
  if (sharded() && in_shard_event())
    SPBC_ASSERT_MSG(task.key_shard == tl.key,
                    "cross-shard kill from shard context (failure injection "
                    "must run in a serial event)");
  task.fiber->kill();
  schedule_resume(id);  // wake it so the FiberKilled unwind runs promptly
}

bool Engine::task_finished(TaskId id) const {
  SPBC_ASSERT(id >= 0 && static_cast<size_t>(id) < tasks_.size());
  const Task& task = tasks_[static_cast<size_t>(id)];
  return !task.fiber || task.fiber->finished();
}

Engine::TaskId Engine::current_task() const {
  SPBC_ASSERT_MSG(tl.eng == this && tl.running_task != kInvalidTask,
                  "current_task outside fiber");
  return tl.running_task;
}

int Engine::task_shard(TaskId id) const {
  SPBC_ASSERT(id >= 0 && static_cast<size_t>(id) < tasks_.size());
  return tasks_[static_cast<size_t>(id)].key_shard;
}

size_t Engine::live_task_count() const {
  size_t n = 0;
  for (const auto& t : tasks_)
    if (t.fiber && !t.fiber->finished()) ++n;
  return n;
}

void Engine::set_task_label(TaskId id, std::string label) {
  SPBC_ASSERT(id >= 0 && static_cast<size_t>(id) < tasks_.size());
  tasks_[static_cast<size_t>(id)].label = std::move(label);
}

// ---------------------------------------------------------------------------
// Run loops
// ---------------------------------------------------------------------------

void Engine::exec_shard_one(int s, bool parallel) {
  ExecShard& sh = *shards_[static_cast<size_t>(s)];
  EventQueue::Popped p = sh.queue.pop_keyed();
  SPBC_ASSERT(p.key.t >= sh.now);
  sh.now = p.key.t;
  if (!parallel) global_now_ = std::max(global_now_, p.key.t);
  ThreadCtx prev = tl;
  tl = ThreadCtx{this, s, static_cast<int>(p.owner), parallel, false,
                 kInvalidTask};
  p.fn();
  tl = prev;
  ++sh.events;
}

void Engine::exec_serial_one() {
  EventQueue::Popped p = serial_q_.pop_keyed();
  // A serial event is a global barrier: every shard clock advances to its
  // time (it only executes when it is the globally smallest key, so no shard
  // holds an earlier event).
  global_now_ = std::max(global_now_, p.key.t);
  for (auto& sh : shards_) sh->now = std::max(sh->now, p.key.t);
  ThreadCtx prev = tl;
  tl = ThreadCtx{this, -1, static_cast<int>(p.owner), false, true,
                 kInvalidTask};
  p.fn();
  tl = prev;
  ++serial_events_;
}

Time Engine::run_merge(Time deadline, bool bounded) {
  stop_requested_.store(false, std::memory_order_relaxed);
  for (;;) {
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    // N-way merge: pop the globally smallest (time, shard, seq) key — the
    // exact single-queue order, for any shard count.
    bool have = false;
    EventKey bk{};
    int best = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      EventQueue& q = shards_[s]->queue;
      if (q.empty()) continue;
      const EventKey& k = q.next_key();
      if (!have || k < bk) {
        have = true;
        bk = k;
        best = static_cast<int>(s);
      }
    }
    bool serial_best = false;
    if (!serial_q_.empty()) {
      const EventKey& k = serial_q_.next_key();
      if (!have || k < bk) {
        have = true;
        bk = k;
        serial_best = true;
      }
    }
    if (!have) break;
    if (bounded && bk.t > deadline) break;
    if (serial_best)
      exec_serial_one();
    else
      exec_shard_one(best, false);
  }
  if (bounded) {
    if (global_now_ < deadline) global_now_ = deadline;
    for (auto& sh : shards_) sh->now = std::max(sh->now, deadline);
  } else if (!stop_requested_.load(std::memory_order_relaxed)) {
    deadlock_check();
  }
  return global_now_;
}

void Engine::drain_mailboxes() {
  std::vector<Mail> tmp;
  for (auto& shp : shards_) {
    {
      std::lock_guard<std::mutex> g(shp->mbox_mu);
      tmp.swap(shp->mbox);
    }
    for (Mail& m : tmp) {
      if (m.cancel)
        shp->queue.cancel(m.local_id);
      else
        shp->queue.schedule_reserved(m.local_id, m.key, m.owner,
                                     std::move(m.fn));
    }
    tmp.clear();
  }
  {
    std::lock_guard<std::mutex> g(serial_mbox_mu_);
    tmp.swap(serial_mbox_);
  }
  for (Mail& m : tmp)
    serial_q_.schedule_reserved(m.local_id, m.key, m.owner, std::move(m.fn));
}

Time Engine::run_threaded() {
  stop_requested_.store(false, std::memory_order_relaxed);
  const int nexec = exec_shards();
  const int nw = std::min(threads_, nexec);
  workers_exit_ = false;

  std::barrier<> start_b(nw + 1), end_b(nw + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(nw));
  for (int w = 0; w < nw; ++w) {
    workers.emplace_back([this, w, nw, nexec, &start_b, &end_b] {
      for (;;) {
        start_b.arrive_and_wait();
        if (workers_exit_) break;
        const Time W = window_end_;
        for (int s = w; s < nexec; s += nw) {
          ExecShard& sh = *shards_[static_cast<size_t>(s)];
          while (!sh.queue.empty() && sh.queue.next_key().t < W)
            exec_shard_one(s, true);
        }
        end_b.arrive_and_wait();
      }
    });
  }

  for (;;) {
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    drain_mailboxes();
    bool have = false;
    EventKey kmin{};
    int smin = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      EventQueue& q = shards_[s]->queue;
      if (q.empty()) continue;
      const EventKey& k = q.next_key();
      if (!have || k < kmin) {
        have = true;
        kmin = k;
        smin = static_cast<int>(s);
      }
    }
    bool have_serial = !serial_q_.empty();
    if (have_serial && (!have || serial_q_.next_key() < kmin)) {
      exec_serial_one();
      continue;
    }
    if (!have) break;
    Time W = kmin.t + lookahead_;
    if (have_serial) W = std::min(W, serial_q_.next_time());
    if (!(W > kmin.t)) {
      // No parallel room (zero lookahead or a serial event at the same
      // time): fall back to one deterministic sequential step.
      exec_shard_one(smin, false);
      ++seq_steps_;
      continue;
    }
    global_now_ = std::max(global_now_, kmin.t);
    window_end_ = W;
    ++windows_;
    start_b.arrive_and_wait();  // workers process their shards' t < W
    end_b.arrive_and_wait();
  }

  workers_exit_ = true;
  start_b.arrive_and_wait();
  for (auto& th : workers) th.join();
  drain_mailboxes();  // apply leftovers from a stopped window
  // Parallel-window events advance only their shard's clock; fold them in so
  // the final time matches the merge loop's (it tracks every event).
  for (auto& sh : shards_) global_now_ = std::max(global_now_, sh->now);
  if (!stop_requested_.load(std::memory_order_relaxed)) deadlock_check();
  return global_now_;
}

Time Engine::run() {
  if (sharded() && threads_ > 1 && exec_shards() > 1) return run_threaded();
  return run_merge(0.0, false);
}

Time Engine::run_until(Time deadline) { return run_merge(deadline, true); }

void Engine::deadlock_check() {
  size_t live = live_task_count();
  if (live == 0) return;
  deadlocked_ = true;
  if (!abort_on_deadlock_) return;
  std::fprintf(stderr,
               "Engine::run: DEADLOCK at t=%.9f — %zu task(s) parked "
               "with no pending events:\n",
               global_now_, live);
  for (size_t i = 0; i < tasks_.size(); ++i) {
    const Task& t = tasks_[i];
    if (t.fiber && !t.fiber->finished())
      std::fprintf(stderr, "  task %zu (%s)\n", i,
                   t.label.empty() ? "unnamed" : t.label.c_str());
  }
  SPBC_ASSERT_MSG(false, "simulation deadlock");
}

Engine::Stats Engine::stats() const {
  Stats s;
  for (const auto& sh : shards_) {
    s.events += sh->events;
    s.live_stacks += sh->pool->live();
    s.peak_live_stacks += sh->pool->peak_live();  // sum of per-shard peaks
    s.stacks_allocated += sh->pool->allocated();
  }
  s.serial_events = serial_events_;
  s.windows = windows_;
  s.seq_steps = seq_steps_;
  return s;
}

}  // namespace spbc::sim

#pragma once
// Virtual time. The simulator models a 64-node cluster; all durations are
// virtual seconds, advanced only by the discrete-event engine.

#include <cstdint>

namespace spbc::sim {

using Time = double;  // virtual seconds

constexpr Time kTimeZero = 0.0;

inline constexpr Time usec(double v) { return v * 1e-6; }
inline constexpr Time msec(double v) { return v * 1e-3; }
inline constexpr Time nsec(double v) { return v * 1e-9; }

}  // namespace spbc::sim

#pragma once
// Machine topology: nodes hosting equal-sized groups of ranks, mirroring the
// paper's testbed (64 nodes x 8 cores = 512 MPI ranks). Rank placement is
// block-wise: ranks [n*ppn, (n+1)*ppn) live on node n, which is also the
// granularity at which the clustering tool enforces node colocation.

#include <cstdint>

#include "util/assert.hpp"

namespace spbc::sim {

class Topology {
 public:
  Topology(int nodes, int ranks_per_node, int spare_nodes = 0)
      : nodes_(nodes), ranks_per_node_(ranks_per_node),
        spare_nodes_(spare_nodes) {
    SPBC_ASSERT(nodes > 0 && ranks_per_node > 0 && spare_nodes >= 0);
  }

  int nodes() const { return nodes_; }
  int ranks_per_node() const { return ranks_per_node_; }
  int nranks() const { return nodes_ * ranks_per_node_; }
  /// Hot-spare nodes: physically present (NICs, storage devices) but hosting
  /// no ranks until a permanent node loss swaps one in. Their ids follow the
  /// compute nodes: [nodes(), total_nodes()).
  int spare_nodes() const { return spare_nodes_; }
  int total_nodes() const { return nodes_ + spare_nodes_; }

  int node_of(int rank) const {
    SPBC_ASSERT(rank >= 0 && rank < nranks());
    return rank / ranks_per_node_;
  }

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Builds the smallest topology with `ppn` ranks per node that holds
  /// `nranks` ranks (nranks must be divisible by ppn).
  static Topology for_ranks(int nranks, int ppn, int spare_nodes = 0) {
    SPBC_ASSERT_MSG(nranks % ppn == 0,
                    "nranks=" << nranks << " not divisible by ppn=" << ppn);
    return Topology(nranks / ppn, ppn, spare_nodes);
  }

 private:
  int nodes_;
  int ranks_per_node_;
  int spare_nodes_;
};

}  // namespace spbc::sim

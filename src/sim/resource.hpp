#pragma once
// Serialized-resource primitive for the discrete-event engine.
//
// A BandwidthQueue models a device that services one transfer at a time at a
// fixed rate (a node's local SSD, its share of the PFS ingest path): callers
// reserve a span of busy time and get back the completion instant. Concurrent
// requests from the same node therefore serialize instead of magically
// overlapping — the bandwidth-sharing half of the staging drain model (the
// NIC half is already modeled by net::Network's per-node injection
// serialization).

#include "sim/time.hpp"

namespace spbc::sim {

class BandwidthQueue {
 public:
  /// Reserves the resource for `duration` starting no earlier than `now`
  /// and no earlier than the previously reserved work finishes. Returns the
  /// completion time of this reservation.
  Time reserve(Time now, Time duration) {
    Time start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + duration;
    return busy_until_;
  }

  /// When the resource next becomes idle (<= now means idle now).
  Time busy_until() const { return busy_until_; }

 private:
  Time busy_until_ = 0;
};

}  // namespace spbc::sim

#pragma once
// Serialized-resource primitive for the discrete-event engine.
//
// A BandwidthQueue models a device that services one transfer at a time at a
// fixed rate (a node's local SSD, its share of the PFS ingest path): callers
// reserve a span of busy time and get back the completion instant. Concurrent
// requests from the same node therefore serialize instead of magically
// overlapping — the bandwidth-sharing half of the staging drain model (the
// NIC half is already modeled by net::Network's per-node injection
// serialization).
//
// Reservations are lock-free (CAS on the busy-until instant) because a
// node's queues can be reserved from another cluster's shard: a staging
// chain whose full-copy fragment landed on a cross-domain partner flushes
// to PFS from the partner's node. Under the threaded shard executor such
// cross-shard reservations are data-race free, but their relative order
// within a parallel window is not pinned — see DESIGN.md §12 for the exact
// determinism envelope.

#include <atomic>

#include "sim/time.hpp"

namespace spbc::sim {

class BandwidthQueue {
 public:
  BandwidthQueue() = default;
  BandwidthQueue(const BandwidthQueue& o)
      : busy_until_(o.busy_until_.load(std::memory_order_relaxed)) {}
  BandwidthQueue& operator=(const BandwidthQueue& o) {
    busy_until_.store(o.busy_until_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  /// Reserves the resource for `duration` starting no earlier than `now`
  /// and no earlier than the previously reserved work finishes. Returns the
  /// completion time of this reservation.
  Time reserve(Time now, Time duration) {
    Time cur = busy_until_.load(std::memory_order_relaxed);
    Time end;
    do {
      const Time start = cur > now ? cur : now;
      end = start + duration;
    } while (!busy_until_.compare_exchange_weak(
        cur, end, std::memory_order_acq_rel, std::memory_order_relaxed));
    return end;
  }

  /// When the resource next becomes idle (<= now means idle now).
  Time busy_until() const {
    return busy_until_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<Time> busy_until_{0};
};

}  // namespace spbc::sim

#include "sim/fiber.hpp"

#include "util/assert.hpp"

#if SPBC_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace spbc::sim {

namespace {
thread_local Fiber* g_current_fiber = nullptr;
}  // namespace

Fiber* Fiber::current() { return g_current_fiber; }

// ---------------------------------------------------------------------------
// StackPool
// ---------------------------------------------------------------------------

StackPool::StackPool(size_t stack_size) : stack_size_(stack_size) {
  SPBC_ASSERT(stack_size >= 16 * 1024);
}

unsigned char* StackPool::acquire() {
  unsigned char* s;
  if (!free_.empty()) {
    s = free_.back().release();
    free_.pop_back();
  } else {
    // Default-initialized: pages stay untouched until the fiber's call chain
    // actually reaches them.
    s = new unsigned char[stack_size_];
    ++allocated_;
  }
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  return s;
}

void StackPool::release(unsigned char* stack) {
  SPBC_ASSERT(live_ > 0);
  --live_;
  free_.emplace_back(stack);
}

// ---------------------------------------------------------------------------
// Fiber
// ---------------------------------------------------------------------------

Fiber::Fiber(std::function<void()> body, StackPool& pool)
    : body_(std::move(body)), pool_(&pool), stack_(pool.acquire()) {
  init_context(pool.stack_size());
}

Fiber::Fiber(std::function<void()> body, size_t stack_size)
    : body_(std::move(body)), stack_(new unsigned char[stack_size]) {
  SPBC_ASSERT(stack_size >= 16 * 1024);
  init_context(stack_size);
}

void Fiber::init_context(size_t stack_size) {
  int rc = getcontext(&ctx_);
  SPBC_ASSERT_MSG(rc == 0, "getcontext failed");
  ctx_.uc_stack.ss_sp = stack_;
  ctx_.uc_stack.ss_size = stack_size;
  ctx_.uc_link = nullptr;  // trampoline never falls through; it yields forever
  // makecontext only passes ints; split the this-pointer into two 32-bit
  // halves (the portable idiom for 64-bit pointers).
  auto self = reinterpret_cast<uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
#if SPBC_TSAN
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  // A fiber must not be destroyed while running; parked fibers are destroyed
  // only after a kill+resume cycle or at engine teardown (their stacks just
  // go away; destructors of parked frames do not run, which engine teardown
  // accepts for simulation-owned fibers that hold no external resources).
#if SPBC_TSAN
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  if (pool_ != nullptr)
    pool_->release(stack_);
  else
    delete[] stack_;
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>((static_cast<uintptr_t>(hi) << 32) |
                                        static_cast<uintptr_t>(lo));
  self->run_body();
  // Mark finished and return control to the scheduler forever.
  self->state_ = State::kFinished;
  for (;;) {
    g_current_fiber = nullptr;
#if SPBC_TSAN
    __tsan_switch_to_fiber(self->tsan_sched_fiber_, 0);
#endif
    swapcontext(&self->ctx_, &self->sched_ctx_);
    // A finished fiber should never be resumed, but tolerate it.
  }
}

void Fiber::run_body() {
  try {
    body_();
  } catch (const FiberKilled&) {
    // Normal failure-injection unwind path.
  }
}

void Fiber::resume() {
  SPBC_ASSERT_MSG(state_ != State::kFinished, "resume of finished fiber");
  SPBC_ASSERT_MSG(g_current_fiber == nullptr, "nested fiber resume");
  state_ = State::kRunning;
  g_current_fiber = this;
#if SPBC_TSAN
  tsan_sched_fiber_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  int rc = swapcontext(&sched_ctx_, &ctx_);
  SPBC_ASSERT(rc == 0);
  g_current_fiber = nullptr;
}

void Fiber::yield() {
  SPBC_ASSERT_MSG(g_current_fiber == this, "yield from non-current fiber");
  state_ = State::kParked;
  g_current_fiber = nullptr;
#if SPBC_TSAN
  __tsan_switch_to_fiber(tsan_sched_fiber_, 0);
#endif
  int rc = swapcontext(&ctx_, &sched_ctx_);
  SPBC_ASSERT(rc == 0);
  g_current_fiber = this;
  state_ = State::kRunning;
  if (kill_requested_) throw FiberKilled{};
}

}  // namespace spbc::sim

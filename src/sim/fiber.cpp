#include "sim/fiber.hpp"

#include "util/assert.hpp"

namespace spbc::sim {

namespace {
thread_local Fiber* g_current_fiber = nullptr;
}  // namespace

Fiber* Fiber::current() { return g_current_fiber; }

Fiber::Fiber(std::function<void()> body, size_t stack_size)
    : body_(std::move(body)), stack_(stack_size) {
  SPBC_ASSERT(stack_size >= 16 * 1024);
  int rc = getcontext(&ctx_);
  SPBC_ASSERT_MSG(rc == 0, "getcontext failed");
  ctx_.uc_stack.ss_sp = stack_.data();
  ctx_.uc_stack.ss_size = stack_.size();
  ctx_.uc_link = nullptr;  // trampoline never falls through; it yields forever
  // makecontext only passes ints; split the this-pointer into two 32-bit
  // halves (the portable idiom for 64-bit pointers).
  auto self = reinterpret_cast<uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() {
  // A fiber must not be destroyed while running; parked fibers are destroyed
  // only after a kill+resume cycle or at engine teardown (their stacks just
  // go away; destructors of parked frames do not run, which engine teardown
  // accepts for simulation-owned fibers that hold no external resources).
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>((static_cast<uintptr_t>(hi) << 32) |
                                        static_cast<uintptr_t>(lo));
  self->run_body();
  // Mark finished and return control to the scheduler forever.
  self->state_ = State::kFinished;
  for (;;) {
    g_current_fiber = nullptr;
    swapcontext(&self->ctx_, &self->sched_ctx_);
    // A finished fiber should never be resumed, but tolerate it.
  }
}

void Fiber::run_body() {
  try {
    body_();
  } catch (const FiberKilled&) {
    // Normal failure-injection unwind path.
  }
}

void Fiber::resume() {
  SPBC_ASSERT_MSG(state_ != State::kFinished, "resume of finished fiber");
  SPBC_ASSERT_MSG(g_current_fiber == nullptr, "nested fiber resume");
  state_ = State::kRunning;
  g_current_fiber = this;
  int rc = swapcontext(&sched_ctx_, &ctx_);
  SPBC_ASSERT(rc == 0);
  g_current_fiber = nullptr;
}

void Fiber::yield() {
  SPBC_ASSERT_MSG(g_current_fiber == this, "yield from non-current fiber");
  state_ = State::kParked;
  g_current_fiber = nullptr;
  int rc = swapcontext(&ctx_, &sched_ctx_);
  SPBC_ASSERT(rc == 0);
  g_current_fiber = this;
  state_ = State::kRunning;
  if (kill_requested_) throw FiberKilled{};
}

}  // namespace spbc::sim

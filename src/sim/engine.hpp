#pragma once
// The discrete-event engine: owns the virtual clock, the event queue, and all
// rank fibers. Single-threaded and fully deterministic.
//
// Ranks are spawned as fibers; blocking operations park the calling fiber and
// register a wake condition (an event at a future time or an explicit unpark
// when a message arrives). Failure injection kills the fibers of a cluster;
// the recovery manager respawns them from the last checkpoint.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace spbc::sim {

class Engine {
 public:
  using TaskId = int;
  static constexpr TaskId kInvalidTask = -1;

  explicit Engine(size_t default_stack_size = 256 * 1024);

  Time now() const { return now_; }

  /// Schedules a bare callback (network delivery, protocol timers, ...).
  EventQueue::EventId at(Time t, std::function<void()> fn);
  EventQueue::EventId after(Time dt, std::function<void()> fn) {
    return at(now_ + dt, std::move(fn));
  }
  void cancel(EventQueue::EventId id) { queue_.cancel(id); }

  /// Spawns a fiber that starts running at the current time. Returns a task
  /// id; ids are never reused within one Engine.
  TaskId spawn(std::function<void()> body);

  /// Fiber-side: sleep for dt of virtual time.
  void wait(Time dt);

  /// Fiber-side: park until some other party calls unpark(). The caller must
  /// have arranged for the wake-up; parking with no possible waker deadlocks
  /// the simulation (detected: run() aborts with a diagnostic).
  void park();

  /// Scheduler/event-side: make a parked task runnable at the current time.
  /// Unparking a running or ready task is a no-op (the wake was already in
  /// flight); unparking a finished/killed task is ignored.
  void unpark(TaskId id);

  /// Kills a task: the fiber unwinds with FiberKilled at its next wake.
  /// Parked tasks are woken immediately so the unwind happens now.
  void kill(TaskId id);

  bool task_finished(TaskId id) const;

  /// The task id of the fiber currently executing (fiber-side only).
  TaskId current_task() const;

  /// Runs until the event queue is empty and all fibers are finished, or
  /// until stop() is called. Returns final virtual time.
  Time run();

  /// Runs until virtual time reaches `deadline` (events at exactly the
  /// deadline are executed).
  Time run_until(Time deadline);

  /// Stops the run loop after the current event completes.
  void stop() { stop_requested_ = true; }

  /// When false, a deadlock (parked fibers, empty event queue) ends run()
  /// with deadlocked()==true instead of aborting. Tests for the paper's
  /// Figure 2 mismatch scenario rely on this.
  void set_abort_on_deadlock(bool v) { abort_on_deadlock_ = v; }
  bool deadlocked() const { return deadlocked_; }

  /// True when no fiber is runnable and no event is pending: if unfinished
  /// fibers remain parked at that point, the simulation deadlocked.
  size_t live_task_count() const;

  /// Diagnostic label for deadlock reports.
  void set_task_label(TaskId id, std::string label);

 private:
  struct Task {
    std::unique_ptr<Fiber> fiber;
    std::string label;
    bool scheduled = false;  // a resume event is pending
  };

  void schedule_resume(TaskId id);

  Time now_ = kTimeZero;
  EventQueue queue_;
  std::vector<Task> tasks_;
  size_t default_stack_size_;
  TaskId running_task_ = kInvalidTask;
  bool stop_requested_ = false;
  bool abort_on_deadlock_ = true;
  bool deadlocked_ = false;
};

}  // namespace spbc::sim

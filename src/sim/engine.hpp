#pragma once
// The discrete-event engine: virtual clocks, event queues, and all rank
// fibers. By default it is the classic single-queue, single-threaded,
// fully deterministic engine. For 100k-rank runs it shards by cluster:
//
//   * Key shards are *logical* shard ids — one per cluster — stamped into
//     every event's (time, shard, seq) ordering key. They are a property of
//     the workload (the cluster map), never of the execution configuration.
//   * Exec shards are the physical event queues (each with its own virtual
//     clock and fiber-stack pool). Key shard k executes on queue
//     k % exec_shards. Because ordering keys never mention exec shards,
//     any exec width — and any worker-thread count — yields the same global
//     event order, so fixed-seed results are bit-identical by construction.
//
// Single-threaded sharded runs pop the globally smallest key across all
// queues (an N-way merge — exactly the single-queue order). The optional
// threaded executor runs windows of conservative PDES: the coordinator picks
// W = min(global_min.t + lookahead, next_serial.t) and workers execute their
// own shards' events with t < W in parallel. The lookahead invariant — an
// event executing in a window may only schedule onto *another* key shard at
// t >= now + lookahead — is asserted in every mode, so cheap single-threaded
// runs validate what threaded runs rely on.
//
// "Serial" events (at_serial) execute alone at a global barrier with every
// shard clock advanced to their time: failure injection and recovery
// orchestration touch many shards at once and run there.
//
// Ranks are spawned as fibers pinned to their shard; blocking operations park
// the calling fiber and register a wake condition. Finished fibers release
// their stacks back to the shard's pool immediately.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace spbc::sim {

class Engine {
 public:
  using TaskId = int;
  static constexpr TaskId kInvalidTask = -1;

  explicit Engine(size_t default_stack_size = 256 * 1024);
  ~Engine();

  // ---- shard plan ---------------------------------------------------------
  /// Installs the shard layout. Must be called before any task is spawned or
  /// event scheduled. key_shards is the number of logical shards (clusters);
  /// exec_shards the number of physical queues (<= key_shards; 0 = one per
  /// key shard). key_shards == 1 is the legacy single-queue engine, byte-
  /// identical to the pre-shard implementation.
  void set_shard_plan(int key_shards, int exec_shards = 0);
  int key_shards() const { return static_cast<int>(key_seq_.size()); }
  int exec_shards() const { return static_cast<int>(shards_.size()); }
  bool sharded() const { return key_shards() > 1; }

  /// Worker threads for run(); <= 1 (or an unsharded plan) keeps the
  /// single-threaded merge loop. run_until() is always single-threaded.
  void set_threads(int n) { threads_ = n; }
  int threads() const { return threads_; }

  /// Minimum virtual-time distance of any cross-key-shard schedule made from
  /// shard-event context (= the minimum cross-cluster network latency).
  void set_lookahead(Time la) { lookahead_ = la; }
  Time lookahead() const { return lookahead_; }

  /// Virtual time of the calling context: the owning shard's clock inside a
  /// shard event or fiber, the global clock otherwise.
  Time now() const;

  /// Schedules a bare callback (network delivery, protocol timers, ...) on
  /// the calling context's own key shard (shard 0 / serial outside a run).
  EventQueue::EventId at(Time t, std::function<void()> fn);
  EventQueue::EventId after(Time dt, std::function<void()> fn) {
    return at(now() + dt, std::move(fn));
  }
  /// Schedules onto an explicit key shard (cross-shard sends). From shard
  /// context, t must respect the lookahead when key_shard differs.
  EventQueue::EventId at_on(int key_shard, Time t, std::function<void()> fn);
  EventQueue::EventId after_on(int key_shard, Time dt,
                               std::function<void()> fn) {
    return at_on(key_shard, now() + dt, std::move(fn));
  }
  /// Schedules a serial event: executes alone at a global barrier, with all
  /// shard clocks advanced to t. For failure injection / recovery
  /// orchestration that touches many shards. In an unsharded plan this is
  /// an ordinary event (legacy byte-identical order).
  EventQueue::EventId at_serial(Time t, std::function<void()> fn);
  EventQueue::EventId after_serial(Time dt, std::function<void()> fn) {
    return at_serial(now() + dt, std::move(fn));
  }
  /// Runs `fn` in serial context: immediately when already serial (or in an
  /// unsharded plan, where every event is effectively serial), else as a
  /// serial event one lookahead from now — the earliest instant a shard
  /// event may legally reach the global barrier. The deferral is applied in
  /// every sharded mode (threaded or not) so trajectories stay independent
  /// of the execution configuration.
  void run_serial(std::function<void()> fn);
  void cancel(EventQueue::EventId id);

  /// Spawns a fiber that starts running at the current time on the calling
  /// context's shard (spawn) or an explicit key shard (spawn_on). Returns a
  /// task id; ids are never reused within one Engine. Not callable from
  /// threaded windows.
  TaskId spawn(std::function<void()> body);
  TaskId spawn_on(int key_shard, std::function<void()> body);

  /// Fiber-side: sleep for dt of virtual time.
  void wait(Time dt);

  /// Fiber-side: park until some other party calls unpark(). The caller must
  /// have arranged for the wake-up; parking with no possible waker deadlocks
  /// the simulation (detected: run() aborts with a diagnostic).
  void park();

  /// Scheduler/event-side: make a parked task runnable at the current time.
  /// Unparking a running or ready task is a no-op (the wake was already in
  /// flight); unparking a finished/killed task is ignored. From shard-event
  /// context the task must live on the calling context's key shard.
  void unpark(TaskId id);

  /// Kills a task: the fiber unwinds with FiberKilled at its next wake.
  /// Parked tasks are woken immediately so the unwind happens now. Same
  /// shard rule as unpark (failure injection runs in serial events).
  void kill(TaskId id);

  bool task_finished(TaskId id) const;

  /// The task id of the fiber currently executing (fiber-side only).
  TaskId current_task() const;

  /// Key shard the task was spawned on.
  int task_shard(TaskId id) const;

  /// Runs until the event queues are empty and all fibers are finished, or
  /// until stop() is called. Returns final virtual time.
  Time run();

  /// Runs until virtual time reaches `deadline` (events at exactly the
  /// deadline are executed). Always single-threaded.
  Time run_until(Time deadline);

  /// Stops the run loop (threaded: after the current window).
  void stop() { stop_requested_.store(true, std::memory_order_relaxed); }

  /// When false, a deadlock (parked fibers, empty event queue) ends run()
  /// with deadlocked()==true instead of aborting. Tests for the paper's
  /// Figure 2 mismatch scenario rely on this.
  void set_abort_on_deadlock(bool v) { abort_on_deadlock_ = v; }
  bool deadlocked() const { return deadlocked_; }

  /// True when no fiber is runnable and no event is pending: if unfinished
  /// fibers remain parked at that point, the simulation deadlocked.
  size_t live_task_count() const;

  /// Diagnostic label for deadlock reports.
  void set_task_label(TaskId id, std::string label);

  /// True while executing a threaded parallel window on this engine.
  bool in_parallel_context() const;
  /// True while executing a serial (global-barrier) event.
  bool in_serial_context() const;

  struct Stats {
    uint64_t events = 0;         // shard events executed
    uint64_t serial_events = 0;  // global-barrier events executed
    uint64_t windows = 0;        // parallel windows run (threaded only)
    uint64_t seq_steps = 0;      // threaded-mode sequential fallback steps
    size_t live_stacks = 0;      // fiber stacks currently in use
    size_t peak_live_stacks = 0;
    size_t stacks_allocated = 0;  // distinct stacks ever allocated
  };
  Stats stats() const;

 private:
  struct Mail {
    bool cancel = false;
    EventQueue::EventId local_id = 0;  // reserved (insert) or target (cancel)
    EventKey key;
    uint32_t owner = 0;
    EventQueue::EventFn fn;
  };
  struct ExecShard {
    EventQueue queue;
    Time now = kTimeZero;
    std::unique_ptr<StackPool> pool;
    uint64_t events = 0;
    // Cross-shard inserts/cancels from threaded windows; drained by the
    // coordinator between windows.
    std::mutex mbox_mu;
    std::vector<Mail> mbox;
  };
  struct Task {
    std::unique_ptr<Fiber> fiber;
    std::string label;
    bool scheduled = false;  // a resume event is pending
    int key_shard = 0;
  };

  int exec_of(int key_shard) const {
    return key_shard % static_cast<int>(shards_.size());
  }
  bool in_shard_event() const;  // shard-event/fiber context on this engine

  EventQueue::EventId schedule_event(int target_key, Time t,
                                     std::function<void()> fn);
  EventQueue::EventId schedule_serial(Time t, std::function<void()> fn);
  void schedule_resume(TaskId id);
  void resume_task(TaskId id);
  void exec_shard_one(int s, bool parallel);
  void exec_serial_one();
  Time run_merge(Time deadline, bool bounded);
  Time run_threaded();
  void drain_mailboxes();
  void deadlock_check();

  // Engine-wide event ids encode (queue index + 1, local id); queue index
  // shards_.size() is the serial queue.
  static constexpr int kLocalIdBits = 44;
  EventQueue::EventId make_gid(size_t qidx, EventQueue::EventId local) const {
    SPBC_ASSERT(local < (1ull << kLocalIdBits));
    return ((static_cast<uint64_t>(qidx) + 1) << kLocalIdBits) | local;
  }

  std::vector<std::unique_ptr<ExecShard>> shards_;
  EventQueue serial_q_;
  std::mutex serial_mbox_mu_;
  std::vector<Mail> serial_mbox_;
  std::vector<uint64_t> key_seq_;  // per key shard: next ordering seq
  Time global_now_ = kTimeZero;
  Time window_end_ = kTimeZero;  // published W for the current window
  std::deque<Task> tasks_;
  size_t default_stack_size_;
  int threads_ = 1;
  Time lookahead_ = 0.0;
  std::atomic<bool> stop_requested_{false};
  bool workers_exit_ = false;
  bool abort_on_deadlock_ = true;
  bool deadlocked_ = false;
  uint64_t serial_events_ = 0;
  uint64_t windows_ = 0;
  uint64_t seq_steps_ = 0;
};

}  // namespace spbc::sim

#include "clustering/partitioner.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "clustering/agglomerate.hpp"
#include "util/assert.hpp"

namespace spbc::clustering {

Partitioner::Partitioner(const CommGraph& graph, const sim::Topology& topo)
    : graph_(graph), topo_(topo), ngroups_(topo.nodes()) {
  SPBC_ASSERT(graph.nranks() == topo.nranks());
  group_of_rank_.resize(static_cast<size_t>(graph.nranks()));
  for (int r = 0; r < graph.nranks(); ++r)
    group_of_rank_[static_cast<size_t>(r)] = topo.node_of(r);
  groups_ = GroupGraph::from_ranks(graph, group_of_rank_, ngroups_,
                                   std::vector<int>(static_cast<size_t>(ngroups_), 1));
}

PartitionResult Partitioner::finalize(const std::vector<int>& group_cluster,
                                      int k) const {
  PartitionResult res;
  res.clusters = k;
  res.cluster_of.resize(static_cast<size_t>(graph_.nranks()));
  for (int r = 0; r < graph_.nranks(); ++r)
    res.cluster_of[static_cast<size_t>(r)] =
        group_cluster[static_cast<size_t>(group_of_rank_[static_cast<size_t>(r)])];
  res.logged_bytes = graph_.logged_bytes(res.cluster_of);
  auto per_rank = graph_.logged_bytes_per_rank(res.cluster_of);
  res.max_rank_logged = per_rank.empty() ? 0 : *std::max_element(per_rank.begin(),
                                                                 per_rank.end());
  return res;
}

PartitionResult Partitioner::partition(int k, Objective objective) const {
  PartitionConfig cfg;
  cfg.objective = objective;
  return partition(k, cfg);
}

PartitionResult Partitioner::partition(int k, const PartitionConfig& cfg) const {
  SPBC_ASSERT_MSG(k >= 1 && k <= ngroups_,
                  "k=" << k << " must be in [1, nodes=" << ngroups_ << "]");

  RefineParams rp;
  rp.k = k;
  rp.objective = cfg.objective;
  rp.max_rounds = cfg.refine_rounds;
  rp.node_cap = ((ngroups_ + k - 1) / k) + 1;  // seed refinement slack
  rp.validate_deltas = cfg.validate_deltas;

  if (!cfg.multilevel) {
    std::vector<int> group_cluster = agglomerate(groups_, k);
    refine_partition(graph_, groups_, group_of_rank_, rp, group_cluster);
    return finalize(group_cluster, k);
  }

  // V-cycle. Coarsen by heavy-edge matching while the graph stays large;
  // each level keeps its unit graph, its rank -> unit map, and the map that
  // projects its units onto the next-coarser level.
  struct Level {
    GroupGraph g;
    std::vector<int> unit_of_rank;
    std::vector<int> to_coarse;  // this level's units -> next level's units
  };
  std::vector<Level> levels;
  levels.push_back(Level{groups_, group_of_rank_, {}});
  const int stop_at = std::max(cfg.coarsen_target, 2 * k);
  const int match_cap = (ngroups_ + k - 1) / k;  // a unit must still fit a cluster
  while (levels.back().g.n > stop_at) {
    Level& fine = levels.back();
    std::vector<int> to_coarse;
    GroupGraph coarse = fine.g.coarsen(match_cap, &to_coarse);
    if (coarse.n == fine.g.n) break;  // nothing matched; stop
    std::vector<int> unit_of_rank(fine.unit_of_rank.size());
    for (size_t r = 0; r < unit_of_rank.size(); ++r)
      unit_of_rank[r] = to_coarse[static_cast<size_t>(fine.unit_of_rank[r])];
    fine.to_coarse = std::move(to_coarse);
    levels.push_back(Level{std::move(coarse), std::move(unit_of_rank), {}});
  }

  // Initial partition at the coarsest level, then uncoarsen with refinement
  // at every level on the way back down.
  std::vector<int> cluster = agglomerate(levels.back().g, k);
  for (size_t li = levels.size(); li-- > 0;) {
    const Level& lvl = levels[li];
    refine_partition(graph_, lvl.g, lvl.unit_of_rank, rp, cluster);
    if (li > 0) {
      const Level& finer = levels[li - 1];
      std::vector<int> projected(static_cast<size_t>(finer.g.n));
      for (int u = 0; u < finer.g.n; ++u)
        projected[static_cast<size_t>(u)] =
            cluster[static_cast<size_t>(finer.to_coarse[static_cast<size_t>(u)])];
      cluster = std::move(projected);
    }
  }
  return finalize(cluster, k);
}

PartitionResult Partitioner::block_partition(int k) const {
  SPBC_ASSERT(k >= 1 && k <= ngroups_);
  std::vector<int> group_cluster(static_cast<size_t>(ngroups_));
  int per = (ngroups_ + k - 1) / k;
  for (int g = 0; g < ngroups_; ++g)
    group_cluster[static_cast<size_t>(g)] = std::min(g / per, k - 1);
  return finalize(group_cluster, k);
}

// ---------------------------------------------------------------------------
// Seed reference implementation (pre-CSR algorithm, kept for parity tests
// and as the baseline of bench/micro_partition_scale.cpp). All-pairs group
// aggregation, all-pairs merge rescans, full-recompute refinement.
// ---------------------------------------------------------------------------

double Partitioner::reference_objective(const std::vector<int>& group_cluster,
                                        Objective objective) const {
  std::vector<int> cluster_of(static_cast<size_t>(graph_.nranks()));
  for (int r = 0; r < graph_.nranks(); ++r)
    cluster_of[static_cast<size_t>(r)] =
        group_cluster[static_cast<size_t>(topo_.node_of(r))];
  if (objective == Objective::kMinTotalLogged)
    return static_cast<double>(graph_.logged_bytes(cluster_of));
  auto per_rank = graph_.logged_bytes_per_rank(cluster_of);
  uint64_t mx = per_rank.empty() ? 0 : *std::max_element(per_rank.begin(), per_rank.end());
  // Tie-break the max with the total so refinement still makes progress when
  // the max is pinned by a single hot rank.
  return static_cast<double>(mx) +
         1e-9 * static_cast<double>(graph_.logged_bytes(cluster_of));
}

PartitionResult Partitioner::partition_reference(int k, Objective objective) const {
  SPBC_ASSERT_MSG(k >= 1 && k <= ngroups_,
                  "k=" << k << " must be in [1, nodes=" << ngroups_ << "]");

  // Dense group-level aggregation over all rank pairs (the seed constructor).
  std::vector<std::vector<uint64_t>> gw(
      static_cast<size_t>(ngroups_),
      std::vector<uint64_t>(static_cast<size_t>(ngroups_), 0));
  for (int a = 0; a < graph_.nranks(); ++a) {
    for (int b = a + 1; b < graph_.nranks(); ++b) {
      uint64_t w = graph_.weight(a, b);
      if (w == 0) continue;
      int ga = topo_.node_of(a);
      int gb = topo_.node_of(b);
      if (ga == gb) continue;
      gw[static_cast<size_t>(ga)][static_cast<size_t>(gb)] += w;
      gw[static_cast<size_t>(gb)][static_cast<size_t>(ga)] += w;
    }
  }

  // Greedy agglomeration: merge the heaviest mergeable pair until k remain,
  // rescanning every alive pair per merge.
  int max_nodes_per_cluster = (ngroups_ + k - 1) / k;
  std::vector<int> comp(static_cast<size_t>(ngroups_));
  std::iota(comp.begin(), comp.end(), 0);
  std::vector<int> size(static_cast<size_t>(ngroups_), 1);
  std::vector<std::vector<uint64_t>> w = gw;  // cluster-level weights
  std::vector<bool> alive(static_cast<size_t>(ngroups_), true);
  int ncomp = ngroups_;

  while (ncomp > k) {
    int best_a = -1, best_b = -1;
    uint64_t best_w = 0;
    bool found = false;
    for (int a = 0; a < ngroups_; ++a) {
      if (!alive[static_cast<size_t>(a)]) continue;
      for (int b = a + 1; b < ngroups_; ++b) {
        if (!alive[static_cast<size_t>(b)]) continue;
        if (size[static_cast<size_t>(a)] + size[static_cast<size_t>(b)] >
            max_nodes_per_cluster)
          continue;
        uint64_t ww = w[static_cast<size_t>(a)][static_cast<size_t>(b)];
        if (!found || ww > best_w) {
          found = true;
          best_w = ww;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (!found) {
      ++max_nodes_per_cluster;
      continue;
    }
    alive[static_cast<size_t>(best_b)] = false;
    size[static_cast<size_t>(best_a)] += size[static_cast<size_t>(best_b)];
    for (int c = 0; c < ngroups_; ++c) {
      if (!alive[static_cast<size_t>(c)] || c == best_a) continue;
      w[static_cast<size_t>(best_a)][static_cast<size_t>(c)] +=
          w[static_cast<size_t>(best_b)][static_cast<size_t>(c)];
      w[static_cast<size_t>(c)][static_cast<size_t>(best_a)] =
          w[static_cast<size_t>(best_a)][static_cast<size_t>(c)];
    }
    for (int g = 0; g < ngroups_; ++g)
      if (comp[static_cast<size_t>(g)] == best_b) comp[static_cast<size_t>(g)] = best_a;
    --ncomp;
  }

  std::vector<int> remap(static_cast<size_t>(ngroups_), -1);
  int next = 0;
  std::vector<int> group_cluster(static_cast<size_t>(ngroups_));
  for (int g = 0; g < ngroups_; ++g) {
    int c = comp[static_cast<size_t>(g)];
    if (remap[static_cast<size_t>(c)] < 0) remap[static_cast<size_t>(c)] = next++;
    group_cluster[static_cast<size_t>(g)] = remap[static_cast<size_t>(c)];
  }
  SPBC_ASSERT(next == k);

  // Full-recompute Kernighan–Lin pass.
  int cap = ((ngroups_ + k - 1) / k) + 1;
  std::vector<int> csize(static_cast<size_t>(k), 0);
  for (int g = 0; g < ngroups_; ++g) ++csize[static_cast<size_t>(group_cluster[g])];
  double current = reference_objective(group_cluster, objective);
  bool improved = true;
  int rounds = 0;
  while (improved && rounds < 20) {
    improved = false;
    ++rounds;
    for (int g = 0; g < ngroups_; ++g) {
      int from = group_cluster[static_cast<size_t>(g)];
      if (csize[static_cast<size_t>(from)] <= 1) continue;
      int best_to = -1;
      double best_val = current;
      for (int to = 0; to < k; ++to) {
        if (to == from) continue;
        if (csize[static_cast<size_t>(to)] + 1 > cap) continue;
        group_cluster[static_cast<size_t>(g)] = to;
        double val = reference_objective(group_cluster, objective);
        if (val < best_val) {
          best_val = val;
          best_to = to;
        }
      }
      if (best_to >= 0) {
        group_cluster[static_cast<size_t>(g)] = best_to;
        --csize[static_cast<size_t>(from)];
        ++csize[static_cast<size_t>(best_to)];
        current = best_val;
        improved = true;
      } else {
        group_cluster[static_cast<size_t>(g)] = from;
      }
    }
  }
  return finalize(group_cluster, k);
}

}  // namespace spbc::clustering

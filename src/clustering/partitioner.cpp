#include "clustering/partitioner.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/assert.hpp"

namespace spbc::clustering {

Partitioner::Partitioner(const CommGraph& graph, const sim::Topology& topo)
    : graph_(graph), topo_(topo), ngroups_(topo.nodes()) {
  SPBC_ASSERT(graph.nranks() == topo.nranks());
  // Pre-aggregate rank-level traffic to node-group level.
  gw_.assign(static_cast<size_t>(ngroups_),
             std::vector<uint64_t>(static_cast<size_t>(ngroups_), 0));
  for (int a = 0; a < graph.nranks(); ++a) {
    for (int b = a + 1; b < graph.nranks(); ++b) {
      uint64_t w = graph.weight(a, b);
      if (w == 0) continue;
      int ga = topo.node_of(a);
      int gb = topo.node_of(b);
      if (ga == gb) continue;
      gw_[static_cast<size_t>(ga)][static_cast<size_t>(gb)] += w;
      gw_[static_cast<size_t>(gb)][static_cast<size_t>(ga)] += w;
    }
  }
}

uint64_t Partitioner::group_weight(int ga, int gb) const {
  return gw_[static_cast<size_t>(ga)][static_cast<size_t>(gb)];
}

PartitionResult Partitioner::finalize(const std::vector<int>& group_cluster,
                                      int k) const {
  PartitionResult res;
  res.clusters = k;
  res.cluster_of.resize(static_cast<size_t>(graph_.nranks()));
  for (int r = 0; r < graph_.nranks(); ++r)
    res.cluster_of[static_cast<size_t>(r)] =
        group_cluster[static_cast<size_t>(topo_.node_of(r))];
  res.logged_bytes = graph_.logged_bytes(res.cluster_of);
  auto per_rank = graph_.logged_bytes_per_rank(res.cluster_of);
  res.max_rank_logged = per_rank.empty() ? 0 : *std::max_element(per_rank.begin(),
                                                                 per_rank.end());
  return res;
}

double Partitioner::objective_value(const std::vector<int>& group_cluster, int k,
                                    Objective objective) const {
  std::vector<int> cluster_of(static_cast<size_t>(graph_.nranks()));
  for (int r = 0; r < graph_.nranks(); ++r)
    cluster_of[static_cast<size_t>(r)] =
        group_cluster[static_cast<size_t>(topo_.node_of(r))];
  (void)k;
  if (objective == Objective::kMinTotalLogged)
    return static_cast<double>(graph_.logged_bytes(cluster_of));
  auto per_rank = graph_.logged_bytes_per_rank(cluster_of);
  uint64_t mx = per_rank.empty() ? 0 : *std::max_element(per_rank.begin(), per_rank.end());
  // Tie-break the max with the total so refinement still makes progress when
  // the max is pinned by a single hot rank.
  return static_cast<double>(mx) +
         1e-9 * static_cast<double>(graph_.logged_bytes(cluster_of));
}

PartitionResult Partitioner::partition(int k, Objective objective) const {
  SPBC_ASSERT_MSG(k >= 1 && k <= ngroups_,
                  "k=" << k << " must be in [1, nodes=" << ngroups_ << "]");

  // --- Greedy agglomeration: start with one cluster per node-group, merge
  // the pair of clusters with the highest inter-cluster traffic until k
  // remain, subject to a size cap that keeps clusters mergeable into k
  // near-equal parts (recovery cost is proportional to cluster size, so the
  // tool keeps clusters of similar node counts).
  int max_nodes_per_cluster = (ngroups_ + k - 1) / k;
  std::vector<int> comp(static_cast<size_t>(ngroups_));
  std::iota(comp.begin(), comp.end(), 0);
  std::vector<int> size(static_cast<size_t>(ngroups_), 1);
  std::vector<std::vector<uint64_t>> w = gw_;  // cluster-level weights
  std::vector<bool> alive(static_cast<size_t>(ngroups_), true);
  int ncomp = ngroups_;

  while (ncomp > k) {
    // Find the heaviest mergeable pair; deterministic tie-break on indices.
    int best_a = -1, best_b = -1;
    uint64_t best_w = 0;
    bool found = false;
    for (int a = 0; a < ngroups_; ++a) {
      if (!alive[static_cast<size_t>(a)]) continue;
      for (int b = a + 1; b < ngroups_; ++b) {
        if (!alive[static_cast<size_t>(b)]) continue;
        if (size[static_cast<size_t>(a)] + size[static_cast<size_t>(b)] >
            max_nodes_per_cluster)
          continue;
        uint64_t ww = w[static_cast<size_t>(a)][static_cast<size_t>(b)];
        if (!found || ww > best_w) {
          found = true;
          best_w = ww;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (!found) {
      // Size cap too tight for the remaining components (can happen with
      // k that does not divide the node count): relax by one node.
      ++max_nodes_per_cluster;
      continue;
    }
    // Merge b into a.
    alive[static_cast<size_t>(best_b)] = false;
    size[static_cast<size_t>(best_a)] += size[static_cast<size_t>(best_b)];
    for (int c = 0; c < ngroups_; ++c) {
      if (!alive[static_cast<size_t>(c)] || c == best_a) continue;
      w[static_cast<size_t>(best_a)][static_cast<size_t>(c)] +=
          w[static_cast<size_t>(best_b)][static_cast<size_t>(c)];
      w[static_cast<size_t>(c)][static_cast<size_t>(best_a)] =
          w[static_cast<size_t>(best_a)][static_cast<size_t>(c)];
    }
    for (int g = 0; g < ngroups_; ++g)
      if (comp[static_cast<size_t>(g)] == best_b) comp[static_cast<size_t>(g)] = best_a;
    --ncomp;
  }

  // Renumber components to [0, k).
  std::vector<int> remap(static_cast<size_t>(ngroups_), -1);
  int next = 0;
  std::vector<int> group_cluster(static_cast<size_t>(ngroups_));
  for (int g = 0; g < ngroups_; ++g) {
    int c = comp[static_cast<size_t>(g)];
    if (remap[static_cast<size_t>(c)] < 0) remap[static_cast<size_t>(c)] = next++;
    group_cluster[static_cast<size_t>(g)] = remap[static_cast<size_t>(c)];
  }
  SPBC_ASSERT(next == k);

  refine(group_cluster, k, objective);
  return finalize(group_cluster, k);
}

void Partitioner::refine(std::vector<int>& group_cluster, int k,
                         Objective objective) const {
  // Kernighan–Lin-flavoured pass: try moving each node-group to another
  // cluster; keep the best-improving move; iterate until no improvement.
  // Moves must not empty a cluster and respect a loose size cap.
  int max_nodes_per_cluster = ((ngroups_ + k - 1) / k) + 1;
  std::vector<int> csize(static_cast<size_t>(k), 0);
  for (int g = 0; g < ngroups_; ++g) ++csize[static_cast<size_t>(group_cluster[g])];

  double current = objective_value(group_cluster, k, objective);
  bool improved = true;
  int rounds = 0;
  while (improved && rounds < 20) {
    improved = false;
    ++rounds;
    for (int g = 0; g < ngroups_; ++g) {
      int from = group_cluster[static_cast<size_t>(g)];
      if (csize[static_cast<size_t>(from)] <= 1) continue;
      int best_to = -1;
      double best_val = current;
      for (int to = 0; to < k; ++to) {
        if (to == from) continue;
        if (csize[static_cast<size_t>(to)] + 1 > max_nodes_per_cluster) continue;
        group_cluster[static_cast<size_t>(g)] = to;
        double val = objective_value(group_cluster, k, objective);
        if (val < best_val) {
          best_val = val;
          best_to = to;
        }
      }
      if (best_to >= 0) {
        group_cluster[static_cast<size_t>(g)] = best_to;
        --csize[static_cast<size_t>(from)];
        ++csize[static_cast<size_t>(best_to)];
        current = best_val;
        improved = true;
      } else {
        group_cluster[static_cast<size_t>(g)] = from;
      }
    }
  }
}

PartitionResult Partitioner::block_partition(int k) const {
  SPBC_ASSERT(k >= 1 && k <= ngroups_);
  std::vector<int> group_cluster(static_cast<size_t>(ngroups_));
  int per = (ngroups_ + k - 1) / k;
  for (int g = 0; g < ngroups_; ++g)
    group_cluster[static_cast<size_t>(g)] = std::min(g / per, k - 1);
  return finalize(group_cluster, k);
}

}  // namespace spbc::clustering

#pragma once
// Streaming (online) repartitioner: incremental cluster-map maintenance.
//
// The paper's pipeline (Section 6.1) partitions once, from a short profiling
// run, and pins the map for the whole execution. When the application's
// communication pattern drifts (adaptive meshes, phase changes), the pinned
// map's cut — and with it the volume of logged inter-cluster traffic — decays.
// This module closes the loop: it consumes the live TrafficMatrix-derived
// CommGraph and proposes a small batch of *node-granular* moves (whole
// colocation units, preserving the Section 6.1 node-colocation constraint)
// that each strictly reduce the logged volume under the current map.
//
// Deliberately not a re-run of the full partitioner: a full repartition can
// relabel everything, which would force a global checkpoint-group membership
// reshuffle. Moves here are incremental — a bounded number of units per
// cadence tick, evaluated with CommGraph::cut_delta (O(degree) per
// candidate), applied sequentially on a scratch map so a batch's gain is
// exact, with a min-cluster-size guard so no cluster collapses. The protocol
// layer (core/spbc.cpp) migrates one unit at a time through a quiescence
// bridge; determinism rules are in DESIGN.md §14.

#include <cstdint>
#include <vector>

#include "clustering/comm_graph.hpp"

namespace spbc::clustering {

struct RepartitionConfig {
  /// Most colocation units moved per plan() call (one cadence tick).
  int max_moves = 1;
  /// A move may not shrink its source cluster below this many units.
  int min_cluster_nodes = 1;
};

/// One planned migration: a whole colocation unit (physical node) and its
/// resident ranks, from its current cluster to `to`. `gain` is the exact
/// logged-bytes reduction of applying this move after the ones before it in
/// the returned batch.
struct NodeMove {
  int unit = -1;
  std::vector<int> ranks;
  int from = -1;
  int to = -1;
  int64_t gain = 0;
};

class StreamingRepartitioner {
 public:
  explicit StreamingRepartitioner(RepartitionConfig cfg = {}) : cfg_(cfg) {}

  /// Plans up to max_moves strictly-gain-positive unit moves under the
  /// current map. `unit_of_rank` is the PHYSICAL colocation unit of each
  /// rank (mpi::Machine::node_of — after a shrunk restart two logical nodes
  /// can share one unit and then migrate together). Requires every rank of a
  /// unit to share a cluster (the colocation invariant); deterministic for a
  /// given (graph, map, grouping): candidates are scanned in (unit, cluster)
  /// order and ties break toward the lowest ids.
  std::vector<NodeMove> plan(const CommGraph& graph,
                             const std::vector<int>& cluster_of,
                             const std::vector<int>& unit_of_rank,
                             int nclusters) const;

 private:
  RepartitionConfig cfg_;
};

}  // namespace spbc::clustering

#include "clustering/comm_graph.hpp"

#include <algorithm>

namespace spbc::clustering {

CommGraph::CommGraph(int nranks) : n_(nranks) { SPBC_ASSERT(nranks > 0); }

void CommGraph::add_traffic(int src, int dst, uint64_t bytes) {
  SPBC_ASSERT(src >= 0 && src < n_ && dst >= 0 && dst < n_);
  pending_.push_back(Triple{src, dst, bytes});
  total_ += bytes;
  built_ = false;
}

CommGraph CommGraph::from_traffic(
    int nranks, const std::map<std::pair<int, int>, uint64_t>& traffic) {
  CommGraph g(nranks);
  g.pending_.reserve(traffic.size());
  for (const auto& [key, bytes] : traffic) g.add_traffic(key.first, key.second, bytes);
  return g;
}

CommGraph CommGraph::from_traffic(int nranks, const mpi::TrafficMatrix& traffic) {
  CommGraph g(nranks);
  traffic.for_each(
      [&g](int src, int dst, uint64_t bytes) { g.add_traffic(src, dst, bytes); });
  return g;
}

void CommGraph::build() const {
  if (built_) return;
  // Normalize each directed triple onto its undirected pair (a < b), sort,
  // and merge duplicates: one pass gives sorted per-pair records carrying
  // both directed weights.
  struct Pair {
    int a;
    int b;
    uint64_t ab;  // bytes a -> b
    uint64_t ba;  // bytes b -> a
  };
  std::vector<Pair> pairs;
  pairs.reserve(pending_.size());
  self_.clear();
  for (const Triple& t : pending_) {
    if (t.src == t.dst) {  // self traffic is never logged
      self_.emplace_back(t.src, t.bytes);
      continue;
    }
    if (t.src < t.dst)
      pairs.push_back(Pair{t.src, t.dst, t.bytes, 0});
    else
      pairs.push_back(Pair{t.dst, t.src, 0, t.bytes});
  }
  std::sort(self_.begin(), self_.end());
  {
    size_t w = 0;
    for (size_t i = 0; i < self_.size();) {
      auto merged = self_[i];
      size_t j = i + 1;
      for (; j < self_.size() && self_[j].first == merged.first; ++j)
        merged.second += self_[j].second;
      self_[w++] = merged;
      i = j;
    }
    self_.resize(w);
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& x, const Pair& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  size_t out = 0;
  for (size_t i = 0; i < pairs.size();) {
    Pair merged = pairs[i];
    size_t j = i + 1;
    for (; j < pairs.size() && pairs[j].a == merged.a && pairs[j].b == merged.b; ++j) {
      merged.ab += pairs[j].ab;
      merged.ba += pairs[j].ba;
    }
    pairs[out++] = merged;
    i = j;
  }
  pairs.resize(out);

  // Counting pass: each pair lands in both endpoint rows.
  row_ptr_.assign(static_cast<size_t>(n_) + 1, 0);
  for (const Pair& p : pairs) {
    ++row_ptr_[static_cast<size_t>(p.a) + 1];
    ++row_ptr_[static_cast<size_t>(p.b) + 1];
  }
  for (int v = 0; v < n_; ++v)
    row_ptr_[static_cast<size_t>(v) + 1] += row_ptr_[static_cast<size_t>(v)];
  adj_.assign(row_ptr_[static_cast<size_t>(n_)], Edge{});
  std::vector<size_t> cursor(row_ptr_.begin(), row_ptr_.end() - 1);
  out_bytes_.assign(static_cast<size_t>(n_), 0);
  // Pairs are sorted by (a, b): filling row a in pair order keeps row a
  // sorted by neighbor. Row b receives neighbors `a` in ascending a for each
  // b — also sorted, because pairs with the same b arrive in ascending a.
  for (const Pair& p : pairs) {
    adj_[cursor[static_cast<size_t>(p.a)]++] = Edge{p.b, p.ab, p.ba};
    out_bytes_[static_cast<size_t>(p.a)] += p.ab;
  }
  for (const Pair& p : pairs) {
    adj_[cursor[static_cast<size_t>(p.b)]++] = Edge{p.a, p.ba, p.ab};
    out_bytes_[static_cast<size_t>(p.b)] += p.ba;
  }
  // Each row is a merge of two sorted sub-sequences (its a-side fill and its
  // b-side fill); restore the single sorted order per row.
  for (int v = 0; v < n_; ++v) {
    std::sort(adj_.begin() + static_cast<long>(row_ptr_[static_cast<size_t>(v)]),
              adj_.begin() + static_cast<long>(row_ptr_[static_cast<size_t>(v) + 1]),
              [](const Edge& x, const Edge& y) { return x.to < y.to; });
  }
  // Compact the accumulation buffer to the merged channels so memory stops
  // scaling with the add_traffic call count. A later add_traffic appends to
  // this compacted form and rebuilds identically.
  pending_.clear();
  for (const Pair& p : pairs) {
    if (p.ab) pending_.push_back(Triple{p.a, p.b, p.ab});
    if (p.ba) pending_.push_back(Triple{p.b, p.a, p.ba});
  }
  for (const auto& [r, bytes] : self_) pending_.push_back(Triple{r, r, bytes});
  pending_.shrink_to_fit();
  built_ = true;
}

const CommGraph::Edge* CommGraph::neighbors_begin(int v) const {
  build();
  SPBC_ASSERT(v >= 0 && v < n_);
  return adj_.data() + row_ptr_[static_cast<size_t>(v)];
}

const CommGraph::Edge* CommGraph::neighbors_end(int v) const {
  build();
  SPBC_ASSERT(v >= 0 && v < n_);
  return adj_.data() + row_ptr_[static_cast<size_t>(v) + 1];
}

int CommGraph::degree(int v) const {
  build();
  return static_cast<int>(row_ptr_[static_cast<size_t>(v) + 1] -
                          row_ptr_[static_cast<size_t>(v)]);
}

size_t CommGraph::nedges() const {
  build();
  return adj_.size() / 2;
}

uint64_t CommGraph::out_bytes(int r) const {
  build();
  SPBC_ASSERT(r >= 0 && r < n_);
  return out_bytes_[static_cast<size_t>(r)];
}

uint64_t CommGraph::traffic(int src, int dst) const {
  SPBC_ASSERT(src >= 0 && src < n_ && dst >= 0 && dst < n_);
  build();
  if (src == dst) {
    // Self traffic is excluded from the adjacency but still reported.
    auto it = std::lower_bound(self_.begin(), self_.end(),
                               std::pair<int, uint64_t>{src, 0});
    return (it != self_.end() && it->first == src) ? it->second : 0;
  }
  const Edge* lo = neighbors_begin(src);
  const Edge* hi = neighbors_end(src);
  const Edge* it = std::lower_bound(
      lo, hi, dst, [](const Edge& e, int to) { return e.to < to; });
  return (it != hi && it->to == dst) ? it->out : 0;
}

uint64_t CommGraph::weight(int a, int b) const {
  if (a == b) return traffic(a, b) * 2;
  build();
  const Edge* lo = neighbors_begin(a);
  const Edge* hi = neighbors_end(a);
  const Edge* it =
      std::lower_bound(lo, hi, b, [](const Edge& e, int to) { return e.to < to; });
  return (it != hi && it->to == b) ? it->sym() : 0;
}

uint64_t CommGraph::logged_bytes(const std::vector<int>& cluster_of) const {
  SPBC_ASSERT(static_cast<int>(cluster_of.size()) == n_);
  build();
  uint64_t cut = 0;
  for (int v = 0; v < n_; ++v) {
    const int cv = cluster_of[static_cast<size_t>(v)];
    for (const Edge* e = neighbors_begin(v); e != neighbors_end(v); ++e) {
      if (e->to < v) continue;  // count each pair once
      if (cluster_of[static_cast<size_t>(e->to)] != cv) cut += e->sym();
    }
  }
  return cut;
}

std::vector<uint64_t> CommGraph::logged_bytes_per_rank(
    const std::vector<int>& cluster_of) const {
  SPBC_ASSERT(static_cast<int>(cluster_of.size()) == n_);
  build();
  std::vector<uint64_t> out(static_cast<size_t>(n_), 0);
  for (int v = 0; v < n_; ++v) {
    const int cv = cluster_of[static_cast<size_t>(v)];
    uint64_t logged = 0;
    for (const Edge* e = neighbors_begin(v); e != neighbors_end(v); ++e)
      if (cluster_of[static_cast<size_t>(e->to)] != cv) logged += e->out;
    out[static_cast<size_t>(v)] = logged;  // sender logs it
  }
  return out;
}

int64_t CommGraph::cut_delta(const std::vector<int>& cluster_of, int v,
                             int to) const {
  SPBC_ASSERT(static_cast<int>(cluster_of.size()) == n_);
  SPBC_ASSERT(v >= 0 && v < n_);
  build();
  const int from = cluster_of[static_cast<size_t>(v)];
  if (from == to) return 0;
  int64_t delta = 0;
  for (const Edge* e = neighbors_begin(v); e != neighbors_end(v); ++e) {
    const int c = cluster_of[static_cast<size_t>(e->to)];
    if (c == from)
      delta += static_cast<int64_t>(e->sym());  // edge becomes cut
    else if (c == to)
      delta -= static_cast<int64_t>(e->sym());  // edge stops being cut
  }
  return delta;
}

}  // namespace spbc::clustering

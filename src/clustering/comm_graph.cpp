#include "clustering/comm_graph.hpp"

namespace spbc::clustering {

CommGraph::CommGraph(int nranks) : n_(nranks) { SPBC_ASSERT(nranks > 0); }

void CommGraph::add_traffic(int src, int dst, uint64_t bytes) {
  SPBC_ASSERT(src >= 0 && src < n_ && dst >= 0 && dst < n_);
  edges_[{src, dst}] += bytes;
  total_ += bytes;
}

CommGraph CommGraph::from_traffic(
    int nranks, const std::map<std::pair<int, int>, uint64_t>& traffic) {
  CommGraph g(nranks);
  for (const auto& [key, bytes] : traffic) g.add_traffic(key.first, key.second, bytes);
  return g;
}

uint64_t CommGraph::traffic(int src, int dst) const {
  auto it = edges_.find({src, dst});
  return it == edges_.end() ? 0 : it->second;
}

uint64_t CommGraph::logged_bytes(const std::vector<int>& cluster_of) const {
  SPBC_ASSERT(static_cast<int>(cluster_of.size()) == n_);
  uint64_t cut = 0;
  for (const auto& [key, bytes] : edges_) {
    if (cluster_of[static_cast<size_t>(key.first)] !=
        cluster_of[static_cast<size_t>(key.second)])
      cut += bytes;
  }
  return cut;
}

std::vector<uint64_t> CommGraph::logged_bytes_per_rank(
    const std::vector<int>& cluster_of) const {
  SPBC_ASSERT(static_cast<int>(cluster_of.size()) == n_);
  std::vector<uint64_t> out(static_cast<size_t>(n_), 0);
  for (const auto& [key, bytes] : edges_) {
    if (cluster_of[static_cast<size_t>(key.first)] !=
        cluster_of[static_cast<size_t>(key.second)])
      out[static_cast<size_t>(key.first)] += bytes;  // sender logs it
  }
  return out;
}

}  // namespace spbc::clustering

#include "clustering/agglomerate.hpp"

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <utility>

#include "util/assert.hpp"

namespace spbc::clustering {

namespace {

struct Candidate {
  uint64_t w = 0;
  int a = 0;  // a < b always
  int b = 0;
  uint32_t va = 0;  // endpoint versions at push time
  uint32_t vb = 0;
};

// priority_queue comparator: true when x has LOWER priority than y.
// Priority: heavier first, then smaller (a, b) — the seed scan order.
struct LowerPriority {
  bool operator()(const Candidate& x, const Candidate& y) const {
    if (x.w != y.w) return x.w < y.w;
    if (x.a != y.a) return x.a > y.a;
    return x.b > y.b;
  }
};

}  // namespace

std::vector<int> agglomerate(const GroupGraph& g, int k) {
  const int n = g.n;
  SPBC_ASSERT(k >= 1 && k <= n);
  int cap = (g.total_nodes() + k - 1) / k;

  std::vector<bool> alive(static_cast<size_t>(n), true);
  std::vector<int> size = g.node_size;
  std::vector<uint32_t> ver(static_cast<size_t>(n), 0);
  // Units absorbed into each live cluster (small-to-large appends).
  std::vector<std::vector<int>> members(static_cast<size_t>(n));
  // Current inter-cluster weights, per cluster: neighbor id -> weight.
  std::vector<std::unordered_map<int, uint64_t>> nbr(static_cast<size_t>(n));
  std::priority_queue<Candidate, std::vector<Candidate>, LowerPriority> heap;
  std::vector<Candidate> deferred;  // fresh but cap-blocked candidates

  for (int u = 0; u < n; ++u) {
    members[static_cast<size_t>(u)].push_back(u);
    for (size_t i = g.begin(u); i < g.end(u); ++i) {
      const int v = g.adj[i];
      nbr[static_cast<size_t>(u)][v] = g.w[i];
      if (u < v) heap.push(Candidate{g.w[i], u, v, 0, 0});
    }
  }

  int ncomp = n;
  auto merge = [&](int a, int b) {
    // Merge b into a (a < b), keeping id a as the seed algorithm does.
    SPBC_ASSERT(a < b && alive[static_cast<size_t>(a)] &&
                alive[static_cast<size_t>(b)]);
    alive[static_cast<size_t>(b)] = false;
    size[static_cast<size_t>(a)] += size[static_cast<size_t>(b)];
    ++ver[static_cast<size_t>(a)];
    ++ver[static_cast<size_t>(b)];
    auto& ma = members[static_cast<size_t>(a)];
    auto& mb = members[static_cast<size_t>(b)];
    if (ma.size() < mb.size()) ma.swap(mb);
    ma.insert(ma.end(), mb.begin(), mb.end());
    mb.clear();
    mb.shrink_to_fit();
    auto& na = nbr[static_cast<size_t>(a)];
    na.erase(b);
    for (const auto& [c, wc] : nbr[static_cast<size_t>(b)]) {
      if (c == a) continue;
      na[c] += wc;
    }
    nbr[static_cast<size_t>(b)].clear();
    for (const auto& [c, wc] : na) {
      auto& nc = nbr[static_cast<size_t>(c)];
      nc.erase(b);
      nc[a] = wc;
      const int lo = a < c ? a : c;
      const int hi = a < c ? c : a;
      heap.push(Candidate{wc, lo, hi, ver[static_cast<size_t>(lo)],
                          ver[static_cast<size_t>(hi)]});
    }
    --ncomp;
  };

  auto fresh = [&](const Candidate& c) {
    return alive[static_cast<size_t>(c.a)] && alive[static_cast<size_t>(c.b)] &&
           c.va == ver[static_cast<size_t>(c.a)] &&
           c.vb == ver[static_cast<size_t>(c.b)];
  };

  while (ncomp > k) {
    // Next fresh, cap-allowed candidate off the heap.
    bool merged = false;
    while (!heap.empty()) {
      Candidate c = heap.top();
      heap.pop();
      if (!fresh(c)) continue;
      if (size[static_cast<size_t>(c.a)] + size[static_cast<size_t>(c.b)] > cap) {
        // Blocked pairs stay blocked until an endpoint merges (version bump)
        // or the cap relaxes — park them instead of re-discovering.
        deferred.push_back(c);
        continue;
      }
      merge(c.a, c.b);
      merged = true;
      break;
    }
    if (merged) continue;

    // Every positive-weight pair is cap-blocked; the seed algorithm would
    // now merge the scan-order-first zero-weight pair that fits.
    int za = -1, zb = -1;
    for (int a = 0; a < n && za < 0; ++a) {
      if (!alive[static_cast<size_t>(a)]) continue;
      for (int b = a + 1; b < n; ++b) {
        if (!alive[static_cast<size_t>(b)]) continue;
        if (size[static_cast<size_t>(a)] + size[static_cast<size_t>(b)] > cap)
          continue;
        if (nbr[static_cast<size_t>(a)].count(b)) continue;  // positive => blocked
        za = a;
        zb = b;
        break;
      }
    }
    if (za >= 0) {
      merge(za, zb);
      continue;
    }
    // Nothing fits: the cap is too tight for the remaining components (k not
    // dividing the node count). Relax by one node and retry the parked pairs.
    ++cap;
    for (const Candidate& c : deferred)
      if (fresh(c)) heap.push(c);
    deferred.clear();
  }

  // Renumber surviving clusters to [0, k) in first-member order, matching
  // the seed algorithm's renumbering sweep.
  std::vector<int> comp(static_cast<size_t>(n), -1);
  for (int c = 0; c < n; ++c) {
    if (!alive[static_cast<size_t>(c)]) continue;
    for (int u : members[static_cast<size_t>(c)]) comp[static_cast<size_t>(u)] = c;
  }
  std::vector<int> remap(static_cast<size_t>(n), -1);
  std::vector<int> cluster(static_cast<size_t>(n));
  int next = 0;
  for (int u = 0; u < n; ++u) {
    const int c = comp[static_cast<size_t>(u)];
    SPBC_ASSERT(c >= 0);
    if (remap[static_cast<size_t>(c)] < 0) remap[static_cast<size_t>(c)] = next++;
    cluster[static_cast<size_t>(u)] = remap[static_cast<size_t>(c)];
  }
  SPBC_ASSERT(next == k);
  return cluster;
}

}  // namespace spbc::clustering

#pragma once
// Unit-level weighted graph for the partitioning pipeline.
//
// A "unit" is whatever the current level of the pipeline moves atomically:
// a node-group (the colocation constraint of Section 6.1) at the finest
// level, or a super-group produced by heavy-edge-matching coarsening in the
// multilevel V-cycle. The graph is a build-once CSR over symmetric weights
// (bytes exchanged either way between the units), with per-unit physical
// node counts so cluster-size caps survive contraction.

#include <array>
#include <cstdint>
#include <vector>

#include "clustering/comm_graph.hpp"

namespace spbc::clustering {

struct GroupGraph {
  int n = 0;
  std::vector<size_t> row_ptr;    // n + 1
  std::vector<int> adj;           // neighbor unit ids, sorted per row
  std::vector<uint64_t> w;        // symmetric weight per adjacency entry
  std::vector<int> node_size;     // physical nodes contained in each unit

  int degree(int u) const {
    return static_cast<int>(row_ptr[static_cast<size_t>(u) + 1] -
                            row_ptr[static_cast<size_t>(u)]);
  }
  size_t begin(int u) const { return row_ptr[static_cast<size_t>(u)]; }
  size_t end(int u) const { return row_ptr[static_cast<size_t>(u) + 1]; }

  /// Symmetric weight between a and b; O(log degree(a)). 0 when non-adjacent.
  uint64_t weight_between(int a, int b) const;

  int total_nodes() const;

  /// Builds the CSR from (a, b, weight) triples (a != b, both orders or one —
  /// duplicates merge). `node_size` sizes the units.
  static GroupGraph from_triples(int nunits, std::vector<int> node_size,
                                 std::vector<std::array<uint64_t, 3>>&& triples);

  /// Aggregates the rank-level graph to units: every inter-unit rank edge
  /// lands on its unit pair with its symmetric weight. O(E log E).
  static GroupGraph from_ranks(const CommGraph& graph,
                               const std::vector<int>& unit_of_rank, int nunits,
                               std::vector<int> node_size);

  /// One level of heavy-edge-matching coarsening: visits units in index
  /// order, matches each unmatched unit with its heaviest unmatched neighbor
  /// whose combined node count stays within `node_cap` (ties -> smallest
  /// index). Returns the contracted graph and fills `fine_to_coarse`.
  /// Deterministic.
  GroupGraph coarsen(int node_cap, std::vector<int>* fine_to_coarse) const;
};

}  // namespace spbc::clustering

#include "clustering/streaming.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spbc::clustering {

namespace {

/// Exact cut change of moving every rank of a unit to `to`, evaluated by
/// applying the per-rank moves sequentially on `scratch` (cut_delta is exact
/// only against the map it is given, so batch members must see each other).
/// Mutates `scratch`; callers pass a throwaway copy.
int64_t unit_delta(const CommGraph& graph, std::vector<int>& scratch,
                   const std::vector<int>& ranks, int to) {
  int64_t delta = 0;
  for (int r : ranks) {
    delta += graph.cut_delta(scratch, r, to);
    scratch[static_cast<size_t>(r)] = to;
  }
  return delta;
}

}  // namespace

std::vector<NodeMove> StreamingRepartitioner::plan(
    const CommGraph& graph, const std::vector<int>& cluster_of,
    const std::vector<int>& unit_of_rank, int nclusters) const {
  SPBC_ASSERT(cluster_of.size() == unit_of_rank.size());
  std::vector<NodeMove> moves;
  if (nclusters <= 1 || cluster_of.empty()) return moves;

  // Group ranks by colocation unit and check the invariant: one cluster per
  // unit. Units are dense-ish small ints (physical node ids).
  int max_unit = 0;
  for (int u : unit_of_rank) max_unit = std::max(max_unit, u);
  std::vector<std::vector<int>> unit_ranks(static_cast<size_t>(max_unit) + 1);
  for (size_t r = 0; r < unit_of_rank.size(); ++r)
    unit_ranks[static_cast<size_t>(unit_of_rank[r])].push_back(
        static_cast<int>(r));
  std::vector<int> unit_cluster(unit_ranks.size(), -1);
  std::vector<int> cluster_units(static_cast<size_t>(nclusters), 0);
  for (size_t u = 0; u < unit_ranks.size(); ++u) {
    if (unit_ranks[u].empty()) continue;
    const int c = cluster_of[static_cast<size_t>(unit_ranks[u].front())];
    for (int r : unit_ranks[u])
      SPBC_ASSERT_MSG(cluster_of[static_cast<size_t>(r)] == c,
                      "colocation invariant violated at unit " << u);
    unit_cluster[u] = c;
    ++cluster_units[static_cast<size_t>(c)];
  }

  std::vector<int> scratch = cluster_of;
  for (int round = 0; round < cfg_.max_moves; ++round) {
    int best_unit = -1, best_to = -1;
    int64_t best_delta = 0;  // only strictly negative (cut-reducing) moves
    for (size_t u = 0; u < unit_ranks.size(); ++u) {
      if (unit_ranks[u].empty()) continue;
      const int from = unit_cluster[u];
      if (cluster_units[static_cast<size_t>(from)] <= cfg_.min_cluster_nodes)
        continue;  // source would fall below the floor
      for (int to = 0; to < nclusters; ++to) {
        if (to == from) continue;
        std::vector<int> trial = scratch;
        const int64_t delta = unit_delta(graph, trial, unit_ranks[u], to);
        if (delta < best_delta) {
          best_delta = delta;
          best_unit = static_cast<int>(u);
          best_to = to;
        }
      }
    }
    if (best_unit < 0) break;  // no strictly-improving move remains
    NodeMove mv;
    mv.unit = best_unit;
    mv.ranks = unit_ranks[static_cast<size_t>(best_unit)];
    mv.from = unit_cluster[static_cast<size_t>(best_unit)];
    mv.to = best_to;
    mv.gain = -best_delta;
    for (int r : mv.ranks) scratch[static_cast<size_t>(r)] = best_to;
    --cluster_units[static_cast<size_t>(mv.from)];
    ++cluster_units[static_cast<size_t>(best_to)];
    unit_cluster[static_cast<size_t>(best_unit)] = best_to;
    moves.push_back(std::move(mv));
  }
  return moves;
}

}  // namespace spbc::clustering

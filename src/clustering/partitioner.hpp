#pragma once
// Clustering tool in the spirit of Ropars et al. [30].
//
// Partitions MPI ranks into K clusters under the node-colocation constraint
// (all ranks of a physical node share a cluster — Section 6.1), with two
// objectives:
//   * kMinTotalLogged — minimize the total volume of inter-cluster traffic
//     (the paper's configuration; produces the imbalance Section 6.6
//     discusses),
//   * kBalancedLogged — minimize the *maximum per-rank* logged volume (the
//     alternative strategy Section 6.6 proposes to study; exercised by the
//     clustering ablation bench).
//
// Pipeline (near-linear in the traced edge count; see DESIGN.md §10):
//   1. aggregate the rank-level CSR graph to node-groups (GroupGraph),
//   2. greedy agglomeration via a lazy max-heap of candidate cluster pairs
//      (clustering/agglomerate.hpp) — O(E log E) instead of the seed's
//      all-pairs rescan per merge,
//   3. Kernighan–Lin-style refinement with delta-based move evaluation
//      (clustering/refine.hpp) — O(degree) per candidate instead of a
//      full-graph logged_bytes() recompute.
// With PartitionConfig::multilevel the pipeline runs as a V-cycle: coarsen
// by heavy-edge matching, partition the coarsest graph, then uncoarsen with
// refinement at every level. Deterministic for a given graph either way.

#include <cstdint>
#include <vector>

#include "clustering/comm_graph.hpp"
#include "clustering/group_graph.hpp"
#include "clustering/refine.hpp"
#include "sim/topology.hpp"

namespace spbc::clustering {

struct PartitionResult {
  std::vector<int> cluster_of;     // rank -> cluster id in [0, k)
  uint64_t logged_bytes = 0;       // total cut volume
  uint64_t max_rank_logged = 0;    // max per-rank logged volume
  int clusters = 0;
};

struct PartitionConfig {
  Objective objective = Objective::kMinTotalLogged;
  /// V-cycle: coarsen by heavy-edge matching, partition the coarse graph,
  /// uncoarsen with refinement at each level. Off = flat (agglomerate +
  /// refine directly on the node-group graph, the seed-equivalent path).
  bool multilevel = false;
  /// Stop coarsening at or below this many units (floored at 2k so the
  /// coarsest graph still distinguishes k clusters).
  int coarsen_target = 64;
  int refine_rounds = 20;  // seed used 20
  /// Debug/property-test mode: every applied refinement move is cross-checked
  /// against a from-scratch logged_bytes() recompute.
  bool validate_deltas = false;
};

class Partitioner {
 public:
  Partitioner(const CommGraph& graph, const sim::Topology& topo);

  /// Partitions into exactly k clusters. k must be in [1, nodes]; clusters
  /// hold whole nodes. k == nranks (with 1 rank per node group) degenerates
  /// to pure message logging only when ranks_per_node==1.
  PartitionResult partition(int k, Objective objective = Objective::kMinTotalLogged) const;
  PartitionResult partition(int k, const PartitionConfig& cfg) const;

  /// Baseline for comparison: contiguous block partition (node order).
  PartitionResult block_partition(int k) const;

  /// The seed algorithm, kept verbatim for parity tests and the scaling
  /// bench: dense all-pairs group aggregation, O(g^3) agglomeration rescans,
  /// and full-recompute Kernighan–Lin refinement.
  PartitionResult partition_reference(int k,
                                      Objective objective = Objective::kMinTotalLogged) const;

  int ngroups() const { return ngroups_; }

 private:
  PartitionResult finalize(const std::vector<int>& group_cluster, int k) const;
  double reference_objective(const std::vector<int>& group_cluster,
                             Objective objective) const;

  const CommGraph& graph_;
  const sim::Topology& topo_;
  int ngroups_;  // node groups (colocation units)
  GroupGraph groups_;  // CSR node-group graph (symmetric weights)
  std::vector<int> group_of_rank_;
};

}  // namespace spbc::clustering

#pragma once
// Clustering tool in the spirit of Ropars et al. [30].
//
// Partitions MPI ranks into K clusters under the node-colocation constraint
// (all ranks of a physical node share a cluster — Section 6.1), with two
// objectives:
//   * kMinTotalLogged — minimize the total volume of inter-cluster traffic
//     (the paper's configuration; produces the imbalance Section 6.6
//     discusses),
//   * kBalancedLogged — minimize the *maximum per-rank* logged volume (the
//     alternative strategy Section 6.6 proposes to study; exercised by the
//     clustering ablation bench).
//
// Algorithm: greedy agglomerative merging of node-groups into K clusters
// (highest inter-group traffic first), followed by Kernighan–Lin-style
// refinement that moves node-groups between clusters while the objective
// improves. Deterministic for a given graph.

#include <cstdint>
#include <vector>

#include "clustering/comm_graph.hpp"
#include "sim/topology.hpp"

namespace spbc::clustering {

enum class Objective { kMinTotalLogged, kBalancedLogged };

struct PartitionResult {
  std::vector<int> cluster_of;     // rank -> cluster id in [0, k)
  uint64_t logged_bytes = 0;       // total cut volume
  uint64_t max_rank_logged = 0;    // max per-rank logged volume
  int clusters = 0;
};

class Partitioner {
 public:
  Partitioner(const CommGraph& graph, const sim::Topology& topo);

  /// Partitions into exactly k clusters. k must divide the node count or be
  /// smaller; clusters hold whole nodes. k == nranks (with 1 rank per node
  /// group) degenerates to pure message logging only when ranks_per_node==1.
  PartitionResult partition(int k, Objective objective = Objective::kMinTotalLogged) const;

  /// Baseline for comparison: contiguous block partition (node order).
  PartitionResult block_partition(int k) const;

 private:
  uint64_t group_weight(int ga, int gb) const;  // node-group to node-group
  PartitionResult finalize(const std::vector<int>& group_cluster, int k) const;
  void refine(std::vector<int>& group_cluster, int k, Objective objective) const;
  double objective_value(const std::vector<int>& group_cluster, int k,
                         Objective objective) const;

  const CommGraph& graph_;
  const sim::Topology& topo_;
  int ngroups_;  // node groups (colocation units)
  std::vector<std::vector<uint64_t>> gw_;  // symmetric group-level weights
};

}  // namespace spbc::clustering

#include "clustering/group_graph.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "util/assert.hpp"

namespace spbc::clustering {

uint64_t GroupGraph::weight_between(int a, int b) const {
  const int* lo = adj.data() + begin(a);
  const int* hi = adj.data() + end(a);
  const int* it = std::lower_bound(lo, hi, b);
  if (it == hi || *it != b) return 0;
  return w[static_cast<size_t>(it - adj.data())];
}

int GroupGraph::total_nodes() const {
  return std::accumulate(node_size.begin(), node_size.end(), 0);
}

GroupGraph GroupGraph::from_triples(
    int nunits, std::vector<int> node_size,
    std::vector<std::array<uint64_t, 3>>&& triples) {
  SPBC_ASSERT(static_cast<int>(node_size.size()) == nunits);
  // Normalize to (min, max), sort, merge duplicates.
  for (auto& t : triples) {
    if (t[0] > t[1]) std::swap(t[0], t[1]);
    SPBC_ASSERT(t[0] != t[1] && t[1] < static_cast<uint64_t>(nunits));
  }
  std::sort(triples.begin(), triples.end(),
            [](const auto& x, const auto& y) {
              return x[0] != y[0] ? x[0] < y[0] : x[1] < y[1];
            });
  size_t out = 0;
  for (size_t i = 0; i < triples.size();) {
    auto merged = triples[i];
    size_t j = i + 1;
    for (; j < triples.size() && triples[j][0] == merged[0] &&
           triples[j][1] == merged[1];
         ++j)
      merged[2] += triples[j][2];
    triples[out++] = merged;
    i = j;
  }
  triples.resize(out);

  GroupGraph g;
  g.n = nunits;
  g.node_size = std::move(node_size);
  g.row_ptr.assign(static_cast<size_t>(nunits) + 1, 0);
  for (const auto& t : triples) {
    ++g.row_ptr[t[0] + 1];
    ++g.row_ptr[t[1] + 1];
  }
  for (int u = 0; u < nunits; ++u)
    g.row_ptr[static_cast<size_t>(u) + 1] += g.row_ptr[static_cast<size_t>(u)];
  g.adj.assign(g.row_ptr[static_cast<size_t>(nunits)], 0);
  g.w.assign(g.adj.size(), 0);
  std::vector<size_t> cursor(g.row_ptr.begin(), g.row_ptr.end() - 1);
  for (const auto& t : triples) {
    size_t ia = cursor[t[0]]++;
    g.adj[ia] = static_cast<int>(t[1]);
    g.w[ia] = t[2];
  }
  for (const auto& t : triples) {
    size_t ib = cursor[t[1]]++;
    g.adj[ib] = static_cast<int>(t[0]);
    g.w[ib] = t[2];
  }
  // Rows received their a-side fill (sorted) then their b-side fill (also
  // sorted); restore one sorted order per row. (Same two-sided CSR fill as
  // CommGraph::build, which carries both directed weights per entry and so
  // cannot share the row type.)
  std::vector<std::pair<int, uint64_t>> row;
  for (int u = 0; u < nunits; ++u) {
    const size_t lo = g.row_ptr[static_cast<size_t>(u)];
    const size_t hi = g.row_ptr[static_cast<size_t>(u) + 1];
    row.clear();
    row.reserve(hi - lo);
    for (size_t i = lo; i < hi; ++i) row.emplace_back(g.adj[i], g.w[i]);
    std::sort(row.begin(), row.end());
    for (size_t i = lo; i < hi; ++i) {
      g.adj[i] = row[i - lo].first;
      g.w[i] = row[i - lo].second;
    }
  }
  return g;
}

GroupGraph GroupGraph::from_ranks(const CommGraph& graph,
                                  const std::vector<int>& unit_of_rank,
                                  int nunits, std::vector<int> node_size) {
  SPBC_ASSERT(static_cast<int>(unit_of_rank.size()) == graph.nranks());
  std::vector<std::array<uint64_t, 3>> triples;
  triples.reserve(graph.nedges());
  for (int v = 0; v < graph.nranks(); ++v) {
    const int uv = unit_of_rank[static_cast<size_t>(v)];
    for (const CommGraph::Edge* e = graph.neighbors_begin(v);
         e != graph.neighbors_end(v); ++e) {
      if (e->to < v) continue;  // one direction per pair
      const int uo = unit_of_rank[static_cast<size_t>(e->to)];
      if (uo == uv) continue;  // intra-unit traffic is never logged
      triples.push_back({static_cast<uint64_t>(uv), static_cast<uint64_t>(uo),
                         e->sym()});
    }
  }
  return from_triples(nunits, std::move(node_size), std::move(triples));
}

GroupGraph GroupGraph::coarsen(int node_cap,
                               std::vector<int>* fine_to_coarse) const {
  std::vector<int> match(static_cast<size_t>(n), -1);
  for (int u = 0; u < n; ++u) {
    if (match[static_cast<size_t>(u)] >= 0) continue;
    int best = -1;
    uint64_t best_w = 0;
    for (size_t i = begin(u); i < end(u); ++i) {
      const int v = adj[i];
      if (match[static_cast<size_t>(v)] >= 0) continue;
      if (node_size[static_cast<size_t>(u)] + node_size[static_cast<size_t>(v)] >
          node_cap)
        continue;
      // Heaviest edge wins; ties break on the smaller index, which the
      // sorted row order delivers with a strict comparison.
      if (w[i] > best_w || best < 0) {
        best = v;
        best_w = w[i];
      }
    }
    if (best >= 0) {
      match[static_cast<size_t>(u)] = best;
      match[static_cast<size_t>(best)] = u;
    } else {
      match[static_cast<size_t>(u)] = u;  // stays single
    }
  }

  // Coarse ids in order of each pair's smaller member.
  std::vector<int>& map = *fine_to_coarse;
  map.assign(static_cast<size_t>(n), -1);
  int next = 0;
  for (int u = 0; u < n; ++u) {
    if (map[static_cast<size_t>(u)] >= 0) continue;
    map[static_cast<size_t>(u)] = next;
    map[static_cast<size_t>(match[static_cast<size_t>(u)])] = next;
    ++next;
  }

  std::vector<int> coarse_size(static_cast<size_t>(next), 0);
  for (int u = 0; u < n; ++u)
    coarse_size[static_cast<size_t>(map[static_cast<size_t>(u)])] +=
        node_size[static_cast<size_t>(u)];

  std::vector<std::array<uint64_t, 3>> triples;
  triples.reserve(adj.size() / 2);
  for (int u = 0; u < n; ++u) {
    const int cu = map[static_cast<size_t>(u)];
    for (size_t i = begin(u); i < end(u); ++i) {
      if (adj[i] < u) continue;
      const int cv = map[static_cast<size_t>(adj[i])];
      if (cu == cv) continue;  // contracted away
      triples.push_back({static_cast<uint64_t>(cu), static_cast<uint64_t>(cv),
                         w[i]});
    }
  }
  return from_triples(next, std::move(coarse_size), std::move(triples));
}

}  // namespace spbc::clustering

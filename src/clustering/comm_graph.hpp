#pragma once
// Communication graph built from traced per-channel traffic.
//
// The paper's methodology (Section 6.1): run the application for a few
// iterations, collect communication statistics, then feed them to the
// clustering tool of Ropars et al. [30] to compute a partition that
// minimizes the volume of logged (inter-cluster) data. This module is that
// statistics container; the partitioner lives in partitioner.hpp.
//
// Storage is a build-once CSR adjacency: accumulation appends (src, dst,
// bytes) triples, and the first query sorts and merges them into per-vertex
// sorted neighbor arrays carrying both directed weights (out = a->b bytes,
// in = b->a bytes). Iteration over a vertex's neighborhood is O(degree),
// point lookups are O(log degree), and whole-graph sweeps (logged_bytes)
// walk two contiguous arrays instead of chasing std::map nodes — the
// partitioner's inner loops are built on these properties.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "mpi/traffic.hpp"
#include "util/assert.hpp"

namespace spbc::clustering {

class CommGraph {
 public:
  /// One CSR adjacency entry: neighbor vertex plus both directed weights.
  struct Edge {
    int to = -1;
    uint64_t out = 0;  // bytes this vertex sent to `to`
    uint64_t in = 0;   // bytes `to` sent to this vertex
    uint64_t sym() const { return out + in; }
  };

  explicit CommGraph(int nranks);

  int nranks() const { return n_; }

  /// Adds traffic (bytes) from src to dst. Directions are kept separately;
  /// logged volume depends on the direction crossing the cut. Invalidates
  /// the built CSR (rebuilt lazily on the next query).
  void add_traffic(int src, int dst, uint64_t bytes);

  /// Builds from a Machine-style traffic map.
  static CommGraph from_traffic(int nranks,
                                const std::map<std::pair<int, int>, uint64_t>& traffic);

  /// Builds from the Machine's flat traffic matrix (no intermediate map).
  static CommGraph from_traffic(int nranks, const mpi::TrafficMatrix& traffic);

  uint64_t traffic(int src, int dst) const;

  /// Symmetric weight (bytes exchanged either way) — what cut-minimizing
  /// partitioners work with.
  uint64_t weight(int a, int b) const;

  /// Sorted neighbor list of `v` (self-loops excluded). O(1) after build.
  const Edge* neighbors_begin(int v) const;
  const Edge* neighbors_end(int v) const;
  int degree(int v) const;
  size_t nedges() const;  // undirected adjacency pairs

  /// Total bytes `r` sends to other ranks (self-loops excluded) — the upper
  /// bound of its logged volume.
  uint64_t out_bytes(int r) const;

  /// Total bytes that would be logged under the given rank -> cluster map
  /// (all traffic whose endpoints live in different clusters).
  uint64_t logged_bytes(const std::vector<int>& cluster_of) const;

  /// Per-rank logged bytes (what each rank's sender log accumulates).
  std::vector<uint64_t> logged_bytes_per_rank(const std::vector<int>& cluster_of) const;

  /// Incremental cut accounting: the change in logged_bytes if vertex `v`
  /// moved from cluster_of[v] to cluster `to`. O(degree(v)).
  int64_t cut_delta(const std::vector<int>& cluster_of, int v, int to) const;

  uint64_t total_bytes() const { return total_; }

 private:
  void build() const;

  int n_;
  uint64_t total_ = 0;

  struct Triple {
    int src;
    int dst;
    uint64_t bytes;
  };
  /// Accumulation buffer. build() compacts it to one merged triple per
  /// directed channel, so memory stays proportional to the channel count
  /// (not the add_traffic call count) while later add_traffic calls can
  /// still trigger a correct rebuild.
  mutable std::vector<Triple> pending_;

  // CSR adjacency, built lazily from pending_.
  mutable bool built_ = false;
  mutable std::vector<size_t> row_ptr_;   // n_ + 1
  mutable std::vector<Edge> adj_;         // both directions of each pair
  mutable std::vector<uint64_t> out_bytes_;  // per-rank directed out total
  /// Self traffic (src == dst), merged and sorted by rank. Never logged,
  /// but traffic(r, r) must still report it.
  mutable std::vector<std::pair<int, uint64_t>> self_;
};

}  // namespace spbc::clustering

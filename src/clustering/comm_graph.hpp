#pragma once
// Communication graph built from traced per-channel traffic.
//
// The paper's methodology (Section 6.1): run the application for a few
// iterations, collect communication statistics, then feed them to the
// clustering tool of Ropars et al. [30] to compute a partition that
// minimizes the volume of logged (inter-cluster) data. This module is that
// statistics container; the partitioner lives in partitioner.hpp.

#include <cstdint>
#include <map>
#include <vector>

#include "util/assert.hpp"

namespace spbc::clustering {

class CommGraph {
 public:
  explicit CommGraph(int nranks);

  int nranks() const { return n_; }

  /// Adds traffic (bytes) from src to dst. Directions are kept separately;
  /// logged volume depends on the direction crossing the cut.
  void add_traffic(int src, int dst, uint64_t bytes);

  /// Builds from a Machine-style traffic map.
  static CommGraph from_traffic(int nranks,
                                const std::map<std::pair<int, int>, uint64_t>& traffic);

  uint64_t traffic(int src, int dst) const;

  /// Symmetric weight (bytes exchanged either way) — what cut-minimizing
  /// partitioners work with.
  uint64_t weight(int a, int b) const { return traffic(a, b) + traffic(b, a); }

  /// Total bytes that would be logged under the given rank -> cluster map
  /// (all traffic whose endpoints live in different clusters).
  uint64_t logged_bytes(const std::vector<int>& cluster_of) const;

  /// Per-rank logged bytes (what each rank's sender log accumulates).
  std::vector<uint64_t> logged_bytes_per_rank(const std::vector<int>& cluster_of) const;

  uint64_t total_bytes() const { return total_; }

 private:
  int n_;
  std::map<std::pair<int, int>, uint64_t> edges_;
  uint64_t total_ = 0;
};

}  // namespace spbc::clustering

#pragma once
// Delta-based Kernighan–Lin-style refinement.
//
// The seed refiner re-evaluated the objective by recomputing logged_bytes()
// over the whole edge map for every candidate move — O(rounds * units * k *
// E). This refiner maintains incremental state so a candidate move of unit u
// is evaluated in O(degree(u)) (plus the ranks that send into u for the
// balanced objective), and applying it updates the state in the same bound:
//
//  * per-unit per-cluster boundary weights conn[u][c] (the classic FM gain
//    table) drive the kMinTotalLogged objective: moving u from A to B
//    changes the cut by conn[u][A] - conn[u][B];
//  * per-rank logged-bytes plus per-rank per-cluster outbound tables drive
//    kBalancedLogged: a move touches only the ranks inside u and the ranks
//    that send into u, and the global maximum over the untouched ranks comes
//    from a lazy max-heap with per-rank freshness stamps (stale entries are
//    discarded on pop) — the "lazy bucket" that avoids an O(n) max scan per
//    candidate.
//
// Move acceptance replicates the seed exactly (same scan order, same strict
// double comparison, same max+1e-9*total tie-break), so on graphs where the
// seed found the optimum this refiner finds the same partition.

#include <cstdint>
#include <vector>

#include "clustering/comm_graph.hpp"
#include "clustering/group_graph.hpp"

namespace spbc::clustering {

enum class Objective { kMinTotalLogged, kBalancedLogged };

struct RefineParams {
  int k = 1;
  Objective objective = Objective::kMinTotalLogged;
  int max_rounds = 20;
  int node_cap = 0;  // max physical nodes per cluster (seed: ceil(g/k) + 1)
  /// Debug/property-test mode: after every applied move, recompute the
  /// objective from scratch and assert it equals the incremental value.
  bool validate_deltas = false;
};

/// Refines `unit_cluster` (unit -> cluster in [0, k)) in place. `units` is
/// the current level's adjacency; `unit_of_rank` maps every rank of `graph`
/// to its unit at this level. Deterministic.
void refine_partition(const CommGraph& graph, const GroupGraph& units,
                      const std::vector<int>& unit_of_rank,
                      const RefineParams& params, std::vector<int>& unit_cluster);

}  // namespace spbc::clustering

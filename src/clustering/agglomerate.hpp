#pragma once
// Heap-driven greedy agglomeration: merge units into k clusters, heaviest
// inter-cluster weight first, under a node-count size cap.
//
// Replaces the seed algorithm's all-pairs rescan per merge (O(g^3) over a
// dense matrix) with a lazy max-heap of candidate cluster pairs. Every
// cluster carries a version stamp that its merges bump; a popped candidate
// whose endpoint versions are stale is discarded (its replacement was pushed
// when the endpoint merged). Total work is O(E log E) for E unit-graph
// edges, because each merge pushes at most the merged cluster's current
// degree in fresh candidates.
//
// Greedy order matches the seed algorithm exactly: highest weight first,
// ties broken on the lexicographically smallest cluster-id pair; when no
// positive-weight pair fits under the cap, the scan-order-first zero-weight
// pair merges; when nothing fits at all, the cap relaxes by one node.

#include <vector>

#include "clustering/group_graph.hpp"

namespace spbc::clustering {

/// Merges the units of `g` into exactly `k` clusters (node-count cap
/// ceil(total_nodes / k), relaxed only when the remaining components cannot
/// otherwise reach k). Returns unit -> cluster id in [0, k). Deterministic.
std::vector<int> agglomerate(const GroupGraph& g, int k);

}  // namespace spbc::clustering

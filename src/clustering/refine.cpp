#include "clustering/refine.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace spbc::clustering {

namespace {

struct MaxEntry {
  uint64_t val = 0;
  int rank = 0;
  uint32_t stamp = 0;
};
struct MaxLower {
  bool operator()(const MaxEntry& x, const MaxEntry& y) const {
    return x.val < y.val;
  }
};

class Refiner {
 public:
  Refiner(const CommGraph& graph, const GroupGraph& units,
          const std::vector<int>& unit_of_rank, const RefineParams& params,
          std::vector<int>& unit_cluster)
      : graph_(graph),
        units_(units),
        unit_of_rank_(unit_of_rank),
        p_(params),
        cluster_(unit_cluster) {
    init_common();
    if (p_.objective == Objective::kBalancedLogged) init_balanced();
  }

  void run() {
    double current = objective_now();
    bool improved = true;
    int rounds = 0;
    while (improved && rounds < p_.max_rounds) {
      improved = false;
      ++rounds;
      for (int u = 0; u < units_.n; ++u) {
        const int from = cluster_[static_cast<size_t>(u)];
        if (csize_units_[static_cast<size_t>(from)] <= 1) continue;
        int best_to = -1;
        double best_val = current;
        for (int to = 0; to < p_.k; ++to) {
          if (to == from) continue;
          if (csize_nodes_[static_cast<size_t>(to)] +
                  units_.node_size[static_cast<size_t>(u)] >
              p_.node_cap)
            continue;
          const double val = evaluate(u, from, to);
          if (val < best_val) {
            best_val = val;
            best_to = to;
          }
        }
        if (best_to >= 0) {
          apply(u, from, best_to);
          current = best_val;
          improved = true;
          if (p_.validate_deltas) validate(current);
        }
      }
    }
  }

 private:
  size_t cidx(int u, int c) const {
    return static_cast<size_t>(u) * static_cast<size_t>(p_.k) +
           static_cast<size_t>(c);
  }
  size_t ridx(int r, int c) const {
    return static_cast<size_t>(r) * static_cast<size_t>(p_.k) +
           static_cast<size_t>(c);
  }

  void init_common() {
    csize_units_.assign(static_cast<size_t>(p_.k), 0);
    csize_nodes_.assign(static_cast<size_t>(p_.k), 0);
    for (int u = 0; u < units_.n; ++u) {
      ++csize_units_[static_cast<size_t>(cluster_[static_cast<size_t>(u)])];
      csize_nodes_[static_cast<size_t>(cluster_[static_cast<size_t>(u)])] +=
          units_.node_size[static_cast<size_t>(u)];
    }
    conn_.assign(static_cast<size_t>(units_.n) * static_cast<size_t>(p_.k), 0);
    cut_ = 0;
    for (int u = 0; u < units_.n; ++u) {
      const int cu = cluster_[static_cast<size_t>(u)];
      for (size_t i = units_.begin(u); i < units_.end(u); ++i) {
        const int v = units_.adj[i];
        const int cv = cluster_[static_cast<size_t>(v)];
        conn_[cidx(u, cv)] += units_.w[i];
        if (v > u && cv != cu) cut_ += units_.w[i];
      }
    }
  }

  void init_balanced() {
    const int n = graph_.nranks();
    // Rank lists per unit (counting sort keeps rank order within a unit).
    unit_rank_ptr_.assign(static_cast<size_t>(units_.n) + 1, 0);
    for (int r = 0; r < n; ++r)
      ++unit_rank_ptr_[static_cast<size_t>(unit_of_rank_[static_cast<size_t>(r)]) + 1];
    for (int u = 0; u < units_.n; ++u)
      unit_rank_ptr_[static_cast<size_t>(u) + 1] +=
          unit_rank_ptr_[static_cast<size_t>(u)];
    unit_ranks_.assign(static_cast<size_t>(n), 0);
    {
      std::vector<size_t> cursor(unit_rank_ptr_.begin(), unit_rank_ptr_.end() - 1);
      for (int r = 0; r < n; ++r)
        unit_ranks_[cursor[static_cast<size_t>(
            unit_of_rank_[static_cast<size_t>(r)])]++] = r;
    }

    // Senders into each unit: (unit(dst) -> sorted (rank, bytes)), members
    // included (their entry is the rank's intra-unit outbound — the traffic
    // that travels with the unit when it moves).
    struct Sender {
      int unit;
      int rank;
      uint64_t bytes;
    };
    std::vector<Sender> senders;
    senders.reserve(graph_.nedges() * 2);
    for (int r = 0; r < n; ++r) {
      for (const CommGraph::Edge* e = graph_.neighbors_begin(r);
           e != graph_.neighbors_end(r); ++e) {
        if (e->out == 0) continue;
        senders.push_back(
            Sender{unit_of_rank_[static_cast<size_t>(e->to)], r, e->out});
      }
    }
    std::sort(senders.begin(), senders.end(), [](const Sender& x, const Sender& y) {
      return x.unit != y.unit ? x.unit < y.unit : x.rank < y.rank;
    });
    in_ptr_.assign(static_cast<size_t>(units_.n) + 1, 0);
    in_rank_.clear();
    in_bytes_.clear();
    for (size_t i = 0; i < senders.size();) {
      size_t j = i + 1;
      uint64_t bytes = senders[i].bytes;
      while (j < senders.size() && senders[j].unit == senders[i].unit &&
             senders[j].rank == senders[i].rank) {
        bytes += senders[j].bytes;
        ++j;
      }
      in_rank_.push_back(senders[i].rank);
      in_bytes_.push_back(bytes);
      ++in_ptr_[static_cast<size_t>(senders[i].unit) + 1];
      i = j;
    }
    for (int u = 0; u < units_.n; ++u)
      in_ptr_[static_cast<size_t>(u) + 1] += in_ptr_[static_cast<size_t>(u)];

    // Per-rank per-cluster outbound, intra-unit outbound, and logged bytes.
    out2c_.assign(static_cast<size_t>(n) * static_cast<size_t>(p_.k), 0);
    selfb_.assign(static_cast<size_t>(n), 0);
    logged_.assign(static_cast<size_t>(n), 0);
    stamp_.assign(static_cast<size_t>(n), 0);
    mark_.assign(static_cast<size_t>(n), 0);
    for (int r = 0; r < n; ++r) {
      const int ur = unit_of_rank_[static_cast<size_t>(r)];
      for (const CommGraph::Edge* e = graph_.neighbors_begin(r);
           e != graph_.neighbors_end(r); ++e) {
        if (e->out == 0) continue;
        const int ud = unit_of_rank_[static_cast<size_t>(e->to)];
        out2c_[ridx(r, cluster_[static_cast<size_t>(ud)])] += e->out;
        if (ud == ur) selfb_[static_cast<size_t>(r)] += e->out;
      }
      logged_[static_cast<size_t>(r)] =
          graph_.out_bytes(r) -
          out2c_[ridx(r, cluster_[static_cast<size_t>(ur)])];
      heap_.push(MaxEntry{logged_[static_cast<size_t>(r)], r, 0});
    }
  }

  double objective_now() {
    if (p_.objective == Objective::kMinTotalLogged)
      return static_cast<double>(cut_);
    uint64_t mx = 0;
    for (uint64_t v : logged_) mx = std::max(mx, v);
    return static_cast<double>(mx) + 1e-9 * static_cast<double>(cut_);
  }

  uint64_t cut_after(int u, int from, int to) const {
    return static_cast<uint64_t>(static_cast<int64_t>(cut_) +
                                 static_cast<int64_t>(conn_[cidx(u, from)]) -
                                 static_cast<int64_t>(conn_[cidx(u, to)]));
  }

  double evaluate(int u, int from, int to) {
    const uint64_t new_cut = cut_after(u, from, to);
    if (p_.objective == Objective::kMinTotalLogged)
      return static_cast<double>(new_cut);

    // Balanced: hypothetical per-rank logged values of the affected ranks.
    ++mark_epoch_;
    uint64_t max_affected = 0;
    auto consider = [&](int r, uint64_t v) {
      mark_[static_cast<size_t>(r)] = mark_epoch_;
      max_affected = std::max(max_affected, v);
    };
    for (size_t i = unit_rank_ptr_[static_cast<size_t>(u)];
         i < unit_rank_ptr_[static_cast<size_t>(u) + 1]; ++i) {
      const int r = unit_ranks_[i];
      consider(r, graph_.out_bytes(r) - out2c_[ridx(r, to)] -
                      selfb_[static_cast<size_t>(r)]);
    }
    for (size_t i = in_ptr_[static_cast<size_t>(u)];
         i < in_ptr_[static_cast<size_t>(u) + 1]; ++i) {
      const int r = in_rank_[i];
      if (unit_of_rank_[static_cast<size_t>(r)] == u) continue;  // member
      const int cr =
          cluster_[static_cast<size_t>(unit_of_rank_[static_cast<size_t>(r)])];
      if (cr == from)
        consider(r, logged_[static_cast<size_t>(r)] + in_bytes_[i]);
      else if (cr == to)
        consider(r, logged_[static_cast<size_t>(r)] - in_bytes_[i]);
    }

    // Maximum over the untouched ranks from the lazy heap: discard stale
    // entries, park fresh-but-affected ones, take the first fresh untouched.
    uint64_t max_rest = 0;
    while (!heap_.empty()) {
      const MaxEntry e = heap_.top();
      if (e.stamp != stamp_[static_cast<size_t>(e.rank)]) {
        heap_.pop();
        continue;
      }
      if (mark_[static_cast<size_t>(e.rank)] == mark_epoch_) {
        parked_.push_back(e);
        heap_.pop();
        continue;
      }
      max_rest = e.val;
      break;
    }
    for (const MaxEntry& e : parked_) heap_.push(e);
    parked_.clear();

    const uint64_t new_max = std::max(max_affected, max_rest);
    return static_cast<double>(new_max) + 1e-9 * static_cast<double>(new_cut);
  }

  void apply(int u, int from, int to) {
    cut_ = cut_after(u, from, to);
    for (size_t i = units_.begin(u); i < units_.end(u); ++i) {
      const int v = units_.adj[i];
      SPBC_ASSERT(conn_[cidx(v, from)] >= units_.w[i]);
      conn_[cidx(v, from)] -= units_.w[i];
      conn_[cidx(v, to)] += units_.w[i];
    }
    cluster_[static_cast<size_t>(u)] = to;
    --csize_units_[static_cast<size_t>(from)];
    ++csize_units_[static_cast<size_t>(to)];
    csize_nodes_[static_cast<size_t>(from)] -=
        units_.node_size[static_cast<size_t>(u)];
    csize_nodes_[static_cast<size_t>(to)] +=
        units_.node_size[static_cast<size_t>(u)];
    if (p_.objective != Objective::kBalancedLogged) return;

    auto bump = [&](int r, uint64_t v) {
      logged_[static_cast<size_t>(r)] = v;
      ++stamp_[static_cast<size_t>(r)];
      heap_.push(MaxEntry{v, r, stamp_[static_cast<size_t>(r)]});
    };
    for (size_t i = in_ptr_[static_cast<size_t>(u)];
         i < in_ptr_[static_cast<size_t>(u) + 1]; ++i) {
      const int r = in_rank_[i];
      SPBC_ASSERT(out2c_[ridx(r, from)] >= in_bytes_[i]);
      out2c_[ridx(r, from)] -= in_bytes_[i];
      out2c_[ridx(r, to)] += in_bytes_[i];
      if (unit_of_rank_[static_cast<size_t>(r)] == u) continue;  // member
      const int cr =
          cluster_[static_cast<size_t>(unit_of_rank_[static_cast<size_t>(r)])];
      if (cr == from)
        bump(r, logged_[static_cast<size_t>(r)] + in_bytes_[i]);
      else if (cr == to)
        bump(r, logged_[static_cast<size_t>(r)] - in_bytes_[i]);
    }
    for (size_t i = unit_rank_ptr_[static_cast<size_t>(u)];
         i < unit_rank_ptr_[static_cast<size_t>(u) + 1]; ++i) {
      const int r = unit_ranks_[i];
      bump(r, graph_.out_bytes(r) - out2c_[ridx(r, to)]);
    }
  }

  /// Debug cross-check: the incremental state must equal a from-scratch
  /// recompute after every applied move.
  void validate(double current) {
    std::vector<int> cluster_of(static_cast<size_t>(graph_.nranks()));
    for (int r = 0; r < graph_.nranks(); ++r)
      cluster_of[static_cast<size_t>(r)] = cluster_[static_cast<size_t>(
          unit_of_rank_[static_cast<size_t>(r)])];
    const uint64_t cut = graph_.logged_bytes(cluster_of);
    SPBC_ASSERT_MSG(cut == cut_, "delta cut " << cut_ << " != recomputed " << cut);
    if (p_.objective == Objective::kMinTotalLogged) {
      SPBC_ASSERT_MSG(current == static_cast<double>(cut),
                      "objective drifted from recompute");
      return;
    }
    const std::vector<uint64_t> per_rank = graph_.logged_bytes_per_rank(cluster_of);
    uint64_t mx = 0;
    for (int r = 0; r < graph_.nranks(); ++r) {
      SPBC_ASSERT_MSG(per_rank[static_cast<size_t>(r)] ==
                          logged_[static_cast<size_t>(r)],
                      "delta logged[" << r << "] "
                                      << logged_[static_cast<size_t>(r)]
                                      << " != recomputed "
                                      << per_rank[static_cast<size_t>(r)]);
      mx = std::max(mx, per_rank[static_cast<size_t>(r)]);
    }
    const double val =
        static_cast<double>(mx) + 1e-9 * static_cast<double>(cut);
    SPBC_ASSERT_MSG(current == val, "balanced objective drifted from recompute");
  }

  const CommGraph& graph_;
  const GroupGraph& units_;
  const std::vector<int>& unit_of_rank_;
  const RefineParams& p_;
  std::vector<int>& cluster_;

  std::vector<int> csize_units_;
  std::vector<int> csize_nodes_;
  std::vector<uint64_t> conn_;  // units.n x k boundary weights
  uint64_t cut_ = 0;

  // Balanced-objective state.
  std::vector<size_t> unit_rank_ptr_;
  std::vector<int> unit_ranks_;
  std::vector<size_t> in_ptr_;  // senders into each unit
  std::vector<int> in_rank_;
  std::vector<uint64_t> in_bytes_;
  std::vector<uint64_t> out2c_;  // nranks x k
  std::vector<uint64_t> selfb_;  // intra-unit outbound per rank
  std::vector<uint64_t> logged_;
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> mark_;
  uint32_t mark_epoch_ = 0;
  std::priority_queue<MaxEntry, std::vector<MaxEntry>, MaxLower> heap_;
  std::vector<MaxEntry> parked_;
};

}  // namespace

void refine_partition(const CommGraph& graph, const GroupGraph& units,
                      const std::vector<int>& unit_of_rank,
                      const RefineParams& params,
                      std::vector<int>& unit_cluster) {
  SPBC_ASSERT(params.k >= 1 && params.node_cap > 0);
  SPBC_ASSERT(static_cast<int>(unit_cluster.size()) == units.n);
  if (params.k == 1 || units.n <= 1) return;
  Refiner r(graph, units, unit_of_rank, params, unit_cluster);
  r.run();
}

}  // namespace spbc::clustering

#include "harness/scenario.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spbc::harness {

const char* protocol_name(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kNative:
      return "MPICH";
    case ProtocolKind::kSpbc:
      return "SPBC";
    case ProtocolKind::kSpbcNoIds:
      return "SPBC(no ids)";
    case ProtocolKind::kHydee:
      return "HydEE";
    case ProtocolKind::kGlobalCoordinated:
      return "Coordinated";
    case ProtocolKind::kPureLogging:
      return "MessageLogging";
  }
  return "?";
}

double ScenarioResult::normalized_rework() const {
  if (recoveries.empty()) return 0.0;
  const mpi::RecoveryRecord& rec = recoveries.front();
  if (!rec.complete()) return 0.0;
  sim::Time lost = rec.failure_time - rec.checkpoint_time;
  if (lost <= 0) return 0.0;
  return rec.rework() / lost;
}

namespace {

mpi::MachineConfig machine_config_for(const ScenarioConfig& cfg) {
  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  if (cfg.protocol == ProtocolKind::kPureLogging) mc.enforce_node_colocation = false;
  return mc;
}

/// Folds the hostile matrix into the sub-configs it forwards to. Only knobs
/// the hostile block actually sets are copied, so shapes configured directly
/// on app_cfg / machine / spbc compose instead of being clobbered.
void apply_hostile(ScenarioConfig& cfg) {
  const HostileConfig& h = cfg.hostile;
  if (h.burst_factor > 1.0) {
    cfg.app_cfg.burst_factor = h.burst_factor;
    cfg.app_cfg.burst_period = h.burst_period;
    cfg.app_cfg.burst_duty = h.burst_duty;
  }
  if (h.straggler_factor > 1.0) {
    cfg.machine.straggler_factor = h.straggler_factor;
    cfg.machine.straggler_frac = h.straggler_frac;
    cfg.machine.straggler_seed = h.straggler_seed;
  }
  for (const net::PartitionPhase& p : h.partitions)
    cfg.machine.net.partitions.push_back(p);
  for (const ckpt::PfsInterferencePhase& p : h.pfs_interference)
    cfg.spbc.pfs_interference.push_back(p);
}

/// PHYSICAL nodes of one failure domain (HostileConfig geometry).
std::vector<int> domain_nodes(const HostileConfig& h, int nodes,
                              const DomainFailure& d) {
  std::vector<int> out;
  switch (d.domain) {
    case FailureDomain::kRack: {
      int lo = d.index * h.rack_size;
      int hi = std::min(nodes, lo + h.rack_size);
      for (int n = lo; n < hi; ++n) out.push_back(n);
      break;
    }
    case FailureDomain::kSwitch: {
      SPBC_ASSERT(h.switch_count > 0);
      for (int n = 0; n < nodes; ++n)
        if (n % h.switch_count == d.index % h.switch_count) out.push_back(n);
      break;
    }
    case FailureDomain::kPsu: {
      int base = d.index * 2;
      if (base < nodes) out.push_back(base);
      if (base + 1 < nodes) out.push_back(base + 1);
      break;
    }
  }
  return out;
}

std::unique_ptr<mpi::ProtocolHooks> make_protocol(const ScenarioConfig& cfg) {
  switch (cfg.protocol) {
    case ProtocolKind::kNative:
      return baselines::make_native();
    case ProtocolKind::kSpbc:
    case ProtocolKind::kGlobalCoordinated:
    case ProtocolKind::kPureLogging:
      return std::make_unique<core::SpbcProtocol>(cfg.spbc);
    case ProtocolKind::kSpbcNoIds: {
      core::SpbcConfig c = cfg.spbc;
      c.pattern_ids = false;
      return std::make_unique<core::SpbcProtocol>(c);
    }
    case ProtocolKind::kHydee: {
      baselines::HydeeConfig h = cfg.hydee;
      h.base = cfg.spbc;
      return std::make_unique<baselines::HydeeProtocol>(h);
    }
  }
  SPBC_UNREACHABLE("protocol kind");
}

}  // namespace

std::vector<int> compute_cluster_map(const ScenarioConfig& cfg) {
  switch (cfg.protocol) {
    case ProtocolKind::kNative:
    case ProtocolKind::kGlobalCoordinated:
      return baselines::single_cluster_map(cfg.nranks);
    case ProtocolKind::kPureLogging:
      return baselines::per_rank_cluster_map(cfg.nranks);
    default:
      break;
  }
  sim::Topology topo = sim::Topology::for_ranks(cfg.nranks, cfg.ranks_per_node);
  SPBC_ASSERT_MSG(cfg.nclusters >= 1 && cfg.nclusters <= topo.nodes(),
                  "nclusters=" << cfg.nclusters << " with " << topo.nodes()
                               << " nodes");
  if (!cfg.use_clustering_tool) {
    clustering::CommGraph empty(cfg.nranks);
    clustering::Partitioner part(empty, topo);
    return part.block_partition(cfg.nclusters).cluster_of;
  }
  // Section 6.1 methodology: run a few iterations, collect communication
  // statistics, feed them to the clustering tool.
  ScenarioConfig trace_cfg = cfg;
  trace_cfg.protocol = ProtocolKind::kNative;
  trace_cfg.app_cfg.iters = cfg.trace_iters;
  trace_cfg.inject_failure = false;
  mpi::MachineConfig mc = machine_config_for(trace_cfg);
  mpi::Machine machine(mc, baselines::make_native());
  machine.set_cluster_of(baselines::single_cluster_map(cfg.nranks));
  const apps::AppInfo& info = apps::find_app(cfg.app);
  apps::AppConfig app_cfg = trace_cfg.app_cfg;
  machine.launch([&info, app_cfg](mpi::Rank& r) { info.main(r, app_cfg); });
  mpi::RunResult rr = machine.run();
  SPBC_ASSERT_MSG(rr.completed, "clustering trace run did not complete");
  clustering::CommGraph graph =
      clustering::CommGraph::from_traffic(cfg.nranks, machine.traffic());
  clustering::Partitioner part(graph, topo);
  clustering::PartitionConfig pc = cfg.partition;
  pc.objective = cfg.objective;
  return part.partition(cfg.nclusters, pc).cluster_of;
}

ScenarioResult run_scenario(const ScenarioConfig& cfg_in) {
  // Fold the hostile matrix into the sub-configs on a local copy — the
  // caller's config object is never mutated.
  ScenarioConfig cfg = cfg_in;
  apply_hostile(cfg);
  mpi::MachineConfig mc = machine_config_for(cfg);
  mpi::Machine machine(mc, make_protocol(cfg));
  std::vector<int> cluster_of = compute_cluster_map(cfg);
  machine.set_cluster_of(cluster_of);

  const apps::AppInfo& info = apps::find_app(cfg.app);
  std::map<int, uint64_t> checksums;
  apps::AppConfig app_cfg = cfg.app_cfg;
  if (app_cfg.validate && app_cfg.checksums == nullptr)
    app_cfg.checksums = &checksums;
  machine.launch([&info, app_cfg](mpi::Rank& r) { info.main(r, app_cfg); });

  if (cfg.inject_failure) {
    SPBC_ASSERT_MSG(cfg.failure_at > 0, "inject_failure requires failure_at > 0");
    machine.inject_failure(cfg.failure_at, cfg.victim_rank);
  }
  for (const auto& [at, victim] : cfg.extra_failures) {
    SPBC_ASSERT_MSG(at > 0, "extra failures require a positive time");
    machine.inject_failure(at, victim);
  }
  for (const auto& [at, victim] : cfg.process_only_failures) {
    SPBC_ASSERT_MSG(at > 0, "process-only failures require a positive time");
    machine.inject_failure(at, victim, mpi::FailureKind::kProcessOnly);
  }
  for (const auto& [at, victim] : cfg.permanent_failures) {
    SPBC_ASSERT_MSG(at > 0, "permanent failures require a positive time");
    machine.inject_failure(at, victim, mpi::FailureKind::kNodePermanent);
  }
  if (!cfg.silent_losses.empty()) {
    auto* spbc = dynamic_cast<core::SpbcProtocol*>(&machine.protocol());
    SPBC_ASSERT_MSG(spbc != nullptr,
                    "silent losses require an SPBC-family protocol");
    for (const auto& [at, salt] : cfg.silent_losses) {
      SPBC_ASSERT_MSG(at > 0, "silent losses require a positive time");
      const uint64_t s = salt;
      machine.engine().at_serial(
          at, [spbc, s] { spbc->staging_mut().corrupt_one_fragment(s); });
    }
  }

  // Correlated failure domains: every node of the domain goes down, each
  // node's first resident rank the injection victim, staggered inside the
  // control plane's correlation window so its correlated-double estimator
  // sees the losses as one domain event. Severity follows the machine's
  // default_failure_kind (elastic suites therefore get permanent losses).
  uint64_t domain_injected = 0;
  for (const DomainFailure& d : cfg.hostile.domain_failures) {
    SPBC_ASSERT_MSG(d.at > 0, "domain failures require a positive time");
    int i = 0;
    for (int node : domain_nodes(cfg.hostile, machine.topology().nodes(), d)) {
      int victim = node * cfg.ranks_per_node;
      if (victim >= cfg.nranks) continue;
      machine.inject_failure(d.at + i * cfg.hostile.domain_stagger, victim);
      ++domain_injected;
      ++i;
    }
  }

  ScenarioResult res;
  res.cluster_of = cluster_of;
  res.domain_failures_injected = domain_injected;
  res.run = machine.run();
  res.elapsed = res.run.finish_time;
  res.checksums = std::move(checksums);
  res.profile = trace::profile_machine(machine);
  res.recoveries = machine.recoveries();

  res.log_rate_mb_s.resize(static_cast<size_t>(cfg.nranks), 0.0);
  double sum = 0;
  for (int r = 0; r < cfg.nranks; ++r) {
    double rate = res.elapsed > 0
                      ? static_cast<double>(machine.rank(r).profile().bytes_logged) /
                            1.0e6 / res.elapsed
                      : 0.0;
    res.log_rate_mb_s[static_cast<size_t>(r)] = rate;
    sum += rate;
    res.max_log_rate_mb_s = std::max(res.max_log_rate_mb_s, rate);
  }
  res.avg_log_rate_mb_s = sum / cfg.nranks;
  for (int r = 0; r < cfg.nranks; ++r)
    res.straggler_stall_time += machine.rank(r).profile().time_straggler_stall;
  res.partition_msgs_held = machine.network().partition_msgs_held();
  res.partition_stall_time = machine.network().partition_stall_time();
  res.spare_swaps = machine.spare_swaps();
  res.shrink_restarts = machine.shrink_restarts();
  res.tombstone_drops = machine.tombstone_drops();
  if (auto* spbc = dynamic_cast<core::SpbcProtocol*>(&machine.protocol())) {
    res.checkpoints = spbc->checkpoints_taken();
    res.capture_hwm_bytes = spbc->store().capture_hwm_bytes();
    res.capture_forced_waves = spbc->capture_forced_waves();
    res.captures_spilled = spbc->store().captures_spilled();
    res.capture_spilled_bytes = spbc->store().capture_spilled_bytes();
    res.staging = spbc->staging().stats();
    res.reprotections = res.staging.reprotections;
    res.rebuild_retries = res.staging.rebuild_retries;
    res.scrubs_detected = res.staging.scrubs_detected;
    res.scrubs_repaired = res.staging.scrubs_repaired;
    res.silent_losses_injected = res.staging.silent_losses_injected;
    res.corrupt_live_fragments = spbc->staging().corrupt_live_fragments();
    res.bytes_local_written = res.staging.bytes_to_local;
    res.bytes_partner_written =
        res.staging.bytes_to_partner + res.staging.bytes_to_parity;
    res.bytes_pfs_written = res.staging.bytes_to_pfs;
    res.bytes_rebuild_read = res.staging.rebuild_bytes_read;
    res.pfs_contended_flushes = res.staging.pfs_contended_flushes;
    res.pfs_interference_time = res.staging.pfs_interference_time;
    res.pfs_queue_depth_hwm = res.staging.pfs_queue_depth_hwm;
    res.ckpt_raw_bytes = spbc->store().total_raw_bytes();
    res.ckpt_stored_bytes = spbc->store().total_bytes_written();
    res.delta_snapshots = spbc->store().delta_snapshots();
    res.control = spbc->control_plane().stats();
    for (int r = 0; r < cfg.nranks; ++r) {
      res.log_bytes_reclaimed += spbc->log_of(r).bytes_reclaimed();
      res.log_retained_hwm =
          std::max(res.log_retained_hwm, spbc->log_of(r).bytes_retained_hwm());
    }
  }
  return res;
}

ScenarioResult run_failure_free(ScenarioConfig cfg) {
  cfg.inject_failure = false;
  return run_scenario(cfg);
}

ScenarioResult run_with_failure(ScenarioConfig cfg, sim::Time t_ff, double frac) {
  SPBC_ASSERT(t_ff > 0 && frac > 0 && frac < 1);
  cfg.inject_failure = true;
  cfg.failure_at = t_ff * frac;
  return run_scenario(cfg);
}

}  // namespace spbc::harness

#include "harness/scenario.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spbc::harness {

const char* protocol_name(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kNative:
      return "MPICH";
    case ProtocolKind::kSpbc:
      return "SPBC";
    case ProtocolKind::kSpbcNoIds:
      return "SPBC(no ids)";
    case ProtocolKind::kHydee:
      return "HydEE";
    case ProtocolKind::kGlobalCoordinated:
      return "Coordinated";
    case ProtocolKind::kPureLogging:
      return "MessageLogging";
  }
  return "?";
}

double ScenarioResult::normalized_rework() const {
  if (recoveries.empty()) return 0.0;
  const mpi::RecoveryRecord& rec = recoveries.front();
  if (!rec.complete()) return 0.0;
  sim::Time lost = rec.failure_time - rec.checkpoint_time;
  if (lost <= 0) return 0.0;
  return rec.rework() / lost;
}

namespace {

mpi::MachineConfig machine_config_for(const ScenarioConfig& cfg) {
  mpi::MachineConfig mc = cfg.machine;
  mc.nranks = cfg.nranks;
  mc.ranks_per_node = cfg.ranks_per_node;
  if (cfg.protocol == ProtocolKind::kPureLogging) mc.enforce_node_colocation = false;
  return mc;
}

std::unique_ptr<mpi::ProtocolHooks> make_protocol(const ScenarioConfig& cfg) {
  switch (cfg.protocol) {
    case ProtocolKind::kNative:
      return baselines::make_native();
    case ProtocolKind::kSpbc:
    case ProtocolKind::kGlobalCoordinated:
    case ProtocolKind::kPureLogging:
      return std::make_unique<core::SpbcProtocol>(cfg.spbc);
    case ProtocolKind::kSpbcNoIds: {
      core::SpbcConfig c = cfg.spbc;
      c.pattern_ids = false;
      return std::make_unique<core::SpbcProtocol>(c);
    }
    case ProtocolKind::kHydee: {
      baselines::HydeeConfig h = cfg.hydee;
      h.base = cfg.spbc;
      return std::make_unique<baselines::HydeeProtocol>(h);
    }
  }
  SPBC_UNREACHABLE("protocol kind");
}

}  // namespace

std::vector<int> compute_cluster_map(const ScenarioConfig& cfg) {
  switch (cfg.protocol) {
    case ProtocolKind::kNative:
    case ProtocolKind::kGlobalCoordinated:
      return baselines::single_cluster_map(cfg.nranks);
    case ProtocolKind::kPureLogging:
      return baselines::per_rank_cluster_map(cfg.nranks);
    default:
      break;
  }
  sim::Topology topo = sim::Topology::for_ranks(cfg.nranks, cfg.ranks_per_node);
  SPBC_ASSERT_MSG(cfg.nclusters >= 1 && cfg.nclusters <= topo.nodes(),
                  "nclusters=" << cfg.nclusters << " with " << topo.nodes()
                               << " nodes");
  if (!cfg.use_clustering_tool) {
    clustering::CommGraph empty(cfg.nranks);
    clustering::Partitioner part(empty, topo);
    return part.block_partition(cfg.nclusters).cluster_of;
  }
  // Section 6.1 methodology: run a few iterations, collect communication
  // statistics, feed them to the clustering tool.
  ScenarioConfig trace_cfg = cfg;
  trace_cfg.protocol = ProtocolKind::kNative;
  trace_cfg.app_cfg.iters = cfg.trace_iters;
  trace_cfg.inject_failure = false;
  mpi::MachineConfig mc = machine_config_for(trace_cfg);
  mpi::Machine machine(mc, baselines::make_native());
  machine.set_cluster_of(baselines::single_cluster_map(cfg.nranks));
  const apps::AppInfo& info = apps::find_app(cfg.app);
  apps::AppConfig app_cfg = trace_cfg.app_cfg;
  machine.launch([&info, app_cfg](mpi::Rank& r) { info.main(r, app_cfg); });
  mpi::RunResult rr = machine.run();
  SPBC_ASSERT_MSG(rr.completed, "clustering trace run did not complete");
  clustering::CommGraph graph =
      clustering::CommGraph::from_traffic(cfg.nranks, machine.traffic());
  clustering::Partitioner part(graph, topo);
  clustering::PartitionConfig pc = cfg.partition;
  pc.objective = cfg.objective;
  return part.partition(cfg.nclusters, pc).cluster_of;
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  mpi::MachineConfig mc = machine_config_for(cfg);
  mpi::Machine machine(mc, make_protocol(cfg));
  std::vector<int> cluster_of = compute_cluster_map(cfg);
  machine.set_cluster_of(cluster_of);

  const apps::AppInfo& info = apps::find_app(cfg.app);
  std::map<int, uint64_t> checksums;
  apps::AppConfig app_cfg = cfg.app_cfg;
  if (app_cfg.validate && app_cfg.checksums == nullptr)
    app_cfg.checksums = &checksums;
  machine.launch([&info, app_cfg](mpi::Rank& r) { info.main(r, app_cfg); });

  if (cfg.inject_failure) {
    SPBC_ASSERT_MSG(cfg.failure_at > 0, "inject_failure requires failure_at > 0");
    machine.inject_failure(cfg.failure_at, cfg.victim_rank);
  }
  for (const auto& [at, victim] : cfg.extra_failures) {
    SPBC_ASSERT_MSG(at > 0, "extra failures require a positive time");
    machine.inject_failure(at, victim);
  }
  for (const auto& [at, victim] : cfg.process_only_failures) {
    SPBC_ASSERT_MSG(at > 0, "process-only failures require a positive time");
    machine.inject_failure(at, victim, mpi::FailureKind::kProcessOnly);
  }
  for (const auto& [at, victim] : cfg.permanent_failures) {
    SPBC_ASSERT_MSG(at > 0, "permanent failures require a positive time");
    machine.inject_failure(at, victim, mpi::FailureKind::kNodePermanent);
  }
  if (!cfg.silent_losses.empty()) {
    auto* spbc = dynamic_cast<core::SpbcProtocol*>(&machine.protocol());
    SPBC_ASSERT_MSG(spbc != nullptr,
                    "silent losses require an SPBC-family protocol");
    for (const auto& [at, salt] : cfg.silent_losses) {
      SPBC_ASSERT_MSG(at > 0, "silent losses require a positive time");
      const uint64_t s = salt;
      machine.engine().at_serial(
          at, [spbc, s] { spbc->staging_mut().corrupt_one_fragment(s); });
    }
  }

  ScenarioResult res;
  res.cluster_of = cluster_of;
  res.run = machine.run();
  res.elapsed = res.run.finish_time;
  res.checksums = std::move(checksums);
  res.profile = trace::profile_machine(machine);
  res.recoveries = machine.recoveries();

  res.log_rate_mb_s.resize(static_cast<size_t>(cfg.nranks), 0.0);
  double sum = 0;
  for (int r = 0; r < cfg.nranks; ++r) {
    double rate = res.elapsed > 0
                      ? static_cast<double>(machine.rank(r).profile().bytes_logged) /
                            1.0e6 / res.elapsed
                      : 0.0;
    res.log_rate_mb_s[static_cast<size_t>(r)] = rate;
    sum += rate;
    res.max_log_rate_mb_s = std::max(res.max_log_rate_mb_s, rate);
  }
  res.avg_log_rate_mb_s = sum / cfg.nranks;
  res.spare_swaps = machine.spare_swaps();
  res.shrink_restarts = machine.shrink_restarts();
  res.tombstone_drops = machine.tombstone_drops();
  if (auto* spbc = dynamic_cast<core::SpbcProtocol*>(&machine.protocol())) {
    res.checkpoints = spbc->checkpoints_taken();
    res.capture_hwm_bytes = spbc->store().capture_hwm_bytes();
    res.capture_forced_waves = spbc->capture_forced_waves();
    res.captures_spilled = spbc->store().captures_spilled();
    res.capture_spilled_bytes = spbc->store().capture_spilled_bytes();
    res.staging = spbc->staging().stats();
    res.reprotections = res.staging.reprotections;
    res.rebuild_retries = res.staging.rebuild_retries;
    res.scrubs_detected = res.staging.scrubs_detected;
    res.scrubs_repaired = res.staging.scrubs_repaired;
    res.silent_losses_injected = res.staging.silent_losses_injected;
    res.corrupt_live_fragments = spbc->staging().corrupt_live_fragments();
    res.bytes_local_written = res.staging.bytes_to_local;
    res.bytes_partner_written =
        res.staging.bytes_to_partner + res.staging.bytes_to_parity;
    res.bytes_pfs_written = res.staging.bytes_to_pfs;
    res.bytes_rebuild_read = res.staging.rebuild_bytes_read;
    res.ckpt_raw_bytes = spbc->store().total_raw_bytes();
    res.ckpt_stored_bytes = spbc->store().total_bytes_written();
    res.delta_snapshots = spbc->store().delta_snapshots();
    res.control = spbc->control_plane().stats();
    for (int r = 0; r < cfg.nranks; ++r) {
      res.log_bytes_reclaimed += spbc->log_of(r).bytes_reclaimed();
      res.log_retained_hwm =
          std::max(res.log_retained_hwm, spbc->log_of(r).bytes_retained_hwm());
    }
  }
  return res;
}

ScenarioResult run_failure_free(ScenarioConfig cfg) {
  cfg.inject_failure = false;
  return run_scenario(cfg);
}

ScenarioResult run_with_failure(ScenarioConfig cfg, sim::Time t_ff, double frac) {
  SPBC_ASSERT(t_ff > 0 && frac > 0 && frac < 1);
  cfg.inject_failure = true;
  cfg.failure_at = t_ff * frac;
  return run_scenario(cfg);
}

}  // namespace spbc::harness

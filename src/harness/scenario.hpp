#pragma once
// Experiment harness: builds a Machine + protocol + workload, runs it
// (optionally with an injected failure), and extracts the measurements the
// paper's tables and figures report.
//
// Methodology mirrors Section 6.1: the clustering configuration comes from a
// short traced run of the application fed to the clustering tool; results
// with SPBC are normalized against the native (unmodified library) run of
// the same configuration; checkpoint I/O is free by default.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "baselines/hydee.hpp"
#include "baselines/presets.hpp"
#include "clustering/partitioner.hpp"
#include "core/spbc.hpp"
#include "mpi/machine.hpp"
#include "trace/profile.hpp"

namespace spbc::harness {

enum class ProtocolKind {
  kNative,             // unmodified library (the paper's "MPICH" bars)
  kSpbc,               // SPBC with id-based matching
  kSpbcNoIds,          // Algorithm 1 without the A->A' transformation
  kHydee,              // HydEE baseline (centralized recovery)
  kGlobalCoordinated,  // one cluster: classic coordinated checkpointing
  kPureLogging,        // one cluster per rank (Table 1, 512-cluster row)
};

const char* protocol_name(ProtocolKind k);

/// Hardware failure domains for correlated multi-node losses (hostile
/// workload matrix; DESIGN.md §16). Geometry over PHYSICAL node ids:
///   kRack:   contiguous blocks of HostileConfig::rack_size nodes
///   kSwitch: leaf switch `s` serves every node with n % switch_count == s
///   kPsu:    a power rail feeds node pairs {2k, 2k+1}
enum class FailureDomain { kRack, kSwitch, kPsu };

/// One correlated domain loss: every node in the domain fails, staggered by
/// HostileConfig::domain_stagger so the control plane's correlation window
/// (ControlPlaneConfig::correlation_window) sees them as correlated doubles.
struct DomainFailure {
  sim::Time at = 0;
  FailureDomain domain = FailureDomain::kRack;
  int index = 0;  // which rack / switch / power rail
};

/// Hostile workload matrix (DESIGN.md §16): one composable knob block per
/// shape, all off by default (a default HostileConfig leaves the run
/// byte-identical). Each shape can also be set directly on the sub-config
/// it forwards to (app_cfg burst_*, machine straggler_*, machine.net
/// partitions, spbc pfs_interference) — this block exists so scenarios and
/// benches can express a whole hostile profile in one place and compose it
/// with any redundancy scheme, spare pool, and reduction config.
struct HostileConfig {
  // Bursty / adversarial traffic phases -> apps::AppConfig::burst_*.
  double burst_factor = 1.0;
  int burst_period = 0;
  int burst_duty = 1;
  // Straggler / slow-node skew -> mpi::MachineConfig::straggler_*.
  double straggler_factor = 1.0;
  double straggler_frac = 0.0;
  uint64_t straggler_seed = 0;
  // Healing network partitions -> net::NetworkParams::partitions.
  std::vector<net::PartitionPhase> partitions;
  // Multi-job PFS interference -> core::SpbcConfig::pfs_interference.
  std::vector<ckpt::PfsInterferencePhase> pfs_interference;
  // Correlated rack / switch / PSU failure domains (expanded into one
  // per-node failure each, staggered by domain_stagger; the machine's
  // default_failure_kind decides severity, so elastic suites get permanent
  // losses for free).
  std::vector<DomainFailure> domain_failures;
  int rack_size = 4;
  int switch_count = 2;
  sim::Time domain_stagger = 0.01;  // < correlation_window (0.05) by default

  bool any() const {
    return burst_factor > 1.0 || straggler_factor > 1.0 ||
           !partitions.empty() || !pfs_interference.empty() ||
           !domain_failures.empty();
  }
};

struct ScenarioConfig {
  std::string app = "MiniGhost";
  int nranks = 64;
  int ranks_per_node = 8;
  int nclusters = 4;  // hierarchical protocols only
  ProtocolKind protocol = ProtocolKind::kSpbc;
  apps::AppConfig app_cfg;
  core::SpbcConfig spbc;
  baselines::HydeeConfig hydee;  // .base is overwritten with `spbc`
  mpi::MachineConfig machine;    // nranks/ranks_per_node overwritten

  /// Cluster map: from the clustering tool (traced short run) or a block
  /// partition of nodes.
  bool use_clustering_tool = true;
  clustering::Objective objective = clustering::Objective::kMinTotalLogged;
  /// Pipeline knobs for the clustering tool (multilevel V-cycle, refinement
  /// budget...). `objective` above overrides `partition.objective` so the
  /// historical field keeps working.
  clustering::PartitionConfig partition;
  int trace_iters = 3;  // iterations of the traced clustering run

  /// Failure injection.
  bool inject_failure = false;
  sim::Time failure_at = 0;  // absolute virtual time
  int victim_rank = 0;
  /// Additional failures (absolute virtual time, victim rank) injected on
  /// top of the primary one — multi-loss redundancy probes kill a second
  /// in-group node while the first recovery is still in flight.
  std::vector<std::pair<sim::Time, int>> extra_failures;
  /// Process-only failures (mpi::FailureKind::kProcessOnly): the cluster's
  /// processes die and restart, but node-local storage survives — the
  /// benign failure class the control plane's estimator must separate from
  /// storage-destroying node losses.
  std::vector<std::pair<sim::Time, int>> process_only_failures;
  /// Permanent node losses (mpi::FailureKind::kNodePermanent): the victim's
  /// node never returns. Its residents are rebound onto a pooled spare
  /// (hot-swap; machine.spare_nodes) or, with the pool exhausted, packed
  /// onto surviving nodes (shrunk restart), and their state is rebuilt from
  /// redundancy shares.
  std::vector<std::pair<sim::Time, int>> permanent_failures;
  /// Silent fragment losses (absolute virtual time, selection salt): at each
  /// time one live staged fragment — picked deterministically by the salt —
  /// is corrupted without killing anything. Only background scrubbing or a
  /// restore-path audit discovers it. Requires an SPBC-family protocol.
  std::vector<std::pair<sim::Time, uint64_t>> silent_losses;

  /// Hostile workload matrix (see HostileConfig). Applied on top of the
  /// sub-configs at run time; a default value changes nothing.
  HostileConfig hostile;
};

struct ScenarioResult {
  mpi::RunResult run;
  sim::Time elapsed = 0;
  std::map<int, uint64_t> checksums;  // validate mode only
  trace::MachineProfile profile;
  std::vector<mpi::RecoveryRecord> recoveries;
  std::vector<int> cluster_of;

  // Per-rank log growth rate in MB/s of virtual time (Table 1).
  std::vector<double> log_rate_mb_s;
  double avg_log_rate_mb_s = 0;
  double max_log_rate_mb_s = 0;
  uint64_t checkpoints = 0;

  // Log reclamation (gc_logs runs): cumulative bytes dropped at commit and
  // the highest per-rank live log footprint observed.
  uint64_t log_bytes_reclaimed = 0;
  uint64_t log_retained_hwm = 0;

  // In-flight capture footprint: highest per-rank live capture bytes
  // (the ROADMAP memory-bound metric) and waves forced by the bound.
  uint64_t capture_hwm_bytes = 0;
  uint64_t capture_forced_waves = 0;

  // Captures spilled to LOCAL storage when bound pressure could not prune
  // past the PFS retention floor (count and bytes).
  uint64_t captures_spilled = 0;
  uint64_t capture_spilled_bytes = 0;

  // Multi-level staging pipeline counters (zeros when staging is off).
  ckpt::StagingStats staging;

  // Per-level bytes-on-wire, lifted from `staging` for the data-reduction
  // benches (what each device/link actually carried, post-reduction):
  // LOCAL device writes, PARTNER traffic (full copies + parity fragments),
  // PFS ingest, and bytes streamed back by rebuild reads.
  uint64_t bytes_local_written = 0;
  uint64_t bytes_partner_written = 0;
  uint64_t bytes_pfs_written = 0;
  uint64_t bytes_rebuild_read = 0;

  // Checkpoint data reduction (store-level): logical capture bytes vs what
  // the store kept after delta encoding + compression, and how many captures
  // were delta (non-full). raw == stored when reduction is off.
  uint64_t ckpt_raw_bytes = 0;
  uint64_t ckpt_stored_bytes = 0;
  uint64_t delta_snapshots = 0;

  // Headline reliability counters, lifted out of `staging` so benches and
  // tests can gate on them without digging through the full stats struct
  // (several of these previously never reached harness summaries).
  uint64_t reprotections = 0;
  uint64_t rebuild_retries = 0;
  uint64_t scrubs_detected = 0;
  uint64_t scrubs_repaired = 0;
  uint64_t silent_losses_injected = 0;
  /// Corrupt fragments still believed live when the run ended (undetected
  /// silent losses; scrub-coverage gates require 0).
  uint64_t corrupt_live_fragments = 0;

  // Elastic-recovery counters (permanent node losses; zeros otherwise):
  // retired nodes whose residents were rebound onto a pooled spare, retired
  // nodes absorbed by packing survivors (pool exhausted), and sends dropped
  // at dead-rank tombstones instead of spinning at a silent rendezvous.
  uint64_t spare_swaps = 0;
  uint64_t shrink_restarts = 0;
  uint64_t tombstone_drops = 0;

  // Per-hostile-shape accounting (zeros when the matrix is off).
  sim::Time straggler_stall_time = 0;    // extra compute on straggler nodes
  uint64_t partition_msgs_held = 0;      // messages held across a partition
  sim::Time partition_stall_time = 0;    // total extra in-fabric delay
  uint64_t pfs_contended_flushes = 0;    // flushes hit by PFS interference
  sim::Time pfs_interference_time = 0;   // extra flush time from contention
  uint64_t pfs_queue_depth_hwm = 0;      // deepest per-node PFS flush queue
  uint64_t domain_failures_injected = 0; // per-node failures from domains

  // Control-plane telemetry (zeros when the control plane is disabled).
  // Includes the online repartitioner's flip counters (control.repartitions,
  // control.ranks_migrated).
  core::ControlPlaneStats control;

  /// Normalized rework time of the first recovery (Fig. 5 / Fig. 6): time to
  /// re-execute the lost work divided by the failure-free time that work
  /// originally took.
  double normalized_rework() const;
};

/// Computes the cluster map for a scenario (traced run + partitioner, or a
/// block partition). Exposed for the clustering ablation bench.
std::vector<int> compute_cluster_map(const ScenarioConfig& cfg);

/// Runs the scenario once. The machine, protocol and workload are built
/// fresh; the config's failure settings apply.
ScenarioResult run_scenario(const ScenarioConfig& cfg);

/// Convenience: failure-free run, returning elapsed virtual time (used to
/// place the failure point and to normalize).
ScenarioResult run_failure_free(ScenarioConfig cfg);

/// Convenience: run with a failure injected at `frac` of the failure-free
/// time `t_ff` (computed by the caller, typically cached).
ScenarioResult run_with_failure(ScenarioConfig cfg, sim::Time t_ff, double frac);

}  // namespace spbc::harness

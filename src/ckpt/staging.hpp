#pragma once
// Asynchronous multi-level checkpoint staging: LOCAL -> redundancy -> PFS.
//
// SCR-style (Moody et al., SC'10) write path for the snapshots the checkpoint
// wave produces. In async mode a member's fiber is charged only the fast
// node-local write; a per-node background drainer then promotes the copy
//   LOCAL  --(scheme-driven fragment placement over net::Network)--> remote
//   remote --(per-node PFS flush queue)--------------------------->  PFS
// overlapped with the application's computation phases. What "remote
// redundancy" means is no longer staging's decision: a pluggable
// ckpt::RedundancyScheme (redundancy.hpp) — SINGLE (none), PARTNER (full
// buddy copy), XOR group (rotating parity), Reed-Solomon (GF(256)
// multi-loss parity) — produces placement plans the chain executes, answers
// recoverability queries, and plans restores (including event-driven group
// rebuilds whose reads ride the real network).
// Recovery reads from the cheapest live source, and when a failure destroyed
// every copy of the committed epoch it falls back to an older epoch (the
// Store's retention floor tracks the PFS frontier so the fallback target
// still exists).
//
// The drainer is event-driven rather than a parked fiber: the engine treats
// "parked fibers + empty event queue" as a deadlock, so a perpetual drainer
// fiber would either wedge run() or require shutdown plumbing through every
// respawn path. A promotion chain is a sequence of engine events gated by
// two serialized resources per node (sim::BandwidthQueue for the local
// device and the PFS ingest share) plus the network itself for fragment
// placements — which makes staging traffic contend with application messages
// on the sender's NIC, exactly the interference a real drain causes.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "ckpt/redundancy.hpp"
#include "ckpt/store.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace spbc::mpi {
class Machine;
}

namespace spbc::ckpt {

/// Residency bits: which levels currently hold a copy of a snapshot. The
/// kAtPartner bit is synthesized from the fragment list: it means "at least
/// one live remote fragment" (a full copy under kPartner, the parity segment
/// under kXorGroup).
enum ResidencyBit : uint8_t {
  kAtLocal = 1u << 0,
  kAtPartner = 1u << 1,
  kAtPfs = 1u << 2,
};

/// How deep one epoch's write should reach. The control plane (see
/// core/control_plane.hpp) plans cheap LOCAL-only epochs frequently,
/// redundancy epochs at the node-loss cadence and PFS epochs rarely
/// (generalized Young/Daly per level); the default reaches everything the
/// configured chain covers. Honored by the async promotion chain.
struct LevelPlan {
  bool redundancy = true;
  bool pfs = true;
};

/// One multi-job PFS interference window (hostile workload matrix): during
/// [start, end) other jobs occupy (1 - available_frac) of the shared PFS
/// ingest bandwidth, so this job's flushes cost 1/available_frac times their
/// dedicated-bandwidth time. Phases are sampled piecewise-constant at flush
/// start (deterministic: the cost is a pure function of the start time).
struct PfsInterferencePhase {
  sim::Time start = 0;
  sim::Time end = 0;
  double available_frac = 1.0;  // clamped to (0, 1] at use
};

struct StagingConfig {
  /// kNone disables staging entirely (the store is free and reliable — the
  /// paper's measurement mode). Otherwise the deepest level of the chain:
  /// kLocal stops at the node-local write, kPartner adds the scheme's remote
  /// fragments, kPfs also drains to the parallel file system. In sync mode
  /// the whole chain is charged to the writing fiber; with `async` only the
  /// LOCAL write is.
  StorageLevel level = StorageLevel::kNone;
  /// Charge the fiber only the LOCAL write and promote in the background.
  bool async = false;
  StorageCostModel model{};
  /// What the remote-redundancy hop places (see redundancy.hpp).
  RedundancyConfig redundancy{};
  /// Background scrub: period of the audit wave that probes every live
  /// fragment's digest for silent loss (0 disables). Requires async staging;
  /// attach() schedules the first wave.
  sim::Time scrub_period = 0;
  /// Pre-build a second, stronger scheme the control plane can escalate to
  /// (e.g. XOR -> RS) without reconfiguring the machine. Epochs written
  /// while escalated pin the escalated scheme for their whole lifetime.
  bool prepare_escalated = false;
  RedundancyConfig escalated{SchemeKind::kReedSolomon, 4, 4, 2};
  /// Multi-job PFS interference windows (empty = dedicated PFS, costs
  /// byte-identical to the pre-hostile pipeline). Appended last so existing
  /// positional initializers stay valid.
  std::vector<PfsInterferencePhase> pfs_interference{};
};

struct StagingStats {
  uint64_t drains_started = 0;
  uint64_t partner_copies = 0;  // completed full-copy fragment placements
  uint64_t pfs_flushes = 0;     // completed -> PFS promotions
  uint64_t drains_aborted = 0;  // every copy died mid-promotion (chain lost)
  /// Promotion hops re-issued from a surviving level after their source (or
  /// destination) copy died mid-flight.
  uint64_t hop_retries = 0;
  /// Chains that stalled short of PFS with a live copy remaining: the
  /// per-snapshot retry budget ran out, or only parity fragments survive
  /// (flushable data requires a full copy; the snapshot stays recoverable
  /// through the scheme's rebuild).
  uint64_t retries_exhausted = 0;
  /// Per-level bytes-on-wire, post-reduction (what each device/link actually
  /// carried): LOCAL device writes, full-copy fragment bytes landed, PFS
  /// ingest. Rebuild reads are counted in rebuild_bytes_read below.
  uint64_t bytes_to_local = 0;
  uint64_t bytes_to_partner = 0;  // full-copy fragment bytes landed
  uint64_t bytes_to_pfs = 0;
  /// Parity fragment placements landed and their bytes (kXorGroup).
  uint64_t parity_fragments = 0;
  uint64_t bytes_to_parity = 0;
  /// Fragments re-encoded onto a replacement host after the original host
  /// node died with a landed fragment (proactive re-protection).
  uint64_t reprotections = 0;
  /// Restores served per direct level; index = StorageLevel - kLocal.
  std::array<uint64_t, 3> restores_by_level{};
  /// Rebuilds completed by an XOR group (no PFS read; the reads really
  /// streamed, so they count even if a concurrent member's failure later
  /// abandoned the recovery pass), the network bytes those rebuilds
  /// streamed, and rebuilds re-planned after a source node died mid-read.
  uint64_t rebuild_restores = 0;
  uint64_t rebuild_bytes_read = 0;
  uint64_t rebuild_retries = 0;
  /// Recoveries that had to fall below the committed epoch because every
  /// copy of it was destroyed.
  uint64_t epoch_fallbacks = 0;
  /// Background scrub: audit waves run, fragment digests probed, corrupt
  /// fragments detected (dropped dead), and repairs issued through the
  /// re-protection encode path.
  uint64_t scrub_waves = 0;
  uint64_t scrub_probes = 0;
  uint64_t scrubs_detected = 0;
  uint64_t scrubs_repaired = 0;
  /// Silent fragment losses injected (corrupt_fragment / corrupt_one_fragment).
  uint64_t silent_losses_injected = 0;
  /// Corrupt fragments the restore path's source checksum caught before any
  /// scrub probe reached them — dropped dead so a restore never serves
  /// silently-lost data.
  uint64_t corrupt_read_drops = 0;
  /// Multi-job PFS interference (hostile workload matrix): flushes whose
  /// start fell inside an interference phase, and the extra flush seconds
  /// the contended bandwidth cost relative to a dedicated PFS.
  uint64_t pfs_contended_flushes = 0;
  double pfs_interference_time = 0;
  /// High-water mark of flushes simultaneously queued on one node's PFS
  /// ingest share (merged by max, not sum): interference backs this up.
  uint64_t pfs_queue_depth_hwm = 0;
};

class StagingArea : public ResidencyView {
 public:
  explicit StagingArea(StagingConfig cfg) : cfg_(cfg) {}

  void attach(mpi::Machine& machine);

  bool enabled() const { return cfg_.level != StorageLevel::kNone; }
  bool async() const { return enabled() && cfg_.async; }
  const StagingConfig& config() const { return cfg_; }
  const RedundancyScheme& scheme() const { return *scheme_; }

  /// The scheme that encodes NEW epochs (escalation switches it; epochs
  /// already written keep the scheme that encoded them).
  const RedundancyScheme& active_scheme() const;
  bool scheme_escalated() const { return active_scheme_ != 0; }
  /// Serial context only: route future epochs through the escalated (or
  /// base) scheme. No-op unless `prepare_escalated` built one at attach.
  void set_scheme_escalated(bool escalated);

  /// The buddy rank whose node hosts this rank's PARTNER copies: the same
  /// node-local slot on the nearest node of a *different cluster* (failure
  /// domain), falling back to the nearest distinct node when the machine is
  /// a single cluster. -1 on single-node topologies (no partner level).
  /// Resolved lazily because the cluster map is set after attach().
  int partner_of(int rank) const;

  /// Registers the snapshot of (rank, epoch) with the staging pipeline and
  /// returns the virtual-time cost to charge the writing fiber: the full
  /// cost of `level` in sync mode, only the LOCAL write in async mode (the
  /// promotion chain then runs in the background). 0 when disabled. The
  /// plan overload lets the control plane end this epoch's chain early
  /// (LOCAL-only / no-PFS epochs). `bytes` is the POST-reduction (encoded)
  /// size — every level of the chain ships the reduced bytes; `chain_base`
  /// is the epoch of the full capture anchoring this epoch's delta chain
  /// (ckpt::SaveInfo::chain_base; == epoch for a full capture), which makes
  /// recoverability and restore planning chain-aware.
  sim::Time write(int rank, uint64_t epoch, uint64_t bytes) {
    return write(rank, epoch, bytes, LevelPlan{});
  }
  sim::Time write(int rank, uint64_t epoch, uint64_t bytes, LevelPlan plan) {
    return write(rank, epoch, bytes, plan, epoch);
  }
  sim::Time write(int rank, uint64_t epoch, uint64_t bytes, LevelPlan plan,
                  uint64_t chain_base);

  /// Residency mask (ResidencyBit) of a snapshot; 0 = unknown or all copies
  /// lost. Always 0 when staging is disabled.
  uint8_t levels(int rank, uint64_t epoch) const;

  /// Can this snapshot back a restore? True unconditionally when staging is
  /// disabled (the store is then free and reliable, as in the paper's
  /// measurement mode). Scheme-aware: an XOR snapshot with a dead LOCAL copy
  /// is recoverable while its group can rebuild it or the PFS holds it.
  /// Chain-aware: a delta epoch is recoverable only if EVERY element of its
  /// base-plus-deltas chain is — restore has to materialize all of them.
  bool recoverable(int rank, uint64_t epoch) const;

  /// The epochs a restore of (rank, epoch) must read, ascending: the chain
  /// base through `epoch` for a delta capture, just {epoch} for a full one
  /// (or when the entry is unknown — the caller's plan/recoverable queries
  /// report the failure).
  std::vector<uint64_t> restore_chain(int rank, uint64_t epoch) const;

  /// The scheme's cheapest live reconstruction of (rank, epoch).
  /// Source::kNone when staging is disabled or every copy is gone.
  RestorePlan plan_restore(int rank, uint64_t epoch) const;

  /// Records which source served a restore (metrics).
  void note_restore(const RestorePlan& plan);

  /// Executes a restore whose plan requires work beyond a direct read: XOR
  /// rebuild reads are submitted to net::Network (they contend with real
  /// traffic) and checked against source-node storage generations; a source
  /// death mid-read re-plans from the surviving fragments (bounded retries).
  /// A delta epoch restores its whole chain (base + every delta, each from
  /// its own cheapest source; reads overlap). `done(ok)` fires in event
  /// context; ok=false means some chain element lost every reconstruction
  /// path and the caller must fall back an epoch.
  void execute_restore(int rank, uint64_t epoch,
                       std::function<void(bool)> done);

  void note_epoch_fallback() { ++stats_rows_[0].epoch_fallbacks; }

  /// Drops corrupt-but-believed-live fragments of (rank, epoch) — and of
  /// every element of its delta chain — before a restore trusts them
  /// ("audit on read": the restore path checksums its source, so silent loss
  /// is discovered now at the latest and a restore never falsely succeeds
  /// from it). Recovery orchestration calls it before the belief-side
  /// recoverable()/plan_restore() queries.
  void audit_for_restore(int rank, uint64_t epoch);

  /// Silent-loss injection (tests/benches): mark a live fragment of
  /// (rank, epoch) corrupt — residency keeps believing it until an audit
  /// (scrub probe or restore-path read) discovers the loss. False when no
  /// such live, healthy fragment exists.
  bool corrupt_fragment(int rank, uint64_t epoch, size_t frag_idx);
  /// Deterministically corrupts one live fragment picked by `salt` over the
  /// row-ordered candidate list (serial context). False when none are live.
  bool corrupt_one_fragment(uint64_t salt);
  /// Fragments currently corrupt yet still believed live (undetected silent
  /// losses) — benches gate on this reaching 0.
  uint64_t corrupt_live_fragments() const;

  /// One background audit wave: every live fragment's digest streams from
  /// its host to the owner over the real network (it contends like any
  /// other transfer); a digest mismatch drops the fragment dead and
  /// re-encodes it through the re-protection path while the LOCAL data
  /// still exists. attach() self-schedules a wave every
  /// `StagingConfig::scrub_period` while the machine has live fibers; tests
  /// may also drive waves manually.
  void run_scrub_wave();

  /// Highest epoch of `rank` flushed to PFS (0 = none). Monotonic — PFS
  /// copies survive every failure — and therefore usable as the Store's
  /// retention floor: epochs at or above it must be kept for fallback.
  uint64_t pfs_frontier(int rank) const;

  /// A node's storage died with its ranks: LOCAL copies of its residents
  /// and fragments it hosted are lost, and promotion chains reading from
  /// them abort when their next hop fires. Entries that still hold a live
  /// LOCAL copy re-encode their lost fragments onto a replacement host
  /// (proactive re-protection) once the failure batch has landed.
  void invalidate_node(int node);

  /// Occupies the rank's node-local device with a background write of
  /// `bytes` (capture spill: in-flight captures pushed out of memory onto
  /// LOCAL storage — see SpbcConfig::capture_bytes_bound).
  void charge_local_spill(int rank, uint64_t bytes);

  /// Pruning hooks mirroring the Store's epoch bookkeeping.
  void drop_epochs_above(int rank, uint64_t epoch);
  void prune_epochs_below(int rank, uint64_t epoch);

  /// Migration flip (serial context): re-keys the rank's entry `from` to
  /// epoch number `to` so the snapshot carried across clusters lines up with
  /// the destination's epoch sequence. The PFS frontier follows the rename.
  void rename_epoch(int rank, uint64_t from, uint64_t to);

  /// The machine's PHYSICAL rank->node binding changed (spare hot-swap,
  /// shrunk restart, cluster migration): memoized scheme host choices
  /// re-derive; logical group structure stays pinned (see
  /// RedundancyScheme::on_topology_change).
  void on_topology_change();

  /// Merged view of the per-rank stat rows (rows keep concurrent shard
  /// events off shared counters). Returned by value: a snapshot.
  StagingStats stats() const;

  // ---- ResidencyView (consulted by the scheme) --------------------------
  bool has_local(int rank, uint64_t epoch) const override;
  bool has_pfs(int rank, uint64_t epoch) const override;
  const std::vector<Fragment>* fragments(int rank,
                                         uint64_t epoch) const override;
  uint64_t snapshot_bytes(int rank, uint64_t epoch) const override;
  bool node_in_service(int node) const override;

 private:
  struct Entry {
    uint64_t bytes = 0;        // encoded (post-reduction) size
    /// Full-capture epoch anchoring this epoch's delta chain (== the entry's
    /// own epoch for a full capture / with reduction off).
    uint64_t chain_base = 0;
    uint8_t levels = 0;        // kAtLocal / kAtPfs (kAtPartner synthesized)
    uint8_t retries_left = 3;  // per-snapshot budget for re-issued hops
    /// Index into {base, escalated} of the scheme that encoded this epoch;
    /// pinned at write() so liveness/restore/re-protection keep using it
    /// even after the control plane switches the active scheme.
    uint8_t scheme_idx = 0;
    /// The epoch's level plan (see LevelPlan): false ends the async chain
    /// before the redundancy hop / the PFS flush.
    bool want_redundancy = true;
    bool want_pfs = true;
    uint64_t chain_id = 0;     // stale-callback guard across rollback+rewrite
    std::vector<Fragment> fragments;
  };

  Entry* find(int rank, uint64_t epoch);
  const Entry* find(int rank, uint64_t epoch) const;
  /// Generation of a node's storage contents; bumped when the node dies. A
  /// promotion hop captures the source node's generation when it starts and
  /// aborts if it changed by the time the hop completes.
  uint64_t node_gen(int node) const;
  /// Runs the scheme's encode step and places the missing fragments; when
  /// nothing (more) is placeable the chain proceeds straight to the PFS
  /// flush. `then_flush=false` places fragments without continuing the chain
  /// (re-protection: the flush, if any, is already running independently).
  void start_protection(int rank, uint64_t epoch, bool then_flush);
  void place_fragment(int rank, uint64_t epoch, const PlacementStep& step,
                      std::shared_ptr<int> pending, bool then_flush);
  /// source_frag: index into the entry's fragment list whose copy feeds the
  /// flush, or -1 for the home node's LOCAL copy.
  void start_pfs_flush(int rank, uint64_t epoch, int from_node,
                       int source_frag);
  void finish_pfs(int rank, uint64_t epoch);
  /// A promotion hop found its source (or destination) copy dead: re-issue
  /// the rest of the chain from the cheapest level that still holds a copy
  /// (usually LOCAL), or count the chain aborted when nothing survives.
  void retry_from_surviving(int rank, uint64_t epoch);
  void do_restore(int rank, uint64_t epoch, std::function<void(bool)> done,
                  int budget);
  /// One chain element's scheme-level recoverability (PFS copy or the
  /// encoding scheme can reconstruct it without one).
  bool element_recoverable(const Entry& e, int rank, uint64_t epoch) const;
  /// The scheme an entry was encoded under (Entry::scheme_idx).
  const RedundancyScheme& scheme_of(const Entry& e) const;
  /// One scrub digest probe of (rank, epoch)'s fragment `frag_idx`.
  void scrub_probe(int rank, uint64_t epoch, size_t frag_idx);
  /// Self-rescheduling wave driver; stops when the machine wound down (a
  /// forever-self-rescheduling event would keep Engine::run from ending).
  void schedule_scrub();

  /// The per-rank stat row a mutation goes to: shard-event code touches only
  /// its own rank's row; serial-context code may touch any (it runs alone).
  StagingStats& srow(int rank) {
    return stats_rows_[static_cast<size_t>(rank) < stats_rows_.size()
                           ? static_cast<size_t>(rank)
                           : 0];
  }

  StagingConfig cfg_;
  mpi::Machine* machine_ = nullptr;
  std::unique_ptr<RedundancyScheme> scheme_;
  /// The stronger scheme escalation switches to (prepare_escalated).
  std::unique_ptr<RedundancyScheme> escalated_scheme_;
  /// 0 = base, 1 = escalated; written in serial context only, read by the
  /// write path after the serial barrier (the node_storage_gen_ idiom).
  uint8_t active_scheme_ = 0;
  /// Optional serial-context callback run at each scheduled scrub wave —
  /// the control plane's periodic (time-based, not failure-driven) hook.
  std::function<void(sim::Time)> scrub_tick_;
  /// Single-shot kick-off of the scrub cadence (first staged write).
  std::atomic<bool> scrub_started_{false};

 public:
  void set_scrub_tick(std::function<void(sim::Time)> tick) {
    scrub_tick_ = std::move(tick);
  }

 private:
  // Per-rank entry rows (epoch -> Entry): a row is mutated only from its
  // rank's shard (writes, drain-chain callbacks routed home) or from serial
  // recovery context, so concurrent shard threads never share one.
  std::vector<std::map<uint64_t, Entry>> entries_;
  std::vector<uint64_t> node_storage_gen_;  // bumped in serial context only
  // Dedups the per-rank kill notifications; atomic because scheme encodes on
  // any shard consult node_in_service() while a resident's write (its own
  // shard) clears the flag.
  std::vector<std::atomic<uint8_t>> node_down_;
  std::vector<sim::BandwidthQueue> node_local_q_;  // local snapshot device
  std::vector<sim::BandwidthQueue> node_pfs_q_;    // per-node PFS ingest share
  /// Flushes queued-or-running per node's PFS share (depth gauge; mutated
  /// from the owning ranks' shard — co-resident ranks share a shard under
  /// node colocation — or serial context).
  std::vector<int> pfs_q_depth_;
  /// Fraction of the PFS ingest bandwidth available to this job at `now`
  /// (pfs_interference phases; 1.0 outside every phase).
  double pfs_available_frac(sim::Time now) const;
  std::vector<uint64_t> pfs_frontier_;
  std::atomic<uint64_t> next_chain_id_{0};
  std::vector<StagingStats> stats_rows_ = std::vector<StagingStats>(1);
};

}  // namespace spbc::ckpt

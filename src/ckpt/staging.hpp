#pragma once
// Asynchronous multi-level checkpoint staging: LOCAL -> PARTNER -> PFS.
//
// SCR-style (Moody et al., SC'10) write path for the snapshots the checkpoint
// wave produces. In async mode a member's fiber is charged only the fast
// node-local write; a per-node background drainer then promotes the copy
//   LOCAL  --(cross-failure-domain copy over net::Network)-->  PARTNER
//   PARTNER --(per-node PFS flush queue)------------------->   PFS
// overlapped with the application's computation phases. Each level adds
// redundancy: a snapshot is recoverable from LOCAL while its node survives,
// from PARTNER while the buddy node survives, and from PFS always. Recovery
// reads from the cheapest live level, and when a failure destroyed every
// copy of the committed epoch it falls back to an older epoch (the Store's
// retention floor tracks the PFS frontier so the fallback target still
// exists).
//
// The drainer is event-driven rather than a parked fiber: the engine treats
// "parked fibers + empty event queue" as a deadlock, so a perpetual drainer
// fiber would either wedge run() or require shutdown plumbing through every
// respawn path. A promotion chain is a sequence of engine events gated by
// two serialized resources per node (sim::BandwidthQueue for the local
// device and the PFS ingest share) plus the network itself for the partner
// copy — which makes staging traffic contend with application messages on
// the sender's NIC, exactly the interference a real drain causes.

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ckpt/store.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

namespace spbc::mpi {
class Machine;
}

namespace spbc::ckpt {

/// Residency bits: which levels currently hold a copy of a snapshot.
enum ResidencyBit : uint8_t {
  kAtLocal = 1u << 0,
  kAtPartner = 1u << 1,
  kAtPfs = 1u << 2,
};

struct StagingConfig {
  /// kNone disables staging entirely (the store is free and reliable — the
  /// paper's measurement mode). Otherwise: the level written synchronously,
  /// or the final drain target when `async` is set.
  StorageLevel level = StorageLevel::kNone;
  /// Charge the fiber only the LOCAL write and promote in the background.
  bool async = false;
  StorageCostModel model{};
};

struct StagingStats {
  uint64_t drains_started = 0;
  uint64_t partner_copies = 0;  // completed LOCAL -> PARTNER promotions
  uint64_t pfs_flushes = 0;     // completed -> PFS promotions
  uint64_t drains_aborted = 0;  // every copy died mid-promotion (chain lost)
  /// Promotion hops re-issued from a surviving level after their source (or
  /// destination) copy died mid-flight.
  uint64_t hop_retries = 0;
  /// Chains that stalled short of PFS with a live copy remaining because
  /// the per-snapshot retry budget ran out (snapshot still recoverable).
  uint64_t retries_exhausted = 0;
  uint64_t bytes_to_partner = 0;
  uint64_t bytes_to_pfs = 0;
  /// Restores served per level; index = StorageLevel - kLocal.
  std::array<uint64_t, 3> restores_by_level{};
  /// Recoveries that had to fall below the committed epoch because every
  /// copy of it was destroyed.
  uint64_t epoch_fallbacks = 0;
};

class StagingArea {
 public:
  explicit StagingArea(StagingConfig cfg) : cfg_(cfg) {}

  void attach(mpi::Machine& machine);

  bool enabled() const { return cfg_.level != StorageLevel::kNone; }
  bool async() const { return enabled() && cfg_.async; }
  const StagingConfig& config() const { return cfg_; }

  /// The buddy rank whose node hosts this rank's PARTNER copies: the same
  /// node-local slot on the nearest node of a *different cluster* (failure
  /// domain), falling back to the nearest distinct node when the machine is
  /// a single cluster. -1 on single-node topologies (no partner level).
  /// Resolved lazily because the cluster map is set after attach().
  int partner_of(int rank) const;

  /// Registers the snapshot of (rank, epoch) with the staging pipeline and
  /// returns the virtual-time cost to charge the writing fiber: the full
  /// cost of `level` in sync mode, only the LOCAL write in async mode (the
  /// promotion chain then runs in the background). 0 when disabled.
  sim::Time write(int rank, uint64_t epoch, uint64_t bytes);

  /// Residency mask (ResidencyBit) of a snapshot; 0 = unknown or all copies
  /// lost. Always 0 when staging is disabled.
  uint8_t levels(int rank, uint64_t epoch) const;

  /// Cheapest level the snapshot is currently readable from.
  std::optional<StorageLevel> best_level(int rank, uint64_t epoch) const;

  /// Can this snapshot back a restore? True unconditionally when staging is
  /// disabled (the store is then free and reliable, as in the paper's
  /// measurement mode).
  bool recoverable(int rank, uint64_t epoch) const;

  /// Read cost from the cheapest live level (0 when disabled or lost).
  sim::Time read_cost(int rank, uint64_t epoch) const;

  /// Records which level served a restore (metrics) and returns it.
  std::optional<StorageLevel> note_restore(int rank, uint64_t epoch);
  void note_epoch_fallback() { ++stats_.epoch_fallbacks; }

  /// Highest epoch of `rank` flushed to PFS (0 = none). Monotonic — PFS
  /// copies survive every failure — and therefore usable as the Store's
  /// retention floor: epochs at or above it must be kept for fallback.
  uint64_t pfs_frontier(int rank) const;

  /// A node's storage died with its ranks: LOCAL copies of its residents
  /// and PARTNER copies it hosted are lost, and promotion chains reading
  /// from them abort when their next hop fires.
  void invalidate_node(int node);

  /// Pruning hooks mirroring the Store's epoch bookkeeping.
  void drop_epochs_above(int rank, uint64_t epoch);
  void prune_epochs_below(int rank, uint64_t epoch);

  const StagingStats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t bytes = 0;
    uint8_t levels = 0;
    uint8_t retries_left = 3;  // per-snapshot budget for re-issued hops
  };

  Entry* find(int rank, uint64_t epoch);
  const Entry* find(int rank, uint64_t epoch) const;
  /// Generation of a node's storage contents; bumped when the node dies. A
  /// promotion hop captures the source node's generation when it starts and
  /// aborts if it changed by the time the hop completes.
  uint64_t node_gen(int node) const;
  void start_partner_copy(int rank, uint64_t epoch);
  void start_pfs_flush(int rank, uint64_t epoch, int from_node,
                       uint8_t source_bit);
  void finish_pfs(int rank, uint64_t epoch);
  /// A promotion hop found its source (or destination) copy dead: re-issue
  /// the rest of the chain from the cheapest level that still holds a copy
  /// (usually LOCAL), or count the chain aborted when nothing survives.
  void retry_from_surviving(int rank, uint64_t epoch);

  StagingConfig cfg_;
  mpi::Machine* machine_ = nullptr;
  std::map<std::pair<int, uint64_t>, Entry> entries_;
  std::vector<uint64_t> node_storage_gen_;
  std::vector<bool> node_down_;  // dedups the per-rank kill notifications
  std::vector<sim::BandwidthQueue> node_local_q_;  // local snapshot device
  std::vector<sim::BandwidthQueue> node_pfs_q_;    // per-node PFS ingest share
  std::vector<uint64_t> pfs_frontier_;
  mutable std::vector<int> partner_;  // lazy: -2 unresolved, -1 none
  StagingStats stats_;
};

}  // namespace spbc::ckpt

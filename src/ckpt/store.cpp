#include "ckpt/store.hpp"

#include "util/assert.hpp"

namespace spbc::ckpt {

sim::Time StorageCostModel::write_time(StorageLevel level, uint64_t bytes) const {
  switch (level) {
    case StorageLevel::kNone:
      return 0.0;
    case StorageLevel::kLocal:
      return local_latency + static_cast<double>(bytes) / local_bw;
    case StorageLevel::kPartner:
      return base_latency + static_cast<double>(bytes) / partner_bw;
    case StorageLevel::kPfs:
      return base_latency + static_cast<double>(bytes) / pfs_bw;
  }
  return 0.0;
}

sim::Time StorageCostModel::read_time(StorageLevel level, uint64_t bytes) const {
  // Reads are symmetric in this model.
  return write_time(level, bytes);
}

void Store::save(int rank, Snapshot snap) {
  Row& r = row(rank);
  r.bytes_written += snap.bytes.size();
  ++r.snapshots;
  r.snaps[snap.epoch] = std::move(snap);
}

bool Store::has(int rank) const {
  const Row* r = row(rank);
  return r && !r->snaps.empty();
}

const Snapshot& Store::latest(int rank) const {
  const Row* r = row(rank);
  SPBC_ASSERT_MSG(r && !r->snaps.empty(), "no checkpoint for rank " << rank);
  return r->snaps.rbegin()->second;
}

bool Store::has_epoch(int rank, uint64_t epoch) const {
  const Row* r = row(rank);
  return r && r->snaps.count(epoch) > 0;
}

const Snapshot& Store::at_epoch(int rank, uint64_t epoch) const {
  const Row* r = row(rank);
  SPBC_ASSERT_MSG(r && r->snaps.count(epoch) > 0,
                  "no epoch-" << epoch << " checkpoint for rank " << rank);
  return r->snaps.at(epoch);
}

void Store::release_captures(Row& r, uint64_t bytes) {
  r.capture_live -= bytes < r.capture_live ? bytes : r.capture_live;
}

void Store::drop_epochs_above(int rank, uint64_t epoch) {
  Row& r = row(rank);
  r.snaps.erase(r.snaps.upper_bound(epoch), r.snaps.end());
  auto cap = r.caps.upper_bound(epoch);
  while (cap != r.caps.end()) {
    for (const CapturedMsg& cm : cap->second)
      if (!cm.spilled) release_captures(r, cm.env.bytes);
    cap = r.caps.erase(cap);
  }
}

void Store::prune_epochs_below(int rank, uint64_t epoch) {
  Row& r = row(rank);
  r.snaps.erase(r.snaps.begin(), r.snaps.lower_bound(epoch));
  auto cap = r.caps.begin();
  while (cap != r.caps.end() && cap->first < epoch) {
    for (const CapturedMsg& cm : cap->second)
      if (!cm.spilled) release_captures(r, cm.env.bytes);
    cap = r.caps.erase(cap);
  }
}

void Store::rename_epoch(int rank, uint64_t from, uint64_t to) {
  if (from == to) return;
  Row& r = row(rank);
  auto snap = r.snaps.find(from);
  if (snap != r.snaps.end()) {
    Snapshot moved = std::move(snap->second);
    moved.epoch = to;
    r.snaps.erase(snap);
    r.snaps[to] = std::move(moved);
  }
  auto cap = r.caps.find(from);
  if (cap != r.caps.end()) {
    std::vector<CapturedMsg> moved = std::move(cap->second);
    r.caps.erase(cap);
    r.caps[to] = std::move(moved);
  }
}

uint64_t Store::spill_captures(int rank, uint64_t target_bytes) {
  Row& r = row(rank);
  if (r.capture_live <= target_bytes) return 0;
  uint64_t spilled = 0;
  // Oldest epochs first: they have waited longest for a commit to reclaim
  // them, so they are the least likely to leave memory any other way.
  for (auto cap = r.caps.begin();
       cap != r.caps.end() && r.capture_live > target_bytes; ++cap) {
    for (CapturedMsg& cm : cap->second) {
      if (cm.spilled) continue;
      cm.spilled = true;
      const uint64_t b =
          cm.env.bytes < r.capture_live ? cm.env.bytes : r.capture_live;
      r.capture_live -= b;
      spilled += cm.env.bytes;
      ++r.captures_spilled;
      if (r.capture_live <= target_bytes) break;
    }
  }
  r.capture_spilled_bytes += spilled;
  return spilled;
}

uint64_t Store::record_in_flight(int rank, uint64_t first_epoch, uint64_t last_epoch,
                                 const mpi::Envelope& env, const mpi::Payload& payload) {
  auto shared = std::make_shared<const mpi::Payload>(payload);
  Row& r = row(rank);
  for (uint64_t e = first_epoch; e <= last_epoch; ++e) {
    r.caps[e].push_back(CapturedMsg{env, shared});
    ++r.in_flight_captured;
    r.capture_live += env.bytes;
  }
  r.capture_hwm = r.capture_live > r.capture_hwm ? r.capture_live : r.capture_hwm;
  return r.capture_live;
}

uint64_t Store::capture_live_bytes(int rank) const {
  const Row* r = row(rank);
  return r ? r->capture_live : 0;
}

const std::vector<CapturedMsg>& Store::in_flight(int rank, uint64_t epoch) const {
  static const std::vector<CapturedMsg> kEmpty;
  const Row* r = row(rank);
  if (!r) return kEmpty;
  auto it = r->caps.find(epoch);
  return it == r->caps.end() ? kEmpty : it->second;
}

}  // namespace spbc::ckpt

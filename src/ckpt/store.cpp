#include "ckpt/store.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/codec.hpp"

namespace spbc::ckpt {

sim::Time StorageCostModel::write_time(StorageLevel level, uint64_t bytes) const {
  switch (level) {
    case StorageLevel::kNone:
      return 0.0;
    case StorageLevel::kLocal:
      return local_latency + static_cast<double>(bytes) / local_bw;
    case StorageLevel::kPartner:
      return base_latency + static_cast<double>(bytes) / partner_bw;
    case StorageLevel::kPfs:
      return base_latency + static_cast<double>(bytes) / pfs_bw;
  }
  return 0.0;
}

sim::Time StorageCostModel::read_time(StorageLevel level, uint64_t bytes) const {
  // Reads are symmetric in this model.
  return write_time(level, bytes);
}

SaveInfo Store::save(int rank, Snapshot snap, bool force_full) {
  Row& r = row(rank);
  SaveInfo info;
  info.raw_bytes = snap.bytes.size();

  StoredSnapshot s;
  s.taken_at = snap.taken_at;
  s.epoch = snap.epoch;
  s.raw_size = snap.bytes.size();
  s.chain_base = snap.epoch;

  const uint32_t bb = reduction_.block_bytes ? reduction_.block_bytes : 4096;
  const uint32_t nblocks =
      static_cast<uint32_t>((snap.bytes.size() + bb - 1) / bb);
  info.blocks_total = nblocks;
  info.blocks_changed = nblocks;

  std::vector<unsigned char> payload;  // what compression (if any) sees
  bool have_payload = false;
  if (reduction_.delta) {
    s.block_bytes = bb;
    s.block_hashes = hash_blocks(snap.bytes, bb);
    // Delta eligibility: the immediately-preceding epoch is still stored at
    // the same granularity, and appending to its chain stays within the
    // full-capture stride. A replaced same-epoch snapshot re-diffs against
    // the same predecessor.
    const StoredSnapshot* prev = nullptr;
    if (!force_full && snap.epoch > 0) {
      auto it = r.snaps.find(snap.epoch - 1);
      if (it != r.snaps.end() && it->second.block_bytes == bb) prev = &it->second;
    }
    if (prev != nullptr &&
        (reduction_.full_stride == 0 ||
         snap.epoch - prev->chain_base < reduction_.full_stride)) {
      const size_t prev_n = prev->block_hashes.size();
      for (uint32_t b = 0; b < nblocks; ++b) {
        if (b < prev_n && prev->block_hashes[b] == s.block_hashes[b]) continue;
        s.changed.push_back(b);
      }
      if (s.changed.size() < nblocks) {
        s.chain_base = prev->chain_base;
        info.blocks_changed = static_cast<uint32_t>(s.changed.size());
        payload.reserve(s.changed.size() * bb);
        for (uint32_t b : s.changed) {
          const uint64_t off = static_cast<uint64_t>(b) * bb;
          const uint64_t len = std::min<uint64_t>(bb, s.raw_size - off);
          payload.insert(payload.end(), snap.bytes.begin() + static_cast<long>(off),
                         snap.bytes.begin() + static_cast<long>(off + len));
        }
        have_payload = true;
      } else {
        s.changed.clear();  // everything changed: a full capture is smaller
      }
    }
  }
  if (!have_payload) payload = std::move(snap.bytes);

  if (reduction_.compress) {
    std::vector<unsigned char> enc = util::codec::lz_compress(payload);
    if (enc.size() < payload.size()) {
      s.compressed = true;
      s.enc = std::move(enc);
    }
  }
  if (!s.compressed) s.enc = std::move(payload);

  info.stored_bytes = s.enc.size();
  info.chain_base = s.chain_base;
  info.full = s.full();
  r.bytes_written += info.stored_bytes;
  r.raw_bytes += info.raw_bytes;
  ++r.snapshots;
  if (!info.full) ++r.delta_snapshots;
  r.snaps[s.epoch] = std::move(s);
  return info;
}

bool Store::has(int rank) const {
  const Row* r = row(rank);
  return r && !r->snaps.empty();
}

const StoredSnapshot& Store::latest(int rank) const {
  const Row* r = row(rank);
  SPBC_ASSERT_MSG(r && !r->snaps.empty(), "no checkpoint for rank " << rank);
  return r->snaps.rbegin()->second;
}

bool Store::has_epoch(int rank, uint64_t epoch) const {
  const Row* r = row(rank);
  return r && r->snaps.count(epoch) > 0;
}

const StoredSnapshot& Store::at_epoch(int rank, uint64_t epoch) const {
  const Row* r = row(rank);
  SPBC_ASSERT_MSG(r && r->snaps.count(epoch) > 0,
                  "no epoch-" << epoch << " checkpoint for rank " << rank);
  return r->snaps.at(epoch);
}

std::vector<unsigned char> Store::decode_payload(const StoredSnapshot& s) {
  if (!s.compressed) return s.enc;
  // Delta payload size: full blocks plus a possibly-short tail block.
  uint64_t out_n = s.raw_size;
  if (!s.full()) {
    out_n = 0;
    for (uint32_t b : s.changed) {
      const uint64_t off = static_cast<uint64_t>(b) * s.block_bytes;
      out_n += std::min<uint64_t>(s.block_bytes, s.raw_size - off);
    }
  }
  return util::codec::lz_decompress(s.enc, out_n);
}

const std::vector<unsigned char>& Store::materialize(
    int rank, uint64_t epoch, std::vector<unsigned char>& scratch) const {
  const StoredSnapshot& head = at_epoch(rank, epoch);
  if (head.full() && !head.compressed) return head.enc;  // raw path: no copy
  const StoredSnapshot& base = at_epoch(rank, head.chain_base);
  SPBC_ASSERT_MSG(base.full(), "chain base epoch " << head.chain_base
                                                   << " of rank " << rank
                                                   << " is not a full capture");
  scratch = decode_payload(base);
  // Roll the deltas forward, base + 1 .. epoch. Every element must still be
  // stored: prune_epochs_below never removes a live chain's interior.
  for (uint64_t e = head.chain_base + 1; e <= epoch; ++e) {
    const StoredSnapshot& d = at_epoch(rank, e);
    SPBC_ASSERT_MSG(d.chain_base == head.chain_base,
                    "broken delta chain at epoch " << e << " of rank " << rank);
    const std::vector<unsigned char> payload = decode_payload(d);
    scratch.resize(d.raw_size);
    uint64_t src = 0;
    for (uint32_t b : d.changed) {
      const uint64_t off = static_cast<uint64_t>(b) * d.block_bytes;
      const uint64_t len = std::min<uint64_t>(d.block_bytes, d.raw_size - off);
      SPBC_ASSERT(src + len <= payload.size());
      std::copy(payload.begin() + static_cast<long>(src),
                payload.begin() + static_cast<long>(src + len),
                scratch.begin() + static_cast<long>(off));
      src += len;
    }
  }
  SPBC_ASSERT_MSG(scratch.size() == head.raw_size,
                  "materialized size mismatch for rank " << rank);
  return scratch;
}

void Store::release_captures(Row& r, uint64_t bytes) {
  r.capture_live -= bytes < r.capture_live ? bytes : r.capture_live;
}

void Store::drop_epochs_above(int rank, uint64_t epoch) {
  Row& r = row(rank);
  r.snaps.erase(r.snaps.upper_bound(epoch), r.snaps.end());
  auto cap = r.caps.upper_bound(epoch);
  while (cap != r.caps.end()) {
    for (const CapturedMsg& cm : cap->second)
      if (!cm.spilled) release_captures(r, cm.env.bytes);
    cap = r.caps.erase(cap);
  }
}

uint64_t Store::prune_epochs_below(int rank, uint64_t epoch) {
  Row& r = row(rank);
  // Chain clamp: the oldest epoch we keep may be a delta whose base (and
  // interior deltas) sit below the nominal floor — they back its restore, so
  // they survive too. chain_base is monotone non-decreasing in epoch, so the
  // first retained epoch's base bounds every later one's.
  uint64_t floor = epoch;
  auto it = r.snaps.lower_bound(epoch);
  if (it != r.snaps.end()) floor = std::min(floor, it->second.chain_base);
  r.snaps.erase(r.snaps.begin(), r.snaps.lower_bound(floor));
  auto cap = r.caps.begin();
  while (cap != r.caps.end() && cap->first < floor) {
    for (const CapturedMsg& cm : cap->second)
      if (!cm.spilled) release_captures(r, cm.env.bytes);
    cap = r.caps.erase(cap);
  }
  return floor;
}

void Store::rename_epoch(int rank, uint64_t from, uint64_t to) {
  if (from == to) return;
  Row& r = row(rank);
  auto snap = r.snaps.find(from);
  if (snap != r.snaps.end()) {
    StoredSnapshot moved = std::move(snap->second);
    // Migration forces the boundary/pin epochs full at save time precisely
    // so this re-key cannot orphan a delta from its chain.
    SPBC_ASSERT_MSG(moved.full(), "rename_epoch on a delta capture (rank "
                                      << rank << ", epoch " << from << ")");
    moved.epoch = to;
    moved.chain_base = to;
    r.snaps.erase(snap);
    r.snaps[to] = std::move(moved);
  }
  auto cap = r.caps.find(from);
  if (cap != r.caps.end()) {
    std::vector<CapturedMsg> moved = std::move(cap->second);
    r.caps.erase(cap);
    r.caps[to] = std::move(moved);
  }
}

uint64_t Store::spill_captures(int rank, uint64_t target_bytes) {
  Row& r = row(rank);
  if (r.capture_live <= target_bytes) return 0;
  uint64_t spilled = 0;
  // Oldest epochs first: they have waited longest for a commit to reclaim
  // them, so they are the least likely to leave memory any other way.
  for (auto cap = r.caps.begin();
       cap != r.caps.end() && r.capture_live > target_bytes; ++cap) {
    for (CapturedMsg& cm : cap->second) {
      if (cm.spilled) continue;
      cm.spilled = true;
      const uint64_t b =
          cm.env.bytes < r.capture_live ? cm.env.bytes : r.capture_live;
      r.capture_live -= b;
      spilled += cm.env.bytes;
      ++r.captures_spilled;
      if (r.capture_live <= target_bytes) break;
    }
  }
  r.capture_spilled_bytes += spilled;
  return spilled;
}

uint64_t Store::record_in_flight(int rank, uint64_t first_epoch, uint64_t last_epoch,
                                 const mpi::Envelope& env, const mpi::Payload& payload) {
  auto shared = std::make_shared<const mpi::Payload>(payload);
  Row& r = row(rank);
  for (uint64_t e = first_epoch; e <= last_epoch; ++e) {
    r.caps[e].push_back(CapturedMsg{env, shared});
    ++r.in_flight_captured;
    r.capture_live += env.bytes;
  }
  r.capture_hwm = r.capture_live > r.capture_hwm ? r.capture_live : r.capture_hwm;
  return r.capture_live;
}

uint64_t Store::capture_live_bytes(int rank) const {
  const Row* r = row(rank);
  return r ? r->capture_live : 0;
}

const std::vector<CapturedMsg>& Store::in_flight(int rank, uint64_t epoch) const {
  static const std::vector<CapturedMsg> kEmpty;
  const Row* r = row(rank);
  if (!r) return kEmpty;
  auto it = r->caps.find(epoch);
  return it == r->caps.end() ? kEmpty : it->second;
}

}  // namespace spbc::ckpt

#include "ckpt/store.hpp"

#include "util/assert.hpp"

namespace spbc::ckpt {

sim::Time StorageCostModel::write_time(StorageLevel level, uint64_t bytes) const {
  switch (level) {
    case StorageLevel::kNone:
      return 0.0;
    case StorageLevel::kLocal:
      return local_latency + static_cast<double>(bytes) / local_bw;
    case StorageLevel::kPartner:
      return base_latency + static_cast<double>(bytes) / partner_bw;
    case StorageLevel::kPfs:
      return base_latency + static_cast<double>(bytes) / pfs_bw;
  }
  return 0.0;
}

sim::Time StorageCostModel::read_time(StorageLevel level, uint64_t bytes) const {
  // Reads are symmetric in this model.
  return write_time(level, bytes);
}

void Store::save(int rank, Snapshot snap) {
  bytes_written_ += snap.bytes.size();
  ++snapshots_;
  snaps_[rank][snap.epoch] = std::move(snap);
}

bool Store::has(int rank) const {
  auto it = snaps_.find(rank);
  return it != snaps_.end() && !it->second.empty();
}

const Snapshot& Store::latest(int rank) const {
  auto it = snaps_.find(rank);
  SPBC_ASSERT_MSG(it != snaps_.end() && !it->second.empty(),
                  "no checkpoint for rank " << rank);
  return it->second.rbegin()->second;
}

bool Store::has_epoch(int rank, uint64_t epoch) const {
  auto it = snaps_.find(rank);
  return it != snaps_.end() && it->second.count(epoch) > 0;
}

const Snapshot& Store::at_epoch(int rank, uint64_t epoch) const {
  auto it = snaps_.find(rank);
  SPBC_ASSERT_MSG(it != snaps_.end() && it->second.count(epoch) > 0,
                  "no epoch-" << epoch << " checkpoint for rank " << rank);
  return it->second.at(epoch);
}

void Store::release_captures(int rank, uint64_t bytes) {
  auto live = capture_live_.find(rank);
  if (live == capture_live_.end()) return;
  live->second -= bytes < live->second ? bytes : live->second;
}

void Store::drop_epochs_above(int rank, uint64_t epoch) {
  auto it = snaps_.find(rank);
  if (it != snaps_.end()) {
    it->second.erase(it->second.upper_bound(epoch), it->second.end());
  }
  auto cap = in_flight_.lower_bound({rank, epoch + 1});
  while (cap != in_flight_.end() && cap->first.first == rank) {
    for (const CapturedMsg& cm : cap->second)
      if (!cm.spilled) release_captures(rank, cm.env.bytes);
    cap = in_flight_.erase(cap);
  }
}

void Store::prune_epochs_below(int rank, uint64_t epoch) {
  auto it = snaps_.find(rank);
  if (it != snaps_.end()) {
    it->second.erase(it->second.begin(), it->second.lower_bound(epoch));
  }
  auto cap = in_flight_.lower_bound({rank, 0});
  while (cap != in_flight_.end() && cap->first.first == rank &&
         cap->first.second < epoch) {
    for (const CapturedMsg& cm : cap->second)
      if (!cm.spilled) release_captures(rank, cm.env.bytes);
    cap = in_flight_.erase(cap);
  }
}

uint64_t Store::spill_captures(int rank, uint64_t target_bytes) {
  auto live = capture_live_.find(rank);
  if (live == capture_live_.end() || live->second <= target_bytes) return 0;
  uint64_t spilled = 0;
  // Oldest epochs first: they have waited longest for a commit to reclaim
  // them, so they are the least likely to leave memory any other way.
  for (auto cap = in_flight_.lower_bound({rank, 0});
       cap != in_flight_.end() && cap->first.first == rank &&
       live->second > target_bytes;
       ++cap) {
    for (CapturedMsg& cm : cap->second) {
      if (cm.spilled) continue;
      cm.spilled = true;
      const uint64_t b = cm.env.bytes < live->second ? cm.env.bytes : live->second;
      live->second -= b;
      spilled += cm.env.bytes;
      ++captures_spilled_;
      if (live->second <= target_bytes) break;
    }
  }
  capture_spilled_bytes_ += spilled;
  return spilled;
}

uint64_t Store::record_in_flight(int rank, uint64_t first_epoch, uint64_t last_epoch,
                                 const mpi::Envelope& env, const mpi::Payload& payload) {
  auto shared = std::make_shared<const mpi::Payload>(payload);
  uint64_t& live = capture_live_[rank];
  for (uint64_t e = first_epoch; e <= last_epoch; ++e) {
    in_flight_[{rank, e}].push_back(CapturedMsg{env, shared});
    ++in_flight_captured_;
    live += env.bytes;
  }
  capture_hwm_ = live > capture_hwm_ ? live : capture_hwm_;
  return live;
}

uint64_t Store::capture_live_bytes(int rank) const {
  auto it = capture_live_.find(rank);
  return it == capture_live_.end() ? 0 : it->second;
}

const std::vector<CapturedMsg>& Store::in_flight(int rank, uint64_t epoch) const {
  static const std::vector<CapturedMsg> kEmpty;
  auto it = in_flight_.find({rank, epoch});
  return it == in_flight_.end() ? kEmpty : it->second;
}

}  // namespace spbc::ckpt

#include "ckpt/store.hpp"

#include "util/assert.hpp"

namespace spbc::ckpt {

sim::Time StorageCostModel::write_time(StorageLevel level, uint64_t bytes) const {
  switch (level) {
    case StorageLevel::kNone:
      return 0.0;
    case StorageLevel::kLocal:
      return base_latency + static_cast<double>(bytes) / local_bw;
    case StorageLevel::kPartner:
      return base_latency + static_cast<double>(bytes) / partner_bw;
    case StorageLevel::kPfs:
      return base_latency + static_cast<double>(bytes) / pfs_bw;
  }
  return 0.0;
}

sim::Time StorageCostModel::read_time(StorageLevel level, uint64_t bytes) const {
  // Reads are symmetric in this model.
  return write_time(level, bytes);
}

void Store::save(int rank, Snapshot snap) {
  bytes_written_ += snap.bytes.size();
  ++snapshots_;
  latest_[rank] = std::move(snap);
}

const Snapshot& Store::latest(int rank) const {
  auto it = latest_.find(rank);
  SPBC_ASSERT_MSG(it != latest_.end(), "no checkpoint for rank " << rank);
  return it->second;
}

}  // namespace spbc::ckpt

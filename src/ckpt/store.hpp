#pragma once
// Checkpoint storage.
//
// Holds the latest snapshot per rank, with a multi-level cost model in the
// spirit of SCR/FTI (referenced by the paper as the complementary line of
// work [3, 27]): LOCAL (node-local SSD), PARTNER (copy on a buddy node), PFS
// (parallel file system). The paper's measurements exclude checkpoint I/O
// time (Section 6.1), so experiment configurations default to kNone; the
// cost model exists for ablations.

#include <cstdint>
#include <map>
#include <vector>

#include "sim/time.hpp"

namespace spbc::ckpt {

enum class StorageLevel : uint8_t {
  kNone,     // free (measurement mode, as in the paper's evaluation)
  kLocal,    // node-local storage
  kPartner,  // local + copy to a partner node
  kPfs,      // parallel file system
};

struct StorageCostModel {
  double local_bw = 1.0e9;     // bytes/s per node
  double partner_bw = 0.8e9;   // effective, includes the network copy
  double pfs_bw = 50.0e6;      // per-process share of PFS bandwidth
  sim::Time base_latency = sim::msec(2.0);

  sim::Time write_time(StorageLevel level, uint64_t bytes) const;
  sim::Time read_time(StorageLevel level, uint64_t bytes) const;
};

struct Snapshot {
  sim::Time taken_at = 0;
  uint64_t epoch = 0;  // checkpoint wave number
  std::vector<unsigned char> bytes;
};

class Store {
 public:
  explicit Store(StorageLevel level = StorageLevel::kNone,
                 StorageCostModel model = {})
      : level_(level), model_(model) {}

  void save(int rank, Snapshot snap);
  bool has(int rank) const { return latest_.count(rank) > 0; }
  const Snapshot& latest(int rank) const;

  /// Virtual-time cost of writing/reading a snapshot at the configured level.
  sim::Time write_cost(uint64_t bytes) const { return model_.write_time(level_, bytes); }
  sim::Time read_cost(uint64_t bytes) const { return model_.read_time(level_, bytes); }

  uint64_t total_bytes_written() const { return bytes_written_; }
  uint64_t snapshots_taken() const { return snapshots_; }
  StorageLevel level() const { return level_; }

 private:
  StorageLevel level_;
  StorageCostModel model_;
  std::map<int, Snapshot> latest_;
  uint64_t bytes_written_ = 0;
  uint64_t snapshots_ = 0;
};

}  // namespace spbc::ckpt

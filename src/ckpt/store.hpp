#pragma once
// Checkpoint storage.
//
// Holds per-rank snapshots keyed by checkpoint epoch, with a multi-level cost
// model in the spirit of SCR/FTI (referenced by the paper as the
// complementary line of work [3, 27]): LOCAL (node-local SSD), PARTNER (copy
// on a buddy node), PFS (parallel file system). The paper's measurements
// exclude checkpoint I/O time (Section 6.1), so experiment configurations
// default to kNone; level residency and data movement live in
// ckpt::StagingArea (staging.hpp), which drives this cost model.
//
// Epoch keying exists because the marker-based checkpoint wave commits
// asynchronously: while a wave for epoch E is in flight, the last committed
// epoch E-1 must stay restorable, and a failure mid-wave rolls the cluster
// back to E-1 even if some members already hold epoch-E snapshots. Under
// async staging, commit prunes only down to the staging pipeline's PFS
// frontier instead of the committed epoch: a committed epoch whose copies a
// node failure later destroys must still have an older, safer epoch to fall
// back to. The store also records, per (rank, epoch), the intra-cluster
// messages that crossed the epoch's cut (sent before the sender's snapshot,
// delivered after the receiver's) — recovery re-delivers them, because the
// restored sender will not re-send and the restored receiver has not
// received. Captures are modeled as reliably stored with the epoch's restore
// data; their live footprint is tracked per rank (with a global high-water
// mark) so protocols can bound it.
//
// Data reduction (ReductionConfig; DESIGN.md §15): the store owns the
// encoded representation. With delta encoding on, save() hashes the capture
// in fixed-size blocks against the previous epoch's hash index and stores
// only the changed blocks; with compression on, the stored payload runs
// through the deterministic LZ/RLE codec once here, and every downstream
// consumer (staging fragments, PFS flushes, the control plane's Daly terms)
// sees the post-reduction size. materialize() reconstructs the logical bytes
// by walking the base-plus-deltas chain; prune_epochs_below() clamps its
// floor to the chain base of the oldest retained epoch so a delta never
// outlives its base.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ckpt/reduction.hpp"
#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace spbc::ckpt {

enum class StorageLevel : uint8_t {
  kNone,     // free (measurement mode, as in the paper's evaluation)
  kLocal,    // node-local storage
  kPartner,  // local + copy to a partner node
  kPfs,      // parallel file system
};

struct StorageCostModel {
  double local_bw = 1.0e9;     // bytes/s per node
  double partner_bw = 0.8e9;   // effective, includes the network copy
  double pfs_bw = 50.0e6;      // per-process share of PFS bandwidth
  sim::Time base_latency = sim::msec(2.0);    // PARTNER/PFS setup cost
  sim::Time local_latency = sim::usec(50.0);  // node-local device latency —
                                              // the short stall async staging
                                              // charges the fiber

  sim::Time write_time(StorageLevel level, uint64_t bytes) const;
  sim::Time read_time(StorageLevel level, uint64_t bytes) const;
};

struct Snapshot {
  sim::Time taken_at = 0;
  uint64_t epoch = 0;  // checkpoint wave number
  std::vector<unsigned char> bytes;
};

/// What save() actually wrote: the caller stages `stored_bytes` (the encoded
/// size — what every downstream level ships) and threads `chain_base`
/// through the staging entry so restore planning knows the epoch's delta
/// chain.
struct SaveInfo {
  uint64_t raw_bytes = 0;     // logical (decoded) capture size
  uint64_t stored_bytes = 0;  // encoded payload size actually written
  /// Epoch of the full capture anchoring this epoch's chain (== the saved
  /// epoch when the capture is full).
  uint64_t chain_base = 0;
  bool full = true;
  uint32_t blocks_total = 0;
  uint32_t blocks_changed = 0;  // == blocks_total for a full capture
};

/// A snapshot as the store keeps it: the encoded payload plus the header a
/// restore needs to decode it. With reduction off, `enc` IS the logical
/// bytes (no copy, no header overhead beyond the empty vectors).
struct StoredSnapshot {
  sim::Time taken_at = 0;
  uint64_t epoch = 0;
  uint64_t raw_size = 0;    // logical size (decode target)
  uint64_t chain_base = 0;  // == epoch for a full capture
  bool compressed = false;  // enc ran through the codec
  uint32_t block_bytes = 0; // delta granularity; 0 = not block-encoded
  /// Delta payload layout: enc decodes to the concatenation of the blocks in
  /// `changed` (ascending), each block_bytes long except a short tail block.
  std::vector<uint32_t> changed;
  /// Per-block hash index of the FULL logical image — the content-addressed
  /// baseline the next epoch diffs against. Present whenever delta encoding
  /// is on (full captures included).
  std::vector<uint64_t> block_hashes;
  std::vector<unsigned char> enc;

  bool full() const { return chain_base == epoch; }
};

/// One intra-cluster message that crossed a checkpoint cut, captured at the
/// receiver for restore-time redelivery. The payload is shared: a message
/// that crossed several cuts is recorded under each epoch but its bytes are
/// stored once.
struct CapturedMsg {
  mpi::Envelope env;
  std::shared_ptr<const mpi::Payload> payload;
  /// Pushed out of capture memory onto LOCAL storage (still redeliverable;
  /// its bytes no longer count against the live capture footprint).
  bool spilled = false;
};

class Store {
 public:
  explicit Store(StorageLevel level = StorageLevel::kNone,
                 StorageCostModel model = {})
      : level_(level), model_(model) {}

  /// Pre-sizes the per-rank rows. Protocols call this at attach time; under
  /// the threaded shard executor rows must exist before concurrent shard
  /// events touch them (row growth is a structural mutation). Rows also grow
  /// lazily for callers that never attach (unit tests) — single-threaded
  /// contexts only.
  void reserve_ranks(int nranks) {
    if (static_cast<size_t>(nranks) > rows_.size())
      rows_.resize(static_cast<size_t>(nranks));
  }

  /// Configure data reduction (attach time, before the first save; the
  /// defaults keep the raw pre-reduction path bit-for-bit).
  void set_reduction(ReductionConfig rc) { reduction_ = rc; }
  const ReductionConfig& reduction() const { return reduction_; }

  /// Saves `snap` under (rank, snap.epoch), replacing a same-epoch snapshot.
  /// Applies the configured reduction: delta-encodes against the previous
  /// epoch's hash index when eligible, then compresses. `force_full` pins a
  /// full capture regardless of eligibility — migration boundary/pin epochs
  /// must be renameable, and a renamed delta would orphan its chain.
  SaveInfo save(int rank, Snapshot snap, bool force_full = false);
  bool has(int rank) const;
  /// Highest-epoch snapshot held for `rank`.
  const StoredSnapshot& latest(int rank) const;
  bool has_epoch(int rank, uint64_t epoch) const;
  const StoredSnapshot& at_epoch(int rank, uint64_t epoch) const;

  /// Reconstructs the logical snapshot bytes of (rank, epoch): decompresses
  /// and walks the base-plus-deltas chain when the capture is reduced (the
  /// whole chain must still be stored — prune_epochs_below guarantees it).
  /// Returns a reference either into the store (raw full capture: no copy —
  /// the pre-reduction restore path) or to `scratch`.
  const std::vector<unsigned char>& materialize(
      int rank, uint64_t epoch, std::vector<unsigned char>& scratch) const;

  /// Epoch-consistent restore bookkeeping: a rollback to `epoch` invalidates
  /// any higher, uncommitted epoch (snapshots and captures); a committed
  /// wave supersedes everything below it.
  void drop_epochs_above(int rank, uint64_t epoch);
  /// Prunes below `epoch`, clamped to the chain base of the oldest epoch
  /// retained: a delta capture keeps its base (and intermediate deltas)
  /// alive past the nominal floor. Returns the effective floor applied —
  /// the caller mirrors it into the staging residency so chain elements
  /// keep their copies too.
  uint64_t prune_epochs_below(int rank, uint64_t epoch);

  /// Migration flip (serial context): re-keys the rank's epoch-`from`
  /// snapshot and captures to epoch number `to`, so state carried across a
  /// cluster migration lines up with the destination cluster's epoch
  /// sequence. No-op when no epoch-`from` state exists. The snapshot must be
  /// a full capture (the flip forces boundary/pin epochs full at save time);
  /// renaming a delta would orphan it from its chain.
  void rename_epoch(int rank, uint64_t from, uint64_t to);

  /// In-flight capture for the marker-based wave: records a message that
  /// crossed the cuts of epochs [first_epoch, last_epoch] at `rank`, in
  /// arrival order (per-channel FIFO makes arrival order seqnum order on
  /// every channel). One payload buffer is shared across the epochs.
  /// Returns the rank's live capture footprint in bytes after the record,
  /// so the caller can react to memory pressure.
  uint64_t record_in_flight(int rank, uint64_t first_epoch, uint64_t last_epoch,
                            const mpi::Envelope& env, const mpi::Payload& payload);
  const std::vector<CapturedMsg>& in_flight(int rank, uint64_t epoch) const;

  /// Bytes of captures currently retained for `rank` (all epochs; a payload
  /// recorded under several epochs counts once per epoch — the retention
  /// upper bound).
  uint64_t capture_live_bytes(int rank) const;
  /// Highest per-rank live capture footprint ever observed (the in-flight
  /// capture memory bound metric; see ROADMAP).
  uint64_t capture_hwm_bytes() const {
    uint64_t hwm = 0;
    for (const Row& r : rows_) hwm = r.capture_hwm > hwm ? r.capture_hwm : hwm;
    return hwm;
  }

  /// Spills the oldest retained captures of `rank` (ascending epoch) to
  /// LOCAL storage until the live footprint drops to `target_bytes`: used
  /// when capture-bound pressure cannot prune past the PFS retention floor
  /// (a slow PFS would otherwise stall reclamation indefinitely). Spilled
  /// captures stay redeliverable but leave capture memory. Returns the
  /// bytes spilled; the caller charges the node-local device.
  uint64_t spill_captures(int rank, uint64_t target_bytes);
  uint64_t captures_spilled() const {
    return sum_rows(&Row::captures_spilled);
  }
  uint64_t capture_spilled_bytes() const {
    return sum_rows(&Row::capture_spilled_bytes);
  }

  /// Virtual-time cost of writing/reading a snapshot at the configured level.
  sim::Time write_cost(uint64_t bytes) const { return model_.write_time(level_, bytes); }
  sim::Time read_cost(uint64_t bytes) const { return model_.read_time(level_, bytes); }

  /// Encoded bytes actually written (== logical bytes with reduction off).
  uint64_t total_bytes_written() const { return sum_rows(&Row::bytes_written); }
  /// Logical capture bytes presented to save() (the reduction baseline).
  uint64_t total_raw_bytes() const { return sum_rows(&Row::raw_bytes); }
  uint64_t snapshots_taken() const { return sum_rows(&Row::snapshots); }
  /// Captures stored as block deltas (vs full).
  uint64_t delta_snapshots() const { return sum_rows(&Row::delta_snapshots); }
  /// Cumulative count of cut-crossing messages captured (diagnostics).
  uint64_t in_flight_captured() const {
    return sum_rows(&Row::in_flight_captured);
  }
  StorageLevel level() const { return level_; }

 private:
  StorageLevel level_;
  StorageCostModel model_;
  ReductionConfig reduction_{};

  // All storage and counters live in one row per rank: a row is only ever
  // mutated from its rank's shard (saves, captures, per-rank prunes) or from
  // serial recovery context, so concurrent shard threads never share one.
  // Whole-store counters are summed over rows on read.
  struct Row {
    std::map<uint64_t, StoredSnapshot> snaps;           // epoch -> snapshot
    std::map<uint64_t, std::vector<CapturedMsg>> caps;  // epoch -> captures
    uint64_t capture_live = 0;
    uint64_t bytes_written = 0;
    uint64_t raw_bytes = 0;
    uint64_t snapshots = 0;
    uint64_t delta_snapshots = 0;
    uint64_t in_flight_captured = 0;
    uint64_t capture_hwm = 0;
    uint64_t captures_spilled = 0;
    uint64_t capture_spilled_bytes = 0;
  };
  Row& row(int rank) {
    if (static_cast<size_t>(rank) >= rows_.size()) reserve_ranks(rank + 1);
    return rows_[static_cast<size_t>(rank)];
  }
  const Row* row(int rank) const {
    return static_cast<size_t>(rank) < rows_.size()
               ? &rows_[static_cast<size_t>(rank)]
               : nullptr;
  }
  static void release_captures(Row& r, uint64_t bytes);
  /// Decoded payload of one stored snapshot (no chain walk).
  static std::vector<unsigned char> decode_payload(const StoredSnapshot& s);

  uint64_t sum_rows(uint64_t Row::*field) const {
    uint64_t total = 0;
    for (const Row& r : rows_) total += r.*field;
    return total;
  }

  std::vector<Row> rows_;
};

}  // namespace spbc::ckpt

#pragma once
// Checkpoint storage.
//
// Holds per-rank snapshots keyed by checkpoint epoch, with a multi-level cost
// model in the spirit of SCR/FTI (referenced by the paper as the
// complementary line of work [3, 27]): LOCAL (node-local SSD), PARTNER (copy
// on a buddy node), PFS (parallel file system). The paper's measurements
// exclude checkpoint I/O time (Section 6.1), so experiment configurations
// default to kNone; level residency and data movement live in
// ckpt::StagingArea (staging.hpp), which drives this cost model.
//
// Epoch keying exists because the marker-based checkpoint wave commits
// asynchronously: while a wave for epoch E is in flight, the last committed
// epoch E-1 must stay restorable, and a failure mid-wave rolls the cluster
// back to E-1 even if some members already hold epoch-E snapshots. Under
// async staging, commit prunes only down to the staging pipeline's PFS
// frontier instead of the committed epoch: a committed epoch whose copies a
// node failure later destroys must still have an older, safer epoch to fall
// back to. The store also records, per (rank, epoch), the intra-cluster
// messages that crossed the epoch's cut (sent before the sender's snapshot,
// delivered after the receiver's) — recovery re-delivers them, because the
// restored sender will not re-send and the restored receiver has not
// received. Captures are modeled as reliably stored with the epoch's restore
// data; their live footprint is tracked per rank (with a global high-water
// mark) so protocols can bound it.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace spbc::ckpt {

enum class StorageLevel : uint8_t {
  kNone,     // free (measurement mode, as in the paper's evaluation)
  kLocal,    // node-local storage
  kPartner,  // local + copy to a partner node
  kPfs,      // parallel file system
};

struct StorageCostModel {
  double local_bw = 1.0e9;     // bytes/s per node
  double partner_bw = 0.8e9;   // effective, includes the network copy
  double pfs_bw = 50.0e6;      // per-process share of PFS bandwidth
  sim::Time base_latency = sim::msec(2.0);    // PARTNER/PFS setup cost
  sim::Time local_latency = sim::usec(50.0);  // node-local device latency —
                                              // the short stall async staging
                                              // charges the fiber

  sim::Time write_time(StorageLevel level, uint64_t bytes) const;
  sim::Time read_time(StorageLevel level, uint64_t bytes) const;
};

struct Snapshot {
  sim::Time taken_at = 0;
  uint64_t epoch = 0;  // checkpoint wave number
  std::vector<unsigned char> bytes;
};

/// One intra-cluster message that crossed a checkpoint cut, captured at the
/// receiver for restore-time redelivery. The payload is shared: a message
/// that crossed several cuts is recorded under each epoch but its bytes are
/// stored once.
struct CapturedMsg {
  mpi::Envelope env;
  std::shared_ptr<const mpi::Payload> payload;
  /// Pushed out of capture memory onto LOCAL storage (still redeliverable;
  /// its bytes no longer count against the live capture footprint).
  bool spilled = false;
};

class Store {
 public:
  explicit Store(StorageLevel level = StorageLevel::kNone,
                 StorageCostModel model = {})
      : level_(level), model_(model) {}

  /// Pre-sizes the per-rank rows. Protocols call this at attach time; under
  /// the threaded shard executor rows must exist before concurrent shard
  /// events touch them (row growth is a structural mutation). Rows also grow
  /// lazily for callers that never attach (unit tests) — single-threaded
  /// contexts only.
  void reserve_ranks(int nranks) {
    if (static_cast<size_t>(nranks) > rows_.size())
      rows_.resize(static_cast<size_t>(nranks));
  }

  /// Saves `snap` under (rank, snap.epoch), replacing a same-epoch snapshot.
  void save(int rank, Snapshot snap);
  bool has(int rank) const;
  /// Highest-epoch snapshot held for `rank`.
  const Snapshot& latest(int rank) const;
  bool has_epoch(int rank, uint64_t epoch) const;
  const Snapshot& at_epoch(int rank, uint64_t epoch) const;

  /// Epoch-consistent restore bookkeeping: a rollback to `epoch` invalidates
  /// any higher, uncommitted epoch (snapshots and captures); a committed
  /// wave supersedes everything below it.
  void drop_epochs_above(int rank, uint64_t epoch);
  void prune_epochs_below(int rank, uint64_t epoch);

  /// Migration flip (serial context): re-keys the rank's epoch-`from`
  /// snapshot and captures to epoch number `to`, so state carried across a
  /// cluster migration lines up with the destination cluster's epoch
  /// sequence. No-op when no epoch-`from` state exists.
  void rename_epoch(int rank, uint64_t from, uint64_t to);

  /// In-flight capture for the marker-based wave: records a message that
  /// crossed the cuts of epochs [first_epoch, last_epoch] at `rank`, in
  /// arrival order (per-channel FIFO makes arrival order seqnum order on
  /// every channel). One payload buffer is shared across the epochs.
  /// Returns the rank's live capture footprint in bytes after the record,
  /// so the caller can react to memory pressure.
  uint64_t record_in_flight(int rank, uint64_t first_epoch, uint64_t last_epoch,
                            const mpi::Envelope& env, const mpi::Payload& payload);
  const std::vector<CapturedMsg>& in_flight(int rank, uint64_t epoch) const;

  /// Bytes of captures currently retained for `rank` (all epochs; a payload
  /// recorded under several epochs counts once per epoch — the retention
  /// upper bound).
  uint64_t capture_live_bytes(int rank) const;
  /// Highest per-rank live capture footprint ever observed (the in-flight
  /// capture memory bound metric; see ROADMAP).
  uint64_t capture_hwm_bytes() const {
    uint64_t hwm = 0;
    for (const Row& r : rows_) hwm = r.capture_hwm > hwm ? r.capture_hwm : hwm;
    return hwm;
  }

  /// Spills the oldest retained captures of `rank` (ascending epoch) to
  /// LOCAL storage until the live footprint drops to `target_bytes`: used
  /// when capture-bound pressure cannot prune past the PFS retention floor
  /// (a slow PFS would otherwise stall reclamation indefinitely). Spilled
  /// captures stay redeliverable but leave capture memory. Returns the
  /// bytes spilled; the caller charges the node-local device.
  uint64_t spill_captures(int rank, uint64_t target_bytes);
  uint64_t captures_spilled() const {
    return sum_rows(&Row::captures_spilled);
  }
  uint64_t capture_spilled_bytes() const {
    return sum_rows(&Row::capture_spilled_bytes);
  }

  /// Virtual-time cost of writing/reading a snapshot at the configured level.
  sim::Time write_cost(uint64_t bytes) const { return model_.write_time(level_, bytes); }
  sim::Time read_cost(uint64_t bytes) const { return model_.read_time(level_, bytes); }

  uint64_t total_bytes_written() const { return sum_rows(&Row::bytes_written); }
  uint64_t snapshots_taken() const { return sum_rows(&Row::snapshots); }
  /// Cumulative count of cut-crossing messages captured (diagnostics).
  uint64_t in_flight_captured() const {
    return sum_rows(&Row::in_flight_captured);
  }
  StorageLevel level() const { return level_; }

 private:
  StorageLevel level_;
  StorageCostModel model_;

  // All storage and counters live in one row per rank: a row is only ever
  // mutated from its rank's shard (saves, captures, per-rank prunes) or from
  // serial recovery context, so concurrent shard threads never share one.
  // Whole-store counters are summed over rows on read.
  struct Row {
    std::map<uint64_t, Snapshot> snaps;                 // epoch -> snapshot
    std::map<uint64_t, std::vector<CapturedMsg>> caps;  // epoch -> captures
    uint64_t capture_live = 0;
    uint64_t bytes_written = 0;
    uint64_t snapshots = 0;
    uint64_t in_flight_captured = 0;
    uint64_t capture_hwm = 0;
    uint64_t captures_spilled = 0;
    uint64_t capture_spilled_bytes = 0;
  };
  Row& row(int rank) {
    if (static_cast<size_t>(rank) >= rows_.size()) reserve_ranks(rank + 1);
    return rows_[static_cast<size_t>(rank)];
  }
  const Row* row(int rank) const {
    return static_cast<size_t>(rank) < rows_.size()
               ? &rows_[static_cast<size_t>(rank)]
               : nullptr;
  }
  static void release_captures(Row& r, uint64_t bytes);

  uint64_t sum_rows(uint64_t Row::*field) const {
    uint64_t total = 0;
    for (const Row& r : rows_) total += r.*field;
    return total;
  }

  std::vector<Row> rows_;
};

}  // namespace spbc::ckpt

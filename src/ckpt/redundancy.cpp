#include "ckpt/redundancy.hpp"

#include <algorithm>
#include <numeric>

#include "mpi/machine.hpp"
#include "util/assert.hpp"

namespace spbc::ckpt {

const char* scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSingle:
      return "single";
    case SchemeKind::kPartner:
      return "partner";
    case SchemeKind::kXorGroup:
      return "xor";
  }
  return "?";
}

std::optional<SchemeKind> parse_scheme(const std::string& name) {
  if (name == "single") return SchemeKind::kSingle;
  if (name == "partner") return SchemeKind::kPartner;
  if (name == "xor" || name == "xor-group") return SchemeKind::kXorGroup;
  return std::nullopt;
}

int cross_domain_partner(const mpi::Machine& machine, int rank) {
  const sim::Topology& topo = machine.topology();
  const int nodes = topo.nodes();
  const int ppn = topo.ranks_per_node();
  const int home = topo.node_of(rank);
  const int slot = rank % ppn;
  int pick = -1;
  for (int off = 1; off < nodes; ++off) {
    const int cand = ((home + off) % nodes) * ppn + slot;
    if (machine.cluster_of(cand) != machine.cluster_of(rank)) {
      return cand;  // different failure domain: the preferred buddy
    }
    if (pick < 0) pick = cand;  // fallback: nearest distinct node
  }
  return pick;
}

namespace {

// ---------------------------------------------------------------------------
// kSingle: LOCAL only. The cheapest write path and the baseline the other
// schemes are measured against; a node loss always costs a PFS read (or an
// epoch fallback when the PFS frontier lags).
// ---------------------------------------------------------------------------
class SingleScheme : public RedundancyScheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kSingle; }
  std::vector<int> group_of(int) const override { return {}; }
  PlacementPlan encode(int, uint64_t, uint64_t,
                       const ResidencyView&) const override {
    return {};
  }
  bool recoverable_without_pfs(int rank, uint64_t epoch,
                               const ResidencyView& view) const override {
    return view.has_local(rank, epoch);
  }
  RestorePlan restore_plan(int rank, uint64_t epoch, const ResidencyView& view,
                           const StorageCostModel& model) const override {
    RestorePlan plan;
    const uint64_t bytes = view.snapshot_bytes(rank, epoch);
    if (view.has_local(rank, epoch)) {
      plan.source = RestorePlan::Source::kLocal;
      plan.direct_cost = model.read_time(StorageLevel::kLocal, bytes);
    } else if (view.has_pfs(rank, epoch)) {
      plan.source = RestorePlan::Source::kPfs;
      plan.direct_cost = model.read_time(StorageLevel::kPfs, bytes);
    }
    return plan;
  }
};

// ---------------------------------------------------------------------------
// kPartner: one full copy on the cross-failure-domain buddy node — the
// pre-refactor staging behavior expressed through the interface. Mapping,
// costs and restore ordering (LOCAL < PARTNER < PFS) are unchanged.
// ---------------------------------------------------------------------------
class PartnerScheme : public RedundancyScheme {
 public:
  explicit PartnerScheme(const mpi::Machine& machine) : machine_(machine) {}

  SchemeKind kind() const override { return SchemeKind::kPartner; }

  std::vector<int> group_of(int rank) const override {
    const int partner = partner_of(rank);
    if (partner < 0) return {};
    return {partner};
  }

  PlacementPlan encode(int rank, uint64_t epoch, uint64_t bytes,
                       const ResidencyView& view) const override {
    PlacementPlan plan;
    const int partner = partner_of(rank);
    if (partner < 0) return plan;  // single-node topology: no partner level
    const std::vector<Fragment>* frags = view.fragments(rank, epoch);
    if (frags != nullptr) {
      for (const Fragment& f : *frags)
        if (f.live && !f.parity) return plan;  // already protected
    }
    if (!view.node_in_service(machine_.topology().node_of(partner)))
      return plan;  // copies must not land on a dead store
    plan.steps.push_back(PlacementStep{partner, bytes, /*parity=*/false});
    return plan;
  }

  bool recoverable_without_pfs(int rank, uint64_t epoch,
                               const ResidencyView& view) const override {
    if (view.has_local(rank, epoch)) return true;
    const std::vector<Fragment>* frags = view.fragments(rank, epoch);
    if (frags == nullptr) return false;
    for (const Fragment& f : *frags)
      if (f.live && !f.parity) return true;
    return false;
  }

  RestorePlan restore_plan(int rank, uint64_t epoch, const ResidencyView& view,
                           const StorageCostModel& model) const override {
    RestorePlan plan;
    const uint64_t bytes = view.snapshot_bytes(rank, epoch);
    if (view.has_local(rank, epoch)) {
      plan.source = RestorePlan::Source::kLocal;
      plan.direct_cost = model.read_time(StorageLevel::kLocal, bytes);
      return plan;
    }
    const std::vector<Fragment>* frags = view.fragments(rank, epoch);
    if (frags != nullptr) {
      for (const Fragment& f : *frags) {
        if (f.live && !f.parity) {
          plan.source = RestorePlan::Source::kRemoteCopy;
          plan.direct_cost = model.read_time(StorageLevel::kPartner, bytes);
          return plan;
        }
      }
    }
    if (view.has_pfs(rank, epoch)) {
      plan.source = RestorePlan::Source::kPfs;
      plan.direct_cost = model.read_time(StorageLevel::kPfs, bytes);
    }
    return plan;
  }

 private:
  int partner_of(int rank) const {
    if (cache_.empty())
      cache_.assign(static_cast<size_t>(machine_.nranks()), -2);
    int& cached = cache_[static_cast<size_t>(rank)];
    if (cached == -2) cached = cross_domain_partner(machine_, rank);
    return cached;
  }

  const mpi::Machine& machine_;
  mutable std::vector<int> cache_;  // -2 unresolved, -1 none
};

// ---------------------------------------------------------------------------
// kXorGroup: RAID-5-style rotating parity across a group of G nodes.
//
// Grouping: node ids are stable-sorted by their residents' cluster and dealt
// round-robin into ceil(nodes/G) groups, so consecutive same-cluster nodes
// land in different groups and each group spans as many failure domains as
// the machine allows. A rank's protection group is the same node-local slot
// on each node of its node group (block placement guarantees the slot
// exists).
//
// Encoding model: when rank r's B-byte snapshot lands at LOCAL, its folded
// parity contribution — one segment of ceil(B/(G-1)) bytes — is placed on a
// rotating host pi(r, e) in the group (rotation by epoch and by member index
// so parity spreads across members within an epoch, as RAID-5 rotates parity
// across disks). The group's segments collectively implement SCR's chunked
// XOR: the wire and the host store carry only the folded segment, i.e. the
// in-network-reduction bound of the reduce-scatter a real implementation
// runs.
//
// Liveness (conservative single-loss rule): epoch e of r is rebuildable
// without the PFS iff r's parity segment is live on a surviving node AND
// every other group member still holds its own epoch-e LOCAL data. Any
// double in-group loss therefore falls back to the PFS frontier epoch.
//
// Rebuild: the replacement node streams one folded contribution of
// ceil(B/(G-1)) bytes from every surviving member plus the parity segment —
// ~B * G/(G-1) total, each read a real net::Transfer that contends with
// application traffic.
// ---------------------------------------------------------------------------
class XorGroupScheme : public RedundancyScheme {
 public:
  XorGroupScheme(const mpi::Machine& machine, int group_size)
      : machine_(machine), group_size_(group_size < 2 ? 2 : group_size) {}

  SchemeKind kind() const override { return SchemeKind::kXorGroup; }

  std::vector<int> group_of(int rank) const override {
    build_groups();
    const sim::Topology& topo = machine_.topology();
    const int ppn = topo.ranks_per_node();
    const int slot = rank % ppn;
    const std::vector<int>& nodes = group_nodes(topo.node_of(rank));
    std::vector<int> members;
    members.reserve(nodes.size());
    for (int n : nodes) {
      const int m = n * ppn + slot;
      if (m != rank) members.push_back(m);
    }
    return members;
  }

  PlacementPlan encode(int rank, uint64_t epoch, uint64_t bytes,
                       const ResidencyView& view) const override {
    PlacementPlan plan;
    const std::vector<int> members = group_of(rank);
    if (members.empty()) return plan;
    const std::vector<Fragment>* frags = view.fragments(rank, epoch);
    if (frags != nullptr) {
      for (const Fragment& f : *frags)
        if (f.live && f.parity) return plan;  // still protected
    }
    const uint64_t chunk = parity_bytes(bytes, members.size() + 1);
    // Rotate the parity host by epoch and by the member's own position so
    // one epoch's parity segments spread across the whole group.
    const size_t start = static_cast<size_t>(
        (epoch + static_cast<uint64_t>(rank)) % members.size());
    for (size_t k = 0; k < members.size(); ++k) {
      const int host = members[(start + k) % members.size()];
      if (!view.node_in_service(machine_.topology().node_of(host))) continue;
      plan.steps.push_back(PlacementStep{host, chunk, /*parity=*/true});
      break;
    }
    return plan;
  }

  bool recoverable_without_pfs(int rank, uint64_t epoch,
                               const ResidencyView& view) const override {
    if (view.has_local(rank, epoch)) return true;
    return rebuildable(rank, epoch, view);
  }

  RestorePlan restore_plan(int rank, uint64_t epoch, const ResidencyView& view,
                           const StorageCostModel& model) const override {
    RestorePlan plan;
    const uint64_t bytes = view.snapshot_bytes(rank, epoch);
    if (view.has_local(rank, epoch)) {
      plan.source = RestorePlan::Source::kLocal;
      plan.direct_cost = model.read_time(StorageLevel::kLocal, bytes);
      return plan;
    }
    if (rebuildable(rank, epoch, view)) {
      plan.source = RestorePlan::Source::kRebuild;
      const std::vector<int> members = group_of(rank);
      const uint64_t chunk = parity_bytes(bytes, members.size() + 1);
      for (int m : members)
        plan.reads.push_back(RestorePlan::Read{m, chunk});
      // The parity segment itself streams from its (surviving) host.
      const std::vector<Fragment>* frags = view.fragments(rank, epoch);
      for (const Fragment& f : *frags) {
        if (f.live && f.parity) {
          plan.reads.push_back(RestorePlan::Read{f.host_rank, f.bytes});
          break;
        }
      }
      return plan;
    }
    if (view.has_pfs(rank, epoch)) {
      plan.source = RestorePlan::Source::kPfs;
      plan.direct_cost = model.read_time(StorageLevel::kPfs, bytes);
    }
    return plan;
  }

 private:
  static uint64_t parity_bytes(uint64_t bytes, size_t group_nodes) {
    const uint64_t g = group_nodes > 1 ? static_cast<uint64_t>(group_nodes) : 2;
    return (bytes + g - 2) / (g - 1);  // ceil(B / (G-1))
  }

  bool rebuildable(int rank, uint64_t epoch,
                   const ResidencyView& view) const {
    const std::vector<Fragment>* frags = view.fragments(rank, epoch);
    if (frags == nullptr) return false;
    bool parity_live = false;
    for (const Fragment& f : *frags)
      if (f.live && f.parity) parity_live = true;
    if (!parity_live) return false;
    const std::vector<int> members = group_of(rank);
    if (members.empty()) return false;
    // Strict RAID-5 rule: every other member's epoch-e data must survive.
    // Checkpoint ids align across the machine under the periodic SPMD
    // schedule (as SCR's dataset ids do across a job); a member that never
    // cut or already pruned epoch e fails the check and the caller falls
    // back to the PFS.
    for (int m : members)
      if (!view.has_local(m, epoch)) return false;
    return true;
  }

  void build_groups() const {
    if (!node_group_.empty()) return;
    const sim::Topology& topo = machine_.topology();
    const int nodes = topo.nodes();
    const int ppn = topo.ranks_per_node();
    std::vector<int> order(static_cast<size_t>(nodes));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return machine_.cluster_of(a * ppn) < machine_.cluster_of(b * ppn);
    });
    const int ngroups = (nodes + group_size_ - 1) / group_size_;
    node_group_.assign(static_cast<size_t>(nodes), 0);
    groups_.assign(static_cast<size_t>(ngroups), {});
    for (size_t i = 0; i < order.size(); ++i) {
      const int g = static_cast<int>(i) % ngroups;
      node_group_[static_cast<size_t>(order[i])] = g;
      groups_[static_cast<size_t>(g)].push_back(order[i]);
    }
    for (std::vector<int>& g : groups_) std::sort(g.begin(), g.end());
  }

  const std::vector<int>& group_nodes(int node) const {
    build_groups();
    return groups_[static_cast<size_t>(node_group_[static_cast<size_t>(node)])];
  }

  const mpi::Machine& machine_;
  int group_size_;
  mutable std::vector<int> node_group_;         // node -> group id (lazy)
  mutable std::vector<std::vector<int>> groups_;  // group id -> node ids
};

}  // namespace

std::unique_ptr<RedundancyScheme> RedundancyScheme::make(
    const RedundancyConfig& cfg, const mpi::Machine& machine) {
  switch (cfg.kind) {
    case SchemeKind::kSingle:
      return std::make_unique<SingleScheme>();
    case SchemeKind::kPartner:
      return std::make_unique<PartnerScheme>(machine);
    case SchemeKind::kXorGroup:
      return std::make_unique<XorGroupScheme>(machine, cfg.group_size);
  }
  SPBC_UNREACHABLE("redundancy scheme kind");
}

}  // namespace spbc::ckpt

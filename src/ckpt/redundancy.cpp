#include "ckpt/redundancy.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "mpi/machine.hpp"
#include "util/assert.hpp"
#include "util/gf256.hpp"

namespace spbc::ckpt {

const char* scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSingle:
      return "single";
    case SchemeKind::kPartner:
      return "partner";
    case SchemeKind::kXorGroup:
      return "xor";
    case SchemeKind::kReedSolomon:
      return "rs";
  }
  return "?";
}

std::optional<SchemeKind> parse_scheme(const std::string& name) {
  if (name == "single") return SchemeKind::kSingle;
  if (name == "partner") return SchemeKind::kPartner;
  if (name == "xor" || name == "xor-group") return SchemeKind::kXorGroup;
  if (name == "rs" || name == "reed-solomon") return SchemeKind::kReedSolomon;
  return std::nullopt;
}

int cross_domain_partner(const mpi::Machine& machine, int rank) {
  const sim::Topology& topo = machine.topology();
  const int nodes = topo.nodes();
  const int ppn = topo.ranks_per_node();
  const int home = topo.node_of(rank);
  const int slot = rank % ppn;
  int pick = -1;
  for (int off = 1; off < nodes; ++off) {
    const int cand = ((home + off) % nodes) * ppn + slot;
    // Physical distinctness: after a shrunk restart two logical nodes can
    // share one physical node, and a buddy copy there would die with the
    // owner's copy — no protection at all.
    if (machine.node_of(cand) == machine.node_of(rank)) continue;
    if (machine.cluster_of(cand) != machine.cluster_of(rank)) {
      return cand;  // different failure domain: the preferred buddy
    }
    if (pick < 0) pick = cand;  // fallback: nearest distinct node
  }
  return pick;
}

namespace {

// ---------------------------------------------------------------------------
// kSingle: LOCAL only. The cheapest write path and the baseline the other
// schemes are measured against; a node loss always costs a PFS read (or an
// epoch fallback when the PFS frontier lags).
// ---------------------------------------------------------------------------
class SingleScheme : public RedundancyScheme {
 public:
  SchemeKind kind() const override { return SchemeKind::kSingle; }
  std::vector<int> group_of(int) const override { return {}; }
  PlacementPlan encode(int, uint64_t, uint64_t,
                       const ResidencyView&) const override {
    return {};
  }
  bool recoverable_without_pfs(int rank, uint64_t epoch,
                               const ResidencyView& view) const override {
    return view.has_local(rank, epoch);
  }
  RestorePlan restore_plan(int rank, uint64_t epoch, const ResidencyView& view,
                           const StorageCostModel& model) const override {
    RestorePlan plan;
    const uint64_t bytes = view.snapshot_bytes(rank, epoch);
    if (view.has_local(rank, epoch)) {
      plan.source = RestorePlan::Source::kLocal;
      plan.direct_cost = model.read_time(StorageLevel::kLocal, bytes);
    } else if (view.has_pfs(rank, epoch)) {
      plan.source = RestorePlan::Source::kPfs;
      plan.direct_cost = model.read_time(StorageLevel::kPfs, bytes);
    }
    return plan;
  }
};

// ---------------------------------------------------------------------------
// kPartner: one full copy on the cross-failure-domain buddy node — the
// pre-refactor staging behavior expressed through the interface. Mapping,
// costs and restore ordering (LOCAL < PARTNER < PFS) are unchanged.
// ---------------------------------------------------------------------------
class PartnerScheme : public RedundancyScheme {
 public:
  explicit PartnerScheme(const mpi::Machine& machine) : machine_(machine) {}

  SchemeKind kind() const override { return SchemeKind::kPartner; }

  std::vector<int> group_of(int rank) const override {
    const int partner = partner_of(rank);
    if (partner < 0) return {};
    return {partner};
  }

  PlacementPlan encode(int rank, uint64_t epoch, uint64_t bytes,
                       const ResidencyView& view) const override {
    PlacementPlan plan;
    const int partner = partner_of(rank);
    if (partner < 0) return plan;  // single-node topology: no partner level
    const std::vector<Fragment>* frags = view.fragments(rank, epoch);
    if (frags != nullptr) {
      for (const Fragment& f : *frags)
        if (f.live && !f.parity) return plan;  // already protected
    }
    if (!view.node_in_service(machine_.node_of(partner)))
      return plan;  // copies must not land on a dead store
    plan.steps.push_back(PlacementStep{partner, bytes, /*parity=*/false});
    return plan;
  }

  bool recoverable_without_pfs(int rank, uint64_t epoch,
                               const ResidencyView& view) const override {
    if (view.has_local(rank, epoch)) return true;
    const std::vector<Fragment>* frags = view.fragments(rank, epoch);
    if (frags == nullptr) return false;
    for (const Fragment& f : *frags)
      if (f.live && !f.parity) return true;
    return false;
  }

  RestorePlan restore_plan(int rank, uint64_t epoch, const ResidencyView& view,
                           const StorageCostModel& model) const override {
    RestorePlan plan;
    const uint64_t bytes = view.snapshot_bytes(rank, epoch);
    if (view.has_local(rank, epoch)) {
      plan.source = RestorePlan::Source::kLocal;
      plan.direct_cost = model.read_time(StorageLevel::kLocal, bytes);
      return plan;
    }
    const std::vector<Fragment>* frags = view.fragments(rank, epoch);
    if (frags != nullptr) {
      for (const Fragment& f : *frags) {
        if (f.live && !f.parity) {
          plan.source = RestorePlan::Source::kRemoteCopy;
          plan.direct_cost = model.read_time(StorageLevel::kPartner, bytes);
          return plan;
        }
      }
    }
    if (view.has_pfs(rank, epoch)) {
      plan.source = RestorePlan::Source::kPfs;
      plan.direct_cost = model.read_time(StorageLevel::kPfs, bytes);
    }
    return plan;
  }

  void on_topology_change() override {
    // The buddy map is a memoized function of the physical binding; a
    // hot-swap or shrink re-derives it (fresh epochs then avoid partners
    // co-located with their owner).
    cache_.clear();
  }

 private:
  int partner_of(int rank) const {
    if (cache_.empty())
      cache_.assign(static_cast<size_t>(machine_.nranks()), -2);
    int& cached = cache_[static_cast<size_t>(rank)];
    if (cached == -2) cached = cross_domain_partner(machine_, rank);
    return cached;
  }

  const mpi::Machine& machine_;
  mutable std::vector<int> cache_;  // -2 unresolved, -1 none
};

// ---------------------------------------------------------------------------
// Shared grouping for the group-parity schemes (XOR, Reed-Solomon): node ids
// are stable-sorted by their residents' cluster and dealt round-robin into
// ceil(nodes/G) groups, so consecutive same-cluster nodes land in different
// groups and each group spans as many failure domains as the machine allows.
// A rank's protection group is the same node-local slot on each node of its
// node group (block placement guarantees the slot exists).
// ---------------------------------------------------------------------------
class GroupedScheme : public RedundancyScheme {
 public:
  GroupedScheme(const mpi::Machine& machine, int group_size)
      : machine_(machine), group_size_(group_size < 2 ? 2 : group_size) {}

  std::vector<int> group_of(int rank) const override {
    std::vector<int> members = group_ranks(rank);
    members.erase(std::remove(members.begin(), members.end(), rank),
                  members.end());
    return members;
  }

 protected:
  /// Every rank of `rank`'s protection group, `rank` included, ordered by
  /// node id — the stable symbol positions the RS scheme keys its Cauchy
  /// rows on.
  std::vector<int> group_ranks(int rank) const {
    build_groups();
    const sim::Topology& topo = machine_.topology();
    const int ppn = topo.ranks_per_node();
    const int slot = rank % ppn;
    const std::vector<int>& nodes = group_nodes(topo.node_of(rank));
    std::vector<int> members;
    members.reserve(nodes.size());
    for (int n : nodes) members.push_back(n * ppn + slot);
    return members;
  }

  const mpi::Machine& machine_;
  int group_size_;

 private:
  void build_groups() const {
    if (!node_group_.empty()) return;
    const sim::Topology& topo = machine_.topology();
    const int nodes = topo.nodes();
    const int ppn = topo.ranks_per_node();
    std::vector<int> order(static_cast<size_t>(nodes));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return machine_.cluster_of(a * ppn) < machine_.cluster_of(b * ppn);
    });
    const int ngroups = (nodes + group_size_ - 1) / group_size_;
    node_group_.assign(static_cast<size_t>(nodes), 0);
    groups_.assign(static_cast<size_t>(ngroups), {});
    for (size_t i = 0; i < order.size(); ++i) {
      const int g = static_cast<int>(i) % ngroups;
      node_group_[static_cast<size_t>(order[i])] = g;
      groups_[static_cast<size_t>(g)].push_back(order[i]);
    }
    for (std::vector<int>& g : groups_) std::sort(g.begin(), g.end());
  }

  const std::vector<int>& group_nodes(int node) const {
    build_groups();
    return groups_[static_cast<size_t>(node_group_[static_cast<size_t>(node)])];
  }

  mutable std::vector<int> node_group_;           // node -> group id (lazy)
  mutable std::vector<std::vector<int>> groups_;  // group id -> node ids
};

// ---------------------------------------------------------------------------
// kXorGroup: RAID-5-style rotating parity across a group of G nodes.
//
// Encoding model: when rank r's B-byte snapshot lands at LOCAL, its folded
// parity contribution — one segment of ceil(B/(G-1)) bytes — is placed on a
// rotating host pi(r, e) in the group (rotation by epoch and by member index
// so parity spreads across members within an epoch, as RAID-5 rotates parity
// across disks). The group's segments collectively implement SCR's chunked
// XOR: the wire and the host store carry only the folded segment, i.e. the
// in-network-reduction bound of the reduce-scatter a real implementation
// runs.
//
// Liveness (conservative single-loss rule): epoch e of r is rebuildable
// without the PFS iff r's parity segment is live on a surviving node AND
// every other group member still holds its own epoch-e LOCAL data. Any
// double in-group loss therefore falls back to the PFS frontier epoch.
//
// Rebuild: the replacement node streams one folded contribution of
// ceil(B/(G-1)) bytes from every surviving member plus the parity segment —
// ~B * G/(G-1) total, each read a real net::Transfer that contends with
// application traffic.
// ---------------------------------------------------------------------------
class XorGroupScheme : public GroupedScheme {
 public:
  XorGroupScheme(const mpi::Machine& machine, int group_size)
      : GroupedScheme(machine, group_size) {}

  SchemeKind kind() const override { return SchemeKind::kXorGroup; }

  PlacementPlan encode(int rank, uint64_t epoch, uint64_t bytes,
                       const ResidencyView& view) const override {
    PlacementPlan plan;
    const std::vector<int> members = group_of(rank);
    if (members.empty()) return plan;
    const std::vector<Fragment>* frags = view.fragments(rank, epoch);
    if (frags != nullptr) {
      for (const Fragment& f : *frags)
        if (f.live && f.parity) return plan;  // still protected
    }
    const uint64_t chunk = parity_bytes(bytes, members.size() + 1);
    // Rotate the parity host by epoch and by the member's own position so
    // one epoch's parity segments spread across the whole group.
    const size_t start = static_cast<size_t>(
        (epoch + static_cast<uint64_t>(rank)) % members.size());
    for (size_t k = 0; k < members.size(); ++k) {
      const int host = members[(start + k) % members.size()];
      if (!view.node_in_service(machine_.node_of(host))) continue;
      plan.steps.push_back(PlacementStep{host, chunk, /*parity=*/true});
      break;
    }
    return plan;
  }

  bool recoverable_without_pfs(int rank, uint64_t epoch,
                               const ResidencyView& view) const override {
    if (view.has_local(rank, epoch)) return true;
    return rebuildable(rank, epoch, view);
  }

  RestorePlan restore_plan(int rank, uint64_t epoch, const ResidencyView& view,
                           const StorageCostModel& model) const override {
    RestorePlan plan;
    const uint64_t bytes = view.snapshot_bytes(rank, epoch);
    if (view.has_local(rank, epoch)) {
      plan.source = RestorePlan::Source::kLocal;
      plan.direct_cost = model.read_time(StorageLevel::kLocal, bytes);
      return plan;
    }
    if (rebuildable(rank, epoch, view)) {
      plan.source = RestorePlan::Source::kRebuild;
      const std::vector<int> members = group_of(rank);
      const uint64_t chunk = parity_bytes(bytes, members.size() + 1);
      for (int m : members)
        plan.reads.push_back(RestorePlan::Read{m, chunk});
      // The parity segment itself streams from its (surviving) host.
      const std::vector<Fragment>* frags = view.fragments(rank, epoch);
      for (const Fragment& f : *frags) {
        if (f.live && f.parity) {
          plan.reads.push_back(RestorePlan::Read{f.host_rank, f.bytes});
          break;
        }
      }
      return plan;
    }
    if (view.has_pfs(rank, epoch)) {
      plan.source = RestorePlan::Source::kPfs;
      plan.direct_cost = model.read_time(StorageLevel::kPfs, bytes);
    }
    return plan;
  }

 private:
  static uint64_t parity_bytes(uint64_t bytes, size_t group_nodes) {
    const uint64_t g = group_nodes > 1 ? static_cast<uint64_t>(group_nodes) : 2;
    return (bytes + g - 2) / (g - 1);  // ceil(B / (G-1))
  }

  bool rebuildable(int rank, uint64_t epoch,
                   const ResidencyView& view) const {
    const std::vector<Fragment>* frags = view.fragments(rank, epoch);
    if (frags == nullptr) return false;
    bool parity_live = false;
    for (const Fragment& f : *frags)
      if (f.live && f.parity) parity_live = true;
    if (!parity_live) return false;
    const std::vector<int> members = group_of(rank);
    if (members.empty()) return false;
    // Strict RAID-5 rule: every other member's epoch-e data must survive.
    // Checkpoint ids align across the machine under the periodic SPMD
    // schedule (as SCR's dataset ids do across a job); a member that never
    // cut or already pruned epoch e fails the check and the caller falls
    // back to the PFS.
    for (int m : members)
      if (!view.has_local(m, epoch)) return false;
    return true;
  }
};

// ---------------------------------------------------------------------------
// kReedSolomon: GF(256) systematic Reed-Solomon parity across a group of
// G = k + m nodes (util/gf256.hpp holds the arithmetic).
//
// Encoding model (rotated MDS erasure coding, a la RAID-6 / Ceph EC pools,
// cooperative across the group like SCR's chunked XOR): conceptually the
// group's epoch-e snapshots form G data symbols per stripe row; the code
// extends each row by m Cauchy parity symbols, and every node holds one
// symbol per row. Per member that amortizes to m parity shares of
// ceil(B/k) bytes — (m/k)x the partner-copy bytes on the wire and on the
// host stores — dealt onto m distinct other group nodes, rotating by
// (epoch + rank) so one epoch's shares spread across the group. Each share
// carries a stable logical id (Fragment::share) selecting its Cauchy row
// (row = member_position * m + share), so a re-protection re-places the
// same symbol on a new host.
//
// Liveness (exact symbol-model rule): with r's LOCAL copy dead, epoch e is
// rebuildable without the PFS iff the number of live parity shares in the
// whole group (on in-service hosts) is at least the number of unknown
// members (those whose epoch-e LOCAL is dead or missing). Cauchy rows are
// linearly independent in any subset, so the count comparison is exactly
// decode solvability; the restore planner still solves the actual decode
// submatrix and rejects a singular selection defensively. Any m concurrent
// in-group node losses keep every member rebuildable (each stripe row
// loses at most m symbols); m+1 losses exceed the code's distance and fall
// back to the PFS frontier epoch.
//
// Rebuild: the replacement node streams one folded ceil(B/k)-byte
// contribution from every known member plus one live parity share per
// unknown member — ~B * (k+m)/k total, each read a real net::Transfer.
// ---------------------------------------------------------------------------
class ReedSolomonScheme : public GroupedScheme {
 public:
  ReedSolomonScheme(const mpi::Machine& machine, int k, int m)
      : GroupedScheme(machine, (k < 1 ? 1 : k) + (m < 1 ? 1 : m)),
        k_(k < 1 ? 1 : k),
        m_(m < 1 ? 1 : m) {
    // The global Cauchy family needs G data columns + G*m parity rows of
    // distinct field elements.
    SPBC_ASSERT_MSG(group_size_ * (m_ + 1) <= 256,
                    "RS group too large for GF(256): k=" << k_ << " m=" << m_);
  }

  SchemeKind kind() const override { return SchemeKind::kReedSolomon; }

  PlacementPlan encode(int rank, uint64_t epoch, uint64_t bytes,
                       const ResidencyView& view) const override {
    PlacementPlan plan;
    const std::vector<int> others = group_of(rank);
    if (others.empty()) return plan;
    // Shares still missing: all m at first encode, the lost ones after a
    // host death (re-protection re-places exactly the dead symbols). A
    // share whose latest placement attempt is still in flight to an
    // in-service host counts as covered — it will land, or the generation
    // check will re-issue it; re-placing it here would duplicate the share
    // id and could co-locate two of the owner's shares on one host,
    // silently shrinking the any-m-loss distance. Only the share's most
    // recent attempt matters: older dead fragments on since-revived nodes
    // must not mask a genuinely lost share.
    std::set<int> missing;
    for (int s = 0; s < m_; ++s) missing.insert(s);
    std::set<int> hosts_taken;
    const std::vector<Fragment>* frags = view.fragments(rank, epoch);
    if (frags != nullptr) {
      std::map<int, const Fragment*> latest;  // share -> last non-live attempt
      for (const Fragment& f : *frags) {
        if (!f.parity) continue;
        if (f.live) {
          missing.erase(f.share);
          hosts_taken.insert(f.host_rank);
        } else {
          latest[f.share] = &f;  // fragments are appended chronologically
        }
      }
      for (const auto& [share, f] : latest) {
        if (!missing.count(share)) continue;  // a live copy already covers it
        // An audit-confirmed silent loss (corrupt bit on a dead fragment) is
        // NOT in flight — its host is in service yet the bytes are gone, and
        // the share must be re-placed.
        if (f->corrupt) continue;
        if (view.node_in_service(f->host_node)) {
          missing.erase(share);  // in flight: will land or retry
          hosts_taken.insert(f->host_rank);
        }
      }
    }
    if (missing.empty()) return plan;
    const uint64_t chunk = share_bytes(bytes);
    // Rotate the host deal by epoch and by the member's own position so one
    // epoch's shares spread across the whole group.
    const size_t start = static_cast<size_t>(
        (epoch + static_cast<uint64_t>(rank)) % others.size());
    size_t probe = 0;
    for (int s : missing) {
      int host = -1;
      for (; probe < others.size(); ++probe) {
        const int cand = others[(start + probe) % others.size()];
        if (hosts_taken.count(cand)) continue;
        if (!view.node_in_service(machine_.node_of(cand))) continue;
        host = cand;
        break;
      }
      if (host < 0) break;  // fewer viable hosts than missing shares
      ++probe;
      hosts_taken.insert(host);
      plan.steps.push_back(PlacementStep{host, chunk, /*parity=*/true, s});
    }
    return plan;
  }

  bool recoverable_without_pfs(int rank, uint64_t epoch,
                               const ResidencyView& view) const override {
    if (view.has_local(rank, epoch)) return true;
    return plan_rebuild(rank, epoch, view, nullptr);
  }

  RestorePlan restore_plan(int rank, uint64_t epoch, const ResidencyView& view,
                           const StorageCostModel& model) const override {
    RestorePlan plan;
    const uint64_t bytes = view.snapshot_bytes(rank, epoch);
    if (view.has_local(rank, epoch)) {
      plan.source = RestorePlan::Source::kLocal;
      plan.direct_cost = model.read_time(StorageLevel::kLocal, bytes);
      return plan;
    }
    if (plan_rebuild(rank, epoch, view, &plan.reads)) {
      plan.source = RestorePlan::Source::kRebuild;
      return plan;
    }
    if (view.has_pfs(rank, epoch)) {
      plan.source = RestorePlan::Source::kPfs;
      plan.direct_cost = model.read_time(StorageLevel::kPfs, bytes);
    }
    return plan;
  }

 private:
  uint64_t share_bytes(uint64_t bytes) const {
    const uint64_t k = static_cast<uint64_t>(k_);
    return (bytes + k - 1) / k;  // ceil(B / k)
  }

  /// Decode feasibility (and, when `reads` is non-null, the read list) for
  /// rebuilding (rank, epoch) out of the group: known members contribute a
  /// folded data chunk, one live parity share per unknown member closes the
  /// system, and the Cauchy decode submatrix is solved to prove it.
  bool plan_rebuild(int rank, uint64_t epoch, const ResidencyView& view,
                    std::vector<RestorePlan::Read>* reads) const {
    if (view.fragments(rank, epoch) == nullptr) return false;
    const std::vector<int> members = group_ranks(rank);
    const int g = static_cast<int>(members.size());
    if (g < 2) return false;

    struct Share {
      int row = 0;
      int host_rank = -1;
      uint64_t bytes = 0;
    };
    std::vector<int> unknowns;  // positions whose epoch-e data is gone
    std::vector<Share> live_shares;
    std::set<int> rows_seen;
    for (int p = 0; p < g; ++p) {
      const int member = members[static_cast<size_t>(p)];
      const bool data_ok = member != rank && view.has_local(member, epoch) &&
                           view.node_in_service(machine_.node_of(member));
      if (!data_ok) unknowns.push_back(p);
      const std::vector<Fragment>* frags = view.fragments(member, epoch);
      if (frags == nullptr) continue;
      for (const Fragment& f : *frags) {
        if (!f.live || !f.parity) continue;
        if (!view.node_in_service(f.host_node)) continue;
        const int row = p * m_ + f.share;
        if (!rows_seen.insert(row).second) continue;  // re-placed duplicate
        live_shares.push_back(Share{row, f.host_rank, f.bytes});
      }
    }
    const int u = static_cast<int>(unknowns.size());
    if (u == 0) return false;  // nothing to rebuild (caller saw LOCAL dead)
    if (static_cast<int>(live_shares.size()) < u) return false;

    // Solve the decode submatrix: chosen parity rows x unknown columns. A
    // Cauchy selection is provably nonsingular, but the solver is the
    // arbiter — a singular selection (defensive) rejects the rebuild.
    const util::gf256::Matrix& family = family_for(g);
    util::gf256::Matrix dec(u, u);
    for (int i = 0; i < u; ++i)
      for (int j = 0; j < u; ++j)
        dec.at(i, j) = family.at(live_shares[static_cast<size_t>(i)].row,
                                 unknowns[static_cast<size_t>(j)]);
    if (!util::gf256::invert(dec)) return false;

    if (reads != nullptr) {
      const uint64_t chunk = share_bytes(view.snapshot_bytes(rank, epoch));
      for (int p = 0; p < g; ++p) {
        const int member = members[static_cast<size_t>(p)];
        if (member == rank) continue;
        if (std::find(unknowns.begin(), unknowns.end(), p) != unknowns.end())
          continue;
        reads->push_back(RestorePlan::Read{member, chunk});
      }
      for (int i = 0; i < u; ++i)
        reads->push_back(RestorePlan::Read{
            live_shares[static_cast<size_t>(i)].host_rank,
            live_shares[static_cast<size_t>(i)].bytes});
    }
    return true;
  }

  /// The (g*m x g) Cauchy row family for a group of g members. Depends only
  /// on (g, m_), and liveness queries run per (rank, epoch) on every
  /// restore-planning pass — cache it per group size (the round-robin deal
  /// can produce one short group).
  const util::gf256::Matrix& family_for(int g) const {
    auto it = family_cache_.find(g);
    if (it == family_cache_.end())
      it = family_cache_
               .emplace(g, util::gf256::cauchy_parity_matrix(g, g * m_))
               .first;
    return it->second;
  }

  int k_, m_;
  mutable std::map<int, util::gf256::Matrix> family_cache_;
};

}  // namespace

std::unique_ptr<RedundancyScheme> RedundancyScheme::make(
    const RedundancyConfig& cfg, const mpi::Machine& machine) {
  switch (cfg.kind) {
    case SchemeKind::kSingle:
      return std::make_unique<SingleScheme>();
    case SchemeKind::kPartner:
      return std::make_unique<PartnerScheme>(machine);
    case SchemeKind::kXorGroup:
      return std::make_unique<XorGroupScheme>(machine, cfg.group_size);
    case SchemeKind::kReedSolomon:
      return std::make_unique<ReedSolomonScheme>(machine, cfg.rs_k, cfg.rs_m);
  }
  SPBC_UNREACHABLE("redundancy scheme kind");
}

}  // namespace spbc::ckpt

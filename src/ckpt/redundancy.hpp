#pragma once
// Pluggable redundancy schemes for the staged checkpoint write path.
//
// SCR's redundancy descriptor (Moody et al., SC'10 — `scr_reddesc`) showed
// that the *shape* of a checkpoint's redundancy is a policy, not a property
// of the write path: SINGLE (node-local only), PARTNER (full copy on a buddy
// node), XOR (RAID-5-style rotating parity across a small group of nodes
// spanning failure domains) trade write bandwidth against failure coverage.
// This header extracts that decision out of ckpt::StagingArea: staging no
// longer knows what redundancy *means*, it only executes placement plans.
//
// A scheme answers three questions:
//   * encode  — which fragments (full copies or parity) to place where when
//     a snapshot's LOCAL write completes, skipping hosts whose storage died;
//   * liveness — is epoch e of a rank reconstructible without reading the
//     PFS, given the current residency (LOCAL copies, fragments, dead nodes);
//   * rebuild — the cheapest live reconstruction: a direct read (LOCAL, a
//     remote full copy, the PFS) or an event-driven XOR rebuild whose reads
//     ride net::Network and therefore contend like real traffic.
//
// The kPartner scheme reproduces the pre-refactor buddy-copy behavior
// bit-identically (same mapping, same costs, same restore-source counts);
// kXorGroup stores ~1/(G-1) of the partner-copy bytes per snapshot while
// still tolerating any single in-group node loss; kReedSolomon generalizes
// the group parity to GF(256) Reed-Solomon (util/gf256.hpp): m parity
// shares of ceil(B/k) bytes per snapshot — (m/k)x the partner bytes —
// tolerating any m concurrent in-group node losses (the liveness lattice
// SINGLE < PARTNER < XOR < RS).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/store.hpp"
#include "sim/time.hpp"

namespace spbc::mpi {
class Machine;
}

namespace spbc::ckpt {

enum class SchemeKind : uint8_t {
  kSingle,       // LOCAL only: no remote redundancy (fast, no node-loss cover)
  kPartner,      // full copy on a cross-failure-domain buddy node (the default)
  kXorGroup,     // rotating parity across a group of G nodes spanning domains
  kReedSolomon,  // GF(256) RS(k, m): m parity shares, any-m-loss tolerance
};

const char* scheme_name(SchemeKind kind);
std::optional<SchemeKind> parse_scheme(const std::string& name);

struct RedundancyConfig {
  SchemeKind kind = SchemeKind::kPartner;
  /// XOR group span in nodes (>= 2 to place any parity). Groups are dealt
  /// round-robin over the cluster-sorted node list so each group spans as
  /// many failure domains (clusters) as possible.
  int group_size = 4;
  /// Reed-Solomon shape: groups of k+m nodes, m parity shares of
  /// ceil(B/k) bytes per snapshot, any m in-group node losses tolerated.
  int rs_k = 4;
  int rs_m = 2;
};

/// One remote protection fragment of a (rank, epoch) snapshot: a full copy
/// (PARTNER) or a folded parity segment (XOR). Fragments are recorded when
/// their placement starts and turn live when the copy lands; a host node's
/// death flips them dead again.
struct Fragment {
  int host_rank = -1;  // rank whose node hosts the fragment
  int host_node = -1;
  uint64_t bytes = 0;
  bool parity = false;  // full copy otherwise
  bool live = false;
  /// Logical share id within the owner's redundancy set (0 for PARTNER and
  /// XOR; 0..m-1 under RS, where it selects the Cauchy parity row — a
  /// re-protection re-places the same share id on a new host).
  int share = 0;
  /// Silently lost: the host still believes it holds the fragment (live
  /// stays set, residency queries keep counting it) but the bytes are gone.
  /// An audit — a background scrub probe or the restore path's checksum of
  /// its source — discovers the loss and flips the fragment dead, KEEPING
  /// this bit set as "confirmed lost". While live, schemes never consult
  /// the bit (belief and truth diverging is the point); once dead, it tells
  /// the RS encode the share is genuinely gone rather than still in flight
  /// to its in-service host, so a repair re-places it.
  bool corrupt = false;
};

/// One placement the write path must execute: `bytes` from the snapshot
/// owner's node to `host_rank`'s node, over the real network.
struct PlacementStep {
  int host_rank = -1;
  uint64_t bytes = 0;
  bool parity = false;
  int share = 0;
};

struct PlacementPlan {
  std::vector<PlacementStep> steps;
};

/// How a restore gets the snapshot bytes back.
struct RestorePlan {
  enum class Source : uint8_t {
    kNone,        // every copy is gone (caller falls back an epoch)
    kLocal,       // node-local copy survives
    kRemoteCopy,  // full copy on a surviving host (the partner level)
    kRebuild,     // XOR reconstruction from surviving group fragments
    kPfs,         // parallel file system
  };
  Source source = Source::kNone;
  /// Read cost of a direct source (kLocal / kRemoteCopy / kPfs).
  sim::Time direct_cost = 0;
  /// kRebuild: network reads to schedule (surviving members' folded
  /// contributions plus the parity fragment), all addressed to the
  /// restoring rank's node.
  struct Read {
    int src_rank = -1;
    uint64_t bytes = 0;
  };
  std::vector<Read> reads;
};

/// Residency the scheme consults when planning: implemented by StagingArea.
class ResidencyView {
 public:
  virtual ~ResidencyView() = default;
  virtual bool has_local(int rank, uint64_t epoch) const = 0;
  virtual bool has_pfs(int rank, uint64_t epoch) const = 0;
  /// Fragments placed for (rank, epoch); nullptr when the snapshot is not
  /// registered with staging.
  virtual const std::vector<Fragment>* fragments(int rank,
                                                 uint64_t epoch) const = 0;
  virtual uint64_t snapshot_bytes(int rank, uint64_t epoch) const = 0;
  /// False while the node's storage is dead (killed, no resident rewrote).
  virtual bool node_in_service(int node) const = 0;
};

class RedundancyScheme {
 public:
  virtual ~RedundancyScheme() = default;

  virtual SchemeKind kind() const = 0;
  const char* name() const { return scheme_name(kind()); }

  /// Ranks whose nodes may host fragments of `rank`'s snapshots (the
  /// protection group, excluding `rank` itself). Stable for the machine.
  virtual std::vector<int> group_of(int rank) const = 0;

  /// Encode step: fragments to place for (rank, epoch). Fragments already
  /// live (re-protection after a host loss) and out-of-service hosts are
  /// skipped; an empty plan means "no remote redundancy placeable now".
  virtual PlacementPlan encode(int rank, uint64_t epoch, uint64_t bytes,
                               const ResidencyView& view) const = 0;

  /// Liveness: can epoch e of `rank` be served without reading the PFS?
  virtual bool recoverable_without_pfs(int rank, uint64_t epoch,
                                       const ResidencyView& view) const = 0;

  /// Cheapest live reconstruction (Source::kNone when every copy is gone).
  virtual RestorePlan restore_plan(int rank, uint64_t epoch,
                                   const ResidencyView& view,
                                   const StorageCostModel& model) const = 0;

  /// The machine's PHYSICAL rank->node binding changed (spare hot-swap,
  /// shrunk restart). Schemes that memoize host choices re-derive them;
  /// group/slot structure is LOGICAL and stays pinned — fragments already
  /// placed are keyed to it (RS Cauchy rows, XOR group membership), and
  /// reshuffling groups mid-run would orphan every landed share.
  virtual void on_topology_change() {}

  static std::unique_ptr<RedundancyScheme> make(const RedundancyConfig& cfg,
                                                const mpi::Machine& machine);
};

/// The cross-failure-domain buddy mapping shared by the PARTNER scheme and
/// StagingArea::partner_of: the same node-local slot on the nearest node of
/// a *different cluster*, falling back to the nearest distinct node when the
/// machine is a single cluster. -1 on single-node topologies.
int cross_domain_partner(const mpi::Machine& machine, int rank);

}  // namespace spbc::ckpt

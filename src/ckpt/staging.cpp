#include "ckpt/staging.hpp"

#include <algorithm>
#include <tuple>

#include "mpi/machine.hpp"
#include "util/assert.hpp"

namespace spbc::ckpt {

void StagingArea::attach(mpi::Machine& machine) {
  machine_ = &machine;
  scheme_ = RedundancyScheme::make(cfg_.redundancy, machine);
  if (cfg_.prepare_escalated)
    escalated_scheme_ = RedundancyScheme::make(cfg_.escalated, machine);
  // Node-indexed state covers the spare pool too: a spare that swaps in
  // hosts fragments and queues like any compute node.
  const int nodes = machine.topology().total_nodes();
  const size_t nranks = static_cast<size_t>(machine.nranks());
  node_storage_gen_.assign(static_cast<size_t>(nodes), 0);
  node_down_ = std::vector<std::atomic<uint8_t>>(static_cast<size_t>(nodes));
  node_local_q_.assign(static_cast<size_t>(nodes), {});
  node_pfs_q_.assign(static_cast<size_t>(nodes), {});
  pfs_q_depth_.assign(static_cast<size_t>(nodes), 0);
  pfs_frontier_.assign(nranks, 0);
  entries_.assign(nranks, {});
  stats_rows_ = std::vector<StagingStats>(nranks > 0 ? nranks : 1);
}

const RedundancyScheme& StagingArea::active_scheme() const {
  return active_scheme_ == 1 && escalated_scheme_ != nullptr
             ? *escalated_scheme_
             : *scheme_;
}

void StagingArea::set_scheme_escalated(bool escalated) {
  if (escalated_scheme_ == nullptr) return;
  active_scheme_ = escalated ? 1 : 0;
}

const RedundancyScheme& StagingArea::scheme_of(const Entry& e) const {
  return e.scheme_idx == 1 && escalated_scheme_ != nullptr ? *escalated_scheme_
                                                           : *scheme_;
}

int StagingArea::partner_of(int rank) const {
  SPBC_ASSERT(machine_ != nullptr);
  // The PARTNER scheme memoizes the mapping; other schemes don't use it, so
  // introspection computes it directly.
  if (scheme_->kind() == SchemeKind::kPartner) {
    std::vector<int> group = scheme_->group_of(rank);
    return group.empty() ? -1 : group.front();
  }
  return cross_domain_partner(*machine_, rank);
}

uint64_t StagingArea::node_gen(int node) const {
  return node_storage_gen_[static_cast<size_t>(node)];
}

StagingArea::Entry* StagingArea::find(int rank, uint64_t epoch) {
  if (static_cast<size_t>(rank) >= entries_.size()) return nullptr;
  auto& row = entries_[static_cast<size_t>(rank)];
  auto it = row.find(epoch);
  return it == row.end() ? nullptr : &it->second;
}
const StagingArea::Entry* StagingArea::find(int rank, uint64_t epoch) const {
  if (static_cast<size_t>(rank) >= entries_.size()) return nullptr;
  const auto& row = entries_[static_cast<size_t>(rank)];
  auto it = row.find(epoch);
  return it == row.end() ? nullptr : &it->second;
}

// ---- ResidencyView ---------------------------------------------------------

bool StagingArea::has_local(int rank, uint64_t epoch) const {
  const Entry* e = find(rank, epoch);
  return e != nullptr && (e->levels & kAtLocal) != 0;
}

bool StagingArea::has_pfs(int rank, uint64_t epoch) const {
  const Entry* e = find(rank, epoch);
  return e != nullptr && (e->levels & kAtPfs) != 0;
}

const std::vector<Fragment>* StagingArea::fragments(int rank,
                                                    uint64_t epoch) const {
  const Entry* e = find(rank, epoch);
  return e == nullptr ? nullptr : &e->fragments;
}

uint64_t StagingArea::snapshot_bytes(int rank, uint64_t epoch) const {
  const Entry* e = find(rank, epoch);
  return e == nullptr ? 0 : e->bytes;
}

bool StagingArea::node_in_service(int node) const {
  return node_down_[static_cast<size_t>(node)].load(
             std::memory_order_relaxed) == 0;
}

// ---- write path ------------------------------------------------------------

sim::Time StagingArea::write(int rank, uint64_t epoch, uint64_t bytes,
                             LevelPlan plan, uint64_t chain_base) {
  if (!enabled()) return 0.0;
  SPBC_ASSERT(machine_ != nullptr);
  const int node = machine_->node_of(rank);
  const sim::Time now = machine_->engine().now();
  // The scrub cadence starts at the first staged write: before that there is
  // nothing to audit, and the machine's engine shard plan may not be final
  // yet at attach time (set_cluster_of reshapes the queues). Before the app
  // runs, writes cannot race; afterwards the atomic exchange keeps the
  // kick-off single-shot across shard events.
  if (cfg_.scrub_period > 0 && !scrub_started_.exchange(true))
    schedule_scrub();
  // A resident is writing again: the node is back in service.
  node_down_[static_cast<size_t>(node)].store(0, std::memory_order_relaxed);
  SPBC_ASSERT(static_cast<size_t>(rank) < entries_.size());
  Entry& e = entries_[static_cast<size_t>(rank)][epoch];
  e.bytes = bytes;
  e.chain_base = chain_base;
  e.levels = 0;
  e.retries_left = 3;
  // The plan (and the active scheme) are honored by the async chain; the
  // sync path keeps the pre-control-plane behavior bit-for-bit.
  e.scheme_idx = cfg_.async ? active_scheme_ : 0;
  e.want_redundancy = !cfg_.async || plan.redundancy;
  e.want_pfs = !cfg_.async || plan.pfs;
  e.chain_id = next_chain_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  e.fragments.clear();

  if (!cfg_.async) {
    // Synchronous write, charged in full to the member's fiber (the
    // pre-staging behavior). Local-device writes from co-resident ranks
    // serialize on the node's device; the PFS cost model is already a
    // per-process share.
    sim::Time cost = 0;
    switch (cfg_.level) {
      case StorageLevel::kNone:
        break;
      case StorageLevel::kLocal:
        e.levels = kAtLocal;
        srow(rank).bytes_to_local += bytes;
        cost = node_local_q_[static_cast<size_t>(node)].reserve(
                   now, cfg_.model.write_time(StorageLevel::kLocal, bytes)) -
               now;
        break;
      case StorageLevel::kPartner: {
        // Scheme-driven synchronous redundancy: the fragments land with the
        // write (no background chain). encode() skips out-of-service hosts —
        // a copy must not be recorded on a node whose storage died and has
        // not been re-initialized by a resident's write (invalidate_node
        // dedups repeat failures of a down node, so the stale copy would
        // survive the node's next death).
        e.levels = kAtLocal;
        srow(rank).bytes_to_local += bytes;
        PlacementPlan plan = scheme_->encode(rank, epoch, bytes, *this);
        sim::Time w = 0;
        switch (cfg_.redundancy.kind) {
          case SchemeKind::kSingle:
            w = cfg_.model.write_time(StorageLevel::kLocal, bytes);
            break;
          case SchemeKind::kPartner:
            // Pre-refactor cost: the PARTNER write time covers the local
            // write plus the buddy copy, charged whether or not the buddy
            // is in service.
            w = cfg_.model.write_time(StorageLevel::kPartner, bytes);
            break;
          case SchemeKind::kXorGroup:
          case SchemeKind::kReedSolomon:
            // Group parity: the local write plus one wire transfer per
            // parity share (folded segment for XOR, Cauchy share for RS).
            w = cfg_.model.write_time(StorageLevel::kLocal, bytes);
            for (const PlacementStep& step : plan.steps) {
              w += cfg_.model.base_latency +
                   static_cast<double>(step.bytes) / cfg_.model.partner_bw;
            }
            break;
        }
        for (const PlacementStep& step : plan.steps) {
          const int hnode = machine_->node_of(step.host_rank);
          e.fragments.push_back(Fragment{step.host_rank, hnode, step.bytes,
                                         step.parity, true, step.share});
          if (step.parity) {
            ++srow(rank).parity_fragments;
            srow(rank).bytes_to_parity += step.bytes;
          } else {
            ++srow(rank).partner_copies;
            srow(rank).bytes_to_partner += step.bytes;
          }
        }
        cost = node_local_q_[static_cast<size_t>(node)].reserve(now, w) - now;
        break;
      }
      case StorageLevel::kPfs:
        e.levels = kAtPfs;
        finish_pfs(rank, epoch);
        cost = cfg_.model.write_time(StorageLevel::kPfs, bytes);
        break;
    }
    return cost;
  }

  // Async: the fiber pays only the LOCAL write; the promotion chain starts
  // when that write completes.
  e.levels = kAtLocal;
  srow(rank).bytes_to_local += bytes;
  ++srow(rank).drains_started;
  sim::Time local = cfg_.model.write_time(StorageLevel::kLocal, bytes);
  sim::Time done = node_local_q_[static_cast<size_t>(node)].reserve(now, local);
  machine_->engine().at(done, [this, rank, epoch] {
    start_protection(rank, epoch, /*then_flush=*/true);
  });
  return done - now;
}

void StagingArea::start_protection(int rank, uint64_t epoch, bool then_flush) {
  Entry* e = find(rank, epoch);
  if (e == nullptr || (e->levels & kAtLocal) == 0) {
    ++srow(rank).drains_aborted;  // rolled back or died before the drain ran
    return;
  }
  // A LOCAL-only plan ends the chain here (or skips straight to the PFS
  // flush when the plan keeps that level).
  PlacementPlan plan = e->want_redundancy
                           ? scheme_of(*e).encode(rank, epoch, e->bytes, *this)
                           : PlacementPlan{};
  if (plan.steps.empty()) {
    // Nothing placeable (kSingle, single-node topology, or every viable
    // host is out of service): promote straight from the LOCAL copy.
    if (then_flush)
      start_pfs_flush(rank, epoch, machine_->node_of(rank), -1);
    return;
  }
  auto pending = std::make_shared<int>(static_cast<int>(plan.steps.size()));
  for (const PlacementStep& step : plan.steps)
    place_fragment(rank, epoch, step, pending, then_flush);
}

void StagingArea::place_fragment(int rank, uint64_t epoch,
                                 const PlacementStep& step,
                                 std::shared_ptr<int> pending,
                                 bool then_flush) {
  Entry* e = find(rank, epoch);
  SPBC_ASSERT(e != nullptr);
  const int hnode = machine_->node_of(step.host_rank);
  const uint64_t hgen = node_gen(hnode);
  const uint64_t chain = e->chain_id;
  const size_t frag_idx = e->fragments.size();
  e->fragments.push_back(Fragment{step.host_rank, hnode, step.bytes,
                                  step.parity, false, step.share});
  // The placement rides the real network, so it shares the home node's NIC
  // with application traffic and arrives after genuine transfer time. The
  // arrival is routed to the *home* rank's shard (not the fragment host's):
  // the callback mutates the home rank's entry row.
  machine_->network().submit_routed(
      net::Transfer{rank, step.host_rank, step.bytes}, /*route_rank=*/rank,
      [this, rank, epoch, hnode, hgen, chain, frag_idx, pending, then_flush] {
        Entry* entry = find(rank, epoch);
        if (entry == nullptr) {
          ++srow(rank).drains_aborted;  // rolled back while in flight
          return;
        }
        if (entry->chain_id != chain) return;  // superseded by a re-write
        if ((entry->levels & kAtLocal) == 0 || node_gen(hnode) != hgen) {
          // Source or destination died in flight: re-issue from whatever
          // level still holds a copy instead of abandoning the chain.
          retry_from_surviving(rank, epoch);
          return;
        }
        Fragment& f = entry->fragments[frag_idx];
        f.live = true;
        if (f.parity) {
          ++srow(rank).parity_fragments;
          srow(rank).bytes_to_parity += f.bytes;
        } else {
          ++srow(rank).partner_copies;
          srow(rank).bytes_to_partner += f.bytes;
        }
        if (--*pending != 0 || !then_flush) return;
        // Promote onward: a full copy flushes from its host's node (freeing
        // the home node's PFS share); parity is not the data, so the flush
        // streams from the home node's LOCAL copy.
        if (!f.parity)
          start_pfs_flush(rank, epoch, f.host_node, static_cast<int>(frag_idx));
        else
          start_pfs_flush(rank, epoch, machine_->node_of(rank), -1);
      });
}

double StagingArea::pfs_available_frac(sim::Time now) const {
  double frac = 1.0;
  for (const PfsInterferencePhase& p : cfg_.pfs_interference) {
    if (now < p.start || now >= p.end) continue;
    const double f = p.available_frac <= 0.0   ? 1e-3
                     : p.available_frac > 1.0 ? 1.0
                                              : p.available_frac;
    frac = std::min(frac, f);
  }
  return frac;
}

void StagingArea::start_pfs_flush(int rank, uint64_t epoch, int from_node,
                                  int source_frag) {
  if (cfg_.level != StorageLevel::kPfs) return;  // chain ends at redundancy
  Entry* e = find(rank, epoch);
  if (e == nullptr) return;
  if (!e->want_pfs) return;  // the epoch's plan ends the chain before PFS
  const sim::Time now = machine_->engine().now();
  // Multi-job PFS interference: the flush sees only its available share of
  // the ingest bandwidth, sampled piecewise-constant at flush start.
  const sim::Time base_cost =
      cfg_.model.write_time(StorageLevel::kPfs, e->bytes);
  const double frac = pfs_available_frac(now);
  const sim::Time cost = base_cost / frac;
  if (frac < 1.0) {
    ++srow(rank).pfs_contended_flushes;
    srow(rank).pfs_interference_time += cost - base_cost;
  }
  const sim::Time done =
      node_pfs_q_[static_cast<size_t>(from_node)].reserve(now, cost);
  const int depth = ++pfs_q_depth_[static_cast<size_t>(from_node)];
  srow(rank).pfs_queue_depth_hwm = std::max(
      srow(rank).pfs_queue_depth_hwm, static_cast<uint64_t>(depth));
  const uint64_t gen = node_gen(from_node);
  const uint64_t chain = e->chain_id;
  machine_->engine().at(done, [this, rank, epoch, from_node, gen, chain,
                               source_frag] {
    --pfs_q_depth_[static_cast<size_t>(from_node)];
    Entry* entry = find(rank, epoch);
    if (entry == nullptr) {
      ++srow(rank).drains_aborted;  // rolled back while the flush was queued
      return;
    }
    if (entry->chain_id != chain) return;  // superseded by a re-write
    const bool src_ok =
        source_frag < 0
            ? (entry->levels & kAtLocal) != 0
            : entry->fragments[static_cast<size_t>(source_frag)].live;
    if (!src_ok || node_gen(from_node) != gen) {
      // The flush's source copy died mid-write (e.g. the host node was
      // lost): retry from the cheapest surviving level — usually the home
      // node's LOCAL copy, which also re-establishes redundancy.
      retry_from_surviving(rank, epoch);
      return;
    }
    entry->levels |= kAtPfs;
    ++srow(rank).pfs_flushes;
    srow(rank).bytes_to_pfs += entry->bytes;
    finish_pfs(rank, epoch);
  });
}

void StagingArea::retry_from_surviving(int rank, uint64_t epoch) {
  Entry* e = find(rank, epoch);
  bool any_fragment = false;
  const Fragment* copy = nullptr;
  int copy_idx = -1;
  if (e != nullptr) {
    for (size_t i = 0; i < e->fragments.size(); ++i) {
      const Fragment& f = e->fragments[i];
      if (!f.live) continue;
      any_fragment = true;
      if (!f.parity && copy == nullptr) {
        copy = &f;
        copy_idx = static_cast<int>(i);
      }
    }
  }
  if (e == nullptr || ((e->levels & (kAtLocal | kAtPfs)) == 0 && !any_fragment)) {
    ++srow(rank).drains_aborted;  // every copy is gone; the chain is lost
    return;
  }
  if (e->levels & kAtPfs) return;  // already durable; nothing to promote
  if (e->retries_left == 0) {
    // A copy survives (the snapshot stays recoverable from it) but the
    // promotion budget is spent: the chain stalls short of PFS.
    ++srow(rank).retries_exhausted;
    return;
  }
  --e->retries_left;
  ++srow(rank).hop_retries;
  if (e->levels & kAtLocal) {
    // Cheapest surviving copy: the home node's LOCAL write. Restart the
    // remaining chain there (missing fragments re-placed when a viable host
    // is in service, else a direct PFS flush).
    start_protection(rank, epoch, /*then_flush=*/true);
    return;
  }
  if (copy != nullptr) {
    // LOCAL is gone but a full-copy fragment survives: flush from its host.
    start_pfs_flush(rank, epoch, copy->host_node, copy_idx);
    return;
  }
  // Only parity fragments survive: flushable data requires a full copy, so
  // the chain stalls short of PFS. The snapshot remains recoverable through
  // the scheme's rebuild path until the group loses a second member.
  ++srow(rank).retries_exhausted;
}

void StagingArea::finish_pfs(int rank, uint64_t epoch) {
  uint64_t& frontier = pfs_frontier_[static_cast<size_t>(rank)];
  frontier = std::max(frontier, epoch);
}

// ---- residency / restore ---------------------------------------------------

uint8_t StagingArea::levels(int rank, uint64_t epoch) const {
  const Entry* e = find(rank, epoch);
  if (e == nullptr) return 0;
  uint8_t mask = e->levels;
  for (const Fragment& f : e->fragments)
    if (f.live) mask |= kAtPartner;
  return mask;
}

bool StagingArea::element_recoverable(const Entry& e, int rank,
                                      uint64_t epoch) const {
  if (e.levels & kAtPfs) return true;
  return scheme_of(e).recoverable_without_pfs(rank, epoch, *this);
}

bool StagingArea::recoverable(int rank, uint64_t epoch) const {
  if (!enabled()) return true;
  const Entry* head = find(rank, epoch);
  if (head == nullptr) return false;
  // Every element of the delta chain must be restorable: materializing the
  // head epoch reads the base and every interior delta. A full capture
  // (chain_base == epoch; always the case with reduction off) degenerates to
  // the single-element check.
  for (uint64_t e = epoch;; --e) {
    const Entry* en = find(rank, e);
    if (en == nullptr || !element_recoverable(*en, rank, e)) return false;
    if (e <= head->chain_base || e == 0) break;
  }
  return true;
}

std::vector<uint64_t> StagingArea::restore_chain(int rank,
                                                 uint64_t epoch) const {
  const Entry* head = find(rank, epoch);
  if (head == nullptr || head->chain_base >= epoch) return {epoch};
  std::vector<uint64_t> chain;
  chain.reserve(static_cast<size_t>(epoch - head->chain_base + 1));
  for (uint64_t e = head->chain_base; e <= epoch; ++e) chain.push_back(e);
  return chain;
}

RestorePlan StagingArea::plan_restore(int rank, uint64_t epoch) const {
  if (!enabled()) return {};
  const Entry* e = find(rank, epoch);
  if (e == nullptr) return {};
  return scheme_of(*e).restore_plan(rank, epoch, *this, cfg_.model);
}

void StagingArea::note_restore(const RestorePlan& plan) {
  // Restores are orchestrated from serial (recovery) context, which runs
  // alone: row 0 is safe for all of them.
  StagingStats& st = stats_rows_[0];
  switch (plan.source) {
    case RestorePlan::Source::kNone:
      break;
    case RestorePlan::Source::kLocal:
      ++st.restores_by_level[0];
      break;
    case RestorePlan::Source::kRemoteCopy:
      ++st.restores_by_level[1];
      break;
    case RestorePlan::Source::kRebuild:
      ++st.rebuild_restores;
      break;
    case RestorePlan::Source::kPfs:
      ++st.restores_by_level[2];
      break;
  }
}

void StagingArea::execute_restore(int rank, uint64_t epoch,
                                  std::function<void(bool)> done) {
  const std::vector<uint64_t> chain = restore_chain(rank, epoch);
  if (chain.size() == 1) {
    do_restore(rank, epoch, std::move(done), /*budget=*/2);
    return;
  }
  // Delta chain: the base and every delta restore from their own cheapest
  // sources, overlapped; the materialization succeeds only if all of them
  // do. All completions land on the restoring rank's shard (direct reads via
  // engine events, rebuilds via run_serial), so the shared counters are
  // race-free.
  auto remaining = std::make_shared<int>(static_cast<int>(chain.size()));
  auto all_ok = std::make_shared<bool>(true);
  auto shared_done =
      std::make_shared<std::function<void(bool)>>(std::move(done));
  for (uint64_t e : chain) {
    do_restore(
        rank, e,
        [remaining, all_ok, shared_done](bool ok) {
          if (!ok) *all_ok = false;
          if (--*remaining == 0) (*shared_done)(*all_ok);
        },
        /*budget=*/2);
  }
}

void StagingArea::do_restore(int rank, uint64_t epoch,
                             std::function<void(bool)> done, int budget) {
  // Audit on read: the restore checksums its sources before trusting them,
  // so silently-lost fragments are discovered here at the latest — the plan
  // below only ever reads genuinely live copies.
  audit_for_restore(rank, epoch);
  RestorePlan plan = plan_restore(rank, epoch);
  if (plan.source == RestorePlan::Source::kNone) {
    done(false);
    return;
  }
  if (plan.source != RestorePlan::Source::kRebuild) {
    note_restore(plan);
    machine_->engine().after(plan.direct_cost, [done] { done(true); });
    return;
  }
  SPBC_ASSERT(!plan.reads.empty());
  uint64_t total = 0;
  for (const RestorePlan::Read& rd : plan.reads) total += rd.bytes;
  auto remaining = std::make_shared<int>(static_cast<int>(plan.reads.size()));
  auto failed = std::make_shared<bool>(false);
  for (const RestorePlan::Read& rd : plan.reads) {
    const int snode = machine_->node_of(rd.src_rank);
    const uint64_t sgen = node_gen(snode);
    // Rebuild reads are real transfers: they contend with application and
    // drain traffic on the survivors' NICs and on the restoring node. All
    // arrivals land on the restoring rank's shard, so the remaining/failed
    // bookkeeping is race-free; the completion itself bounces to serial
    // context — a retry submits from other clusters' channel rows and
    // `done` resumes recovery orchestration.
    machine_->network().submit(
        net::Transfer{rd.src_rank, rank, rd.bytes},
        [this, rank, epoch, done, snode, sgen, remaining, failed, total,
         budget] {
          if (node_gen(snode) != sgen) *failed = true;
          if (--*remaining != 0) return;
          const bool f = *failed;
          machine_->engine().run_serial([this, rank, epoch, done, f, total,
                                         budget] {
            if (f) {
              // A source died mid-rebuild: re-plan from what still survives
              // (another fragment set, or the PFS), within a bounded budget.
              if (budget == 0) {
                done(false);
                return;
              }
              ++stats_rows_[0].rebuild_retries;
              do_restore(rank, epoch, done, budget - 1);
              return;
            }
            ++stats_rows_[0].rebuild_restores;
            stats_rows_[0].rebuild_bytes_read += total;
            done(true);
          });
        });
  }
}

uint64_t StagingArea::pfs_frontier(int rank) const {
  if (pfs_frontier_.empty()) return 0;
  return pfs_frontier_[static_cast<size_t>(rank)];
}

// ---- failure / pruning -----------------------------------------------------

void StagingArea::invalidate_node(int node) {
  if (!enabled()) return;
  // A cluster failure kills every rank of a node back-to-back; only the
  // first kill does the work. The flag is cleared when a respawned resident
  // writes again (the node is back in service with empty storage).
  if (node_down_[static_cast<size_t>(node)].load(std::memory_order_relaxed))
    return;
  node_down_[static_cast<size_t>(node)].store(1, std::memory_order_relaxed);
  ++node_storage_gen_[static_cast<size_t>(node)];
  std::vector<std::pair<int, uint64_t>> reprotect;
  for (size_t r = 0; r < entries_.size(); ++r) {
    // Residency follows the PHYSICAL binding: after a hot-swap the logical
    // layout still maps the rank to its dead birth node.
    const bool resident = machine_->node_of(static_cast<int>(r)) == node;
    for (auto& [epoch, e] : entries_[r]) {
      if (resident) e.levels &= static_cast<uint8_t>(~kAtLocal);
      bool lost_fragment = false;
      for (Fragment& f : e.fragments) {
        if (f.live && f.host_node == node) {
          f.live = false;
          lost_fragment = true;
        }
      }
      // Proactive re-protection: the snapshot's data survives at LOCAL but a
      // landed fragment just died with its host — re-encode onto a
      // replacement host so the scheme's coverage is restored before the
      // next failure.
      if (lost_fragment && (e.levels & kAtLocal) != 0 &&
          (e.levels & kAtPfs) == 0 && e.retries_left > 0)
        reprotect.emplace_back(static_cast<int>(r), epoch);
    }
  }
  if (reprotect.empty()) return;
  // Deferred one event: a cluster failure takes several nodes down in one
  // call stack, and the replacement host must be chosen after the whole
  // batch is marked down.
  machine_->engine().after(0.0, [this, reprotect] {
    for (const auto& [rank, epoch] : reprotect) {
      Entry* e = find(rank, epoch);
      if (e == nullptr || (e->levels & kAtLocal) == 0 ||
          (e->levels & kAtPfs) != 0 || e->retries_left == 0)
        continue;
      PlacementPlan plan = scheme_of(*e).encode(rank, epoch, e->bytes, *this);
      if (plan.steps.empty()) continue;  // no viable replacement host
      --e->retries_left;
      ++srow(rank).reprotections;
      auto pending = std::make_shared<int>(static_cast<int>(plan.steps.size()));
      for (const PlacementStep& step : plan.steps)
        place_fragment(rank, epoch, step, pending, /*then_flush=*/false);
    }
  });
}

// ---- silent loss / background scrubbing ------------------------------------

void StagingArea::audit_for_restore(int rank, uint64_t epoch) {
  if (!enabled()) return;
  const Entry* head = find(rank, epoch);
  const uint64_t base = head == nullptr ? epoch : head->chain_base;
  // Audit the whole chain: a restore of a delta epoch reads every element,
  // so corrupt copies anywhere in it must be dropped before recoverability
  // is believed.
  for (uint64_t ee = epoch;; --ee) {
    Entry* e = find(rank, ee);
    if (e != nullptr) {
      for (Fragment& f : e->fragments) {
        if (f.live && f.corrupt) {
          // The corrupt bit stays set: on a dead fragment it means
          // "confirmed lost", which keeps the RS encode from treating the
          // share as still in flight to its (alive) host.
          f.live = false;
          ++srow(rank).corrupt_read_drops;
        }
      }
    }
    if (ee <= base || ee == 0) break;
  }
}

bool StagingArea::corrupt_fragment(int rank, uint64_t epoch, size_t frag_idx) {
  Entry* e = find(rank, epoch);
  if (e == nullptr || frag_idx >= e->fragments.size()) return false;
  Fragment& f = e->fragments[frag_idx];
  if (!f.live || f.corrupt || !node_in_service(f.host_node)) return false;
  f.corrupt = true;
  ++srow(rank).silent_losses_injected;
  return true;
}

bool StagingArea::corrupt_one_fragment(uint64_t salt) {
  // Deterministic pick over the row-ordered live candidates; the caller's
  // serial context makes the scan itself layout-independent.
  std::vector<std::tuple<int, uint64_t, size_t>> cands;
  for (size_t r = 0; r < entries_.size(); ++r) {
    for (const auto& [epoch, e] : entries_[r]) {
      for (size_t i = 0; i < e.fragments.size(); ++i) {
        const Fragment& f = e.fragments[i];
        if (f.live && !f.corrupt && node_in_service(f.host_node))
          cands.emplace_back(static_cast<int>(r), epoch, i);
      }
    }
  }
  if (cands.empty()) return false;
  const auto& [rank, epoch, idx] = cands[salt % cands.size()];
  return corrupt_fragment(rank, epoch, idx);
}

uint64_t StagingArea::corrupt_live_fragments() const {
  uint64_t n = 0;
  for (const auto& row : entries_)
    for (const auto& [epoch, e] : row)
      for (const Fragment& f : e.fragments)
        if (f.live && f.corrupt) ++n;
  return n;
}

namespace {
/// Wire size of one scrub digest probe: a content hash plus metadata, not
/// the fragment itself — the audit is cheap but it still rides the network.
constexpr uint64_t kScrubDigestBytes = 256;
}  // namespace

void StagingArea::run_scrub_wave() {
  if (!enabled()) return;
  ++stats_rows_[0].scrub_waves;
  for (size_t r = 0; r < entries_.size(); ++r) {
    for (const auto& [epoch, e] : entries_[r]) {
      for (size_t i = 0; i < e.fragments.size(); ++i) {
        const Fragment& f = e.fragments[i];
        if (!f.live || !node_in_service(f.host_node)) continue;
        scrub_probe(static_cast<int>(r), epoch, i);
      }
    }
  }
}

void StagingArea::scrub_probe(int rank, uint64_t epoch, size_t frag_idx) {
  Entry* e = find(rank, epoch);
  SPBC_ASSERT(e != nullptr);
  const Fragment& f = e->fragments[frag_idx];
  const uint64_t chain = e->chain_id;
  const int hnode = f.host_node;
  const uint64_t hgen = node_gen(hnode);
  ++srow(rank).scrub_probes;
  // The digest streams from the fragment's host to the owner over the real
  // network, so scrub traffic contends honestly with the application. The
  // arrival is routed to the owner's shard (the callback mutates the
  // owner's entry row).
  machine_->network().submit_routed(
      net::Transfer{f.host_rank, rank, kScrubDigestBytes}, /*route_rank=*/rank,
      [this, rank, epoch, chain, frag_idx, hnode, hgen] {
        Entry* entry = find(rank, epoch);
        if (entry == nullptr || entry->chain_id != chain) return;
        if (frag_idx >= entry->fragments.size()) return;
        Fragment& fr = entry->fragments[frag_idx];
        if (!fr.live || node_gen(hnode) != hgen) return;  // died meanwhile
        if (!fr.corrupt) return;  // digest matched: the copy is healthy
        // Silent loss found: drop the belief and re-encode through the
        // re-protection path while the LOCAL data still exists — before a
        // real failure turns the silent loss into an unrecoverable one. The
        // corrupt bit stays set on the dead fragment ("confirmed lost"), so
        // the RS encode re-places the share instead of assuming it is still
        // in flight to its in-service host.
        fr.live = false;
        ++srow(rank).scrubs_detected;
        if ((entry->levels & kAtLocal) == 0 || (entry->levels & kAtPfs) != 0)
          return;  // nothing to re-encode from, or already durable anyway
        PlacementPlan plan =
            scheme_of(*entry).encode(rank, epoch, entry->bytes, *this);
        if (plan.steps.empty()) return;  // no viable replacement host
        ++srow(rank).scrubs_repaired;
        auto pending =
            std::make_shared<int>(static_cast<int>(plan.steps.size()));
        for (const PlacementStep& step : plan.steps)
          place_fragment(rank, epoch, step, pending, /*then_flush=*/false);
      });
}

void StagingArea::schedule_scrub() {
  if (cfg_.scrub_period <= 0 || !async()) return;
  machine_->engine().after_serial(cfg_.scrub_period, [this] {
    // Stop when the machine wound down: run() ends only once the event
    // queues drain, so an unconditional self-reschedule would never let it.
    if (machine_->engine().live_task_count() == 0) return;
    if (scrub_tick_) scrub_tick_(machine_->engine().now());
    run_scrub_wave();
    schedule_scrub();
  });
}

void StagingArea::charge_local_spill(int rank, uint64_t bytes) {
  if (!enabled() || machine_ == nullptr) return;
  const int node = machine_->node_of(rank);
  if (node_down_[static_cast<size_t>(node)].load(std::memory_order_relaxed))
    return;
  // Background write: it occupies the node's snapshot device (future LOCAL
  // writes queue behind it) but charges no fiber.
  node_local_q_[static_cast<size_t>(node)].reserve(
      machine_->engine().now(),
      cfg_.model.write_time(StorageLevel::kLocal, bytes));
}

void StagingArea::drop_epochs_above(int rank, uint64_t epoch) {
  if (static_cast<size_t>(rank) >= entries_.size()) return;
  auto& row = entries_[static_cast<size_t>(rank)];
  row.erase(row.upper_bound(epoch), row.end());
  // The frontier must not claim dropped epochs: commit uses it as the
  // retention floor, and a stale high frontier would let a re-executed
  // commit prune the real fallback epochs. Recompute it from the surviving
  // PFS-resident entries.
  if (!pfs_frontier_.empty() && pfs_frontier_[static_cast<size_t>(rank)] > epoch) {
    uint64_t frontier = 0;
    for (const auto& [ep, e] : row)
      if (e.levels & kAtPfs) frontier = ep;
    pfs_frontier_[static_cast<size_t>(rank)] = frontier;
  }
}

void StagingArea::rename_epoch(int rank, uint64_t from, uint64_t to) {
  if (!enabled()) return;
  if (static_cast<size_t>(rank) >= entries_.size() || from == to) return;
  auto& row = entries_[static_cast<size_t>(rank)];
  auto it = row.find(from);
  if (it == row.end()) return;
  Entry moved = std::move(it->second);
  // Migration renames only full captures (the store asserts the same): the
  // re-keyed entry stays self-anchored in the destination's epoch space.
  if (moved.chain_base == from) moved.chain_base = to;
  row.erase(it);
  row[to] = std::move(moved);
  // Keep the retention floor keyed to the surviving epoch numbers. Stale
  // chain callbacks keyed to `from` now find no entry and abort harmlessly
  // (the flip preconditions already saw the chain reach PFS).
  if (!pfs_frontier_.empty()) {
    uint64_t frontier = 0;
    for (const auto& [ep, e] : row)
      if (e.levels & kAtPfs) frontier = std::max(frontier, ep);
    pfs_frontier_[static_cast<size_t>(rank)] = frontier;
  }
}

void StagingArea::on_topology_change() {
  if (scheme_ != nullptr) scheme_->on_topology_change();
  if (escalated_scheme_ != nullptr) escalated_scheme_->on_topology_change();
}

void StagingArea::prune_epochs_below(int rank, uint64_t epoch) {
  if (static_cast<size_t>(rank) >= entries_.size()) return;
  auto& row = entries_[static_cast<size_t>(rank)];
  row.erase(row.begin(), row.lower_bound(epoch));
}

StagingStats StagingArea::stats() const {
  StagingStats out;
  for (const StagingStats& s : stats_rows_) {
    out.drains_started += s.drains_started;
    out.partner_copies += s.partner_copies;
    out.pfs_flushes += s.pfs_flushes;
    out.drains_aborted += s.drains_aborted;
    out.hop_retries += s.hop_retries;
    out.retries_exhausted += s.retries_exhausted;
    out.bytes_to_local += s.bytes_to_local;
    out.bytes_to_partner += s.bytes_to_partner;
    out.bytes_to_pfs += s.bytes_to_pfs;
    out.parity_fragments += s.parity_fragments;
    out.bytes_to_parity += s.bytes_to_parity;
    out.reprotections += s.reprotections;
    for (size_t i = 0; i < out.restores_by_level.size(); ++i)
      out.restores_by_level[i] += s.restores_by_level[i];
    out.rebuild_restores += s.rebuild_restores;
    out.rebuild_bytes_read += s.rebuild_bytes_read;
    out.rebuild_retries += s.rebuild_retries;
    out.epoch_fallbacks += s.epoch_fallbacks;
    out.scrub_waves += s.scrub_waves;
    out.scrub_probes += s.scrub_probes;
    out.scrubs_detected += s.scrubs_detected;
    out.scrubs_repaired += s.scrubs_repaired;
    out.silent_losses_injected += s.silent_losses_injected;
    out.corrupt_read_drops += s.corrupt_read_drops;
    out.pfs_contended_flushes += s.pfs_contended_flushes;
    out.pfs_interference_time += s.pfs_interference_time;
    out.pfs_queue_depth_hwm =
        std::max(out.pfs_queue_depth_hwm, s.pfs_queue_depth_hwm);
  }
  return out;
}

}  // namespace spbc::ckpt
